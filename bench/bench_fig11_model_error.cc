/// Figure 11: relative error of the analytical model's GPL runtime estimate,
/// per TPC-H query, with the optimal (tuned) configuration on the AMD device.
/// Also verifies the Section 4.1 claim that query optimization takes < 5 ms.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace gpl;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner("Figure 11",
                    "Relative error in estimating GPL runtime (AMD device)",
                    sf);

  std::printf("%8s %14s %14s %14s %14s\n", "query", "measured(ms)",
              "estimated(ms)", "rel. error", "optimize(ms)");
  for (auto& [name, query] : queries::EvaluationSuite()) {
    const QueryResult r = benchutil::Run(db, EngineMode::kGpl, query);
    std::printf("%8s %14.3f %14.3f %13.1f%% %14.3f\n", name.c_str(),
                r.metrics.elapsed_ms, r.metrics.predicted_ms,
                100.0 * r.metrics.RelativeError(), r.metrics.OptimizeWallMs());
  }
  std::printf("(paper: small relative error; the model generally "
              "underestimates; optimization < 5 ms)\n");
  return 0;
}
