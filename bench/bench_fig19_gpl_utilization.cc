/// Figure 19: improved GPU resource utilization of GPL over KBE on the AMD
/// device, per TPC-H query.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace gpl;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner("Figure 19",
                    "Resource utilization: GPL vs KBE per query (AMD device)",
                    sf);

  std::printf("%8s | %10s %10s | %10s %10s\n", "query", "KBE VALU", "KBE Mem",
              "GPL VALU", "GPL Mem");
  for (auto& [name, query] : queries::EvaluationSuite()) {
    const QueryResult kbe = benchutil::Run(db, EngineMode::kKbe, query);
    const QueryResult gpl = benchutil::Run(db, EngineMode::kGpl, query);
    std::printf("%8s | %9.1f%% %9.1f%% | %9.1f%% %9.1f%%\n", name.c_str(),
                100.0 * kbe.metrics.valu_busy, 100.0 * kbe.metrics.mem_unit_busy,
                100.0 * gpl.metrics.valu_busy, 100.0 * gpl.metrics.mem_unit_busy);
  }
  std::printf("(paper: GPL sustains steadier, higher utilization of both "
              "resources)\n");
  return 0;
}
