/// Shared-work execution: latency and hit rate of the service-wide subplan
/// cache under a Zipf-skewed multi-query mix. Not a paper figure — the
/// shared-work layer extends the paper's single-query engine — but the same
/// methodology: fixed workload, sweep knobs (worker count, working-set size,
/// cache on/off), report JSONL.
///
/// Per row: client-observed p50/p95 latency (submit -> completion, host
/// wall), subplan hit rate, shared-scan row accounting, and the p95 speedup
/// of cache-on over cache-off at the same worker count. Every completed
/// result is checked bit-identical to an isolated cache-less engine — the
/// cache is a latency optimization, never an answer change.
///
/// --quick gates (scripts/check.sh): warm hit rate >= 0.8, best p95 speedup
/// >= 1.3x, shared scans serve more rows than the cold scans materialized.
/// Deterministic rows (workers=1) are committed as
/// bench/baselines/shared_work_quick.jsonl and diffed by bench_diff.py.
#include <chrono>
#include <cstdio>
#include <deque>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "service/query_service.h"

namespace {

using namespace gpl;

/// Deterministic 64-bit LCG — the bench must replay the same Zipf sequence
/// on every run and machine.
uint64_t NextRand(uint64_t* state) {
  *state = *state * 6364136223846793005ULL + 1442695040888963407ULL;
  return *state >> 33;
}

/// Zipf(1.0) draw over `n` ranks: weight of rank k is 1/k.
int ZipfDraw(uint64_t* state, int n) {
  double total = 0.0;
  for (int k = 1; k <= n; ++k) total += 1.0 / k;
  double u = static_cast<double>(NextRand(state) % 1000000) / 1e6 * total;
  for (int k = 1; k <= n; ++k) {
    u -= 1.0 / k;
    if (u <= 0.0) return k - 1;
  }
  return n - 1;
}

void CheckTablesBitIdentical(const Table& expected, const Table& actual,
                             const std::string& what) {
  GPL_CHECK(expected.num_columns() == actual.num_columns()) << what;
  GPL_CHECK(expected.num_rows() == actual.num_rows()) << what;
  for (int64_t i = 0; i < expected.num_columns(); ++i) {
    const Column& e = expected.ColumnAt(i);
    const Column& a = actual.ColumnAt(i);
    GPL_CHECK(e.data32() == a.data32() && e.data64() == a.data64() &&
              e.dataf() == a.dataf())
        << what << " column " << expected.ColumnNameAt(i)
        << " diverged from the isolated cache-less truth";
  }
}

struct MixResult {
  double wall_s = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  service::ServiceStats stats;
};

/// Pushes `num_queries` Zipf-drawn queries from `mix` through a QueryService,
/// measuring client-observed latency, and bit-checks every result against
/// `truth`. The draw sequence depends only on the seed, so cache-on and
/// cache-off rows execute the identical workload.
MixResult RunMix(const tpch::Database& db,
                 const std::vector<std::pair<std::string, LogicalQuery>>& mix,
                 const std::vector<Table>& truth, int workers, int num_queries,
                 bool cache_on, const sim::DeviceSpec& device) {
  service::ServiceOptions sopts;
  sopts.num_workers = workers;
  sopts.queue_capacity = static_cast<size_t>(2 * workers + 2);
  sopts.engine.device = device;
  sopts.subplan_cache = cache_on;
  service::QueryService svc(&db, sopts);

  struct Pending {
    service::QueryHandle handle;
    std::chrono::steady_clock::time_point start;
    int cls = 0;
  };
  std::deque<Pending> inflight;
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(num_queries));
  const auto drain_front = [&] {
    Pending pending = std::move(inflight.front());
    inflight.pop_front();
    const Result<QueryResult>& result = pending.handle.Await();
    GPL_CHECK(result.ok()) << result.status().ToString();
    latencies.push_back(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - pending.start)
                            .count());
    CheckTablesBitIdentical(truth[static_cast<size_t>(pending.cls)],
                            result->table, mix[static_cast<size_t>(pending.cls)].first);
  };

  uint64_t rng = 0x5eed5eed5eedULL;
  const auto wall_start = std::chrono::steady_clock::now();
  for (int i = 0; i < num_queries; ++i) {
    const int cls = ZipfDraw(&rng, static_cast<int>(mix.size()));
    for (;;) {
      Pending pending;
      pending.start = std::chrono::steady_clock::now();
      pending.cls = cls;
      Result<service::QueryHandle> submitted = svc.Submit(
          mix[static_cast<size_t>(cls)].first + "#" + std::to_string(i),
          mix[static_cast<size_t>(cls)].second);
      if (submitted.ok()) {
        pending.handle = submitted.take();
        inflight.push_back(std::move(pending));
        break;
      }
      GPL_CHECK(submitted.status().code() == StatusCode::kResourceExhausted)
          << submitted.status().ToString();
      GPL_CHECK(!inflight.empty());
      drain_front();
    }
  }
  while (!inflight.empty()) drain_front();
  svc.Shutdown();

  MixResult out;
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             wall_start)
                   .count();
  out.p50_ms = service::Percentile(latencies, 50.0);
  out.p95_ms = service::Percentile(latencies, 95.0);
  out.stats = svc.Stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const benchutil::BenchArgs args =
      benchutil::ParseBenchArgs(argc, argv, sim::DeviceSpec::AmdA10());
  const double sf = benchutil::ScaleFactor(0.02);
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner(
      "Shared-work execution",
      ("Subplan-cache hit rate and p50/p95 latency under a Zipf mix (" +
       args.device.name + ")")
          .c_str(),
      sf);

  // The mix, Zipf-ranked: join-heavy queries first so the hot classes carry
  // reusable build sides and scans.
  std::vector<std::pair<std::string, LogicalQuery>> full_mix;
  for (const char* name : {"Q5", "Q14", "Q8", "Q7", "Q9"}) {
    for (auto& [n, query] : queries::EvaluationSuite()) {
      if (n == name) full_mix.emplace_back(n, query);
    }
  }
  GPL_CHECK(full_mix.size() == 5u);

  const int num_queries = args.quick ? 32 : 96;
  const std::vector<int> working_sets =
      args.quick ? std::vector<int>{5} : std::vector<int>{2, 5};

  benchutil::JsonlWriter jsonl(args.out);
  std::printf("%4s %8s %6s %10s %10s %10s %12s %14s\n", "ws", "workers",
              "cache", "hit rate", "p50 (ms)", "p95 (ms)", "wall (s)",
              "rows shared");

  bool gates_ok = true;
  double best_p95_speedup = 0.0;
  for (int ws : working_sets) {
    std::vector<std::pair<std::string, LogicalQuery>> mix(
        full_mix.begin(), full_mix.begin() + ws);
    // Isolated cache-less truth, one engine per class.
    std::vector<Table> truth;
    truth.reserve(mix.size());
    for (auto& [name, query] : mix) {
      EngineOptions options;
      options.device = args.device;
      Engine engine(&db, options);
      Result<QueryResult> result = engine.Execute(query);
      GPL_CHECK(result.ok()) << name << ": " << result.status().ToString();
      truth.push_back(result.take().table);
    }

    for (int workers : {1, 4, 8}) {
      MixResult off = RunMix(db, mix, truth, workers, num_queries,
                             /*cache_on=*/false, args.device);
      MixResult on = RunMix(db, mix, truth, workers, num_queries,
                            /*cache_on=*/true, args.device);
      const double hit_rate = on.stats.SubplanHitRate();
      const double p95_speedup =
          on.p95_ms > 0.0 ? off.p95_ms / on.p95_ms : 0.0;
      if (p95_speedup > best_p95_speedup) best_p95_speedup = p95_speedup;

      for (const bool cache_on : {false, true}) {
        const MixResult& r = cache_on ? on : off;
        std::printf("%4d %8d %6s %9.1f%% %10.3f %10.3f %12.3f %14llu\n", ws,
                    workers, cache_on ? "on" : "off",
                    100.0 * (cache_on ? hit_rate : 0.0), r.p50_ms, r.p95_ms,
                    r.wall_s,
                    static_cast<unsigned long long>(
                        r.stats.scan_rows_shared));
        std::ostringstream row;
        row.precision(6);
        row << "{\"key\":\"ws" << ws << "_w" << workers << "_"
            << (cache_on ? "on" : "off") << "\",\"bench\":\"shared_work\""
            << ",\"working_set\":" << ws << ",\"workers\":" << workers
            << ",\"cache\":\"" << (cache_on ? "on" : "off")
            << "\",\"queries\":" << num_queries
            << ",\"hit_rate\":" << (cache_on ? hit_rate : 0.0)
            << ",\"p50_latency_ms\":" << r.p50_ms
            << ",\"p95_latency_ms\":" << r.p95_ms
            << ",\"wall_s\":" << r.wall_s
            << ",\"subplan_hits\":" << r.stats.subplan_cache_hits
            << ",\"subplan_misses\":" << r.stats.subplan_cache_misses
            << ",\"subplan_attaches\":" << r.stats.subplan_attaches
            << ",\"scan_rows_scanned\":" << r.stats.scan_rows_scanned
            << ",\"scan_rows_shared\":" << r.stats.scan_rows_shared
            << ",\"p95_speedup\":" << (cache_on ? p95_speedup : 1.0) << "}";
        jsonl.Line(row.str());
      }

      if (args.quick) {
        if (hit_rate < 0.8) {
          std::fprintf(stderr,
                       "GATE FAILED: ws=%d workers=%d warm hit rate %.3f "
                       "< 0.8\n",
                       ws, workers, hit_rate);
          gates_ok = false;
        }
        if (on.stats.scan_rows_shared <= on.stats.scan_rows_scanned) {
          std::fprintf(stderr,
                       "GATE FAILED: ws=%d workers=%d shared scans served "
                       "%llu rows <= %llu materialized by cold scans\n",
                       ws, workers,
                       static_cast<unsigned long long>(
                           on.stats.scan_rows_shared),
                       static_cast<unsigned long long>(
                           on.stats.scan_rows_scanned));
          gates_ok = false;
        }
      }
    }
  }

  if (args.quick && best_p95_speedup < 1.3) {
    std::fprintf(stderr,
                 "GATE FAILED: best cache-on p95 speedup %.2fx < 1.3x\n",
                 best_p95_speedup);
    gates_ok = false;
  }

  if (jsonl.enabled())
    std::printf("\nresults written to %s\n", args.out.c_str());
  std::printf("\n(bit-identity vs the isolated cache-less engine is checked "
              "on every result; best cache-on p95 speedup %.2fx)\n",
              best_p95_speedup);
  if (args.quick) {
    std::printf("%s\n", gates_ok ? "quick gates OK" : "quick gates FAILED");
    return gates_ok ? 0 : 1;
  }
  return 0;
}
