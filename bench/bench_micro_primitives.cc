/// Micro-benchmarks (google-benchmark) for the building blocks: data
/// generation, expression evaluation, the relational primitives, the join
/// hash table, and the event simulator. These are wall-clock benchmarks of
/// the library itself, complementing the figure harnesses (which report
/// simulated GPU time).
#include <benchmark/benchmark.h>

#include "common/math_util.h"
#include "common/random.h"
#include "exec/hash_table.h"
#include "exec/primitives.h"
#include "model/calibration.h"
#include "sim/engine.h"
#include "tpch/dbgen.h"

namespace gpl {
namespace {

const tpch::Database& BenchDb() {
  static const tpch::Database* db = [] {
    tpch::DbgenConfig config;
    config.scale_factor = 0.01;
    return new tpch::Database(tpch::Generate(config));
  }();
  return *db;
}

void BM_Dbgen(benchmark::State& state) {
  tpch::DbgenConfig config;
  config.scale_factor = 0.002;
  for (auto _ : state) {
    tpch::Database db = tpch::Generate(config);
    benchmark::DoNotOptimize(db.lineitem.num_rows());
  }
}
BENCHMARK(BM_Dbgen)->Unit(benchmark::kMillisecond);

void BM_FilterKernel(benchmark::State& state) {
  const tpch::Database& db = BenchDb();
  KernelPtr kernel = MakeFilterKernel(
      Lt(Col("l_quantity"), LitInt(static_cast<int64_t>(state.range(0)))));
  for (auto _ : state) {
    Result<Table> out = kernel->Process(db.lineitem);
    benchmark::DoNotOptimize(out->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * db.lineitem.num_rows());
}
BENCHMARK(BM_FilterKernel)->Arg(5)->Arg(25)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_HashBuild(benchmark::State& state) {
  const tpch::Database& db = BenchDb();
  for (auto _ : state) {
    auto hj = std::make_shared<HashJoinState>();
    KernelPtr build = MakeHashBuildKernel({Col("o_orderkey")}, hj);
    Result<Table> out = build->Process(db.orders);
    benchmark::DoNotOptimize(hj->table.num_entries());
  }
  state.SetItemsProcessed(state.iterations() * db.orders.num_rows());
}
BENCHMARK(BM_HashBuild)->Unit(benchmark::kMillisecond);

void BM_HashProbe(benchmark::State& state) {
  const tpch::Database& db = BenchDb();
  auto hj = std::make_shared<HashJoinState>();
  KernelPtr build = MakeHashBuildKernel({Col("o_orderkey")}, hj);
  GPL_CHECK(build->Process(db.orders).ok());
  KernelPtr probe = MakeHashProbeKernel({Col("l_orderkey")}, hj, {"o_orderdate"});
  for (auto _ : state) {
    Result<Table> out = probe->Process(db.lineitem);
    benchmark::DoNotOptimize(out->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * db.lineitem.num_rows());
}
BENCHMARK(BM_HashProbe)->Unit(benchmark::kMillisecond);

void BM_PrefixSum(benchmark::State& state) {
  Random rng(1);
  Column flags(DataType::kInt32);
  for (int i = 0; i < 1 << 20; ++i) {
    flags.AppendInt32(rng.Bernoulli(0.5) ? 1 : 0);
  }
  for (auto _ : state) {
    int64_t total = 0;
    Column offsets = PrefixSum(flags, &total);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * flags.size());
}
BENCHMARK(BM_PrefixSum)->Unit(benchmark::kMillisecond);

void BM_SortKernel(benchmark::State& state) {
  const tpch::Database& db = BenchDb();
  for (auto _ : state) {
    KernelPtr sort = MakeSortKernel({{"o_totalprice", true}});
    GPL_CHECK(sort->Process(db.orders).ok());
    Result<Table> out = sort->Finish();
    benchmark::DoNotOptimize(out->num_rows());
  }
  state.SetItemsProcessed(state.iterations() * db.orders.num_rows());
}
BENCHMARK(BM_SortKernel)->Unit(benchmark::kMillisecond);

void BM_JoinHashTableProbe(benchmark::State& state) {
  Random rng(7);
  std::vector<int64_t> keys(1 << 18);
  for (auto& k : keys) k = rng.Uniform(0, 1 << 16);
  JoinHashTable ht;
  ht.Build(keys);
  std::vector<int64_t> matches;
  int64_t i = 0;
  for (auto _ : state) {
    matches.clear();
    ht.Probe(i++ & 0xffff, &matches);
    benchmark::DoNotOptimize(matches.size());
  }
}
BENCHMARK(BM_JoinHashTableProbe);

void BM_EventSimulatorPipeline(benchmark::State& state) {
  sim::Simulator simulator(sim::DeviceSpec::AmdA10());
  for (auto _ : state) {
    sim::ChannelConfig config;
    config.num_channels = static_cast<int>(state.range(0));
    const sim::SimResult r =
        model::RunProducerConsumer(simulator, config, MiB(16));
    benchmark::DoNotOptimize(r.elapsed_cycles());
  }
}
BENCHMARK(BM_EventSimulatorPipeline)->Arg(1)->Arg(8)->Arg(16);

void BM_Calibration(benchmark::State& state) {
  sim::Simulator simulator(sim::DeviceSpec::AmdA10());
  for (auto _ : state) {
    const model::CalibrationTable table =
        model::CalibrationTable::Run(simulator);
    benchmark::DoNotOptimize(table.points().size());
  }
}
BENCHMARK(BM_Calibration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gpl

BENCHMARK_MAIN();
