/// Host-parallelism scaling: wall-clock of the morsel-driven functional
/// executor and the memoized tuner as ExecOptions::host_threads grows. Not a
/// paper figure — the paper's engine is simulated, so *simulated* time is
/// host-thread invariant by construction — this bench demonstrates exactly
/// that invariance (bit-identical tables, counters and simulated cycles at
/// every thread count) while the *host* wall time scales.
///
/// Per (threads, query): cold wall (first run, tuner grid search), warm wall
/// (best of 3, tuning cache hot), speedup vs the serial warm wall, and the
/// tuning-cache hit rate. JSONL rows go to --out (default
/// BENCH_host_scaling.json).
///
/// --quick runs {1, 8} threads only and turns the bench into a smoke gate
/// for scripts/check.sh: exit 1 if any thread count is not bit-identical to
/// serial, if the warm 8-thread batch is >1.3x slower than the serial warm
/// batch (tolerance because CI runners may expose a single core, where extra
/// threads can only add overhead), or if the warm-pass cache hit rate is
/// below 90%.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"

namespace {

using namespace gpl;

bool TablesBitIdentical(const Table& expected, const Table& actual) {
  if (expected.num_columns() != actual.num_columns() ||
      expected.num_rows() != actual.num_rows()) {
    return false;
  }
  for (int64_t i = 0; i < expected.num_columns(); ++i) {
    if (expected.ColumnNameAt(i) != actual.ColumnNameAt(i)) return false;
    const Column& e = expected.ColumnAt(i);
    const Column& a = actual.ColumnAt(i);
    if (e.type() != a.type()) return false;
    if (e.data32() != a.data32() || e.data64() != a.data64() ||
        e.dataf() != a.dataf()) {
      return false;
    }
  }
  return true;
}

bool CountersBitIdentical(const sim::HwCounters& e, const sim::HwCounters& a) {
  return e.elapsed_cycles == a.elapsed_cycles &&
         e.compute_cycles == a.compute_cycles &&
         e.mem_cycles == a.mem_cycles &&
         e.channel_cycles == a.channel_cycles &&
         e.stall_cycles == a.stall_cycles &&
         e.launch_cycles == a.launch_cycles && e.cache_hits == a.cache_hits &&
         e.cache_accesses == a.cache_accesses &&
         e.bytes_materialized == a.bytes_materialized &&
         e.bytes_via_channel == a.bytes_via_channel;
}

struct TimedRun {
  QueryResult result;
  double wall_ms = 0.0;
};

TimedRun TimedExecute(Engine& engine, const std::string& name,
                      const LogicalQuery& query) {
  const auto start = std::chrono::steady_clock::now();
  Result<QueryResult> result = engine.Execute(query);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  GPL_CHECK(result.ok()) << name << ": " << result.status().ToString();
  return {result.take(), wall_ms};
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_host_scaling.json";
  bool quick = false;
  sim::DeviceSpec device = sim::DeviceSpec::AmdA10();
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(arg, "--device=", 9) == 0) {
      Result<sim::DeviceSpec> parsed = ParseDeviceSpec(arg + 9);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 2;
      }
      device = parsed.take();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out=results.jsonl] [--device=amd|nvidia] "
                   "[--quick]\n",
                   argv[0]);
      return 2;
    }
  }

  const double sf = benchutil::ScaleFactor(quick ? 0.02 : 0.05);
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner(
      "Host scaling",
      ("host wall ms vs --host-threads, bit-identical results (" +
       device.name + ")")
          .c_str(),
      sf);

  // One calibration for every engine below: the table is device-dependent
  // and immutable, so recalibrating per thread count would only add noise.
  const sim::Simulator calibration_sim(device);
  const model::CalibrationTable calibration =
      model::CalibrationTable::Run(calibration_sim);

  std::vector<std::pair<std::string, LogicalQuery>> workload;
  for (auto& [name, query] : queries::EvaluationSuite()) {
    if (name == "Q5" || name == "Q7" || name == "Q8" || name == "Q9" ||
        name == "Q14") {
      workload.emplace_back(name, query);
    }
  }
  GPL_CHECK(workload.size() == 5);

  const std::vector<int> thread_counts =
      quick ? std::vector<int>{1, 8} : std::vector<int>{1, 2, 4, 8};
  constexpr int kWarmReps = 3;

  benchutil::JsonlWriter jsonl(out);
  std::printf("%8s %6s %14s %14s %10s %10s %8s\n", "threads", "query",
              "cold (ms)", "warm best (ms)", "speedup", "hit rate",
              "bit-id");

  // Per-query serial warm baselines (thread_counts always starts at 1).
  std::vector<QueryResult> serial_results;
  std::vector<double> serial_warm_ms;
  double serial_batch_warm_ms = 0.0;
  double eight_batch_warm_ms = -1.0;
  double eight_hit_rate = -1.0;
  bool all_bit_identical = true;

  for (int threads : thread_counts) {
    EngineOptions options;
    options.mode = EngineMode::kGpl;
    options.device = device;
    options.calibration = &calibration;
    options.exec.host_threads = threads;
    // The engine-owned tuning cache persists across Execute calls, so the
    // cold pass populates it and the warm pass below measures hits.
    Engine engine(&db, options);

    double batch_warm_ms = 0.0;
    int64_t warm_hits = 0;
    int64_t warm_misses = 0;
    for (size_t q = 0; q < workload.size(); ++q) {
      const auto& [name, query] = workload[q];
      const TimedRun cold = TimedExecute(engine, name, query);
      double warm_best_ms = 0.0;
      QueryResult warm_result;
      for (int rep = 0; rep < kWarmReps; ++rep) {
        TimedRun warm = TimedExecute(engine, name, query);
        if (rep == 0 || warm.wall_ms < warm_best_ms) {
          warm_best_ms = warm.wall_ms;
        }
        warm_hits += warm.result.metrics.tuning_cache_hits;
        warm_misses += warm.result.metrics.tuning_cache_misses;
        warm_result = std::move(warm.result);
      }
      batch_warm_ms += warm_best_ms;

      bool bit_identical = true;
      double speedup = 1.0;
      if (threads == 1) {
        serial_results.push_back(warm_result);
        serial_warm_ms.push_back(warm_best_ms);
      } else {
        const QueryResult& baseline = serial_results[q];
        bit_identical =
            TablesBitIdentical(baseline.table, warm_result.table) &&
            CountersBitIdentical(baseline.metrics.counters,
                                 warm_result.metrics.counters) &&
            baseline.metrics.elapsed_ms == warm_result.metrics.elapsed_ms;
        all_bit_identical = all_bit_identical && bit_identical;
        speedup = warm_best_ms > 0.0 ? serial_warm_ms[q] / warm_best_ms : 0.0;
      }

      const double hit_rate =
          warm_hits + warm_misses > 0
              ? static_cast<double>(warm_hits) /
                    static_cast<double>(warm_hits + warm_misses)
              : 0.0;
      std::printf("%8d %6s %14.3f %14.3f %9.2fx %9.1f%% %8s\n", threads,
                  name.c_str(), cold.wall_ms, warm_best_ms, speedup,
                  hit_rate * 100.0, bit_identical ? "yes" : "NO");

      std::ostringstream row;
      row.precision(6);
      row << "{\"bench\":\"host_scaling\",\"device\":\"" << device.name
          << "\",\"query\":\"" << name << "\",\"host_threads\":" << threads
          << ",\"cold_wall_ms\":" << cold.wall_ms
          << ",\"warm_wall_ms\":" << warm_best_ms
          << ",\"speedup_vs_serial\":" << speedup
          << ",\"tuning_cache_hits\":" << warm_hits
          << ",\"tuning_cache_misses\":" << warm_misses
          << ",\"hit_rate\":" << hit_rate
          << ",\"bit_identical\":" << (bit_identical ? "true" : "false")
          << ",\"simulated_ms\":" << warm_result.metrics.elapsed_ms << "}";
      jsonl.Line(row.str());
    }

    const double batch_hit_rate =
        warm_hits + warm_misses > 0
            ? static_cast<double>(warm_hits) /
                  static_cast<double>(warm_hits + warm_misses)
            : 0.0;
    if (threads == 1) serial_batch_warm_ms = batch_warm_ms;
    if (threads == 8) {
      eight_batch_warm_ms = batch_warm_ms;
      eight_hit_rate = batch_hit_rate;
    }
    std::printf("%8d %6s %14s %14.3f %9.2fx %9.1f%%\n\n", threads, "batch",
                "", batch_warm_ms,
                batch_warm_ms > 0.0 ? serial_batch_warm_ms / batch_warm_ms
                                    : 0.0,
                batch_hit_rate * 100.0);
  }

  if (jsonl.enabled()) std::printf("results written to %s\n", out.c_str());
  std::printf("(simulated time is host-thread invariant; wall-clock speedup "
              "depends on available cores)\n");

  if (quick) {
    int failures = 0;
    if (!all_bit_identical) {
      std::fprintf(stderr,
                   "FAIL: parallel results are not bit-identical to serial\n");
      failures++;
    }
    if (eight_batch_warm_ms > 1.3 * serial_batch_warm_ms) {
      std::fprintf(stderr,
                   "FAIL: 8-thread warm batch %.3f ms vs serial %.3f ms "
                   "(> 1.3x tolerance)\n",
                   eight_batch_warm_ms, serial_batch_warm_ms);
      failures++;
    }
    if (eight_hit_rate < 0.9) {
      std::fprintf(stderr, "FAIL: warm tuning-cache hit rate %.1f%% < 90%%\n",
                   eight_hit_rate * 100.0);
      failures++;
    }
    return failures == 0 ? 0 : 1;
  }
  return 0;
}
