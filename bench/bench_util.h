#ifndef GPL_BENCH_BENCH_UTIL_H_
#define GPL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "engine/engine.h"
#include "engine/metrics_json.h"
#include "queries/tpch_queries.h"

namespace gpl {
namespace benchutil {

/// Scale factor for the benches. The paper uses SF 10 (10 GB); the default
/// here is small enough that every figure regenerates in seconds. Override
/// with GPL_BENCH_SF=0.5 (etc.) to push towards paper scale.
inline double ScaleFactor(double fallback = 0.05) {
  const char* env = std::getenv("GPL_BENCH_SF");
  if (env != nullptr) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return fallback;
}

/// Cached database per scale factor (benches sweep SF).
inline const tpch::Database& Db(double scale_factor) {
  static std::map<double, std::unique_ptr<tpch::Database>>* cache =
      new std::map<double, std::unique_ptr<tpch::Database>>();
  auto it = cache->find(scale_factor);
  if (it == cache->end()) {
    tpch::DbgenConfig config;
    config.scale_factor = scale_factor;
    it = cache->emplace(scale_factor, std::make_unique<tpch::Database>(
                                          tpch::Generate(config)))
             .first;
  }
  return *it->second;
}

/// Host threads pinned by `--host-threads=N` (0 = leave ExecOptions at its
/// hardware-concurrency default). Set by ParseOutPath/ParseBenchArgs and
/// consumed by Run(), so every bench honors the flag without plumbing it
/// through each call site.
inline int& PinnedHostThreads() {
  static int threads = 0;
  return threads;
}

/// Shard count pinned by `--shards=N` (0 = unset). Carried into
/// ExecOptions::shards by Run() as a routing hint; shard-aware benches read
/// it directly.
inline int& PinnedShards() {
  static int shards = 0;
  return shards;
}

/// Link bandwidth override pinned by `--link-gbps=G` (0 = link default).
inline double& PinnedLinkGbps() {
  static double gbps = 0.0;
  return gbps;
}

/// Executes a query under a mode; aborts on failure (benches are harnesses).
inline QueryResult Run(const tpch::Database& db, EngineMode mode,
                       const LogicalQuery& query,
                       const sim::DeviceSpec& device = sim::DeviceSpec::AmdA10(),
                       const model::TuningOverrides& overrides = {},
                       bool use_cost_model = true) {
  EngineOptions options;
  options.mode = mode;
  options.device = device;
  options.exec.overrides = overrides;
  options.exec.use_cost_model = use_cost_model;
  options.exec.host_threads = PinnedHostThreads();
  if (PinnedShards() > 0) options.exec.shards = PinnedShards();
  options.exec.link_gbps = PinnedLinkGbps();
  Engine engine(&db, options);
  Result<QueryResult> result = engine.Execute(query);
  GPL_CHECK(result.ok()) << query.name << " under " << EngineModeName(mode)
                         << ": " << result.status().ToString();
  return result.take();
}

/// Appends bench results as JSON lines (one object per query/engine run) so
/// figure data can be collected across runs and diffed/plotted by scripts.
/// Construction with an empty path disables it at zero cost.
class JsonlWriter {
 public:
  explicit JsonlWriter(const std::string& path) {
    if (path.empty()) return;
    out_.open(path, std::ios::out | std::ios::trunc);
    if (!out_) {
      std::fprintf(stderr, "warning: cannot open %s for writing\n",
                   path.c_str());
    }
  }

  bool enabled() const { return out_.is_open(); }

  /// Writes one JSONL record: query, engine, device, elapsed_ms and the full
  /// metrics/counter set (same schema as `gplcli --metrics-json`).
  void Record(const std::string& query, EngineMode mode,
              const sim::DeviceSpec& device, const QueryMetrics& metrics) {
    if (!enabled()) return;
    MetricsJsonEntry entry;
    entry.query = query;
    entry.mode = EngineModeName(mode);
    entry.device = device.name;
    entry.metrics = metrics;
    out_ << QueryMetricsToJson(entry) << "\n";
  }

  /// Writes one pre-rendered JSON object as a line — for benches whose rows
  /// are not per-query metrics (e.g. service throughput per worker count).
  void Line(const std::string& json_object) {
    if (!enabled()) return;
    out_ << json_object << "\n";
  }

 private:
  std::ofstream out_;
};

/// Parses the common bench flags `--out=<path>` (JSONL results destination)
/// and `--host-threads=<N>` (host parallelism for every Run() call).
/// Unknown arguments abort with usage so typos don't silently run a default.
inline std::string ParseOutPath(int argc, char** argv) {
  std::string out;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else if (std::strncmp(arg, "--host-threads=", 15) == 0) {
      PinnedHostThreads() = std::atoi(arg + 15);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out=results.jsonl] [--host-threads=N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return out;
}

/// Common bench flags for device-parameterized benches: `--out=<path>` plus
/// `--device=<amd|nvidia>[,<amd|nvidia>...]` (through the library's
/// ParseDeviceList rather than a per-bench hand-rolled name switch),
/// `--host-threads=<N>`, and the sharding knobs `--shards=<N>` /
/// `--link-gbps=<G>` (mirrored into ExecOptions by Run()).
struct BenchArgs {
  std::string out;
  sim::DeviceSpec device;  ///< first device of the list (single-device benches)
  std::vector<sim::DeviceSpec> devices;  ///< the full --device= list
  int host_threads = 0;  ///< 0 = hardware concurrency (mirrors ExecOptions)
  int shards = 0;        ///< 0 = bench default
  double link_gbps = 0.0;  ///< 0 = LinkSpec default
  /// `--engine=<gpl|kbe|noce|ocelot|fused>` — restricts engine-sweep benches
  /// to one mode (same spellings as the CLI flag). Unset when absent.
  bool has_engine = false;
  EngineMode engine = EngineMode::kGpl;
  /// `--quick` — reduced sweep with pass/fail gates (used by scripts/check.sh).
  bool quick = false;
};

inline BenchArgs ParseBenchArgs(int argc, char** argv,
                                const sim::DeviceSpec& default_device) {
  BenchArgs args;
  args.device = default_device;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      args.out = arg + 6;
    } else if (std::strncmp(arg, "--device=", 9) == 0) {
      Result<std::vector<sim::DeviceSpec>> devices = ParseDeviceList(arg + 9);
      if (!devices.ok()) {
        std::fprintf(stderr, "%s\n", devices.status().ToString().c_str());
        std::exit(2);
      }
      args.devices = devices.take();
      args.device = args.devices.front();
    } else if (std::strncmp(arg, "--host-threads=", 15) == 0) {
      args.host_threads = std::atoi(arg + 15);
      PinnedHostThreads() = args.host_threads;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      args.shards = std::atoi(arg + 9);
      PinnedShards() = args.shards;
    } else if (std::strncmp(arg, "--link-gbps=", 12) == 0) {
      args.link_gbps = std::atof(arg + 12);
      PinnedLinkGbps() = args.link_gbps;
    } else if (std::strncmp(arg, "--engine=", 9) == 0) {
      Result<EngineMode> engine = ParseEngineMode(arg + 9);
      if (!engine.ok()) {
        std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
        std::exit(2);
      }
      args.engine = engine.take();
      args.has_engine = true;
    } else if (std::strcmp(arg, "--quick") == 0) {
      args.quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out=results.jsonl] [--device=amd|nvidia,...] "
                   "[--host-threads=N] [--shards=N] [--link-gbps=G] "
                   "[--engine=gpl|kbe|noce|ocelot|fused] [--quick]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return args;
}

/// Prints the standard bench banner: which paper artifact this regenerates.
inline void Banner(const char* figure, const char* description, double sf) {
  std::printf("==============================================================\n");
  std::printf("GPL reproduction: %s\n", figure);
  std::printf("%s\n", description);
  std::printf("(TPC-H scale factor %.3g; set GPL_BENCH_SF to change)\n", sf);
  std::printf("==============================================================\n");
}

}  // namespace benchutil
}  // namespace gpl

#endif  // GPL_BENCH_BENCH_UTIL_H_
