/// Figure 12: overall Q8 query processing performance with varying tile
/// sizes (256 KB - 16 MB), normalized to the 256 KB setting; the star marks
/// the tile size the cost model selects.
#include <cstdio>

#include "bench_util.h"
#include "common/math_util.h"
#include "model/plan_tuner.h"

int main() {
  using namespace gpl;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner("Figure 12",
                    "Q8 runtime vs tile size (other parameters default); "
                    "star = model-selected tile",
                    sf);

  // The star: the tile minimizing the model's *predicted* time with the
  // other parameters at their defaults, exactly how the sweep is measured.
  int64_t chosen_tile = 0;
  double base_ms = 0.0;
  double best_predicted = 0.0;
  struct Point {
    int64_t tile;
    double measured_ms;
  };
  std::vector<Point> points;
  for (int64_t tile : model::TileSizeGrid()) {
    model::TuningOverrides overrides;
    overrides.tile_bytes = tile;
    const QueryResult r = benchutil::Run(db, EngineMode::kGpl, queries::Q8(),
                                         sim::DeviceSpec::AmdA10(), overrides,
                                         /*use_cost_model=*/false);
    if (base_ms == 0.0) base_ms = r.metrics.elapsed_ms;
    if (chosen_tile == 0 || r.metrics.predicted_ms < best_predicted) {
      best_predicted = r.metrics.predicted_ms;
      chosen_tile = tile;
    }
    points.push_back({tile, r.metrics.elapsed_ms});
  }

  std::printf("%12s %12s %12s\n", "tile size", "time (ms)", "normalized");
  for (const Point& p : points) {
    std::printf("%9lld KB %12.3f %12.2f%s\n",
                static_cast<long long>(p.tile / 1024), p.measured_ms,
                p.measured_ms / base_ms,
                p.tile == chosen_tile ? "   * (model's choice)" : "");
  }
  std::printf("(paper: U-shape — small tiles underutilize, large tiles "
              "thrash the cache; model star near the minimum)\n");
  return 0;
}
