/// Service throughput: queries/second through service::QueryService as the
/// worker count grows, closed-loop over a Q5/Q14 mix. Not a paper figure —
/// the service layer is an extension on top of the paper's single-query
/// engine — but the same methodology as the overall-performance figures:
/// fixed workload, sweep one knob, report JSONL.
///
/// Reported per worker count: host wall time, completed queries/s, admission
/// counters (admitted/rejected off the bounded queue) and p50/p95 latency.
/// Host wall-clock throughput depends on the machine's core count (on a
/// single-core runner the sweep shows scheduling overhead, not speedup);
/// total_simulated_ms is identical across rows — the determinism the service
/// guarantees (see tests/service_test.cc).
#include <chrono>
#include <cstdio>
#include <deque>
#include <sstream>
#include <vector>

#include "bench_util.h"
#include "service/query_service.h"

int main(int argc, char** argv) {
  using namespace gpl;
  const benchutil::BenchArgs args =
      benchutil::ParseBenchArgs(argc, argv, sim::DeviceSpec::AmdA10());
  const double sf = benchutil::ScaleFactor(0.02);
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner(
      "Service throughput",
      ("QueryService queries/s vs worker count (" + args.device.name + ")")
          .c_str(),
      sf);

  std::vector<std::pair<std::string, LogicalQuery>> workload;
  for (auto& [name, query] : queries::EvaluationSuite()) {
    if (name == "Q5" || name == "Q14") workload.emplace_back(name, query);
  }
  GPL_CHECK(!workload.empty());

  constexpr int kQueries = 48;
  benchutil::JsonlWriter jsonl(args.out);
  std::printf("%8s %12s %12s %10s %10s %12s %12s\n", "workers", "wall (s)",
              "queries/s", "admitted", "rejected", "p50 (ms)", "p95 (ms)");

  for (int workers : {1, 2, 4, 8}) {
    service::ServiceOptions sopts;
    sopts.num_workers = workers;
    sopts.queue_capacity = 8;
    sopts.engine.device = args.device;
    service::QueryService svc(&db, sopts);

    const auto wall_start = std::chrono::steady_clock::now();
    std::deque<service::QueryHandle> inflight;
    for (int i = 0; i < kQueries; ++i) {
      const auto& [name, query] = workload[static_cast<size_t>(i) %
                                           workload.size()];
      for (;;) {
        Result<service::QueryHandle> submitted =
            svc.Submit(name + "#" + std::to_string(i), query);
        if (submitted.ok()) {
          inflight.push_back(submitted.take());
          break;
        }
        // Closed loop: queue full — drain the oldest in-flight, retry.
        GPL_CHECK(submitted.status().code() ==
                  StatusCode::kResourceExhausted)
            << submitted.status().ToString();
        GPL_CHECK(!inflight.empty());
        inflight.front().Await();
        inflight.pop_front();
      }
    }
    for (service::QueryHandle& handle : inflight) {
      const Result<QueryResult>& result = handle.Await();
      GPL_CHECK(result.ok()) << result.status().ToString();
    }
    svc.Shutdown();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    const service::ServiceStats stats = svc.Stats();
    const double qps =
        wall_s > 0 ? static_cast<double>(stats.completed) / wall_s : 0.0;
    std::printf("%8d %12.3f %12.1f %10llu %10llu %12.3f %12.3f\n", workers,
                wall_s, qps, static_cast<unsigned long long>(stats.admitted),
                static_cast<unsigned long long>(stats.rejected),
                stats.p50_latency_ms, stats.p95_latency_ms);

    std::ostringstream row;
    row.precision(6);
    row << "{\"bench\":\"service_throughput\",\"device\":\"" << args.device.name
        << "\",\"workers\":" << workers << ",\"queries\":" << kQueries
        << ",\"wall_s\":" << wall_s << ",\"queries_per_s\":" << qps
        << ",\"admitted\":" << stats.admitted
        << ",\"rejected\":" << stats.rejected
        << ",\"completed\":" << stats.completed
        << ",\"p50_latency_ms\":" << stats.p50_latency_ms
        << ",\"p95_latency_ms\":" << stats.p95_latency_ms
        << ",\"total_simulated_ms\":" << stats.total_simulated_ms << "}";
    jsonl.Line(row.str());
  }

  if (jsonl.enabled())
    std::printf("\nresults written to %s\n", args.out.c_str());
  std::printf("\n(throughput is host wall-clock and scales with available "
              "cores; simulated totals are worker-count invariant)\n");
  return 0;
}
