/// Figure 22: query execution time for GPL and the Ocelot-style baseline on
/// the AMD device across scale factors. The paper uses SF 1/5/10 and notes
/// Ocelot cannot complete Q9 at SF 10; the sweep here runs {SF/4, SF/2, SF}.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace gpl;
  const double top = benchutil::ScaleFactor(0.16);
  benchutil::Banner("Figure 22", "GPL vs Ocelot per query and scale factor",
                    top);

  std::printf("%8s %10s %12s %12s %10s\n", "SF", "query", "Ocelot (ms)",
              "GPL (ms)", "speedup");
  for (double sf : {top / 4.0, top / 2.0, top}) {
    const tpch::Database& db = benchutil::Db(sf);
    for (auto& [name, query] : queries::EvaluationSuite()) {
      const QueryResult ocelot = benchutil::Run(db, EngineMode::kOcelot, query);
      const QueryResult gpl = benchutil::Run(db, EngineMode::kGpl, query);
      std::printf("%8.3f %10s %12.3f %12.3f %9.2fx\n", sf, name.c_str(),
                  ocelot.metrics.elapsed_ms, gpl.metrics.elapsed_ms,
                  ocelot.metrics.elapsed_ms / gpl.metrics.elapsed_ms);
    }
  }
  std::printf("(paper: GPL is comparable on most queries and significantly "
              "faster on Q8/Q9)\n");
  return 0;
}
