/// Figure 5: low utilization of GPU resources (VALUBusy, MemUnitBusy) in
/// kernel-based query execution on the AMD device.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace gpl;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner("Figure 5",
                    "KBE resource utilization per query (AMD device)", sf);

  std::printf("%8s %12s %14s %12s\n", "query", "VALUBusy", "MemUnitBusy",
              "occupancy");
  double sum_valu = 0.0, sum_mem = 0.0;
  int count = 0;
  for (auto& [name, query] : queries::EvaluationSuite()) {
    const QueryResult r = benchutil::Run(db, EngineMode::kKbe, query);
    std::printf("%8s %11.1f%% %13.1f%% %11.1f%%\n", name.c_str(),
                100.0 * r.metrics.valu_busy, 100.0 * r.metrics.mem_unit_busy,
                100.0 * r.metrics.occupancy);
    sum_valu += r.metrics.valu_busy;
    sum_mem += r.metrics.mem_unit_busy;
    ++count;
  }
  std::printf("%8s %11.1f%% %13.1f%%\n", "average", 100.0 * sum_valu / count,
              100.0 * sum_mem / count);
  std::printf("(paper: KBE cannot keep both compute and memory busy)\n");
  return 0;
}
