/// Figure 28 (Appendix A.3.2): improved GPU resource utilization of GPL over
/// KBE for Q8 on the NVIDIA K40.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace gpl;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  const sim::DeviceSpec device = sim::DeviceSpec::NvidiaK40();
  benchutil::Banner("Figure 28",
                    "Q8 resource utilization: KBE vs GPL (NVIDIA K40)", sf);

  const QueryResult kbe = benchutil::Run(db, EngineMode::kKbe, queries::Q8(),
                                         device);
  const QueryResult gpl = benchutil::Run(db, EngineMode::kGpl, queries::Q8(),
                                         device);
  std::printf("%8s %12s %14s %12s\n", "engine", "VALUBusy", "MemUnitBusy",
              "occupancy");
  std::printf("%8s %11.1f%% %13.1f%% %11.1f%%\n", "KBE",
              100.0 * kbe.metrics.valu_busy, 100.0 * kbe.metrics.mem_unit_busy,
              100.0 * kbe.metrics.occupancy);
  std::printf("%8s %11.1f%% %13.1f%% %11.1f%%\n", "GPL",
              100.0 * gpl.metrics.valu_busy, 100.0 * gpl.metrics.mem_unit_busy,
              100.0 * gpl.metrics.occupancy);
  std::printf("(paper: GPL achieves higher utilization of both memory and "
              "compute units)\n");
  return 0;
}
