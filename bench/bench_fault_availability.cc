/// Availability under fault injection: completion rate and latency through
/// service::QueryService as the injected fault rate grows. Not a paper
/// figure — fault tolerance is an extension on top of the paper's engine —
/// but the same methodology as the other sweeps: fixed workload, sweep one
/// knob, report JSONL.
///
/// Per fault rate the bench runs the evaluation-suite mix twice, once
/// without retries and once with the retry policy on (4 attempts,
/// exponential backoff), and reports completion rate, retry/degradation
/// counters, and p50/p95 latency. Fault outcomes are seeded per (query,
/// attempt), so rows are reproducible for a given --fault-seed.
///
/// --quick shrinks the sweep to {0, 0.01, 0.1} and turns the bench into a
/// smoke gate: with retries enabled at fault rate 0.01 the completion rate
/// must exceed 90% (exit 1 otherwise). scripts/check.sh runs this.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "service/query_service.h"

namespace {

using namespace gpl;

struct SweepRow {
  double fault_rate = 0.0;
  int max_attempts = 1;
  service::ServiceStats stats;
  double wall_s = 0.0;
};

SweepRow RunSweep(const tpch::Database& db, const sim::DeviceSpec& device,
                  double fault_rate, uint64_t seed, int max_attempts,
                  int queries) {
  const std::vector<std::pair<std::string, LogicalQuery>> workload =
      queries::EvaluationSuite();

  service::ServiceOptions sopts;
  sopts.num_workers = 4;
  sopts.queue_capacity = 16;
  sopts.engine.device = device;
  sopts.fault.seed = seed;
  sopts.fault.kernel_abort_rate = fault_rate;
  sopts.fault.channel_alloc_fail_rate = fault_rate;
  sopts.retry.max_attempts = max_attempts;
  sopts.retry.initial_backoff_ms = 0.1;
  sopts.retry.max_backoff_ms = 2.0;

  service::QueryService svc(&db, sopts);
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<service::QueryHandle> inflight;
  for (int i = 0; i < queries; ++i) {
    const auto& [name, query] =
        workload[static_cast<size_t>(i) % workload.size()];
    for (;;) {
      Result<service::QueryHandle> submitted =
          svc.Submit(name + "#" + std::to_string(i), query);
      if (submitted.ok()) {
        inflight.push_back(submitted.take());
        break;
      }
      GPL_CHECK(submitted.status().code() == StatusCode::kResourceExhausted)
          << submitted.status().ToString();
      // Closed loop: wait for the earliest still-running query, then retry.
      GPL_CHECK(!inflight.empty());
      inflight.front().Await();
      inflight.erase(inflight.begin());
    }
  }
  for (service::QueryHandle& handle : inflight) {
    const Result<QueryResult>& result = handle.Await();
    // Under fault injection the only acceptable error is a transient fault
    // that exhausted its attempts; anything else is a bench bug.
    GPL_CHECK(result.ok() ||
              result.status().code() == StatusCode::kTransientDeviceError)
        << result.status().ToString();
  }
  svc.Shutdown();

  SweepRow row;
  row.fault_rate = fault_rate;
  row.max_attempts = max_attempts;
  row.stats = svc.Stats();
  row.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             wall_start)
                   .count();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out;
  sim::DeviceSpec device = sim::DeviceSpec::AmdA10();
  uint64_t seed = 20160626;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else if (std::strncmp(arg, "--device=", 9) == 0) {
      Result<sim::DeviceSpec> parsed = ParseDeviceSpec(arg + 9);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 2;
      }
      device = parsed.take();
    } else if (std::strncmp(arg, "--fault-seed=", 13) == 0) {
      seed = std::strtoull(arg + 13, nullptr, 10);
    } else if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out=results.jsonl] [--device=amd|nvidia] "
                   "[--fault-seed=N] [--quick]\n",
                   argv[0]);
      return 2;
    }
  }

  const double sf = benchutil::ScaleFactor(0.02);
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner(
      "Availability under faults",
      ("completion rate vs injected fault rate (" + device.name + ")").c_str(),
      sf);

  const std::vector<double> rates =
      quick ? std::vector<double>{0.0, 0.01, 0.1}
            : std::vector<double>{0.0, 0.01, 0.02, 0.05, 0.1};
  const int queries = quick ? 22 : 44;
  constexpr int kRetryAttempts = 4;

  benchutil::JsonlWriter jsonl(out);
  std::printf("%10s %9s %10s %10s %8s %9s %8s %10s %10s\n", "rate",
              "attempts", "completed", "rate (%)", "retries", "degraded",
              "gave_up", "p95 (ms)", "wall (s)");

  bool gate_ok = true;
  for (double rate : rates) {
    for (int attempts : {1, kRetryAttempts}) {
      // Without faults the retry row adds nothing: run the no-retry row only.
      if (rate == 0.0 && attempts != 1) continue;
      const SweepRow row = RunSweep(db, device, rate, seed, attempts, queries);
      const double completion =
          row.stats.admitted > 0
              ? static_cast<double>(row.stats.completed) /
                    static_cast<double>(row.stats.admitted)
              : 0.0;
      std::printf("%10.3f %9d %10llu %10.1f %8llu %9llu %8llu %10.3f %10.3f\n",
                  rate, attempts,
                  static_cast<unsigned long long>(row.stats.completed),
                  100.0 * completion,
                  static_cast<unsigned long long>(row.stats.retries),
                  static_cast<unsigned long long>(row.stats.degraded),
                  static_cast<unsigned long long>(row.stats.gave_up),
                  row.stats.p95_latency_ms, row.wall_s);

      std::ostringstream line;
      line.precision(6);
      line << "{\"bench\":\"fault_availability\",\"device\":\"" << device.name
           << "\",\"fault_rate\":" << rate << ",\"max_attempts\":" << attempts
           << ",\"queries\":" << queries
           << ",\"admitted\":" << row.stats.admitted
           << ",\"completed\":" << row.stats.completed
           << ",\"completion_rate\":" << completion
           << ",\"retries\":" << row.stats.retries
           << ",\"degraded\":" << row.stats.degraded
           << ",\"gave_up\":" << row.stats.gave_up
           << ",\"p50_latency_ms\":" << row.stats.p50_latency_ms
           << ",\"p95_latency_ms\":" << row.stats.p95_latency_ms
           << ",\"total_simulated_ms\":" << row.stats.total_simulated_ms
           << ",\"wall_s\":" << row.wall_s << "}";
      jsonl.Line(line.str());

      if (rate == 0.0 && completion < 1.0) {
        std::fprintf(stderr,
                     "GATE FAILED: fault-free completion rate %.3f < 1\n",
                     completion);
        gate_ok = false;
      }
      if (quick && rate == 0.01 && attempts == kRetryAttempts &&
          completion <= 0.9) {
        std::fprintf(stderr,
                     "GATE FAILED: completion rate %.3f <= 0.9 at fault rate "
                     "0.01 with %d attempts\n",
                     completion, attempts);
        gate_ok = false;
      }
    }
  }

  if (jsonl.enabled()) std::printf("\nresults written to %s\n", out.c_str());
  std::printf("\n(retries recover transient kernel faults; channel failures "
              "degrade segments to kernel-at-a-time instead of failing — "
              "completed results stay bit-identical to fault-free runs)\n");
  if (quick) {
    std::printf("%s\n", gate_ok ? "quick gate OK"
                                : "quick gate FAILED (see stderr)");
  }
  return gate_ok ? 0 : 1;
}
