/// Figure 2: relationship between channel configuration (number of channels,
/// input size N) and producer-consumer throughput on the AMD device, for a
/// packet size of 16 bytes.
#include <cstdio>

#include "bench_util.h"
#include "model/calibration.h"

int main() {
  using namespace gpl;
  const sim::DeviceSpec device = sim::DeviceSpec::AmdA10();
  sim::Simulator simulator(device);
  benchutil::Banner("Figure 2",
                    "Channel throughput vs (#channels, N), packet = 16 B, "
                    "AMD device",
                    0);

  const int channel_counts[] = {1, 2, 4, 8, 16, 32};
  const int64_t sizes_k[] = {512, 1024, 2048, 4096, 8192};  // N in K integers

  std::printf("%12s", "N (K ints)");
  for (int n : channel_counts) std::printf("  n=%-8d", n);
  std::printf("\n");
  for (int64_t nk : sizes_k) {
    std::printf("%12lld", static_cast<long long>(nk));
    for (int n : channel_counts) {
      sim::ChannelConfig config;
      config.num_channels = n;
      config.packet_bytes = 16;
      const sim::SimResult r =
          model::RunProducerConsumer(simulator, config, nk * 1024 * 4);
      const double gbps = static_cast<double>(nk * 1024 * 4) /
                          r.elapsed_cycles() * device.core_mhz * 1e6 / 1e9;
      std::printf("  %8.2f ", gbps);
    }
    std::printf("\n");
  }
  std::printf("(entries are end-to-end producer-consumer throughput, GB/s)\n");

  // The calibrated Γ the cost model consumes (channel-subsystem throughput).
  const model::CalibrationTable table = model::CalibrationTable::Run(simulator);
  const model::CalibrationTable::BestConfig best = table.Best(4 << 20);
  std::printf("\nBest channel config for a 4 MB transfer: n=%d, p=%d B "
              "(Γ = %.1f bytes/cycle)\n",
              best.config.num_channels, best.config.packet_bytes,
              best.throughput_bytes_per_cycle);
  return 0;
}
