/// Figure 18: size of intermediate results materialized by GPL with varying
/// selectivity (Q14), normalized to the input size, compared to KBE
/// (Figure 3's counterpart after the fix).
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace gpl;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner("Figure 18",
                    "GPL materialized intermediates vs selectivity (Q14), "
                    "normalized to input",
                    sf);

  const double input_mb =
      static_cast<double>(db.lineitem.byte_size() + db.part.byte_size()) /
      (1 << 20);
  std::printf("%12s %14s %14s %14s\n", "selectivity", "KBE (x input)",
              "GPL (x input)", "GPL/KBE");
  for (double sel : {0.01, 0.164, 0.25, 0.50, 0.75, 1.0}) {
    const QueryResult kbe =
        benchutil::Run(db, EngineMode::kKbe, queries::Q14(sel));
    const QueryResult gpl =
        benchutil::Run(db, EngineMode::kGpl, queries::Q14(sel));
    const double kbe_x =
        static_cast<double>(kbe.metrics.materialized_bytes) / (1 << 20) /
        input_mb;
    const double gpl_x =
        static_cast<double>(gpl.metrics.materialized_bytes) / (1 << 20) /
        input_mb;
    std::printf("%11.0f%% %14.2f %14.2f %13.0f%%\n", sel * 100.0, kbe_x, gpl_x,
                100.0 * gpl_x / kbe_x);
  }
  std::printf("(paper at 100%% selectivity: KBE materializes 1.38x the input, "
              "GPL only 0.22x)\n");
  return 0;
}
