/// Figure 27 (Appendix A.3.2): GPL and GPL (w/o CE) execution time
/// normalized to KBE on the NVIDIA K40, per TPC-H query. `--device=amd`
/// re-runs the same normalized comparison on the A10-7850K preset.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace gpl;
  const benchutil::BenchArgs args =
      benchutil::ParseBenchArgs(argc, argv, sim::DeviceSpec::NvidiaK40());
  const std::string& out_path = args.out;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  const sim::DeviceSpec& device = args.device;
  benchutil::Banner(
      "Figure 27",
      ("GPL runtime normalized to KBE (" + device.name + ")").c_str(), sf);

  benchutil::JsonlWriter jsonl(out_path);
  std::printf("%8s %12s %18s %14s %16s\n", "query", "KBE (norm)",
              "GPL w/o CE (norm)", "GPL (norm)", "GPL improvement");
  double best = 0.0;
  for (auto& [name, query] : queries::EvaluationSuite()) {
    const QueryResult kbe = benchutil::Run(db, EngineMode::kKbe, query, device);
    const QueryResult noce =
        benchutil::Run(db, EngineMode::kGplNoCe, query, device);
    const QueryResult gpl = benchutil::Run(db, EngineMode::kGpl, query, device);
    jsonl.Record(name, EngineMode::kKbe, device, kbe.metrics);
    jsonl.Record(name, EngineMode::kGplNoCe, device, noce.metrics);
    jsonl.Record(name, EngineMode::kGpl, device, gpl.metrics);
    const double improvement =
        100.0 * (1.0 - gpl.metrics.elapsed_ms / kbe.metrics.elapsed_ms);
    best = std::max(best, improvement);
    std::printf("%8s %12.2f %18.2f %14.2f %15.1f%%\n", name.c_str(), 1.0,
                noce.metrics.elapsed_ms / kbe.metrics.elapsed_ms,
                gpl.metrics.elapsed_ms / kbe.metrics.elapsed_ms, improvement);
  }
  if (jsonl.enabled()) std::printf("\nresults written to %s\n", out_path.c_str());
  std::printf("\nBest GPL improvement over KBE: %.1f%% (paper: ~50%% on the "
              "NVIDIA GPU, helped by C=16)\n",
              best);
  return 0;
}
