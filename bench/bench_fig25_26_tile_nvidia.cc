/// Figures 25 and 26 (Appendix A.3.1): Q8 runtime and model error with
/// varying tile sizes on the NVIDIA K40; the star marks the model's choice.
#include <cstdio>

#include "bench_util.h"
#include "model/plan_tuner.h"

int main() {
  using namespace gpl;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  const sim::DeviceSpec device = sim::DeviceSpec::NvidiaK40();
  benchutil::Banner("Figures 25/26",
                    "Q8 runtime and model error vs tile size (NVIDIA K40)",
                    sf);

  int64_t chosen_tile = 0;
  {
    EngineOptions options;
    options.mode = EngineMode::kGpl;
    options.device = device;
    Engine engine(&db, options);
    Result<GplRunResult> run =
        engine.ExecuteGplDetailed(*engine.Plan(queries::Q8()));
    GPL_CHECK(run.ok());
    double biggest = -1.0;
    for (const SegmentReport& seg : run->segments) {
      if (seg.measured_cycles > biggest) {
        biggest = seg.measured_cycles;
        chosen_tile = seg.tuning.params.tile_bytes;
      }
    }
  }

  double base_ms = 0.0;
  std::printf("%12s %12s %12s %14s %12s\n", "tile size", "time (ms)",
              "normalized", "estimated(ms)", "rel. error");
  for (int64_t tile : model::TileSizeGrid()) {
    model::TuningOverrides overrides;
    overrides.tile_bytes = tile;
    const QueryResult r =
        benchutil::Run(db, EngineMode::kGpl, queries::Q8(), device, overrides,
                       /*use_cost_model=*/false);
    if (base_ms == 0.0) base_ms = r.metrics.elapsed_ms;
    std::printf("%9lld KB %12.3f %12.2f %14.3f %11.1f%%%s\n",
                static_cast<long long>(tile / 1024), r.metrics.elapsed_ms,
                r.metrics.elapsed_ms / base_ms, r.metrics.predicted_ms,
                100.0 * r.metrics.RelativeError(),
                tile == chosen_tile ? "   * (model's choice)" : "");
  }
  std::printf("(paper: the model estimates the optimal tile size accurately "
              "on the K40 as well)\n");
  return 0;
}
