/// Figure 13: relative error in estimating GPL runtime with varying tile
/// sizes (Q8, AMD device).
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "model/plan_tuner.h"

int main() {
  using namespace gpl;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner("Figure 13",
                    "Model relative error vs tile size (Q8, AMD device)", sf);

  std::printf("%12s %14s %14s %12s\n", "tile size", "measured(ms)",
              "estimated(ms)", "rel. error");
  for (int64_t tile : model::TileSizeGrid()) {
    model::TuningOverrides overrides;
    overrides.tile_bytes = tile;
    const QueryResult r = benchutil::Run(db, EngineMode::kGpl, queries::Q8(),
                                         sim::DeviceSpec::AmdA10(), overrides,
                                         /*use_cost_model=*/false);
    std::printf("%9lld KB %14.3f %14.3f %11.1f%%\n",
                static_cast<long long>(tile / 1024), r.metrics.elapsed_ms,
                r.metrics.predicted_ms, 100.0 * r.metrics.RelativeError());
  }
  std::printf("(paper: the model tracks the tile-size trend with small "
              "errors)\n");
  return 0;
}
