/// Figure 23 (Appendix A.1): relationship between kernel-communication
/// configuration and throughput on the NVIDIA K40. Unlike the AMD pipe, the
/// Direct Data Transfer mechanism exposes no packet-size knob, so only the
/// number of channels and the data size are swept (Eq. 11).
#include <cstdio>

#include "bench_util.h"
#include "model/calibration.h"

int main() {
  using namespace gpl;
  const sim::DeviceSpec device = sim::DeviceSpec::NvidiaK40();
  sim::Simulator simulator(device);
  benchutil::Banner("Figure 23",
                    "Channel throughput vs (#channels, N) on the NVIDIA K40",
                    0);

  const int channel_counts[] = {1, 2, 4, 8, 16, 32};
  const int64_t sizes_k[] = {512, 1024, 2048, 4096, 8192};

  std::printf("%12s", "N (K ints)");
  for (int n : channel_counts) std::printf("  n=%-8d", n);
  std::printf("\n");
  for (int64_t nk : sizes_k) {
    std::printf("%12lld", static_cast<long long>(nk));
    for (int n : channel_counts) {
      sim::ChannelConfig config;
      config.num_channels = n;
      config.packet_bytes = 16;  // fixed: the K40 exposes no packet knob
      const sim::SimResult r =
          model::RunProducerConsumer(simulator, config, nk * 1024 * 4);
      const double gbps = static_cast<double>(nk * 1024 * 4) /
                          r.elapsed_cycles() * device.core_mhz * 1e6 / 1e9;
      std::printf("  %8.2f ", gbps);
    }
    std::printf("\n");
  }
  std::printf("(entries are end-to-end producer-consumer throughput, GB/s)\n");
  return 0;
}
