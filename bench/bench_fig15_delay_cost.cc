/// Figure 15: delay cost with varying resource allocations (work-group
/// settings S1..S7), normalized to S1, for Q8 on the AMD device. The starred
/// setting is the one the cost model selects.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace gpl;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner("Figure 15",
                    "Pipeline delay cost vs work-group setting S1..S7 "
                    "(Q8, AMD device)",
                    sf);

  // The model's preferred (uniform-equivalent) allocation, for the star.
  int chosen_wg = 0;
  {
    EngineOptions options;
    options.mode = EngineMode::kGpl;
    Engine engine(&db, options);
    Result<GplRunResult> run =
        engine.ExecuteGplDetailed(*engine.Plan(queries::Q8()));
    GPL_CHECK(run.ok());
    double biggest = -1.0;
    for (const SegmentReport& seg : run->segments) {
      if (seg.measured_cycles > biggest && !seg.tuning.params.workgroups.empty()) {
        biggest = seg.measured_cycles;
        chosen_wg = seg.tuning.params.workgroups[0];
      }
    }
  }

  double base_delay = 0.0;
  double best_time = 0.0;
  int best_setting = 0;
  std::printf("%8s %6s %16s %16s %12s\n", "setting", "wg_Ki", "delay (cycles)",
              "normalized", "total (ms)");
  for (int i = 1; i <= 7; ++i) {
    const int wg = 2 << (i - 1);
    model::TuningOverrides overrides;
    overrides.workgroups_per_kernel = wg;
    const QueryResult r = benchutil::Run(db, EngineMode::kGpl, queries::Q8(),
                                         sim::DeviceSpec::AmdA10(), overrides,
                                         /*use_cost_model=*/false);
    const double delay = r.metrics.counters.stall_cycles;
    if (base_delay == 0.0) base_delay = delay;
    if (best_time == 0.0 || r.metrics.elapsed_ms < best_time) {
      best_time = r.metrics.elapsed_ms;
      best_setting = i;
    }
    std::printf("%7s%d %6d %16.0f %16.2f %12.3f\n", "S", i, wg, delay,
                delay / base_delay, r.metrics.elapsed_ms);
  }
  std::printf("\nFastest setting: S%d; model-selected wg_Ki (dominant "
              "segment): %d\n",
              best_setting, chosen_wg);
  std::printf("(paper: the minimum-delay allocation is also the fastest; the "
              "model finds it)\n");
  return 0;
}
