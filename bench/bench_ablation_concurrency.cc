/// Ablation: the concurrency degree C (Table 1: 2 on the AMD GPU, 16 on the
/// NVIDIA GPU). Sweeping C on the AMD device isolates how much of GPL's win
/// comes from concurrent kernel execution as opposed to tiling + channels —
/// the dimension behind Eq. 9's 1/C term and the w/o-CE ablation.
#include <cstdio>

#include <vector>

#include "bench_util.h"

int main() {
  using namespace gpl;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner("Ablation: concurrency degree",
                    "GPL total runtime for the 5-query suite as C varies "
                    "(AMD device otherwise)",
                    sf);

  struct Row {
    int c;
    double total;
    double valu;
  };
  std::vector<Row> rows;
  double baseline = 0.0;
  for (int c : {1, 2, 4, 8, 16}) {
    sim::DeviceSpec device = sim::DeviceSpec::AmdA10();
    device.concurrent_kernels = c;
    double total = 0.0;
    double valu = 0.0;
    for (auto& [name, query] : queries::EvaluationSuite()) {
      const QueryResult r = benchutil::Run(db, EngineMode::kGpl, query, device);
      total += r.metrics.elapsed_ms;
      valu += r.metrics.valu_busy;
    }
    if (c == 2) baseline = total;
    rows.push_back({c, total, valu});
  }
  std::printf("%4s %14s %16s %12s\n", "C", "total (ms)", "vs C=2 (Table 1)",
              "avg VALUBusy");
  for (const Row& row : rows) {
    std::printf("%4d %14.3f %15.2fx %11.1f%%\n", row.c, row.total,
                row.total / baseline, 100.0 * row.valu / 5.0);
  }
  std::printf("\n(C=1 degenerates towards serialized kernels; beyond the "
              "pipeline depth extra concurrency stops helping)\n");
  return 0;
}
