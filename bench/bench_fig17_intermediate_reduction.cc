/// Figure 17: size of intermediate results materialized in global memory in
/// GPL, normalized to KBE, per TPC-H query.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace gpl;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner("Figure 17",
                    "GPL materialized intermediates normalized to KBE", sf);

  std::printf("%8s %14s %14s %14s %16s\n", "query", "KBE (MB)", "GPL (MB)",
              "normalized", "via channel (MB)");
  for (auto& [name, query] : queries::EvaluationSuite()) {
    const QueryResult kbe = benchutil::Run(db, EngineMode::kKbe, query);
    const QueryResult gpl = benchutil::Run(db, EngineMode::kGpl, query);
    const double kbe_mb =
        static_cast<double>(kbe.metrics.materialized_bytes) / (1 << 20);
    const double gpl_mb =
        static_cast<double>(gpl.metrics.materialized_bytes) / (1 << 20);
    const double chan_mb =
        static_cast<double>(gpl.metrics.channel_bytes) / (1 << 20);
    std::printf("%8s %14.2f %14.2f %13.0f%% %16.2f\n", name.c_str(), kbe_mb,
                gpl_mb, 100.0 * gpl_mb / kbe_mb, chan_mb);
  }
  std::printf("(paper: GPL materializes only 15-33%% of KBE's intermediates; "
              "the rest flows through channels)\n");
  return 0;
}
