/// Fusion ablation: the three-way engine comparison behind EngineMode::kFused.
/// Per evaluation query (Q5/Q7/Q8/Q9/Q14) this runs kernel-at-a-time (kbe),
/// the GPL channel pipeline (gpl), and the fused mode (the tuner picking per
/// segment among pipelined / kernel-at-a-time / fused chains) and reports
/// simulated elapsed time, the fused/gpl ratio, and the fusion counters
/// (fused segments, launches saved, interior bytes never materialized).
///
/// --quick turns the bench into a smoke gate for scripts/check.sh: exit 1 if
/// any fused result is not bit-identical to the KBE oracle, if the tuner's
/// fused pick fails to beat the pure GPL pipeline on at least 2 of the 5
/// queries (with fusion actually firing on those wins), or if no launches
/// were saved anywhere.
///
/// JSONL rows carry a unique "case" key (the query name) so
/// scripts/bench_diff.py can diff runs against the committed baseline
/// (bench/baselines/fusion_ablation_quick.jsonl); "fused_over_gpl" is the
/// fused/gpl elapsed ratio, so higher-is-worse like every other diffed field.
#include <cstdio>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"

namespace {

using namespace gpl;

bool TablesBitIdentical(const Table& expected, const Table& actual) {
  if (expected.num_columns() != actual.num_columns() ||
      expected.num_rows() != actual.num_rows()) {
    return false;
  }
  for (int64_t i = 0; i < expected.num_columns(); ++i) {
    if (expected.ColumnNameAt(i) != actual.ColumnNameAt(i)) return false;
    const Column& e = expected.ColumnAt(i);
    const Column& a = actual.ColumnAt(i);
    if (e.type() != a.type()) return false;
    if (e.data32() != a.data32() || e.data64() != a.data64() ||
        e.dataf() != a.dataf()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchArgs args =
      benchutil::ParseBenchArgs(argc, argv, sim::DeviceSpec::AmdA10());
  const std::string out =
      args.out.empty() ? "BENCH_fusion_ablation.json" : args.out;

  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner(
      "Fusion ablation",
      ("kbe vs gpl vs fused per query, bit-identical results (" +
       args.device.name + ")")
          .c_str(),
      sf);

  std::vector<std::pair<std::string, LogicalQuery>> workload;
  for (auto& [name, query] : queries::EvaluationSuite()) {
    if (name == "Q5" || name == "Q7" || name == "Q8" || name == "Q9" ||
        name == "Q14") {
      workload.emplace_back(name, query);
    }
  }
  GPL_CHECK(workload.size() == 5);

  benchutil::JsonlWriter jsonl(out);
  std::printf("%6s %12s %12s %12s %10s %6s %7s %12s %7s\n", "query",
              "kbe (ms)", "gpl (ms)", "fused (ms)", "fused/gpl", "fseg",
              "saved", "avoided (KB)", "bit-id");

  int fused_wins = 0;
  int total_launches_saved = 0;
  bool all_bit_identical = true;

  for (auto& [name, query] : workload) {
    const QueryResult kbe =
        benchutil::Run(db, EngineMode::kKbe, query, args.device);
    const QueryResult gpl =
        benchutil::Run(db, EngineMode::kGpl, query, args.device);
    const QueryResult fused =
        benchutil::Run(db, EngineMode::kFused, query, args.device);

    const bool bit_identical = TablesBitIdentical(kbe.table, fused.table);
    all_bit_identical = all_bit_identical && bit_identical;
    const QueryMetrics& fm = fused.metrics;
    const double ratio = gpl.metrics.elapsed_ms > 0.0
                             ? fm.elapsed_ms / gpl.metrics.elapsed_ms
                             : 0.0;
    const bool win =
        fm.elapsed_ms < gpl.metrics.elapsed_ms && fm.fused_segments > 0;
    if (win) fused_wins++;
    total_launches_saved += fm.fused_launches_saved;

    std::printf("%6s %12.4f %12.4f %12.4f %10.3f %6lld %7lld %12.1f %7s\n",
                name.c_str(), kbe.metrics.elapsed_ms, gpl.metrics.elapsed_ms,
                fm.elapsed_ms, ratio,
                static_cast<long long>(fm.fused_segments),
                static_cast<long long>(fm.fused_launches_saved),
                static_cast<double>(fm.fused_bytes_avoided) / 1024.0,
                bit_identical ? "yes" : "NO");

    std::ostringstream row;
    row.precision(6);
    row << "{\"bench\":\"fusion_ablation\",\"case\":\"" << name
        << "\",\"query\":\"" << name << "\",\"device\":\"" << args.device.name
        << "\",\"kbe_ms\":" << kbe.metrics.elapsed_ms
        << ",\"gpl_ms\":" << gpl.metrics.elapsed_ms
        << ",\"fused_ms\":" << fm.elapsed_ms
        << ",\"fused_over_gpl\":" << ratio
        << ",\"fused_segments\":" << fm.fused_segments
        << ",\"fused_launches_saved\":" << fm.fused_launches_saved
        << ",\"fused_bytes_avoided\":" << fm.fused_bytes_avoided
        << ",\"bit_identical\":" << (bit_identical ? "true" : "false") << "}";
    jsonl.Line(row.str());
  }

  if (jsonl.enabled()) std::printf("results written to %s\n", out.c_str());
  std::printf("(fused = tuner-selected per segment; elapsed is simulated)\n");

  if (args.quick) {
    int failures = 0;
    if (!all_bit_identical) {
      std::fprintf(stderr,
                   "FAIL: fused results are not bit-identical to KBE\n");
      failures++;
    }
    // The point of the mode: the per-segment choice must pay off on a
    // meaningful share of the suite, with fusion actually firing.
    if (fused_wins < 2) {
      std::fprintf(stderr,
                   "FAIL: fused beats gpl on %d of 5 queries (want >= 2, "
                   "with fused_segments > 0 on the wins)\n",
                   fused_wins);
      failures++;
    }
    if (total_launches_saved <= 0) {
      std::fprintf(stderr, "FAIL: no kernel launches saved anywhere\n");
      failures++;
    }
    return failures == 0 ? 0 : 1;
  }
  return 0;
}
