/// Figure 24 (Appendix A.3.1): relative error of the analytical model on the
/// NVIDIA K40, per TPC-H query.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace gpl;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner("Figure 24",
                    "Relative error in estimating GPL runtime (NVIDIA K40)",
                    sf);

  std::printf("%8s %14s %14s %14s\n", "query", "measured(ms)",
              "estimated(ms)", "rel. error");
  for (auto& [name, query] : queries::EvaluationSuite()) {
    const QueryResult r = benchutil::Run(db, EngineMode::kGpl, query,
                                         sim::DeviceSpec::NvidiaK40());
    std::printf("%8s %14.3f %14.3f %13.1f%%\n", name.c_str(),
                r.metrics.elapsed_ms, r.metrics.predicted_ms,
                100.0 * r.metrics.RelativeError());
  }
  std::printf("(paper: small relative error on the NVIDIA GPU as well)\n");
  return 0;
}
