/// Figure 3: size of intermediate results in KBE with varying selectivity
/// (Q14), normalized to the query's input size.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace gpl;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner("Figure 3",
                    "KBE intermediate result size vs selectivity (Q14), "
                    "normalized to input",
                    sf);

  // Input size: the columns Q14 reads from lineitem and part.
  std::printf("%12s %18s %14s\n", "selectivity", "intermediates (MB)",
              "normalized");
  for (double sel : {0.01, 0.164, 0.25, 0.50, 0.75, 1.0}) {
    const QueryResult r =
        benchutil::Run(db, EngineMode::kKbe, queries::Q14(sel));
    const double input_mb =
        static_cast<double>(db.lineitem.byte_size() + db.part.byte_size()) /
        (1 << 20);
    const double inter_mb =
        static_cast<double>(r.metrics.materialized_bytes) / (1 << 20);
    std::printf("%11.0f%% %18.2f %14.2f\n", sel * 100.0, inter_mb,
                inter_mb / input_mb);
  }
  std::printf("(paper: normalized size grows with selectivity, exceeding the "
              "input beyond ~75%%)\n");
  return 0;
}
