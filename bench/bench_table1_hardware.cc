/// Table 1: hardware specification of the two simulated devices.
#include <cstdio>

#include "common/math_util.h"
#include "sim/device.h"

int main() {
  using gpl::sim::DeviceSpec;
  const DeviceSpec amd = DeviceSpec::AmdA10();
  const DeviceSpec nv = DeviceSpec::NvidiaK40();

  std::printf("Table 1: Hardware specification (simulated devices)\n");
  std::printf("%-28s %14s %14s\n", "", "AMD", "NVIDIA");
  std::printf("%-28s %14d %14d\n", "#CU", amd.num_cus, nv.num_cus);
  std::printf("%-28s %14d %14d\n", "Core frequency (MHz)", amd.core_mhz,
              nv.core_mhz);
  std::printf("%-28s %14lld %14lld\n", "Private memory/CU (KB)",
              static_cast<long long>(amd.private_mem_per_cu / 1024),
              static_cast<long long>(nv.private_mem_per_cu / 1024));
  std::printf("%-28s %14lld %14lld\n", "Local memory/CU (KB)",
              static_cast<long long>(amd.local_mem_per_cu / 1024),
              static_cast<long long>(nv.local_mem_per_cu / 1024));
  std::printf("%-28s %14lld %14lld\n", "Global memory (GB)",
              static_cast<long long>(amd.global_mem_bytes >> 30),
              static_cast<long long>(nv.global_mem_bytes >> 30));
  std::printf("%-28s %14.1f %14.1f\n", "Cache (MB)",
              static_cast<double>(amd.cache_bytes) / (1 << 20),
              static_cast<double>(nv.cache_bytes) / (1 << 20));
  std::printf("%-28s %14d %14d\n", "Concurrent kernels",
              amd.concurrent_kernels, nv.concurrent_kernels);
  std::printf("%-28s %14s %14s\n", "Programming API (emulated)", "OpenCL",
              "CUDA");
  std::printf("%-28s %14s %14s\n", "Channel packet-size knob",
              amd.has_packet_size_param ? "yes (pipe)" : "no",
              nv.has_packet_size_param ? "yes (pipe)" : "no (DDT)");
  return 0;
}
