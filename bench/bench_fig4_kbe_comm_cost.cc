/// Figure 4: high communication cost in KBE query execution with varying
/// selectivity (Q14) on the AMD device: memory-stall cost vs other cost.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace gpl;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner("Figure 4",
                    "KBE communication (Mem_cost) share vs selectivity (Q14)",
                    sf);

  std::printf("%12s %12s %12s %12s %12s\n", "selectivity", "total (ms)",
              "Mem_cost", "other", "mem share");
  for (double sel : {0.01, 0.164, 0.25, 0.50, 0.75, 1.0}) {
    const QueryResult r =
        benchutil::Run(db, EngineMode::kKbe, queries::Q14(sel));
    const QueryMetrics& m = r.metrics;
    const double other = m.elapsed_ms - m.mem_ms;
    std::printf("%11.0f%% %12.3f %12.3f %12.3f %11.0f%%\n", sel * 100.0,
                m.elapsed_ms, m.mem_ms, other,
                100.0 * m.mem_ms / m.elapsed_ms);
  }
  std::printf("(paper: memory cost dominates KBE and grows with "
              "selectivity)\n");
  return 0;
}
