/// Figure 16: comparison between KBE, GPL (w/o CE) and GPL on the AMD
/// device, per TPC-H query (normalized to KBE). `--device=nvidia` re-runs
/// the same comparison on the K40 preset.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace gpl;
  const benchutil::BenchArgs args =
      benchutil::ParseBenchArgs(argc, argv, sim::DeviceSpec::AmdA10());
  const std::string& out_path = args.out;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  const sim::DeviceSpec& device = args.device;
  benchutil::Banner(
      "Figure 16",
      ("KBE vs GPL (w/o CE) vs GPL per query (" + device.name + ")").c_str(),
      sf);

  benchutil::JsonlWriter jsonl(out_path);
  std::printf("%8s %12s %16s %12s %18s\n", "query", "KBE (ms)",
              "GPL w/o CE (ms)", "GPL (ms)", "GPL improvement");
  double best_improvement = 0.0;
  for (auto& [name, query] : queries::EvaluationSuite()) {
    const QueryResult kbe = benchutil::Run(db, EngineMode::kKbe, query, device);
    const QueryResult noce =
        benchutil::Run(db, EngineMode::kGplNoCe, query, device);
    const QueryResult gpl = benchutil::Run(db, EngineMode::kGpl, query, device);
    jsonl.Record(name, EngineMode::kKbe, device, kbe.metrics);
    jsonl.Record(name, EngineMode::kGplNoCe, device, noce.metrics);
    jsonl.Record(name, EngineMode::kGpl, device, gpl.metrics);
    const double improvement =
        100.0 * (1.0 - gpl.metrics.elapsed_ms / kbe.metrics.elapsed_ms);
    best_improvement = std::max(best_improvement, improvement);
    std::printf("%8s %12.3f %16.3f %12.3f %17.1f%%\n", name.c_str(),
                kbe.metrics.elapsed_ms, noce.metrics.elapsed_ms,
                gpl.metrics.elapsed_ms, improvement);
  }
  if (jsonl.enabled()) std::printf("\nresults written to %s\n", out_path.c_str());
  std::printf("\nBest GPL improvement over KBE: %.1f%% (paper: up to 48%% on "
              "the AMD GPU)\n",
              best_improvement);
  std::printf("(paper: tiling alone — w/o CE — degrades performance; tiling "
              "+ channels + concurrency wins)\n");
  return 0;
}
