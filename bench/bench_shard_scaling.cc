/// Shard scaling: simulated elapsed time of the five evaluation queries as
/// the fact table is partitioned across 1/2/4/8 simulated devices. Not a
/// paper figure — the paper executes on one GPU — but the natural scale-out
/// question for its engine: how far does data-parallel sharding carry each
/// query before exchange and the serial merge dominate?
///
/// Per (shards, query): simulated elapsed, speedup vs single device,
/// exchange bytes/ms (dimension broadcast + partial shuffle over the link),
/// merge ms, mean device utilization, and whether the sharded result is
/// bit-identical to the single-device table. JSONL rows go to --out
/// (default BENCH_shard_scaling.json).
///
/// --quick runs shard counts {1, 2, 4} only and turns the bench into a
/// smoke gate for scripts/check.sh: exit 1 if any sharded result is not
/// bit-identical to single-device, if any query's speedup degrades going
/// 1 -> 2 -> 4 shards (small tolerance for exchange jitter), if no query
/// reaches 1.5x at 4 shards, if Q9 fails to beat the single device at 4
/// shards, or if the 1-shard run is not within noise of the unsharded
/// engine (ExecOptions::shards == 1 must route to the plain path).
///
/// JSONL rows carry a unique "case" key ("Q9x4") so scripts/bench_diff.py
/// can diff runs against the committed baseline
/// (bench/baselines/shard_scaling_quick.jsonl); "inv_speedup" is
/// 1 / speedup, so higher-is-worse like every other diffed field.
///
/// Flags: --device=<list> uses a mixed group when given several names
/// (shard counts then sweep only sizes equal to the list length);
/// --link-gbps=<G> overrides the link bandwidth; --partition=hash|range
/// picks the partitioning scheme.
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "shard/device_group.h"
#include "shard/partition_scheme.h"

namespace {

using namespace gpl;

bool TablesBitIdentical(const Table& expected, const Table& actual) {
  if (expected.num_columns() != actual.num_columns() ||
      expected.num_rows() != actual.num_rows()) {
    return false;
  }
  for (int64_t i = 0; i < expected.num_columns(); ++i) {
    if (expected.ColumnNameAt(i) != actual.ColumnNameAt(i)) return false;
    const Column& e = expected.ColumnAt(i);
    const Column& a = actual.ColumnAt(i);
    if (e.type() != a.type()) return false;
    if (e.data32() != a.data32() || e.data64() != a.data64() ||
        e.dataf() != a.dataf()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_shard_scaling.json";
  bool quick = false;
  std::vector<sim::DeviceSpec> devices = {sim::DeviceSpec::AmdA10()};
  double link_gbps = 0.0;
  shard::PartitionScheme scheme = shard::PartitionScheme::kHash;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(arg, "--device=", 9) == 0) {
      Result<std::vector<sim::DeviceSpec>> parsed = ParseDeviceList(arg + 9);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 2;
      }
      devices = parsed.take();
    } else if (std::strncmp(arg, "--link-gbps=", 12) == 0) {
      link_gbps = std::atof(arg + 12);
    } else if (std::strncmp(arg, "--partition=", 12) == 0) {
      Result<shard::PartitionScheme> parsed =
          shard::ParsePartitionScheme(arg + 12);
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 2;
      }
      scheme = parsed.take();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out=results.jsonl] [--device=amd,nvidia,...] "
                   "[--link-gbps=G] [--partition=hash|range] [--quick]\n",
                   argv[0]);
      return 2;
    }
  }

  // Sharding pays off only once data volume dominates fixed launch
  // overhead, so this bench defaults to a larger SF than the others.
  const double sf = benchutil::ScaleFactor(0.1);
  const tpch::Database& db = benchutil::Db(sf);
  sim::LinkSpec link;
  if (link_gbps > 0.0) link.gbytes_per_sec = link_gbps;
  benchutil::Banner(
      "Shard scaling",
      ("simulated elapsed vs shard count, bit-identical results (" +
       devices.front().name + (devices.size() > 1 ? " + mixed" : "") + ", " +
       std::string(shard::PartitionSchemeName(scheme)) + " partitioning)")
          .c_str(),
      sf);

  // One calibration per distinct device, shared by the baseline engine and
  // every sharded executor (the table is immutable and device-dependent).
  std::map<std::string, model::CalibrationTable> calibrations;
  for (const sim::DeviceSpec& spec : devices) {
    if (calibrations.count(spec.name) == 0) {
      calibrations.emplace(spec.name,
                           model::CalibrationTable::Run(sim::Simulator(spec)));
    }
  }

  std::vector<std::pair<std::string, LogicalQuery>> workload;
  for (auto& [name, query] : queries::EvaluationSuite()) {
    if (name == "Q5" || name == "Q7" || name == "Q8" || name == "Q9" ||
        name == "Q14") {
      workload.emplace_back(name, query);
    }
  }
  GPL_CHECK(workload.size() == 5);

  // ONE engine serves the whole sweep: unsharded truth with the default
  // ExecOptions, every sharded point by setting ExecOptions::shards (the
  // engine routes through its ShardedExecutor internally).
  EngineOptions options;
  options.mode = EngineMode::kGpl;
  options.device = devices.front();
  options.calibration = &calibrations.at(devices.front().name);
  options.device_calibrations = &calibrations;
  Engine engine(&db, options);
  std::vector<QueryResult> truth;
  for (auto& [name, query] : workload) {
    Result<QueryResult> result = engine.Execute(query);
    GPL_CHECK(result.ok()) << name << ": " << result.status().ToString();
    truth.push_back(result.take());
  }

  // A multi-device --device= list defines the group outright; otherwise
  // sweep homogeneous groups of the requested shard counts.
  std::vector<int> shard_counts;
  if (devices.size() > 1) {
    shard_counts = {static_cast<int>(devices.size())};
  } else {
    shard_counts = quick ? std::vector<int>{1, 2, 4}
                         : std::vector<int>{1, 2, 4, 8};
  }

  benchutil::JsonlWriter jsonl(out);
  std::printf("%7s %6s %13s %9s %14s %11s %7s %7s\n", "shards", "query",
              "elapsed (ms)", "speedup", "exchange (KB)", "merge (ms)",
              "util", "bit-id");

  // speedups[query][shard count] for the monotonicity gate.
  std::map<std::string, std::map<int, double>> speedups;
  bool all_bit_identical = true;
  // Q5's compound-key join must stay provably co-partitioned: combine merge
  // with zero stitched rows at every sharded point.
  bool q5_combines = true;
  // Q9 at 4 shards: chosen relation-exchange bytes vs the all-broadcast
  // counterfactual (the repartition of partsupp must undercut it).
  int64_t q9_exchange_at_4 = -1;
  int64_t q9_all_broadcast_at_4 = -1;

  for (int n : shard_counts) {
    ExecOptions exec = options.exec;
    exec.shards = n;
    exec.partition = scheme;
    exec.link_gbps = link_gbps;
    if (devices.size() > 1) exec.device_list = devices;
    const std::string group_label =
        devices.size() > 1
            ? shard::DeviceGroup{devices, link}.ToString()
            : shard::DeviceGroup::Homogeneous(devices.front(), n, link)
                  .ToString();

    for (size_t q = 0; q < workload.size(); ++q) {
      const auto& [name, query] = workload[q];
      Result<QueryResult> result = engine.Execute(query, exec);
      GPL_CHECK(result.ok()) << name << " x" << n << ": "
                             << result.status().ToString();
      const QueryMetrics& m = result->metrics;

      const bool bit_identical =
          TablesBitIdentical(truth[q].table, result->table);
      all_bit_identical = all_bit_identical && bit_identical;
      const double speedup =
          m.elapsed_ms > 0.0 ? truth[q].metrics.elapsed_ms / m.elapsed_ms
                             : 0.0;
      speedups[name][n] = speedup;
      if (name == "Q5" && n > 1 &&
          (!m.partial_combine || m.stitched_rows != 0)) {
        q5_combines = false;
      }
      if (name == "Q9" && n == 4) {
        q9_exchange_at_4 = m.broadcast_bytes;
        q9_all_broadcast_at_4 = m.exchange_all_broadcast_bytes;
      }
      double mean_util = 0.0;
      for (double u : m.device_utilization) mean_util += u;
      if (!m.device_utilization.empty()) {
        mean_util /= static_cast<double>(m.device_utilization.size());
      }

      std::printf("%7d %6s %13.3f %8.2fx %14.1f %11.4f %6.0f%% %7s\n", n,
                  name.c_str(), m.elapsed_ms, speedup,
                  static_cast<double>(m.exchange_bytes) / 1024.0, m.merge_ms,
                  mean_util * 100.0, bit_identical ? "yes" : "NO");

      std::ostringstream row;
      row.precision(6);
      row << "{\"bench\":\"shard_scaling\",\"case\":\"" << name << "x" << n
          << "\",\"group\":\"" << group_label
          << "\",\"partition\":\"" << shard::PartitionSchemeName(scheme)
          << "\",\"query\":\"" << name << "\",\"shards\":" << n
          << ",\"elapsed_ms\":" << m.elapsed_ms
          << ",\"single_device_ms\":" << truth[q].metrics.elapsed_ms
          << ",\"speedup\":" << speedup
          << ",\"inv_speedup\":" << (speedup > 0.0 ? 1.0 / speedup : 0.0)
          << ",\"broadcast_bytes\":" << m.broadcast_bytes
          << ",\"all_broadcast_bytes\":" << m.exchange_all_broadcast_bytes
          << ",\"shuffle_bytes\":" << m.shuffle_bytes
          << ",\"exchange_ms\":" << m.exchange_ms
          << ",\"merge_ms\":" << m.merge_ms
          << ",\"partial_combine\":" << (m.partial_combine ? "true" : "false")
          << ",\"stitched_rows\":" << m.stitched_rows
          << ",\"mean_utilization\":" << mean_util
          << ",\"bit_identical\":" << (bit_identical ? "true" : "false")
          << "}";
      jsonl.Line(row.str());
    }
    std::printf("\n");
  }

  if (jsonl.enabled()) std::printf("results written to %s\n", out.c_str());
  std::printf("(elapsed = max over devices + serialized exchange + serial "
              "merge on device 0)\n");

  if (quick && devices.size() == 1) {
    int failures = 0;
    if (!all_bit_identical) {
      std::fprintf(
          stderr,
          "FAIL: sharded results are not bit-identical to single device\n");
      failures++;
    }
    // Adding devices must not slow a query down: going 1 -> 2 -> 4 shards,
    // speedup may only grow (small tolerance for exchange cost on
    // nearly-flat queries).
    constexpr double kTolerance = 0.05;
    double best_at_4 = 0.0;
    double q9_at_4 = 0.0;
    for (const auto& [name, by_count] : speedups) {
      double previous = 0.0;
      for (const auto& [n, speedup] : by_count) {
        if (speedup + kTolerance < previous) {
          std::fprintf(stderr,
                       "FAIL: %s speedup degrades at %d shards (%.2fx after "
                       "%.2fx)\n",
                       name.c_str(), n, speedup, previous);
          failures++;
        }
        previous = speedup;
        if (n == 4 && speedup > best_at_4) best_at_4 = speedup;
        if (n == 4 && name == "Q9") q9_at_4 = speedup;
      }
    }
    if (best_at_4 < 1.5) {
      std::fprintf(stderr,
                   "FAIL: no query reaches 1.5x at 4 shards (best %.2fx)\n",
                   best_at_4);
      failures++;
    }
    // Distributed execution must beat the single device on Q9 (the deepest
    // join tree of the suite) once four devices share the work.
    if (q9_at_4 <= 1.0) {
      std::fprintf(stderr, "FAIL: Q9 at 4 shards is %.2fx (want > 1.0x)\n",
                   q9_at_4);
      failures++;
    }
    // Q5's compound join ({l_orderkey,l_suppkey} = {o_orderkey,s_suppkey})
    // is provably co-partitioned on the aligned orderkey pair; falling back
    // to the row-id stitch would regress the classifier.
    if (!q5_combines) {
      std::fprintf(stderr,
                   "FAIL: Q5 did not take the partial-aggregate combine "
                   "merge (zero stitched rows) at every shard count\n");
      failures++;
    }
    // Q9 must repartition partsupp onto the attach-join spine instead of
    // broadcasting it: the chosen relation-exchange volume at 4 shards has
    // to undercut the all-broadcast counterfactual.
    if (q9_exchange_at_4 < 0 || q9_all_broadcast_at_4 <= 0 ||
        q9_exchange_at_4 >= q9_all_broadcast_at_4) {
      std::fprintf(stderr,
                   "FAIL: Q9 at 4 shards ships %lld relation-exchange bytes, "
                   "not below the %lld all-broadcast baseline\n",
                   static_cast<long long>(q9_exchange_at_4),
                   static_cast<long long>(q9_all_broadcast_at_4));
      failures++;
    }
    // ExecOptions::shards == 1 must route to the plain single-device path:
    // the 1-shard point may not deviate from the unsharded run (simulated
    // time is deterministic, so "noise" here is only serialization rounding).
    for (const auto& [name, by_count] : speedups) {
      const auto one = by_count.find(1);
      if (one == by_count.end()) continue;
      if (one->second < 0.99 || one->second > 1.01) {
        std::fprintf(stderr,
                     "FAIL: %s at 1 shard is %.4fx the unsharded engine "
                     "(want 1.0x: shards=1 must bypass sharding)\n",
                     name.c_str(), one->second);
        failures++;
      }
    }
    return failures == 0 ? 0 : 1;
  }
  return 0;
}
