/// Figure 21: query execution time with varying data size (scale factor
/// sweep), KBE vs GPL on the AMD device. The paper sweeps SF 0.1-10; the
/// default sweep here is scaled down (set GPL_BENCH_SF to raise the
/// upper end: the sweep runs {SF/8, SF/4, SF/2, SF}).
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace gpl;
  const double top = benchutil::ScaleFactor(0.16);
  benchutil::Banner("Figure 21",
                    "Runtime vs data size: KBE vs GPL (AMD device)", top);

  std::printf("%8s %10s %12s %12s %14s\n", "SF", "query", "KBE (ms)",
              "GPL (ms)", "improvement");
  for (double sf : {top / 8.0, top / 4.0, top / 2.0, top}) {
    const tpch::Database& db = benchutil::Db(sf);
    double kbe_total = 0.0, gpl_total = 0.0;
    for (auto& [name, query] : queries::EvaluationSuite()) {
      const QueryResult kbe = benchutil::Run(db, EngineMode::kKbe, query);
      const QueryResult gpl = benchutil::Run(db, EngineMode::kGpl, query);
      kbe_total += kbe.metrics.elapsed_ms;
      gpl_total += gpl.metrics.elapsed_ms;
      std::printf("%8.3f %10s %12.3f %12.3f %13.1f%%\n", sf, name.c_str(),
                  kbe.metrics.elapsed_ms, gpl.metrics.elapsed_ms,
                  100.0 * (1.0 - gpl.metrics.elapsed_ms /
                                     kbe.metrics.elapsed_ms));
    }
    std::printf("%8.3f %10s %12.3f %12.3f %13.1f%%\n", sf, "ALL", kbe_total,
                gpl_total, 100.0 * (1.0 - gpl_total / kbe_total));
  }
  std::printf("(paper: GPL's advantage grows with the data size)\n");
  return 0;
}
