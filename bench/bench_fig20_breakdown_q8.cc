/// Figure 20: query execution time breakdown for Q8 on the AMD device, KBE
/// vs GPL; also reports the cache-hit-ratio improvement mentioned in Section
/// 5.3.2 (~27% for Q8 in the paper).
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace gpl;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner("Figure 20",
                    "Q8 execution-time breakdown: KBE vs GPL (AMD device)",
                    sf);

  const QueryResult kbe = benchutil::Run(db, EngineMode::kKbe, queries::Q8());
  const QueryResult gpl = benchutil::Run(db, EngineMode::kGpl, queries::Q8());

  auto print_row = [](const char* label, const QueryMetrics& m) {
    std::printf("%-8s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f %9.0f%%\n",
                label, m.elapsed_ms, m.compute_ms, m.mem_ms, m.dc_ms,
                m.delay_ms, m.other_ms, 100.0 * m.CommunicationFraction());
  };
  std::printf("%-8s %10s %10s %10s %10s %10s %10s %10s\n", "engine", "total",
              "compute", "Mem_cost", "DC_cost", "Delay", "launch", "comm %");
  print_row("KBE", kbe.metrics);
  print_row("GPL", gpl.metrics);

  std::printf("\nCache hit ratio: KBE %.1f%% -> GPL %.1f%% (+%.0f%%, paper: "
              "+27%% for Q8)\n",
              100.0 * kbe.metrics.cache_hit_ratio,
              100.0 * gpl.metrics.cache_hit_ratio,
              100.0 * (gpl.metrics.cache_hit_ratio /
                           kbe.metrics.cache_hit_ratio -
                       1.0));
  std::printf("(paper: communication is up to 34%% of KBE's runtime but at "
              "most 14%% of GPL's)\n");
  return 0;
}
