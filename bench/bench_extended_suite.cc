/// Extension beyond the paper: the engines compared on six additional TPC-H
/// queries (Q1, Q3, Q6, Q10, Q12, Q19) to check that GPL's pipelined
/// advantage is not specific to the five queries of Section 5.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace gpl;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner("Extension: extended TPC-H suite",
                    "KBE vs GPL (w/o CE) vs GPL vs Ocelot on Q1/Q3/Q6/Q10/"
                    "Q12/Q19 (AMD device)",
                    sf);

  std::printf("%6s %12s %16s %12s %12s %16s\n", "query", "KBE (ms)",
              "GPL w/o CE (ms)", "GPL (ms)", "Ocelot (ms)", "GPL improvement");
  double best = 0.0;
  for (auto& [name, query] : queries::ExtendedSuite()) {
    const QueryResult kbe = benchutil::Run(db, EngineMode::kKbe, query);
    const QueryResult noce = benchutil::Run(db, EngineMode::kGplNoCe, query);
    const QueryResult gpl = benchutil::Run(db, EngineMode::kGpl, query);
    const QueryResult ocelot = benchutil::Run(db, EngineMode::kOcelot, query);
    const double improvement =
        100.0 * (1.0 - gpl.metrics.elapsed_ms / kbe.metrics.elapsed_ms);
    best = std::max(best, improvement);
    std::printf("%6s %12.3f %16.3f %12.3f %12.3f %15.1f%%\n", name.c_str(),
                kbe.metrics.elapsed_ms, noce.metrics.elapsed_ms,
                gpl.metrics.elapsed_ms, ocelot.metrics.elapsed_ms, improvement);
  }
  std::printf("\nBest GPL improvement on the extended suite: %.1f%%\n", best);
  return 0;
}
