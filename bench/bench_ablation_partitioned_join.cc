/// Ablation (extension beyond the paper's figures, from the Section 3.2
/// remark that partitioned hash joins fit the pipelined design): simple vs
/// radix-partitioned hash joins in GPL, per query. Partitioning pays off
/// when build sides outgrow the cache — its per-probe working set is one
/// cache-resident partition instead of the whole table.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace gpl;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner("Ablation: partitioned hash joins",
                    "GPL with simple vs radix-partitioned joins (AMD device)",
                    sf);

  std::printf("%8s %14s %18s %12s %16s\n", "query", "simple (ms)",
              "partitioned (ms)", "speedup", "probe cache-hit");
  for (auto& [name, query] : queries::EvaluationSuite()) {
    const QueryResult simple = benchutil::Run(db, EngineMode::kGpl, query);

    EngineOptions options;
    options.mode = EngineMode::kGpl;
    options.partitioned_joins = true;
    options.num_partitions = 16;
    // Engage for every build whose table exceeds 1/20 of the cache, so the
    // ablation is visible at bench scale (by default only cache-exceeding
    // builds partition, which needs GPL_BENCH_SF >= ~1).
    options.partition_threshold_bytes = sim::DeviceSpec::AmdA10().cache_bytes / 20;
    Engine engine(&db, options);
    Result<QueryResult> partitioned = engine.Execute(query);
    GPL_CHECK(partitioned.ok());

    std::printf("%8s %14.3f %18.3f %11.2fx %9.1f%% -> %.1f%%\n", name.c_str(),
                simple.metrics.elapsed_ms, partitioned->metrics.elapsed_ms,
                simple.metrics.elapsed_ms / partitioned->metrics.elapsed_ms,
                100.0 * simple.metrics.cache_hit_ratio,
                100.0 * partitioned->metrics.cache_hit_ratio);
  }
  std::printf("\n(partitioning engages when a build side exceeds half the "
              "4 MB cache; at small scale factors most builds fit and the "
              "paths tie)\n");
  return 0;
}
