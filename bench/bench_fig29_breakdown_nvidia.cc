/// Figure 29 (Appendix A.3.2): Q8 execution-time breakdown on the NVIDIA
/// K40: communication cost share under KBE vs GPL.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace gpl;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  const sim::DeviceSpec device = sim::DeviceSpec::NvidiaK40();
  benchutil::Banner("Figure 29",
                    "Q8 execution-time breakdown: KBE vs GPL (NVIDIA K40)",
                    sf);

  const QueryResult kbe = benchutil::Run(db, EngineMode::kKbe, queries::Q8(),
                                         device);
  const QueryResult gpl = benchutil::Run(db, EngineMode::kGpl, queries::Q8(),
                                         device);
  auto print_row = [](const char* label, const QueryMetrics& m) {
    std::printf("%-8s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f %9.0f%%\n",
                label, m.elapsed_ms, m.compute_ms, m.mem_ms, m.dc_ms,
                m.delay_ms, m.other_ms, 100.0 * m.CommunicationFraction());
  };
  std::printf("%-8s %10s %10s %10s %10s %10s %10s %10s\n", "engine", "total",
              "compute", "Mem_cost", "DC_cost", "Delay", "launch", "comm %");
  print_row("KBE", kbe.metrics);
  print_row("GPL", gpl.metrics);
  std::printf("(paper: communication is ~32%% of KBE's runtime but only "
              "~18%% of GPL's on the K40)\n");
  return 0;
}
