/// Ablation: the channel packet size p — the third calibration knob of
/// Section 2.1 (Figure 2 fixes p = 16 B; this sweep exposes the p axis the
/// paper's calibration explores). Small packets pay per-packet reservation
/// overhead; oversized packets waste bandwidth on padding when payloads are
/// sparse.
#include <cstdio>

#include "bench_util.h"
#include "model/calibration.h"

int main() {
  using namespace gpl;
  const sim::DeviceSpec device = sim::DeviceSpec::AmdA10();
  sim::Simulator simulator(device);
  benchutil::Banner("Ablation: channel packet size",
                    "Producer-consumer throughput vs packet size (n = 8, "
                    "AMD device)",
                    0);

  const int64_t n_ints = 2048 * 1024;  // 8 MB transfer
  std::printf("%12s %16s\n", "packet (B)", "throughput (GB/s)");
  double best_tp = 0.0;
  int best_p = 0;
  for (int p : {4, 8, 16, 32, 64, 128, 256, 1024, 4096}) {
    sim::ChannelConfig config;
    config.num_channels = 8;
    config.packet_bytes = p;
    const sim::SimResult r =
        model::RunProducerConsumer(simulator, config, n_ints * 4);
    const double gbps = static_cast<double>(n_ints * 4) / r.elapsed_cycles() *
                        device.core_mhz * 1e6 / 1e9;
    if (gbps > best_tp) {
      best_tp = gbps;
      best_p = p;
    }
    std::printf("%12d %16.2f\n", p, gbps);
  }
  std::printf("\nBest packet size for this dense transfer: %d B\n", best_p);

  // Sparse payloads flip the trade-off: a selective producer work-group
  // emits only ~100 B per hand-off, so oversized packets transfer mostly
  // padding.
  std::printf("\nPer-hand-off cost for a sparse 100 B payload (cycles):\n");
  std::printf("%12s %16s\n", "packet (B)", "commit cost");
  double sparse_best_cost = 0.0;
  int sparse_best_p = 0;
  for (int p : {4, 8, 16, 32, 64, 128, 256, 1024, 4096}) {
    sim::ChannelConfig config;
    config.num_channels = 8;
    config.packet_bytes = p;
    sim::ChannelState channel(config, device);
    const double cost = channel.CommitCost(100.0, 1.0);
    if (sparse_best_p == 0 || cost < sparse_best_cost) {
      sparse_best_cost = cost;
      sparse_best_p = p;
    }
    std::printf("%12d %16.2f\n", p, cost);
  }
  std::printf("Best packet size for sparse payloads: %d B\n", sparse_best_p);
  std::printf("(the paper reports 16 B as best on its hardware; the simulated "
              "pipe favors larger packets for dense payloads, while the "
              "calibrated Γ lets the tuner pick per payload)\n");
  return 0;
}
