/// Figure 14: relative error in estimating GPL runtime with a varying number
/// of work-groups (settings S1..S7; Si assigns 2^(i-1) x S1 work-groups per
/// kernel, S1 = 2), for Q8 on the AMD device.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace gpl;
  const double sf = benchutil::ScaleFactor();
  const tpch::Database& db = benchutil::Db(sf);
  benchutil::Banner("Figure 14",
                    "Model relative error vs work-group setting S1..S7 "
                    "(Q8, AMD device)",
                    sf);

  std::printf("%8s %6s %14s %14s %12s\n", "setting", "wg_Ki", "measured(ms)",
              "estimated(ms)", "rel. error");
  for (int i = 1; i <= 7; ++i) {
    const int wg = 2 << (i - 1);  // S1 = 2, doubling
    model::TuningOverrides overrides;
    overrides.workgroups_per_kernel = wg;
    const QueryResult r = benchutil::Run(db, EngineMode::kGpl, queries::Q8(),
                                         sim::DeviceSpec::AmdA10(), overrides,
                                         /*use_cost_model=*/false);
    std::printf("%7s%d %6d %14.3f %14.3f %11.1f%%\n", "S", i, wg,
                r.metrics.elapsed_ms, r.metrics.predicted_ms,
                100.0 * r.metrics.RelativeError());
  }
  std::printf("(paper: nominal error across all allocations)\n");
  return 0;
}
