/// Quickstart: generate a TPC-H database, run one query under every
/// execution strategy on the simulated AMD GPU, and compare results and
/// simulated performance.
#include <cstdio>

#include "engine/engine.h"
#include "queries/tpch_queries.h"
#include "ref/reference_executor.h"

int main() {
  using namespace gpl;

  // 1. Generate TPC-H data (deterministic dbgen-equivalent).
  tpch::DbgenConfig config;
  config.scale_factor = 0.01;
  const tpch::Database db = tpch::Generate(config);
  std::printf("Generated TPC-H SF %.2f: %lld lineitem rows, %.1f MB total\n\n",
              config.scale_factor,
              static_cast<long long>(db.lineitem.num_rows()),
              static_cast<double>(db.byte_size()) / (1 << 20));

  // 2. The query: TPC-H Q14 (promotion revenue).
  const LogicalQuery query = queries::Q14();

  // 3. Reference answer on the CPU.
  Engine planner(&db, EngineOptions{});
  Result<PhysicalOpPtr> plan = planner.Plan(query);
  if (!plan.ok()) {
    std::fprintf(stderr, "planning failed: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("Physical plan:\n%s\n", PlanToString(**plan).c_str());
  Result<Table> expected = ref::ExecutePlan(db, *plan);
  if (!expected.ok()) {
    std::fprintf(stderr, "reference failed: %s\n",
                 expected.status().ToString().c_str());
    return 1;
  }

  // 4. Execute under each strategy.
  const EngineMode modes[] = {EngineMode::kKbe, EngineMode::kGplNoCe,
                              EngineMode::kGpl, EngineMode::kOcelot};
  std::printf("%-14s %12s %12s %10s %10s %12s\n", "engine", "elapsed(ms)",
              "predicted", "VALUBusy", "MemBusy", "materialized");
  for (EngineMode mode : modes) {
    EngineOptions options;
    options.mode = mode;
    Engine engine(&db, options);
    Result<QueryResult> result = engine.Execute(query);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", EngineModeName(mode),
                   result.status().ToString().c_str());
      return 1;
    }
    std::string diff;
    if (!ref::TablesEqual(result->table, *expected, &diff)) {
      std::fprintf(stderr, "%s result mismatch: %s\n", EngineModeName(mode),
                   diff.c_str());
      return 1;
    }
    const QueryMetrics& m = result->metrics;
    std::printf("%-14s %12.3f %12.3f %9.1f%% %9.1f%% %9.2f MB\n",
                EngineModeName(mode), m.elapsed_ms, m.predicted_ms,
                100.0 * m.valu_busy, 100.0 * m.mem_unit_busy,
                static_cast<double>(m.materialized_bytes) / (1 << 20));
  }

  std::printf("\nQ14 answer (all engines agree with the CPU reference):\n%s\n",
              expected->ToString().c_str());
  return 0;
}
