/// Selectivity study (the Section 2.2 motivation): sweep TPC-H Q14's
/// selectivity from 1% to 100% and watch how kernel-based execution drowns
/// in materialized intermediates while GPL streams them through channels.
#include <cstdio>

#include "engine/engine.h"
#include "queries/tpch_queries.h"

int main() {
  using namespace gpl;

  tpch::DbgenConfig config;
  config.scale_factor = 0.05;
  const tpch::Database db = tpch::Generate(config);
  const double input_mb =
      static_cast<double>(db.lineitem.byte_size() + db.part.byte_size()) /
      (1 << 20);
  std::printf("Q14 selectivity study, SF %.2f (%.1f MB of scanned input)\n\n",
              config.scale_factor, input_mb);

  EngineOptions kbe_options;
  kbe_options.mode = EngineMode::kKbe;
  Engine kbe(&db, kbe_options);
  EngineOptions gpl_options;
  gpl_options.mode = EngineMode::kGpl;
  Engine gpl_engine(&db, gpl_options);

  std::printf("%6s | %10s %12s | %10s %12s %12s | %8s\n", "sel", "KBE ms",
              "KBE inter.", "GPL ms", "GPL inter.", "via channel", "speedup");
  for (double sel : {0.01, 0.164, 0.25, 0.5, 0.75, 1.0}) {
    const LogicalQuery query = queries::Q14(sel);
    Result<QueryResult> kbe_result = kbe.Execute(query);
    Result<QueryResult> gpl_result = gpl_engine.Execute(query);
    GPL_CHECK(kbe_result.ok() && gpl_result.ok());

    const QueryMetrics& km = kbe_result->metrics;
    const QueryMetrics& gm = gpl_result->metrics;
    std::printf("%5.0f%% | %10.3f %9.2f MB | %10.3f %9.2f MB %9.2f MB | %7.2fx\n",
                sel * 100.0, km.elapsed_ms,
                static_cast<double>(km.materialized_bytes) / (1 << 20),
                gm.elapsed_ms,
                static_cast<double>(gm.materialized_bytes) / (1 << 20),
                static_cast<double>(gm.channel_bytes) / (1 << 20),
                km.elapsed_ms / gm.elapsed_ms);
  }

  std::printf(
      "\nAt high selectivity KBE materializes more intermediate data than\n"
      "the original input (Figure 3); GPL keeps most of it inside the data\n"
      "channels and only materializes at segment boundaries (Figure 18).\n");
  return 0;
}
