/// Engine comparison: the paper's headline experiment in one program — all
/// five TPC-H queries under KBE, GPL (w/o CE), GPL and the Ocelot-style
/// baseline, on both simulated devices, with utilization counters.
#include <cstdio>

#include "engine/engine.h"
#include "queries/tpch_queries.h"
#include "ref/reference_executor.h"

int main() {
  using namespace gpl;

  tpch::DbgenConfig config;
  config.scale_factor = 0.05;
  const tpch::Database db = tpch::Generate(config);

  const sim::DeviceSpec devices[] = {sim::DeviceSpec::AmdA10(),
                                     sim::DeviceSpec::NvidiaK40()};
  const EngineMode modes[] = {EngineMode::kKbe, EngineMode::kGplNoCe,
                              EngineMode::kGpl, EngineMode::kOcelot};

  for (const sim::DeviceSpec& device : devices) {
    std::printf("=== %s ===\n", device.name.c_str());
    std::printf("%6s %-14s %10s %10s %10s %10s %10s\n", "query", "engine",
                "ms", "VALU", "MemUnit", "cache-hit", "vs KBE");
    for (auto& [name, query] : queries::EvaluationSuite()) {
      // Verify results against the CPU reference once per query.
      EngineOptions planner_options;
      planner_options.device = device;
      Engine planner(&db, planner_options);
      Result<Table> expected = ref::ExecutePlan(db, *planner.Plan(query));
      GPL_CHECK(expected.ok());

      double kbe_ms = 0.0;
      for (EngineMode mode : modes) {
        EngineOptions options;
        options.device = device;
        options.mode = mode;
        Engine engine(&db, options);
        Result<QueryResult> r = engine.Execute(query);
        GPL_CHECK(r.ok());
        std::string diff;
        GPL_CHECK(ref::TablesEqual(r->table, *expected, &diff))
            << name << " under " << EngineModeName(mode) << ": " << diff;
        if (mode == EngineMode::kKbe) kbe_ms = r->metrics.elapsed_ms;
        std::printf("%6s %-14s %10.3f %9.1f%% %9.1f%% %9.1f%% %9.2fx\n",
                    name.c_str(), EngineModeName(mode), r->metrics.elapsed_ms,
                    100.0 * r->metrics.valu_busy,
                    100.0 * r->metrics.mem_unit_busy,
                    100.0 * r->metrics.cache_hit_ratio,
                    kbe_ms / r->metrics.elapsed_ms);
      }
    }
    std::printf("\n");
  }
  std::printf("Every engine produced results identical to the CPU reference "
              "executor.\n");
  return 0;
}
