/// Tuning explorer: shows the optimizer pipeline end to end — the physical
/// plan (EXPLAIN), the segmented pipelined plan, the analytical model's
/// parameter choices (tile size Δ, work-groups wg_Ki, channel configs), and
/// how the tuned execution compares against hand-picked configurations.
#include <cstdio>

#include "common/math_util.h"
#include "engine/engine.h"
#include "plan/segment.h"
#include "queries/tpch_queries.h"

int main() {
  using namespace gpl;

  tpch::DbgenConfig config;
  config.scale_factor = 0.05;
  const tpch::Database db = tpch::Generate(config);
  const LogicalQuery query = queries::Q8();

  // 1. EXPLAIN: the Selinger-optimized physical plan.
  EngineOptions engine_options;
  engine_options.mode = EngineMode::kGpl;
  Engine engine(&db, engine_options);
  Result<PhysicalOpPtr> plan = engine.Plan(query);
  GPL_CHECK(plan.ok());
  std::printf("Physical plan for %s:\n%s\n", query.name.c_str(),
              PlanToString(**plan).c_str());

  // 2. The segmented pipelined plan (Figure 7c-style).
  Result<SegmentedPlan> segmented = SegmentPlan(*plan);
  GPL_CHECK(segmented.ok());
  std::printf("Segments (pipelines split at blocking kernels):\n");
  for (size_t i = 0; i < segmented->segments.size(); ++i) {
    const Segment& seg = segmented->segments[i];
    std::printf("  S%zu [%s]: ", i,
                seg.input_table.empty() ? "intermediate" : seg.input_table.c_str());
    for (size_t s = 0; s < seg.stages.size(); ++s) {
      std::printf("%s%s", s == 0 ? "" : " -> ",
                  seg.stages[s].kernel->name().c_str());
    }
    std::printf("%s\n", seg.output_is_hash_build ? "  (builds hash table)" : "");
  }

  // 3. The tuner's choices per segment.
  Result<GplRunResult> tuned = engine.ExecuteGplDetailed(*plan);
  GPL_CHECK(tuned.ok());
  std::printf("\nModel-selected parameters (tuner ran %.2f ms):\n",
              tuned->tuner_wall_ms);
  for (size_t i = 0; i < tuned->segments.size(); ++i) {
    const SegmentReport& report = tuned->segments[i];
    std::printf("  S%zu: tile=%lld KB, wg={", i,
                static_cast<long long>(report.tuning.params.tile_bytes / 1024));
    for (size_t w = 0; w < report.tuning.params.workgroups.size(); ++w) {
      std::printf("%s%d", w == 0 ? "" : ",", report.tuning.params.workgroups[w]);
    }
    std::printf("}, channels={");
    for (size_t c = 0; c < report.tuning.params.channels.size(); ++c) {
      std::printf("%s(n=%d,p=%d)", c == 0 ? "" : ",",
                  report.tuning.params.channels[c].num_channels,
                  report.tuning.params.channels[c].packet_bytes);
    }
    std::printf("}  predicted %.0f cycles, measured %.0f\n",
                report.predicted_cycles, report.measured_cycles);
  }

  // 4. Tuned execution vs hand-picked configurations.
  const double tuned_ms =
      sim::DeviceSpec::AmdA10().CyclesToMs(tuned->total_cycles);
  std::printf("\n%-34s %10.3f ms\n", "cost-model tuned:", tuned_ms);
  struct Manual {
    const char* label;
    int64_t tile;
    int wg;
  };
  const Manual manual[] = {
      {"manual: tile=256KB, wg=8", KiB(256), 8},
      {"manual: tile=1MB,   wg=16", MiB(1), 16},
      {"manual: tile=16MB,  wg=64", MiB(16), 64},
  };
  for (const Manual& m : manual) {
    EngineOptions options;
    options.mode = EngineMode::kGpl;
    options.exec.use_cost_model = false;
    options.exec.overrides.tile_bytes = m.tile;
    options.exec.overrides.workgroups_per_kernel = m.wg;
    Engine manual_engine(&db, options);
    Result<QueryResult> r = manual_engine.Execute(query);
    GPL_CHECK(r.ok());
    std::printf("%-34s %10.3f ms\n", m.label, r->metrics.elapsed_ms);
  }
  std::printf("\nThe analytical model removes the need to hand-tune Δ, wg_Ki "
              "and channel configs per platform (Section 4).\n");
  return 0;
}
