/// gplcli: command-line driver for the GPL reproduction.
///
///   gplcli --query=Q14 --mode=gpl --sf=0.1
///   gplcli --query=all --mode=kbe --device=nvidia
///   gplcli --query=Q8 --explain
///   gplcli --dump-tbl=/tmp/tpch --sf=0.01
///   gplcli --query=Q5 --tbl-dir=/tmp/tpch
///   gplcli --query=all --serve-workers=4 --serve-queries=64
///
/// Flags:
///   --query=<Q1|Q3|Q5|Q6|Q7|Q8|Q9|Q10|Q12|Q14|Q19|all|extended|example>
///   --mode=<gpl|kbe|noce|ocelot|fused> execution strategy (default gpl);
///                                     "fused" adds kernel fusion on top of
///                                     GPL with per-segment engine selection
///   --engine=<...>                    alias for --mode
///   --device=<amd|nvidia|list>        simulated device (default amd); a
///                                     comma-separated list ("amd,amd,nvidia")
///                                     defines a multi-device group for
///                                     sharded execution
///   --sf=<float>                      TPC-H scale factor (default 0.05)
///   --seed=<int>                      dbgen seed
///   --tile=<KB>                       pin the tile size (disables tuning)
///   --wg=<int>                        pin wg_Ki (disables tuning)
///   --partitioned                     enable radix-partitioned hash joins
///   --explain                         print the physical plan and exit
///   --explain-analyze                 execute the query and print the plan
///                                     annotated with actual rows, simulated
///                                     cycles, prediction error, host wall
///                                     time, channel bytes, cache/degradation
///                                     flags per segment (GPL modes only);
///                                     with --shards, prints the distributed
///                                     plan with Exchange operators inline and
///                                     predicted vs actual exchanged bytes
///   --explain-json=<file>             with --explain-analyze, also write the
///                                     report(s) as a JSON array
///   --rows=<int>                      result rows to print (default 10)
///   --verify                          check results against the CPU reference
///   --dump-tbl=<dir>                  write the generated data as .tbl files
///   --tbl-dir=<dir>                   load the database from .tbl files
///   --trace=<file>                    write a Chrome trace-event JSON of the
///                                     run (open in Perfetto / chrome://tracing)
///   --metrics-json=<file>             write QueryMetrics/HwCounters as JSON
///   --breakdown                       print the per-kernel phase breakdown
///                                     (compute/mem/DC/delay, Figures 20/29)
///   --host-threads=<N>                host threads for the functional kernel
///                                     bodies and tuner search (0 = hardware
///                                     concurrency, 1 = serial); results and
///                                     simulated timing are identical at any N
///   --no-tuning-cache                 disable TuneSegment memoization (the
///                                     grid search reruns for every segment)
///   --subplan-cache-mb=<N>            capacity of the shared-work subplan
///                                     cache in MiB (default 64; 0 keeps
///                                     shared-scan attach but retains nothing)
///   --no-subplan-cache                disable subplan-result caching and
///                                     shared-scan batching entirely
///
/// Sharded execution (routed through Engine::Execute via ExecOptions):
///   --shards=<N>                      partition the fact table N ways and run
///                                     each shard on its own simulated device;
///                                     results stay bit-identical to N=1. With
///                                     a multi-device --device list, N must
///                                     match the list length (or be omitted)
///   --partition=<hash|range>          fact-table partitioning scheme
///                                     (default hash: lineitem+orders
///                                     co-partitioned by orderkey)
///   --link-gbps=<G>                   inter-device link bandwidth override in
///                                     GB/s (default 16, PCIe 3.0-class)
///   With --explain, sharded runs print the per-shard plan with Exchange
///   operators inline (broadcast vs repartition vs co-partitioned per table,
///   modeled bytes and link time) and the merge strategy.
///
/// Serve mode (concurrent multi-query execution via service::QueryService):
///   --serve-workers=<N>               run N worker engines concurrently; the
///                                     selected --query (or suite) becomes the
///                                     workload mix
///   --serve-queries=<M>               total queries to push through the
///                                     service, closed-loop (default 32)
///   --serve-queue=<C>                 admission-queue capacity (default 8);
///                                     the driver retries rejected submissions
///                                     after draining one in-flight query
///   --timeout-ms=<T>                  per-query deadline, host wall-clock
///                                     (default off)
///   --fault-rate=<p>                  inject faults: each kernel launch
///                                     aborts with probability p and each
///                                     channel reservation fails with
///                                     probability p (degrading that segment
///                                     to kernel-at-a-time)
///   --fault-seed=<int>                fault-injection seed (default fixed);
///                                     the same seed reproduces the same
///                                     per-query fault outcomes
///   --max-retries=<R>                 retry transient device errors up to R
///                                     times (R+1 attempts total) with
///                                     exponential backoff (default 0)
///   With --trace, serve mode writes the service timeline (per-worker
///   queue/exec spans, retry attempts, concurrency counter, rejection
///   instants) instead of the simulator timeline.
///
/// Live telemetry (serve mode, obs::MetricsRegistry):
///   --serve-metrics                   register service/engine/simulator
///                                     metrics and print the final Prometheus
///                                     exposition to stdout
///   --stats-interval-ms=<T>           sample the registry every T ms while
///                                     serving (implies --serve-metrics); one
///                                     snapshot is always taken at start and
///                                     one after shutdown, so every run emits
///                                     at least two
///   --stats-jsonl=<file>              append each snapshot as one JSON line
///                                     {"seq", "elapsed_ms", "snapshot"}
///   --prom-textfile=<file>            rewrite a Prometheus textfile
///                                     (write-to-temp + rename) per snapshot
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/math_util.h"
#include "engine/engine.h"
#include "engine/explain_analyze.h"
#include "engine/metrics_json.h"
#include "obs/export.h"
#include "obs/registry.h"
#include "pool/subplan_cache.h"
#include "trace/json.h"
#include "queries/tpch_queries.h"
#include "ref/reference_executor.h"
#include "service/query_service.h"
#include "shard/sharded_executor.h"
#include "tpch/tbl_io.h"
#include "trace/trace.h"

namespace {

using namespace gpl;

struct CliOptions {
  std::string query = "Q14";
  std::string mode = "gpl";
  std::string device = "amd";
  double sf = 0.05;
  uint64_t seed = 20160626;
  int64_t tile_kb = 0;
  int wg = 0;
  bool partitioned = false;
  bool explain = false;
  bool explain_analyze = false;
  std::string explain_json_path;
  bool verify = false;
  bool breakdown = false;
  int host_threads = 0;          ///< 0 = hardware concurrency
  bool no_tuning_cache = false;  ///< re-run the grid search every segment
  bool no_subplan_cache = false; ///< disable subplan caching + shared scans
  int64_t subplan_cache_mb = 64; ///< subplan-cache capacity (MiB)
  int64_t rows = 10;
  std::string dump_tbl;
  std::string tbl_dir;
  std::string trace_path;
  std::string metrics_json_path;

  // Sharded execution.
  int shards = 1;                 ///< 1 = single-device mode
  std::string partition = "hash";
  double link_gbps = 0.0;         ///< 0 = LinkSpec default

  // Serve mode.
  int serve_workers = 0;  ///< 0 = single-query mode
  int serve_queries = 32;
  int serve_queue = 8;
  double timeout_ms = 0.0;

  // Fault injection / retry (serve mode).
  double fault_rate = 0.0;
  uint64_t fault_seed = 0x9e3779b97f4a7c15ULL;
  int max_retries = 0;

  // Live telemetry (serve mode).
  bool serve_metrics = false;
  double stats_interval_ms = 0.0;
  std::string stats_jsonl_path;
  std::string prom_textfile_path;
};

/// Per-run accumulators shared across queries (one timeline, one report).
struct RunState {
  trace::TraceCollector* trace = nullptr;
  std::vector<MetricsJsonEntry> metrics;
  std::vector<std::string> explain_jsons;
  double total_elapsed_ms = 0.0;
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--query=Q14|all|extended|example] [--mode=gpl|kbe|"
               "noce|ocelot|fused]\n"
               "          [--device=amd|nvidia] [--sf=0.05] [--seed=N] "
               "[--tile=KB] [--wg=N]\n"
               "          [--partitioned] [--explain] [--explain-analyze "
               "[--explain-json=FILE]]\n"
               "          [--verify] [--rows=N]\n"
               "          [--dump-tbl=DIR] [--tbl-dir=DIR]\n"
               "          [--trace=FILE.json] [--metrics-json=FILE.json] "
               "[--breakdown]\n"
               "          [--host-threads=N] [--no-tuning-cache]\n"
               "          [--subplan-cache-mb=N] [--no-subplan-cache]\n"
               "          [--shards=N] [--partition=hash|range] "
               "[--link-gbps=G]\n"
               "          [--serve-workers=N [--serve-queries=M] "
               "[--serve-queue=C] [--timeout-ms=T]\n"
               "           [--fault-rate=P] [--fault-seed=N] "
               "[--max-retries=R]\n"
               "           [--serve-metrics] [--stats-interval-ms=T "
               "[--stats-jsonl=FILE] [--prom-textfile=FILE]]]\n",
               argv0);
  return 2;
}

Result<LogicalQuery> FindQuery(const std::string& name) {
  for (auto& [n, q] : queries::EvaluationSuite()) {
    if (n == name) return q;
  }
  for (auto& [n, q] : queries::ExtendedSuite()) {
    if (n == name) return q;
  }
  if (name == "example") return queries::ExampleQuery();
  return Status::NotFound("unknown query: " + name);
}

/// The workload selected by --query: a single query or a whole suite.
Result<std::vector<std::pair<std::string, LogicalQuery>>> SelectWorkload(
    const std::string& name) {
  if (name == "all") return queries::EvaluationSuite();
  if (name == "extended") return queries::ExtendedSuite();
  GPL_ASSIGN_OR_RETURN(LogicalQuery q, FindQuery(name));
  std::vector<std::pair<std::string, LogicalQuery>> workload;
  workload.emplace_back(name, std::move(q));
  return workload;
}

int RunQuery(Engine& engine, const tpch::Database& db, const CliOptions& cli,
             const std::string& device_label, const std::string& name,
             const LogicalQuery& query, RunState* state) {
  if (cli.explain_analyze) {
    Result<ExplainAnalyzeReport> report = ExplainAnalyze(engine, query);
    if (!report.ok()) {
      std::fprintf(stderr, "EXPLAIN ANALYZE %s failed: %s\n", name.c_str(),
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("=== %s ===\n%s\n", name.c_str(), report->ToString().c_str());
    // The report's metrics ARE the QueryMetrics of this execution, so the
    // same invocation can emit a consistent --metrics-json for it.
    state->total_elapsed_ms += report->metrics.elapsed_ms;
    MetricsJsonEntry entry;
    entry.query = name;
    entry.mode = EngineModeName(engine.options().mode);
    entry.device = report->device;
    entry.metrics = report->metrics;
    state->metrics.push_back(std::move(entry));
    state->explain_jsons.push_back(report->ToJson());
    return 0;
  }

  if (cli.explain) {
    if (cli.shards > 1) {
      // Sharded EXPLAIN: the per-shard plan with Exchange operators inline,
      // plus the cost model's per-exchange predictions.
      Result<shard::ShardedExecutor*> sharded =
          engine.ShardedFor(engine.options().exec);
      Result<shard::DistributedExplain> dist =
          sharded.ok() ? (*sharded)->Explain(query)
                       : Result<shard::DistributedExplain>(sharded.status());
      if (!dist.ok()) {
        std::fprintf(stderr, "planning %s failed: %s\n", name.c_str(),
                     dist.status().ToString().c_str());
        return 1;
      }
      std::printf("=== %s (%d shards, %s merge) ===\n%s", name.c_str(),
                  dist->num_shards,
                  dist->partial_aggregate ? "combine" : "stitch",
                  dist->plan_text.c_str());
      std::printf("exchanges over %s:\n",
                  (*sharded)->link().spec().name.c_str());
      for (const shard::ExchangeOpReport& ex : dist->exchanges) {
        std::printf("  %-12s %-14s %10lld bytes  %.4f ms\n", ex.table.c_str(),
                    std::string(ExchangeKindName(ex.kind)).c_str(),
                    static_cast<long long>(ex.predicted_bytes),
                    ex.predicted_ms);
      }
      std::printf("\n");
      return 0;
    }
    Result<PhysicalOpPtr> plan = engine.Plan(query);
    if (!plan.ok()) {
      std::fprintf(stderr, "planning %s failed: %s\n", name.c_str(),
                   plan.status().ToString().c_str());
      return 1;
    }
    std::printf("=== %s ===\n%s\n", name.c_str(), PlanToString(**plan).c_str());
    return 0;
  }

  Result<QueryResult> result = engine.Execute(query);
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", name.c_str(),
                 result.status().ToString().c_str());
    return 1;
  }
  const QueryMetrics& m = result->metrics;
  state->total_elapsed_ms += m.elapsed_ms;
  MetricsJsonEntry entry;
  entry.query = name;
  entry.mode = EngineModeName(engine.options().mode);
  entry.device = device_label;
  entry.metrics = m;
  state->metrics.push_back(std::move(entry));
  std::printf("=== %s (%s, %s) ===\n", name.c_str(),
              EngineModeName(engine.options().mode), device_label.c_str());
  std::printf("%s", result->table.ToString(cli.rows).c_str());
  std::string predicted;
  if (m.predicted_ms > 0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), " [model predicted %.3f ms]",
                  m.predicted_ms);
    predicted = buf;
  }
  std::printf(
      "elapsed %.3f ms (simulated)%s, optimize %.2f ms (host), VALU %.1f%%, "
      "MemUnit %.1f%%, cache-hit %.1f%%\n",
      m.elapsed_ms, predicted.c_str(), m.OptimizeWallMs(), 100.0 * m.valu_busy,
      100.0 * m.mem_unit_busy, 100.0 * m.cache_hit_ratio);
  if (m.num_shards > 0) {
    std::printf("sharded x%lld: exchange %.4f ms (%lld bytes), merge %.4f ms "
                "(%s), device utilization [",
                static_cast<long long>(m.num_shards), m.exchange_ms,
                static_cast<long long>(m.exchange_bytes), m.merge_ms,
                m.partial_combine ? "combine" : "stitch");
    for (size_t i = 0; i < m.device_utilization.size(); ++i) {
      std::printf("%s%.0f%%", i > 0 ? " " : "",
                  100.0 * m.device_utilization[i]);
    }
    std::printf("]\n");
  }

  if (cli.verify) {
    Result<PhysicalOpPtr> plan = engine.Plan(query);
    Result<Table> expected = ref::ExecutePlan(db, *plan);
    if (!expected.ok()) {
      std::fprintf(stderr, "reference failed: %s\n",
                   expected.status().ToString().c_str());
      return 1;
    }
    std::string diff;
    if (!ref::TablesEqual(result->table, *expected, &diff)) {
      std::fprintf(stderr, "VERIFICATION FAILED: %s\n", diff.c_str());
      return 1;
    }
    std::printf("verified against the CPU reference executor\n");
  }
  std::printf("\n");
  return 0;
}

/// Writes one telemetry snapshot: a JSONL line to `jsonl` (when open) and an
/// atomic rewrite of the Prometheus textfile at `prom_path` (when set). The
/// registry is collected once and both outputs render the same snapshot.
bool EmitSnapshot(const obs::MetricsRegistry& registry, int seq,
                  double elapsed_ms, std::ofstream* jsonl,
                  const std::string& prom_path) {
  const std::vector<obs::FamilySnapshot> families = registry.Collect();
  if (jsonl != nullptr && jsonl->is_open()) {
    *jsonl << "{\"seq\":" << seq
           << ",\"elapsed_ms\":" << trace::JsonNumber(elapsed_ms)
           << ",\"snapshot\":" << obs::JsonSnapshot(families) << "}\n";
    jsonl->flush();
  }
  if (!prom_path.empty()) {
    const std::string tmp = prom_path + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open()) return false;
    out << obs::PrometheusText(families);
    out.close();
    if (std::rename(tmp.c_str(), prom_path.c_str()) != 0) return false;
  }
  return true;
}

/// Closed-loop serve driver: pushes --serve-queries queries (round-robin over
/// the workload) through a QueryService. When the admission queue rejects a
/// submission, the driver drains the oldest in-flight query and retries —
/// the closed loop keeps the service saturated without overrunning it.
int RunServe(const tpch::Database& db, const CliOptions& cli,
             const EngineOptions& engine_options,
             const std::vector<sim::DeviceSpec>& devices,
             const sim::LinkSpec& link, shard::PartitionScheme scheme) {
  Result<std::vector<std::pair<std::string, LogicalQuery>>> workload_or =
      SelectWorkload(cli.query);
  if (!workload_or.ok()) {
    std::fprintf(stderr, "%s\n", workload_or.status().ToString().c_str());
    return 2;
  }
  const std::vector<std::pair<std::string, LogicalQuery>>& workload =
      *workload_or;

  // Declared before the service so callback gauges registered by the
  // service never outlive their registry.
  obs::MetricsRegistry registry;
  const bool metrics_enabled = cli.serve_metrics || cli.stats_interval_ms > 0;

  service::ServiceOptions sopts;
  sopts.num_workers = cli.serve_workers;
  if (metrics_enabled) sopts.metrics = &registry;
  sopts.queue_capacity = static_cast<size_t>(cli.serve_queue);
  sopts.default_timeout_ms = cli.timeout_ms;
  sopts.engine = engine_options;
  sopts.subplan_cache = !cli.no_subplan_cache;
  sopts.subplan_cache_mb = cli.subplan_cache_mb;
  if (cli.fault_rate > 0.0) {
    sopts.fault.seed = cli.fault_seed;
    sopts.fault.kernel_abort_rate = cli.fault_rate;
    sopts.fault.channel_alloc_fail_rate = cli.fault_rate;
  }
  sopts.retry.max_attempts = cli.max_retries + 1;
  if (cli.shards > 1) {
    sopts.num_shards = cli.shards;
    sopts.partition_scheme = scheme;
    if (devices.size() > 1) sopts.devices = devices;
    sopts.link = link;
  }

  std::printf("serving %d queries (%s mix) on %d workers, queue capacity %d"
              "%s%s...\n",
              cli.serve_queries, cli.query.c_str(), sopts.num_workers,
              cli.serve_queue,
              cli.timeout_ms > 0 ? ", per-query deadline" : "",
              cli.shards > 1 ? (", " + std::to_string(cli.shards) +
                                "-way sharded").c_str()
                             : "");
  if (cli.fault_rate > 0.0) {
    std::printf("fault injection: rate %.4f, seed %llu, max retries %d\n",
                cli.fault_rate,
                static_cast<unsigned long long>(cli.fault_seed),
                cli.max_retries);
  }

  service::QueryService svc(&db, sopts);
  const auto wall_start = std::chrono::steady_clock::now();

  // Periodic telemetry sampler. One snapshot is taken up front and one after
  // shutdown, so every sampled run produces at least two even if the
  // workload drains faster than the interval.
  std::ofstream stats_jsonl;
  if (!cli.stats_jsonl_path.empty()) {
    stats_jsonl.open(cli.stats_jsonl_path, std::ios::trunc);
    if (!stats_jsonl.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", cli.stats_jsonl_path.c_str());
      return 1;
    }
  }
  int snapshot_seq = 0;
  std::mutex sampler_mu;
  std::condition_variable sampler_cv;
  bool sampler_stop = false;
  std::thread sampler;
  const auto elapsed_ms = [&wall_start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - wall_start)
        .count();
  };
  if (cli.stats_interval_ms > 0) {
    EmitSnapshot(registry, snapshot_seq++, elapsed_ms(), &stats_jsonl,
                 cli.prom_textfile_path);
    sampler = std::thread([&] {
      const auto interval =
          std::chrono::duration<double, std::milli>(cli.stats_interval_ms);
      std::unique_lock<std::mutex> lock(sampler_mu);
      while (!sampler_cv.wait_for(lock, interval,
                                  [&] { return sampler_stop; })) {
        // snapshot_seq is only touched here until the thread is joined.
        EmitSnapshot(registry, snapshot_seq++, elapsed_ms(), &stats_jsonl,
                     cli.prom_textfile_path);
      }
    });
  }

  std::deque<service::QueryHandle> inflight;
  int failures = 0;
  for (int i = 0; i < cli.serve_queries; ++i) {
    const auto& [name, query] =
        workload[static_cast<size_t>(i) % workload.size()];
    for (;;) {
      Result<service::QueryHandle> submitted =
          svc.Submit(name + "#" + std::to_string(i), query);
      if (submitted.ok()) {
        inflight.push_back(submitted.take());
        break;
      }
      if (submitted.status().code() != StatusCode::kResourceExhausted ||
          inflight.empty()) {
        std::fprintf(stderr, "submit failed: %s\n",
                     submitted.status().ToString().c_str());
        return 1;
      }
      inflight.front().Await();
      inflight.pop_front();
    }
  }
  for (service::QueryHandle& handle : inflight) {
    const Result<QueryResult>& result = handle.Await();
    // Deadline misses are an expected outcome under load, not a failure;
    // under fault injection so are transient errors that exhausted their
    // retries (reported in the stats as gave_up).
    if (!result.ok() &&
        result.status().code() != StatusCode::kDeadlineExceeded &&
        result.status().code() != StatusCode::kCancelled &&
        !(cli.fault_rate > 0.0 &&
          result.status().code() == StatusCode::kTransientDeviceError)) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      failures++;
    }
  }
  // Final snapshot and exposition before Shutdown(): every in-flight query
  // has been awaited above, so the numbers are final, but the service's
  // callback gauges (tuning cache, thread pool) are still registered.
  if (cli.stats_interval_ms > 0) {
    {
      std::lock_guard<std::mutex> lock(sampler_mu);
      sampler_stop = true;
    }
    sampler_cv.notify_all();
    sampler.join();
    if (!EmitSnapshot(registry, snapshot_seq++, elapsed_ms(), &stats_jsonl,
                      cli.prom_textfile_path)) {
      std::fprintf(stderr, "writing %s failed\n",
                   cli.prom_textfile_path.c_str());
      return 1;
    }
  }
  std::string final_exposition;
  if (cli.serve_metrics) final_exposition = obs::PrometheusText(registry);
  svc.Shutdown();

  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  service::ServiceStats stats = svc.Stats();
  std::printf("--- service stats ---\n%s\n", stats.ToString().c_str());
  std::printf("host wall time %.3f s, %.1f queries/s (completed)\n", wall_s,
              wall_s > 0 ? static_cast<double>(stats.completed) / wall_s : 0.0);
  if (cli.stats_interval_ms > 0) {
    std::printf("wrote %d metric snapshots%s%s%s%s\n", snapshot_seq,
                cli.stats_jsonl_path.empty() ? "" : " to ",
                cli.stats_jsonl_path.c_str(),
                cli.prom_textfile_path.empty() ? "" : ", prom textfile ",
                cli.prom_textfile_path.c_str());
  }
  if (cli.serve_metrics) {
    std::printf("--- metrics (prometheus exposition) ---\n%s",
                final_exposition.c_str());
  }

  if (!cli.trace_path.empty()) {
    trace::TraceCollector collector;
    svc.ExportTrace(&collector);
    Status status = collector.WriteChromeJson(cli.trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "writing trace failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote service timeline (%zu spans) to %s\n",
                collector.spans().size(), cli.trace_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "query", &value)) {
      cli.query = value;
    } else if (ParseFlag(argv[i], "mode", &value) ||
               ParseFlag(argv[i], "engine", &value)) {
      cli.mode = value;
    } else if (ParseFlag(argv[i], "device", &value)) {
      cli.device = value;
    } else if (ParseFlag(argv[i], "sf", &value)) {
      cli.sf = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "seed", &value)) {
      cli.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "tile", &value)) {
      cli.tile_kb = std::atoll(value.c_str());
    } else if (ParseFlag(argv[i], "wg", &value)) {
      cli.wg = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "rows", &value)) {
      cli.rows = std::atoll(value.c_str());
    } else if (ParseFlag(argv[i], "dump-tbl", &value)) {
      cli.dump_tbl = value;
    } else if (ParseFlag(argv[i], "tbl-dir", &value)) {
      cli.tbl_dir = value;
    } else if (ParseFlag(argv[i], "trace", &value)) {
      cli.trace_path = value;
    } else if (ParseFlag(argv[i], "metrics-json", &value)) {
      cli.metrics_json_path = value;
    } else if (ParseFlag(argv[i], "shards", &value)) {
      cli.shards = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "partition", &value)) {
      cli.partition = value;
    } else if (ParseFlag(argv[i], "link-gbps", &value)) {
      cli.link_gbps = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "serve-workers", &value)) {
      cli.serve_workers = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "serve-queries", &value)) {
      cli.serve_queries = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "serve-queue", &value)) {
      cli.serve_queue = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "timeout-ms", &value)) {
      cli.timeout_ms = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "fault-rate", &value)) {
      cli.fault_rate = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "fault-seed", &value)) {
      cli.fault_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "max-retries", &value)) {
      cli.max_retries = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "explain-json", &value)) {
      cli.explain_json_path = value;
    } else if (ParseFlag(argv[i], "stats-interval-ms", &value)) {
      cli.stats_interval_ms = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "stats-jsonl", &value)) {
      cli.stats_jsonl_path = value;
    } else if (ParseFlag(argv[i], "prom-textfile", &value)) {
      cli.prom_textfile_path = value;
    } else if (ParseFlag(argv[i], "host-threads", &value)) {
      cli.host_threads = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "subplan-cache-mb", &value)) {
      cli.subplan_cache_mb = std::atoll(value.c_str());
    } else if (std::strcmp(argv[i], "--no-subplan-cache") == 0) {
      cli.no_subplan_cache = true;
    } else if (std::strcmp(argv[i], "--no-tuning-cache") == 0) {
      cli.no_tuning_cache = true;
    } else if (std::strcmp(argv[i], "--breakdown") == 0) {
      cli.breakdown = true;
    } else if (std::strcmp(argv[i], "--partitioned") == 0) {
      cli.partitioned = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      cli.explain = true;
    } else if (std::strcmp(argv[i], "--explain-analyze") == 0) {
      cli.explain_analyze = true;
    } else if (std::strcmp(argv[i], "--serve-metrics") == 0) {
      cli.serve_metrics = true;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      cli.verify = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      return Usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return Usage(argv[0]);
    }
  }

  if (cli.sf <= 0.0) {
    std::fprintf(stderr, "--sf must be positive\n");
    return 2;
  }
  if (cli.serve_workers > 0 && (cli.serve_queries < 1 || cli.serve_queue < 1)) {
    std::fprintf(stderr, "--serve-queries and --serve-queue must be >= 1\n");
    return 2;
  }
  if (cli.fault_rate < 0.0 || cli.fault_rate > 1.0 || cli.max_retries < 0) {
    std::fprintf(stderr,
                 "--fault-rate must be in [0, 1] and --max-retries >= 0\n");
    return 2;
  }
  if (cli.fault_rate > 0.0 && cli.serve_workers <= 0) {
    std::fprintf(stderr, "--fault-rate requires serve mode "
                         "(--serve-workers=N)\n");
    return 2;
  }
  if (cli.explain && cli.explain_analyze) {
    std::fprintf(stderr, "--explain and --explain-analyze are exclusive\n");
    return 2;
  }
  if (!cli.explain_json_path.empty() && !cli.explain_analyze) {
    std::fprintf(stderr, "--explain-json requires --explain-analyze\n");
    return 2;
  }
  if (cli.explain_analyze && cli.serve_workers > 0) {
    std::fprintf(stderr, "--explain-analyze is a single-query mode\n");
    return 2;
  }
  if (cli.subplan_cache_mb < 0) {
    std::fprintf(stderr, "--subplan-cache-mb must be >= 0\n");
    return 2;
  }
  if (cli.stats_interval_ms < 0.0) {
    std::fprintf(stderr, "--stats-interval-ms must be positive\n");
    return 2;
  }
  if ((cli.serve_metrics || cli.stats_interval_ms > 0) &&
      cli.serve_workers <= 0) {
    std::fprintf(stderr, "--serve-metrics/--stats-interval-ms require serve "
                         "mode (--serve-workers=N)\n");
    return 2;
  }
  if ((!cli.stats_jsonl_path.empty() || !cli.prom_textfile_path.empty()) &&
      cli.stats_interval_ms <= 0) {
    std::fprintf(stderr,
                 "--stats-jsonl/--prom-textfile require --stats-interval-ms\n");
    return 2;
  }

  // ---- Data ----
  tpch::DbgenConfig config;
  config.scale_factor = cli.sf;
  config.seed = cli.seed;
  tpch::Database db = tpch::Generate(config);
  if (!cli.tbl_dir.empty()) {
    Result<tpch::Database> loaded = tpch::LoadTbl(cli.tbl_dir, db);
    if (!loaded.ok()) {
      std::fprintf(stderr, "loading %s failed: %s\n", cli.tbl_dir.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    db = loaded.take();
    std::printf("loaded database from %s (%lld lineitem rows)\n",
                cli.tbl_dir.c_str(),
                static_cast<long long>(db.lineitem.num_rows()));
  }
  if (!cli.dump_tbl.empty()) {
    Status status = tpch::WriteTbl(db, cli.dump_tbl);
    if (!status.ok()) {
      std::fprintf(stderr, "dump failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote .tbl files to %s\n", cli.dump_tbl.c_str());
    if (cli.query.empty()) return 0;
  }

  // ---- Engine ----
  EngineOptions options;
  std::vector<sim::DeviceSpec> devices;
  {
    Result<EngineMode> mode = ParseEngineMode(cli.mode);
    if (!mode.ok()) {
      std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
      return Usage(argv[0]);
    }
    options.mode = *mode;
    Result<std::vector<sim::DeviceSpec>> parsed = ParseDeviceList(cli.device);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return Usage(argv[0]);
    }
    devices = parsed.take();
    options.device = devices.front();
  }
  // A multi-device --device list defines the shard group; an explicit
  // --shards must agree with it, and with a single device it sizes a
  // homogeneous group.
  if (cli.shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }
  if (devices.size() > 1) {
    if (cli.shards != 1 && cli.shards != static_cast<int>(devices.size())) {
      std::fprintf(stderr,
                   "--shards=%d conflicts with a %zu-device --device list\n",
                   cli.shards, devices.size());
      return 2;
    }
    cli.shards = static_cast<int>(devices.size());
  }
  Result<shard::PartitionScheme> scheme_or =
      shard::ParsePartitionScheme(cli.partition);
  if (!scheme_or.ok()) {
    std::fprintf(stderr, "%s\n", scheme_or.status().ToString().c_str());
    return Usage(argv[0]);
  }
  if (cli.link_gbps < 0.0) {
    std::fprintf(stderr, "--link-gbps must be positive\n");
    return 2;
  }
  sim::LinkSpec link;
  if (cli.link_gbps > 0.0) link.gbytes_per_sec = cli.link_gbps;
  if (cli.tile_kb > 0) {
    options.exec.use_cost_model = false;
    options.exec.overrides.tile_bytes = cli.tile_kb * 1024;
  }
  if (cli.wg > 0) {
    options.exec.use_cost_model = false;
    options.exec.overrides.workgroups_per_kernel = cli.wg;
  }
  options.partitioned_joins = cli.partitioned;
  options.exec.host_threads = cli.host_threads;
  options.exec.use_tuning_cache = !cli.no_tuning_cache;
  options.exec.use_subplan_cache = !cli.no_subplan_cache;
  // Sharded execution is routed through Engine::Execute: ExecOptions carries
  // the shard count, partition scheme, device group and link bandwidth.
  options.exec.shards = cli.shards;
  options.exec.partition = *scheme_or;
  if (devices.size() > 1) options.exec.device_list = devices;
  options.exec.link_gbps = cli.link_gbps;

  // ---- Serve mode ----
  if (cli.serve_workers > 0) {
    return RunServe(db, cli, options, devices, link, *scheme_or);
  }

  // ---- Tracing / profiling ----
  trace::TraceCollector collector;
  RunState state;
  const bool tracing =
      !cli.trace_path.empty() || cli.breakdown;
  if (tracing) {
    state.trace = &collector;
    options.exec.trace = &collector;
  }
  // Single-query subplan cache: lets repeated queries in a suite run (or the
  // build sides repeated across queries) share work, mirroring the
  // service-owned cache in serve mode. Declared before the engine so it
  // outlives every executor that touches it.
  pool::SubplanCacheOptions pool_options;
  pool_options.capacity_bytes =
      std::max<int64_t>(0, cli.subplan_cache_mb) * 1024 * 1024;
  pool::SubplanCache subplan_cache(pool_options);
  if (!cli.no_subplan_cache) options.subplan_cache = &subplan_cache;
  Engine engine(&db, options);

  // ---- Sharded execution ----
  // The engine routes sharded ExecOptions itself; partition eagerly here so
  // the banner (and any partitioning error) lands before the first query.
  std::string device_label = options.device.name;
  if (cli.shards > 1) {
    Result<shard::ShardedExecutor*> sharded = engine.ShardedFor(options.exec);
    if (!sharded.ok()) {
      std::fprintf(stderr, "partitioning failed: %s\n",
                   sharded.status().ToString().c_str());
      return 1;
    }
    device_label = (*sharded)->group().ToString();
    std::printf("sharded execution: %d shards (%s partitioning) on %s\n",
                cli.shards, shard::PartitionSchemeName(*scheme_or),
                device_label.c_str());
  }

  // ---- Queries ----
  int failures = 0;
  if (cli.query == "all") {
    for (auto& [name, q] : queries::EvaluationSuite()) {
      failures += RunQuery(engine, db, cli, device_label, name, q, &state);
    }
  } else if (cli.query == "extended") {
    for (auto& [name, q] : queries::ExtendedSuite()) {
      failures += RunQuery(engine, db, cli, device_label, name, q, &state);
    }
  } else {
    Result<LogicalQuery> q = FindQuery(cli.query);
    if (!q.ok()) {
      std::fprintf(stderr, "%s\n", q.status().ToString().c_str());
      return 2;
    }
    failures += RunQuery(engine, db, cli, device_label, cli.query, *q, &state);
  }

  // ---- Reports ----
  if (cli.breakdown && !cli.explain) {
    std::printf("--- per-kernel phase breakdown (ms, scaled to elapsed; "
                "Figures 20/29) ---\n%s\n",
                collector.BreakdownReport(state.total_elapsed_ms).c_str());
  }
  if (!cli.trace_path.empty()) {
    Status status = collector.WriteChromeJson(cli.trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "writing trace failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("wrote Chrome trace (%zu spans, %zu counter samples, %zu "
                "instants) to %s — load it in Perfetto or chrome://tracing\n",
                collector.spans().size(), collector.counters().size(),
                collector.instants().size(), cli.trace_path.c_str());
  }
  if (!cli.explain_json_path.empty()) {
    std::ofstream file(cli.explain_json_path);
    if (!file.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", cli.explain_json_path.c_str());
      return 1;
    }
    file << "[";
    for (size_t i = 0; i < state.explain_jsons.size(); ++i) {
      if (i > 0) file << ",";
      file << state.explain_jsons[i];
    }
    file << "]\n";
    std::printf("wrote EXPLAIN ANALYZE report(s) for %zu run(s) to %s\n",
                state.explain_jsons.size(), cli.explain_json_path.c_str());
  }
  if (!cli.metrics_json_path.empty()) {
    std::ofstream file(cli.metrics_json_path);
    if (!file.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", cli.metrics_json_path.c_str());
      return 1;
    }
    file << MetricsReportToJson(state.metrics) << "\n";
    std::printf("wrote metrics for %zu run(s) to %s\n", state.metrics.size(),
                cli.metrics_json_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}
