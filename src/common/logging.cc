#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>

#include "common/status.h"

namespace gpl {

namespace {
// Atomics: the log threshold is read (and lazily env-initialized) from every
// thread that logs — the QueryService workers in particular.
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

/// One-time lazy init from GPL_LOG_LEVEL before the first threshold read.
std::atomic<bool> g_env_checked{false};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  // An explicit choice wins over the environment.
  g_env_checked.store(true, std::memory_order_relaxed);
  g_log_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  if (!g_env_checked.load(std::memory_order_relaxed)) InitLogLevelFromEnv();
  return g_log_level.load(std::memory_order_relaxed);
}

bool ParseLogLevel(const char* text, LogLevel* level) {
  if (text == nullptr || level == nullptr) return false;
  std::string lower;
  for (const char* p = text; *p != '\0'; ++p) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *level = LogLevel::kWarning;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else if (lower == "fatal") {
    *level = LogLevel::kFatal;
  } else {
    return false;
  }
  return true;
}

void InitLogLevelFromEnv() {
  g_env_checked.store(true, std::memory_order_relaxed);
  const char* env = std::getenv("GPL_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return;
  LogLevel level;
  if (ParseLogLevel(env, &level)) {
    g_log_level.store(level, std::memory_order_relaxed);
  } else {
    std::fprintf(stderr,
                 "[WARN] unrecognized GPL_LOG_LEVEL '%s' "
                 "(want debug|info|warning|error|fatal)\n",
                 env);
  }
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  if (!g_env_checked.load(std::memory_order_relaxed)) InitLogLevelFromEnv();
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_log_level.load(std::memory_order_relaxed) ||
      level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal

}  // namespace gpl
