#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <mutex>

#include "common/status.h"

namespace gpl {

namespace {
// Atomics: the log threshold is read (and lazily env-initialized) from every
// thread that logs — the QueryService workers in particular.
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

/// One-time lazy init from GPL_LOG_LEVEL before the first threshold read.
std::atomic<bool> g_env_checked{false};

std::mutex g_sink_mu;
LogSink g_sink;  // guarded by g_sink_mu

/// True when `s` renders as a bare logfmt token without quoting.
bool IsToken(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) continue;
    if (c == '_' || c == '.' || c == ':' || c == '+' || c == '/' ||
        c == '#' || c == '-') {
      continue;
    }
    return false;
  }
  return true;
}

/// Appends `s` quoted, escaping backslash, double quote, and newlines so the
/// log line stays a single parseable line.
void AppendQuoted(std::string* out, const std::string& s) {
  *out += '"';
  for (const char c : s) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        *out += c;
    }
  }
  *out += '"';
}

void AppendValue(std::string* out, const std::string& s) {
  if (IsToken(s)) {
    *out += s;
  } else {
    AppendQuoted(out, s);
  }
}

/// UTC wall-clock timestamp with millisecond resolution,
/// e.g. 2026-08-08T12:34:56.789Z.
std::string Timestamp() {
  struct timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  struct tm tm_utc;
  gmtime_r(&ts.tv_sec, &tm_utc);
  char buf[40];
  const size_t n = std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S", &tm_utc);
  std::snprintf(buf + n, sizeof(buf) - n, ".%03ldZ", ts.tv_nsec / 1000000);
  return buf;
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

/// Component from a source path: the parent directory name, which in this
/// tree is the library layer ("src/service/query_service.cc" -> "service").
std::string ComponentFromPath(const char* path) {
  const char* end = std::strrchr(path, '/');
  if (end == nullptr) return "gpl";
  const char* begin = end;
  while (begin > path && begin[-1] != '/') --begin;
  if (begin == end) return "gpl";
  return std::string(begin, end);
}
}  // namespace

void SetLogLevel(LogLevel level) {
  // An explicit choice wins over the environment.
  g_env_checked.store(true, std::memory_order_relaxed);
  g_log_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  if (!g_env_checked.load(std::memory_order_relaxed)) InitLogLevelFromEnv();
  return g_log_level.load(std::memory_order_relaxed);
}

bool ParseLogLevel(const char* text, LogLevel* level) {
  if (text == nullptr || level == nullptr) return false;
  std::string lower;
  for (const char* p = text; *p != '\0'; ++p) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *level = LogLevel::kWarning;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else if (lower == "fatal") {
    *level = LogLevel::kFatal;
  } else {
    return false;
  }
  return true;
}

void InitLogLevelFromEnv() {
  g_env_checked.store(true, std::memory_order_relaxed);
  const char* env = std::getenv("GPL_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return;
  LogLevel level;
  if (ParseLogLevel(env, &level)) {
    g_log_level.store(level, std::memory_order_relaxed);
  } else {
    std::fprintf(stderr,
                 "level=warn component=common msg=\"unrecognized "
                 "GPL_LOG_LEVEL '%s' (want debug|info|warning|error|fatal)\"\n",
                 env);
  }
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kFatal:
      return "fatal";
  }
  return "?";
}

void SetLogSinkForTest(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = std::move(sink);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* component, const char* file,
                       int line)
    : level_(level), component_(component), file_(file), line_(line) {
  if (!g_env_checked.load(std::memory_order_relaxed)) InitLogLevelFromEnv();
  enabled_ = level >= g_log_level.load(std::memory_order_relaxed) ||
             level == LogLevel::kFatal;
}

void LogMessage::AppendField(const char* key, const std::string& value) {
  if (!enabled_) return;
  fields_ += ' ';
  fields_ += key;
  fields_ += '=';
  AppendValue(&fields_, value);
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::string line = "ts=" + Timestamp();
    line += " level=";
    line += LogLevelName(level_);
    line += " component=";
    AppendValue(&line,
                component_ != nullptr ? component_ : ComponentFromPath(file_));
    line += fields_;
    line += " msg=";
    AppendValue(&line, msg_.str());
    line += " src=";
    line += Basename(file_);
    line += ':';
    line += std::to_string(line_);
    LogSink sink;
    {
      std::lock_guard<std::mutex> lock(g_sink_mu);
      sink = g_sink;
    }
    if (sink) {
      sink(level_, line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal

}  // namespace gpl
