#ifndef GPL_COMMON_STATUS_H_
#define GPL_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace gpl {

/// Error categories used across the library. Mirrors the RocksDB/Arrow style
/// of status-based error handling (exceptions are not used).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kCancelled,          ///< the caller requested cancellation
  kDeadlineExceeded,   ///< the per-query deadline passed
  kUnavailable,        ///< the serving component is shut down / not accepting
  kFailedPrecondition, ///< the object is not in a state that allows the call
  kTransientDeviceError,  ///< kernel abort / device reset; retrying may succeed
  kChannelAllocFailed,    ///< pipe/channel reservation failed (degradable)
};

/// Returns a short human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Lightweight success/error result of an operation. Cheap to copy in the OK
/// case (no allocation); errors carry a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status TransientDeviceError(std::string msg) {
    return Status(StatusCode::kTransientDeviceError, std::move(msg));
  }
  static Status ChannelAllocFailed(std::string msg) {
    return Status(StatusCode::kChannelAllocFailed, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error holder, analogous to arrow::Result<T>.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit
  // conversions so functions can `return value;` or `return status;`.
  Result(T value) : payload_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : payload_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status ok_status;
    if (ok()) return ok_status;
    return std::get<Status>(payload_);
  }

  /// Precondition: ok().
  T& value() { return std::get<T>(payload_); }
  const T& value() const { return std::get<T>(payload_); }

  /// Precondition: ok(). Moves the value out.
  T take() { return std::move(std::get<T>(payload_)); }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK status to the caller.
#define GPL_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::gpl::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (false)

/// Assigns the value of a Result expression or propagates its error.
#define GPL_ASSIGN_OR_RETURN(lhs, expr)        \
  auto GPL_CONCAT_(res_, __LINE__) = (expr);   \
  if (!GPL_CONCAT_(res_, __LINE__).ok())       \
    return GPL_CONCAT_(res_, __LINE__).status(); \
  lhs = GPL_CONCAT_(res_, __LINE__).take()

#define GPL_CONCAT_IMPL_(a, b) a##b
#define GPL_CONCAT_(a, b) GPL_CONCAT_IMPL_(a, b)

}  // namespace gpl

#endif  // GPL_COMMON_STATUS_H_
