#include "common/status.h"

namespace gpl {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kTransientDeviceError:
      return "TransientDeviceError";
    case StatusCode::kChannelAllocFailed:
      return "ChannelAllocFailed";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace gpl
