#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace gpl {

namespace {
uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t state = seed;
  s0_ = SplitMix64(state);
  s1_ = SplitMix64(state);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xorshift state must be non-zero.
}

uint64_t Random::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

int64_t Random::Uniform(int64_t lo, int64_t hi) {
  GPL_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(Next() % span);
}

double Random::NextDouble() {
  // 53 random bits into the mantissa.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

int64_t Random::Skewed(int64_t lo, int64_t hi, double exponent) {
  GPL_DCHECK(lo <= hi);
  const double u = NextDouble();
  const double span = static_cast<double>(hi - lo + 1);
  const double v = std::pow(u, exponent) * span;
  int64_t result = lo + static_cast<int64_t>(v);
  if (result > hi) result = hi;
  return result;
}

}  // namespace gpl
