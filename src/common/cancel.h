#ifndef GPL_COMMON_CANCEL_H_
#define GPL_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace gpl {

/// Cooperative cancellation/deadline token shared between a query's
/// submitter and its executor. The submitter (any thread) may request
/// cancellation or arm a host wall-clock deadline; the executor polls
/// `Check()` at coarse boundaries (segment starts, operator starts) and
/// unwinds with `kCancelled` / `kDeadlineExceeded` when it fires.
///
/// Thread-safety: all methods are safe to call concurrently; state is held
/// in atomics. The token must outlive every execution that references it.
///
/// Determinism note: cancellation is observed at *host* times, so whether a
/// run is cut short is inherently nondeterministic — but a run that is not
/// cancelled is unaffected (the token is only ever read on the execution
/// path), so uncancelled results stay bit-identical.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cooperative cancellation. Idempotent.
  void RequestCancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arms (or re-arms) a deadline `timeout_ms` from now on the host
  /// steady clock. Non-positive timeouts disarm the deadline.
  void SetDeadlineAfterMs(double timeout_ms) {
    if (timeout_ms <= 0.0) {
      deadline_ns_.store(0, std::memory_order_release);
      return;
    }
    const int64_t now = NowNs();
    deadline_ns_.store(now + static_cast<int64_t>(timeout_ms * 1e6),
                       std::memory_order_release);
  }

  bool CancelRequested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  bool DeadlineExpired() const {
    const int64_t deadline = deadline_ns_.load(std::memory_order_acquire);
    return deadline != 0 && NowNs() >= deadline;
  }

  /// OK while live; kCancelled / kDeadlineExceeded once fired. Cancellation
  /// takes precedence over an expired deadline.
  Status Check() const {
    if (CancelRequested()) return Status::Cancelled("query cancelled");
    if (DeadlineExpired()) return Status::DeadlineExceeded("query deadline exceeded");
    return Status::OK();
  }

 private:
  static int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};  ///< steady-clock ns; 0 = unarmed
};

}  // namespace gpl

#endif  // GPL_COMMON_CANCEL_H_
