#ifndef GPL_COMMON_LOGGING_H_
#define GPL_COMMON_LOGGING_H_

#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

namespace gpl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global log threshold; messages below it are dropped. Defaults to kWarning
/// so tests and benches stay quiet; the GPL_LOG_LEVEL environment variable
/// (debug|info|warning|error|fatal, case-insensitive) overrides the default
/// at startup so CLI/bench verbosity can be raised without recompiling.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a GPL_LOG_LEVEL value. Returns false (and leaves `level` alone)
/// if `text` is null or not a recognized level name.
bool ParseLogLevel(const char* text, LogLevel* level);

/// Re-reads GPL_LOG_LEVEL from the environment and applies it if set and
/// valid (unrecognized values keep the current level and warn). Called
/// lazily before the first log message; exposed for tests and for callers
/// that change the environment at runtime.
void InitLogLevelFromEnv();

/// Lowercase name of a level as it appears in the `level=` field.
const char* LogLevelName(LogLevel level);

/// Test hook: when set, formatted log lines that pass the threshold are
/// handed to the sink instead of being written to stderr (kFatal still
/// aborts after invoking the sink). Pass nullptr to restore stderr output.
using LogSink = std::function<void(LogLevel level, const std::string& line)>;
void SetLogSinkForTest(LogSink sink);

namespace internal {

/// Builder for one structured log line, used by the GPL_LOG / GPL_SLOG
/// macros. Emits on destruction, as a single machine-parseable logfmt line:
///
///   ts=2026-08-08T12:34:56.789Z level=info component=service query=Q5#3
///   msg="admitted" src=query_service.cc:323
///
/// `component` defaults to the source file's parent directory (the library
/// layer: common, sim, engine, service, ...). Fields added with Field()
/// appear between `component=` and `msg=` in insertion order; values are
/// quoted and escaped unless they are simple tokens. Anything streamed via
/// stream()/operator<< becomes the msg= value. Aborts the process for
/// kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* component, const char* file,
             int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  /// Adds a `key=value` field. Values render through operator<< and are
  /// quote-escaped when they contain anything outside [A-Za-z0-9_.:+/#-].
  template <typename T>
  LogMessage& Field(const char* key, const T& value) {
    std::ostringstream rendered;
    rendered << value;
    AppendField(key, rendered.str());
    return *this;
  }

  /// Message body stream (the msg= field).
  std::ostream& stream() { return msg_; }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    msg_ << value;
    return *this;
  }

 private:
  void AppendField(const char* key, const std::string& value);

  LogLevel level_;
  bool enabled_;
  const char* component_;
  const char* file_;
  int line_;
  std::string fields_;  ///< pre-rendered " key=value ..." (leading space)
  std::ostringstream msg_;
};

}  // namespace internal

/// Stream-style logging with the component derived from the source path.
#define GPL_LOG(level)                                                \
  ::gpl::internal::LogMessage(::gpl::LogLevel::k##level, nullptr,     \
                              __FILE__, __LINE__)                     \
      .stream()

/// Structured logging with an explicit component; chain .Field(k, v) calls
/// and stream the message: GPL_SLOG(Info, "service").Field("query", name)
/// << "admitted".
#define GPL_SLOG(level, component)                                    \
  ::gpl::internal::LogMessage(::gpl::LogLevel::k##level, component,   \
                              __FILE__, __LINE__)

/// Invariant check that aborts with a message on failure. Used for internal
/// invariants (programming errors), not for recoverable conditions.
#define GPL_CHECK(cond)                                          \
  if (!(cond))                                                   \
  GPL_LOG(Fatal) << "Check failed: " #cond " "

#define GPL_CHECK_OK(expr)                                       \
  do {                                                           \
    ::gpl::Status _st = (expr);                                  \
    if (!_st.ok()) GPL_LOG(Fatal) << "Status not OK: " << _st.ToString(); \
  } while (false)

#define GPL_DCHECK(cond) GPL_CHECK(cond)

}  // namespace gpl

#endif  // GPL_COMMON_LOGGING_H_
