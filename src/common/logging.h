#ifndef GPL_COMMON_LOGGING_H_
#define GPL_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace gpl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global log threshold; messages below it are dropped. Defaults to kWarning
/// so tests and benches stay quiet; the GPL_LOG_LEVEL environment variable
/// (debug|info|warning|error|fatal, case-insensitive) overrides the default
/// at startup so CLI/bench verbosity can be raised without recompiling.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a GPL_LOG_LEVEL value. Returns false (and leaves `level` alone)
/// if `text` is null or not a recognized level name.
bool ParseLogLevel(const char* text, LogLevel* level);

/// Re-reads GPL_LOG_LEVEL from the environment and applies it if set and
/// valid (unrecognized values keep the current level and warn). Called
/// lazily before the first log message; exposed for tests and for callers
/// that change the environment at runtime.
void InitLogLevelFromEnv();

namespace internal {

/// Stream-style log sink used by the GPL_LOG macro. Emits on destruction;
/// aborts the process for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define GPL_LOG(level)                                                      \
  ::gpl::internal::LogMessage(::gpl::LogLevel::k##level, __FILE__, __LINE__) \
      .stream()

/// Invariant check that aborts with a message on failure. Used for internal
/// invariants (programming errors), not for recoverable conditions.
#define GPL_CHECK(cond)                                          \
  if (!(cond))                                                   \
  GPL_LOG(Fatal) << "Check failed: " #cond " "

#define GPL_CHECK_OK(expr)                                       \
  do {                                                           \
    ::gpl::Status _st = (expr);                                  \
    if (!_st.ok()) GPL_LOG(Fatal) << "Status not OK: " << _st.ToString(); \
  } while (false)

#define GPL_DCHECK(cond) GPL_CHECK(cond)

}  // namespace gpl

#endif  // GPL_COMMON_LOGGING_H_
