#ifndef GPL_COMMON_LOGGING_H_
#define GPL_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace gpl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global log threshold; messages below it are dropped. Defaults to kWarning
/// so tests and benches stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink used by the GPL_LOG macro. Emits on destruction;
/// aborts the process for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define GPL_LOG(level)                                                      \
  ::gpl::internal::LogMessage(::gpl::LogLevel::k##level, __FILE__, __LINE__) \
      .stream()

/// Invariant check that aborts with a message on failure. Used for internal
/// invariants (programming errors), not for recoverable conditions.
#define GPL_CHECK(cond)                                          \
  if (!(cond))                                                   \
  GPL_LOG(Fatal) << "Check failed: " #cond " "

#define GPL_CHECK_OK(expr)                                       \
  do {                                                           \
    ::gpl::Status _st = (expr);                                  \
    if (!_st.ok()) GPL_LOG(Fatal) << "Status not OK: " << _st.ToString(); \
  } while (false)

#define GPL_DCHECK(cond) GPL_CHECK(cond)

}  // namespace gpl

#endif  // GPL_COMMON_LOGGING_H_
