#ifndef GPL_COMMON_RANDOM_H_
#define GPL_COMMON_RANDOM_H_

#include <cstdint>

namespace gpl {

/// Deterministic xorshift128+ pseudo-random generator. Used everywhere a
/// random stream is needed (data generation, property tests) so that results
/// are reproducible across runs and platforms.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Skewed (approximately Zipf-like) integer in [lo, hi] biased towards lo.
  int64_t Skewed(int64_t lo, int64_t hi, double exponent);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace gpl

#endif  // GPL_COMMON_RANDOM_H_
