#ifndef GPL_COMMON_THREAD_POOL_H_
#define GPL_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gpl {

/// Rows per morsel for the parallel primitive bodies. Fixed — never derived
/// from the thread count — so the work decomposition (and therefore every
/// morsel-local intermediate) is identical at any `host_threads`, which is
/// what makes the parallel paths bit-identical to the serial oracle.
constexpr int64_t kMorselRows = 4096;

/// Counters exposed by ThreadPool::stats(); monotonic over the pool's
/// lifetime. Surfaced as callback gauges in the metrics registry.
struct ThreadPoolStats {
  uint64_t tasks_submitted = 0;  ///< Submit() calls (inline fallbacks too)
  uint64_t tasks_executed = 0;   ///< tasks completed by pool workers
  uint64_t steals = 0;           ///< tasks taken from another worker's deque
};

/// A work-stealing host thread pool. One instance is shared per process
/// (Global()) by the QueryService workers, the engines' functional primitive
/// bodies and the plan tuner; tests may construct private pools.
///
/// Design notes:
///  - Per-worker deques: a worker pops its own queue LIFO (locality) and
///    steals FIFO from the others; external submitters round-robin.
///  - ParallelFor never blocks on a free worker: the *calling* thread claims
///    and executes chunks alongside any helpers, so the loop completes even
///    when the pool is saturated or the helpers never get scheduled. That
///    also makes nested ParallelFor calls deadlock-free by construction.
///  - The pool grows on demand (EnsureThreads) up to kMaxThreads, so an
///    explicitly pinned `host_threads` larger than the core count still gets
///    real threads (needed for the scaling bench and the TSan tests on small
///    machines). It never shrinks.
///
/// Loop bodies must not throw: errors are reported through Result/Status
/// values written into per-chunk slots, never by unwinding across the pool.
class ThreadPool {
 public:
  /// Upper bound on pool size; EnsureThreads clamps to it.
  static constexpr int kMaxThreads = 64;

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Currently started worker threads.
  int num_threads() const {
    return active_threads_.load(std::memory_order_acquire);
  }

  /// Grows the pool to at least `n` workers (clamped to kMaxThreads).
  void EnsureThreads(int n);

  /// Enqueues a fire-and-forget task. From a pool worker it lands on that
  /// worker's own deque (LIFO), otherwise on a round-robin victim.
  void Submit(std::function<void()> task);

  /// Runs `body(chunk_begin, chunk_end)` over [begin, end) split into fixed
  /// chunks of `grain` (boundaries at begin + k*grain regardless of
  /// parallelism), using at most `max_parallelism` threads including the
  /// caller. Blocks until every chunk has executed. Bodies run concurrently
  /// and must only touch disjoint, position-derived state; completion gives
  /// the caller a happens-before edge over all chunk writes.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   int max_parallelism,
                   const std::function<void(int64_t, int64_t)>& body);

  /// The process-wide shared pool, created on first use with one thread per
  /// hardware thread and grown on demand by ScopedHostParallelism.
  static ThreadPool& Global();

  /// Snapshot of the pool's lifetime counters (relaxed reads).
  ThreadPoolStats stats() const {
    ThreadPoolStats s;
    s.tasks_submitted = tasks_submitted_.load(std::memory_order_relaxed);
    s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
    s.steals = steals_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(int index);
  /// Pops and runs one task (own queue first, then steals). False if every
  /// queue was empty.
  bool RunOneTask(int home);

  /// Fixed-capacity queue slots (pre-constructed so growth never relocates
  /// a queue another thread is touching).
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::atomic<int> active_threads_{0};
  std::atomic<uint64_t> next_victim_{0};
  std::atomic<int64_t> pending_{0};
  std::atomic<uint64_t> tasks_submitted_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> steals_{0};

  std::mutex mu_;  ///< guards workers_/stop_ and the idle wait
  std::condition_variable idle_cv_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// max(1, std::thread::hardware_concurrency()).
int HostHardwareThreads();

/// The host parallelism of the current scope (thread-local; 1 outside any
/// ScopedHostParallelism). The free ParallelFor below and every morsel-
/// parallel primitive body consult it, so executors can plumb
/// ExecOptions::host_threads down without threading it through every Kernel
/// signature.
int CurrentHostParallelism();

/// Sets the current thread's host parallelism for the scope's lifetime.
/// `requested` <= 0 resolves to HostHardwareThreads(). Resolving to more
/// than one thread grows the global pool so the parallelism is real even
/// when it exceeds the core count.
class ScopedHostParallelism {
 public:
  explicit ScopedHostParallelism(int requested);
  ~ScopedHostParallelism();

  ScopedHostParallelism(const ScopedHostParallelism&) = delete;
  ScopedHostParallelism& operator=(const ScopedHostParallelism&) = delete;

  int resolved() const { return resolved_; }

 private:
  int prev_;
  int resolved_;
};

/// Facade over the global pool honoring CurrentHostParallelism(): serial
/// scopes run the chunks inline on the caller (no pool, no locks), parallel
/// scopes fan out. Chunk boundaries are identical either way.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body);

}  // namespace gpl

#endif  // GPL_COMMON_THREAD_POOL_H_
