#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace gpl {

namespace {

/// Index of the pool worker running on this thread (-1 off-pool). Lets
/// Submit push to the worker's own deque and RunOneTask steal from the rest.
thread_local int tls_worker_index = -1;

/// Parallelism of the innermost ScopedHostParallelism on this thread.
thread_local int tls_parallelism = 1;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  queues_.reserve(kMaxThreads);
  for (int i = 0; i < kMaxThreads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  EnsureThreads(num_threads);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::EnsureThreads(int n) {
  n = std::min(n, kMaxThreads);
  if (num_threads() >= n) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return;
  while (static_cast<int>(workers_.size()) < n) {
    const int index = static_cast<int>(workers_.size());
    workers_.emplace_back([this, index] { WorkerLoop(index); });
    // Publish after the queue slot is (pre-)constructed; release pairs with
    // the acquire in num_threads()/RunOneTask/Submit.
    active_threads_.store(index + 1, std::memory_order_release);
  }
}

void ThreadPool::WorkerLoop(int index) {
  tls_worker_index = index;
  for (;;) {
    if (RunOneTask(index)) continue;
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [&] {
      return stop_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_) return;
  }
}

bool ThreadPool::RunOneTask(int home) {
  const int n = num_threads();
  if (n <= 0) return false;
  std::function<void()> task;
  const int first = home >= 0 && home < n ? home : 0;
  for (int attempt = 0; attempt < n && !task; ++attempt) {
    const int q = (first + attempt) % n;
    WorkerQueue& queue = *queues_[static_cast<size_t>(q)];
    std::lock_guard<std::mutex> lock(queue.mu);
    if (queue.tasks.empty()) continue;
    if (q == home) {
      task = std::move(queue.tasks.back());  // own queue: LIFO for locality
      queue.tasks.pop_back();
    } else {
      task = std::move(queue.tasks.front());  // steal: FIFO (oldest first)
      queue.tasks.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }
  if (!task) return false;
  task();
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ThreadPool::Submit(std::function<void()> task) {
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
  const int n = num_threads();
  if (n <= 0) {
    task();  // no workers at all: degrade to inline execution
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const int worker = tls_worker_index;
  const int q = worker >= 0 && worker < n
                    ? worker
                    : static_cast<int>(next_victim_.fetch_add(
                                           1, std::memory_order_relaxed) %
                                       static_cast<uint64_t>(n));
  {
    std::lock_guard<std::mutex> lock(queues_[static_cast<size_t>(q)]->mu);
    queues_[static_cast<size_t>(q)]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_acq_rel);
  // Lock/unlock pairs the pending_ publication with the idle predicate so a
  // worker between its predicate check and wait() cannot miss the wakeup.
  { std::lock_guard<std::mutex> lock(mu_); }
  idle_cv_.notify_one();
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             int max_parallelism,
                             const std::function<void(int64_t, int64_t)>& body) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  grain = std::max<int64_t>(grain, 1);
  const int64_t num_chunks = (n + grain - 1) / grain;
  const int parallelism = static_cast<int>(std::min<int64_t>(
      std::min(max_parallelism, num_threads() + 1), num_chunks));

  if (parallelism <= 1) {
    // Same fixed chunking as the parallel path, executed in order.
    for (int64_t c = 0; c < num_chunks; ++c) {
      const int64_t b = begin + c * grain;
      body(b, std::min(b + grain, end));
    }
    return;
  }

  struct SharedState {
    std::function<void(int64_t, int64_t)> body;
    int64_t begin = 0;
    int64_t end = 0;
    int64_t grain = 1;
    int64_t num_chunks = 0;
    std::atomic<int64_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    int64_t done = 0;
  };
  auto state = std::make_shared<SharedState>();
  state->body = body;
  state->begin = begin;
  state->end = end;
  state->grain = grain;
  state->num_chunks = num_chunks;

  // Claim-and-run: safe for helpers that start after the loop finished (they
  // claim an out-of-range chunk and return, touching only the shared state).
  auto run_chunks = [](const std::shared_ptr<SharedState>& s) {
    for (;;) {
      const int64_t c = s->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= s->num_chunks) return;
      const int64_t b = s->begin + c * s->grain;
      s->body(b, std::min(b + s->grain, s->end));
      std::lock_guard<std::mutex> lock(s->mu);
      if (++s->done == s->num_chunks) s->cv.notify_all();
    }
  };

  for (int h = 1; h < parallelism; ++h) {
    Submit([state, run_chunks] { run_chunks(state); });
  }
  run_chunks(state);  // the caller participates — never blocks on a worker

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done == state->num_chunks; });
}

ThreadPool& ThreadPool::Global() {
  // Function-local static: destroyed (joining all workers) after main, so
  // sanitizer runs end with no live pool threads.
  static ThreadPool pool(HostHardwareThreads());
  return pool;
}

int HostHardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int CurrentHostParallelism() { return tls_parallelism; }

ScopedHostParallelism::ScopedHostParallelism(int requested)
    : prev_(tls_parallelism) {
  resolved_ = requested <= 0 ? HostHardwareThreads() : requested;
  resolved_ = std::min(std::max(resolved_, 1), ThreadPool::kMaxThreads);
  if (resolved_ > 1) ThreadPool::Global().EnsureThreads(resolved_);
  tls_parallelism = resolved_;
}

ScopedHostParallelism::~ScopedHostParallelism() { tls_parallelism = prev_; }

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& body) {
  const int parallelism = tls_parallelism;
  if (parallelism <= 1) {
    // Serial scope: identical chunk boundaries, no pool, no locks.
    const int64_t n = end - begin;
    if (n <= 0) return;
    grain = std::max<int64_t>(grain, 1);
    const int64_t num_chunks = (n + grain - 1) / grain;
    for (int64_t c = 0; c < num_chunks; ++c) {
      const int64_t b = begin + c * grain;
      body(b, std::min(b + grain, end));
    }
    return;
  }
  ThreadPool::Global().ParallelFor(begin, end, grain, parallelism, body);
}

}  // namespace gpl
