#ifndef GPL_COMMON_MATH_UTIL_H_
#define GPL_COMMON_MATH_UTIL_H_

#include <cstdint>

namespace gpl {

/// ceil(a / b) for positive integers.
constexpr int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

/// Rounds `a` up to the next multiple of `b` (b > 0).
constexpr int64_t RoundUp(int64_t a, int64_t b) { return CeilDiv(a, b) * b; }

/// Smallest power of two >= v (v >= 1).
constexpr uint64_t NextPow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

constexpr bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr int64_t KiB(int64_t n) { return n * 1024; }
constexpr int64_t MiB(int64_t n) { return n * 1024 * 1024; }
constexpr int64_t GiB(int64_t n) { return n * 1024 * 1024 * 1024; }

}  // namespace gpl

#endif  // GPL_COMMON_MATH_UTIL_H_
