#ifndef GPL_STORAGE_DICTIONARY_H_
#define GPL_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace gpl {

/// Order-preserving string dictionary shared by string columns. Codes are
/// dense int32 values assigned in insertion order.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the code for `value`, inserting it if absent.
  int32_t GetOrInsert(const std::string& value);

  /// Returns the code for `value`, or -1 if absent.
  int32_t Lookup(const std::string& value) const;

  /// Precondition: 0 <= code < size().
  const std::string& GetString(int32_t code) const;

  int64_t size() const { return static_cast<int64_t>(strings_.size()); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, int32_t> index_;
};

}  // namespace gpl

#endif  // GPL_STORAGE_DICTIONARY_H_
