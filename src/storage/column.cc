#include "storage/column.h"

#include "common/thread_pool.h"

namespace gpl {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt32:
      return "int32";
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat64:
      return "float64";
    case DataType::kDate:
      return "date";
    case DataType::kString:
      return "string";
  }
  return "?";
}

Column::Column(DataType type, std::shared_ptr<Dictionary> dict)
    : type_(type), dict_(std::move(dict)) {
  if (type_ == DataType::kString && dict_ == nullptr) {
    dict_ = std::make_shared<Dictionary>();
  }
}

int64_t Column::size() const {
  switch (type_) {
    case DataType::kInt32:
    case DataType::kDate:
    case DataType::kString:
      return static_cast<int64_t>(data32_.size());
    case DataType::kInt64:
      return static_cast<int64_t>(data64_.size());
    case DataType::kFloat64:
      return static_cast<int64_t>(dataf_.size());
  }
  return 0;
}

void Column::Reserve(int64_t n) {
  switch (type_) {
    case DataType::kInt32:
    case DataType::kDate:
    case DataType::kString:
      data32_.reserve(static_cast<size_t>(n));
      break;
    case DataType::kInt64:
      data64_.reserve(static_cast<size_t>(n));
      break;
    case DataType::kFloat64:
      dataf_.reserve(static_cast<size_t>(n));
      break;
  }
}

double Column::AsDouble(int64_t i) const {
  switch (type_) {
    case DataType::kInt32:
    case DataType::kDate:
    case DataType::kString:
      return static_cast<double>(Int32At(i));
    case DataType::kInt64:
      return static_cast<double>(Int64At(i));
    case DataType::kFloat64:
      return DoubleAt(i);
  }
  return 0.0;
}

int64_t Column::AsInt64(int64_t i) const {
  switch (type_) {
    case DataType::kInt32:
    case DataType::kDate:
    case DataType::kString:
      return Int32At(i);
    case DataType::kInt64:
      return Int64At(i);
    case DataType::kFloat64:
      return static_cast<int64_t>(DoubleAt(i));
  }
  return 0;
}

Column Column::Gather(const std::vector<int64_t>& indices) const {
  Column out(type_, dict_);
  const int64_t n = static_cast<int64_t>(indices.size());
  if (CurrentHostParallelism() <= 1 || n < 2 * kMorselRows) {
    out.Reserve(n);
    switch (type_) {
      case DataType::kInt32:
      case DataType::kDate:
      case DataType::kString:
        for (int64_t i : indices) out.data32_.push_back(data32_[static_cast<size_t>(i)]);
        break;
      case DataType::kInt64:
        for (int64_t i : indices) out.data64_.push_back(data64_[static_cast<size_t>(i)]);
        break;
      case DataType::kFloat64:
        for (int64_t i : indices) out.dataf_.push_back(dataf_[static_cast<size_t>(i)]);
        break;
    }
    return out;
  }
  // Morsel-parallel fill of a pre-sized buffer: output position i takes
  // row indices[i], so concurrent chunks write disjoint ranges and the
  // values are trivially identical to the serial loop.
  switch (type_) {
    case DataType::kInt32:
    case DataType::kDate:
    case DataType::kString:
      out.data32_.resize(static_cast<size_t>(n));
      ParallelFor(0, n, kMorselRows, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
          out.data32_[static_cast<size_t>(i)] =
              data32_[static_cast<size_t>(indices[static_cast<size_t>(i)])];
        }
      });
      break;
    case DataType::kInt64:
      out.data64_.resize(static_cast<size_t>(n));
      ParallelFor(0, n, kMorselRows, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
          out.data64_[static_cast<size_t>(i)] =
              data64_[static_cast<size_t>(indices[static_cast<size_t>(i)])];
        }
      });
      break;
    case DataType::kFloat64:
      out.dataf_.resize(static_cast<size_t>(n));
      ParallelFor(0, n, kMorselRows, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) {
          out.dataf_[static_cast<size_t>(i)] =
              dataf_[static_cast<size_t>(indices[static_cast<size_t>(i)])];
        }
      });
      break;
  }
  return out;
}

Column Column::Slice(int64_t begin, int64_t len) const {
  GPL_CHECK(begin >= 0 && len >= 0 && begin + len <= size())
      << "slice out of range: [" << begin << ", " << begin + len << ") of " << size();
  Column out(type_, dict_);
  out.Reserve(len);
  switch (type_) {
    case DataType::kInt32:
    case DataType::kDate:
    case DataType::kString:
      out.data32_.assign(data32_.begin() + begin, data32_.begin() + begin + len);
      break;
    case DataType::kInt64:
      out.data64_.assign(data64_.begin() + begin, data64_.begin() + begin + len);
      break;
    case DataType::kFloat64:
      out.dataf_.assign(dataf_.begin() + begin, dataf_.begin() + begin + len);
      break;
  }
  return out;
}

Status Column::AppendColumn(const Column& other) {
  if (other.type_ != type_) {
    return Status::InvalidArgument("AppendColumn: mismatched types");
  }
  if (type_ == DataType::kString && other.dict_ != dict_) {
    return Status::InvalidArgument("AppendColumn: mismatched dictionaries");
  }
  data32_.insert(data32_.end(), other.data32_.begin(), other.data32_.end());
  data64_.insert(data64_.end(), other.data64_.begin(), other.data64_.end());
  dataf_.insert(dataf_.end(), other.dataf_.begin(), other.dataf_.end());
  return Status::OK();
}

}  // namespace gpl
