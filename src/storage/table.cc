#include "storage/table.h"

#include <cstdio>
#include <sstream>

namespace gpl {

int64_t Table::num_rows() const {
  if (columns_.empty()) return 0;
  return columns_[0].size();
}

int64_t Table::byte_size() const {
  int64_t total = 0;
  for (const Column& c : columns_) total += c.byte_size();
  return total;
}

int64_t Table::row_width() const {
  int64_t total = 0;
  for (const Column& c : columns_) total += TypeWidth(c.type());
  return total;
}

Status Table::AddColumn(std::string column_name, Column column) {
  if (HasColumn(column_name)) {
    return Status::AlreadyExists("column already exists: " + column_name);
  }
  names_.push_back(std::move(column_name));
  columns_.push_back(std::move(column));
  return Status::OK();
}

bool Table::HasColumn(const std::string& column_name) const {
  return ColumnIndex(column_name) >= 0;
}

int64_t Table::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == column_name) return static_cast<int64_t>(i);
  }
  return -1;
}

const Column& Table::GetColumn(const std::string& column_name) const {
  const int64_t idx = ColumnIndex(column_name);
  GPL_CHECK(idx >= 0) << "no such column: " << column_name << " in table " << name_;
  return columns_[static_cast<size_t>(idx)];
}

Column& Table::GetMutableColumn(const std::string& column_name) {
  const int64_t idx = ColumnIndex(column_name);
  GPL_CHECK(idx >= 0) << "no such column: " << column_name << " in table " << name_;
  return columns_[static_cast<size_t>(idx)];
}

Status Table::Validate() const {
  if (columns_.empty()) return Status::OK();
  const int64_t rows = columns_[0].size();
  for (size_t i = 1; i < columns_.size(); ++i) {
    if (columns_[i].size() != rows) {
      return Status::Internal("column length mismatch in table " + name_ + ": " +
                              names_[i]);
    }
  }
  return Status::OK();
}

Table Table::Slice(int64_t begin, int64_t len) const {
  Table out(name_);
  for (size_t i = 0; i < columns_.size(); ++i) {
    GPL_CHECK_OK(out.AddColumn(names_[i], columns_[i].Slice(begin, len)));
  }
  return out;
}

Table Table::Gather(const std::vector<int64_t>& indices) const {
  Table out(name_);
  for (size_t i = 0; i < columns_.size(); ++i) {
    GPL_CHECK_OK(out.AddColumn(names_[i], columns_[i].Gather(indices)));
  }
  return out;
}

Status Table::AppendTable(const Table& other) {
  if (other.num_columns() != num_columns()) {
    return Status::InvalidArgument("AppendTable: column count mismatch");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (other.names_[i] != names_[i]) {
      return Status::InvalidArgument("AppendTable: column name mismatch: " +
                                     other.names_[i] + " vs " + names_[i]);
    }
    GPL_RETURN_NOT_OK(columns_[i].AppendColumn(other.columns_[i]));
  }
  return Status::OK();
}

std::string Table::ToString(int64_t max_rows) const {
  std::ostringstream out;
  out << name_ << " (" << num_rows() << " rows)\n";
  for (size_t i = 0; i < names_.size(); ++i) {
    out << (i == 0 ? "" : " | ") << names_[i];
  }
  out << "\n";
  const int64_t n = std::min(num_rows(), max_rows);
  for (int64_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c != 0) out << " | ";
      const Column& col = columns_[c];
      switch (col.type()) {
        case DataType::kInt32:
        case DataType::kDate:
          out << col.Int32At(r);
          break;
        case DataType::kInt64:
          out << col.Int64At(r);
          break;
        case DataType::kFloat64: {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.4f", col.DoubleAt(r));
          out << buf;
          break;
        }
        case DataType::kString:
          out << col.StringAt(r);
          break;
      }
    }
    out << "\n";
  }
  if (num_rows() > n) out << "... (" << num_rows() - n << " more rows)\n";
  return out.str();
}

}  // namespace gpl
