#ifndef GPL_STORAGE_TABLE_H_
#define GPL_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column.h"

namespace gpl {

/// A named, columnar table. All columns have the same row count. This is the
/// unit stored in (simulated) GPU global memory and the shape of every
/// intermediate result.
class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  int64_t num_rows() const;
  int64_t num_columns() const { return static_cast<int64_t>(columns_.size()); }

  /// Total bytes of all columns as laid out in global memory.
  int64_t byte_size() const;
  /// Bytes of one row across all columns.
  int64_t row_width() const;

  /// Adds a column. All columns must end up with equal length; this is
  /// validated lazily by num_rows()/Validate().
  Status AddColumn(std::string column_name, Column column);

  bool HasColumn(const std::string& column_name) const;
  /// Index of the column, or -1 if absent.
  int64_t ColumnIndex(const std::string& column_name) const;

  /// Precondition: column exists (checked).
  const Column& GetColumn(const std::string& column_name) const;
  Column& GetMutableColumn(const std::string& column_name);
  const Column& ColumnAt(int64_t i) const { return columns_[static_cast<size_t>(i)]; }
  Column& MutableColumnAt(int64_t i) { return columns_[static_cast<size_t>(i)]; }
  const std::string& ColumnNameAt(int64_t i) const {
    return names_[static_cast<size_t>(i)];
  }

  const std::vector<std::string>& column_names() const { return names_; }

  /// Checks that all columns have equal length.
  Status Validate() const;

  /// New table with rows [begin, begin+len) of every column.
  Table Slice(int64_t begin, int64_t len) const;

  /// New table with the rows selected by `indices` (in order), all columns.
  Table Gather(const std::vector<int64_t>& indices) const;

  /// Appends all rows of `other` (same schema required).
  Status AppendTable(const Table& other);

  /// Human-readable rendering of the first `max_rows` rows, for examples and
  /// debugging.
  std::string ToString(int64_t max_rows = 10) const;

 private:
  std::string name_;
  std::vector<std::string> names_;
  std::vector<Column> columns_;
};

}  // namespace gpl

#endif  // GPL_STORAGE_TABLE_H_
