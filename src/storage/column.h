#ifndef GPL_STORAGE_COLUMN_H_
#define GPL_STORAGE_COLUMN_H_

#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "storage/dictionary.h"
#include "storage/types.h"

namespace gpl {

/// A typed column of values. Storage is a contiguous vector of the physical
/// representation: int32 for kInt32/kDate/kString (dictionary codes), int64
/// for kInt64 and double for kFloat64. String columns share a Dictionary.
///
/// Columns are cheap to move; copies are explicit deep copies of the data
/// (the dictionary stays shared).
class Column {
 public:
  explicit Column(DataType type, std::shared_ptr<Dictionary> dict = nullptr);

  Column(const Column&) = default;
  Column& operator=(const Column&) = default;
  Column(Column&&) = default;
  Column& operator=(Column&&) = default;

  DataType type() const { return type_; }
  int64_t size() const;
  int64_t byte_size() const { return size() * TypeWidth(type_); }

  const std::shared_ptr<Dictionary>& dictionary() const { return dict_; }

  // -- Appends -------------------------------------------------------------

  void AppendInt32(int32_t v) {
    GPL_DCHECK(Is32Bit());
    data32_.push_back(v);
  }
  void AppendInt64(int64_t v) {
    GPL_DCHECK(type_ == DataType::kInt64);
    data64_.push_back(v);
  }
  void AppendDouble(double v) {
    GPL_DCHECK(type_ == DataType::kFloat64);
    dataf_.push_back(v);
  }
  /// Appends a string value, interning it in the shared dictionary.
  void AppendString(const std::string& v) {
    GPL_DCHECK(type_ == DataType::kString);
    data32_.push_back(dict_->GetOrInsert(v));
  }

  void Reserve(int64_t n);

  // -- Element access ------------------------------------------------------

  int32_t Int32At(int64_t i) const { return data32_[static_cast<size_t>(i)]; }
  int64_t Int64At(int64_t i) const { return data64_[static_cast<size_t>(i)]; }
  double DoubleAt(int64_t i) const { return dataf_[static_cast<size_t>(i)]; }
  const std::string& StringAt(int64_t i) const {
    return dict_->GetString(Int32At(i));
  }

  /// Value at row `i` widened to double (dictionary code for strings).
  /// Convenient for expression evaluation.
  double AsDouble(int64_t i) const;
  /// Value at row `i` widened to int64 (dictionary code for strings;
  /// truncation for float columns).
  int64_t AsInt64(int64_t i) const;

  // -- Bulk operations -----------------------------------------------------

  /// New column with the rows selected by `indices` (in that order).
  Column Gather(const std::vector<int64_t>& indices) const;

  /// New column with rows [begin, begin+len).
  Column Slice(int64_t begin, int64_t len) const;

  /// Appends all rows of `other` (must have identical type and, for strings,
  /// the same dictionary instance).
  Status AppendColumn(const Column& other);

  /// Direct access to the physical buffers (for kernels).
  std::vector<int32_t>& data32() { return data32_; }
  const std::vector<int32_t>& data32() const { return data32_; }
  std::vector<int64_t>& data64() { return data64_; }
  const std::vector<int64_t>& data64() const { return data64_; }
  std::vector<double>& dataf() { return dataf_; }
  const std::vector<double>& dataf() const { return dataf_; }

 private:
  bool Is32Bit() const {
    return type_ == DataType::kInt32 || type_ == DataType::kDate ||
           type_ == DataType::kString;
  }

  DataType type_;
  std::shared_ptr<Dictionary> dict_;
  std::vector<int32_t> data32_;
  std::vector<int64_t> data64_;
  std::vector<double> dataf_;
};

}  // namespace gpl

#endif  // GPL_STORAGE_COLUMN_H_
