#ifndef GPL_STORAGE_TYPES_H_
#define GPL_STORAGE_TYPES_H_

#include <cstdint>
#include <string>

namespace gpl {

/// Physical column types of the columnar store. Strings are always
/// dictionary-encoded (int32 codes into a Dictionary); DATE is stored as an
/// int32 day number (days since 1970-01-01), which is sufficient for the
/// TPC-H date arithmetic in the evaluated queries.
enum class DataType : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kFloat64 = 2,
  kDate = 3,
  kString = 4,
};

/// Width in bytes of one value of `type` as laid out in (simulated) GPU
/// global memory.
constexpr int64_t TypeWidth(DataType type) {
  switch (type) {
    case DataType::kInt32:
    case DataType::kDate:
    case DataType::kString:  // dictionary code
      return 4;
    case DataType::kInt64:
    case DataType::kFloat64:
      return 8;
  }
  return 0;
}

const char* DataTypeToString(DataType type);

}  // namespace gpl

#endif  // GPL_STORAGE_TYPES_H_
