#include "storage/dictionary.h"

#include "common/logging.h"

namespace gpl {

int32_t Dictionary::GetOrInsert(const std::string& value) {
  auto it = index_.find(value);
  if (it != index_.end()) return it->second;
  const int32_t code = static_cast<int32_t>(strings_.size());
  strings_.push_back(value);
  index_.emplace(value, code);
  return code;
}

int32_t Dictionary::Lookup(const std::string& value) const {
  auto it = index_.find(value);
  return it == index_.end() ? -1 : it->second;
}

const std::string& Dictionary::GetString(int32_t code) const {
  GPL_CHECK(code >= 0 && code < size()) << "dictionary code out of range: " << code;
  return strings_[static_cast<size_t>(code)];
}

}  // namespace gpl
