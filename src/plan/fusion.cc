#include "plan/fusion.h"

namespace gpl {

namespace {

/// True when the stage can be a member of a fused chain at all. Blocking
/// stages and complete aggregates execute alone.
bool Fusible(const FusionStageView& v) {
  return !v.blocking && !(v.is_aggregate && !v.partial_aggregate);
}

/// True when nothing may fuse *after* this stage: it still accumulates
/// (partial aggregate) or its output must materialize (multi-consumer).
bool TerminatesChain(const FusionStageView& v) {
  return v.partial_aggregate || v.multi_consumer;
}

}  // namespace

FusionPlan PlanFusion(const std::vector<FusionStageView>& stages,
                      const FusionOptions& options) {
  FusionPlan plan;
  const size_t n = stages.size();
  size_t i = 0;
  while (i < n) {
    FusedGroup group;
    group.first = i;
    group.count = 1;
    const FusionStageView& head = stages[i];
    if (Fusible(head) && !TerminatesChain(head)) {
      int64_t private_bytes = head.private_bytes_per_item;
      for (size_t j = i + 1; j < n; ++j) {
        const FusionStageView& next = stages[j];
        if (!Fusible(next)) break;
        if (next.exchange_boundary) break;  // must head its own kernel
        if (private_bytes + next.private_bytes_per_item >
            options.max_private_bytes_per_item) {
          break;  // register budget: occupancy would crater
        }
        private_bytes += next.private_bytes_per_item;
        ++group.count;
        if (TerminatesChain(next)) break;  // included as the chain's tail
      }
    }
    if (group.fused()) {
      ++plan.fused_groups;
      plan.stages_fused += static_cast<int>(group.count);
    }
    plan.groups.push_back(group);
    i += group.count;
  }
  return plan;
}

FusionPlan PlanFusion(const Segment& segment, const FusionOptions& options) {
  std::vector<FusionStageView> views;
  views.reserve(segment.stages.size());
  for (const Stage& stage : segment.stages) {
    FusionStageView v;
    v.blocking = stage.kernel->blocking();
    v.is_aggregate = stage.is_aggregate;
    v.partial_aggregate = stage.partial_aggregate;
    v.exchange_boundary = stage.exchange_boundary;
    v.multi_consumer = stage.multi_consumer;
    v.private_bytes_per_item = stage.kernel->timing().private_bytes_per_item;
    views.push_back(v);
  }
  return PlanFusion(views, options);
}

}  // namespace gpl
