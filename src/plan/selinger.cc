#include "plan/selinger.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace gpl {

namespace {

/// Estimated rows of a base relation after its pushed-down filter.
double FilteredRows(const BaseRelation& rel, const Catalog& catalog) {
  const double base = static_cast<double>(catalog.TableRows(rel.table));
  return std::max(1.0, base * catalog.EstimateSelectivity(rel.filter));
}

/// Effective distinct count of one side of a join edge, capped by the
/// (filtered) relation size.
double EffectiveNdv(const std::vector<ExprPtr>& keys, double rows,
                    const Catalog& catalog) {
  double ndv = 1.0;
  for (const ExprPtr& key : keys) {
    ndv *= static_cast<double>(
        catalog.EstimateKeyDistinct(key, static_cast<int64_t>(rows)));
  }
  return std::clamp(ndv, 1.0, std::max(rows, 1.0));
}

}  // namespace

Result<JoinOrder> OptimizeJoinOrder(const LogicalQuery& query,
                                    const Catalog& catalog) {
  const int n = static_cast<int>(query.relations.size());
  if (n == 0) return Status::InvalidArgument("query has no relations");
  if (n > 16) return Status::InvalidArgument("too many relations for DP");

  std::vector<double> base_rows(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    base_rows[static_cast<size_t>(i)] =
        FilteredRows(query.relations[static_cast<size_t>(i)], catalog);
  }

  if (n == 1) {
    JoinOrder order;
    order.order = {0};
    order.rows_after_step = {base_rows[0]};
    return order;
  }

  struct DpEntry {
    double cost = -1.0;  // -1: unreachable
    double rows = 0.0;
    int last = -1;
    uint32_t prev_mask = 0;
  };
  const uint32_t full = (1u << n) - 1;
  std::vector<DpEntry> dp(static_cast<size_t>(full) + 1);

  for (int i = 0; i < n; ++i) {
    DpEntry& e = dp[1u << i];
    e.cost = 0.0;
    e.rows = base_rows[static_cast<size_t>(i)];
    e.last = i;
  }

  for (uint32_t mask = 1; mask <= full; ++mask) {
    const DpEntry& cur = dp[mask];
    if (cur.cost < 0.0) continue;
    for (int r = 0; r < n; ++r) {
      if (mask & (1u << r)) continue;
      // Reduction from every edge connecting r to the current set.
      double reduction = 1.0;
      bool connected = false;
      size_t total_keys = 0;
      for (const JoinEdge& edge : query.joins) {
        int other = -1;
        const std::vector<ExprPtr>* r_keys = nullptr;
        const std::vector<ExprPtr>* m_keys = nullptr;
        if (edge.left == r && (mask & (1u << edge.right))) {
          other = edge.right;
          r_keys = &edge.left_keys;
          m_keys = &edge.right_keys;
        } else if (edge.right == r && (mask & (1u << edge.left))) {
          other = edge.left;
          r_keys = &edge.right_keys;
          m_keys = &edge.left_keys;
        } else {
          continue;
        }
        connected = true;
        total_keys += r_keys->size();
        const double ndv_r =
            EffectiveNdv(*r_keys, base_rows[static_cast<size_t>(r)], catalog);
        const double ndv_m = EffectiveNdv(
            *m_keys, base_rows[static_cast<size_t>(other)], catalog);
        reduction *= std::max(ndv_r, ndv_m);
      }
      if (!connected) continue;
      // The hash-join machinery packs at most two key expressions.
      if (total_keys > 2) continue;

      const double join_rows = std::max(
          1.0, cur.rows * base_rows[static_cast<size_t>(r)] / reduction);
      const double build_cost =
          std::min(cur.rows, base_rows[static_cast<size_t>(r)]);
      // When the accumulated chain is the smaller side it becomes the hash
      // build: the streaming pipeline breaks and the chain materializes.
      const double pipeline_break_cost =
          cur.rows <= base_rows[static_cast<size_t>(r)] ? 2.0 * cur.rows : 0.0;
      const double new_cost =
          cur.cost + join_rows + build_cost + pipeline_break_cost;
      DpEntry& next = dp[mask | (1u << r)];
      if (next.cost < 0.0 || new_cost < next.cost) {
        next.cost = new_cost;
        next.rows = join_rows;
        next.last = r;
        next.prev_mask = mask;
      }
    }
  }

  if (dp[full].cost < 0.0) {
    return Status::InvalidArgument("join graph is disconnected: " + query.name);
  }

  JoinOrder result;
  result.total_cost = dp[full].cost;
  uint32_t mask = full;
  while (mask != 0) {
    const DpEntry& e = dp[mask];
    result.order.push_back(e.last);
    result.rows_after_step.push_back(e.rows);
    mask = e.prev_mask;
  }
  std::reverse(result.order.begin(), result.order.end());
  std::reverse(result.rows_after_step.begin(), result.rows_after_step.end());
  return result;
}

namespace {

/// Scan + filter (+ pruning projection) for one base relation.
PhysicalOpPtr BuildRelationPlan(const BaseRelation& rel, const Catalog& catalog,
                                double est_rows) {
  // The scan must also produce columns the filter reads.
  std::vector<std::string> scan_columns = rel.columns;
  bool filter_added_columns = false;
  if (rel.filter != nullptr) {
    std::vector<std::string> refs;
    rel.filter->CollectColumnRefs(&refs);
    for (const std::string& r : refs) {
      // Filter refs use the (possibly alias-renamed) names; scan columns are
      // the raw names. Strip the alias prefix if present.
      std::string raw = r;
      if (!rel.alias.empty() && r.rfind(rel.alias + "_", 0) == 0) {
        raw = r.substr(rel.alias.size() + 1);
      }
      if (std::find(scan_columns.begin(), scan_columns.end(), raw) ==
          scan_columns.end()) {
        scan_columns.push_back(raw);
        filter_added_columns = true;
      }
    }
  }

  PhysicalOpPtr plan = MakeScan(rel.table, scan_columns, rel.alias);
  plan->est_rows = static_cast<double>(catalog.TableRows(rel.table));
  if (rel.filter != nullptr) {
    plan = MakeFilter(std::move(plan), rel.filter);
    plan->est_rows = est_rows;
    if (filter_added_columns) {
      // Prune filter-only columns so they do not flow downstream.
      std::vector<ProjectedColumn> keep;
      for (const std::string& c : rel.columns) {
        const std::string name =
            rel.alias.empty() ? c : rel.alias + "_" + c;
        keep.push_back({name, Col(name)});
      }
      plan = MakeProject(std::move(plan), std::move(keep));
      plan->est_rows = est_rows;
    }
  }
  return plan;
}

/// Output column names of a base relation (alias-renamed).
std::vector<std::string> RelationColumns(const BaseRelation& rel) {
  if (rel.alias.empty()) return rel.columns;
  std::vector<std::string> out;
  out.reserve(rel.columns.size());
  for (const std::string& c : rel.columns) out.push_back(rel.alias + "_" + c);
  return out;
}

}  // namespace

Result<PhysicalOpPtr> BuildPhysicalPlan(const LogicalQuery& query,
                                        const Catalog& catalog,
                                        const PlanOptions& options) {
  GPL_ASSIGN_OR_RETURN(JoinOrder order, OptimizeJoinOrder(query, catalog));

  const int first = order.order[0];
  PhysicalOpPtr chain =
      BuildRelationPlan(query.relations[static_cast<size_t>(first)], catalog,
                        order.rows_after_step[0]);
  double chain_rows = order.rows_after_step[0];
  std::set<int> joined = {first};

  for (size_t step = 1; step < order.order.size(); ++step) {
    const int r = order.order[step];
    const BaseRelation& rel = query.relations[static_cast<size_t>(r)];
    const double r_rows = FilteredRows(rel, catalog);

    // Collect keys from every edge between r and the joined set.
    std::vector<ExprPtr> r_keys, chain_keys;
    for (const JoinEdge& edge : query.joins) {
      if (edge.left == r && joined.count(edge.right) > 0) {
        r_keys.insert(r_keys.end(), edge.left_keys.begin(), edge.left_keys.end());
        chain_keys.insert(chain_keys.end(), edge.right_keys.begin(),
                          edge.right_keys.end());
      } else if (edge.right == r && joined.count(edge.left) > 0) {
        r_keys.insert(r_keys.end(), edge.right_keys.begin(),
                      edge.right_keys.end());
        chain_keys.insert(chain_keys.end(), edge.left_keys.begin(),
                          edge.left_keys.end());
      }
    }
    if (r_keys.empty()) {
      return Status::Internal("no join edge for relation in optimized order");
    }
    if (r_keys.size() > 2) {
      return Status::Unimplemented(
          "joins with more than two key expressions are not supported");
    }

    PhysicalOpPtr r_plan = BuildRelationPlan(rel, catalog, r_rows);

    if (r_rows <= chain_rows) {
      // The new relation is smaller: it builds, the chain keeps streaming.
      chain = MakeHashJoin(std::move(chain), std::move(r_plan),
                           std::move(chain_keys), std::move(r_keys),
                           RelationColumns(rel));
    } else {
      // The chain is smaller: materialize it as the build side and restart
      // the streaming pipeline from the new relation's scan.
      std::vector<std::string> chain_columns = OutputColumns(*chain);
      chain = MakeHashJoin(std::move(r_plan), std::move(chain),
                           std::move(r_keys), std::move(chain_keys),
                           std::move(chain_columns));
    }
    // Estimated build-side cardinality decides the partitioned variant.
    const double build_rows = std::min(r_rows, chain_rows);
    if (options.partition_build_threshold_bytes > 0 &&
        build_rows * 32.0 >
            static_cast<double>(options.partition_build_threshold_bytes)) {
      chain->partitioned_join = true;
      chain->num_partitions = options.num_partitions;
    }
    chain_rows = order.rows_after_step[step];
    chain->est_rows = chain_rows;
    joined.insert(r);
  }

  if (query.post_join_filter != nullptr) {
    chain = MakeFilter(std::move(chain), query.post_join_filter);
    chain_rows *= catalog.EstimateSelectivity(query.post_join_filter);
    chain->est_rows = std::max(1.0, chain_rows);
  }

  const bool has_agg = !query.group_by.empty() || !query.aggregates.empty();
  if (has_agg) {
    // Pre-aggregation projection: derived columns plus the pass-through
    // columns the aggregation reads.
    std::vector<ProjectedColumn> projections = query.derived;
    std::set<std::string> produced;
    for (const ProjectedColumn& d : query.derived) produced.insert(d.name);
    std::vector<std::string> refs;
    for (const ProjectedColumn& g : query.group_by) {
      g.expr->CollectColumnRefs(&refs);
    }
    for (const AggSpec& a : query.aggregates) {
      if (a.arg != nullptr) a.arg->CollectColumnRefs(&refs);
    }
    std::set<std::string> added;
    for (const std::string& r : refs) {
      if (produced.count(r) > 0 || added.count(r) > 0) continue;
      added.insert(r);
      projections.push_back({r, Col(r)});
    }
    if (!projections.empty()) {
      chain = MakeProject(std::move(chain), std::move(projections));
      chain->est_rows = std::max(1.0, chain_rows);
    }

    // Aggregate output cardinality: product of group-key distinct counts.
    double groups = 1.0;
    for (const ProjectedColumn& g : query.group_by) {
      std::string col;
      if (g.expr->IsColumnRef(&col)) {
        groups *= static_cast<double>(catalog.Column(col).num_distinct);
      } else {
        groups *= 16.0;  // derived group key (e.g. year): small domain
      }
    }
    groups = std::clamp(groups, 1.0, std::max(1.0, chain_rows));
    chain = MakeAggregate(std::move(chain), query.group_by, query.aggregates);
    chain->est_rows = groups;
    chain_rows = groups;
  }

  if (!query.post_aggregate.empty()) {
    chain = MakeProject(std::move(chain), query.post_aggregate);
    chain->est_rows = std::max(1.0, chain_rows);
  }

  if (!query.order_by.empty()) {
    chain = MakeSort(std::move(chain), query.order_by);
    chain->est_rows = std::max(1.0, chain_rows);
  }
  return chain;
}

}  // namespace gpl
