#ifndef GPL_PLAN_FUSION_H_
#define GPL_PLAN_FUSION_H_

#include <cstdint>
#include <vector>

#include "plan/segment.h"

namespace gpl {

/// The fusion-relevant view of one pipeline stage. PlanFusion operates on
/// these views (extracted from a Segment, or built directly in tests) so the
/// legality rules are testable without kernels.
struct FusionStageView {
  bool blocking = false;
  bool is_aggregate = false;
  bool partial_aggregate = false;
  bool exchange_boundary = false;
  bool multi_consumer = false;
  /// Private memory (registers) per work-item, from the timing descriptor.
  int64_t private_bytes_per_item = 0;
};

struct FusionOptions {
  /// Register budget of a fused kernel body: fusing chains past this
  /// per-work-item private footprint would crater occupancy, so the pass
  /// splits the chain instead (the cost model then prices what remains).
  int64_t max_private_bytes_per_item = 256;
};

/// A maximal run of consecutive stages executed as one kernel. Singleton
/// groups (count == 1) execute unfused.
struct FusedGroup {
  size_t first = 0;
  size_t count = 1;
  bool fused() const { return count > 1; }
};

/// Outcome of the fusion pass over one segment.
struct FusionPlan {
  std::vector<FusedGroup> groups;  ///< covers every stage exactly once
  int fused_groups = 0;            ///< groups with count > 1
  int stages_fused = 0;            ///< stages inside those groups

  /// Kernel launches eliminated: each fused group of n stages launches once
  /// instead of n times.
  int launches_saved() const { return stages_fused - fused_groups; }
};

/// Greedy maximal-chain fusion with these legality rules:
///  - blocking stages (prefix sum, hash/partition build, sort, scan-reduce)
///    never fuse: they are global barriers with materialized output;
///  - complete aggregates never fuse (aggregation boundary: their output
///    exists only after every input row is seen);
///  - partial aggregates may only *terminate* a fused chain — they still
///    accumulate, so nothing can fuse after them;
///  - a stage consuming exchanged data starts its own chain (its producer
///    ran on another device);
///  - a multi-consumer stage terminates its chain (its output must be
///    materialized for the other consumers);
///  - the summed per-work-item private bytes of a chain must stay within
///    options.max_private_bytes_per_item, else the chain is split.
FusionPlan PlanFusion(const std::vector<FusionStageView>& stages,
                      const FusionOptions& options = {});

/// Extracts the views from a segment's stages and runs the pass.
FusionPlan PlanFusion(const Segment& segment, const FusionOptions& options = {});

}  // namespace gpl

#endif  // GPL_PLAN_FUSION_H_
