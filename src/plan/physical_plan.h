#ifndef GPL_PLAN_PHYSICAL_PLAN_H_
#define GPL_PLAN_PHYSICAL_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "exec/expr.h"
#include "exec/primitives.h"

namespace gpl {

struct PhysicalOp;
using PhysicalOpPtr = std::shared_ptr<PhysicalOp>;

/// Node of a physical query plan. A single struct with a kind tag (rather
/// than a class hierarchy) keeps plan rewriting and inspection simple; only
/// the fields relevant to the kind are populated.
///
/// The tree shape: `child` is the streaming (probe) input, `build_child` is
/// the hash-join build side.
/// How an Exchange operator moves (or avoids moving) its child's relation
/// between the devices of a shard group.
enum class ExchangeKind {
  kBroadcast,    ///< replicate the child's table to every shard
  kRepartition,  ///< re-hash both sides onto the fact partitioning
  kPassthrough,  ///< co-partitioned with the fact table: no data motion
  kGather,       ///< collect per-shard results onto the coordinator device
};

/// Short human-readable name ("broadcast", "repartition", ...).
std::string_view ExchangeKindName(ExchangeKind kind);

struct PhysicalOp {
  enum class Kind {
    kScan,
    kFilter,
    kProject,
    kHashJoin,
    kAggregate,
    kSort,
    kExchange
  };

  Kind kind = Kind::kScan;
  PhysicalOpPtr child;
  PhysicalOpPtr build_child;

  /// Optimizer's output-cardinality estimate (drives λ in the cost model).
  double est_rows = 0.0;

  // -- kScan --
  std::string table;
  std::vector<std::string> columns;
  std::string alias;  ///< non-empty: columns renamed to "<alias>_<name>"

  // -- kFilter --
  ExprPtr predicate;

  // -- kProject --
  std::vector<ProjectedColumn> projections;

  // -- kHashJoin --
  std::vector<ExprPtr> probe_keys;  ///< over `child` output
  std::vector<ExprPtr> build_keys;  ///< over `build_child` output
  std::vector<std::string> build_payload;
  /// Radix-partitioned variant (Section 3.2): set by the planner when the
  /// estimated build side outgrows the cache.
  bool partitioned_join = false;
  int num_partitions = 8;

  // -- kAggregate --
  std::vector<ProjectedColumn> group_by;
  std::vector<AggSpec> aggregates;
  /// Partial-aggregate pushdown: emit the mergeable per-shard wire format
  /// (exec/primitives.h AggregatePhase::kPartial) instead of final values.
  bool partial_aggregate = false;

  // -- kSort --
  std::vector<SortKey> sort_keys;

  // -- kExchange --
  /// Identity on a single device; in a shard group it records how the
  /// child's relation is distributed and what the planned data motion costs.
  ExchangeKind exchange_kind = ExchangeKind::kPassthrough;
  std::string exchange_table;   ///< relation being exchanged (display/model)
  int64_t exchange_bytes = 0;   ///< modeled bytes moved over the link
};

PhysicalOpPtr MakeScan(std::string table, std::vector<std::string> columns,
                       std::string alias = "");
PhysicalOpPtr MakeFilter(PhysicalOpPtr child, ExprPtr predicate);
PhysicalOpPtr MakeProject(PhysicalOpPtr child,
                          std::vector<ProjectedColumn> projections);
PhysicalOpPtr MakeHashJoin(PhysicalOpPtr probe_child, PhysicalOpPtr build_child,
                           std::vector<ExprPtr> probe_keys,
                           std::vector<ExprPtr> build_keys,
                           std::vector<std::string> build_payload);
PhysicalOpPtr MakeAggregate(PhysicalOpPtr child,
                            std::vector<ProjectedColumn> group_by,
                            std::vector<AggSpec> aggregates);
PhysicalOpPtr MakeSort(PhysicalOpPtr child, std::vector<SortKey> keys);
PhysicalOpPtr MakeExchange(PhysicalOpPtr child, ExchangeKind kind,
                           std::string table, int64_t bytes);

/// Output column names of an operator (alias-renamed for scans).
std::vector<std::string> OutputColumns(const PhysicalOp& op);

/// Multi-line indented rendering of the plan tree (EXPLAIN-style).
std::string PlanToString(const PhysicalOp& op, int indent = 0);

}  // namespace gpl

#endif  // GPL_PLAN_PHYSICAL_PLAN_H_
