#ifndef GPL_PLAN_SELINGER_H_
#define GPL_PLAN_SELINGER_H_

#include <vector>

#include "common/status.h"
#include "plan/cardinality.h"
#include "plan/logical_plan.h"
#include "plan/physical_plan.h"

namespace gpl {

/// Result of join-order optimization: the relations in join order (indices
/// into LogicalQuery::relations) plus the estimated cardinality after each
/// join step.
struct JoinOrder {
  std::vector<int> order;
  std::vector<double> rows_after_step;  ///< size == order.size()
  double total_cost = 0.0;              ///< sum of intermediate cardinalities
};

/// Selinger-style dynamic programming over connected subsets of the join
/// graph, producing the cheapest left-deep join order (cost = sum of
/// intermediate result cardinalities plus build-side sizes).
Result<JoinOrder> OptimizeJoinOrder(const LogicalQuery& query,
                                    const Catalog& catalog);

/// Physical-planning knobs.
struct PlanOptions {
  /// When > 0, hash joins whose estimated build side exceeds this many
  /// bytes become radix-partitioned (Section 3.2's partitioned hash join).
  int64_t partition_build_threshold_bytes = 0;
  /// Radix fan-out of partitioned joins (power of two).
  int num_partitions = 8;
};

/// Builds the full physical plan for a query: optimizes the join order, then
/// constructs scans with filter/projection pushdown, a left-deep hash-join
/// pipeline (smaller side builds), the post-join filter, the pre-aggregation
/// projection (derived columns), aggregation and sort.
Result<PhysicalOpPtr> BuildPhysicalPlan(const LogicalQuery& query,
                                        const Catalog& catalog,
                                        const PlanOptions& options = {});

}  // namespace gpl

#endif  // GPL_PLAN_SELINGER_H_
