#include "plan/physical_plan.h"

#include <sstream>

#include "common/logging.h"

namespace gpl {

PhysicalOpPtr MakeScan(std::string table, std::vector<std::string> columns,
                       std::string alias) {
  auto op = std::make_shared<PhysicalOp>();
  op->kind = PhysicalOp::Kind::kScan;
  op->table = std::move(table);
  op->columns = std::move(columns);
  op->alias = std::move(alias);
  return op;
}

PhysicalOpPtr MakeFilter(PhysicalOpPtr child, ExprPtr predicate) {
  auto op = std::make_shared<PhysicalOp>();
  op->kind = PhysicalOp::Kind::kFilter;
  op->child = std::move(child);
  op->predicate = std::move(predicate);
  return op;
}

PhysicalOpPtr MakeProject(PhysicalOpPtr child,
                          std::vector<ProjectedColumn> projections) {
  auto op = std::make_shared<PhysicalOp>();
  op->kind = PhysicalOp::Kind::kProject;
  op->child = std::move(child);
  op->projections = std::move(projections);
  return op;
}

PhysicalOpPtr MakeHashJoin(PhysicalOpPtr probe_child, PhysicalOpPtr build_child,
                           std::vector<ExprPtr> probe_keys,
                           std::vector<ExprPtr> build_keys,
                           std::vector<std::string> build_payload) {
  auto op = std::make_shared<PhysicalOp>();
  op->kind = PhysicalOp::Kind::kHashJoin;
  op->child = std::move(probe_child);
  op->build_child = std::move(build_child);
  op->probe_keys = std::move(probe_keys);
  op->build_keys = std::move(build_keys);
  op->build_payload = std::move(build_payload);
  return op;
}

PhysicalOpPtr MakeAggregate(PhysicalOpPtr child,
                            std::vector<ProjectedColumn> group_by,
                            std::vector<AggSpec> aggregates) {
  auto op = std::make_shared<PhysicalOp>();
  op->kind = PhysicalOp::Kind::kAggregate;
  op->child = std::move(child);
  op->group_by = std::move(group_by);
  op->aggregates = std::move(aggregates);
  return op;
}

PhysicalOpPtr MakeSort(PhysicalOpPtr child, std::vector<SortKey> keys) {
  auto op = std::make_shared<PhysicalOp>();
  op->kind = PhysicalOp::Kind::kSort;
  op->child = std::move(child);
  op->sort_keys = std::move(keys);
  return op;
}

PhysicalOpPtr MakeExchange(PhysicalOpPtr child, ExchangeKind kind,
                           std::string table, int64_t bytes) {
  auto op = std::make_shared<PhysicalOp>();
  op->kind = PhysicalOp::Kind::kExchange;
  op->est_rows = child != nullptr ? child->est_rows : 0.0;
  op->child = std::move(child);
  op->exchange_kind = kind;
  op->exchange_table = std::move(table);
  op->exchange_bytes = bytes;
  return op;
}

std::string_view ExchangeKindName(ExchangeKind kind) {
  switch (kind) {
    case ExchangeKind::kBroadcast:
      return "broadcast";
    case ExchangeKind::kRepartition:
      return "repartition";
    case ExchangeKind::kPassthrough:
      return "co-partitioned";
    case ExchangeKind::kGather:
      return "gather";
  }
  return "unknown";
}

std::vector<std::string> OutputColumns(const PhysicalOp& op) {
  switch (op.kind) {
    case PhysicalOp::Kind::kScan: {
      if (op.alias.empty()) return op.columns;
      std::vector<std::string> out;
      out.reserve(op.columns.size());
      for (const std::string& c : op.columns) out.push_back(op.alias + "_" + c);
      return out;
    }
    case PhysicalOp::Kind::kFilter:
    case PhysicalOp::Kind::kSort:
      return OutputColumns(*op.child);
    case PhysicalOp::Kind::kProject: {
      std::vector<std::string> out;
      out.reserve(op.projections.size());
      for (const ProjectedColumn& p : op.projections) out.push_back(p.name);
      return out;
    }
    case PhysicalOp::Kind::kHashJoin: {
      std::vector<std::string> out = OutputColumns(*op.child);
      out.insert(out.end(), op.build_payload.begin(), op.build_payload.end());
      return out;
    }
    case PhysicalOp::Kind::kAggregate: {
      if (op.partial_aggregate) {
        return PartialAggregateColumns(op.group_by, op.aggregates);
      }
      std::vector<std::string> out;
      for (const ProjectedColumn& g : op.group_by) out.push_back(g.name);
      for (const AggSpec& a : op.aggregates) out.push_back(a.output_name);
      return out;
    }
    case PhysicalOp::Kind::kExchange:
      return OutputColumns(*op.child);
  }
  return {};
}

std::string PlanToString(const PhysicalOp& op, int indent) {
  std::ostringstream out;
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  out << pad;
  switch (op.kind) {
    case PhysicalOp::Kind::kScan:
      out << "Scan(" << op.table;
      if (!op.alias.empty()) out << " AS " << op.alias;
      out << ", " << op.columns.size() << " cols)";
      break;
    case PhysicalOp::Kind::kFilter:
      out << "Filter(" << op.predicate->ToString() << ")";
      break;
    case PhysicalOp::Kind::kProject:
      out << "Project(" << op.projections.size() << " exprs)";
      break;
    case PhysicalOp::Kind::kHashJoin: {
      out << "HashJoin(probe ";
      for (size_t i = 0; i < op.probe_keys.size(); ++i) {
        out << (i ? ", " : "") << op.probe_keys[i]->ToString();
      }
      out << " = build ";
      for (size_t i = 0; i < op.build_keys.size(); ++i) {
        out << (i ? ", " : "") << op.build_keys[i]->ToString();
      }
      out << ")";
      break;
    }
    case PhysicalOp::Kind::kAggregate:
      out << (op.partial_aggregate ? "PartialAggregate(" : "Aggregate(")
          << op.group_by.size() << " groups, " << op.aggregates.size()
          << " aggs)";
      break;
    case PhysicalOp::Kind::kSort:
      out << "Sort(" << op.sort_keys.size() << " keys)";
      break;
    case PhysicalOp::Kind::kExchange:
      out << "Exchange[" << ExchangeKindName(op.exchange_kind);
      if (!op.exchange_table.empty()) out << " " << op.exchange_table;
      out << " bytes=" << op.exchange_bytes << "]";
      break;
  }
  out << "  [est_rows=" << static_cast<int64_t>(op.est_rows) << "]\n";
  if (op.build_child != nullptr) {
    out << pad << "  build:\n" << PlanToString(*op.build_child, indent + 2);
  }
  if (op.child != nullptr) {
    out << PlanToString(*op.child, indent + 1);
  }
  return out.str();
}

}  // namespace gpl
