#include "plan/cardinality.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace gpl {

namespace {
constexpr int64_t kSampleLimit = 65536;

ColumnStats ComputeStats(const Column& col) {
  ColumnStats stats;
  const int64_t n = col.size();
  if (n == 0) return stats;

  const int64_t step = std::max<int64_t>(1, n / kSampleLimit);
  std::unordered_set<int64_t> distinct;
  double mn = col.AsDouble(0);
  double mx = mn;
  int64_t sampled = 0;
  for (int64_t i = 0; i < n; i += step) {
    const double v = col.AsDouble(i);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    distinct.insert(col.AsInt64(i));
    ++sampled;
  }
  stats.min_value = mn;
  stats.max_value = mx;

  const int64_t d = static_cast<int64_t>(distinct.size());
  if (d >= sampled) {
    // Every sampled value distinct: key-like column, assume ndv == rows.
    stats.num_distinct = n;
  } else if (d * 2 <= sampled) {
    // Clearly low-cardinality: the sample saw (almost) all values.
    stats.num_distinct = d;
  } else {
    // In between: scale linearly with the sampling ratio.
    stats.num_distinct =
        std::min<int64_t>(n, d * std::max<int64_t>(1, n / std::max<int64_t>(sampled, 1)));
  }
  stats.num_distinct = std::max<int64_t>(stats.num_distinct, 1);
  return stats;
}
}  // namespace

Catalog Catalog::FromDatabase(const tpch::Database& db) {
  Catalog catalog;
  const Table* tables[] = {&db.region, &db.nation,   &db.supplier, &db.customer,
                           &db.part,   &db.partsupp, &db.orders,   &db.lineitem};
  for (const Table* t : tables) {
    catalog.table_rows_[t->name()] = t->num_rows();
    for (int64_t c = 0; c < t->num_columns(); ++c) {
      catalog.column_stats_[t->ColumnNameAt(c)] = ComputeStats(t->ColumnAt(c));
    }
  }
  return catalog;
}

int64_t Catalog::TableRows(const std::string& table) const {
  auto it = table_rows_.find(table);
  return it == table_rows_.end() ? 0 : it->second;
}

const ColumnStats& Catalog::Column(const std::string& column) const {
  static const ColumnStats kDefault;
  auto it = column_stats_.find(column);
  return it == column_stats_.end() ? kDefault : it->second;
}

namespace {
/// Adapter exposing the catalog to Expr::EstimateSelectivity.
class CatalogStatsProvider : public StatsProvider {
 public:
  explicit CatalogStatsProvider(const Catalog* catalog) : catalog_(catalog) {}

  bool GetColumnStats(const std::string& column, double* min_value,
                      double* max_value, int64_t* num_distinct) const override {
    const ColumnStats& s = catalog_->Column(column);
    if (s.num_distinct == 1 && s.min_value == 0.0 && s.max_value == 0.0) {
      return false;  // unknown column (default stats)
    }
    *min_value = s.min_value;
    *max_value = s.max_value;
    *num_distinct = s.num_distinct;
    return true;
  }

 private:
  const Catalog* catalog_;
};
}  // namespace

double Catalog::EstimateSelectivity(const ExprPtr& predicate) const {
  if (predicate == nullptr) return 1.0;
  CatalogStatsProvider provider(this);
  return std::clamp(predicate->EstimateSelectivity(provider), 0.0001, 1.0);
}

int64_t Catalog::EstimateKeyDistinct(const ExprPtr& key,
                                     int64_t relation_rows) const {
  std::string column;
  if (key != nullptr && key->IsColumnRef(&column)) {
    const ColumnStats& s = Column(column);
    if (!(s.num_distinct == 1 && s.min_value == 0.0 && s.max_value == 0.0)) {
      return std::max<int64_t>(1, s.num_distinct);
    }
  }
  return std::max<int64_t>(1, relation_rows);
}

}  // namespace gpl
