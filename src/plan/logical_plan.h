#ifndef GPL_PLAN_LOGICAL_PLAN_H_
#define GPL_PLAN_LOGICAL_PLAN_H_

#include <string>
#include <vector>

#include "exec/expr.h"
#include "exec/primitives.h"

namespace gpl {

/// One base relation referenced by a query, with its pushed-down filter and
/// the columns the query actually touches (projection pushdown).
struct BaseRelation {
  std::string table;
  std::vector<std::string> columns;
  ExprPtr filter;  ///< may be null

  /// Non-empty when the same table appears more than once in a query (e.g.
  /// Q7's nation n1/n2): scan output columns are renamed "<alias>_<name>",
  /// and all expressions over this relation use the renamed columns.
  std::string alias;

  /// Extra join-key expressions evaluated against this relation appear in
  /// JoinEdge; everything else the query needs must be listed in `columns`.
};

/// An equi-join edge between two relations of the query graph. Keys are
/// expressions over the respective relations (one or two per side; two are
/// packed into a composite key).
struct JoinEdge {
  int left = 0;   ///< index into LogicalQuery::relations
  int right = 0;  ///< index into LogicalQuery::relations
  std::vector<ExprPtr> left_keys;
  std::vector<ExprPtr> right_keys;
};

/// A select-project-join-aggregate-order query: the shape of every TPC-H
/// query in the paper's evaluation (Appendix B variants).
struct LogicalQuery {
  std::string name;
  std::vector<BaseRelation> relations;
  std::vector<JoinEdge> joins;

  /// Filter applied after all joins (e.g. Q7's nation-pair disjunction,
  /// which references columns of two different relations).
  ExprPtr post_join_filter;  ///< may be null

  /// Derived columns computed after joins, before aggregation (e.g.
  /// volume = l_extendedprice * (1 - l_discount)). These are visible to the
  /// aggregate/group-by expressions.
  std::vector<ProjectedColumn> derived;

  std::vector<ProjectedColumn> group_by;
  std::vector<AggSpec> aggregates;

  /// Columns computed from aggregate outputs (e.g. Q8's mkt_share, a ratio
  /// of two sums). May reference group and aggregate output names.
  std::vector<ProjectedColumn> post_aggregate;

  std::vector<SortKey> order_by;
};

}  // namespace gpl

#endif  // GPL_PLAN_LOGICAL_PLAN_H_
