#include "plan/segment.h"

#include "common/logging.h"
#include "exec/partitioned_join.h"

namespace gpl {

namespace {

/// The segment currently being assembled while walking the plan tree.
struct OpenPipeline {
  Segment segment;
  /// Set after an exchange op: the next stage appended consumes data that
  /// arrived from another device, so fusion must not reach across it.
  bool pending_exchange_boundary = false;
};

/// Appends a stage to the open pipeline, transferring the pending
/// exchange-boundary mark onto it.
void AppendStage(OpenPipeline* open, Stage stage) {
  stage.exchange_boundary = open->pending_exchange_boundary;
  open->pending_exchange_boundary = false;
  open->segment.stages.push_back(std::move(stage));
}

// ---- Chain-signature helpers (subplan-cache identity; see Segment) --------

std::string ExprSig(const ExprPtr& expr) {
  return expr == nullptr ? std::string("~") : expr->ToString();
}

std::string ExprListSig(const std::vector<ExprPtr>& exprs) {
  std::string sig;
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (i > 0) sig += ',';
    sig += ExprSig(exprs[i]);
  }
  return sig;
}

std::string ProjListSig(const std::vector<ProjectedColumn>& columns) {
  std::string sig;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) sig += ',';
    sig += columns[i].name;
    sig += '=';
    sig += ExprSig(columns[i].expr);
  }
  return sig;
}

std::string NameListSig(const std::vector<std::string>& names) {
  std::string sig;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) sig += ',';
    sig += names[i];
  }
  return sig;
}

Result<OpenPipeline> Build(const PhysicalOpPtr& op, SegmentedPlan* out);

Result<OpenPipeline> BuildChild(const PhysicalOpPtr& op, SegmentedPlan* out) {
  GPL_CHECK(op != nullptr);
  return Build(op, out);
}

Result<OpenPipeline> Build(const PhysicalOpPtr& op, SegmentedPlan* out) {
  switch (op->kind) {
    case PhysicalOp::Kind::kScan: {
      OpenPipeline open;
      open.segment.input_table = op->table;
      open.segment.input_alias = op->alias;
      open.segment.input_columns = op->columns;
      open.segment.est_input_rows = op->est_rows;
      open.segment.chain_signature =
          "T:" + op->table + "/" + op->alias + ":" + NameListSig(op->columns);
      return open;
    }

    case PhysicalOp::Kind::kFilter: {
      GPL_ASSIGN_OR_RETURN(OpenPipeline open, BuildChild(op->child, out));
      Stage stage;
      stage.kernel = MakeFilterKernel(op->predicate);
      stage.est_rows_out = op->est_rows;
      stage.est_columns_out = static_cast<int>(OutputColumns(*op).size());
      open.segment.chain_signature += "|F:" + ExprSig(op->predicate);
      AppendStage(&open, std::move(stage));
      return open;
    }

    case PhysicalOp::Kind::kProject: {
      GPL_ASSIGN_OR_RETURN(OpenPipeline open, BuildChild(op->child, out));
      Stage stage;
      stage.kernel = MakeProjectKernel(op->projections);
      stage.est_rows_out = op->est_rows > 0.0
                               ? op->est_rows
                               : (op->child != nullptr ? op->child->est_rows : 0.0);
      stage.est_columns_out = static_cast<int>(op->projections.size());
      open.segment.chain_signature += "|P:" + ProjListSig(op->projections);
      AppendStage(&open, std::move(stage));
      return open;
    }

    case PhysicalOp::Kind::kHashJoin: {
      // Build side closes into its own segment, ending with the hash build
      // (the blocking barrier of Section 3.2). The planner may have chosen
      // the radix-partitioned variant for cache-exceeding build sides.
      KernelPtr build_kernel;
      KernelPtr probe_kernel;
      std::shared_ptr<HashJoinState> join_state;
      if (op->partitioned_join) {
        auto state =
            std::make_shared<PartitionedJoinState>(op->num_partitions);
        build_kernel = MakePartitionedBuildKernel(op->build_keys, state);
        probe_kernel = MakePartitionedProbeKernel(op->probe_keys, state,
                                                  op->build_payload);
      } else {
        join_state = std::make_shared<HashJoinState>();
        build_kernel = MakeHashBuildKernel(op->build_keys, join_state);
        probe_kernel =
            MakeHashProbeKernel(op->probe_keys, join_state, op->build_payload);
      }
      std::string build_sig;
      {
        GPL_ASSIGN_OR_RETURN(OpenPipeline build_open,
                             BuildChild(op->build_child, out));
        Stage build_stage;
        build_stage.kernel = std::move(build_kernel);
        build_stage.est_rows_out = 0.0;  // output is the hash table
        build_stage.est_columns_out = 1;
        build_open.segment.chain_signature +=
            (op->partitioned_join
                 ? "|PB" + std::to_string(op->num_partitions) + ":"
                 : "|HB:") +
            ExprListSig(op->build_keys);
        AppendStage(&build_open, std::move(build_stage));
        build_open.segment.output_is_hash_build = true;
        build_open.segment.hash_state = join_state;
        build_open.segment.uncacheable |= op->partitioned_join;
        build_sig = build_open.segment.chain_signature;
        out->segments.push_back(std::move(build_open.segment));
      }

      GPL_ASSIGN_OR_RETURN(OpenPipeline open, BuildChild(op->child, out));
      Stage probe_stage;
      probe_stage.kernel = std::move(probe_kernel);
      probe_stage.est_rows_out = op->est_rows;
      probe_stage.est_columns_out = static_cast<int>(OutputColumns(*op).size());
      // The probe's output depends on the build side's content, so the build
      // chain is part of this segment's identity.
      open.segment.chain_signature +=
          (op->partitioned_join ? "|PP:" : "|HP:") +
          ExprListSig(op->probe_keys) + ">" + NameListSig(op->build_payload) +
          "{B=" + build_sig + "}";
      open.segment.uncacheable |= op->partitioned_join;
      AppendStage(&open, std::move(probe_stage));
      return open;
    }

    case PhysicalOp::Kind::kExchange: {
      // Identity within a device's pipeline; the shard layer prices the
      // data motion on the inter-device link. The stage above it consumes
      // exchanged data, so mark it as a fusion boundary.
      GPL_ASSIGN_OR_RETURN(OpenPipeline open, BuildChild(op->child, out));
      open.pending_exchange_boundary = true;
      open.segment.chain_signature += "|X";
      return open;
    }

    case PhysicalOp::Kind::kAggregate: {
      GPL_ASSIGN_OR_RETURN(OpenPipeline open, BuildChild(op->child, out));
      Stage stage;
      stage.kernel = MakeAggregateKernel(op->group_by, op->aggregates,
                                         op->partial_aggregate
                                             ? AggregatePhase::kPartial
                                             : AggregatePhase::kComplete);
      stage.est_rows_out = op->est_rows;
      stage.est_columns_out = static_cast<int>(OutputColumns(*op).size());
      stage.is_aggregate = true;
      stage.partial_aggregate = op->partial_aggregate;
      std::string agg_sig;
      for (size_t a = 0; a < op->aggregates.size(); ++a) {
        const AggSpec& spec = op->aggregates[a];
        if (a > 0) agg_sig += ',';
        agg_sig += std::to_string(static_cast<int>(spec.func)) + "(" +
                   ExprSig(spec.arg) + ")>" + spec.output_name;
      }
      open.segment.chain_signature +=
          std::string(op->partial_aggregate ? "|Ap:" : "|Ac:") +
          ProjListSig(op->group_by) + ";" + agg_sig;
      AppendStage(&open, std::move(stage));
      return open;
    }

    case PhysicalOp::Kind::kSort: {
      GPL_ASSIGN_OR_RETURN(OpenPipeline open, BuildChild(op->child, out));
      Stage stage;
      stage.kernel = MakeSortKernel(op->sort_keys);
      stage.est_rows_out = op->est_rows;
      stage.est_columns_out = static_cast<int>(OutputColumns(*op).size());
      std::string sort_sig;
      for (size_t k = 0; k < op->sort_keys.size(); ++k) {
        if (k > 0) sort_sig += ',';
        sort_sig += op->sort_keys[k].column;
        sort_sig += op->sort_keys[k].descending ? '-' : '+';
      }
      open.segment.chain_signature += "|S:" + sort_sig;
      AppendStage(&open, std::move(stage));
      // Sort is blocking: close the segment. Anything above the sort starts
      // a new pipeline reading the materialized result.
      const std::string closed_sig = open.segment.chain_signature;
      out->segments.push_back(std::move(open.segment));
      OpenPipeline next;
      next.segment.input_segment = static_cast<int>(out->segments.size()) - 1;
      next.segment.est_input_rows = op->est_rows;
      // The continuation reads the sorted materialization: its identity is
      // the sorted chain's (the partitioned-state taint does not carry over —
      // the continuation only touches the materialized table).
      next.segment.chain_signature = "M{" + closed_sig + "}";
      return next;
    }
  }
  return Status::Internal("unknown physical operator kind");
}

}  // namespace

Result<SegmentedPlan> SegmentPlan(const PhysicalOpPtr& root) {
  SegmentedPlan plan;
  GPL_ASSIGN_OR_RETURN(OpenPipeline open, Build(root, &plan));
  // Close the root pipeline unless the tree ended in a sort that already
  // closed it and left an empty continuation.
  if (!open.segment.stages.empty() || open.segment.input_segment < 0) {
    if (open.segment.stages.empty() && open.segment.input_segment < 0 &&
        open.segment.input_table.empty()) {
      return Status::Internal("empty plan");
    }
    plan.segments.push_back(std::move(open.segment));
  }
  if (plan.segments.empty()) {
    return Status::Internal("plan produced no segments");
  }
  return plan;
}

}  // namespace gpl
