#ifndef GPL_PLAN_CARDINALITY_H_
#define GPL_PLAN_CARDINALITY_H_

#include <map>
#include <string>

#include "exec/expr.h"
#include "tpch/dbgen.h"

namespace gpl {

/// Per-column statistics gathered by Catalog::FromDatabase (the equivalent
/// of ANALYZE): used for selectivity and join-cardinality estimation.
struct ColumnStats {
  int64_t num_distinct = 1;
  double min_value = 0.0;
  double max_value = 0.0;
};

/// Table/column statistics for the query optimizer.
///
/// Thread-safety: immutable after FromDatabase(); all const methods may be
/// called concurrently from multiple threads.
class Catalog {
 public:
  /// Scans the database and collects row counts and per-column stats.
  static Catalog FromDatabase(const tpch::Database& db);

  int64_t TableRows(const std::string& table) const;
  /// Stats for a column (searched across all tables; TPC-H column names are
  /// globally unique). Returns defaults if unknown.
  const ColumnStats& Column(const std::string& column) const;

  /// Estimated selectivity of `predicate` against a relation whose columns
  /// are described by this catalog. Heuristic, in [0.0001, 1].
  double EstimateSelectivity(const ExprPtr& predicate) const;

  /// Estimated distinct count of a join key expression.
  int64_t EstimateKeyDistinct(const ExprPtr& key, int64_t relation_rows) const;

 private:
  std::map<std::string, int64_t> table_rows_;
  std::map<std::string, ColumnStats> column_stats_;
};

}  // namespace gpl

#endif  // GPL_PLAN_CARDINALITY_H_
