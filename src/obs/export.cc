#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

#include "trace/json.h"

namespace gpl {
namespace obs {

namespace {

bool ValidNameChar(char c, bool first, bool allow_colon) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return true;
  if (allow_colon && c == ':') return true;
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

std::string Sanitize(const std::string& name, bool allow_colon) {
  std::string out;
  out.reserve(name.size() + 1);
  if (name.empty()) return "_";
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (ValidNameChar(c, /*first=*/i == 0, allow_colon)) {
      out += c;
    } else if (i == 0 && std::isdigit(static_cast<unsigned char>(c))) {
      out += '_';
      out += c;
    } else {
      out += '_';
    }
  }
  return out;
}

/// Escapes a Prometheus label value or help string: backslash, newline and
/// (for label values) double quote.
std::string PromEscape(const std::string& s, bool label_value) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '"':
        out += label_value ? "\\\"" : "\"";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PromLabels(const Labels& labels, const std::string& extra_key = "",
                       const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += SanitizeLabelName(key) + "=\"" + PromEscape(value, true) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + PromEscape(extra_value, true) + "\"";
  }
  out += "}";
  return out;
}

std::string FormatUint(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

void AppendJsonKey(std::string* out, const char* key) {
  if (out->back() != '{' && out->back() != '[') *out += ",";
  *out += "\"";
  *out += key;
  *out += "\":";
}

}  // namespace

std::string SanitizeMetricName(const std::string& name) {
  return Sanitize(name, /*allow_colon=*/true);
}

std::string SanitizeLabelName(const std::string& name) {
  return Sanitize(name, /*allow_colon=*/false);
}

std::string PrometheusText(const std::vector<FamilySnapshot>& families) {
  std::string out;
  for (const FamilySnapshot& family : families) {
    const std::string name = SanitizeMetricName(family.name);
    out += "# HELP " + name + " " + PromEscape(family.help, false) + "\n";
    out += "# TYPE " + name + " " + MetricTypeName(family.type) + "\n";
    for (const SeriesSnapshot& series : family.series) {
      if (series.histogram.has_value()) {
        const HistogramSnapshot& h = *series.histogram;
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds.size(); ++i) {
          cumulative += h.counts[i];
          out += name + "_bucket" +
                 PromLabels(series.labels, "le",
                            trace::JsonNumber(h.bounds[i])) +
                 " " + FormatUint(cumulative) + "\n";
        }
        cumulative += h.counts.empty() ? 0 : h.counts.back();
        out += name + "_bucket" + PromLabels(series.labels, "le", "+Inf") +
               " " + FormatUint(cumulative) + "\n";
        out += name + "_sum" + PromLabels(series.labels) + " " +
               trace::JsonNumber(h.sum) + "\n";
        out += name + "_count" + PromLabels(series.labels) + " " +
               FormatUint(h.count) + "\n";
      } else if (family.type == MetricType::kCounter) {
        out += name + PromLabels(series.labels) + " " +
               FormatUint(series.counter_value) + "\n";
      } else {
        out += name + PromLabels(series.labels) + " " +
               trace::JsonNumber(series.value) + "\n";
      }
    }
  }
  return out;
}

std::string PrometheusText(const MetricsRegistry& registry) {
  return PrometheusText(registry.Collect());
}

std::string JsonSnapshot(const std::vector<FamilySnapshot>& families) {
  std::string out = "{\"metrics\":[";
  bool first_family = true;
  for (const FamilySnapshot& family : families) {
    if (!first_family) out += ",";
    first_family = false;
    out += "{";
    AppendJsonKey(&out, "name");
    out += "\"" + trace::JsonEscape(family.name) + "\"";
    AppendJsonKey(&out, "type");
    out += std::string("\"") + MetricTypeName(family.type) + "\"";
    AppendJsonKey(&out, "help");
    out += "\"" + trace::JsonEscape(family.help) + "\"";
    AppendJsonKey(&out, "series");
    out += "[";
    bool first_series = true;
    for (const SeriesSnapshot& series : family.series) {
      if (!first_series) out += ",";
      first_series = false;
      out += "{";
      AppendJsonKey(&out, "labels");
      out += "{";
      bool first_label = true;
      for (const auto& [key, value] : series.labels) {
        if (!first_label) out += ",";
        first_label = false;
        out += "\"" + trace::JsonEscape(key) + "\":\"" +
               trace::JsonEscape(value) + "\"";
      }
      out += "}";
      if (series.histogram.has_value()) {
        const HistogramSnapshot& h = *series.histogram;
        AppendJsonKey(&out, "count");
        out += FormatUint(h.count);
        AppendJsonKey(&out, "sum");
        out += trace::JsonNumber(h.sum);
        AppendJsonKey(&out, "min");
        out += trace::JsonNumber(h.min_seen);
        AppendJsonKey(&out, "max");
        out += trace::JsonNumber(h.max_seen);
        AppendJsonKey(&out, "p50");
        out += trace::JsonNumber(h.Quantile(0.50));
        AppendJsonKey(&out, "p95");
        out += trace::JsonNumber(h.Quantile(0.95));
        AppendJsonKey(&out, "p99");
        out += trace::JsonNumber(h.Quantile(0.99));
        AppendJsonKey(&out, "bounds");
        out += "[";
        for (size_t i = 0; i < h.bounds.size(); ++i) {
          if (i > 0) out += ",";
          out += trace::JsonNumber(h.bounds[i]);
        }
        out += "]";
        AppendJsonKey(&out, "counts");
        out += "[";
        for (size_t i = 0; i < h.counts.size(); ++i) {
          if (i > 0) out += ",";
          out += FormatUint(h.counts[i]);
        }
        out += "]";
      } else if (family.type == MetricType::kCounter) {
        AppendJsonKey(&out, "value");
        out += FormatUint(series.counter_value);
      } else {
        AppendJsonKey(&out, "value");
        out += trace::JsonNumber(series.value);
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string JsonSnapshot(const MetricsRegistry& registry) {
  return JsonSnapshot(registry.Collect());
}

}  // namespace obs
}  // namespace gpl
