#ifndef GPL_OBS_REGISTRY_H_
#define GPL_OBS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace gpl {
namespace obs {

/// Label set of one time series, as (key, value) pairs. Order does not
/// matter: the registry canonicalizes by sorting on key at registration.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// A monotonically increasing counter (events, bytes). Thread-safe; the hot
/// path is one relaxed atomic add.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A gauge: a value that can go up and down (queue depth) or accumulate
/// fractionally (simulated milliseconds). Thread-safe.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket layout of a Histogram: fixed log-scale buckets covering
/// [min_value, max_value] with `buckets_per_decade` buckets per factor of
/// ten, plus an underflow bucket (<= min_value) and an overflow bucket
/// (> max_value). The layout is fixed at construction, so a histogram's
/// memory is bounded no matter how many observations it absorbs — this is
/// what replaces the service's unbounded latency vector.
struct HistogramOptions {
  double min_value = 1e-3;
  double max_value = 1e7;
  int buckets_per_decade = 20;

  /// Layout for host-latency histograms in milliseconds: 1 us .. 1000 s at
  /// ~12% bucket width (20 buckets per decade).
  static HistogramOptions LatencyMs() {
    HistogramOptions o;
    o.min_value = 1e-3;
    o.max_value = 1e6;
    o.buckets_per_decade = 20;
    return o;
  }
};

/// One consistent-enough copy of a histogram's state (relaxed atomic reads;
/// exact once writers are quiescent).
struct HistogramSnapshot {
  std::vector<double> bounds;    ///< inclusive upper bounds, one per bucket
  std::vector<uint64_t> counts;  ///< same size as bounds, plus overflow last
  uint64_t count = 0;
  double sum = 0.0;
  double min_seen = 0.0;  ///< 0 when count == 0
  double max_seen = 0.0;

  /// Quantile estimate (q in [0, 1]) by linear interpolation inside the
  /// bucket containing the target rank, clamped to the observed min/max.
  /// Relative error is bounded by the bucket width (10^(1/buckets_per_decade)
  /// - 1); tests/obs_test.cc validates this bound against the exact
  /// service::Percentile oracle.
  double Quantile(double q) const;
};

/// A fixed-bucket log-scale histogram. Thread-safe: Observe is two relaxed
/// atomic adds plus CAS loops for sum/min/max.
class Histogram {
 public:
  explicit Histogram(const HistogramOptions& options);

  void Observe(double value);

  uint64_t TotalCount() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Quantile of the current contents (see HistogramSnapshot::Quantile).
  double Quantile(double q) const { return Snapshot().Quantile(q); }

  HistogramSnapshot Snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  /// counts_[i] <= bounds_[i]; counts_.back() is the overflow bucket.
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_seen_{0.0};
  std::atomic<double> max_seen_{0.0};
  std::atomic<bool> any_{false};
};

enum class MetricType { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType type);

/// Deep copy of one time series for exporters.
struct SeriesSnapshot {
  Labels labels;
  double value = 0.0;  ///< counter/gauge value (counters cast to double)
  uint64_t counter_value = 0;  ///< exact counter value (for golden output)
  std::optional<HistogramSnapshot> histogram;
};

/// Deep copy of one metric family (name + type + all label children).
struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  std::vector<SeriesSnapshot> series;
};

/// A service-wide metrics registry: named families of counters, gauges and
/// histograms, each family fanned out by label sets. Handles returned by
/// Get* are stable for the registry's lifetime and safe to use from any
/// thread; acquiring a handle takes the registry mutex, so callers should
/// fetch handles once (at construction) and keep them — the instrumented hot
/// paths then never lock.
///
/// Null-registry fast path: every instrumented layer takes a
/// `MetricsRegistry*` that may be nullptr, holds nullptr handles in that
/// case, and guards each update with a null check (see the free helpers
/// below). Disabled metrics therefore cost one predictable branch per site —
/// scripts/check.sh gates serve-mode overhead with metrics on vs. off.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter for (name, labels), creating family and series on
  /// first use. `help` is recorded on family creation (later values are
  /// ignored). Aborts if `name` is already registered with another type.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const HistogramOptions& options,
                          const Labels& labels = {});

  /// Registers a gauge whose value is computed by `fn` at collection time
  /// (used to surface counters owned elsewhere, e.g. ThreadPool or
  /// TuningCache internals). Returns an id for RemoveCallback. The callback
  /// runs under the registry mutex during Collect(): it must be fast, must
  /// not touch the registry, and must be removed before anything it captures
  /// is destroyed.
  uint64_t AddCallbackGauge(const std::string& name, const std::string& help,
                            const Labels& labels, std::function<double()> fn);
  void RemoveCallback(uint64_t id);

  /// One consistent-enough snapshot of every family, sorted by name (series
  /// sorted by label key string), ready for the exporters in obs/export.h.
  std::vector<FamilySnapshot> Collect() const;

 private:
  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> callback;  ///< callback-gauge series only
    uint64_t callback_id = 0;
  };
  struct Family {
    std::string help;
    MetricType type = MetricType::kCounter;
    std::optional<HistogramOptions> histogram_options;
    std::map<std::string, Series> series;  ///< keyed by canonical label string
  };

  Family& GetFamilyLocked(const std::string& name, const std::string& help,
                          MetricType type);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  uint64_t next_callback_id_ = 1;
};

/// Canonical label-set encoding ("k1=v1\x1fk2=v2", sorted by key). Exposed
/// for tests.
std::string EncodeLabels(const Labels& labels);

// ---- Null-registry fast-path helpers -------------------------------------
// Instrumented sites hold possibly-null handles and update through these, so
// the disabled path is a single branch.

inline void Inc(Counter* c, uint64_t n = 1) {
  if (c != nullptr) c->Increment(n);
}
inline void Set(Gauge* g, double v) {
  if (g != nullptr) g->Set(v);
}
inline void Add(Gauge* g, double v) {
  if (g != nullptr) g->Add(v);
}
inline void Observe(Histogram* h, double v) {
  if (h != nullptr) h->Observe(v);
}

}  // namespace obs
}  // namespace gpl

#endif  // GPL_OBS_REGISTRY_H_
