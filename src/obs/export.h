#ifndef GPL_OBS_EXPORT_H_
#define GPL_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/registry.h"

namespace gpl {
namespace obs {

/// Prometheus text exposition (format version 0.0.4) of a collected
/// snapshot: `# HELP` / `# TYPE` headers per family, one sample line per
/// series, histograms as cumulative `_bucket{le=...}` plus `_sum`/`_count`.
/// Metric and label names are sanitized to the Prometheus charset
/// ([a-zA-Z_:][a-zA-Z0-9_:]* and [a-zA-Z_][a-zA-Z0-9_]*); label values and
/// help text are escaped per the exposition rules, so hostile names cannot
/// corrupt the output. scripts/validate_prom.py parses the result in CI.
std::string PrometheusText(const std::vector<FamilySnapshot>& families);

/// Same, collecting from the registry first.
std::string PrometheusText(const MetricsRegistry& registry);

/// JSON snapshot of a collected snapshot: one object
/// `{"metrics": [{"name", "type", "help", "series": [...]}]}` with
/// histogram series carrying bucket bounds/counts, sum/count/min/max and
/// precomputed p50/p95/p99. Output is a single well-formed JSON value —
/// tests validate it with the in-tree trace::ValidateJson parser.
std::string JsonSnapshot(const std::vector<FamilySnapshot>& families);
std::string JsonSnapshot(const MetricsRegistry& registry);

/// Sanitizes a metric name to the Prometheus charset (invalid characters
/// become '_'; a leading digit gets a '_' prefix). Exposed for tests.
std::string SanitizeMetricName(const std::string& name);
/// Same for label names (':' is not allowed in label names).
std::string SanitizeLabelName(const std::string& name);

}  // namespace obs
}  // namespace gpl

#endif  // GPL_OBS_EXPORT_H_
