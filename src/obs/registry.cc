#include "obs/registry.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace gpl {
namespace obs {

namespace {

void AtomicAddDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::vector<double> BuildBounds(const HistogramOptions& options) {
  const double min_value = options.min_value > 0.0 ? options.min_value : 1e-9;
  const double max_value = std::max(options.max_value, min_value);
  const int per_decade = std::max(1, options.buckets_per_decade);
  std::vector<double> bounds;
  bounds.push_back(min_value);
  const double growth = std::pow(10.0, 1.0 / per_decade);
  double bound = min_value;
  // Multiplicative ladder; the 1+1e-12 slack keeps the final bound from
  // overshooting max_value by a rounding error and adding a phantom bucket.
  while (bound < max_value / (1.0 + 1e-12)) {
    bound *= growth;
    bounds.push_back(std::min(bound, max_value));
  }
  return bounds;
}

}  // namespace

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const double n = static_cast<double>(counts[i]);
    if (n == 0.0) continue;
    if (cumulative + n >= target) {
      // Interpolate inside this bucket. Bucket i spans (lo, hi]; the
      // underflow bucket (i == 0) spans (0, bounds[0]] and the overflow
      // bucket (i == bounds.size()) spans (bounds.back(), max_seen].
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : max_seen;
      const double frac = std::clamp((target - cumulative) / n, 0.0, 1.0);
      const double value = lo + (std::max(hi, lo) - lo) * frac;
      return std::clamp(value, min_seen, max_seen);
    }
    cumulative += n;
  }
  return max_seen;
}

Histogram::Histogram(const HistogramOptions& options)
    : bounds_(BuildBounds(options)), counts_(bounds_.size() + 1) {}

void Histogram::Observe(double value) {
  if (!std::isfinite(value)) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, value);
  if (!any_.exchange(true, std::memory_order_relaxed)) {
    // First observation seeds min/max; racing observers fix them up below.
    min_seen_.store(value, std::memory_order_relaxed);
    max_seen_.store(value, std::memory_order_relaxed);
  }
  AtomicMinDouble(&min_seen_, value);
  AtomicMaxDouble(&max_seen_, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(counts_.size());
  for (const std::atomic<uint64_t>& c : counts_) {
    snap.counts.push_back(c.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  if (any_.load(std::memory_order_relaxed)) {
    snap.min_seen = min_seen_.load(std::memory_order_relaxed);
    snap.max_seen = max_seen_.load(std::memory_order_relaxed);
  }
  // Relaxed reads can catch count_ ahead of the bucket add (or vice versa);
  // reconcile so exporters never show count < sum-of-buckets.
  uint64_t bucket_total = 0;
  for (const uint64_t c : snap.counts) bucket_total += c;
  snap.count = std::max(snap.count, bucket_total);
  return snap;
}

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

std::string EncodeLabels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [key, value] : sorted) {
    if (!out.empty()) out += '\x1f';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

MetricsRegistry::Family& MetricsRegistry::GetFamilyLocked(
    const std::string& name, const std::string& help, MetricType type) {
  Family& family = families_[name];
  if (family.series.empty() && family.help.empty()) {
    family.help = help;
    family.type = type;
  }
  GPL_CHECK(family.type == type)
      << "metric '" << name << "' registered as " << MetricTypeName(family.type)
      << " and again as " << MetricTypeName(type);
  return family;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = GetFamilyLocked(name, help, MetricType::kCounter);
  Series& series = family.series[EncodeLabels(labels)];
  if (series.counter == nullptr) {
    series.labels = labels;
    std::sort(series.labels.begin(), series.labels.end());
    series.counter = std::make_unique<Counter>();
  }
  return series.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = GetFamilyLocked(name, help, MetricType::kGauge);
  Series& series = family.series[EncodeLabels(labels)];
  if (series.gauge == nullptr) {
    series.labels = labels;
    std::sort(series.labels.begin(), series.labels.end());
    series.gauge = std::make_unique<Gauge>();
  }
  return series.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const HistogramOptions& options,
                                         const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = GetFamilyLocked(name, help, MetricType::kHistogram);
  if (!family.histogram_options.has_value()) {
    family.histogram_options = options;
  }
  Series& series = family.series[EncodeLabels(labels)];
  if (series.histogram == nullptr) {
    series.labels = labels;
    std::sort(series.labels.begin(), series.labels.end());
    // Every series of a family shares the family's bucket layout so the
    // exposition's `le` bounds line up across label children.
    series.histogram = std::make_unique<Histogram>(*family.histogram_options);
  }
  return series.histogram.get();
}

uint64_t MetricsRegistry::AddCallbackGauge(const std::string& name,
                                           const std::string& help,
                                           const Labels& labels,
                                           std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = GetFamilyLocked(name, help, MetricType::kGauge);
  Series& series = family.series[EncodeLabels(labels)];
  series.labels = labels;
  std::sort(series.labels.begin(), series.labels.end());
  series.callback = std::move(fn);  // re-registration replaces the callback
  series.callback_id = next_callback_id_++;
  return series.callback_id;
}

void MetricsRegistry::RemoveCallback(uint64_t id) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, family] : families_) {
    for (auto it = family.series.begin(); it != family.series.end();) {
      if (it->second.callback_id == id) {
        it = family.series.erase(it);
      } else {
        ++it;
      }
    }
  }
}

std::vector<FamilySnapshot> MetricsRegistry::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FamilySnapshot> out;
  out.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    FamilySnapshot fs;
    fs.name = name;
    fs.help = family.help;
    fs.type = family.type;
    for (const auto& [key, series] : family.series) {
      SeriesSnapshot ss;
      ss.labels = series.labels;
      if (series.counter != nullptr) {
        ss.counter_value = series.counter->Value();
        ss.value = static_cast<double>(ss.counter_value);
      } else if (series.gauge != nullptr) {
        ss.value = series.gauge->Value();
      } else if (series.callback) {
        ss.value = series.callback();
      } else if (series.histogram != nullptr) {
        ss.histogram = series.histogram->Snapshot();
      } else {
        continue;  // registered but never materialized
      }
      fs.series.push_back(std::move(ss));
    }
    out.push_back(std::move(fs));
  }
  return out;
}

}  // namespace obs
}  // namespace gpl
