#ifndef GPL_SHARD_SHARDED_EXECUTOR_H_
#define GPL_SHARD_SHARDED_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "model/exchange_model.h"
#include "plan/cardinality.h"
#include "shard/device_group.h"
#include "shard/partitioner.h"
#include "sim/link.h"

namespace gpl {
namespace shard {

/// Data-parallel execution of one query across a DeviceGroup: every device
/// runs the same plan over its shard of the fact table, partial results are
/// shuffled to device 0 over the group's link, and a deterministic serial
/// merge produces the final table.
///
/// Bit-identity. Double summation is non-associative, so merging per-shard
/// *aggregate* outputs could never be bit-identical to a single-device run.
/// Instead, each shard executes only the maximal subtree of the plan whose
/// probe spine bottoms out at the partitioned fact scan (everything below
/// the last aggregate, sort, or build edge on the root-to-fact path),
/// carrying the partitioner's l_rowid column through the spine. The merge
/// concatenates the partial tables, restores exact fact-table row order by
/// a stable sort on l_rowid, and then replays the remainder of the original
/// plan once with the stitched table substituted for the shard subtree
/// (KbeEngine::ExecuteWithInput) — the same kernels, over the same rows, in
/// the same order as a single device, hence bit-identical results at any
/// shard count. Probe pipelines preserve input order, so the stitched table
/// equals the subtree's single-device output row for row; hash-join build
/// order above the boundary is likewise reproduced because bucket chains
/// depend only on insertion order. Plans that never scan the fact table (or
/// scan it twice) are rejected with kUnimplemented.
///
/// Timing. Simulated elapsed = max over per-device times + serialized
/// exchange (dimension broadcast + partial shuffle, priced by sim::Link via
/// the exchange cost model) + the merge charged on device 0. Counters sum
/// all devices' work; per-device times and utilizations land in
/// QueryMetrics.
///
/// Thread-safety: like Engine, an instance is single-threaded; the
/// ShardedDatabase and the source database are read-only and shared.
class ShardedExecutor {
 public:
  /// `db` is the unpartitioned source (planning uses its global statistics),
  /// `sharded` the matching PartitionDatabase output; both must outlive the
  /// executor. `group.size()` must equal `sharded->num_shards()`.
  /// `options.device` is ignored (the group's specs are used); a shared
  /// `options.tuning_cache` is honored, as are per-execution ExecOptions.
  /// `calibrations` optionally supplies precomputed per-device-name
  /// calibration tables (the QueryService shares one map across workers);
  /// missing devices are calibrated here and owned by the executor.
  ShardedExecutor(
      const tpch::Database* db, const ShardedDatabase* sharded,
      DeviceGroup group, EngineOptions options,
      const std::map<std::string, model::CalibrationTable>* calibrations =
          nullptr);

  int num_shards() const { return group_.size(); }
  const DeviceGroup& group() const { return group_; }
  const sim::Link& link() const { return link_; }
  model::TuningCache& tuning_cache() const { return *tuning_cache_; }

  /// Exchange decisions (broadcast vs co-partitioned vs repartition) the
  /// cost model would make for `query`, with referenced-column byte counts
  /// taken from the source database. Exposed for EXPLAIN-style reporting
  /// and tests; Execute() charges exactly this plan.
  Result<model::ExchangePlan> ExplainExchange(const LogicalQuery& query) const;

  Result<QueryResult> Execute(const LogicalQuery& query);
  Result<QueryResult> Execute(const LogicalQuery& query,
                              const ExecOptions& exec);

 private:
  /// The per-shard plan (the shard subtree with l_rowid threaded to its
  /// root) plus the node of the *original* plan it replaces: the merge
  /// substitutes the stitched table at `boundary` and replays the rest.
  struct SplitPlan {
    PhysicalOpPtr shard_plan;
    const PhysicalOp* boundary = nullptr;
    std::string rowid_column;  ///< l_rowid's (possibly alias-renamed) name
  };

  Result<SplitPlan> SplitAndInject(const PhysicalOpPtr& plan) const;
  /// Exchange plan for the tables scanned inside the shard subtree (tables
  /// above the boundary run on the merge device and are never shipped).
  Result<model::ExchangePlan> ExchangeForPlan(
      const PhysicalOp& shard_subtree) const;

  const tpch::Database* db_;
  const ShardedDatabase* sharded_;
  DeviceGroup group_;
  EngineOptions options_;
  Catalog catalog_;  ///< global statistics of the unpartitioned source
  /// Calibrations computed here (one per distinct device name not covered
  /// by the shared map passed to the constructor).
  std::map<std::string, model::CalibrationTable> owned_calibrations_;
  std::unique_ptr<model::TuningCache> owned_tuning_cache_;
  model::TuningCache* tuning_cache_;  ///< owned or shared
  std::vector<std::unique_ptr<Engine>> engines_;  ///< one per shard/device
  sim::Link link_;  ///< accumulates exchange traffic across executions

  // Metrics handles (null without EngineOptions::metrics): exchange traffic
  // by kind, and accumulated simulated busy ms per device slot (the
  // per-shard makespan contribution of every completed query).
  obs::Counter* broadcast_bytes_counter_ = nullptr;
  obs::Counter* shuffle_bytes_counter_ = nullptr;
  std::vector<obs::Gauge*> slot_busy_gauges_;
};

}  // namespace shard
}  // namespace gpl

#endif  // GPL_SHARD_SHARDED_EXECUTOR_H_
