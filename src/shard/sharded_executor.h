#ifndef GPL_SHARD_SHARDED_EXECUTOR_H_
#define GPL_SHARD_SHARDED_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "model/exchange_model.h"
#include "plan/cardinality.h"
#include "plan/physical_plan.h"
#include "shard/device_group.h"
#include "shard/partitioner.h"
#include "sim/link.h"

namespace gpl {
namespace shard {

/// Estimated bytes the partial-aggregate gather ships to device 0: the
/// per-group partial state (counts and superaccumulator digits for sum/avg,
/// a bare running value for min/max — no count column, the combine never
/// consults one) from each of the `num_shards - 1` non-resident shards,
/// using the aggregate's estimated group count. Exposed so tests can pin
/// the estimate against the measured gather bytes of an actual execution.
int64_t EstimatePartialGatherBytes(const PhysicalOp& agg, int num_shards);

/// One Exchange operator of a distributed plan, for EXPLAIN-style reporting:
/// the relation it moves, how, and the cost model's prediction.
struct ExchangeOpReport {
  std::string table;
  ExchangeKind kind = ExchangeKind::kPassthrough;
  int64_t predicted_bytes = 0;
  double predicted_ms = 0.0;
};

/// How a query would execute across the shard group: the per-shard plan with
/// Exchange operators inline, plus per-exchange predictions. Execute()
/// charges exactly these exchanges, so `predicted_bytes` lines up with the
/// broadcast/shuffle byte counts in QueryMetrics.
struct DistributedExplain {
  int num_shards = 1;
  /// True when the aggregate was pushed down (combine-merge); false when the
  /// query falls back to the row-id stitch-and-replay merge.
  bool partial_aggregate = false;
  std::string plan_text;  ///< per-shard plan, Exchange operators inline
  /// Per-relation exchanges (broadcast/repartition/co-partitioned), then the
  /// final gather of per-shard results to the coordinator.
  std::vector<ExchangeOpReport> exchanges;
};

/// Data-parallel execution of one query across a DeviceGroup: every device
/// runs the same exchange-annotated plan over its shard of the fact table,
/// per-shard results are gathered to device 0 over the group's link, and a
/// deterministic merge produces the final table.
///
/// Exchange operators are first-class plan nodes (PhysicalOp::kExchange):
/// planning wraps every non-fact scan of the shard subtree in an Exchange
/// whose kind (broadcast / repartition / co-partitioned passthrough) the
/// cost model picks per relation over the group's sim::Link, memoized in the
/// TuningCache. On a device the operator is an identity — the link cost is
/// charged once at the group level, exactly as priced.
///
/// Bit-identity. Double summation is non-associative, so merging per-shard
/// *rounded* aggregates could never be bit-identical to a single-device run.
/// Two merge strategies preserve exactness:
///
///  - Partial-aggregate pushdown (the fast path): when the subtree below the
///    plan's root aggregate provably partitions — every row of its output
///    lands on exactly one shard, which holds for spines bottoming out at
///    the partitioned fact scan joined against replicated or co-partitioned
///    relations — each shard runs the aggregate in partial mode
///    (AggregatePhase::kPartial), emitting exact superaccumulator digits for
///    sums and counts/min/max state. The merge combines partials per group
///    (CombinePartialAggregates — exact, order-independent) and replays only
///    the cheap remainder above the aggregate. The gather ships tiny
///    per-group state instead of fact-table rows.
///
///  - Row-id stitch (the fallback): the shard subtree carries the
///    partitioner's l_rowid column to its root; the merge concatenates the
///    partials, stable-sorts on l_rowid to restore exact fact-table row
///    order, and replays the rest of the plan from the boundary up
///    (KbeEngine::ExecuteWithInput) — same kernels, same rows, same order as
///    one device.
///
/// Both paths produce bit-identical tables to the single-device engine at
/// any shard count. Plans that never scan the fact table (or scan it twice)
/// are rejected with kUnimplemented. A 1-device group short-circuits to the
/// plain single-device path: no partitioning, no stitch, zero sharding tax.
///
/// Timing. Simulated elapsed = max over per-device times + serialized
/// exchange (broadcasts + the gather, priced by sim::Link) + the merge
/// charged on device 0. Counters sum all devices' work; per-device times and
/// utilizations land in QueryMetrics.
///
/// Thread-safety: like Engine, an instance is single-threaded; the
/// ShardedDatabase and the source database are read-only and shared.
class ShardedExecutor {
 public:
  /// `db` is the unpartitioned source (planning uses its global statistics),
  /// `sharded` the matching PartitionDatabase output; both must outlive the
  /// executor. `group.size()` must equal `sharded->num_shards()`.
  /// `options.device` is ignored (the group's specs are used); a shared
  /// `options.tuning_cache` is honored, as are per-execution ExecOptions.
  /// `calibrations` optionally supplies precomputed per-device-name
  /// calibration tables (the QueryService shares one map across workers);
  /// missing devices are calibrated here and owned by the executor.
  ShardedExecutor(
      const tpch::Database* db, const ShardedDatabase* sharded,
      DeviceGroup group, EngineOptions options,
      const std::map<std::string, model::CalibrationTable>* calibrations =
          nullptr);

  int num_shards() const { return group_.size(); }
  const DeviceGroup& group() const { return group_; }
  const sim::Link& link() const { return link_; }
  model::TuningCache& tuning_cache() const { return *tuning_cache_; }

  /// How Execute() would run `query`: the exchange-annotated per-shard plan
  /// plus per-exchange predictions. Pure planning — nothing executes and no
  /// link traffic is recorded (exchange decisions do land in the
  /// TuningCache, so a following Execute() prices them by lookup).
  Result<DistributedExplain> Explain(const LogicalQuery& query) const;

  Result<QueryResult> Execute(const LogicalQuery& query);
  Result<QueryResult> Execute(const LogicalQuery& query,
                              const ExecOptions& exec);

 private:
  /// The fallback split: the shard subtree with l_rowid threaded to its
  /// root, plus the node of the *original* plan it replaces.
  struct SplitPlan {
    PhysicalOpPtr shard_plan;
    const PhysicalOp* boundary = nullptr;
    std::string rowid_column;  ///< l_rowid's (possibly alias-renamed) name
  };

  /// A fully planned distributed execution (either merge strategy): the
  /// exchange-annotated per-shard plan, the substitution point in the
  /// original plan, and the priced exchanges.
  struct DistributedPlan {
    bool partial_aggregate = false;
    PhysicalOpPtr shard_plan;
    const PhysicalOp* boundary = nullptr;
    std::string rowid_column;       ///< fallback path only
    model::ExchangePlan exchange;   ///< per-relation decisions (non-fact)
    int64_t gather_bytes = 0;       ///< estimated gather traffic (EXPLAIN)
  };

  /// Physical plan over the unpartitioned catalog (shared by Execute and
  /// Explain so both see identical plans).
  Result<PhysicalOpPtr> PlanQuery(const LogicalQuery& query) const;
  /// Picks the merge strategy and annotates the per-shard plan with
  /// Exchange operators (cost-model priced, TuningCache-memoized).
  Result<DistributedPlan> PlanDistributed(const PhysicalOpPtr& plan) const;
  Result<SplitPlan> SplitAndInject(const PhysicalOpPtr& plan) const;
  /// Exchange plan for the tables scanned inside the shard subtree (tables
  /// above the boundary run on the merge device and are never shipped).
  Result<model::ExchangePlan> ExchangeForPlan(
      const PhysicalOp& shard_subtree) const;
  /// 1-device group: run the plain single-device path on the (full) shard.
  Result<QueryResult> ExecuteSingle(const LogicalQuery& query,
                                    const ExecOptions& exec);

  const tpch::Database* db_;
  const ShardedDatabase* sharded_;
  DeviceGroup group_;
  EngineOptions options_;
  Catalog catalog_;  ///< global statistics of the unpartitioned source
  /// Calibrations computed here (one per distinct device name not covered
  /// by the shared map passed to the constructor).
  std::map<std::string, model::CalibrationTable> owned_calibrations_;
  std::unique_ptr<model::TuningCache> owned_tuning_cache_;
  model::TuningCache* tuning_cache_;  ///< owned or shared
  std::vector<std::unique_ptr<Engine>> engines_;  ///< one per shard/device
  sim::Link link_;  ///< accumulates exchange traffic across executions

  // Metrics handles (null without EngineOptions::metrics): exchange traffic
  // by kind, and accumulated simulated busy ms per device slot (the
  // per-shard makespan contribution of every completed query).
  obs::Counter* broadcast_bytes_counter_ = nullptr;
  obs::Counter* shuffle_bytes_counter_ = nullptr;
  std::vector<obs::Gauge*> slot_busy_gauges_;
};

}  // namespace shard
}  // namespace gpl

#endif  // GPL_SHARD_SHARDED_EXECUTOR_H_
