#include "shard/sharded_executor.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <utility>

#include "common/logging.h"
#include "engine/kbe_engine.h"
#include "exec/primitives.h"
#include "plan/selinger.h"
#include "sim/engine.h"
#include "trace/trace.h"

namespace gpl {
namespace shard {

namespace {

/// Cycles on `device` corresponding to `ms` (inverse of CyclesToMs).
double MsToCycles(const sim::DeviceSpec& device, double ms) {
  return ms * static_cast<double>(device.core_mhz) * 1e3;
}

/// Collects the referenced columns of every scan in the plan tree.
void CollectScanColumns(const PhysicalOp& op,
                        std::map<std::string, std::set<std::string>>* out) {
  if (op.kind == PhysicalOp::Kind::kScan) {
    std::set<std::string>& cols = (*out)[op.table];
    cols.insert(op.columns.begin(), op.columns.end());
  }
  if (op.child != nullptr) CollectScanColumns(*op.child, out);
  if (op.build_child != nullptr) CollectScanColumns(*op.build_child, out);
}

/// One step on the root-to-fact-scan path: the node, and whether the edge
/// from its parent was the build side of a hash join.
struct PathStep {
  const PhysicalOp* node;
  bool via_build;
};

/// Appends the path from `op` down to the scan of `fact` (inclusive).
/// Returns false (and leaves `path` unchanged) if the subtree has none.
bool FindFactPath(const PhysicalOp& op, const std::string& fact,
                  bool via_build, std::vector<PathStep>* path) {
  path->push_back({&op, via_build});
  if (op.kind == PhysicalOp::Kind::kScan && op.table == fact) return true;
  if (op.child != nullptr && FindFactPath(*op.child, fact, false, path)) {
    return true;
  }
  if (op.build_child != nullptr &&
      FindFactPath(*op.build_child, fact, true, path)) {
    return true;
  }
  path->pop_back();
  return false;
}

int CountFactScans(const PhysicalOp& op, const std::string& fact) {
  int n = (op.kind == PhysicalOp::Kind::kScan && op.table == fact) ? 1 : 0;
  if (op.child != nullptr) n += CountFactScans(*op.child, fact);
  if (op.build_child != nullptr) n += CountFactScans(*op.build_child, fact);
  return n;
}

/// New table without the named column (all other columns copied).
Table DropColumn(const Table& table, const std::string& column) {
  Table out(table.name());
  for (int64_t i = 0; i < table.num_columns(); ++i) {
    if (table.ColumnNameAt(i) == column) continue;
    GPL_CHECK_OK(out.AddColumn(table.ColumnNameAt(i), table.ColumnAt(i)));
  }
  return out;
}

}  // namespace

ShardedExecutor::ShardedExecutor(
    const tpch::Database* db, const ShardedDatabase* sharded, DeviceGroup group,
    EngineOptions options,
    const std::map<std::string, model::CalibrationTable>* calibrations)
    : db_(db),
      sharded_(sharded),
      group_(std::move(group)),
      options_(std::move(options)),
      catalog_(Catalog::FromDatabase(*db)),
      owned_tuning_cache_(options_.tuning_cache != nullptr
                              ? nullptr
                              : std::make_unique<model::TuningCache>()),
      tuning_cache_(options_.tuning_cache != nullptr
                        ? options_.tuning_cache
                        : owned_tuning_cache_.get()),
      link_(group_.link) {
  GPL_CHECK(db_ != nullptr && sharded_ != nullptr);
  GPL_CHECK(group_.size() == sharded_->num_shards())
      << "device group size " << group_.size() << " != shard count "
      << sharded_->num_shards();

  engines_.reserve(static_cast<size_t>(group_.size()));
  for (int i = 0; i < group_.size(); ++i) {
    const sim::DeviceSpec& device = group_.devices[static_cast<size_t>(i)];
    const model::CalibrationTable* calibration = nullptr;
    if (calibrations != nullptr) {
      auto it = calibrations->find(device.name);
      if (it != calibrations->end()) calibration = &it->second;
    }
    if (calibration == nullptr) {
      auto it = owned_calibrations_.find(device.name);
      if (it == owned_calibrations_.end()) {
        // One calibration per distinct device spec, shared by its shards.
        it = owned_calibrations_
                 .emplace(device.name,
                          model::CalibrationTable::Run(sim::Simulator(device)))
                 .first;
      }
      calibration = &it->second;
    }
    EngineOptions shard_options = options_;
    shard_options.device = device;
    shard_options.calibration = calibration;
    shard_options.tuning_cache = tuning_cache_;
    engines_.push_back(std::make_unique<Engine>(
        &sharded_->shards[static_cast<size_t>(i)], shard_options));
  }

  if (obs::MetricsRegistry* metrics = options_.metrics; metrics != nullptr) {
    broadcast_bytes_counter_ = metrics->GetCounter(
        "gpl_shard_exchange_bytes_total",
        "Bytes shipped between devices by exchange kind",
        {{"kind", "broadcast"}});
    shuffle_bytes_counter_ = metrics->GetCounter(
        "gpl_shard_exchange_bytes_total",
        "Bytes shipped between devices by exchange kind",
        {{"kind", "shuffle"}});
    slot_busy_gauges_.reserve(static_cast<size_t>(group_.size()));
    for (int i = 0; i < group_.size(); ++i) {
      slot_busy_gauges_.push_back(metrics->GetGauge(
          "gpl_shard_device_busy_ms",
          "Accumulated simulated busy time per device slot (ms)",
          {{"slot", std::to_string(i)},
           {"device", group_.devices[static_cast<size_t>(i)].name}}));
    }
  }
}

Result<ShardedExecutor::SplitPlan> ShardedExecutor::SplitAndInject(
    const PhysicalOpPtr& plan) const {
  const std::string& fact = sharded_->fact_table();
  const int fact_scans = CountFactScans(*plan, fact);
  if (fact_scans != 1) {
    return Status::Unimplemented(
        "sharded execution requires exactly one scan of the partitioned fact "
        "table '" + fact + "'; plan has " + std::to_string(fact_scans));
  }
  std::vector<PathStep> path;
  GPL_CHECK(FindFactPath(*plan, fact, false, &path));

  // The shard subtree is the maximal subtree whose probe spine bottoms out
  // at the fact scan. Walking the root-to-fact path, it starts just past
  // the last blocker: an aggregate or sort node (only correct over the full
  // input, so it belongs to the merge), or a build edge (the subtree feeds
  // the build side of the join above, which the merge device re-builds from
  // the stitched rows — bucket chains depend only on insertion order, which
  // the rowid sort restores). Build subtrees hanging off the spine run on
  // every shard; co-partitioning makes their joins with the spine exact.
  size_t start = 0;
  for (size_t i = 0; i < path.size(); ++i) {
    if (path[i].via_build) start = i;
    if (path[i].node->kind == PhysicalOp::Kind::kAggregate ||
        path[i].node->kind == PhysicalOp::Kind::kSort) {
      start = i + 1;
    }
  }
  GPL_CHECK(start < path.size());  // the fact scan is never a blocker

  SplitPlan split;
  split.boundary = path[start].node;
  const PhysicalOp* fact_scan = path.back().node;
  split.rowid_column = fact_scan->alias.empty()
                           ? std::string(kRowIdColumn)
                           : fact_scan->alias + "_" + kRowIdColumn;

  // Clone the spine (build sides are shared, they are not modified) and
  // thread l_rowid from the fact scan to the shard-plan root: scans list it,
  // projects pass it through, filters/joins forward probe columns as-is.
  // Every edge below `start` is a probe edge, so the path slice is exactly
  // the subtree's child chain.
  PhysicalOpPtr cloned;
  PhysicalOp* parent = nullptr;
  for (size_t i = start; i < path.size(); ++i) {
    auto copy = std::make_shared<PhysicalOp>(*path[i].node);
    if (copy->kind == PhysicalOp::Kind::kProject) {
      copy->projections.push_back(
          {split.rowid_column, Col(split.rowid_column)});
    } else if (copy->kind == PhysicalOp::Kind::kScan) {
      copy->columns.push_back(kRowIdColumn);
    }
    if (parent == nullptr) {
      cloned = copy;
    } else {
      parent->child = copy;
    }
    parent = copy.get();
  }
  split.shard_plan = std::move(cloned);
  return split;
}

Result<model::ExchangePlan> ShardedExecutor::ExchangeForPlan(
    const PhysicalOp& shard_subtree) const {
  std::map<std::string, std::set<std::string>> scans;
  CollectScanColumns(shard_subtree, &scans);

  int64_t fact_bytes = 0;
  std::vector<model::ExchangeInput> inputs;
  for (const auto& [table, columns] : scans) {
    const Table* base = db_->ByName(table);
    if (base == nullptr) return Status::NotFound("unknown table: " + table);
    int64_t bytes = 0;
    for (const std::string& column : columns) {
      if (column == kRowIdColumn) continue;  // synthesized, never shipped
      if (!base->HasColumn(column)) {
        return Status::NotFound("unknown column " + table + "." + column);
      }
      bytes += base->GetColumn(column).byte_size();
    }
    if (table == sharded_->fact_table()) {
      fact_bytes = bytes;
      continue;  // the pivot of the exchange, not itself exchanged
    }
    model::ExchangeInput input;
    input.table = table;
    input.bytes = bytes;
    input.rows = base->num_rows();
    input.co_partitioned = sharded_->IsPartitioned(table);
    inputs.push_back(std::move(input));
  }
  return model::PlanExchange(inputs, group_.link, group_.size(), fact_bytes);
}

Result<model::ExchangePlan> ShardedExecutor::ExplainExchange(
    const LogicalQuery& query) const {
  PlanOptions plan_options;
  if (options_.partitioned_joins) {
    plan_options.partition_build_threshold_bytes =
        options_.partition_threshold_bytes > 0
            ? options_.partition_threshold_bytes
            : group_.devices.front().cache_bytes / 2;
    plan_options.num_partitions = options_.num_partitions;
  }
  GPL_ASSIGN_OR_RETURN(PhysicalOpPtr plan,
                       BuildPhysicalPlan(query, catalog_, plan_options));
  GPL_ASSIGN_OR_RETURN(SplitPlan split, SplitAndInject(plan));
  return ExchangeForPlan(*split.boundary);
}

Result<QueryResult> ShardedExecutor::Execute(const LogicalQuery& query) {
  return Execute(query, options_.exec);
}

Result<QueryResult> ShardedExecutor::Execute(const LogicalQuery& query,
                                             const ExecOptions& exec) {
  if (exec.cancel != nullptr) GPL_RETURN_NOT_OK(exec.cancel->Check());
  const sim::DeviceSpec& device0 = group_.devices.front();

  // Plan once, on the unpartitioned database's statistics: every shard runs
  // the same plan, exactly as a coordinator would ship it.
  const auto plan_start = std::chrono::steady_clock::now();
  PlanOptions plan_options;
  if (options_.partitioned_joins) {
    plan_options.partition_build_threshold_bytes =
        options_.partition_threshold_bytes > 0
            ? options_.partition_threshold_bytes
            : device0.cache_bytes / 2;
    plan_options.num_partitions = options_.num_partitions;
  }
  GPL_ASSIGN_OR_RETURN(PhysicalOpPtr plan,
                       BuildPhysicalPlan(query, catalog_, plan_options));
  GPL_ASSIGN_OR_RETURN(SplitPlan split, SplitAndInject(plan));
  GPL_ASSIGN_OR_RETURN(model::ExchangePlan broadcast,
                       ExchangeForPlan(*split.boundary));
  const double plan_wall_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - plan_start)
                                  .count();

  // Per-shard execution. Serial on the host (results are simulated, wall
  // clock is not the metric); the shared fault injector and cancellation
  // token are polled in shard order, keeping fault schedules deterministic.
  ExecOptions shard_exec = exec;
  shard_exec.trace = nullptr;  // the executor emits the group-level timeline
  std::vector<QueryResult> partials;
  partials.reserve(static_cast<size_t>(group_.size()));
  for (int i = 0; i < group_.size(); ++i) {
    if (exec.cancel != nullptr) GPL_RETURN_NOT_OK(exec.cancel->Check());
    GPL_ASSIGN_OR_RETURN(
        QueryResult partial,
        engines_[static_cast<size_t>(i)]->ExecutePlan(split.shard_plan,
                                                      shard_exec));
    partials.push_back(std::move(partial));
  }

  // Exchange: the dimension broadcast (priced per the exchange model) plus
  // gathering every non-resident partial result to device 0.
  link_.Record(broadcast.total_bytes, broadcast.total_ms);
  int64_t shuffle_bytes = 0;
  double shuffle_ms = 0.0;
  for (size_t i = 1; i < partials.size(); ++i) {
    const int64_t bytes = partials[i].table.byte_size();
    shuffle_bytes += bytes;
    shuffle_ms += link_.Transfer(bytes);
  }
  const double exchange_ms = broadcast.total_ms + shuffle_ms;

  // Stitch the partials back into exact fact-table row order: concatenate
  // (schemas and dictionaries are shared across shards), stable-sort by the
  // injected row id, drop it. The merged table now equals — row for row —
  // what a single device would feed its aggregate.
  Table merged = std::move(partials[0].table);
  for (size_t i = 1; i < partials.size(); ++i) {
    GPL_RETURN_NOT_OK(merged.AppendTable(partials[i].table));
  }
  const int64_t rowid_index = merged.ColumnIndex(split.rowid_column);
  if (rowid_index < 0) {
    return Status::Internal("sharded partial result lost the '" +
                            split.rowid_column + "' column");
  }
  const int64_t merged_bytes_with_rowid = merged.byte_size();
  const Column& rowid = merged.ColumnAt(rowid_index);
  std::vector<int64_t> order(static_cast<size_t>(merged.num_rows()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  std::stable_sort(order.begin(), order.end(), [&rowid](int64_t a, int64_t b) {
    return rowid.Int64At(a) < rowid.Int64At(b);
  });
  merged = merged.Gather(order);
  merged = DropColumn(merged, split.rowid_column);

  // Group-level timeline: one span per device (they run concurrently from
  // the segment origin), then the serialized exchange, then the merge
  // kernels appended by RunKernelBatch below.
  const double max_device_ms =
      std::max_element(partials.begin(), partials.end(),
                       [](const QueryResult& a, const QueryResult& b) {
                         return a.metrics.elapsed_ms < b.metrics.elapsed_ms;
                       })
          ->metrics.elapsed_ms;
  if (exec.trace != nullptr) {
    for (int i = 0; i < group_.size(); ++i) {
      const sim::DeviceSpec& device = group_.devices[static_cast<size_t>(i)];
      const int track = exec.trace->TrackId(
          "device " + std::to_string(i) + " (" + device.name + ")");
      exec.trace->AddSpan(
          track, query.name + " shard " + std::to_string(i), "shard.exec", 0.0,
          MsToCycles(device0, partials[static_cast<size_t>(i)]
                                  .metrics.elapsed_ms),
          {{"elapsed_ms",
            std::to_string(partials[static_cast<size_t>(i)]
                               .metrics.elapsed_ms)}});
    }
    const int link_track = exec.trace->TrackId("exchange (" + link_.spec().name + ")");
    exec.trace->AddSpan(
        link_track, query.name + " exchange", "shard.exchange",
        MsToCycles(device0, max_device_ms),
        MsToCycles(device0, max_device_ms + exchange_ms),
        {{"broadcast_bytes", std::to_string(broadcast.total_bytes)},
         {"shuffle_bytes", std::to_string(shuffle_bytes)}});
    exec.trace->AdvanceOrigin(MsToCycles(device0, max_device_ms + exchange_ms));
  }

  // Serial merge on device 0: gather the shuffled rows into fact order,
  // then replay the original plan with the stitched table substituted for
  // the shard subtree — the same kernel code a single device runs, charged
  // as regular kernel launches on device 0's simulator. Tables above the
  // boundary (e.g. the orders probe of Q9) are read from the unpartitioned
  // source, which is what device 0 would hold as the coordinator.
  const sim::Simulator& sim0 = engines_.front()->simulator();
  sim::HwCounters merge_counters;
  {
    sim::KernelLaunch gather;
    gather.desc = ScatterTiming(static_cast<int>(merged.num_columns() + 1));
    gather.desc.name = "k_shard_gather";
    gather.rows_in = merged.num_rows();
    gather.bytes_in = merged_bytes_with_rowid;
    gather.rows_out = merged.num_rows();
    gather.bytes_out = merged.byte_size();
    GPL_ASSIGN_OR_RETURN(
        const sim::SimResult r,
        sim0.RunKernelBatch(gather, 0, exec.trace, exec.fault));
    merge_counters.Accumulate(r.counters);
  }
  KbeEngine merge_engine(db_, &sim0);
  GPL_ASSIGN_OR_RETURN(
      QueryResult merge_result,
      merge_engine.ExecuteWithInput(plan, split.boundary, std::move(merged),
                                    exec));
  merge_counters.Accumulate(merge_result.metrics.counters);
  const double merge_ms = device0.CyclesToMs(merge_counters.elapsed_cycles);
  Table current = std::move(merge_result.table);

  // Metrics: counters sum every device's work plus the merge; elapsed is
  // the parallel makespan. The breakdown is rescaled so its parts still sum
  // to the makespan.
  QueryResult result;
  result.table = std::move(current);
  QueryMetrics& m = result.metrics;
  for (const QueryResult& partial : partials) {
    m.counters.Accumulate(partial.metrics.counters);
    m.tune_wall_ms += partial.metrics.tune_wall_ms;
    m.tuning_cache_hits += partial.metrics.tuning_cache_hits;
    m.tuning_cache_misses += partial.metrics.tuning_cache_misses;
    m.degraded_segments += partial.metrics.degraded_segments;
    m.device_elapsed_ms.push_back(partial.metrics.elapsed_ms);
    m.predicted_ms = std::max(m.predicted_ms, partial.metrics.predicted_ms);
  }
  m.counters.Accumulate(merge_counters);
  m.Finalize(device0);
  const double serial_ms = m.elapsed_ms;
  m.elapsed_ms = max_device_ms + exchange_ms + merge_ms;
  if (serial_ms > 0.0) {
    const double scale = m.elapsed_ms / serial_ms;
    m.compute_ms *= scale;
    m.mem_ms *= scale;
    m.dc_ms *= scale;
    m.delay_ms *= scale;
    m.other_ms *= scale;
  }
  if (m.predicted_ms > 0.0) m.predicted_ms += exchange_ms + merge_ms;
  m.plan_wall_ms = plan_wall_ms;
  m.num_shards = group_.size();
  m.broadcast_bytes = broadcast.total_bytes;
  m.shuffle_bytes = shuffle_bytes;
  m.exchange_bytes = broadcast.total_bytes + shuffle_bytes;
  m.exchange_ms = exchange_ms;
  m.merge_ms = merge_ms;
  for (double device_ms : m.device_elapsed_ms) {
    m.device_utilization.push_back(
        m.elapsed_ms > 0.0 ? device_ms / m.elapsed_ms : 0.0);
  }
  obs::Inc(broadcast_bytes_counter_,
           static_cast<uint64_t>(broadcast.total_bytes));
  obs::Inc(shuffle_bytes_counter_, static_cast<uint64_t>(shuffle_bytes));
  for (size_t i = 0;
       i < slot_busy_gauges_.size() && i < m.device_elapsed_ms.size(); ++i) {
    obs::Add(slot_busy_gauges_[i], m.device_elapsed_ms[i]);
  }
  GPL_SLOG(Info, "shard")
      .Field("query", query.name)
      .Field("group", group_.ToString())
      .Field("sim_ms", m.elapsed_ms)
      .Field("max_device_ms", max_device_ms)
      .Field("exchange_ms", exchange_ms)
      .Field("merge_ms", merge_ms)
      << "sharded query executed";
  return result;
}

}  // namespace shard
}  // namespace gpl
