#include "shard/sharded_executor.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <utility>

#include "common/logging.h"
#include "engine/kbe_engine.h"
#include "exec/exact_sum.h"
#include "exec/primitives.h"
#include "plan/selinger.h"
#include "shard/partition_scheme.h"
#include "sim/engine.h"
#include "trace/trace.h"

namespace gpl {
namespace shard {

namespace {

/// Cycles on `device` corresponding to `ms` (inverse of CyclesToMs).
double MsToCycles(const sim::DeviceSpec& device, double ms) {
  return ms * static_cast<double>(device.core_mhz) * 1e3;
}

/// Collects the referenced columns of every scan in the plan tree.
void CollectScanColumns(const PhysicalOp& op,
                        std::map<std::string, std::set<std::string>>* out) {
  if (op.kind == PhysicalOp::Kind::kScan) {
    std::set<std::string>& cols = (*out)[op.table];
    cols.insert(op.columns.begin(), op.columns.end());
  }
  if (op.child != nullptr) CollectScanColumns(*op.child, out);
  if (op.build_child != nullptr) CollectScanColumns(*op.build_child, out);
}

/// One step on the root-to-fact-scan path: the node, and whether the edge
/// from its parent was the build side of a hash join.
struct PathStep {
  const PhysicalOp* node;
  bool via_build;
};

/// Appends the path from `op` down to the scan of `fact` (inclusive).
/// Returns false (and leaves `path` unchanged) if the subtree has none.
bool FindFactPath(const PhysicalOp& op, const std::string& fact,
                  bool via_build, std::vector<PathStep>* path) {
  path->push_back({&op, via_build});
  if (op.kind == PhysicalOp::Kind::kScan && op.table == fact) return true;
  if (op.child != nullptr && FindFactPath(*op.child, fact, false, path)) {
    return true;
  }
  if (op.build_child != nullptr &&
      FindFactPath(*op.build_child, fact, true, path)) {
    return true;
  }
  path->pop_back();
  return false;
}

int CountFactScans(const PhysicalOp& op, const std::string& fact) {
  int n = (op.kind == PhysicalOp::Kind::kScan && op.table == fact) ? 1 : 0;
  if (op.child != nullptr) n += CountFactScans(*op.child, fact);
  if (op.build_child != nullptr) n += CountFactScans(*op.build_child, fact);
  return n;
}

/// New table without the named column (all other columns copied).
Table DropColumn(const Table& table, const std::string& column) {
  Table out(table.name());
  for (int64_t i = 0; i < table.num_columns(); ++i) {
    if (table.ColumnNameAt(i) == column) continue;
    GPL_CHECK_OK(out.AddColumn(table.ColumnNameAt(i), table.ColumnAt(i)));
  }
  return out;
}

ExchangeKind KindForStrategy(model::ExchangeStrategy strategy) {
  switch (strategy) {
    case model::ExchangeStrategy::kCoPartitioned:
      return ExchangeKind::kPassthrough;
    case model::ExchangeStrategy::kBroadcast:
      return ExchangeKind::kBroadcast;
    case model::ExchangeStrategy::kRepartition:
      return ExchangeKind::kRepartition;
  }
  return ExchangeKind::kPassthrough;
}

/// How one subtree's output is laid out across the shard group.
struct DistInfo {
  /// True: the union of per-shard outputs is exactly the global relation,
  /// each row on one shard. False: every shard holds the full relation.
  bool partitioned = false;
  /// The partition-equivalence set: every output column whose value, on
  /// each row, provably equals the fact partitioning key that routed the
  /// row to its shard. The set starts as the scan's partition column and
  /// grows through equi-join chains — a join key pair (p = b) with p in the
  /// set makes b partition-equivalent on every output row, and vice versa.
  /// Empty for replicated subtrees and for kRange partitioning (row-range
  /// partitions carry no key proof).
  std::set<std::string> partition_cols;
};

bool Contains(const std::set<std::string>& set, const std::string& name) {
  return set.find(name) != set.end();
}

/// The join-key column pairs of a hash join, for columns-only keys:
/// (probe_keys[i], build_keys[i]) as names. Pairs with expression keys are
/// skipped — an expression over the key loses the co-location proof.
std::vector<std::pair<std::string, std::string>> ColumnKeyPairs(
    const PhysicalOp& op) {
  std::vector<std::pair<std::string, std::string>> pairs;
  const size_t n = std::min(op.probe_keys.size(), op.build_keys.size());
  for (size_t i = 0; i < n; ++i) {
    std::string pk, bk;
    if (op.probe_keys[i]->IsColumnRef(&pk) &&
        op.build_keys[i]->IsColumnRef(&bk)) {
      pairs.emplace_back(std::move(pk), std::move(bk));
    }
  }
  return pairs;
}

/// Proves (conservatively) how the subtree's output distributes across
/// shards. Returns false when no proof exists (an aggregate, sort or
/// exchange inside the subtree) — the caller then falls back to the row-id
/// stitch. The invariants: "partitioned" outputs are disjoint across shards
/// with union equal to the single-device output; "replicated" outputs are
/// identical on every shard. Joins preserve them: probe-partitioned x
/// build-replicated (and the converse) emit each global row on exactly one
/// shard regardless of keys; partitioned x partitioned is shard-local iff
/// some aligned key pair joins the two sides' partition-equivalence sets —
/// matching rows then agree on a column the partitioner co-located, so they
/// live on the same shard. A compound key only tightens the match: extra
/// key pairs restrict rows, and a row subset preserves partitioning. This
/// is what admits the planner's merged multi-edge joins (e.g. Q5's
/// {l_orderkey, l_suppkey} = {o_orderkey, s_suppkey}: the aligned first
/// pair is the co-located one) and key-order permutations of the same join.
bool ClassifySubtree(const PhysicalOp& op, const ShardedDatabase& sharded,
                     DistInfo* out) {
  switch (op.kind) {
    case PhysicalOp::Kind::kScan: {
      out->partitioned = sharded.IsPartitioned(op.table);
      out->partition_cols.clear();
      if (out->partitioned &&
          sharded.options.scheme == PartitionScheme::kHash) {
        const std::string key = HashPartitionKeyColumn(op.table);
        if (!key.empty()) {
          out->partition_cols.insert(op.alias.empty()
                                         ? key
                                         : op.alias + "_" + key);
        }
      }
      return true;
    }
    case PhysicalOp::Kind::kFilter:
      // Row subset: distribution and surviving columns are unchanged.
      return ClassifySubtree(*op.child, sharded, out);
    case PhysicalOp::Kind::kProject: {
      if (!ClassifySubtree(*op.child, sharded, out)) return false;
      if (out->partitioned && !out->partition_cols.empty()) {
        // A key survives only through an identity projection (possibly
        // renamed); expressions over it lose the co-location proof.
        std::set<std::string> surviving;
        for (const ProjectedColumn& p : op.projections) {
          std::string name;
          if (p.expr->IsColumnRef(&name) && Contains(out->partition_cols, name)) {
            surviving.insert(p.name);
          }
        }
        out->partition_cols = std::move(surviving);
      }
      return true;
    }
    case PhysicalOp::Kind::kHashJoin: {
      DistInfo probe, build;
      if (!ClassifySubtree(*op.child, sharded, &probe)) return false;
      if (!ClassifySubtree(*op.build_child, sharded, &build)) return false;
      if (!probe.partitioned && !build.partitioned) {
        // Replicated x replicated: every shard computes the same join.
        out->partitioned = false;
        out->partition_cols.clear();
        return true;
      }
      const std::vector<std::pair<std::string, std::string>> pairs =
          ColumnKeyPairs(op);
      const std::set<std::string> payload(op.build_payload.begin(),
                                          op.build_payload.end());
      if (probe.partitioned && build.partitioned) {
        // Shard-local only when some aligned key pair joins the two
        // partition-equivalence sets: matching rows then share a co-located
        // key value, so they live on the same shard. Any other key pairs
        // merely restrict the match further.
        bool aligned = false;
        for (const auto& [pk, bk] : pairs) {
          if (Contains(probe.partition_cols, pk) &&
              Contains(build.partition_cols, bk)) {
            aligned = true;
            break;
          }
        }
        if (!aligned) return false;
      }
      // The output row lands on the shard of its probe row (or of its build
      // row when only the build side partitions) — partitioned either way.
      out->partitioned = true;
      out->partition_cols.clear();
      // Probe columns all flow through; build columns survive via payload.
      if (probe.partitioned) {
        out->partition_cols = probe.partition_cols;
      }
      if (build.partitioned) {
        for (const std::string& col : build.partition_cols) {
          if (Contains(payload, col)) out->partition_cols.insert(col);
        }
      }
      // Equi-join equivalence: on every output row each key pair satisfies
      // probe_col == build_col, so partition-equivalence crosses the join in
      // both directions — a build key tied to a partition-equivalent probe
      // key is itself partition-equivalent (if its column survives), and
      // vice versa. This threads the proof through functionally tied
      // compound keys (e.g. the partsupp spine's ps keys equal the fact's
      // l keys on every joined row).
      for (const auto& [pk, bk] : pairs) {
        const bool pk_in =
            probe.partitioned && Contains(probe.partition_cols, pk);
        const bool bk_in =
            build.partitioned && Contains(build.partition_cols, bk);
        if (pk_in && Contains(payload, bk)) out->partition_cols.insert(bk);
        if (bk_in) out->partition_cols.insert(pk);
      }
      return true;
    }
    default:
      // Aggregate/sort/exchange below the pushdown point: no proof.
      return false;
  }
}

/// One attach join on the fact path: the fact-side child (the probe spine a
/// repartition of the attached relations would re-key) and the estimated
/// bytes of its output (est_rows x 8 bytes/col x output columns).
struct AttachPoint {
  const PhysicalOp* spine_node = nullptr;
  int64_t spine_bytes = 0;
};

/// Maps every table scanned off the fact path of `subtree` to its attach
/// point — the hash join on the path where that table's subtree meets the
/// spine. Joins high on the path sit above selective filters and earlier
/// joins, so their spine is far narrower than the raw fact scan; pricing a
/// repartition against the attach-join spine (not the whole fact table)
/// is what lets mid-spine repartitions beat broadcasts honestly. A table
/// attaching at several joins keeps the widest spine (conservative).
/// Tables in a subtree with no fact scan get no entry (callers fall back
/// to fact bytes).
std::map<std::string, AttachPoint> FindAttachPoints(const PhysicalOp& subtree,
                                                    const std::string& fact) {
  std::map<std::string, AttachPoint> out;
  std::vector<PathStep> path;
  if (!FindFactPath(subtree, fact, false, &path)) return out;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const PhysicalOp* node = path[i].node;
    if (node->kind != PhysicalOp::Kind::kHashJoin) continue;
    const PhysicalOp* fact_child = path[i + 1].node;
    const PhysicalOp* off_spine = path[i + 1].via_build
                                      ? node->child.get()
                                      : node->build_child.get();
    AttachPoint point;
    point.spine_node = fact_child;
    point.spine_bytes = static_cast<int64_t>(
        fact_child->est_rows * 8.0 *
        static_cast<double>(OutputColumns(*fact_child).size()));
    std::map<std::string, std::set<std::string>> scans;
    CollectScanColumns(*off_spine, &scans);
    for (const auto& [table, columns] : scans) {
      auto it = out.find(table);
      if (it == out.end() || point.spine_bytes > it->second.spine_bytes) {
        out[table] = point;
      }
    }
  }
  return out;
}

/// Deep-clones the tree, wrapping every non-fact scan that has an exchange
/// decision in an Exchange operator of the matching kind. The fact scan
/// stays bare — it is the pivot of the exchange, never itself moved. A
/// repartitioning relation's operator carries its own traffic only; the
/// shared spine relocation its plan may include is rendered once, as a
/// repartition Exchange wrapping `spine_node` (the fact-side child of the
/// paying relation's attach join) — the operator is an identity on a
/// device, the relocation is charged at the group level exactly as priced.
PhysicalOpPtr AnnotateExchanges(
    const PhysicalOp& op, const std::string& fact,
    const std::map<std::string, const model::ExchangeDecision*>& decisions,
    const PhysicalOp* spine_node, const std::string& spine_table,
    int64_t spine_bytes) {
  auto copy = std::make_shared<PhysicalOp>(op);
  if (op.child != nullptr) {
    copy->child = AnnotateExchanges(*op.child, fact, decisions, spine_node,
                                    spine_table, spine_bytes);
  }
  if (op.build_child != nullptr) {
    copy->build_child = AnnotateExchanges(*op.build_child, fact, decisions,
                                          spine_node, spine_table,
                                          spine_bytes);
  }
  PhysicalOpPtr result = std::move(copy);
  if (op.kind == PhysicalOp::Kind::kScan && op.table != fact) {
    auto it = decisions.find(op.table);
    if (it != decisions.end()) {
      const model::ExchangeDecision& d = *it->second;
      result = MakeExchange(std::move(result), KindForStrategy(d.strategy),
                            op.table, d.bytes - d.spine_bytes);
    }
  }
  if (&op == spine_node) {
    result = MakeExchange(std::move(result), ExchangeKind::kRepartition,
                          "spine:" + spine_table, spine_bytes);
  }
  return result;
}

}  // namespace

int64_t EstimatePartialGatherBytes(const PhysicalOp& agg, int num_shards) {
  int64_t per_row = 8 * static_cast<int64_t>(agg.group_by.size());
  for (const AggSpec& a : agg.aggregates) {
    switch (a.func) {
      case AggSpec::kSum:
      case AggSpec::kAvg:
        // Count + superaccumulator meta + digits.
        per_row += 8 * (2 + ExactFloat64Sum::kDigits);
        break;
      case AggSpec::kMin:
      case AggSpec::kMax:
        // Running value only — the partial wire format carries no count for
        // min/max (the combine never consults one).
        per_row += 8;
        break;
      case AggSpec::kCount:
        per_row += 8;  // count column
        break;
    }
  }
  const int64_t groups = static_cast<int64_t>(agg.est_rows);
  return per_row * groups * static_cast<int64_t>(num_shards - 1);
}

ShardedExecutor::ShardedExecutor(
    const tpch::Database* db, const ShardedDatabase* sharded, DeviceGroup group,
    EngineOptions options,
    const std::map<std::string, model::CalibrationTable>* calibrations)
    : db_(db),
      sharded_(sharded),
      group_(std::move(group)),
      options_(std::move(options)),
      catalog_(Catalog::FromDatabase(*db)),
      owned_tuning_cache_(options_.tuning_cache != nullptr
                              ? nullptr
                              : std::make_unique<model::TuningCache>()),
      tuning_cache_(options_.tuning_cache != nullptr
                        ? options_.tuning_cache
                        : owned_tuning_cache_.get()),
      link_(group_.link) {
  GPL_CHECK(db_ != nullptr && sharded_ != nullptr);
  GPL_CHECK(group_.size() == sharded_->num_shards())
      << "device group size " << group_.size() << " != shard count "
      << sharded_->num_shards();

  engines_.reserve(static_cast<size_t>(group_.size()));
  for (int i = 0; i < group_.size(); ++i) {
    const sim::DeviceSpec& device = group_.devices[static_cast<size_t>(i)];
    const model::CalibrationTable* calibration = nullptr;
    if (calibrations != nullptr) {
      auto it = calibrations->find(device.name);
      if (it != calibrations->end()) calibration = &it->second;
    }
    if (calibration == nullptr) {
      auto it = owned_calibrations_.find(device.name);
      if (it == owned_calibrations_.end()) {
        // One calibration per distinct device spec, shared by its shards.
        it = owned_calibrations_
                 .emplace(device.name,
                          model::CalibrationTable::Run(sim::Simulator(device)))
                 .first;
      }
      calibration = &it->second;
    }
    EngineOptions shard_options = options_;
    shard_options.device = device;
    shard_options.calibration = calibration;
    shard_options.tuning_cache = tuning_cache_;
    // Shard engines are leaves: strip anything that could re-shard.
    shard_options.sharded_db = nullptr;
    shard_options.device_calibrations = nullptr;
    shard_options.exec.shards = 1;
    shard_options.exec.device_list.clear();
    engines_.push_back(std::make_unique<Engine>(
        &sharded_->shards[static_cast<size_t>(i)], shard_options));
  }

  if (obs::MetricsRegistry* metrics = options_.metrics; metrics != nullptr) {
    broadcast_bytes_counter_ = metrics->GetCounter(
        "gpl_shard_exchange_bytes_total",
        "Bytes shipped between devices by exchange kind",
        {{"kind", "broadcast"}});
    shuffle_bytes_counter_ = metrics->GetCounter(
        "gpl_shard_exchange_bytes_total",
        "Bytes shipped between devices by exchange kind",
        {{"kind", "shuffle"}});
    slot_busy_gauges_.reserve(static_cast<size_t>(group_.size()));
    for (int i = 0; i < group_.size(); ++i) {
      slot_busy_gauges_.push_back(metrics->GetGauge(
          "gpl_shard_device_busy_ms",
          "Accumulated simulated busy time per device slot (ms)",
          {{"slot", std::to_string(i)},
           {"device", group_.devices[static_cast<size_t>(i)].name}}));
    }
  }
}

Result<PhysicalOpPtr> ShardedExecutor::PlanQuery(
    const LogicalQuery& query) const {
  PlanOptions plan_options;
  if (options_.partitioned_joins) {
    plan_options.partition_build_threshold_bytes =
        options_.partition_threshold_bytes > 0
            ? options_.partition_threshold_bytes
            : group_.devices.front().cache_bytes / 2;
    plan_options.num_partitions = options_.num_partitions;
  }
  return BuildPhysicalPlan(query, catalog_, plan_options);
}

Result<ShardedExecutor::SplitPlan> ShardedExecutor::SplitAndInject(
    const PhysicalOpPtr& plan) const {
  const std::string& fact = sharded_->fact_table();
  const int fact_scans = CountFactScans(*plan, fact);
  if (fact_scans != 1) {
    return Status::Unimplemented(
        "sharded execution requires exactly one scan of the partitioned fact "
        "table '" + fact + "'; plan has " + std::to_string(fact_scans));
  }
  std::vector<PathStep> path;
  GPL_CHECK(FindFactPath(*plan, fact, false, &path));

  // The shard subtree is the maximal subtree whose probe spine bottoms out
  // at the fact scan. Walking the root-to-fact path, it starts just past
  // the last blocker: an aggregate or sort node (only correct over the full
  // input, so it belongs to the merge), or a build edge (the subtree feeds
  // the build side of the join above, which the merge device re-builds from
  // the stitched rows — bucket chains depend only on insertion order, which
  // the rowid sort restores). Build subtrees hanging off the spine run on
  // every shard; co-partitioning makes their joins with the spine exact.
  size_t start = 0;
  for (size_t i = 0; i < path.size(); ++i) {
    if (path[i].via_build) start = i;
    if (path[i].node->kind == PhysicalOp::Kind::kAggregate ||
        path[i].node->kind == PhysicalOp::Kind::kSort) {
      start = i + 1;
    }
  }
  GPL_CHECK(start < path.size());  // the fact scan is never a blocker

  SplitPlan split;
  split.boundary = path[start].node;
  const PhysicalOp* fact_scan = path.back().node;
  split.rowid_column = fact_scan->alias.empty()
                           ? std::string(kRowIdColumn)
                           : fact_scan->alias + "_" + kRowIdColumn;

  // Clone the spine (build sides are shared, they are not modified) and
  // thread l_rowid from the fact scan to the shard-plan root: scans list it,
  // projects pass it through, filters/joins forward probe columns as-is.
  // Every edge below `start` is a probe edge, so the path slice is exactly
  // the subtree's child chain.
  PhysicalOpPtr cloned;
  PhysicalOp* parent = nullptr;
  for (size_t i = start; i < path.size(); ++i) {
    auto copy = std::make_shared<PhysicalOp>(*path[i].node);
    if (copy->kind == PhysicalOp::Kind::kProject) {
      copy->projections.push_back(
          {split.rowid_column, Col(split.rowid_column)});
    } else if (copy->kind == PhysicalOp::Kind::kScan) {
      copy->columns.push_back(kRowIdColumn);
    }
    if (parent == nullptr) {
      cloned = copy;
    } else {
      parent->child = copy;
    }
    parent = copy.get();
  }
  split.shard_plan = std::move(cloned);
  return split;
}

Result<model::ExchangePlan> ShardedExecutor::ExchangeForPlan(
    const PhysicalOp& shard_subtree) const {
  std::map<std::string, std::set<std::string>> scans;
  CollectScanColumns(shard_subtree, &scans);
  const std::map<std::string, AttachPoint> attach_points =
      FindAttachPoints(shard_subtree, sharded_->fact_table());

  int64_t fact_bytes = 0;
  std::vector<model::ExchangeInput> inputs;
  for (const auto& [table, columns] : scans) {
    const Table* base = db_->ByName(table);
    if (base == nullptr) return Status::NotFound("unknown table: " + table);
    int64_t bytes = 0;
    for (const std::string& column : columns) {
      if (column == kRowIdColumn) continue;  // synthesized, never shipped
      if (!base->HasColumn(column)) {
        return Status::NotFound("unknown column " + table + "." + column);
      }
      bytes += base->GetColumn(column).byte_size();
    }
    if (table == sharded_->fact_table()) {
      fact_bytes = bytes;
      continue;  // the pivot of the exchange, not itself exchanged
    }
    model::ExchangeInput input;
    input.table = table;
    input.bytes = bytes;
    input.rows = base->num_rows();
    input.co_partitioned = sharded_->IsPartitioned(table);
    auto it = attach_points.find(table);
    if (it != attach_points.end()) {
      input.spine_bytes = it->second.spine_bytes;
    }
    inputs.push_back(std::move(input));
  }
  // Memoized per plan: a service replaying the same sharded queries prices
  // the whole exchange once (TuningCache::ExchangePlanSignature) — the
  // shared spine relocation couples the per-relation decisions, so nothing
  // finer than the plan can be cached safely.
  return model::PlanExchange(inputs, group_.link, group_.size(), fact_bytes,
                             tuning_cache_);
}

Result<ShardedExecutor::DistributedPlan> ShardedExecutor::PlanDistributed(
    const PhysicalOpPtr& plan) const {
  DistributedPlan dist;

  // Partial-aggregate pushdown: the root spine must be [sort|project|filter]*
  // above one aggregate whose input subtree provably partitions.
  const PhysicalOp* agg = nullptr;
  for (const PhysicalOp* n = plan.get(); n != nullptr; n = n->child.get()) {
    if (n->kind == PhysicalOp::Kind::kAggregate) {
      agg = n;
      break;
    }
    if (n->kind != PhysicalOp::Kind::kSort &&
        n->kind != PhysicalOp::Kind::kProject &&
        n->kind != PhysicalOp::Kind::kFilter) {
      break;
    }
  }
  DistInfo info;
  if (agg != nullptr && agg->child != nullptr &&
      ClassifySubtree(*agg->child, *sharded_, &info) && info.partitioned) {
    GPL_ASSIGN_OR_RETURN(dist.exchange, ExchangeForPlan(*agg->child));
    std::map<std::string, const model::ExchangeDecision*> decisions;
    for (const model::ExchangeDecision& d : dist.exchange.decisions) {
      decisions.emplace(d.table, &d);
    }
    // The paying repartition's spine relocation renders as a repartition
    // Exchange wrapping the fact-side child of its attach join.
    const PhysicalOp* spine_node = nullptr;
    if (dist.exchange.has_spine) {
      const std::map<std::string, AttachPoint> attach_points =
          FindAttachPoints(*agg->child, sharded_->fact_table());
      auto it = attach_points.find(dist.exchange.spine_table);
      if (it != attach_points.end()) spine_node = it->second.spine_node;
    }
    auto partial = std::make_shared<PhysicalOp>(*agg);
    partial->child =
        AnnotateExchanges(*agg->child, sharded_->fact_table(), decisions,
                          spine_node, dist.exchange.spine_table,
                          dist.exchange.spine_bytes);
    partial->partial_aggregate = true;
    dist.gather_bytes = EstimatePartialGatherBytes(*agg, group_.size());
    dist.shard_plan = MakeExchange(std::move(partial), ExchangeKind::kGather,
                                   "partial-aggregates", dist.gather_bytes);
    dist.boundary = agg;
    dist.partial_aggregate = true;
    return dist;
  }

  // Fallback: thread l_rowid through the shard subtree and stitch rows.
  GPL_ASSIGN_OR_RETURN(SplitPlan split, SplitAndInject(plan));
  GPL_ASSIGN_OR_RETURN(dist.exchange, ExchangeForPlan(*split.boundary));
  std::map<std::string, const model::ExchangeDecision*> decisions;
  for (const model::ExchangeDecision& d : dist.exchange.decisions) {
    decisions.emplace(d.table, &d);
  }
  // The spine node must come from the tree AnnotateExchanges walks: the
  // rowid-threaded clone, not the original boundary subtree.
  const PhysicalOp* spine_node = nullptr;
  if (dist.exchange.has_spine) {
    const std::map<std::string, AttachPoint> attach_points =
        FindAttachPoints(*split.shard_plan, sharded_->fact_table());
    auto it = attach_points.find(dist.exchange.spine_table);
    if (it != attach_points.end()) spine_node = it->second.spine_node;
  }
  PhysicalOpPtr annotated = AnnotateExchanges(
      *split.shard_plan, sharded_->fact_table(), decisions, spine_node,
      dist.exchange.spine_table, dist.exchange.spine_bytes);
  // Rough gather estimate: the subtree's output rows (plus l_rowid) ship
  // from every non-resident shard; (N-1)/N of them live off-device.
  const int64_t cols =
      static_cast<int64_t>(OutputColumns(*split.shard_plan).size()) + 1;
  dist.gather_bytes = static_cast<int64_t>(
      split.boundary->est_rows * 8.0 * static_cast<double>(cols) *
      static_cast<double>(group_.size() - 1) /
      static_cast<double>(group_.size()));
  dist.shard_plan = MakeExchange(std::move(annotated), ExchangeKind::kGather,
                                 "shard-partials", dist.gather_bytes);
  dist.boundary = split.boundary;
  dist.rowid_column = split.rowid_column;
  return dist;
}

Result<DistributedExplain> ShardedExecutor::Explain(
    const LogicalQuery& query) const {
  DistributedExplain out;
  out.num_shards = group_.size();
  GPL_ASSIGN_OR_RETURN(PhysicalOpPtr plan, PlanQuery(query));
  if (group_.size() == 1) {
    // Single-device group: the plain plan runs as-is, nothing is exchanged.
    out.plan_text = PlanToString(*plan);
    return out;
  }
  GPL_ASSIGN_OR_RETURN(DistributedPlan dist, PlanDistributed(plan));
  out.partial_aggregate = dist.partial_aggregate;
  out.plan_text = PlanToString(*dist.shard_plan);
  out.exchanges.reserve(dist.exchange.decisions.size() + 2);
  for (const model::ExchangeDecision& d : dist.exchange.decisions) {
    // Report the relation's own traffic; the shared spine relocation gets
    // its own entry below. The payer's ms already covers both (one DMA), so
    // the spine entry reports 0 ms — entries still sum to the plan totals.
    out.exchanges.push_back(
        {d.table, KindForStrategy(d.strategy), d.bytes - d.spine_bytes, d.ms});
  }
  if (dist.exchange.has_spine) {
    out.exchanges.push_back({"spine:" + dist.exchange.spine_table,
                             ExchangeKind::kRepartition,
                             dist.exchange.spine_bytes, 0.0});
  }
  ExchangeOpReport gather;
  gather.table =
      dist.partial_aggregate ? "partial-aggregates" : "shard-partials";
  gather.kind = ExchangeKind::kGather;
  gather.predicted_bytes = dist.gather_bytes;
  const int senders = group_.size() - 1;
  if (senders > 0 && dist.gather_bytes > 0) {
    sim::Link probe(group_.link);
    gather.predicted_ms = static_cast<double>(senders) *
                          probe.TransferMs(dist.gather_bytes / senders);
  }
  out.exchanges.push_back(std::move(gather));
  return out;
}

Result<QueryResult> ShardedExecutor::Execute(const LogicalQuery& query) {
  return Execute(query, options_.exec);
}

Result<QueryResult> ShardedExecutor::ExecuteSingle(const LogicalQuery& query,
                                                   const ExecOptions& exec) {
  // A 1-device group's shard holds the full database, so the plain
  // single-device path is exact: no partitioning, no rowid stitch, no
  // exchange — the sharding tax is structurally zero.
  ExecOptions single = exec;
  single.shards = 1;
  single.device_list.clear();
  GPL_ASSIGN_OR_RETURN(QueryResult result,
                       engines_.front()->Execute(query, single));
  QueryMetrics& m = result.metrics;
  m.num_shards = 1;
  m.device_elapsed_ms = {m.elapsed_ms};
  m.device_utilization = {1.0};
  if (!slot_busy_gauges_.empty()) {
    obs::Add(slot_busy_gauges_.front(), m.elapsed_ms);
  }
  return result;
}

Result<QueryResult> ShardedExecutor::Execute(const LogicalQuery& query,
                                             const ExecOptions& exec) {
  if (exec.cancel != nullptr) GPL_RETURN_NOT_OK(exec.cancel->Check());
  if (group_.size() == 1) return ExecuteSingle(query, exec);
  const sim::DeviceSpec& device0 = group_.devices.front();

  // Plan once, on the unpartitioned database's statistics: every shard runs
  // the same exchange-annotated plan, exactly as a coordinator would ship it.
  const auto plan_start = std::chrono::steady_clock::now();
  GPL_ASSIGN_OR_RETURN(PhysicalOpPtr plan, PlanQuery(query));
  GPL_ASSIGN_OR_RETURN(DistributedPlan dist, PlanDistributed(plan));
  const double plan_wall_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - plan_start)
                                  .count();

  // Per-shard execution. Serial on the host (results are simulated, wall
  // clock is not the metric); the shared fault injector and cancellation
  // token are polled in shard order, keeping fault schedules deterministic.
  ExecOptions shard_exec = exec;
  shard_exec.trace = nullptr;  // the executor emits the group-level timeline
  shard_exec.shards = 1;       // shard engines never re-shard
  shard_exec.device_list.clear();
  std::vector<QueryResult> partials;
  partials.reserve(static_cast<size_t>(group_.size()));
  for (int i = 0; i < group_.size(); ++i) {
    if (exec.cancel != nullptr) GPL_RETURN_NOT_OK(exec.cancel->Check());
    GPL_ASSIGN_OR_RETURN(
        QueryResult partial,
        engines_[static_cast<size_t>(i)]->ExecutePlan(dist.shard_plan,
                                                      shard_exec));
    partials.push_back(std::move(partial));
  }

  // Exchange: the per-relation broadcasts (priced by the Exchange operators'
  // cost model) plus gathering every non-resident partial to device 0.
  link_.Record(dist.exchange.total_bytes, dist.exchange.total_ms);
  int64_t shuffle_bytes = 0;
  double shuffle_ms = 0.0;
  for (size_t i = 1; i < partials.size(); ++i) {
    const int64_t bytes = partials[i].table.byte_size();
    shuffle_bytes += bytes;
    shuffle_ms += link_.Transfer(bytes);
  }
  const double exchange_ms = dist.exchange.total_ms + shuffle_ms;

  // Group-level timeline: one span per device (they run concurrently from
  // the segment origin), then the serialized exchange, then the merge
  // kernels appended by RunKernelBatch below.
  const double max_device_ms =
      std::max_element(partials.begin(), partials.end(),
                       [](const QueryResult& a, const QueryResult& b) {
                         return a.metrics.elapsed_ms < b.metrics.elapsed_ms;
                       })
          ->metrics.elapsed_ms;
  if (exec.trace != nullptr) {
    for (int i = 0; i < group_.size(); ++i) {
      const sim::DeviceSpec& device = group_.devices[static_cast<size_t>(i)];
      const int track = exec.trace->TrackId(
          "device " + std::to_string(i) + " (" + device.name + ")");
      exec.trace->AddSpan(
          track, query.name + " shard " + std::to_string(i), "shard.exec", 0.0,
          MsToCycles(device0, partials[static_cast<size_t>(i)]
                                  .metrics.elapsed_ms),
          {{"elapsed_ms",
            std::to_string(partials[static_cast<size_t>(i)]
                               .metrics.elapsed_ms)}});
    }
    const int link_track = exec.trace->TrackId("exchange (" + link_.spec().name + ")");
    exec.trace->AddSpan(
        link_track, query.name + " exchange", "shard.exchange",
        MsToCycles(device0, max_device_ms),
        MsToCycles(device0, max_device_ms + exchange_ms),
        {{"broadcast_bytes", std::to_string(dist.exchange.total_bytes)},
         {"shuffle_bytes", std::to_string(shuffle_bytes)},
         {"merge", dist.partial_aggregate ? "combine" : "stitch"}});
    exec.trace->AdvanceOrigin(MsToCycles(device0, max_device_ms + exchange_ms));
  }

  // Merge on device 0, then replay the rest of the original plan with the
  // merged table substituted at the boundary (KbeEngine::ExecuteWithInput —
  // the same kernel code a single device runs, charged on device 0's
  // simulator). Tables above the boundary are read from the unpartitioned
  // source, which is what device 0 would hold as the coordinator.
  const sim::Simulator& sim0 = engines_.front()->simulator();
  sim::HwCounters merge_counters;
  int64_t stitched_rows = 0;
  Table substitute;
  if (dist.partial_aggregate) {
    // Combine-merge: fold the per-shard partial-aggregate states per group.
    // Exact and order-independent (superaccumulator digits for sums), so
    // the result is bit-identical to a single device's aggregate output.
    std::vector<Table> partial_tables;
    partial_tables.reserve(partials.size());
    int64_t rows_in = 0;
    int64_t bytes_in = 0;
    for (QueryResult& partial : partials) {
      rows_in += partial.table.num_rows();
      bytes_in += partial.table.byte_size();
      partial_tables.push_back(std::move(partial.table));
    }
    GPL_ASSIGN_OR_RETURN(
        Table combined,
        CombinePartialAggregates(dist.boundary->group_by,
                                 dist.boundary->aggregates, partial_tables));
    sim::KernelLaunch combine;
    combine.desc = AggregateTiming(
        1.0, static_cast<int>(dist.boundary->aggregates.size()));
    combine.desc.name = "k_shard_combine";
    combine.rows_in = rows_in;
    combine.bytes_in = bytes_in;
    combine.rows_out = combined.num_rows();
    combine.bytes_out = combined.byte_size();
    GPL_ASSIGN_OR_RETURN(
        const sim::SimResult r,
        sim0.RunKernelBatch(combine, 0, exec.trace, exec.fault));
    merge_counters.Accumulate(r.counters);
    substitute = std::move(combined);
  } else {
    // Stitch-merge: concatenate the partials (schemas and dictionaries are
    // shared across shards), stable-sort by the injected row id, drop it.
    // The merged table equals — row for row — what a single device would
    // feed the boundary's parent.
    Table merged = std::move(partials[0].table);
    for (size_t i = 1; i < partials.size(); ++i) {
      GPL_RETURN_NOT_OK(merged.AppendTable(partials[i].table));
    }
    stitched_rows = merged.num_rows();
    const int64_t rowid_index = merged.ColumnIndex(dist.rowid_column);
    if (rowid_index < 0) {
      return Status::Internal("sharded partial result lost the '" +
                              dist.rowid_column + "' column");
    }
    const int64_t merged_bytes_with_rowid = merged.byte_size();
    const Column& rowid = merged.ColumnAt(rowid_index);
    std::vector<int64_t> order(static_cast<size_t>(merged.num_rows()));
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<int64_t>(i);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&rowid](int64_t a, int64_t b) {
                       return rowid.Int64At(a) < rowid.Int64At(b);
                     });
    merged = merged.Gather(order);
    merged = DropColumn(merged, dist.rowid_column);

    sim::KernelLaunch gather;
    gather.desc = ScatterTiming(static_cast<int>(merged.num_columns() + 1));
    gather.desc.name = "k_shard_gather";
    gather.rows_in = merged.num_rows();
    gather.bytes_in = merged_bytes_with_rowid;
    gather.rows_out = merged.num_rows();
    gather.bytes_out = merged.byte_size();
    GPL_ASSIGN_OR_RETURN(
        const sim::SimResult r,
        sim0.RunKernelBatch(gather, 0, exec.trace, exec.fault));
    merge_counters.Accumulate(r.counters);
    substitute = std::move(merged);
  }
  KbeEngine merge_engine(db_, &sim0);
  GPL_ASSIGN_OR_RETURN(
      QueryResult merge_result,
      merge_engine.ExecuteWithInput(plan, dist.boundary, std::move(substitute),
                                    exec));
  merge_counters.Accumulate(merge_result.metrics.counters);
  const double merge_ms = device0.CyclesToMs(merge_counters.elapsed_cycles);
  Table current = std::move(merge_result.table);

  // Metrics: counters sum every device's work plus the merge; elapsed is
  // the parallel makespan. The breakdown is rescaled so its parts still sum
  // to the makespan.
  QueryResult result;
  result.table = std::move(current);
  QueryMetrics& m = result.metrics;
  for (const QueryResult& partial : partials) {
    m.counters.Accumulate(partial.metrics.counters);
    m.tune_wall_ms += partial.metrics.tune_wall_ms;
    m.tuning_cache_hits += partial.metrics.tuning_cache_hits;
    m.tuning_cache_misses += partial.metrics.tuning_cache_misses;
    m.degraded_segments += partial.metrics.degraded_segments;
    m.fused_segments += partial.metrics.fused_segments;
    m.fused_launches_saved += partial.metrics.fused_launches_saved;
    m.fused_bytes_avoided += partial.metrics.fused_bytes_avoided;
    m.device_elapsed_ms.push_back(partial.metrics.elapsed_ms);
    m.predicted_ms = std::max(m.predicted_ms, partial.metrics.predicted_ms);
  }
  m.counters.Accumulate(merge_counters);
  m.Finalize(device0);
  const double serial_ms = m.elapsed_ms;
  m.elapsed_ms = max_device_ms + exchange_ms + merge_ms;
  if (serial_ms > 0.0) {
    const double scale = m.elapsed_ms / serial_ms;
    m.compute_ms *= scale;
    m.mem_ms *= scale;
    m.dc_ms *= scale;
    m.delay_ms *= scale;
    m.other_ms *= scale;
  }
  if (m.predicted_ms > 0.0) m.predicted_ms += exchange_ms + merge_ms;
  m.plan_wall_ms = plan_wall_ms;
  m.num_shards = group_.size();
  m.partial_combine = dist.partial_aggregate;
  m.stitched_rows = stitched_rows;
  m.broadcast_bytes = dist.exchange.total_bytes;
  m.exchange_all_broadcast_bytes = dist.exchange.all_broadcast_bytes;
  m.shuffle_bytes = shuffle_bytes;
  m.exchange_bytes = dist.exchange.total_bytes + shuffle_bytes;
  m.exchange_ms = exchange_ms;
  m.merge_ms = merge_ms;
  for (double device_ms : m.device_elapsed_ms) {
    m.device_utilization.push_back(
        m.elapsed_ms > 0.0 ? device_ms / m.elapsed_ms : 0.0);
  }
  obs::Inc(broadcast_bytes_counter_,
           static_cast<uint64_t>(dist.exchange.total_bytes));
  obs::Inc(shuffle_bytes_counter_, static_cast<uint64_t>(shuffle_bytes));
  for (size_t i = 0;
       i < slot_busy_gauges_.size() && i < m.device_elapsed_ms.size(); ++i) {
    obs::Add(slot_busy_gauges_[i], m.device_elapsed_ms[i]);
  }
  GPL_SLOG(Info, "shard")
      .Field("query", query.name)
      .Field("group", group_.ToString())
      .Field("merge", dist.partial_aggregate ? "combine" : "stitch")
      .Field("sim_ms", m.elapsed_ms)
      .Field("max_device_ms", max_device_ms)
      .Field("exchange_ms", exchange_ms)
      .Field("merge_ms", merge_ms)
      << "sharded query executed";
  return result;
}

}  // namespace shard
}  // namespace gpl
