#include "shard/device_group.h"

namespace gpl {
namespace shard {

DeviceGroup DeviceGroup::Homogeneous(const sim::DeviceSpec& spec, int n,
                                     sim::LinkSpec link) {
  DeviceGroup group;
  group.devices.assign(static_cast<size_t>(n < 1 ? 1 : n), spec);
  group.link = std::move(link);
  return group;
}

std::string DeviceGroup::ToString() const {
  if (devices.empty()) return "(empty group)";
  bool homogeneous = true;
  for (const sim::DeviceSpec& d : devices) {
    if (d.name != devices.front().name) {
      homogeneous = false;
      break;
    }
  }
  std::string out;
  if (homogeneous) {
    out = devices.front().name + " x" + std::to_string(devices.size());
  } else {
    for (size_t i = 0; i < devices.size(); ++i) {
      if (i > 0) out += "+";
      out += devices[i].name;
    }
  }
  out += " over " + link.name;
  return out;
}

}  // namespace shard
}  // namespace gpl
