#ifndef GPL_SHARD_PARTITIONER_H_
#define GPL_SHARD_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "shard/partition_scheme.h"
#include "tpch/dbgen.h"

namespace gpl {
namespace shard {

struct PartitionOptions {
  int num_shards = 2;
  PartitionScheme scheme = PartitionScheme::kHash;
};

/// Name of the injected global-row-index column on each shard's lineitem.
/// The sharded executor threads it through per-shard plans so partial
/// results can be stitched back into exact fact-table row order (the key to
/// bit-identical float aggregation; see shard/sharded_executor.h).
inline constexpr char kRowIdColumn[] = "l_rowid";

/// A database split into N per-shard databases. Partitioned tables hold
/// disjoint row subsets whose relative order matches the source table;
/// broadcast tables are full copies. All shards share the source database's
/// string dictionaries (columns copy data but share the Dictionary
/// instance), so dictionary codes stay comparable across shards and with
/// the unpartitioned truth.
struct ShardedDatabase {
  PartitionOptions options;
  std::vector<tpch::Database> shards;

  /// The partitioned fact table ("lineitem") first, then any co-partitioned
  /// companions ("orders" under kHash).
  std::vector<std::string> partitioned_tables;

  /// Bytes of partitioned tables summed across shards (== one source copy).
  int64_t partitioned_bytes = 0;
  /// Bytes of one broadcast copy (each shard holds this much duplicated).
  int64_t broadcast_bytes = 0;

  int num_shards() const { return static_cast<int>(shards.size()); }
  const std::string& fact_table() const { return partitioned_tables.front(); }
  bool IsPartitioned(const std::string& table) const;
};

/// Shard index of a join key under the hash scheme (exposed for tests and
/// for co-partitioning additional tables). Deterministic splitmix-style
/// finalizer so skewed key ranges still spread evenly.
int ShardOfKey(int64_t key, int num_shards);

/// Splits `db` into `options.num_shards` per-shard databases. The source
/// must outlive the result only through its shared dictionaries (table data
/// is copied). Fails on num_shards < 1.
Result<ShardedDatabase> PartitionDatabase(const tpch::Database& db,
                                          const PartitionOptions& options);

}  // namespace shard
}  // namespace gpl

#endif  // GPL_SHARD_PARTITIONER_H_
