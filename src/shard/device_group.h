#ifndef GPL_SHARD_DEVICE_GROUP_H_
#define GPL_SHARD_DEVICE_GROUP_H_

#include <string>
#include <vector>

#include "sim/device.h"
#include "sim/link.h"

namespace gpl {
namespace shard {

/// A group of simulated devices executing one sharded query — homogeneous
/// (N copies of one DeviceSpec) or mixed — connected by one interconnect
/// link. Device i executes shard i; the link prices dimension broadcast and
/// partial-result shuffle (see model/exchange_model.h).
struct DeviceGroup {
  std::vector<sim::DeviceSpec> devices;
  sim::LinkSpec link;

  int size() const { return static_cast<int>(devices.size()); }

  /// N identical devices over `link`.
  static DeviceGroup Homogeneous(const sim::DeviceSpec& spec, int n,
                                 sim::LinkSpec link = {});

  /// "amd x4 over pcie3" / "amd+nvidia over pcie3" (for banners and traces).
  std::string ToString() const;
};

}  // namespace shard
}  // namespace gpl

#endif  // GPL_SHARD_DEVICE_GROUP_H_
