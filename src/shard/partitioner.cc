#include "shard/partitioner.h"

#include <utility>

#include "common/logging.h"

namespace gpl {
namespace shard {

namespace {

/// Gathers the rows listed in `indices` from `table`, preserving order.
Table GatherRows(const Table& table, const std::vector<int64_t>& indices) {
  Table out = table.Gather(indices);
  out.set_name(table.name());
  return out;
}

/// The per-shard row-index lists of one partitioned table.
std::vector<std::vector<int64_t>> SplitIndices(const Table& table,
                                               const std::string& key_column,
                                               const PartitionOptions& options) {
  const int64_t n = table.num_rows();
  std::vector<std::vector<int64_t>> indices(
      static_cast<size_t>(options.num_shards));
  for (auto& v : indices) v.reserve(static_cast<size_t>(n / options.num_shards + 1));

  if (options.scheme == PartitionScheme::kRange) {
    // Contiguous, balanced row ranges: shard s gets [s*n/N, (s+1)*n/N).
    for (int s = 0; s < options.num_shards; ++s) {
      const int64_t begin = n * s / options.num_shards;
      const int64_t end = n * (s + 1) / options.num_shards;
      for (int64_t i = begin; i < end; ++i) {
        indices[static_cast<size_t>(s)].push_back(i);
      }
    }
    return indices;
  }

  const Column& key = table.GetColumn(key_column);
  for (int64_t i = 0; i < n; ++i) {
    const int s = ShardOfKey(key.AsInt64(i), options.num_shards);
    indices[static_cast<size_t>(s)].push_back(i);
  }
  return indices;
}

}  // namespace

const char* PartitionSchemeName(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kHash:
      return "hash";
    case PartitionScheme::kRange:
      return "range";
  }
  return "?";
}

Result<PartitionScheme> ParsePartitionScheme(std::string_view name) {
  if (name == "hash") return PartitionScheme::kHash;
  if (name == "range") return PartitionScheme::kRange;
  return Status::InvalidArgument("unknown partition scheme: '" +
                                 std::string(name) + "' (want hash|range)");
}

std::string HashPartitionKeyColumn(const std::string& table) {
  // Matches PartitionDatabase's kHash split below: lineitem by l_orderkey,
  // orders co-partitioned by o_orderkey.
  if (table == "lineitem") return "l_orderkey";
  if (table == "orders") return "o_orderkey";
  return "";
}

int ShardOfKey(int64_t key, int num_shards) {
  GPL_DCHECK(num_shards >= 1);
  // splitmix64 finalizer: adjacent/skewed keys still spread evenly.
  uint64_t h = static_cast<uint64_t>(key);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h = h ^ (h >> 31);
  return static_cast<int>(h % static_cast<uint64_t>(num_shards));
}

bool ShardedDatabase::IsPartitioned(const std::string& table) const {
  for (const std::string& t : partitioned_tables) {
    if (t == table) return true;
  }
  return false;
}

Result<ShardedDatabase> PartitionDatabase(const tpch::Database& db,
                                          const PartitionOptions& options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument(
        "num_shards must be >= 1, got " + std::to_string(options.num_shards));
  }
  if (db.lineitem.HasColumn(kRowIdColumn)) {
    return Status::InvalidArgument(
        "database already carries a '" + std::string(kRowIdColumn) +
        "' column; partitioning an already-partitioned shard is not supported");
  }

  ShardedDatabase out;
  out.options = options;
  out.partitioned_tables = {"lineitem"};
  if (options.scheme == PartitionScheme::kHash) {
    out.partitioned_tables.push_back("orders");
  }

  const std::vector<std::vector<int64_t>> lineitem_split =
      SplitIndices(db.lineitem, "l_orderkey", options);
  std::vector<std::vector<int64_t>> orders_split;
  if (options.scheme == PartitionScheme::kHash) {
    orders_split = SplitIndices(db.orders, "o_orderkey", options);
  }

  out.shards.reserve(static_cast<size_t>(options.num_shards));
  for (int s = 0; s < options.num_shards; ++s) {
    tpch::Database shard;
    // Broadcast tables: full copies (column data copied, dictionaries
    // shared, so codes stay comparable across shards).
    shard.region = db.region;
    shard.nation = db.nation;
    shard.supplier = db.supplier;
    shard.customer = db.customer;
    shard.part = db.part;
    shard.partsupp = db.partsupp;
    shard.orders = options.scheme == PartitionScheme::kHash
                       ? GatherRows(db.orders,
                                    orders_split[static_cast<size_t>(s)])
                       : db.orders;

    // The fact partition, tagged with each row's index in the source table.
    const std::vector<int64_t>& rows = lineitem_split[static_cast<size_t>(s)];
    shard.lineitem = GatherRows(db.lineitem, rows);
    Column rowid(DataType::kInt64);
    rowid.Reserve(static_cast<int64_t>(rows.size()));
    for (int64_t r : rows) rowid.AppendInt64(r);
    GPL_RETURN_NOT_OK(
        shard.lineitem.AddColumn(kRowIdColumn, std::move(rowid)));

    out.shards.push_back(std::move(shard));
  }

  for (const std::string& name : out.partitioned_tables) {
    const Table* t = db.ByName(name);
    GPL_CHECK(t != nullptr);
    out.partitioned_bytes += t->byte_size();
  }
  out.broadcast_bytes = db.byte_size() - out.partitioned_bytes;
  return out;
}

}  // namespace shard
}  // namespace gpl
