#ifndef GPL_SHARD_PARTITION_SCHEME_H_
#define GPL_SHARD_PARTITION_SCHEME_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace gpl {
namespace shard {

/// How the fact table is split across shards. Lives in its own
/// dependency-light header so ExecOptions (engine/, public API layer) can
/// name a scheme without pulling in the partitioner and tpch/dbgen.
enum class PartitionScheme {
  /// Hash lineitem by l_orderkey and co-partition orders by o_orderkey, so
  /// the lineitem-orders join is shard-local; every other table is broadcast
  /// (copied to every shard).
  kHash,
  /// Split lineitem into contiguous row ranges; everything else (including
  /// orders) is broadcast.
  kRange,
};

const char* PartitionSchemeName(PartitionScheme scheme);

/// Parses "hash" | "range" (the CLI/bench flag spellings).
Result<PartitionScheme> ParsePartitionScheme(std::string_view name);

/// Partition-key column of `table` under the kHash scheme, or "" when the
/// table is not hash-partitioned. The distribution classifier uses this to
/// prove co-partitioned joins shard-local.
std::string HashPartitionKeyColumn(const std::string& table);

}  // namespace shard
}  // namespace gpl

#endif  // GPL_SHARD_PARTITION_SCHEME_H_
