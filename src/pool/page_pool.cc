#include "pool/page_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace gpl {
namespace pool {

PagePool::PagePool(const PagePoolOptions& options) : options_(options) {
  GPL_CHECK(options_.page_bytes > 0);
  const int64_t num_pages =
      options_.capacity_bytes > 0 ? options_.capacity_bytes / options_.page_bytes
                                  : 0;
  pages_.resize(static_cast<size_t>(num_pages));
  free_.reserve(pages_.size());
  for (int64_t id = num_pages - 1; id >= 0; --id) {
    free_.push_back(static_cast<int32_t>(id));
  }
  stats_.page_bytes = options_.page_bytes;
  stats_.total_pages = num_pages;
  stats_.free_pages = num_pages;
}

int64_t PagePool::PagesFor(int64_t payload_bytes) const {
  if (payload_bytes <= 0) return 0;
  return (payload_bytes + options_.page_bytes - 1) / options_.page_bytes;
}

void PagePool::TakePagesLocked(int64_t num_pages, int64_t payload_bytes,
                               PageRun* run) {
  int64_t remaining = payload_bytes;
  for (int64_t p = 0; p < num_pages; ++p) {
    const int32_t id = free_.back();
    free_.pop_back();
    Page& page = pages_[static_cast<size_t>(id)];
    page.refs = 1;
    page.payload = std::min(remaining, options_.page_bytes);
    remaining -= page.payload;
    stats_.payload_bytes += page.payload;
    run->pages.push_back(id);
  }
  stats_.used_pages += num_pages;
  stats_.free_pages -= num_pages;
  stats_.waste_bytes =
      stats_.used_pages * options_.page_bytes - stats_.payload_bytes;
}

std::optional<PageRun> PagePool::Acquire(int64_t payload_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t need = PagesFor(payload_bytes);
  if (need > static_cast<int64_t>(free_.size())) {
    ++stats_.failures;
    return std::nullopt;
  }
  PageRun run;
  run.payload_bytes = std::max<int64_t>(payload_bytes, 0);
  TakePagesLocked(need, run.payload_bytes, &run);
  ++stats_.acquires;
  return run;
}

std::optional<PageRun> PagePool::Extend(const PageRun& prefix,
                                        int64_t total_payload_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  GPL_CHECK(total_payload_bytes >= prefix.payload_bytes);
  // The prefix's pages are immutable once acquired (they may be shared), so
  // the extension starts on a fresh page: tail pages cover the full payload
  // delta and the prefix's last-page slack stays as waste.
  const int64_t tail_payload = total_payload_bytes - prefix.payload_bytes;
  const int64_t need = PagesFor(tail_payload);
  if (need > static_cast<int64_t>(free_.size())) {
    ++stats_.failures;
    return std::nullopt;
  }
  PageRun run;
  run.payload_bytes = total_payload_bytes;
  run.pages = prefix.pages;
  for (const int32_t id : prefix.pages) {
    ++pages_[static_cast<size_t>(id)].refs;
  }
  TakePagesLocked(need, tail_payload, &run);
  ++stats_.extends;
  return run;
}

PageRun PagePool::Share(const PageRun& run) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const int32_t id : run.pages) {
    Page& page = pages_[static_cast<size_t>(id)];
    GPL_CHECK(page.refs > 0);
    ++page.refs;
  }
  ++stats_.shares;
  return run;
}

void PagePool::Release(const PageRun& run) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int32_t> freed;
  for (const int32_t id : run.pages) {
    Page& page = pages_[static_cast<size_t>(id)];
    GPL_CHECK(page.refs > 0);
    if (--page.refs == 0) {
      stats_.payload_bytes -= page.payload;
      page.payload = 0;
      freed.push_back(id);
    }
  }
  if (!freed.empty()) {
    stats_.used_pages -= static_cast<int64_t>(freed.size());
    stats_.free_pages += static_cast<int64_t>(freed.size());
    free_.insert(free_.end(), freed.begin(), freed.end());
    // Keep the free list sorted descending so allocation stays lowest-first
    // deterministic regardless of release order.
    std::sort(free_.begin(), free_.end(), std::greater<int32_t>());
  }
  stats_.waste_bytes =
      stats_.used_pages * options_.page_bytes - stats_.payload_bytes;
  ++stats_.releases;
}

PagePoolStats PagePool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace pool
}  // namespace gpl
