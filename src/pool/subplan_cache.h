#ifndef GPL_POOL_SUBPLAN_CACHE_H_
#define GPL_POOL_SUBPLAN_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/registry.h"
#include "pool/page_pool.h"

namespace gpl {
namespace pool {

/// Configuration of a SubplanCache.
struct SubplanCacheOptions {
  /// Budget of the backing PagePool. 0 disables retention entirely: nothing
  /// is ever kept after its in-flight consumers finish, but concurrent
  /// queries computing the same key still attach to the one in-flight
  /// compute (shared-scan batching needs no retention).
  int64_t capacity_bytes = 64ll * 1024 * 1024;
  int64_t page_bytes = 64 * 1024;
  /// Cost-aware eviction looks at the `eviction_window` least-recently-used
  /// entries and evicts the one that is cheapest to recompute and least
  /// re-used (min cost_ms * (1 + hits)); 1 degenerates to plain LRU.
  int eviction_window = 4;
};

/// Counters of a SubplanCache (one consistent snapshot). `hits` includes
/// `attaches` — the subset of hits that were served by waiting on another
/// query's in-flight compute rather than by a retained entry.
struct SubplanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t attaches = 0;
  uint64_t inserts = 0;
  uint64_t rejected = 0;  ///< publishes not retained (no pages after eviction)
  uint64_t evictions = 0;
  int64_t bytes = 0;    ///< logical payload bytes of retained entries
  int64_t entries = 0;  ///< retained entries
  /// Shared-scan accounting: base-table rows materialized by actual scan
  /// computes vs. rows served to queries that attached to a cached or
  /// in-flight scan instead of issuing their own.
  uint64_t scan_rows_scanned = 0;
  uint64_t scan_rows_shared = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// A service-wide cache of materialized subplan data — build-side hash
/// tables, decoded scan views, whole segment results — keyed by exact plan
/// signatures (the executor composes them; see GplExecutor). Payloads are
/// type-erased shared_ptrs: the cache owns lifetime and budget, the executor
/// owns meaning. Page accounting goes through a PagePool so overlapping
/// entries can share physical pages (`shared_units`) and occupancy/waste are
/// observable.
///
/// Concurrency protocol: Acquire() either returns a hit, or blocks while
/// another thread computes the same key, or makes the caller the *owner* of
/// the compute. An owner MUST call Publish() or Abort() exactly once;
/// waiters woken by Publish get the payload (an "attach"), waiters woken by
/// Abort retry and may become owners themselves. Eviction never invalidates
/// a served payload — consumers hold shared_ptr pins; eviction only drops
/// the cache's own reference and its pages.
class SubplanCache {
 public:
  using Payload = std::shared_ptr<const void>;

  /// Outcome of Acquire.
  struct Acquisition {
    bool hit = false;    ///< payload is valid (retained entry or attach)
    bool owner = false;  ///< caller must Publish() or Abort() this key
    Payload payload;
  };

  /// A pool-sharing unit of an entry: (unit key, payload bytes). Entries
  /// publishing the same unit key share one page run (refcounted) instead of
  /// each acquiring their own — e.g. two scan views over the same base
  /// column.
  struct SharedUnit {
    std::string key;
    int64_t bytes = 0;
  };

  explicit SubplanCache(const SubplanCacheOptions& options);
  ~SubplanCache();

  SubplanCache(const SubplanCache&) = delete;
  SubplanCache& operator=(const SubplanCache&) = delete;

  Acquisition Acquire(const std::string& key);

  /// Publishes the owner's computed payload: wakes waiters (they all receive
  /// `payload` regardless of retention) and tries to retain the entry,
  /// evicting cold entries for pages as needed. `bytes` is the logical size
  /// charged; `cost_ms` the host cost to recompute (eviction scoring). When
  /// `shared_units` is non-empty the pool charge is per unit with sharing;
  /// otherwise one dedicated run of `bytes`.
  void Publish(const std::string& key, Payload payload, int64_t bytes,
               double cost_ms, const std::vector<SharedUnit>& shared_units = {});

  /// Abandons the owner's compute (error/cancellation): wakes waiters to
  /// retry. The failed status propagates only through the owner.
  void Abort(const std::string& key);

  /// Shared-scan accounting hook (kept here so every executor over this
  /// cache feeds one service-wide view).
  void AddScanRows(bool shared, int64_t rows);

  SubplanCacheStats stats() const;
  PagePoolStats pool_stats() const { return pool_.stats(); }

  /// Drops every retained entry (in-flight computes are unaffected).
  void Clear();

  /// Registers occupancy/waste/traffic gauges on `metrics` and returns the
  /// callback ids; the caller removes them (RemoveCallback) before this
  /// cache is destroyed. `prefix` names the family, e.g. "gpl_subplan".
  std::vector<uint64_t> RegisterGauges(obs::MetricsRegistry* metrics,
                                       const std::string& prefix);

 private:
  struct UnitRecord {
    PageRun run;
    int users = 0;
  };
  struct Entry {
    Payload payload;
    int64_t bytes = 0;
    double cost_ms = 0.0;
    uint64_t hits = 0;
    PageRun run;                         ///< dedicated run (unit_keys empty)
    std::vector<std::string> unit_keys;  ///< shared units charged instead
    std::list<std::string>::iterator lru_it;
  };
  struct InFlight {
    bool done = false;
    bool published = false;
    Payload payload;
  };

  /// Acquires `bytes` of pages, evicting per policy until it fits or the
  /// cache is out of victims. Empty optional = cannot fit.
  std::optional<PageRun> AcquireWithEvictionLocked(int64_t bytes);
  /// Evicts the lowest-score entry among the `eviction_window` LRU tail.
  /// False when nothing is evictable.
  bool EvictOneLocked();
  void DropEntryLocked(const std::string& key);

  const SubplanCacheOptions options_;
  PagePool pool_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, Entry> entries_;
  std::unordered_map<std::string, UnitRecord> units_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;
  std::list<std::string> lru_;  ///< front = most recently used
  SubplanCacheStats stats_;
};

}  // namespace pool
}  // namespace gpl

#endif  // GPL_POOL_SUBPLAN_CACHE_H_
