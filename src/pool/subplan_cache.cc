#include "pool/subplan_cache.h"

#include <algorithm>

#include "common/logging.h"

namespace gpl {
namespace pool {

namespace {
PagePoolOptions PoolOptions(const SubplanCacheOptions& options) {
  PagePoolOptions po;
  po.page_bytes = options.page_bytes;
  po.capacity_bytes = options.capacity_bytes;
  return po;
}
}  // namespace

SubplanCache::SubplanCache(const SubplanCacheOptions& options)
    : options_(options), pool_(PoolOptions(options)) {}

SubplanCache::~SubplanCache() = default;

SubplanCache::Acquisition SubplanCache::Acquire(const std::string& key) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      Entry& entry = it->second;
      ++entry.hits;
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, entry.lru_it);
      Acquisition acq;
      acq.hit = true;
      acq.payload = entry.payload;
      return acq;
    }
    auto fit = inflight_.find(key);
    if (fit == inflight_.end()) {
      inflight_.emplace(key, std::make_shared<InFlight>());
      ++stats_.misses;
      Acquisition acq;
      acq.owner = true;
      return acq;
    }
    // Another query is computing this key right now: attach to it instead of
    // recomputing (shared-scan batching). The record outlives its map slot
    // via the shared_ptr, so a publish after many waiters queued still
    // reaches all of them.
    std::shared_ptr<InFlight> rec = fit->second;
    cv_.wait(lock, [&rec] { return rec->done; });
    if (rec->published) {
      ++stats_.hits;
      ++stats_.attaches;
      Acquisition acq;
      acq.hit = true;
      acq.payload = rec->payload;
      return acq;
    }
    // The owner aborted; loop — this thread may now become the owner.
  }
}

void SubplanCache::Publish(const std::string& key, Payload payload,
                           int64_t bytes, double cost_ms,
                           const std::vector<SharedUnit>& shared_units) {
  std::lock_guard<std::mutex> lock(mu_);
  auto fit = inflight_.find(key);
  GPL_CHECK(fit != inflight_.end());
  fit->second->done = true;
  fit->second->published = true;
  fit->second->payload = payload;
  inflight_.erase(fit);
  cv_.notify_all();

  if (entries_.count(key) > 0) return;  // benign re-publish race

  Entry entry;
  entry.payload = std::move(payload);
  entry.bytes = bytes;
  entry.cost_ms = cost_ms;
  if (shared_units.empty()) {
    auto run = AcquireWithEvictionLocked(bytes);
    if (!run.has_value()) {
      ++stats_.rejected;
      return;
    }
    entry.run = std::move(*run);
  } else {
    // Charge per shared unit: the first publisher of a unit acquires its
    // run, later publishers take a refcounted share — overlapping scan
    // views pay for each base column once.
    std::vector<std::string> charged;
    bool failed = false;
    for (const SharedUnit& unit : shared_units) {
      auto uit = units_.find(unit.key);
      if (uit != units_.end()) {
        pool_.Share(uit->second.run);
        ++uit->second.users;
      } else {
        auto run = AcquireWithEvictionLocked(unit.bytes);
        if (!run.has_value()) {
          failed = true;
          break;
        }
        UnitRecord rec;
        rec.run = std::move(*run);
        rec.users = 1;
        units_.emplace(unit.key, std::move(rec));
      }
      charged.push_back(unit.key);
    }
    if (failed) {
      for (const std::string& unit_key : charged) {
        auto uit = units_.find(unit_key);
        pool_.Release(uit->second.run);
        if (--uit->second.users == 0) units_.erase(uit);
      }
      ++stats_.rejected;
      return;
    }
    entry.unit_keys = std::move(charged);
  }
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  stats_.bytes += entry.bytes;
  ++stats_.entries;
  ++stats_.inserts;
  entries_.emplace(key, std::move(entry));
}

void SubplanCache::Abort(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto fit = inflight_.find(key);
  GPL_CHECK(fit != inflight_.end());
  fit->second->done = true;
  inflight_.erase(fit);
  cv_.notify_all();
}

std::optional<PageRun> SubplanCache::AcquireWithEvictionLocked(int64_t bytes) {
  for (;;) {
    auto run = pool_.Acquire(bytes);
    if (run.has_value()) return run;
    if (!EvictOneLocked()) return std::nullopt;
  }
}

bool SubplanCache::EvictOneLocked() {
  if (lru_.empty()) return false;
  // Scan the LRU tail window and pick the entry cheapest to recompute and
  // least re-used. Deterministic: ties keep the least-recently-used.
  auto victim = std::prev(lru_.end());
  double victim_score = 0.0;
  bool have_victim = false;
  auto it = lru_.end();
  for (int i = 0; i < options_.eviction_window && it != lru_.begin(); ++i) {
    --it;
    const Entry& entry = entries_.at(*it);
    const double score =
        entry.cost_ms * (1.0 + static_cast<double>(entry.hits));
    if (!have_victim || score < victim_score) {
      have_victim = true;
      victim_score = score;
      victim = it;
    }
  }
  if (!have_victim) return false;
  DropEntryLocked(*victim);
  ++stats_.evictions;
  return true;
}

void SubplanCache::DropEntryLocked(const std::string& key) {
  auto it = entries_.find(key);
  GPL_CHECK(it != entries_.end());
  Entry& entry = it->second;
  if (!entry.run.empty()) pool_.Release(entry.run);
  for (const std::string& unit_key : entry.unit_keys) {
    auto uit = units_.find(unit_key);
    GPL_CHECK(uit != units_.end());
    pool_.Release(uit->second.run);
    if (--uit->second.users == 0) units_.erase(uit);
  }
  stats_.bytes -= entry.bytes;
  --stats_.entries;
  lru_.erase(entry.lru_it);
  entries_.erase(it);
}

void SubplanCache::AddScanRows(bool shared, int64_t rows) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shared) {
    stats_.scan_rows_shared += static_cast<uint64_t>(rows);
  } else {
    stats_.scan_rows_scanned += static_cast<uint64_t>(rows);
  }
}

SubplanCacheStats SubplanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SubplanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!lru_.empty()) DropEntryLocked(lru_.back());
}

std::vector<uint64_t> SubplanCache::RegisterGauges(
    obs::MetricsRegistry* metrics, const std::string& prefix) {
  std::vector<uint64_t> ids;
  if (metrics == nullptr) return ids;
  const auto gauge = [&](const std::string& name, const std::string& help,
                         std::function<double()> fn) {
    ids.push_back(
        metrics->AddCallbackGauge(prefix + name, help, {}, std::move(fn)));
  };
  gauge("_entries", "Retained subplan-cache entries",
        [this] { return static_cast<double>(stats().entries); });
  gauge("_bytes", "Logical payload bytes retained in the subplan cache",
        [this] { return static_cast<double>(stats().bytes); });
  gauge("_hits", "Subplan-cache hits (including in-flight attaches)",
        [this] { return static_cast<double>(stats().hits); });
  gauge("_misses", "Subplan-cache misses (owned computes)",
        [this] { return static_cast<double>(stats().misses); });
  gauge("_evictions", "Entries evicted for page pressure",
        [this] { return static_cast<double>(stats().evictions); });
  gauge("_pool_occupancy", "Used fraction of the page pool",
        [this] { return pool_stats().Occupancy(); });
  gauge("_pool_used_pages", "Pages currently referenced by cache entries",
        [this] { return static_cast<double>(pool_stats().used_pages); });
  gauge("_pool_waste_bytes",
        "Internal fragmentation: reserved page bytes minus stored payload",
        [this] { return static_cast<double>(pool_stats().waste_bytes); });
  gauge("_scan_rows_shared", "Base-table rows served from shared scans",
        [this] { return static_cast<double>(stats().scan_rows_shared); });
  return ids;
}

}  // namespace pool
}  // namespace gpl
