#ifndef GPL_POOL_PAGE_POOL_H_
#define GPL_POOL_PAGE_POOL_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

namespace gpl {
namespace pool {

/// Configuration of a PagePool.
struct PagePoolOptions {
  /// Fixed page size. Every allocation is rounded up to whole pages; the
  /// round-up slack is the pool's "waste" (the paged-KV-cache argument: small
  /// fixed pages bound waste to < one page per run instead of per-tenant
  /// over-reservation).
  int64_t page_bytes = 64 * 1024;
  /// Total budget. 0 means the pool owns no pages and every Acquire fails —
  /// callers degrade to compute-without-retention.
  int64_t capacity_bytes = 0;
};

/// A reference to a run of pages holding one logical payload. Runs are
/// values: Share() produces a second reference (per-page refcounts go up),
/// Release() drops one. A run obtained from Extend() shares its prefix pages
/// with the run it extends.
struct PageRun {
  std::vector<int32_t> pages;  ///< page ids in acquisition order
  int64_t payload_bytes = 0;   ///< logical bytes stored across the pages

  bool empty() const { return pages.empty(); }
};

/// Occupancy counters of a PagePool (one consistent snapshot under the pool
/// mutex). `waste_bytes` is internal fragmentation: bytes reserved by used
/// pages minus the payload actually stored in them. Shared pages count once,
/// which is exactly the dedup the pool exists to provide.
struct PagePoolStats {
  int64_t page_bytes = 0;
  int64_t total_pages = 0;
  int64_t used_pages = 0;
  int64_t free_pages = 0;
  int64_t payload_bytes = 0;
  int64_t waste_bytes = 0;
  uint64_t acquires = 0;
  uint64_t extends = 0;
  uint64_t shares = 0;
  uint64_t releases = 0;
  uint64_t failures = 0;  ///< Acquire/Extend calls that found no free pages

  double Occupancy() const {
    return total_pages == 0
               ? 0.0
               : static_cast<double>(used_pages) /
                     static_cast<double>(total_pages);
  }
};

/// A fixed-size paged allocator modeling device global memory for cached
/// subplan data. Pages are bookkeeping only (the payloads live in host
/// shared_ptrs); the pool decides *what fits* and meters occupancy, sharing
/// and waste — the role the paged KV-block allocator plays in LLM serving.
///
/// Determinism: free pages are handed out lowest-id first, so an identical
/// sequence of acquires/releases always produces identical runs. Thread-safe.
class PagePool {
 public:
  explicit PagePool(const PagePoolOptions& options);

  PagePool(const PagePool&) = delete;
  PagePool& operator=(const PagePool&) = delete;

  /// Acquires a fresh run of ceil(payload/page) pages. nullopt (and a
  /// `failures` tick) if not enough pages are free; the pool is unchanged.
  /// A zero/negative payload yields an empty run (always succeeds).
  std::optional<PageRun> Acquire(int64_t payload_bytes);

  /// Returns a new run that shares `prefix`'s pages (their refcounts rise)
  /// and appends fresh pages for the payload beyond the prefix. The prefix
  /// run stays valid and independently releasable. nullopt if the tail does
  /// not fit; the pool is unchanged. `total_payload_bytes` must be >= the
  /// prefix's payload.
  std::optional<PageRun> Extend(const PageRun& prefix,
                                int64_t total_payload_bytes);

  /// Takes an additional reference on every page of `run`.
  PageRun Share(const PageRun& run);

  /// Drops one reference from every page of `run`; pages whose refcount
  /// reaches zero return to the free list.
  void Release(const PageRun& run);

  PagePoolStats stats() const;

 private:
  struct Page {
    int32_t refs = 0;
    int64_t payload = 0;  ///< bytes of payload stored in this page
  };

  int64_t PagesFor(int64_t payload_bytes) const;
  /// Pops the lowest-id free pages into *run and spreads `payload_bytes`
  /// of payload across them. Caller has checked availability.
  void TakePagesLocked(int64_t num_pages, int64_t payload_bytes, PageRun* run);

  const PagePoolOptions options_;
  mutable std::mutex mu_;
  std::vector<Page> pages_;
  /// Free page ids, kept sorted descending so pop_back() yields lowest-first.
  std::vector<int32_t> free_;
  PagePoolStats stats_;
};

}  // namespace pool
}  // namespace gpl

#endif  // GPL_POOL_PAGE_POOL_H_
