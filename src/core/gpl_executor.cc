#include "core/gpl_executor.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "exec/fused_kernel.h"
#include "exec/primitives.h"
#include "plan/fusion.h"

namespace gpl {

namespace {
// Estimated bytes per hash-table entry when the table has not been built yet
// (buckets + key/row/next arrays).
constexpr double kHashEntryBytes = 32.0;

/// The type-erased payload of a cached segment: everything a warm run needs
/// to replay the segment without executing it. `stages`/`stage_timings`/
/// `num_tiles` feed the timing simulation (which re-runs on every hit, so
/// simulated observables stay bit-identical to the cold run); `output`/`hash`
/// carry the functional result.
struct CachedSegment {
  std::shared_ptr<const Table> output;
  std::shared_ptr<const HashJoinState> hash;  ///< build segments only
  std::vector<StageObservation> stages;       ///< per-original-stage actuals
  /// Post-execution timing descriptors, one per original stage. Most kernels'
  /// descriptors are state-free, but the hash build's reflects the built
  /// table — a hit must simulate with the cold run's exact descriptors.
  std::vector<sim::KernelTimingDesc> stage_timings;
  int64_t input_rows = 0;
  int64_t input_bytes = 0;
  int64_t num_tiles = 0;
  int64_t bytes = 0;  ///< retention charge (hash state or output table)
};

/// Aborts an owned subplan-cache compute on unwind unless disarmed: error
/// paths between Acquire and Publish must wake the waiters to retry.
class ComputeTicket {
 public:
  ComputeTicket() = default;
  ~ComputeTicket() {
    if (cache_ != nullptr) cache_->Abort(key_);
  }
  ComputeTicket(const ComputeTicket&) = delete;
  ComputeTicket& operator=(const ComputeTicket&) = delete;

  void Arm(pool::SubplanCache* cache, std::string key) {
    cache_ = cache;
    key_ = std::move(key);
  }
  void Disarm() { cache_ = nullptr; }

 private:
  pool::SubplanCache* cache_ = nullptr;
  std::string key_;
};
}  // namespace

const char* SubplanOutcomeName(SubplanOutcome outcome) {
  switch (outcome) {
    case SubplanOutcome::kBypass:
      return "off";
    case SubplanOutcome::kMiss:
      return "miss";
    case SubplanOutcome::kHit:
      return "hit";
  }
  return "unknown";
}

GplExecutor::GplExecutor(const tpch::Database* db,
                         const sim::Simulator* simulator,
                         const model::CalibrationTable* calibration,
                         model::TuningCache* tuning_cache,
                         pool::SubplanCache* subplan_cache)
    : db_(db),
      simulator_(simulator),
      calibration_(calibration),
      tuning_cache_(tuning_cache),
      subplan_cache_(subplan_cache),
      cost_model_(simulator->device(), calibration) {
  GPL_CHECK(db_ != nullptr && simulator_ != nullptr && calibration_ != nullptr);
  // The database identity every cache key embeds: the instance plus its
  // table cardinalities (a regenerated database at another scale factor must
  // never collide, even if the allocator reuses the address).
  char ptr_buf[32];
  std::snprintf(ptr_buf, sizeof(ptr_buf), "%p", static_cast<const void*>(db_));
  db_tag_ = ptr_buf;
  for (const char* name : {"region", "nation", "supplier", "customer", "part",
                           "partsupp", "orders", "lineitem"}) {
    const Table* table = db_->ByName(name);
    db_tag_ += ':';
    db_tag_ += std::to_string(table == nullptr ? -1 : table->num_rows());
  }
}

Result<std::shared_ptr<const Table>> GplExecutor::ResolveInput(
    const Segment& segment,
    const std::vector<std::shared_ptr<const Table>>& prior_outputs,
    pool::SubplanCache* cache) const {
  if (!segment.input_table.empty()) {
    const Table* base = db_->ByName(segment.input_table);
    if (base == nullptr) {
      return Status::NotFound("unknown table: " + segment.input_table);
    }
    const auto build_view = [&]() -> Result<Table> {
      Table view(segment.input_table);
      for (const std::string& col : segment.input_columns) {
        const std::string name = segment.input_alias.empty()
                                     ? col
                                     : segment.input_alias + "_" + col;
        GPL_RETURN_NOT_OK(view.AddColumn(name, base->GetColumn(col)));
      }
      return view;
    };
    if (cache == nullptr) {
      GPL_ASSIGN_OR_RETURN(Table view, build_view());
      return std::shared_ptr<const Table>(
          std::make_shared<const Table>(std::move(view)));
    }
    // Shared-scan path: concurrently admitted queries over the same
    // (table, alias, columns) leaf attach to one in-flight materialization,
    // and retained views charge the pool per column so overlapping views
    // share page runs.
    std::string key = "scan|" + db_tag_ + "|" + segment.input_table + "/" +
                      segment.input_alias + ":";
    for (const std::string& col : segment.input_columns) {
      key += col;
      key += ',';
    }
    pool::SubplanCache::Acquisition acq = cache->Acquire(key);
    if (acq.hit) {
      cache->AddScanRows(/*shared=*/true, base->num_rows());
      return std::static_pointer_cast<const Table>(acq.payload);
    }
    ComputeTicket ticket;
    ticket.Arm(cache, key);
    const auto scan_start = std::chrono::steady_clock::now();
    GPL_ASSIGN_OR_RETURN(Table view, build_view());
    const double cost_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - scan_start)
                               .count();
    auto shared_view = std::make_shared<const Table>(std::move(view));
    std::vector<pool::SubplanCache::SharedUnit> units;
    units.reserve(segment.input_columns.size());
    for (const std::string& col : segment.input_columns) {
      pool::SubplanCache::SharedUnit unit;
      unit.key = "col|" + db_tag_ + "|" + segment.input_table + "." + col;
      unit.bytes = base->GetColumn(col).byte_size();
      units.push_back(std::move(unit));
    }
    cache->Publish(key, shared_view, shared_view->byte_size(), cost_ms, units);
    ticket.Disarm();
    cache->AddScanRows(/*shared=*/false, base->num_rows());
    return std::shared_ptr<const Table>(shared_view);
  }
  if (segment.input_segment >= 0 &&
      segment.input_segment < static_cast<int>(prior_outputs.size())) {
    const auto& prior =
        prior_outputs[static_cast<size_t>(segment.input_segment)];
    if (prior != nullptr) return prior;
  }
  return Status::InvalidArgument("segment has no input source");
}

model::SegmentDesc GplExecutor::DescribeSegment(const Segment& segment,
                                                int64_t input_rows,
                                                int64_t input_bytes) const {
  model::SegmentDesc desc;
  desc.input_bytes = static_cast<double>(input_bytes);
  double rows = static_cast<double>(input_rows);
  double bytes = static_cast<double>(input_bytes);
  for (const Stage& stage : segment.stages) {
    stage.kernel->PrepareTiming();
    model::StageDesc sd;
    sd.timing = stage.kernel->timing();
    sd.rows_in = rows;
    sd.bytes_in = bytes;
    sd.rows_out = stage.est_rows_out;
    sd.bytes_out = stage.est_bytes_out();
    // A not-yet-built hash table's working set is estimated from the rows
    // that will be inserted.
    if ((sd.timing.name == "k_hash_build" ||
         sd.timing.name == "k_partition_build") &&
        sd.timing.random_working_set_bytes == 0) {
      sd.timing.random_working_set_bytes =
          static_cast<int64_t>(rows * kHashEntryBytes);
      sd.timing.random_access_fraction =
          sd.timing.random_access_fraction > 0 ? sd.timing.random_access_fraction
                                               : 0.7;
      sd.bytes_out = static_cast<double>(sd.timing.random_working_set_bytes);
    }
    desc.extra_resident_bytes += sd.timing.random_working_set_bytes;
    desc.stages.push_back(sd);
    rows = std::max(sd.rows_out, 0.0);
    bytes = std::max(sd.bytes_out, 0.0);
  }
  return desc;
}

Result<GplRunResult> GplExecutor::Run(const SegmentedPlan& plan,
                                      const GplOptions& options) const {
  GplRunResult result;

  // Host parallelism for the functional kernel bodies and the tuner grid,
  // scoped to this run. Purely host-side: the simulated timing below is
  // computed from descriptors and observed cardinalities, never from how
  // fast (or how parallel) the host produced them.
  ScopedHostParallelism host_parallelism(options.exec.host_threads);

  // Fresh functional state for every run.
  for (const Segment& segment : plan.segments) {
    for (const Stage& stage : segment.stages) stage.kernel->Reset();
  }

  // Data memoization is bypassed entirely under fault injection: an injected
  // fault must hit the same launch/reservation sites as isolated execution,
  // and a cache hit would skip some of them.
  pool::SubplanCache* cache =
      (subplan_cache_ != nullptr && options.exec.use_subplan_cache &&
       options.exec.fault == nullptr)
          ? subplan_cache_
          : nullptr;

  std::vector<std::shared_ptr<const Table>> outputs(plan.segments.size());
  for (size_t i = 0; i < plan.segments.size(); ++i) {
    // Cancellation/deadline check at the segment boundary: a cancelled run
    // unwinds here instead of simulating the remaining segments.
    if (options.exec.cancel != nullptr) {
      GPL_RETURN_NOT_OK(options.exec.cancel->Check());
    }
    const Segment& segment = plan.segments[i];
    const auto segment_start = std::chrono::steady_clock::now();
    GPL_ASSIGN_OR_RETURN(std::shared_ptr<const Table> input,
                         ResolveInput(segment, outputs, cache));

    const model::SegmentDesc desc =
        DescribeSegment(segment, input->num_rows(), input->byte_size());

    // Fusion pass (fused mode only). The grouping is deterministic from the
    // segment's stages, so it is part of the tuning-cache scope below.
    std::vector<int> group_sizes;
    if (options.fused) {
      const FusionPlan fusion = PlanFusion(segment);
      group_sizes.reserve(fusion.groups.size());
      for (const FusedGroup& group : fusion.groups) {
        group_sizes.push_back(static_cast<int>(group.count));
      }
    }
    // The engine scope keys cached choices to the mode (and, for the fused
    // mode, the fusion grouping) they were tuned for: modes search different
    // spaces, so a hit must never cross modes.
    std::string engine_scope;
    if (options.fused) {
      engine_scope = "fused:";
      for (size_t g = 0; g < group_sizes.size(); ++g) {
        if (g > 0) engine_scope += ',';
        engine_scope += std::to_string(group_sizes[g]);
      }
    } else {
      engine_scope = options.concurrent ? "gpl" : "noce";
    }

    // The tuning signature pins device, per-stage descriptors/estimates,
    // overrides, and engine scope. The subplan key embeds it (plus the
    // functional chain signature and database tag), so a subplan hit
    // provably replays under the same tuned parameters as its cold run.
    const bool tuning_cache_enabled =
        tuning_cache_ != nullptr && options.exec.use_tuning_cache;
    std::string tuning_signature;
    if ((options.exec.use_cost_model && tuning_cache_enabled) ||
        cache != nullptr) {
      tuning_signature = model::TuningCache::SegmentSignature(
          simulator_->device(), desc, options.exec.overrides, engine_scope);
    }

    // ---- Subplan-cache lookup (data memoization) ----
    std::shared_ptr<const CachedSegment> cached;
    ComputeTicket ticket;
    std::string seg_key;
    SubplanOutcome subplan = SubplanOutcome::kBypass;
    if (cache != nullptr && !segment.uncacheable &&
        !segment.chain_signature.empty()) {
      seg_key = "seg|" + db_tag_ + "|" +
                (options.exec.use_cost_model ? "cm|" : "def|") +
                segment.chain_signature + "|" + tuning_signature;
      pool::SubplanCache::Acquisition acq = cache->Acquire(seg_key);
      if (acq.hit) {
        cached = std::static_pointer_cast<const CachedSegment>(acq.payload);
        subplan = SubplanOutcome::kHit;
        ++result.subplan_cache_hits;
      } else {
        ticket.Arm(cache, seg_key);
        subplan = SubplanOutcome::kMiss;
        ++result.subplan_cache_misses;
      }
    }

    // ---- Parameter tuning (the <5 ms query-optimization step) ----
    const auto tune_start = std::chrono::steady_clock::now();
    const model::TuningOverrides& overrides = options.exec.overrides;
    model::TuningChoice choice;
    bool tuning_cache_hit = false;
    if (options.exec.use_cost_model) {
      bool& hit = tuning_cache_hit;
      if (tuning_cache_enabled) {
        if (auto tuned = tuning_cache_->Lookup(tuning_signature)) {
          choice = std::move(*tuned);
          hit = true;
        }
      }
      if (hit) {
        ++result.tuning_cache_hits;
      } else {
        choice = options.fused
                     ? model::TuneSegmentEngines(cost_model_, desc,
                                                 *calibration_, group_sizes,
                                                 overrides)
                     : model::TuneSegment(cost_model_, desc, *calibration_,
                                          overrides);
        if (tuning_cache_enabled) {
          tuning_cache_->Insert(tuning_signature, choice);
          ++result.tuning_cache_misses;
        }
      }
    } else {
      choice.params.tile_bytes =
          overrides.tile_bytes > 0 ? overrides.tile_bytes
                                   : MiB(1);  // the paper's default Δ
      const int wg = overrides.workgroups_per_kernel > 0
                         ? overrides.workgroups_per_kernel
                         : 2 * simulator_->device().num_cus;
      bool default_fused = false;
      if (options.fused) {
        for (int size : group_sizes) default_fused |= size > 1;
      }
      if (default_fused) {
        // Without the cost model the fused mode fuses every legal chain.
        choice.engine = model::SegmentEngine::kFused;
        choice.fused_group_sizes = group_sizes;
        choice.params.workgroups.assign(group_sizes.size(), wg);
        choice.estimate = cost_model_.EstimateSegmentSequential(
            model::ComposeFusedSegment(desc, group_sizes), choice.params);
      } else {
        choice.params.workgroups.assign(segment.stages.size(), wg);
        for (size_t g = 0; g + 1 < segment.stages.size(); ++g) {
          choice.params.channels.push_back(
              overrides.has_channel ? overrides.channel : sim::ChannelConfig{});
        }
        choice.estimate = cost_model_.EstimateSegment(desc, choice.params);
      }
    }
    result.tuner_wall_ms +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - tune_start)
            .count();

    const bool run_fused = options.fused &&
                           choice.engine == model::SegmentEngine::kFused &&
                           !choice.fused_group_sizes.empty();

    // ---- Functional execution (real results + observed cardinalities) ----
    // The fused path streams tiles through a segment whose fusible chains
    // are collapsed into FusedKernels; results are bit-identical because the
    // composed body replays the exact per-stage flow (see FusedKernel).
    // On a subplan-cache hit the functional pass is skipped entirely: the
    // cached entry carries the cold run's per-stage observations, and the
    // timing simulation below replays them unchanged.
    Segment exec_segment;
    std::vector<std::shared_ptr<FusedKernel>> group_kernels;
    FunctionalRun func;
    if (cached == nullptr) {
      if (run_fused) {
        exec_segment.output_is_hash_build = segment.output_is_hash_build;
        size_t next = 0;
        for (int size_i : choice.fused_group_sizes) {
          const size_t size = static_cast<size_t>(size_i);
          Stage stage = segment.stages[next + size - 1];  // tail's estimates
          if (size > 1) {
            std::vector<KernelPtr> children;
            children.reserve(size);
            for (size_t s = next; s < next + size; ++s) {
              children.push_back(segment.stages[s].kernel);
            }
            auto fused_kernel =
                std::make_shared<FusedKernel>(std::move(children));
            stage.kernel = fused_kernel;
            group_kernels.push_back(std::move(fused_kernel));
          } else {
            group_kernels.push_back(nullptr);
          }
          exec_segment.stages.push_back(std::move(stage));
          next += size;
        }
      }
      Result<FunctionalRun> func_result =
          RunSegmentFunctional(run_fused ? exec_segment : segment, *input,
                               choice.params.tile_bytes);
      GPL_RETURN_NOT_OK(func_result.status());  // ticket aborts on unwind
      func = func_result.take();
    }

    // Per-original-stage observations: replayed from the cache on a hit;
    // expanded from the FusedKernels' recorded child cardinalities on a cold
    // fused run (so EXPLAIN ANALYZE and the composed timing below see the
    // same per-stage actuals as an unfused run); taken as-is otherwise.
    FunctionalRun observations;
    if (cached != nullptr) {
      observations.input_rows = cached->input_rows;
      observations.input_bytes = cached->input_bytes;
      observations.num_tiles = cached->num_tiles;
      observations.stages = cached->stages;
    } else if (run_fused) {
      observations.input_rows = func.input_rows;
      observations.input_bytes = func.input_bytes;
      observations.num_tiles = func.num_tiles;
      for (size_t g = 0; g < group_kernels.size(); ++g) {
        if (group_kernels[g] == nullptr) {
          observations.stages.push_back(func.stages[g]);
          continue;
        }
        const auto& child_obs = group_kernels[g]->observations();
        for (size_t c = 0; c < child_obs.size(); ++c) {
          StageObservation so;
          so.rows_in = child_obs[c].rows_in;
          so.bytes_in = child_obs[c].bytes_in;
          so.rows_out = child_obs[c].rows_out;
          so.bytes_out = child_obs[c].bytes_out;
          observations.stages.push_back(so);
        }
      }
    } else {
      observations.input_rows = func.input_rows;
      observations.input_bytes = func.input_bytes;
      observations.num_tiles = func.num_tiles;
      observations.stages = std::move(func.stages);
    }

    // Fusion accounting, derived from the chosen grouping and the
    // per-original-stage observations — identical on cold runs and cache
    // hits (interior hand-offs stay in registers: neither materialized nor
    // channeled).
    int fused_groups = 0;
    int launches_saved = 0;
    int64_t fused_bytes_avoided = 0;
    if (run_fused) {
      size_t next = 0;
      for (int size_i : choice.fused_group_sizes) {
        const size_t size = static_cast<size_t>(size_i);
        if (size > 1) {
          ++fused_groups;
          launches_saved += static_cast<int>(size) - 1;
          for (size_t c = next; c + 1 < next + size; ++c) {
            fused_bytes_avoided += observations.stages[c].bytes_out;
          }
        }
        next += size;
      }
    }

    // Post-execution per-stage timing descriptors: live kernels on a cold
    // run, the cold run's recorded descriptors on a hit (the hash build's
    // descriptor reflects the built table, which a hit never rebuilds).
    const auto stage_timing = [&](size_t s) -> sim::KernelTimingDesc {
      return cached != nullptr ? cached->stage_timings[s]
                               : segment.stages[s].kernel->timing();
    };

    // ---- Timing simulation with observed cardinalities ----
    SegmentReport report;
    sim::PipelineSpec spec;
    spec.tile_bytes = choice.params.tile_bytes;
    spec.extra_resident_bytes = desc.extra_resident_bytes;
    if (run_fused) {
      // One launch per group; fused groups get the composed timing
      // descriptor built from the *observed* per-stage cardinalities.
      size_t next = 0;
      for (size_t g = 0; g < choice.fused_group_sizes.size(); ++g) {
        const size_t size =
            static_cast<size_t>(choice.fused_group_sizes[g]);
        sim::KernelLaunch launch;
        if (size == 1) {
          launch.desc = stage_timing(next);
        } else {
          std::vector<model::StageDesc> observed;
          observed.reserve(size);
          for (size_t s = next; s < next + size; ++s) {
            model::StageDesc sd;
            sd.timing = desc.stages[s].timing;
            const StageObservation& obs = observations.stages[s];
            sd.rows_in = static_cast<double>(obs.rows_in);
            sd.bytes_in = static_cast<double>(obs.bytes_in);
            sd.rows_out = static_cast<double>(obs.rows_out);
            sd.bytes_out = static_cast<double>(obs.bytes_out);
            observed.push_back(std::move(sd));
          }
          launch.desc = model::ComposeFusedStage(observed, 0, size).timing;
        }
        const StageObservation& first = observations.stages[next];
        const StageObservation& last = observations.stages[next + size - 1];
        launch.rows_in = first.rows_in;
        launch.bytes_in = first.bytes_in;
        launch.rows_out = last.rows_out;
        launch.bytes_out = last.bytes_out;
        launch.workgroups_per_tile =
            g < choice.params.workgroups.size() ? choice.params.workgroups[g]
                                                : 0;
        launch.input = sim::Endpoint::kGlobal;
        launch.output = sim::Endpoint::kGlobal;
        if (!report.description.empty()) report.description += " -> ";
        report.description += launch.desc.name;
        spec.kernels.push_back(std::move(launch));
        next += size;
      }
    } else {
      const size_t num_stages = segment.stages.size();
      for (size_t s = 0; s < num_stages; ++s) {
        sim::KernelLaunch launch;
        launch.desc = stage_timing(s);
        const StageObservation& obs = observations.stages[s];
        launch.rows_in = obs.rows_in;
        launch.bytes_in = obs.bytes_in;
        launch.rows_out = obs.rows_out;
        launch.bytes_out = obs.bytes_out;
        launch.workgroups_per_tile =
            s < choice.params.workgroups.size() ? choice.params.workgroups[s]
                                                : 0;
        launch.input =
            s == 0 ? sim::Endpoint::kGlobal : sim::Endpoint::kChannel;
        launch.output = s + 1 == num_stages ? sim::Endpoint::kGlobal
                                            : sim::Endpoint::kChannel;
        spec.kernels.push_back(std::move(launch));
      }
      spec.channel_configs = choice.params.channels;
      while (spec.channel_configs.size() + 1 < num_stages) {
        spec.channel_configs.push_back(sim::ChannelConfig{});
      }
      for (size_t s = 0; s < num_stages; ++s) {
        if (!report.description.empty()) report.description += " -> ";
        report.description += segment.stages[s].kernel->name();
      }
    }
    for (const Stage& stage : segment.stages) {
      report.stage_names.push_back(stage.kernel->name());
    }

    spec.trace = options.exec.trace;
    spec.fault = options.exec.fault;
    spec.label = "segment " + std::to_string(i) + ": " + report.description;
    GPL_SLOG(Debug, "core")
        .Field("segment", spec.label)
        .Field("tile_bytes", spec.tile_bytes)
        .Field("kernels", spec.kernels.size())
        .Field("concurrent", options.concurrent)
        .Field("engine", model::SegmentEngineName(
                             run_fused ? model::SegmentEngine::kFused
                                       : choice.engine))
        << "running segment";

    Result<sim::SimResult> sim_result = Status::OK();
    if (run_fused) {
      sim::Simulator::FusedAccounting accounting;
      accounting.fused_kernels = fused_groups;
      accounting.launches_saved = launches_saved;
      accounting.bytes_avoided = fused_bytes_avoided;
      sim_result = simulator_->RunFusedSegment(spec, accounting);
      report.engine = model::SegmentEngine::kFused;
    } else if (options.fused &&
               choice.engine == model::SegmentEngine::kKernelAtATime) {
      sim_result = simulator_->RunSequentialTiles(spec);
      report.engine = model::SegmentEngine::kKernelAtATime;
    } else {
      report.engine = options.concurrent
                          ? model::SegmentEngine::kGplChannel
                          : model::SegmentEngine::kKernelAtATime;
      sim_result = options.concurrent ? simulator_->RunPipeline(spec)
                                      : simulator_->RunSequentialTiles(spec);
      if (!sim_result.ok() &&
          sim_result.status().code() == StatusCode::kChannelAllocFailed &&
          options.exec.degrade_on_channel_failure) {
        // Graceful degradation: the pipelined segment could not get its
        // channels, so re-execute it kernel-at-a-time (the w/o-CE path needs
        // none). The functional output is already computed and unaffected;
        // only the simulated timing of this segment degrades.
        GPL_SLOG(Warning, "core").Field("segment", spec.label)
            << "degrading to kernel-at-a-time: "
            << sim_result.status().ToString();
        sim_result = simulator_->RunSequentialTiles(spec);
        if (sim_result.ok()) {
          report.degraded = true;
          report.engine = model::SegmentEngine::kKernelAtATime;
          ++result.degraded_segments;
        }
      }
    }
    GPL_RETURN_NOT_OK(sim_result.status());  // ticket aborts on unwind
    report.sim = sim_result.take();

    result.counters.Accumulate(report.sim.counters);
    result.total_cycles += report.sim.counters.elapsed_cycles;
    result.predicted_total_cycles += choice.estimate.total_cycles;
    if (run_fused) {
      ++result.fused_segments;
      result.fused_launches_saved += launches_saved;
      result.fused_bytes_avoided += fused_bytes_avoided;
      report.fused_groups = fused_groups;
      report.launches_saved = launches_saved;
      report.fused_bytes_avoided = fused_bytes_avoided;
    }

    // ---- Segment output: replay, publish, or pass through ----
    std::shared_ptr<const Table> out_ptr;
    if (cached != nullptr) {
      out_ptr = cached->output;
      if (segment.output_is_hash_build && segment.hash_state != nullptr) {
        // Downstream probe kernels read the cached snapshot through
        // HashJoinState::probe_table()/probe_rows().
        segment.hash_state->shared = cached->hash;
      }
    } else if (subplan == SubplanOutcome::kMiss) {
      auto entry = std::make_shared<CachedSegment>();
      entry->stages = observations.stages;
      entry->input_rows = observations.input_rows;
      entry->input_bytes = observations.input_bytes;
      entry->num_tiles = observations.num_tiles;
      entry->stage_timings.reserve(segment.stages.size());
      for (const Stage& stage : segment.stages) {
        entry->stage_timings.push_back(stage.kernel->timing());
      }
      out_ptr = std::make_shared<const Table>(std::move(func.output));
      entry->output = out_ptr;
      if (segment.output_is_hash_build && segment.hash_state != nullptr) {
        // Move the built state into an immutable snapshot and leave the
        // live state reading through it, exactly as a future hit would.
        auto snap = std::make_shared<HashJoinState>();
        snap->table = std::move(segment.hash_state->table);
        snap->build_rows = std::move(segment.hash_state->build_rows);
        snap->build_rows_initialized =
            segment.hash_state->build_rows_initialized;
        segment.hash_state->table = JoinHashTable();
        segment.hash_state->build_rows = Table();
        segment.hash_state->build_rows_initialized = false;
        segment.hash_state->shared = snap;
        entry->hash = snap;
        entry->bytes =
            snap->table.byte_size() + snap->build_rows.byte_size();
      } else {
        entry->bytes = out_ptr->byte_size();
      }
      const double cost_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - segment_start)
              .count();
      cache->Publish(seg_key, entry, entry->bytes, cost_ms);
      ticket.Disarm();
    } else {
      out_ptr = std::make_shared<const Table>(std::move(func.output));
    }
    outputs[i] = out_ptr;

    report.subplan_cache = subplan;
    report.tuning = choice;
    report.predicted_cycles = choice.estimate.total_cycles;
    report.measured_cycles = report.sim.counters.elapsed_cycles;
    report.tuning_cache_hit = tuning_cache_hit;
    report.host_wall_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - segment_start)
                              .count();
    report.observations = std::move(observations);
    result.segments.push_back(std::move(report));
  }

  if (!outputs.empty() && outputs.back() != nullptr) {
    result.output = *outputs.back();
  }
  return result;
}

}  // namespace gpl
