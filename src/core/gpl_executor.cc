#include "core/gpl_executor.h"

#include <chrono>
#include <memory>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "exec/fused_kernel.h"
#include "plan/fusion.h"

namespace gpl {

namespace {
// Estimated bytes per hash-table entry when the table has not been built yet
// (buckets + key/row/next arrays).
constexpr double kHashEntryBytes = 32.0;
}  // namespace

GplExecutor::GplExecutor(const tpch::Database* db,
                         const sim::Simulator* simulator,
                         const model::CalibrationTable* calibration,
                         model::TuningCache* tuning_cache)
    : db_(db),
      simulator_(simulator),
      calibration_(calibration),
      tuning_cache_(tuning_cache),
      cost_model_(simulator->device(), calibration) {
  GPL_CHECK(db_ != nullptr && simulator_ != nullptr && calibration_ != nullptr);
}

Result<Table> GplExecutor::ResolveInput(
    const Segment& segment, const std::vector<Table>& prior_outputs) const {
  if (!segment.input_table.empty()) {
    const Table* base = db_->ByName(segment.input_table);
    if (base == nullptr) {
      return Status::NotFound("unknown table: " + segment.input_table);
    }
    Table view(segment.input_table);
    for (const std::string& col : segment.input_columns) {
      const std::string name = segment.input_alias.empty()
                                   ? col
                                   : segment.input_alias + "_" + col;
      GPL_RETURN_NOT_OK(view.AddColumn(name, base->GetColumn(col)));
    }
    return view;
  }
  if (segment.input_segment >= 0 &&
      segment.input_segment < static_cast<int>(prior_outputs.size())) {
    return prior_outputs[static_cast<size_t>(segment.input_segment)];
  }
  return Status::InvalidArgument("segment has no input source");
}

model::SegmentDesc GplExecutor::DescribeSegment(const Segment& segment,
                                                int64_t input_rows,
                                                int64_t input_bytes) const {
  model::SegmentDesc desc;
  desc.input_bytes = static_cast<double>(input_bytes);
  double rows = static_cast<double>(input_rows);
  double bytes = static_cast<double>(input_bytes);
  for (const Stage& stage : segment.stages) {
    stage.kernel->PrepareTiming();
    model::StageDesc sd;
    sd.timing = stage.kernel->timing();
    sd.rows_in = rows;
    sd.bytes_in = bytes;
    sd.rows_out = stage.est_rows_out;
    sd.bytes_out = stage.est_bytes_out();
    // A not-yet-built hash table's working set is estimated from the rows
    // that will be inserted.
    if ((sd.timing.name == "k_hash_build" ||
         sd.timing.name == "k_partition_build") &&
        sd.timing.random_working_set_bytes == 0) {
      sd.timing.random_working_set_bytes =
          static_cast<int64_t>(rows * kHashEntryBytes);
      sd.timing.random_access_fraction =
          sd.timing.random_access_fraction > 0 ? sd.timing.random_access_fraction
                                               : 0.7;
      sd.bytes_out = static_cast<double>(sd.timing.random_working_set_bytes);
    }
    desc.extra_resident_bytes += sd.timing.random_working_set_bytes;
    desc.stages.push_back(sd);
    rows = std::max(sd.rows_out, 0.0);
    bytes = std::max(sd.bytes_out, 0.0);
  }
  return desc;
}

Result<GplRunResult> GplExecutor::Run(const SegmentedPlan& plan,
                                      const GplOptions& options) const {
  GplRunResult result;

  // Host parallelism for the functional kernel bodies and the tuner grid,
  // scoped to this run. Purely host-side: the simulated timing below is
  // computed from descriptors and observed cardinalities, never from how
  // fast (or how parallel) the host produced them.
  ScopedHostParallelism host_parallelism(options.exec.host_threads);

  // Fresh functional state for every run.
  for (const Segment& segment : plan.segments) {
    for (const Stage& stage : segment.stages) stage.kernel->Reset();
  }

  std::vector<Table> outputs(plan.segments.size());
  for (size_t i = 0; i < plan.segments.size(); ++i) {
    // Cancellation/deadline check at the segment boundary: a cancelled run
    // unwinds here instead of simulating the remaining segments.
    if (options.exec.cancel != nullptr) {
      GPL_RETURN_NOT_OK(options.exec.cancel->Check());
    }
    const Segment& segment = plan.segments[i];
    const auto segment_start = std::chrono::steady_clock::now();
    GPL_ASSIGN_OR_RETURN(Table input, ResolveInput(segment, outputs));

    const model::SegmentDesc desc =
        DescribeSegment(segment, input.num_rows(), input.byte_size());

    // Fusion pass (fused mode only). The grouping is deterministic from the
    // segment's stages, so it is part of the tuning-cache scope below.
    std::vector<int> group_sizes;
    if (options.fused) {
      const FusionPlan fusion = PlanFusion(segment);
      group_sizes.reserve(fusion.groups.size());
      for (const FusedGroup& group : fusion.groups) {
        group_sizes.push_back(static_cast<int>(group.count));
      }
    }
    // The engine scope keys cached choices to the mode (and, for the fused
    // mode, the fusion grouping) they were tuned for: modes search different
    // spaces, so a hit must never cross modes.
    std::string engine_scope;
    if (options.fused) {
      engine_scope = "fused:";
      for (size_t g = 0; g < group_sizes.size(); ++g) {
        if (g > 0) engine_scope += ',';
        engine_scope += std::to_string(group_sizes[g]);
      }
    } else {
      engine_scope = options.concurrent ? "gpl" : "noce";
    }

    // ---- Parameter tuning (the <5 ms query-optimization step) ----
    const auto tune_start = std::chrono::steady_clock::now();
    const model::TuningOverrides& overrides = options.exec.overrides;
    model::TuningChoice choice;
    bool tuning_cache_hit = false;
    if (options.exec.use_cost_model) {
      const bool cache_enabled =
          tuning_cache_ != nullptr && options.exec.use_tuning_cache;
      std::string signature;
      bool& hit = tuning_cache_hit;
      if (cache_enabled) {
        signature = model::TuningCache::SegmentSignature(
            simulator_->device(), desc, overrides, engine_scope);
        if (auto cached = tuning_cache_->Lookup(signature)) {
          choice = std::move(*cached);
          hit = true;
        }
      }
      if (hit) {
        ++result.tuning_cache_hits;
      } else {
        choice = options.fused
                     ? model::TuneSegmentEngines(cost_model_, desc,
                                                 *calibration_, group_sizes,
                                                 overrides)
                     : model::TuneSegment(cost_model_, desc, *calibration_,
                                          overrides);
        if (cache_enabled) {
          tuning_cache_->Insert(signature, choice);
          ++result.tuning_cache_misses;
        }
      }
    } else {
      choice.params.tile_bytes =
          overrides.tile_bytes > 0 ? overrides.tile_bytes
                                   : MiB(1);  // the paper's default Δ
      const int wg = overrides.workgroups_per_kernel > 0
                         ? overrides.workgroups_per_kernel
                         : 2 * simulator_->device().num_cus;
      bool default_fused = false;
      if (options.fused) {
        for (int size : group_sizes) default_fused |= size > 1;
      }
      if (default_fused) {
        // Without the cost model the fused mode fuses every legal chain.
        choice.engine = model::SegmentEngine::kFused;
        choice.fused_group_sizes = group_sizes;
        choice.params.workgroups.assign(group_sizes.size(), wg);
        choice.estimate = cost_model_.EstimateSegmentSequential(
            model::ComposeFusedSegment(desc, group_sizes), choice.params);
      } else {
        choice.params.workgroups.assign(segment.stages.size(), wg);
        for (size_t g = 0; g + 1 < segment.stages.size(); ++g) {
          choice.params.channels.push_back(
              overrides.has_channel ? overrides.channel : sim::ChannelConfig{});
        }
        choice.estimate = cost_model_.EstimateSegment(desc, choice.params);
      }
    }
    result.tuner_wall_ms +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - tune_start)
            .count();

    const bool run_fused = options.fused &&
                           choice.engine == model::SegmentEngine::kFused &&
                           !choice.fused_group_sizes.empty();

    // ---- Functional execution (real results + observed cardinalities) ----
    // The fused path streams tiles through a segment whose fusible chains
    // are collapsed into FusedKernels; results are bit-identical because the
    // composed body replays the exact per-stage flow (see FusedKernel).
    Segment exec_segment;
    std::vector<std::shared_ptr<FusedKernel>> group_kernels;
    if (run_fused) {
      exec_segment.output_is_hash_build = segment.output_is_hash_build;
      size_t next = 0;
      for (int size_i : choice.fused_group_sizes) {
        const size_t size = static_cast<size_t>(size_i);
        Stage stage = segment.stages[next + size - 1];  // tail's estimates
        if (size > 1) {
          std::vector<KernelPtr> children;
          children.reserve(size);
          for (size_t s = next; s < next + size; ++s) {
            children.push_back(segment.stages[s].kernel);
          }
          auto fused_kernel =
              std::make_shared<FusedKernel>(std::move(children));
          stage.kernel = fused_kernel;
          group_kernels.push_back(std::move(fused_kernel));
        } else {
          group_kernels.push_back(nullptr);
        }
        exec_segment.stages.push_back(std::move(stage));
        next += size;
      }
    }
    Result<FunctionalRun> func_result =
        RunSegmentFunctional(run_fused ? exec_segment : segment, input,
                             choice.params.tile_bytes);
    GPL_RETURN_NOT_OK(func_result.status());
    FunctionalRun func = func_result.take();

    // Expand fused-group observations back to per-original-stage ground
    // truth (the FusedKernels recorded each child's cardinalities), so
    // EXPLAIN ANALYZE and the composed timing below see the same per-stage
    // actuals as an unfused run.
    FunctionalRun observations;
    int fused_groups = 0;
    int launches_saved = 0;
    int64_t fused_bytes_avoided = 0;
    if (run_fused) {
      observations.input_rows = func.input_rows;
      observations.input_bytes = func.input_bytes;
      observations.num_tiles = func.num_tiles;
      for (size_t g = 0; g < group_kernels.size(); ++g) {
        if (group_kernels[g] == nullptr) {
          observations.stages.push_back(func.stages[g]);
          continue;
        }
        const auto& child_obs = group_kernels[g]->observations();
        ++fused_groups;
        launches_saved += static_cast<int>(child_obs.size()) - 1;
        for (size_t c = 0; c < child_obs.size(); ++c) {
          StageObservation so;
          so.rows_in = child_obs[c].rows_in;
          so.bytes_in = child_obs[c].bytes_in;
          so.rows_out = child_obs[c].rows_out;
          so.bytes_out = child_obs[c].bytes_out;
          observations.stages.push_back(so);
          // Interior hand-offs stay in registers: neither materialized nor
          // channeled.
          if (c + 1 < child_obs.size()) {
            fused_bytes_avoided += child_obs[c].bytes_out;
          }
        }
      }
    } else {
      observations = func;
    }

    // ---- Timing simulation with observed cardinalities ----
    SegmentReport report;
    sim::PipelineSpec spec;
    spec.tile_bytes = choice.params.tile_bytes;
    spec.extra_resident_bytes = desc.extra_resident_bytes;
    if (run_fused) {
      // One launch per group; fused groups get the composed timing
      // descriptor built from the *observed* per-stage cardinalities.
      size_t next = 0;
      for (size_t g = 0; g < group_kernels.size(); ++g) {
        const size_t size =
            static_cast<size_t>(choice.fused_group_sizes[g]);
        sim::KernelLaunch launch;
        if (group_kernels[g] == nullptr) {
          launch.desc = segment.stages[next].kernel->timing();
        } else {
          std::vector<model::StageDesc> observed;
          observed.reserve(size);
          for (size_t s = next; s < next + size; ++s) {
            model::StageDesc sd;
            sd.timing = desc.stages[s].timing;
            const StageObservation& obs = observations.stages[s];
            sd.rows_in = static_cast<double>(obs.rows_in);
            sd.bytes_in = static_cast<double>(obs.bytes_in);
            sd.rows_out = static_cast<double>(obs.rows_out);
            sd.bytes_out = static_cast<double>(obs.bytes_out);
            observed.push_back(std::move(sd));
          }
          launch.desc = model::ComposeFusedStage(observed, 0, size).timing;
        }
        const StageObservation& first = observations.stages[next];
        const StageObservation& last = observations.stages[next + size - 1];
        launch.rows_in = first.rows_in;
        launch.bytes_in = first.bytes_in;
        launch.rows_out = last.rows_out;
        launch.bytes_out = last.bytes_out;
        launch.workgroups_per_tile =
            g < choice.params.workgroups.size() ? choice.params.workgroups[g]
                                                : 0;
        launch.input = sim::Endpoint::kGlobal;
        launch.output = sim::Endpoint::kGlobal;
        if (!report.description.empty()) report.description += " -> ";
        report.description += launch.desc.name;
        spec.kernels.push_back(std::move(launch));
        next += size;
      }
    } else {
      const size_t num_stages = segment.stages.size();
      for (size_t s = 0; s < num_stages; ++s) {
        sim::KernelLaunch launch;
        launch.desc = segment.stages[s].kernel->timing();
        const StageObservation& obs = func.stages[s];
        launch.rows_in = obs.rows_in;
        launch.bytes_in = obs.bytes_in;
        launch.rows_out = obs.rows_out;
        launch.bytes_out = obs.bytes_out;
        launch.workgroups_per_tile =
            s < choice.params.workgroups.size() ? choice.params.workgroups[s]
                                                : 0;
        launch.input =
            s == 0 ? sim::Endpoint::kGlobal : sim::Endpoint::kChannel;
        launch.output = s + 1 == num_stages ? sim::Endpoint::kGlobal
                                            : sim::Endpoint::kChannel;
        spec.kernels.push_back(std::move(launch));
      }
      spec.channel_configs = choice.params.channels;
      while (spec.channel_configs.size() + 1 < num_stages) {
        spec.channel_configs.push_back(sim::ChannelConfig{});
      }
      for (size_t s = 0; s < num_stages; ++s) {
        if (!report.description.empty()) report.description += " -> ";
        report.description += segment.stages[s].kernel->name();
      }
    }
    for (const Stage& stage : segment.stages) {
      report.stage_names.push_back(stage.kernel->name());
    }

    spec.trace = options.exec.trace;
    spec.fault = options.exec.fault;
    spec.label = "segment " + std::to_string(i) + ": " + report.description;
    GPL_SLOG(Debug, "core")
        .Field("segment", spec.label)
        .Field("tile_bytes", spec.tile_bytes)
        .Field("kernels", spec.kernels.size())
        .Field("concurrent", options.concurrent)
        .Field("engine", model::SegmentEngineName(
                             run_fused ? model::SegmentEngine::kFused
                                       : choice.engine))
        << "running segment";

    Result<sim::SimResult> sim_result = Status::OK();
    if (run_fused) {
      sim::Simulator::FusedAccounting accounting;
      accounting.fused_kernels = fused_groups;
      accounting.launches_saved = launches_saved;
      accounting.bytes_avoided = fused_bytes_avoided;
      sim_result = simulator_->RunFusedSegment(spec, accounting);
      report.engine = model::SegmentEngine::kFused;
    } else if (options.fused &&
               choice.engine == model::SegmentEngine::kKernelAtATime) {
      sim_result = simulator_->RunSequentialTiles(spec);
      report.engine = model::SegmentEngine::kKernelAtATime;
    } else {
      report.engine = options.concurrent
                          ? model::SegmentEngine::kGplChannel
                          : model::SegmentEngine::kKernelAtATime;
      sim_result = options.concurrent ? simulator_->RunPipeline(spec)
                                      : simulator_->RunSequentialTiles(spec);
      if (!sim_result.ok() &&
          sim_result.status().code() == StatusCode::kChannelAllocFailed &&
          options.exec.degrade_on_channel_failure) {
        // Graceful degradation: the pipelined segment could not get its
        // channels, so re-execute it kernel-at-a-time (the w/o-CE path needs
        // none). The functional output is already computed and unaffected;
        // only the simulated timing of this segment degrades.
        GPL_SLOG(Warning, "core").Field("segment", spec.label)
            << "degrading to kernel-at-a-time: "
            << sim_result.status().ToString();
        sim_result = simulator_->RunSequentialTiles(spec);
        if (sim_result.ok()) {
          report.degraded = true;
          report.engine = model::SegmentEngine::kKernelAtATime;
          ++result.degraded_segments;
        }
      }
    }
    GPL_RETURN_NOT_OK(sim_result.status());
    report.sim = sim_result.take();

    result.counters.Accumulate(report.sim.counters);
    result.total_cycles += report.sim.counters.elapsed_cycles;
    result.predicted_total_cycles += choice.estimate.total_cycles;
    if (run_fused) {
      ++result.fused_segments;
      result.fused_launches_saved += launches_saved;
      result.fused_bytes_avoided += fused_bytes_avoided;
      report.fused_groups = fused_groups;
      report.launches_saved = launches_saved;
      report.fused_bytes_avoided = fused_bytes_avoided;
    }

    report.tuning = choice;
    report.predicted_cycles = choice.estimate.total_cycles;
    report.measured_cycles = report.sim.counters.elapsed_cycles;
    report.tuning_cache_hit = tuning_cache_hit;
    report.host_wall_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - segment_start)
                              .count();
    outputs[i] = func.output;
    observations.output = std::move(func.output);
    report.observations = std::move(observations);
    result.segments.push_back(std::move(report));
  }

  if (!outputs.empty()) {
    result.output = std::move(outputs.back());
  }
  return result;
}

}  // namespace gpl
