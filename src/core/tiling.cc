#include "core/tiling.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_util.h"

namespace gpl {

std::vector<TileRange> MakeTiles(int64_t num_rows, int64_t row_width,
                                 int64_t tile_bytes) {
  GPL_CHECK(num_rows >= 0 && row_width >= 0 && tile_bytes > 0);
  std::vector<TileRange> tiles;
  if (num_rows == 0) return tiles;

  const int64_t rows_per_tile =
      std::max<int64_t>(1, tile_bytes / std::max<int64_t>(row_width, 1));
  const int64_t num_tiles = CeilDiv(num_rows, rows_per_tile);
  tiles.reserve(static_cast<size_t>(num_tiles));
  for (int64_t t = 0; t < num_tiles; ++t) {
    TileRange range;
    range.begin = t * rows_per_tile;
    range.rows = std::min(rows_per_tile, num_rows - range.begin);
    tiles.push_back(range);
  }
  return tiles;
}

}  // namespace gpl
