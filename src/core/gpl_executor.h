#ifndef GPL_CORE_GPL_EXECUTOR_H_
#define GPL_CORE_GPL_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/pipeline.h"
#include "engine/exec_options.h"
#include "model/calibration.h"
#include "model/cost_model.h"
#include "model/plan_tuner.h"
#include "model/tuning_cache.h"
#include "plan/segment.h"
#include "pool/subplan_cache.h"
#include "sim/engine.h"
#include "tpch/dbgen.h"

namespace gpl {

/// Options of a GPL run.
struct GplOptions {
  /// False selects the GPL (w/o CE) ablation: tiling without concurrent
  /// kernel execution or channels (Section 5.3.1).
  bool concurrent = true;

  /// True enables the fused engine mode: the fusion pass groups each
  /// segment's fusible chains, and the tuner picks per segment among
  /// pipelined / kernel-at-a-time / fused execution (EngineMode::kFused).
  bool fused = false;

  /// Cost-model toggle, knob overrides, trace sink, and cancellation token
  /// (shared with the engine front-end — see engine/exec_options.h).
  ExecOptions exec;
};

/// How a segment met the subplan cache (EXPLAIN ANALYZE `cache:` line).
enum class SubplanOutcome {
  kBypass,  ///< no cache configured / disabled / fault-injected / uncacheable
  kMiss,    ///< computed (and offered for retention)
  kHit,     ///< served from a retained entry or an in-flight attach
};

const char* SubplanOutcomeName(SubplanOutcome outcome);

/// Per-segment outcome: the tuner's choice and prediction, the simulated
/// execution, and the functional observations.
struct SegmentReport {
  std::string description;
  model::TuningChoice tuning;
  sim::SimResult sim;
  FunctionalRun observations;
  double predicted_cycles = 0.0;
  double measured_cycles = 0.0;
  /// Host wall-clock this segment spent in tuning + functional execution +
  /// simulation. Host time, never comparable to the simulated cycles above.
  double host_wall_ms = 0.0;
  /// True when the tuner's choice came from the shared TuningCache instead
  /// of a fresh grid search.
  bool tuning_cache_hit = false;
  /// True when this segment's channel allocation failed and it re-executed
  /// under kernel-at-a-time tiling (the w/o-CE path) instead.
  bool degraded = false;
  /// How this segment's kernels executed. kGplChannel for the plain GPL
  /// modes; the fused mode picks per segment.
  model::SegmentEngine engine = model::SegmentEngine::kGplChannel;
  /// Fusion accounting (engine == kFused only; 0 otherwise).
  int fused_groups = 0;            ///< composed kernels in this segment
  int launches_saved = 0;          ///< per-stage launches eliminated
  int64_t fused_bytes_avoided = 0; ///< hand-off bytes kept in registers
  /// Original per-stage kernel names, one per observations.stages entry —
  /// stable across engines (a fused segment's sim.kernels are the composed
  /// kernels, not the original stages).
  std::vector<std::string> stage_names;
  /// Whether this segment's functional work was served by the subplan cache.
  /// A hit changes no simulated observable: the timing simulation replays
  /// from the cold run's recorded observations.
  SubplanOutcome subplan_cache = SubplanOutcome::kBypass;
};

/// Outcome of executing a segmented plan with GPL.
///
/// `total_cycles` / `predicted_total_cycles` / `counters` are *simulated*
/// quantities and are bit-deterministic for a given plan and database.
/// `tuner_wall_ms` is host wall-clock spent in the tuner: it varies from run
/// to run (and especially under concurrent execution), so it is reported
/// separately and must never be folded into simulated-time totals.
struct GplRunResult {
  Table output;
  std::vector<SegmentReport> segments;
  sim::HwCounters counters;  ///< accumulated across segments (simulated)
  double total_cycles = 0.0;
  double predicted_total_cycles = 0.0;
  double tuner_wall_ms = 0.0;  ///< host wall-clock spent in the tuner
  int tuning_cache_hits = 0;   ///< segments whose choice came from the cache
  int tuning_cache_misses = 0; ///< segments that ran the full grid search
  /// Segments that fell back from pipelined to kernel-at-a-time execution
  /// because their channel allocation failed (graceful degradation; the
  /// functional result is unaffected, only the simulated timing changes).
  int degraded_segments = 0;
  /// Fusion accounting across segments (fused mode only; 0 otherwise).
  int fused_segments = 0;            ///< segments the tuner chose to fuse
  int fused_launches_saved = 0;      ///< per-stage launches eliminated
  int64_t fused_bytes_avoided = 0;   ///< hand-off bytes kept in registers
  /// Subplan-cache accounting (0 everywhere when no cache is configured).
  int subplan_cache_hits = 0;    ///< segments served from the subplan cache
  int subplan_cache_misses = 0;  ///< cacheable segments computed this run
};

/// The pipelined query executor — the paper's core contribution. Executes a
/// SegmentedPlan segment by segment: resolves the segment input, tunes the
/// pipeline parameters with the analytical model, streams tiles through the
/// kernels functionally, and accounts time with the event simulator
/// (concurrent kernels + channels, or the sequential w/o-CE ablation).
class GplExecutor {
 public:
  /// `tuning_cache` (optional) memoizes TuneSegment results across runs —
  /// the Engine passes its own or the QueryService's shared instance. It
  /// must outlive the executor. `subplan_cache` (optional) memoizes
  /// materialized subplan *data* — scan views, build-side hash tables, whole
  /// segment results — under exact chain+tuning signatures; same lifetime
  /// rule. Both are thread-safe and shared across worker engines.
  GplExecutor(const tpch::Database* db, const sim::Simulator* simulator,
              const model::CalibrationTable* calibration,
              model::TuningCache* tuning_cache = nullptr,
              pool::SubplanCache* subplan_cache = nullptr);

  Result<GplRunResult> Run(const SegmentedPlan& plan,
                           const GplOptions& options) const;

  /// Builds the model-side description of a segment (optimizer λ estimates;
  /// exposed for the model-evaluation benches).
  model::SegmentDesc DescribeSegment(const Segment& segment,
                                     int64_t input_rows,
                                     int64_t input_bytes) const;

 private:
  /// Resolves the segment's input as a shared view: a prior segment's output
  /// (no copy), or a base-table scan view — through the subplan cache's
  /// shared-scan path when `cache` is non-null (concurrent queries scanning
  /// the same table attach to one in-flight materialization), fresh
  /// otherwise.
  Result<std::shared_ptr<const Table>> ResolveInput(
      const Segment& segment,
      const std::vector<std::shared_ptr<const Table>>& prior_outputs,
      pool::SubplanCache* cache) const;

  const tpch::Database* db_;
  const sim::Simulator* simulator_;
  const model::CalibrationTable* calibration_;
  model::TuningCache* tuning_cache_;      ///< may be null (no memoization)
  pool::SubplanCache* subplan_cache_;     ///< may be null (no data memoization)
  std::string db_tag_;  ///< database identity folded into every cache key
  model::CostModel cost_model_;
};

}  // namespace gpl

#endif  // GPL_CORE_GPL_EXECUTOR_H_
