#include "core/pipeline.h"

#include "common/logging.h"
#include "core/tiling.h"

namespace gpl {

namespace {

/// Pushes one batch through stages [first_stage, end), updating observations
/// and appending the final stage's emissions to *output.
Status FlowBatch(const Segment& segment, size_t first_stage, Table batch,
                 std::vector<StageObservation>* observations, Table* output,
                 bool* output_initialized) {
  for (size_t s = first_stage; s < segment.stages.size(); ++s) {
    StageObservation& obs = (*observations)[s];
    obs.rows_in += batch.num_rows();
    obs.bytes_in += batch.byte_size();
    GPL_ASSIGN_OR_RETURN(Table out, segment.stages[s].kernel->Process(batch));
    obs.rows_out += out.num_rows();
    obs.bytes_out += out.byte_size();
    batch = std::move(out);
    if (batch.num_rows() == 0 && batch.num_columns() == 0) {
      return Status::OK();  // stage withheld output (accumulating kernel)
    }
  }
  if (batch.num_columns() == 0) return Status::OK();
  if (!*output_initialized) {
    *output = std::move(batch);
    *output_initialized = true;
  } else {
    GPL_RETURN_NOT_OK(output->AppendTable(batch));
  }
  return Status::OK();
}

}  // namespace

Result<FunctionalRun> RunSegmentFunctional(const Segment& segment,
                                           const Table& input,
                                           int64_t tile_bytes) {
  FunctionalRun run;
  run.stages.resize(segment.stages.size());
  run.input_rows = input.num_rows();
  run.input_bytes = input.byte_size();

  const std::vector<TileRange> tiles =
      MakeTiles(input.num_rows(), input.row_width(), tile_bytes);
  run.num_tiles = static_cast<int64_t>(tiles.size());

  bool output_initialized = false;
  for (const TileRange& tile : tiles) {
    GPL_RETURN_NOT_OK(FlowBatch(segment, 0, input.Slice(tile.begin, tile.rows),
                                &run.stages, &run.output, &output_initialized));
  }

  // Finish cascade: emit withheld state in stage order, flowing each
  // emission through the remaining stages.
  for (size_t s = 0; s < segment.stages.size(); ++s) {
    GPL_ASSIGN_OR_RETURN(Table emitted, segment.stages[s].kernel->Finish());
    if (emitted.num_columns() == 0) continue;
    StageObservation& obs = run.stages[s];
    obs.rows_out += emitted.num_rows();
    obs.bytes_out += emitted.byte_size();
    GPL_RETURN_NOT_OK(FlowBatch(segment, s + 1, std::move(emitted), &run.stages,
                                &run.output, &output_initialized));
  }

  // A hash-build segment's "output" is the materialized hash table: surface
  // its size through the last stage's bytes_out.
  if (segment.output_is_hash_build && !segment.stages.empty()) {
    StageObservation& last = run.stages.back();
    last.bytes_out = segment.stages.back().kernel->MaterializedStateBytes();
  }
  return run;
}

}  // namespace gpl
