#ifndef GPL_CORE_TILING_H_
#define GPL_CORE_TILING_H_

#include <cstdint>
#include <vector>

namespace gpl {

/// One tile of an input relation: a contiguous row range (tiles are logical
/// partitions, Section 3.3).
struct TileRange {
  int64_t begin = 0;
  int64_t rows = 0;
};

/// The tiling component: logically partitions `num_rows` rows of `row_width`
/// bytes each into tiles of at most `tile_bytes` (at least one row per
/// tile). All tiles except possibly the last have equal row counts.
std::vector<TileRange> MakeTiles(int64_t num_rows, int64_t row_width,
                                 int64_t tile_bytes);

}  // namespace gpl

#endif  // GPL_CORE_TILING_H_
