#ifndef GPL_CORE_PIPELINE_H_
#define GPL_CORE_PIPELINE_H_

#include <vector>

#include "common/status.h"
#include "plan/segment.h"
#include "storage/table.h"

namespace gpl {

/// Observed (functional) cardinalities of one pipeline stage across a
/// segment run: the ground truth that drives the timing simulation.
struct StageObservation {
  int64_t rows_in = 0;
  int64_t bytes_in = 0;
  int64_t rows_out = 0;
  int64_t bytes_out = 0;
};

/// Result of functionally executing a segment tile-by-tile.
struct FunctionalRun {
  Table output;
  std::vector<StageObservation> stages;
  int64_t input_rows = 0;
  int64_t input_bytes = 0;
  int64_t num_tiles = 0;
};

/// Streams `input` through the segment's kernel chain in tiles of at most
/// `tile_bytes`, computing real results and recording per-stage
/// cardinalities. After the last tile, kernels' Finish() outputs cascade
/// through the remaining stages (aggregates emit here).
Result<FunctionalRun> RunSegmentFunctional(const Segment& segment,
                                           const Table& input,
                                           int64_t tile_bytes);

}  // namespace gpl

#endif  // GPL_CORE_PIPELINE_H_
