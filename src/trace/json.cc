#include "trace/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace gpl {
namespace trace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) value = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

namespace {

/// Recursive-descent structural validator over the raw bytes.
class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool Run() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters after value");
    return true;
  }

 private:
  bool Fail(const std::string& what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return Fail("invalid literal");
    }
    pos_ += lit.size();
    return true;
  }

  bool Value() {
    if (++depth_ > kMaxDepth) return Fail("nesting too deep");
    bool ok = false;
    if (AtEnd()) {
      ok = Fail("unexpected end of input");
    } else {
      switch (Peek()) {
        case '{':
          ok = Object();
          break;
        case '[':
          ok = Array();
          break;
        case '"':
          ok = String();
          break;
        case 't':
          ok = Literal("true");
          break;
        case 'f':
          ok = Literal("false");
          break;
        case 'n':
          ok = Literal("null");
          break;
        default:
          ok = Number();
      }
    }
    --depth_;
    return ok;
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (AtEnd() || Peek() != '"') return Fail("expected object key");
      if (!String()) return false;
      SkipWs();
      if (AtEnd() || Peek() != ':') return Fail("expected ':'");
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (AtEnd()) return Fail("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (AtEnd()) return Fail("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool String() {
    ++pos_;  // '"'
    while (!AtEnd()) {
      const unsigned char c = static_cast<unsigned char>(Peek());
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (AtEnd()) break;
        const char e = Peek();
        if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i, ++pos_) {
            if (AtEnd() || !std::isxdigit(static_cast<unsigned char>(Peek()))) {
              return Fail("invalid \\u escape");
            }
          }
          continue;
        }
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
            e != 'n' && e != 'r' && e != 't') {
          return Fail("invalid escape");
        }
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool Number() {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("invalid number");
    }
    if (Peek() == '0') {
      ++pos_;
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("invalid fraction");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Fail("invalid exponent");
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool ValidateJson(std::string_view text, std::string* error) {
  if (error != nullptr) error->clear();
  return Parser(text, error).Run();
}

}  // namespace trace
}  // namespace gpl
