#ifndef GPL_TRACE_JSON_H_
#define GPL_TRACE_JSON_H_

#include <string>
#include <string_view>

namespace gpl {
namespace trace {

/// Escapes a string for inclusion in a JSON string literal (no surrounding
/// quotes).
std::string JsonEscape(std::string_view s);

/// Formats a double as a JSON number. JSON has no inf/nan; both are clamped
/// to 0 so exported traces always parse.
std::string JsonNumber(double value);

/// Validates that `text` is a single well-formed JSON value (RFC 8259
/// grammar, no extensions). On failure returns false and, if `error` is
/// non-null, describes the first problem with its byte offset. This is the
/// "tiny parser" used by tests and the trace_smoke target; it checks
/// structure only and does not build a document tree.
bool ValidateJson(std::string_view text, std::string* error = nullptr);

}  // namespace trace
}  // namespace gpl

#endif  // GPL_TRACE_JSON_H_
