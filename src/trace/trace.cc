#include "trace/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "trace/json.h"

namespace gpl {
namespace trace {

int TraceCollector::TrackId(const std::string& name) {
  auto it = track_ids_.find(name);
  if (it != track_ids_.end()) return it->second;
  const int id = static_cast<int>(track_names_.size());
  track_ids_.emplace(name, id);
  track_names_.push_back(name);
  return id;
}

void TraceCollector::AddSpan(int track, std::string name, std::string category,
                             double start_cycles, double end_cycles,
                             std::vector<Arg> args) {
  SpanEvent span;
  span.track = track;
  span.name = std::move(name);
  span.category = std::move(category);
  span.start_cycles = origin_cycles_ + start_cycles;
  span.end_cycles = origin_cycles_ + std::max(end_cycles, start_cycles);
  span.args = std::move(args);
  spans_.push_back(std::move(span));
}

void TraceCollector::AddInstant(int track, std::string name,
                                std::string category, double t_cycles) {
  InstantEvent ev;
  ev.track = track;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.t_cycles = origin_cycles_ + t_cycles;
  instants_.push_back(std::move(ev));
}

void TraceCollector::AddCounter(const std::string& name, double t_cycles,
                                double value) {
  counters_.push_back(CounterSample{name, origin_cycles_ + t_cycles, value});
}

void TraceCollector::AddKernelPhase(const std::string& name, double compute,
                                    double mem, double channel, double stall) {
  for (KernelPhase& phase : phases_) {
    if (phase.name == name) {
      phase.compute_cycles += compute;
      phase.mem_cycles += mem;
      phase.channel_cycles += channel;
      phase.stall_cycles += stall;
      return;
    }
  }
  phases_.push_back(KernelPhase{name, compute, mem, channel, stall});
}

double TraceCollector::SpanCoverageCycles() const {
  // Union of [start, end) over all spans, via interval sweep.
  std::vector<std::pair<double, double>> intervals;
  intervals.reserve(spans_.size());
  for (const SpanEvent& span : spans_) {
    if (span.end_cycles > span.start_cycles) {
      intervals.emplace_back(span.start_cycles, span.end_cycles);
    }
  }
  std::sort(intervals.begin(), intervals.end());
  double covered = 0.0;
  double cursor = -1.0;
  for (const auto& [lo, hi] : intervals) {
    const double start = std::max(lo, cursor);
    if (hi > start) {
      covered += hi - start;
      cursor = hi;
    }
  }
  return covered;
}

std::string TraceCollector::ToChromeJson() const {
  const double cycles_per_us = clock_mhz_;  // MHz == cycles per microsecond
  auto us = [cycles_per_us](double cycles) {
    return JsonNumber(cycles / cycles_per_us);
  };

  std::string out;
  out.reserve(256 + 160 * (spans_.size() + instants_.size() + counters_.size()));
  out += "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&out, &first]() {
    if (!first) out += ",\n";
    first = false;
  };

  sep();
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"gpl-sim\"}}";
  for (size_t t = 0; t < track_names_.size(); ++t) {
    sep();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(t) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           JsonEscape(track_names_[t]) + "\"}}";
    sep();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(t) +
           ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" +
           std::to_string(t) + "}}";
  }

  for (const SpanEvent& span : spans_) {
    sep();
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(span.track) +
           ",\"name\":\"" + JsonEscape(span.name) + "\",\"cat\":\"" +
           JsonEscape(span.category) + "\",\"ts\":" + us(span.start_cycles) +
           ",\"dur\":" + us(span.end_cycles - span.start_cycles);
    if (!span.args.empty()) {
      out += ",\"args\":{";
      for (size_t i = 0; i < span.args.size(); ++i) {
        if (i > 0) out += ",";
        out += "\"" + JsonEscape(span.args[i].first) + "\":" +
               span.args[i].second;
      }
      out += "}";
    }
    out += "}";
  }

  for (const InstantEvent& ev : instants_) {
    sep();
    out += "{\"ph\":\"i\",\"pid\":1,\"tid\":" + std::to_string(ev.track) +
           ",\"name\":\"" + JsonEscape(ev.name) + "\",\"cat\":\"" +
           JsonEscape(ev.category) + "\",\"ts\":" + us(ev.t_cycles) +
           ",\"s\":\"t\"}";
  }

  for (const CounterSample& sample : counters_) {
    sep();
    out += "{\"ph\":\"C\",\"pid\":1,\"name\":\"" + JsonEscape(sample.name) +
           "\",\"ts\":" + us(sample.t_cycles) + ",\"args\":{\"value\":" +
           JsonNumber(sample.value) + "}}";
  }

  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status TraceCollector::WriteChromeJson(const std::string& path) const {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file.is_open()) {
    return Status::Internal("cannot open trace output: " + path);
  }
  file << ToChromeJson();
  file.close();
  if (!file.good()) return Status::Internal("failed writing trace: " + path);
  return Status::OK();
}

std::string TraceCollector::BreakdownReport(double elapsed_ms) const {
  double total_work = overhead_cycles_;
  for (const KernelPhase& phase : phases_) {
    total_work += phase.compute_cycles + phase.mem_cycles +
                  phase.channel_cycles + phase.stall_cycles;
  }
  const double scale = total_work > 0.0 ? elapsed_ms / total_work : 0.0;

  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-24s %10s %10s %10s %10s %10s\n", "kernel",
                "compute", "mem", "DC", "delay", "total(ms)");
  out += buf;
  double accounted = 0.0;
  for (const KernelPhase& phase : phases_) {
    const double compute = phase.compute_cycles * scale;
    const double mem = phase.mem_cycles * scale;
    const double dc = phase.channel_cycles * scale;
    const double delay = phase.stall_cycles * scale;
    const double total = compute + mem + dc + delay;
    accounted += total;
    std::snprintf(buf, sizeof(buf), "%-24s %10.4f %10.4f %10.4f %10.4f %10.4f\n",
                  phase.name.c_str(), compute, mem, dc, delay, total);
    out += buf;
  }
  const double other = overhead_cycles_ * scale;
  accounted += other;
  std::snprintf(buf, sizeof(buf), "%-24s %10s %10s %10s %10s %10.4f\n",
                "(launch/scheduling)", "-", "-", "-", "-", other);
  out += buf;
  std::snprintf(buf, sizeof(buf), "%-24s %54.4f\n", "sum", accounted);
  out += buf;
  return out;
}

}  // namespace trace
}  // namespace gpl
