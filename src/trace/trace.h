#ifndef GPL_TRACE_TRACE_H_
#define GPL_TRACE_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace gpl {
namespace trace {

/// One key/value annotation attached to a span ("args" in the Chrome trace
/// format). Values are pre-rendered JSON fragments (use trace::JsonNumber /
/// quoted JsonEscape output).
using Arg = std::pair<std::string, std::string>;

/// A completed execution interval on a track (Chrome "X" event). Times are
/// absolute simulated cycles (the collector applies its origin on Add).
struct SpanEvent {
  int track = 0;
  std::string name;
  std::string category;
  double start_cycles = 0.0;
  double end_cycles = 0.0;
  std::vector<Arg> args;
};

/// A point event on a track (Chrome "i" event) — channel starve/block
/// transitions, tile boundaries, etc.
struct InstantEvent {
  int track = 0;
  std::string name;
  std::string category;
  double t_cycles = 0.0;
};

/// One sample of a named time series (Chrome "C" event): channel occupancy,
/// resident work-groups, cache hit ratio.
struct CounterSample {
  std::string name;
  double t_cycles = 0.0;
  double value = 0.0;
};

/// Accumulated per-kernel cycle breakdown (the per-kernel analogue of the
/// paper's Figures 20/29 cost components).
struct KernelPhase {
  std::string name;
  double compute_cycles = 0.0;
  double mem_cycles = 0.0;
  double channel_cycles = 0.0;  ///< DC cost
  double stall_cycles = 0.0;    ///< pipeline delay
};

/// Collects spans, instants and counter samples from the simulator and the
/// engines on a single simulated-time axis, and exports them as Chrome
/// trace-event JSON (chrome://tracing, Perfetto).
///
/// Tracing is opt-in: every emission site takes a `TraceCollector*` and
/// treats nullptr as disabled, so a run without a collector only pays
/// pointer-null checks. The collector itself is not thread-safe (the
/// simulator is single-threaded).
///
/// Consecutive simulator runs each start at relative cycle 0; the simulator
/// advances the collector's origin by the elapsed cycles after each run, so
/// successive kernel launches / segments lay out end-to-end on the exported
/// timeline, matching the accumulated `HwCounters::elapsed_cycles`.
class TraceCollector {
 public:
  TraceCollector() = default;

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Stable track id for a display name (one Chrome "thread" per track).
  int TrackId(const std::string& name);

  // ---- Emission (times are relative to the current origin) ----
  void AddSpan(int track, std::string name, std::string category,
               double start_cycles, double end_cycles,
               std::vector<Arg> args = {});
  void AddInstant(int track, std::string name, std::string category,
                  double t_cycles);
  void AddCounter(const std::string& name, double t_cycles, double value);
  /// Accumulates a kernel's cycle breakdown (merged by kernel name).
  void AddKernelPhase(const std::string& name, double compute, double mem,
                      double channel, double stall);
  /// Accumulates launch/scheduling overhead cycles (the "other" component).
  void AddOverhead(double cycles) { overhead_cycles_ += cycles; }

  // ---- Time base ----
  double origin_cycles() const { return origin_cycles_; }
  void AdvanceOrigin(double elapsed_cycles) { origin_cycles_ += elapsed_cycles; }
  /// Device clock, used to convert cycles to trace microseconds
  /// (cycles / MHz = us). Defaults to 1000 (1 cycle = 1 ns) until set.
  void set_clock_mhz(double mhz) { clock_mhz_ = mhz > 0.0 ? mhz : clock_mhz_; }
  double clock_mhz() const { return clock_mhz_; }

  // ---- Introspection (tests, reports) ----
  const std::vector<SpanEvent>& spans() const { return spans_; }
  const std::vector<InstantEvent>& instants() const { return instants_; }
  const std::vector<CounterSample>& counters() const { return counters_; }
  const std::vector<KernelPhase>& kernel_phases() const { return phases_; }
  double overhead_cycles() const { return overhead_cycles_; }
  const std::map<std::string, int>& tracks() const { return track_ids_; }
  bool empty() const {
    return spans_.empty() && instants_.empty() && counters_.empty() &&
           phases_.empty() && overhead_cycles_ == 0.0;
  }

  /// Union length (in cycles) of all spans on every track — how much of the
  /// timeline the trace explains. Overlapping spans count once.
  double SpanCoverageCycles() const;

  // ---- Export ----
  /// Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

  /// Human-readable per-kernel phase breakdown. Components are scaled so
  /// that all kernels' phases plus the overhead row sum to `elapsed_ms`
  /// (the per-kernel analogue of QueryMetrics::Finalize / Figures 20, 29).
  std::string BreakdownReport(double elapsed_ms) const;

 private:
  std::map<std::string, int> track_ids_;
  std::vector<std::string> track_names_;  ///< index = track id
  std::vector<SpanEvent> spans_;
  std::vector<InstantEvent> instants_;
  std::vector<CounterSample> counters_;
  std::vector<KernelPhase> phases_;
  double overhead_cycles_ = 0.0;
  double origin_cycles_ = 0.0;
  double clock_mhz_ = 1000.0;
};

}  // namespace trace
}  // namespace gpl

#endif  // GPL_TRACE_TRACE_H_
