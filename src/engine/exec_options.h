#ifndef GPL_ENGINE_EXEC_OPTIONS_H_
#define GPL_ENGINE_EXEC_OPTIONS_H_

#include <vector>

#include "common/cancel.h"
#include "model/plan_tuner.h"
#include "shard/partition_scheme.h"
#include "sim/device.h"

namespace gpl {

namespace trace {
class TraceCollector;
}  // namespace trace

namespace sim {
class FaultInjector;
}  // namespace sim

/// Per-execution options shared by every execution entry point (`Engine`,
/// `GplExecutor::Run`, `KbeEngine::Execute`). Factoring them into one struct
/// keeps the engine front-end and the executors from drifting apart (they
/// previously duplicated these fields) and gives multi-query callers one
/// shape to override per call.
///
/// Header note: this lives under engine/ (the public API layer) but is
/// deliberately dependency-light — only the tuner knobs, a trace forward
/// declaration and the cancellation token — so the lower core/ layer can
/// embed it without a cycle.
struct ExecOptions {
  /// GPL: use the analytical model to pick Δ, wg_Ki and channel configs
  /// (Section 4). When false, the defaults / overrides below apply.
  bool use_cost_model = true;

  /// Pins for individual knobs (parameter-sweep benches).
  model::TuningOverrides overrides;

  /// Optional tracing/profiling sink (see trace/trace.h). Executions emit
  /// kernel/tile spans, channel occupancy samples and stall events into it;
  /// successive queries lay out end-to-end on the simulated timeline.
  /// nullptr (the default) disables tracing with no overhead beyond null
  /// checks. The collector is not thread-safe: never share one across
  /// concurrently executing queries.
  trace::TraceCollector* trace = nullptr;

  /// Optional fault injector (see sim/fault.h). When non-null, every kernel
  /// launch and channel reservation consults it; injected faults surface as
  /// kTransientDeviceError / kChannelAllocFailed. nullptr (the default)
  /// disables injection with no overhead beyond null checks. Like the trace
  /// collector the injector is mutable per-execution state: never share one
  /// across concurrently executing queries.
  sim::FaultInjector* fault = nullptr;

  /// GPL only: when a segment's channel allocation fails (injected or real),
  /// re-execute that segment under kernel-at-a-time tiling (the w/o-CE path,
  /// which needs no channels) instead of failing the query. Degraded
  /// segments are counted in QueryMetrics::degraded_segments.
  bool degrade_on_channel_failure = true;

  /// Optional cooperative cancellation/deadline token. Executors poll it at
  /// coarse boundaries (GPL: segment starts; KBE: operator starts) and
  /// unwind with kCancelled/kDeadlineExceeded. nullptr disables the checks.
  /// The token must outlive the execution.
  const CancelToken* cancel = nullptr;

  /// Host threads the functional primitive bodies and the tuner grid search
  /// may use (morsel-parallel over the process-wide work-stealing pool; see
  /// common/thread_pool.h). 0 = hardware_concurrency; 1 = fully serial (the
  /// oracle path the parallel implementations are tested against). Purely a
  /// host-side knob: results, hardware counters and simulated cycle counts
  /// are bit-identical at any setting.
  int host_threads = 0;

  /// Memoize TuneSegment results in the engine's TuningCache (shared across
  /// QueryService workers), collapsing steady-state OptimizeWallMs() to a
  /// lookup. Keys are exact segment signatures, so a hit returns precisely
  /// the choice a fresh search would — simulated timing never changes.
  /// Disable (--no-tuning-cache) to re-run the grid search every segment.
  bool use_tuning_cache = true;

  /// Memoize materialized subplan data (build-side hash tables, decoded scan
  /// views, segment results) in the engine's pool::SubplanCache when one is
  /// configured (EngineOptions::subplan_cache). A hit replays the timing
  /// simulation from the cold run's recorded observations, so every
  /// simulated observable — result table, counters, elapsed_ms — is
  /// bit-identical to cache-off execution; only host wall-clock drops.
  /// Automatically bypassed when `fault` is set (injected faults must hit
  /// the same sites as isolated execution). Disable via --no-subplan-cache.
  bool use_subplan_cache = true;

  /// Sharded-execution routing (--shards / --partition / --link-gbps).
  /// `Engine::Execute(query, exec)` IS the sharded entry point: shards > 1
  /// (or more than one entry in `device_list`) makes it partition its
  /// database lazily and fan the query out over a shard::ShardedExecutor —
  /// the CLI, benches and the service all ride this one surface instead of
  /// constructing executors by hand. shards == 1 runs the plain
  /// single-device path with zero sharding overhead.
  int shards = 1;
  /// How the fact table splits across shards (kHash co-partitions orders so
  /// that join stays shard-local; kRange broadcasts everything but lineitem).
  shard::PartitionScheme partition = shard::PartitionScheme::kHash;
  /// Devices of the shard group, one per shard. Empty = `shards` copies of
  /// the engine's own device. When non-empty its size wins over `shards`.
  std::vector<sim::DeviceSpec> device_list;
  /// Link bandwidth override in GB/s for the group's interconnect;
  /// 0 keeps the sim::LinkSpec default (PCIe 3.0-class, 16 GB/s).
  double link_gbps = 0.0;
};

}  // namespace gpl

#endif  // GPL_ENGINE_EXEC_OPTIONS_H_
