#include "engine/engine.h"

#include <chrono>

#include "common/logging.h"
#include "engine/ocelot_engine.h"
#include "plan/segment.h"

namespace gpl {

const char* EngineModeName(EngineMode mode) {
  switch (mode) {
    case EngineMode::kKbe:
      return "KBE";
    case EngineMode::kGplNoCe:
      return "GPL (w/o CE)";
    case EngineMode::kGpl:
      return "GPL";
    case EngineMode::kOcelot:
      return "Ocelot";
  }
  return "?";
}

Result<EngineMode> ParseEngineMode(std::string_view name) {
  if (name == "gpl") return EngineMode::kGpl;
  if (name == "kbe") return EngineMode::kKbe;
  if (name == "noce") return EngineMode::kGplNoCe;
  if (name == "ocelot") return EngineMode::kOcelot;
  return Status::InvalidArgument("unknown mode: '" + std::string(name) +
                                 "' (want gpl|kbe|noce|ocelot)");
}

Result<sim::DeviceSpec> ParseDeviceSpec(std::string_view name) {
  if (name == "amd") return sim::DeviceSpec::AmdA10();
  if (name == "nvidia") return sim::DeviceSpec::NvidiaK40();
  return Status::InvalidArgument("unknown device: '" + std::string(name) +
                                 "' (want amd|nvidia)");
}

Result<std::vector<sim::DeviceSpec>> ParseDeviceList(std::string_view csv) {
  std::vector<sim::DeviceSpec> devices;
  size_t begin = 0;
  while (begin <= csv.size()) {
    const size_t comma = csv.find(',', begin);
    const std::string_view token =
        csv.substr(begin, comma == std::string_view::npos ? std::string_view::npos
                                                          : comma - begin);
    if (token.empty()) {
      return Status::InvalidArgument(
          "empty device name in list: '" + std::string(csv) +
          "' (want comma-separated amd|nvidia)");
    }
    GPL_ASSIGN_OR_RETURN(sim::DeviceSpec spec, ParseDeviceSpec(token));
    devices.push_back(std::move(spec));
    if (comma == std::string_view::npos) break;
    begin = comma + 1;
  }
  return devices;
}

Engine::Engine(const tpch::Database* db, EngineOptions options)
    : db_(db),
      options_(std::move(options)),
      catalog_(Catalog::FromDatabase(*db)),
      simulator_(options_.device, options_.metrics),
      owned_calibration_(options_.calibration != nullptr
                             ? std::optional<model::CalibrationTable>()
                             : model::CalibrationTable::Run(simulator_)),
      calibration_(options_.calibration != nullptr ? options_.calibration
                                                   : &*owned_calibration_),
      owned_tuning_cache_(options_.tuning_cache != nullptr
                              ? nullptr
                              : std::make_unique<model::TuningCache>()),
      tuning_cache_(options_.tuning_cache != nullptr ? options_.tuning_cache
                                                     : owned_tuning_cache_.get()),
      gpl_executor_(db, &simulator_, calibration_, tuning_cache_),
      kbe_engine_(db, &simulator_, KbeFlavor{}),
      ocelot_engine_(db, &simulator_, OcelotFlavor()) {
  GPL_CHECK(db != nullptr);
}

Result<PhysicalOpPtr> Engine::Plan(const LogicalQuery& query) const {
  PlanOptions plan_options;
  if (options_.partitioned_joins) {
    plan_options.partition_build_threshold_bytes =
        options_.partition_threshold_bytes > 0
            ? options_.partition_threshold_bytes
            : options_.device.cache_bytes / 2;
    plan_options.num_partitions = options_.num_partitions;
  }
  return BuildPhysicalPlan(query, catalog_, plan_options);
}

Result<QueryResult> Engine::Execute(const LogicalQuery& query) {
  return Execute(query, options_.exec);
}

Result<QueryResult> Engine::Execute(const LogicalQuery& query,
                                    const ExecOptions& exec) {
  if (exec.cancel != nullptr) GPL_RETURN_NOT_OK(exec.cancel->Check());
  const auto start = std::chrono::steady_clock::now();
  GPL_ASSIGN_OR_RETURN(PhysicalOpPtr plan, Plan(query));
  const double plan_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  GPL_ASSIGN_OR_RETURN(QueryResult result, ExecutePlan(plan, exec));
  result.metrics.plan_wall_ms += plan_ms;
  GPL_SLOG(Info, "engine")
      .Field("query", query.name)
      .Field("mode", EngineModeName(options_.mode))
      .Field("sim_ms", result.metrics.elapsed_ms)
      .Field("plan_ms", result.metrics.OptimizeWallMs())
      << "query executed";
  return result;
}

Result<QueryResult> Engine::ExecutePlan(const PhysicalOpPtr& plan) {
  return ExecutePlan(plan, options_.exec);
}

Result<QueryResult> Engine::ExecutePlan(const PhysicalOpPtr& plan,
                                        const ExecOptions& exec) {
  switch (options_.mode) {
    case EngineMode::kKbe:
      return kbe_engine_.Execute(plan, exec);
    case EngineMode::kOcelot:
      return ocelot_engine_.Execute(plan, exec);
    case EngineMode::kGpl:
    case EngineMode::kGplNoCe: {
      GPL_ASSIGN_OR_RETURN(GplRunResult run, ExecuteGplDetailed(plan, exec));
      QueryResult result;
      result.metrics = FinalizeGplMetrics(run);
      result.table = std::move(run.output);
      return result;
    }
  }
  return Status::Internal("unknown engine mode");
}

QueryMetrics Engine::FinalizeGplMetrics(const GplRunResult& run) const {
  QueryMetrics metrics;
  metrics.counters = run.counters;
  metrics.Finalize(simulator_.device());
  metrics.predicted_ms =
      simulator_.device().CyclesToMs(run.predicted_total_cycles);
  metrics.tune_wall_ms = run.tuner_wall_ms;
  metrics.tuning_cache_hits = run.tuning_cache_hits;
  metrics.tuning_cache_misses = run.tuning_cache_misses;
  metrics.degraded_segments = run.degraded_segments;
  return metrics;
}

Result<GplRunResult> Engine::ExecuteGplDetailed(const PhysicalOpPtr& plan) {
  return ExecuteGplDetailed(plan, options_.exec);
}

Result<GplRunResult> Engine::ExecuteGplDetailed(const PhysicalOpPtr& plan,
                                                const ExecOptions& exec) {
  GPL_ASSIGN_OR_RETURN(SegmentedPlan segmented, SegmentPlan(plan));
  GplOptions gpl_options;
  gpl_options.concurrent = options_.mode != EngineMode::kGplNoCe;
  gpl_options.exec = exec;
  return gpl_executor_.Run(segmented, gpl_options);
}

}  // namespace gpl
