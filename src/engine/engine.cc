#include "engine/engine.h"

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "engine/ocelot_engine.h"
#include "plan/segment.h"
#include "shard/device_group.h"
#include "shard/partitioner.h"
#include "shard/sharded_executor.h"

namespace gpl {

/// Sharded-execution state built lazily by ShardedFor(): the partitioned
/// database (owned, unless EngineOptions::sharded_db matches the request)
/// and the executor over it. Rebuilt whenever the sharding shape — shard
/// count, scheme, devices, link — changes between calls.
struct Engine::ShardedState {
  std::string signature;
  std::optional<shard::ShardedDatabase> owned_sharded;
  const shard::ShardedDatabase* sharded = nullptr;
  std::unique_ptr<shard::ShardedExecutor> executor;
};

const char* EngineModeName(EngineMode mode) {
  switch (mode) {
    case EngineMode::kKbe:
      return "KBE";
    case EngineMode::kGplNoCe:
      return "GPL (w/o CE)";
    case EngineMode::kGpl:
      return "GPL";
    case EngineMode::kOcelot:
      return "Ocelot";
    case EngineMode::kFused:
      return "Fused";
  }
  return "?";
}

Result<EngineMode> ParseEngineMode(std::string_view name) {
  if (name == "gpl") return EngineMode::kGpl;
  if (name == "kbe") return EngineMode::kKbe;
  if (name == "noce") return EngineMode::kGplNoCe;
  if (name == "ocelot") return EngineMode::kOcelot;
  if (name == "fused") return EngineMode::kFused;
  return Status::InvalidArgument("unknown mode: '" + std::string(name) +
                                 "' (want gpl|kbe|noce|ocelot|fused)");
}

Result<sim::DeviceSpec> ParseDeviceSpec(std::string_view name) {
  if (name == "amd") return sim::DeviceSpec::AmdA10();
  if (name == "nvidia") return sim::DeviceSpec::NvidiaK40();
  return Status::InvalidArgument("unknown device: '" + std::string(name) +
                                 "' (want amd|nvidia)");
}

Result<std::vector<sim::DeviceSpec>> ParseDeviceList(std::string_view csv) {
  std::vector<sim::DeviceSpec> devices;
  size_t begin = 0;
  while (begin <= csv.size()) {
    const size_t comma = csv.find(',', begin);
    const std::string_view token =
        csv.substr(begin, comma == std::string_view::npos ? std::string_view::npos
                                                          : comma - begin);
    if (token.empty()) {
      return Status::InvalidArgument(
          "empty device name in list: '" + std::string(csv) +
          "' (want comma-separated amd|nvidia)");
    }
    GPL_ASSIGN_OR_RETURN(sim::DeviceSpec spec, ParseDeviceSpec(token));
    devices.push_back(std::move(spec));
    if (comma == std::string_view::npos) break;
    begin = comma + 1;
  }
  return devices;
}

Engine::~Engine() = default;

Engine::Engine(const tpch::Database* db, EngineOptions options)
    : db_(db),
      options_(std::move(options)),
      catalog_(Catalog::FromDatabase(*db)),
      simulator_(options_.device, options_.metrics),
      owned_calibration_(options_.calibration != nullptr
                             ? std::optional<model::CalibrationTable>()
                             : model::CalibrationTable::Run(simulator_)),
      calibration_(options_.calibration != nullptr ? options_.calibration
                                                   : &*owned_calibration_),
      owned_tuning_cache_(options_.tuning_cache != nullptr
                              ? nullptr
                              : std::make_unique<model::TuningCache>()),
      tuning_cache_(options_.tuning_cache != nullptr ? options_.tuning_cache
                                                     : owned_tuning_cache_.get()),
      gpl_executor_(db, &simulator_, calibration_, tuning_cache_,
                    options_.subplan_cache),
      kbe_engine_(db, &simulator_, KbeFlavor{}),
      ocelot_engine_(db, &simulator_, OcelotFlavor()) {
  GPL_CHECK(db != nullptr);
}

Result<PhysicalOpPtr> Engine::Plan(const LogicalQuery& query) const {
  PlanOptions plan_options;
  if (options_.partitioned_joins) {
    plan_options.partition_build_threshold_bytes =
        options_.partition_threshold_bytes > 0
            ? options_.partition_threshold_bytes
            : options_.device.cache_bytes / 2;
    plan_options.num_partitions = options_.num_partitions;
  }
  return BuildPhysicalPlan(query, catalog_, plan_options);
}

Result<QueryResult> Engine::Execute(const LogicalQuery& query) {
  return Execute(query, options_.exec);
}

Result<shard::ShardedExecutor*> Engine::ShardedFor(const ExecOptions& exec) {
  if (!IsShardedExec(exec)) {
    return Status::InvalidArgument(
        "ShardedFor requires a sharded ExecOptions (shards > 1 or a "
        "multi-entry device_list)");
  }
  // The sharding shape: devices (explicit list, or N copies of the engine's
  // own device), partition scheme and link bandwidth.
  std::vector<sim::DeviceSpec> devices = exec.device_list;
  if (devices.empty()) {
    devices.assign(static_cast<size_t>(exec.shards), options_.device);
  }
  const int num_shards = static_cast<int>(devices.size());
  sim::LinkSpec link;
  if (exec.link_gbps > 0.0) link.gbytes_per_sec = exec.link_gbps;

  std::string signature = shard::PartitionSchemeName(exec.partition);
  signature += '|';
  signature += std::to_string(num_shards);
  signature += '|';
  signature += std::to_string(link.gbytes_per_sec);
  for (const sim::DeviceSpec& device : devices) {
    signature += '|';
    signature += device.name;
  }
  if (sharded_state_ != nullptr && sharded_state_->signature == signature) {
    return sharded_state_->executor.get();
  }

  auto state = std::make_unique<ShardedState>();
  state->signature = std::move(signature);
  if (options_.sharded_db != nullptr &&
      options_.sharded_db->num_shards() == num_shards &&
      options_.sharded_db->options.scheme == exec.partition) {
    state->sharded = options_.sharded_db;
  } else {
    shard::PartitionOptions partition_options;
    partition_options.num_shards = num_shards;
    partition_options.scheme = exec.partition;
    GPL_ASSIGN_OR_RETURN(shard::ShardedDatabase sharded,
                         shard::PartitionDatabase(*db_, partition_options));
    state->owned_sharded = std::move(sharded);
    state->sharded = &*state->owned_sharded;
  }

  shard::DeviceGroup group;
  group.devices = std::move(devices);
  group.link = link;
  EngineOptions executor_options = options_;
  executor_options.sharded_db = nullptr;  // the executor's engines are leaves
  executor_options.device_calibrations = nullptr;
  executor_options.tuning_cache = tuning_cache_;
  // Shard engines run over per-shard partitions of the database; subplan
  // data cached against the whole database must never leak into them.
  executor_options.subplan_cache = nullptr;
  state->executor = std::make_unique<shard::ShardedExecutor>(
      db_, state->sharded, std::move(group), std::move(executor_options),
      options_.device_calibrations);
  sharded_state_ = std::move(state);
  return sharded_state_->executor.get();
}

Result<QueryResult> Engine::Execute(const LogicalQuery& query,
                                    const ExecOptions& exec) {
  if (exec.cancel != nullptr) GPL_RETURN_NOT_OK(exec.cancel->Check());
  if (IsShardedExec(exec)) {
    GPL_ASSIGN_OR_RETURN(shard::ShardedExecutor * sharded, ShardedFor(exec));
    return sharded->Execute(query, exec);
  }
  const auto start = std::chrono::steady_clock::now();
  GPL_ASSIGN_OR_RETURN(PhysicalOpPtr plan, Plan(query));
  const double plan_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  GPL_ASSIGN_OR_RETURN(QueryResult result, ExecutePlan(plan, exec));
  result.metrics.plan_wall_ms += plan_ms;
  GPL_SLOG(Info, "engine")
      .Field("query", query.name)
      .Field("mode", EngineModeName(options_.mode))
      .Field("sim_ms", result.metrics.elapsed_ms)
      .Field("plan_ms", result.metrics.OptimizeWallMs())
      << "query executed";
  return result;
}

Result<QueryResult> Engine::ExecutePlan(const PhysicalOpPtr& plan) {
  return ExecutePlan(plan, options_.exec);
}

Result<QueryResult> Engine::ExecutePlan(const PhysicalOpPtr& plan,
                                        const ExecOptions& exec) {
  switch (options_.mode) {
    case EngineMode::kKbe:
      return kbe_engine_.Execute(plan, exec);
    case EngineMode::kOcelot:
      return ocelot_engine_.Execute(plan, exec);
    case EngineMode::kGpl:
    case EngineMode::kGplNoCe:
    case EngineMode::kFused: {
      GPL_ASSIGN_OR_RETURN(GplRunResult run, ExecuteGplDetailed(plan, exec));
      QueryResult result;
      result.metrics = FinalizeGplMetrics(run);
      result.table = std::move(run.output);
      return result;
    }
  }
  return Status::Internal("unknown engine mode");
}

QueryMetrics Engine::FinalizeGplMetrics(const GplRunResult& run) const {
  QueryMetrics metrics;
  metrics.counters = run.counters;
  metrics.Finalize(simulator_.device());
  metrics.predicted_ms =
      simulator_.device().CyclesToMs(run.predicted_total_cycles);
  metrics.tune_wall_ms = run.tuner_wall_ms;
  metrics.tuning_cache_hits = run.tuning_cache_hits;
  metrics.tuning_cache_misses = run.tuning_cache_misses;
  metrics.degraded_segments = run.degraded_segments;
  metrics.subplan_cache_hits = run.subplan_cache_hits;
  metrics.subplan_cache_misses = run.subplan_cache_misses;
  metrics.fused_segments = run.fused_segments;
  metrics.fused_launches_saved = run.fused_launches_saved;
  metrics.fused_bytes_avoided = run.fused_bytes_avoided;
  return metrics;
}

Result<GplRunResult> Engine::ExecuteGplDetailed(const PhysicalOpPtr& plan) {
  return ExecuteGplDetailed(plan, options_.exec);
}

Result<GplRunResult> Engine::ExecuteGplDetailed(const PhysicalOpPtr& plan,
                                                const ExecOptions& exec) {
  GPL_ASSIGN_OR_RETURN(SegmentedPlan segmented, SegmentPlan(plan));
  GplOptions gpl_options;
  gpl_options.concurrent = options_.mode != EngineMode::kGplNoCe;
  gpl_options.fused = options_.mode == EngineMode::kFused;
  gpl_options.exec = exec;
  return gpl_executor_.Run(segmented, gpl_options);
}

}  // namespace gpl
