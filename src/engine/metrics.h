#ifndef GPL_ENGINE_METRICS_H_
#define GPL_ENGINE_METRICS_H_

#include <string>
#include <vector>

#include "sim/counters.h"
#include "sim/device.h"
#include "storage/table.h"

namespace gpl {

/// Metrics of one query execution, combining simulated time, hardware
/// counters, and the cost-model prediction (for GPL runs).
///
/// Time bases: `elapsed_ms`, `predicted_ms` and every counter-derived field
/// are *simulated* device time — deterministic for a given query/database.
/// The `*_wall_ms` fields are *host* wall-clock (planning and tuning run on
/// the host, not on the simulated device); they vary run to run, especially
/// under concurrent execution, and are never part of simulated totals.
struct QueryMetrics {
  double elapsed_ms = 0.0;
  double predicted_ms = 0.0;   ///< analytical-model estimate (GPL only)
  double plan_wall_ms = 0.0;   ///< host wall-clock of query planning
  double tune_wall_ms = 0.0;   ///< host wall-clock of parameter tuning

  sim::HwCounters counters;

  // Derived counter summaries (filled by Finalize).
  double valu_busy = 0.0;
  double mem_unit_busy = 0.0;
  double occupancy = 0.0;
  double cache_hit_ratio = 0.0;

  /// Breakdown of elapsed time by component, scaled so the parts sum to
  /// elapsed_ms (Figures 4, 20, 29).
  double compute_ms = 0.0;
  double mem_ms = 0.0;
  double dc_ms = 0.0;     ///< data channel cost (GPL only)
  double delay_ms = 0.0;  ///< pipeline delay (GPL only)
  double other_ms = 0.0;  ///< launch/scheduling overheads

  int64_t input_bytes = 0;
  int64_t materialized_bytes = 0;  ///< intermediates written to global memory
  int64_t channel_bytes = 0;       ///< intermediates passed through channels

  /// Tuning-cache accounting for this execution (GPL with cost model only).
  /// A hit skips the grid search entirely, so tune_wall_ms collapses toward
  /// zero; hits never change the chosen parameters or simulated timing.
  int64_t tuning_cache_hits = 0;
  int64_t tuning_cache_misses = 0;

  /// Subplan-cache (data memoization) accounting for this execution — GPL
  /// modes with a configured pool::SubplanCache only, 0 elsewhere. A hit
  /// serves a segment's materialized result (scan view, hash table, output
  /// table) from the cache and replays the timing simulation from the cold
  /// run's recorded observations, so simulated fields never change; only
  /// host wall-clock drops.
  int64_t subplan_cache_hits = 0;
  int64_t subplan_cache_misses = 0;

  /// Segments that fell back from pipelined to kernel-at-a-time execution
  /// because channel allocation failed (see ExecOptions::
  /// degrade_on_channel_failure). 0 in fault-free runs.
  int64_t degraded_segments = 0;

  /// Fusion accounting (EngineMode::kFused only; 0 elsewhere). Non-zero
  /// fused_segments proves fusion actually fired — the bench gate checks it
  /// so a silent fallback to the GPL-channel path cannot pass as a win.
  int64_t fused_segments = 0;        ///< segments the tuner ran fused
  int64_t fused_launches_saved = 0;  ///< per-stage launches eliminated
  int64_t fused_bytes_avoided = 0;   ///< hand-off bytes kept in registers

  // ---- Sharded execution (shard::ShardedExecutor; zero/empty for
  // single-device runs). For sharded runs `elapsed_ms` is the parallel
  // makespan — max over per-device times plus exchange plus the serial
  // merge — while `counters` sum the work of every device, so the breakdown
  // fields are rescaled to the makespan. ----
  int64_t num_shards = 0;          ///< devices in the group (0 = unsharded)
  int64_t broadcast_bytes = 0;     ///< relation exchanges crossing links
  int64_t shuffle_bytes = 0;       ///< partial results gathered to device 0
  int64_t exchange_bytes = 0;      ///< broadcast + shuffle
  /// Counterfactual relation-exchange bytes had every non-co-partitioned
  /// relation broadcast — the pre-repartition baseline `broadcast_bytes` is
  /// gated against (a repartitioning plan must come in below it).
  int64_t exchange_all_broadcast_bytes = 0;
  double exchange_ms = 0.0;        ///< serialized link time
  double merge_ms = 0.0;           ///< serial merge on device 0
  /// True when the sharded merge combined pushed-down partial aggregates
  /// (cheap per-group fold); false for the row-id stitch-and-replay path.
  bool partial_combine = false;
  /// Rows concatenated by the stitch-and-replay merge; 0 when the combine
  /// path ran (gates assert combine plans stitch nothing).
  int64_t stitched_rows = 0;
  std::vector<double> device_elapsed_ms;   ///< per-device simulated time
  std::vector<double> device_utilization;  ///< device time / makespan

  /// Host wall-clock of the whole optimization step (planning + tuning, the
  /// paper's "<5 ms query optimization" claim).
  double OptimizeWallMs() const { return plan_wall_ms + tune_wall_ms; }

  /// Relative error |measured - predicted| / measured (Figures 11, 13, 14).
  double RelativeError() const;

  /// Fraction of execution time spent communicating (mem + channel + delay).
  double CommunicationFraction() const;

  /// Computes derived fields from `counters` for the given device.
  void Finalize(const sim::DeviceSpec& device);
};

/// A query result: the output table plus execution metrics.
struct QueryResult {
  Table table;
  QueryMetrics metrics;
};

}  // namespace gpl

#endif  // GPL_ENGINE_METRICS_H_
