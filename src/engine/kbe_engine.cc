#include "engine/kbe_engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "exec/primitives.h"

namespace gpl {

KbeEngine::KbeEngine(const tpch::Database* db, const sim::Simulator* simulator,
                     KbeFlavor flavor)
    : db_(db), simulator_(simulator), flavor_(flavor) {
  GPL_CHECK(db_ != nullptr && simulator_ != nullptr);
}

Status KbeEngine::Record(Context* ctx, const sim::KernelLaunch& launch,
                         int64_t resident_bytes) {
  GPL_ASSIGN_OR_RETURN(
      const sim::SimResult result,
      simulator_->RunKernelBatch(launch, resident_bytes, ctx->trace,
                                 ctx->fault));
  ctx->counters.Accumulate(result.counters);
  for (const sim::KernelStats& stats : result.kernels) {
    ctx->kernels.push_back(stats);
  }
  return Status::OK();
}

Result<Table> KbeEngine::Exec(const PhysicalOp& op, Context* ctx) {
  // Operator-boundary cancellation check (the KBE analogue of the GPL
  // executor's segment-boundary check).
  if (ctx->cancel != nullptr) GPL_RETURN_NOT_OK(ctx->cancel->Check());
  if (&op == ctx->substitute_at) return std::move(ctx->substitute);
  switch (op.kind) {
    case PhysicalOp::Kind::kScan: {
      const Table* base = db_->ByName(op.table);
      if (base == nullptr) return Status::NotFound("unknown table: " + op.table);
      Table view(op.table);
      for (const std::string& col : op.columns) {
        const std::string name =
            op.alias.empty() ? col : op.alias + "_" + col;
        GPL_RETURN_NOT_OK(view.AddColumn(name, base->GetColumn(col)));
      }
      return view;  // base data already resides in global memory
    }

    case PhysicalOp::Kind::kFilter: {
      GPL_ASSIGN_OR_RETURN(Table input, Exec(*op.child, ctx));
      const int64_t n = input.num_rows();
      const int64_t input_bytes = input.byte_size();

      // k_map: evaluate the predicate into flags (a bitmap for Ocelot).
      Column flags = ComputeFlags(input, op.predicate);
      const int64_t flags_bytes = flavor_.bitmap_selection ? n / 8 + 1 : n * 4;
      sim::KernelLaunch map_launch;
      map_launch.desc = FilterTiming(op.predicate->CostPerRow());
      map_launch.rows_in = n;
      map_launch.bytes_in = input_bytes;
      map_launch.rows_out = n;
      map_launch.bytes_out = flags_bytes;
      map_launch.input_resident_fraction = flavor_.scan_resident_fraction;
      GPL_RETURN_NOT_OK(Record(ctx, map_launch, 0));

      int64_t total = 0;
      Column offsets = PrefixSum(flags, &total);
      if (!flavor_.bitmap_selection) {
        // k_prefix_sum over the flags array (blocking).
        sim::KernelLaunch prefix_launch;
        prefix_launch.desc = PrefixSumTiming();
        prefix_launch.rows_in = n;
        prefix_launch.bytes_in = n * 4;
        prefix_launch.rows_out = n;
        prefix_launch.bytes_out = n * 4;
        prefix_launch.input_resident_fraction =
            simulator_->cache().ChannelResidency(n * 4, 0);
        GPL_RETURN_NOT_OK(Record(ctx, prefix_launch, 0));
      }

      // k_scatter: compact the satisfying rows into a new relation.
      Table out = ScatterRows(input, flags, offsets);
      sim::KernelLaunch scatter_launch;
      scatter_launch.desc = ScatterTiming(static_cast<int>(input.num_columns()));
      scatter_launch.rows_in = n;
      scatter_launch.bytes_in = input_bytes + flags_bytes +
                                (flavor_.bitmap_selection ? 0 : n * 4);
      scatter_launch.rows_out = out.num_rows();
      scatter_launch.bytes_out = out.byte_size();
      GPL_RETURN_NOT_OK(Record(ctx, scatter_launch, 0));
      return out;
    }

    case PhysicalOp::Kind::kProject: {
      GPL_ASSIGN_OR_RETURN(Table input, Exec(*op.child, ctx));
      KernelPtr kernel = MakeProjectKernel(op.projections);
      GPL_ASSIGN_OR_RETURN(Table out, kernel->Process(input));
      sim::KernelLaunch launch;
      launch.desc = kernel->timing();
      launch.rows_in = input.num_rows();
      launch.bytes_in = input.byte_size();
      launch.rows_out = out.num_rows();
      launch.bytes_out = out.byte_size();
      GPL_RETURN_NOT_OK(Record(ctx, launch, 0));
      return out;
    }

    case PhysicalOp::Kind::kHashJoin: {
      GPL_ASSIGN_OR_RETURN(Table build_input, Exec(*op.build_child, ctx));

      // Ocelot: reuse a previously built hash table for the same build.
      std::string signature;
      if (flavor_.cache_hash_tables) {
        signature = op.build_child->table;
        for (const ExprPtr& k : op.build_keys) signature += "|" + k->ToString();
      }
      std::shared_ptr<HashJoinState> state;
      bool cached = false;
      if (flavor_.cache_hash_tables) {
        auto it = hash_table_cache_.find(signature);
        if (it != hash_table_cache_.end() &&
            it->second->build_rows.num_rows() == build_input.num_rows()) {
          state = it->second;
          cached = true;
        }
      }
      if (state == nullptr) {
        state = std::make_shared<HashJoinState>();
        KernelPtr build = MakeHashBuildKernel(op.build_keys, state);
        GPL_ASSIGN_OR_RETURN(Table ignored, build->Process(build_input));
        (void)ignored;
        sim::KernelLaunch build_launch;
        build_launch.desc = build->timing();
        build_launch.rows_in = build_input.num_rows();
        build_launch.bytes_in = build_input.byte_size();
        build_launch.rows_out = build_input.num_rows();
        build_launch.bytes_out = state->table.byte_size();
        // Record before caching: a build whose launch faults is not cached,
        // so a retry rebuilds (and re-charges) it from scratch.
        GPL_RETURN_NOT_OK(Record(ctx, build_launch, state->table.byte_size()));
        if (flavor_.cache_hash_tables && !signature.empty()) {
          hash_table_cache_[signature] = state;
        }
      }
      (void)cached;

      GPL_ASSIGN_OR_RETURN(Table probe_input, Exec(*op.child, ctx));
      KernelPtr probe =
          MakeHashProbeKernel(op.probe_keys, state, op.build_payload);
      GPL_ASSIGN_OR_RETURN(Table out, probe->Process(probe_input));
      sim::KernelLaunch probe_launch;
      probe_launch.desc = probe->timing();
      probe_launch.rows_in = probe_input.num_rows();
      probe_launch.bytes_in = probe_input.byte_size();
      probe_launch.rows_out = out.num_rows();
      probe_launch.bytes_out = out.byte_size();
      GPL_RETURN_NOT_OK(Record(ctx, probe_launch, state->table.byte_size()));
      return out;
    }

    case PhysicalOp::Kind::kAggregate: {
      GPL_ASSIGN_OR_RETURN(Table input, Exec(*op.child, ctx));
      const int64_t n = input.num_rows();

      KernelPtr agg = MakeAggregateKernel(op.group_by, op.aggregates,
                                          op.partial_aggregate
                                              ? AggregatePhase::kPartial
                                              : AggregatePhase::kComplete);
      GPL_ASSIGN_OR_RETURN(Table ignored, agg->Process(input));
      (void)ignored;
      GPL_ASSIGN_OR_RETURN(Table out, agg->Finish());

      // KBE aggregation is scan-based (OmniDB): the prefix-scan kernel
      // materializes a scan array of the input size...
      sim::KernelLaunch scan_launch;
      scan_launch.desc = ScanAggregateTiming();
      scan_launch.rows_in = n;
      scan_launch.bytes_in = input.byte_size();
      scan_launch.rows_out = n;
      scan_launch.bytes_out = n * 8;
      GPL_RETURN_NOT_OK(Record(ctx, scan_launch, 0));

      // ...followed by a gather of the per-group results.
      sim::KernelLaunch gather_launch;
      gather_launch.desc = AggregateTiming(1.0, static_cast<int>(op.aggregates.size()));
      gather_launch.desc.name = "k_gather";
      gather_launch.rows_in = n;
      gather_launch.bytes_in = n * 8;
      gather_launch.rows_out = out.num_rows();
      gather_launch.bytes_out = out.byte_size();
      gather_launch.input_resident_fraction =
          simulator_->cache().ChannelResidency(n * 8, 0);
      GPL_RETURN_NOT_OK(Record(ctx, gather_launch, 0));
      return out;
    }

    case PhysicalOp::Kind::kExchange:
      // Identity on a single device: the exchange describes inter-device
      // data motion, which the shard layer prices on the link — no kernel
      // launches here.
      return Exec(*op.child, ctx);

    case PhysicalOp::Kind::kSort: {
      GPL_ASSIGN_OR_RETURN(Table input, Exec(*op.child, ctx));
      KernelPtr sort = MakeSortKernel(op.sort_keys);
      GPL_ASSIGN_OR_RETURN(Table ignored, sort->Process(input));
      (void)ignored;
      GPL_ASSIGN_OR_RETURN(Table out, sort->Finish());
      sim::KernelLaunch launch;
      launch.desc = sort->timing();
      launch.rows_in = input.num_rows();
      launch.bytes_in = input.byte_size();
      launch.rows_out = out.num_rows();
      launch.bytes_out = out.byte_size();
      GPL_RETURN_NOT_OK(Record(ctx, launch, 0));
      return out;
    }
  }
  return Status::Internal("unknown physical operator kind");
}

Result<QueryResult> KbeEngine::Execute(const PhysicalOpPtr& plan,
                                       const ExecOptions& exec) {
  return ExecuteWithInput(plan, nullptr, Table(), exec);
}

Result<QueryResult> KbeEngine::ExecuteWithInput(const PhysicalOpPtr& plan,
                                                const PhysicalOp* substitute_at,
                                                Table substitute,
                                                const ExecOptions& exec) {
  GPL_CHECK(plan != nullptr);
  // Morsel-parallel primitive bodies for this execution; host-side only, the
  // simulated counters below are unaffected.
  ScopedHostParallelism host_parallelism(exec.host_threads);
  Context ctx;
  ctx.trace = exec.trace;
  ctx.cancel = exec.cancel;
  ctx.fault = exec.fault;
  ctx.substitute_at = substitute_at;
  ctx.substitute = std::move(substitute);
  GPL_ASSIGN_OR_RETURN(Table out, Exec(*plan, &ctx));
  QueryResult result;
  result.table = std::move(out);
  result.metrics.counters = ctx.counters;
  result.metrics.Finalize(simulator_->device());
  return result;
}

}  // namespace gpl
