#include "engine/metrics.h"

#include <algorithm>
#include <cmath>

namespace gpl {

double QueryMetrics::RelativeError() const {
  if (elapsed_ms <= 0.0) return 0.0;
  return std::abs(elapsed_ms - predicted_ms) / elapsed_ms;
}

double QueryMetrics::CommunicationFraction() const {
  if (elapsed_ms <= 0.0) return 0.0;
  return (mem_ms + dc_ms + delay_ms) / elapsed_ms;
}

void QueryMetrics::Finalize(const sim::DeviceSpec& device) {
  elapsed_ms = device.CyclesToMs(counters.elapsed_cycles);
  valu_busy = counters.ValuBusy(device);
  mem_unit_busy = counters.MemUnitBusy(device);
  occupancy = counters.Occupancy(device);
  cache_hit_ratio = counters.CacheHitRatio();
  materialized_bytes = counters.bytes_materialized;
  channel_bytes = counters.bytes_via_channel;

  const double total_work = counters.compute_cycles + counters.mem_cycles +
                            counters.channel_cycles + counters.stall_cycles +
                            counters.launch_cycles;
  if (total_work > 0.0 && elapsed_ms > 0.0) {
    const double scale = elapsed_ms / total_work;
    compute_ms = counters.compute_cycles * scale;
    mem_ms = counters.mem_cycles * scale;
    dc_ms = counters.channel_cycles * scale;
    delay_ms = counters.stall_cycles * scale;
    other_ms = counters.launch_cycles * scale;
  }
}

}  // namespace gpl
