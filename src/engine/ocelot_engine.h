#ifndef GPL_ENGINE_OCELOT_ENGINE_H_
#define GPL_ENGINE_OCELOT_ENGINE_H_

#include "engine/kbe_engine.h"

namespace gpl {

/// Configuration reproducing the Ocelot baseline of Section 5.5: a
/// hardware-oblivious, kernel-based engine (MonetDB's OpenCL backend) with
/// the optimizations the paper credits to it —
///  1. selection results passed as bitmaps (fewer memory transactions than
///     GPL's integer arrays),
///  2. hash-table caching by Ocelot's memory manager,
///  3. MonetDB-side optimizations (pre-fetching), modeled as a modest
///     cache-resident fraction on leaf scans.
/// It remains kernel-based: no pipelining, channels, or concurrent kernels.
KbeFlavor OcelotFlavor();

}  // namespace gpl

#endif  // GPL_ENGINE_OCELOT_ENGINE_H_
