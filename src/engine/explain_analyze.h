#ifndef GPL_ENGINE_EXPLAIN_ANALYZE_H_
#define GPL_ENGINE_EXPLAIN_ANALYZE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "engine/metrics.h"
#include "plan/logical_plan.h"

namespace gpl {

/// One kernel stage of an executed segment, annotated with the cardinalities
/// actually observed during functional execution (not optimizer estimates).
struct ExplainAnalyzeStage {
  std::string kernel;
  int64_t rows_in = 0;
  int64_t bytes_in = 0;
  int64_t rows_out = 0;
  int64_t bytes_out = 0;
};

/// One executed segment of the plan, annotated with actuals next to the cost
/// model's predictions. `actual_cycles` / `predicted_cycles` are simulated
/// quantities (deterministic); `host_wall_ms` is host wall-clock and must
/// never be compared against them.
struct ExplainAnalyzeSegment {
  int index = 0;
  std::string description;  ///< "k_scan -> k_filter -> ..."
  std::vector<ExplainAnalyzeStage> stages;

  int64_t num_tiles = 0;
  int64_t tile_bytes = 0;       ///< the tuner's Δ choice
  std::vector<int> workgroups;  ///< wg_Ki per stage

  double predicted_cycles = 0.0;  ///< cost-model estimate (T_Sk)
  double actual_cycles = 0.0;     ///< simulated elapsed cycles
  double predicted_ms = 0.0;      ///< predicted_cycles on the device clock
  double actual_ms = 0.0;         ///< actual_cycles on the device clock
  double host_wall_ms = 0.0;      ///< tuning + functional + simulation

  int64_t channel_bytes = 0;       ///< intermediates passed through channels
  int64_t materialized_bytes = 0;  ///< intermediates via global memory

  bool tuning_cache_hit = false;
  bool degraded = false;  ///< fell back to kernel-at-a-time execution

  /// Subplan-cache outcome for this segment's functional work: "hit",
  /// "miss", or "off" (no cache / disabled / fault-injected / uncacheable).
  std::string subplan_cache = "off";

  /// How the segment's kernels executed: "pipelined", "sequential" or
  /// "fused" (model::SegmentEngineName of the executor's per-segment pick).
  std::string engine;
  /// Fusion accounting (engine == "fused" only; 0 otherwise).
  int fused_groups = 0;
  int launches_saved = 0;
  int64_t fused_bytes_avoided = 0;

  /// Signed prediction error, (predicted - actual) / actual * 100.
  /// 0 when the segment simulated to zero cycles.
  double CycleErrorPct() const;
};

/// One Exchange operator of a sharded run, with the cost model's predicted
/// traffic next to the bytes the link actually recorded. Broadcast and
/// repartition exchanges are charged exactly as priced (actual == predicted);
/// the final gather ships whatever the shards really produced.
struct ExplainAnalyzeExchange {
  std::string table;
  std::string kind;  ///< broadcast | repartition | passthrough | gather
  int64_t predicted_bytes = 0;
  int64_t actual_bytes = 0;
  double predicted_ms = 0.0;
};

/// The result of EXPLAIN ANALYZE: the optimized plan, per-segment actuals
/// vs. predictions, and the exact QueryMetrics the same execution would have
/// returned through Engine::ExecutePlan (built by Engine::FinalizeGplMetrics
/// from the same run, so the totals here always match a --metrics-json run
/// of the same query on the simulated-time fields).
///
/// For a sharded ExecOptions (shards > 1 or a multi-entry device_list) the
/// report annotates the distributed plan instead: `plan_text` is the
/// per-shard plan with Exchange operators inline, `exchanges` lists each
/// operator's predicted vs actual traffic, and `segments` is empty (the
/// per-shard segment trees are not surfaced).
struct ExplainAnalyzeReport {
  std::string query;
  std::string mode;
  std::string device;
  std::string plan_text;  ///< PlanToString of the optimized physical plan
  std::vector<ExplainAnalyzeSegment> segments;
  QueryMetrics metrics;
  int64_t output_rows = 0;

  int num_shards = 1;           ///< > 1 for sharded runs
  bool partial_combine = false; ///< sharded merge combined pushed-down partials
  std::vector<ExplainAnalyzeExchange> exchanges;  ///< sharded runs only

  /// Human-readable rendering: the plan tree followed by the annotated
  /// per-segment tree and a totals line.
  std::string ToString() const;
  /// Machine-readable rendering; always passes trace::ValidateJson. The
  /// "metrics" object uses the same field names as --metrics-json.
  std::string ToJson() const;
};

/// Plans and EXECUTES `query` (EXPLAIN ANALYZE, not EXPLAIN: the results are
/// computed and the timing simulated for real), returning the annotated
/// report. Single-device: only the GPL modes (kGpl, kGplNoCe, kFused) have
/// segmented plans to annotate; KBE/Ocelot return kUnimplemented. A sharded `exec`
/// routes through the engine's ShardedExecutor in any mode and annotates the
/// distributed plan's Exchange operators instead of segments.
Result<ExplainAnalyzeReport> ExplainAnalyze(Engine& engine,
                                            const LogicalQuery& query);
Result<ExplainAnalyzeReport> ExplainAnalyze(Engine& engine,
                                            const LogicalQuery& query,
                                            const ExecOptions& exec);

}  // namespace gpl

#endif  // GPL_ENGINE_EXPLAIN_ANALYZE_H_
