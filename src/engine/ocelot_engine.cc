#include "engine/ocelot_engine.h"

namespace gpl {

KbeFlavor OcelotFlavor() {
  KbeFlavor flavor;
  flavor.bitmap_selection = true;
  flavor.cache_hash_tables = true;
  flavor.scan_resident_fraction = 0.10;
  return flavor;
}

}  // namespace gpl
