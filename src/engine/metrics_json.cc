#include "engine/metrics_json.h"

#include "trace/json.h"

namespace gpl {

namespace {

void AppendField(std::string* out, const char* key, const std::string& value,
                 bool quote) {
  if (out->back() != '{') *out += ",";
  *out += "\"";
  *out += key;
  *out += "\":";
  if (quote) {
    *out += "\"" + trace::JsonEscape(value) + "\"";
  } else {
    *out += value;
  }
}

void AppendNumber(std::string* out, const char* key, double value) {
  AppendField(out, key, trace::JsonNumber(value), /*quote=*/false);
}

}  // namespace

std::string QueryMetricsToJson(const MetricsJsonEntry& entry) {
  const QueryMetrics& m = entry.metrics;
  const sim::HwCounters& c = m.counters;
  std::string out = "{";
  AppendField(&out, "query", entry.query, /*quote=*/true);
  AppendField(&out, "mode", entry.mode, /*quote=*/true);
  AppendField(&out, "device", entry.device, /*quote=*/true);
  AppendNumber(&out, "elapsed_ms", m.elapsed_ms);
  AppendNumber(&out, "predicted_ms", m.predicted_ms);
  // Host wall-clock fields, kept apart from the simulated-time fields above:
  // they are nondeterministic (thread scheduling, machine load) and must not
  // be summed with simulated times.
  AppendNumber(&out, "plan_wall_ms", m.plan_wall_ms);
  AppendNumber(&out, "tune_wall_ms", m.tune_wall_ms);
  AppendNumber(&out, "optimize_wall_ms", m.OptimizeWallMs());
  AppendNumber(&out, "tuning_cache_hits",
               static_cast<double>(m.tuning_cache_hits));
  AppendNumber(&out, "tuning_cache_misses",
               static_cast<double>(m.tuning_cache_misses));
  AppendNumber(&out, "subplan_cache_hits",
               static_cast<double>(m.subplan_cache_hits));
  AppendNumber(&out, "subplan_cache_misses",
               static_cast<double>(m.subplan_cache_misses));
  AppendNumber(&out, "degraded_segments",
               static_cast<double>(m.degraded_segments));
  AppendNumber(&out, "fused_segments", static_cast<double>(m.fused_segments));
  AppendNumber(&out, "fused_launches_saved",
               static_cast<double>(m.fused_launches_saved));
  AppendNumber(&out, "fused_bytes_avoided",
               static_cast<double>(m.fused_bytes_avoided));
  AppendNumber(&out, "valu_busy", m.valu_busy);
  AppendNumber(&out, "mem_unit_busy", m.mem_unit_busy);
  AppendNumber(&out, "occupancy", m.occupancy);
  AppendNumber(&out, "cache_hit_ratio", m.cache_hit_ratio);
  AppendNumber(&out, "compute_ms", m.compute_ms);
  AppendNumber(&out, "mem_ms", m.mem_ms);
  AppendNumber(&out, "dc_ms", m.dc_ms);
  AppendNumber(&out, "delay_ms", m.delay_ms);
  AppendNumber(&out, "other_ms", m.other_ms);
  AppendNumber(&out, "input_bytes", static_cast<double>(m.input_bytes));
  AppendNumber(&out, "materialized_bytes",
               static_cast<double>(m.materialized_bytes));
  AppendNumber(&out, "channel_bytes", static_cast<double>(m.channel_bytes));
  AppendNumber(&out, "elapsed_cycles", c.elapsed_cycles);
  AppendNumber(&out, "compute_cycles", c.compute_cycles);
  AppendNumber(&out, "mem_cycles", c.mem_cycles);
  AppendNumber(&out, "channel_cycles", c.channel_cycles);
  AppendNumber(&out, "stall_cycles", c.stall_cycles);
  AppendNumber(&out, "launch_cycles", c.launch_cycles);
  AppendNumber(&out, "cache_hits", c.cache_hits);
  AppendNumber(&out, "cache_accesses", c.cache_accesses);
  AppendNumber(&out, "resident_wg_time", c.resident_wg_time);
  if (m.num_shards > 0) {
    // Sharded-execution block, only emitted for ShardedExecutor runs so
    // single-device JSON stays byte-stable across this change.
    AppendNumber(&out, "num_shards", static_cast<double>(m.num_shards));
    AppendNumber(&out, "broadcast_bytes",
                 static_cast<double>(m.broadcast_bytes));
    AppendNumber(&out, "shuffle_bytes", static_cast<double>(m.shuffle_bytes));
    AppendNumber(&out, "exchange_bytes",
                 static_cast<double>(m.exchange_bytes));
    AppendNumber(&out, "exchange_all_broadcast_bytes",
                 static_cast<double>(m.exchange_all_broadcast_bytes));
    AppendNumber(&out, "exchange_ms", m.exchange_ms);
    AppendNumber(&out, "merge_ms", m.merge_ms);
    AppendField(&out, "partial_combine", m.partial_combine ? "true" : "false",
                /*quote=*/false);
    AppendNumber(&out, "stitched_rows", static_cast<double>(m.stitched_rows));
    std::string devices = "[";
    for (size_t i = 0; i < m.device_elapsed_ms.size(); ++i) {
      if (i > 0) devices += ",";
      devices += trace::JsonNumber(m.device_elapsed_ms[i]);
    }
    devices += "]";
    AppendField(&out, "device_elapsed_ms", devices, /*quote=*/false);
    std::string utilization = "[";
    for (size_t i = 0; i < m.device_utilization.size(); ++i) {
      if (i > 0) utilization += ",";
      utilization += trace::JsonNumber(m.device_utilization[i]);
    }
    utilization += "]";
    AppendField(&out, "device_utilization", utilization, /*quote=*/false);
  }
  out += "}";
  return out;
}

std::string MetricsReportToJson(const std::vector<MetricsJsonEntry>& entries) {
  std::string out = "[";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ",\n";
    out += QueryMetricsToJson(entries[i]);
  }
  out += "]";
  return out;
}

}  // namespace gpl
