#ifndef GPL_ENGINE_KBE_ENGINE_H_
#define GPL_ENGINE_KBE_ENGINE_H_

#include <map>
#include <string>

#include "common/status.h"
#include "engine/exec_options.h"
#include "engine/metrics.h"
#include "plan/physical_plan.h"
#include "sim/engine.h"
#include "tpch/dbgen.h"

namespace gpl {

/// Behavioural knobs distinguishing the plain KBE baseline ([15, 16] /
/// OmniDB-style) from the Ocelot-style baseline (Section 5.5).
struct KbeFlavor {
  /// Selection emits a bitmap instead of flag/offset integer arrays, and the
  /// prefix-sum kernel is folded into the scatter (Ocelot).
  bool bitmap_selection = false;
  /// Hash tables are cached across queries and reused when the same build
  /// (table + keys) recurs (Ocelot's memory manager).
  bool cache_hash_tables = false;
  /// Fraction of leaf scans assumed cache-resident (MonetDB pre-fetching).
  double scan_resident_fraction = 0.0;
};

/// Conventional kernel-based execution: every operator is decomposed into
/// kernels that run one at a time over the whole input, materializing every
/// intermediate result in global memory (Section 2.2). The same engine with
/// the Ocelot flavor provides the Section 5.5 comparison baseline.
class KbeEngine {
 public:
  KbeEngine(const tpch::Database* db, const sim::Simulator* simulator,
            KbeFlavor flavor = {});

  /// Executes a physical plan; returns the result table and metrics. When
  /// `exec.trace` is non-null every kernel launch is recorded as a span on
  /// the shared simulated-time axis; when `exec.cancel` is non-null it is
  /// polled at each operator start. The tuner knobs in `exec` are ignored
  /// (KBE has no tiling parameters to tune).
  Result<QueryResult> Execute(const PhysicalOpPtr& plan,
                              const ExecOptions& exec = {});

  /// Executes `plan` with the subtree rooted at `substitute_at` (a node of
  /// `plan`) resolved to the pre-materialized `substitute` table instead of
  /// being executed. The table is treated like a base relation already
  /// resident in global memory — no launch is charged for producing it.
  /// Used by shard::ShardedExecutor to replay the merge portion of a plan
  /// over stitched partial results.
  Result<QueryResult> ExecuteWithInput(const PhysicalOpPtr& plan,
                                       const PhysicalOp* substitute_at,
                                       Table substitute,
                                       const ExecOptions& exec = {});

 private:
  struct Context {
    sim::HwCounters counters;
    std::vector<sim::KernelStats> kernels;
    trace::TraceCollector* trace = nullptr;
    const CancelToken* cancel = nullptr;
    sim::FaultInjector* fault = nullptr;
    /// Substitution point (ExecuteWithInput): Exec returns `substitute`
    /// when it reaches this node. Consumed by move — each node appears once
    /// in a plan tree.
    const PhysicalOp* substitute_at = nullptr;
    Table substitute;
  };

  Result<Table> Exec(const PhysicalOp& op, Context* ctx);
  /// Runs one KBE kernel launch through the simulator and accumulates.
  /// Fails with kTransientDeviceError when the fault injector fires; the
  /// failed launch contributes nothing to the counters.
  Status Record(Context* ctx, const sim::KernelLaunch& launch,
                int64_t resident_bytes);

  const tpch::Database* db_;
  const sim::Simulator* simulator_;
  KbeFlavor flavor_;
  /// Ocelot hash-table cache: build signature -> cached state.
  std::map<std::string, std::shared_ptr<HashJoinState>> hash_table_cache_;
};

}  // namespace gpl

#endif  // GPL_ENGINE_KBE_ENGINE_H_
