#ifndef GPL_ENGINE_METRICS_JSON_H_
#define GPL_ENGINE_METRICS_JSON_H_

#include <string>
#include <vector>

#include "engine/metrics.h"

namespace gpl {

/// Identifies one query run in a metrics dump.
struct MetricsJsonEntry {
  std::string query;
  std::string mode;    ///< EngineModeName
  std::string device;  ///< DeviceSpec::name
  QueryMetrics metrics;
};

/// Flat JSON object for one query's metrics: timing, the per-phase
/// breakdown, and every simulated hardware counter (the machine-readable
/// form of what CodeXL/NVVP provide in the paper).
std::string QueryMetricsToJson(const MetricsJsonEntry& entry);

/// JSON array of entries — the `--metrics-json` CLI output format.
std::string MetricsReportToJson(const std::vector<MetricsJsonEntry>& entries);

}  // namespace gpl

#endif  // GPL_ENGINE_METRICS_JSON_H_
