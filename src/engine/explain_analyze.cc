#include "engine/explain_analyze.h"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

#include "engine/metrics_json.h"
#include "plan/physical_plan.h"
#include "shard/device_group.h"
#include "shard/sharded_executor.h"
#include "trace/json.h"

namespace gpl {

namespace {

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

std::string FormatCycles(double cycles) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", cycles);
  return buf;
}

std::string FormatPct(double pct) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", pct);
  return buf;
}

void AppendJsonField(std::string* out, const char* key,
                     const std::string& value, bool quote) {
  if (out->back() != '{') *out += ",";
  *out += "\"";
  *out += key;
  *out += "\":";
  if (quote) {
    *out += "\"" + trace::JsonEscape(value) + "\"";
  } else {
    *out += value;
  }
}

void AppendJsonNumber(std::string* out, const char* key, double value) {
  AppendJsonField(out, key, trace::JsonNumber(value), /*quote=*/false);
}

void AppendJsonInt(std::string* out, const char* key, int64_t value) {
  AppendJsonField(out, key, std::to_string(value), /*quote=*/false);
}

void AppendJsonBool(std::string* out, const char* key, bool value) {
  AppendJsonField(out, key, value ? "true" : "false", /*quote=*/false);
}

}  // namespace

double ExplainAnalyzeSegment::CycleErrorPct() const {
  if (actual_cycles <= 0.0) return 0.0;
  return (predicted_cycles - actual_cycles) / actual_cycles * 100.0;
}

std::string ExplainAnalyzeReport::ToString() const {
  std::ostringstream out;
  out << "EXPLAIN ANALYZE query=" << query << " mode=" << mode
      << " device=" << device << "\n";
  out << "plan:\n" << plan_text;
  if (num_shards > 1) {
    out << "exchanges: shards=" << num_shards << " merge="
        << (partial_combine ? "combine" : "stitch") << "\n";
    for (const ExplainAnalyzeExchange& ex : exchanges) {
      out << "  " << ex.kind << " " << ex.table
          << ": predicted_bytes=" << ex.predicted_bytes
          << " actual_bytes=" << ex.actual_bytes << " ("
          << FormatMs(ex.predicted_ms) << " ms predicted)\n";
    }
    out << "totals: elapsed=" << FormatMs(metrics.elapsed_ms)
        << " ms exchange=" << FormatMs(metrics.exchange_ms)
        << " ms merge=" << FormatMs(metrics.merge_ms)
        << " ms output_rows=" << output_rows << "\n";
    return out.str();
  }
  out << "segments:\n";
  for (const ExplainAnalyzeSegment& seg : segments) {
    out << "  segment " << seg.index << ": " << seg.description << "  ["
        << (seg.degraded ? "degraded"
                         : (seg.engine.empty() ? "pipelined" : seg.engine))
        << "] [cache " << (seg.tuning_cache_hit ? "hit" : "miss") << "]\n";
    out << "    tile_bytes=" << seg.tile_bytes << " tiles=" << seg.num_tiles
        << " workgroups=";
    for (size_t i = 0; i < seg.workgroups.size(); ++i) {
      if (i > 0) out << ",";
      out << seg.workgroups[i];
    }
    out << "\n";
    out << "    cycles: actual=" << FormatCycles(seg.actual_cycles)
        << " predicted=" << FormatCycles(seg.predicted_cycles)
        << " error=" << FormatPct(seg.CycleErrorPct()) << "  ("
        << FormatMs(seg.actual_ms) << " ms simulated)\n";
    out << "    host_wall_ms=" << FormatMs(seg.host_wall_ms)
        << " channel_bytes=" << seg.channel_bytes
        << " materialized_bytes=" << seg.materialized_bytes << "\n";
    out << "    cache: " << seg.subplan_cache << "\n";
    if (seg.fused_groups > 0) {
      out << "    fusion: groups=" << seg.fused_groups
          << " launches_saved=" << seg.launches_saved
          << " bytes_avoided=" << seg.fused_bytes_avoided << "\n";
    }
    for (const ExplainAnalyzeStage& stage : seg.stages) {
      out << "      " << stage.kernel << ": rows " << stage.rows_in << " -> "
          << stage.rows_out << "  bytes " << stage.bytes_in << " -> "
          << stage.bytes_out << "\n";
    }
  }
  double actual_total = 0.0;
  double predicted_total = 0.0;
  double host_total = 0.0;
  for (const ExplainAnalyzeSegment& seg : segments) {
    actual_total += seg.actual_cycles;
    predicted_total += seg.predicted_cycles;
    host_total += seg.host_wall_ms;
  }
  const double total_error =
      actual_total > 0.0
          ? (predicted_total - actual_total) / actual_total * 100.0
          : 0.0;
  out << "totals: segments=" << segments.size()
      << " actual_cycles=" << FormatCycles(actual_total) << " ("
      << FormatMs(metrics.elapsed_ms)
      << " ms) predicted_cycles=" << FormatCycles(predicted_total) << " ("
      << FormatMs(metrics.predicted_ms)
      << " ms) error=" << FormatPct(total_error) << "\n";
  out << "  tuning_cache: hits=" << metrics.tuning_cache_hits
      << " misses=" << metrics.tuning_cache_misses
      << "  degraded_segments=" << metrics.degraded_segments
      << "  output_rows=" << output_rows << "\n";
  out << "  subplan_cache: hits=" << metrics.subplan_cache_hits
      << " misses=" << metrics.subplan_cache_misses << "\n";
  if (metrics.fused_segments > 0) {
    out << "  fusion: segments=" << metrics.fused_segments
        << " launches_saved=" << metrics.fused_launches_saved
        << " bytes_avoided=" << metrics.fused_bytes_avoided << "\n";
  }
  out << "  host wall: plan=" << FormatMs(metrics.plan_wall_ms)
      << " ms tune=" << FormatMs(metrics.tune_wall_ms)
      << " ms segments=" << FormatMs(host_total) << " ms\n";
  return out.str();
}

std::string ExplainAnalyzeReport::ToJson() const {
  std::string out = "{";
  AppendJsonField(&out, "query", query, /*quote=*/true);
  AppendJsonField(&out, "mode", mode, /*quote=*/true);
  AppendJsonField(&out, "device", device, /*quote=*/true);
  AppendJsonInt(&out, "output_rows", output_rows);
  if (num_shards > 1) {
    // Sharded-run block, omitted for single-device runs so their JSON stays
    // byte-stable across this change.
    AppendJsonInt(&out, "num_shards", num_shards);
    AppendJsonBool(&out, "partial_combine", partial_combine);
    out += ",\"exchanges\":[";
    for (size_t i = 0; i < exchanges.size(); ++i) {
      const ExplainAnalyzeExchange& ex = exchanges[i];
      if (i > 0) out += ",";
      out += "{";
      AppendJsonField(&out, "table", ex.table, /*quote=*/true);
      AppendJsonField(&out, "kind", ex.kind, /*quote=*/true);
      AppendJsonInt(&out, "predicted_bytes", ex.predicted_bytes);
      AppendJsonInt(&out, "actual_bytes", ex.actual_bytes);
      AppendJsonNumber(&out, "predicted_ms", ex.predicted_ms);
      out += "}";
    }
    out += "]";
  }
  out += ",\"segments\":[";
  for (size_t i = 0; i < segments.size(); ++i) {
    const ExplainAnalyzeSegment& seg = segments[i];
    if (i > 0) out += ",";
    out += "{";
    AppendJsonInt(&out, "index", seg.index);
    AppendJsonField(&out, "description", seg.description, /*quote=*/true);
    AppendJsonInt(&out, "num_tiles", seg.num_tiles);
    AppendJsonInt(&out, "tile_bytes", seg.tile_bytes);
    out += ",\"workgroups\":[";
    for (size_t w = 0; w < seg.workgroups.size(); ++w) {
      if (w > 0) out += ",";
      out += std::to_string(seg.workgroups[w]);
    }
    out += "]";
    AppendJsonNumber(&out, "actual_cycles", seg.actual_cycles);
    AppendJsonNumber(&out, "predicted_cycles", seg.predicted_cycles);
    AppendJsonNumber(&out, "actual_ms", seg.actual_ms);
    AppendJsonNumber(&out, "predicted_ms", seg.predicted_ms);
    AppendJsonNumber(&out, "cycle_error_pct", seg.CycleErrorPct());
    AppendJsonNumber(&out, "host_wall_ms", seg.host_wall_ms);
    AppendJsonInt(&out, "channel_bytes", seg.channel_bytes);
    AppendJsonInt(&out, "materialized_bytes", seg.materialized_bytes);
    AppendJsonBool(&out, "tuning_cache_hit", seg.tuning_cache_hit);
    AppendJsonBool(&out, "degraded", seg.degraded);
    AppendJsonField(&out, "subplan_cache", seg.subplan_cache, /*quote=*/true);
    AppendJsonField(&out, "engine",
                    seg.engine.empty() ? "pipelined" : seg.engine,
                    /*quote=*/true);
    AppendJsonInt(&out, "fused_groups", seg.fused_groups);
    AppendJsonInt(&out, "launches_saved", seg.launches_saved);
    AppendJsonInt(&out, "fused_bytes_avoided", seg.fused_bytes_avoided);
    out += ",\"stages\":[";
    for (size_t s = 0; s < seg.stages.size(); ++s) {
      const ExplainAnalyzeStage& stage = seg.stages[s];
      if (s > 0) out += ",";
      out += "{";
      AppendJsonField(&out, "kernel", stage.kernel, /*quote=*/true);
      AppendJsonInt(&out, "rows_in", stage.rows_in);
      AppendJsonInt(&out, "bytes_in", stage.bytes_in);
      AppendJsonInt(&out, "rows_out", stage.rows_out);
      AppendJsonInt(&out, "bytes_out", stage.bytes_out);
      out += "}";
    }
    out += "]}";
  }
  out += "]";
  MetricsJsonEntry entry;
  entry.query = query;
  entry.mode = mode;
  entry.device = device;
  entry.metrics = metrics;
  out += ",\"metrics\":" + QueryMetricsToJson(entry);
  out += "}";
  return out;
}

Result<ExplainAnalyzeReport> ExplainAnalyze(Engine& engine,
                                            const LogicalQuery& query) {
  return ExplainAnalyze(engine, query, engine.options().exec);
}

Result<ExplainAnalyzeReport> ExplainAnalyze(Engine& engine,
                                            const LogicalQuery& query,
                                            const ExecOptions& exec) {
  const EngineMode mode = engine.options().mode;
  if (Engine::IsShardedExec(exec)) {
    GPL_ASSIGN_OR_RETURN(shard::ShardedExecutor * sharded,
                         engine.ShardedFor(exec));
    GPL_ASSIGN_OR_RETURN(shard::DistributedExplain dist,
                         sharded->Explain(query));
    GPL_ASSIGN_OR_RETURN(QueryResult result, sharded->Execute(query, exec));

    ExplainAnalyzeReport report;
    report.query = query.name;
    report.mode = EngineModeName(mode);
    report.device = sharded->group().ToString();
    report.plan_text = dist.plan_text;
    report.metrics = result.metrics;
    report.output_rows = result.table.num_rows();
    report.num_shards = dist.num_shards;
    report.partial_combine = result.metrics.partial_combine;
    for (const shard::ExchangeOpReport& ex : dist.exchanges) {
      ExplainAnalyzeExchange entry;
      entry.table = ex.table;
      entry.kind = std::string(ExchangeKindName(ex.kind));
      entry.predicted_bytes = ex.predicted_bytes;
      // Broadcast/repartition traffic is charged exactly as priced; the
      // final gather ships whatever the shards really produced, which
      // Execute() recorded as shuffle_bytes.
      entry.actual_bytes = ex.kind == ExchangeKind::kGather
                               ? result.metrics.shuffle_bytes
                               : ex.predicted_bytes;
      entry.predicted_ms = ex.predicted_ms;
      report.exchanges.push_back(std::move(entry));
    }
    return report;
  }
  if (mode != EngineMode::kGpl && mode != EngineMode::kGplNoCe &&
      mode != EngineMode::kFused) {
    return Status::Unimplemented(
        "EXPLAIN ANALYZE annotates segmented GPL plans; mode " +
        std::string(EngineModeName(mode)) + " has none");
  }

  const auto plan_start = std::chrono::steady_clock::now();
  GPL_ASSIGN_OR_RETURN(PhysicalOpPtr plan, engine.Plan(query));
  const double plan_wall_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - plan_start)
                                  .count();

  GPL_ASSIGN_OR_RETURN(GplRunResult run, engine.ExecuteGplDetailed(plan, exec));

  ExplainAnalyzeReport report;
  report.query = query.name;
  report.mode = EngineModeName(mode);
  report.device = engine.options().device.name;
  report.plan_text = PlanToString(*plan, /*indent=*/1);
  report.metrics = engine.FinalizeGplMetrics(run);
  report.metrics.plan_wall_ms = plan_wall_ms;
  report.output_rows = run.output.num_rows();

  const sim::DeviceSpec& device = engine.options().device;
  for (size_t i = 0; i < run.segments.size(); ++i) {
    const SegmentReport& sr = run.segments[i];
    ExplainAnalyzeSegment seg;
    seg.index = static_cast<int>(i);
    seg.description = sr.description;
    seg.num_tiles = sr.observations.num_tiles;
    seg.tile_bytes = sr.tuning.params.tile_bytes;
    seg.workgroups = sr.tuning.params.workgroups;
    seg.predicted_cycles = sr.predicted_cycles;
    seg.actual_cycles = sr.measured_cycles;
    seg.predicted_ms = device.CyclesToMs(sr.predicted_cycles);
    seg.actual_ms = device.CyclesToMs(sr.measured_cycles);
    seg.host_wall_ms = sr.host_wall_ms;
    seg.channel_bytes = sr.sim.counters.bytes_via_channel;
    seg.materialized_bytes = sr.sim.counters.bytes_materialized;
    seg.tuning_cache_hit = sr.tuning_cache_hit;
    seg.degraded = sr.degraded;
    seg.subplan_cache = SubplanOutcomeName(sr.subplan_cache);
    seg.engine = model::SegmentEngineName(sr.engine);
    seg.fused_groups = sr.fused_groups;
    seg.launches_saved = sr.launches_saved;
    seg.fused_bytes_avoided = sr.fused_bytes_avoided;
    for (size_t s = 0; s < sr.observations.stages.size(); ++s) {
      ExplainAnalyzeStage stage;
      // Stage names come from the original per-stage kernels: for a fused
      // segment sr.sim.kernels are the composed launches, not the stages.
      stage.kernel = s < sr.stage_names.size() ? sr.stage_names[s]
                                               : "k_" + std::to_string(s);
      stage.rows_in = sr.observations.stages[s].rows_in;
      stage.bytes_in = sr.observations.stages[s].bytes_in;
      stage.rows_out = sr.observations.stages[s].rows_out;
      stage.bytes_out = sr.observations.stages[s].bytes_out;
      seg.stages.push_back(std::move(stage));
    }
    report.segments.push_back(std::move(seg));
  }
  return report;
}

}  // namespace gpl
