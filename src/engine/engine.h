#ifndef GPL_ENGINE_ENGINE_H_
#define GPL_ENGINE_ENGINE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/gpl_executor.h"
#include "engine/exec_options.h"
#include "engine/kbe_engine.h"
#include "engine/metrics.h"
#include "model/calibration.h"
#include "plan/cardinality.h"
#include "plan/logical_plan.h"
#include "plan/physical_plan.h"
#include "plan/selinger.h"
#include "sim/engine.h"
#include "tpch/dbgen.h"

namespace gpl {

namespace shard {
struct ShardedDatabase;
class ShardedExecutor;
}  // namespace shard

/// Execution strategies evaluated in the paper.
enum class EngineMode {
  kKbe,      ///< kernel-based execution baseline [15, 16]
  kGplNoCe,  ///< GPL with tiling but without concurrent execution/channels
  kGpl,      ///< the full pipelined engine
  kOcelot,   ///< Ocelot-style KBE baseline (Section 5.5)
  kFused,    ///< GPL + kernel fusion: the tuner picks per segment among
             ///< pipelined / kernel-at-a-time / fused chains
};

const char* EngineModeName(EngineMode mode);

/// Parses an execution-mode name as used by the CLI/benches
/// ("gpl" | "kbe" | "noce" | "ocelot" | "fused", case-sensitive). The
/// inverse of the short flag spellings, not of EngineModeName.
Result<EngineMode> ParseEngineMode(std::string_view name);

/// Parses a simulated-device name ("amd" | "nvidia") into its DeviceSpec
/// preset (Table 1).
Result<sim::DeviceSpec> ParseDeviceSpec(std::string_view name);

/// Parses a comma-separated device list ("amd", "amd,amd,nvidia", ...) as
/// accepted by the CLI/bench --device flag; each element goes through
/// ParseDeviceSpec, and empty elements or an empty list are errors. A
/// multi-element list defines a (possibly mixed) shard::DeviceGroup.
Result<std::vector<sim::DeviceSpec>> ParseDeviceList(std::string_view csv);

struct EngineOptions {
  sim::DeviceSpec device = sim::DeviceSpec::AmdA10();
  EngineMode mode = EngineMode::kGpl;

  /// Per-execution options (cost-model toggle, knob overrides, trace sink,
  /// cancellation token). These are the defaults for Execute()/ExecutePlan();
  /// the per-call overloads below take a one-off ExecOptions instead.
  ExecOptions exec;

  /// Use radix-partitioned hash joins (Section 3.2) for builds whose
  /// estimated size exceeds half the device cache. GPL modes only; the KBE
  /// baselines always use the simple hash join.
  bool partitioned_joins = false;
  int num_partitions = 8;
  /// Build-size threshold for partitioning; 0 uses half the device cache.
  int64_t partition_threshold_bytes = 0;

  /// Optional pre-computed channel calibration (Section 2.1) for this
  /// options' device. When set, the engine references it instead of running
  /// the calibration microbenchmark at construction — the QueryService uses
  /// this to share one immutable table across its worker engines. Must
  /// outlive the engine and match `device`.
  const model::CalibrationTable* calibration = nullptr;

  /// Optional shared tuning cache. When set, the engine memoizes TuneSegment
  /// results there (the QueryService passes one instance to all workers so a
  /// segment tuned by any worker is a hit for the rest); otherwise the engine
  /// owns a private cache. Must outlive the engine. TuningCache is
  /// thread-safe, unlike the Engine itself.
  model::TuningCache* tuning_cache = nullptr;

  /// Optional shared subplan cache (see pool/subplan_cache.h). When set, the
  /// GPL executor memoizes materialized subplan data there — the
  /// QueryService passes one instance to all workers so a hash table built
  /// by any worker is a hit for the rest. nullptr (the default) disables
  /// data memoization entirely. Must outlive the engine; thread-safe.
  pool::SubplanCache* subplan_cache = nullptr;

  /// Optional metrics registry. When set, the engine's Simulator registers
  /// its per-device counters there; nullptr (the default) is the
  /// null-registry fast path — no registration, one dead branch per
  /// instrumented site. Must outlive the engine.
  obs::MetricsRegistry* metrics = nullptr;

  /// Optional pre-partitioned copy of the engine's database for sharded
  /// execution (ExecOptions::shards / device_list). When it matches the
  /// requested shard count and partition scheme the engine shares it instead
  /// of partitioning lazily — the QueryService partitions once and passes
  /// the same instance to every worker. Must outlive the engine.
  const shard::ShardedDatabase* sharded_db = nullptr;

  /// Optional shared per-device-name calibration tables for shard groups
  /// (ShardedExecutor calibrates any device missing from the map). Must
  /// outlive the engine.
  const std::map<std::string, model::CalibrationTable>* device_calibrations =
      nullptr;
};

/// The public entry point of the library: executes TPC-H-style analytical
/// queries against a generated database under a chosen execution strategy on
/// a simulated GPU, returning real results plus simulated timing/counters.
///
/// Typical use:
///
///   tpch::Database db = tpch::Generate({.scale_factor = 0.1});
///   Engine engine(&db, {.mode = EngineMode::kGpl});
///   auto result = engine.Execute(queries::Q14(0.164));
///   std::cout << result->table.ToString();
///
/// Thread-safety: an Engine instance is NOT thread-safe — it owns mutable
/// executor state (the Ocelot hash-table cache, the trace timeline) and must
/// only be used from one thread at a time. Its inputs are safe to share:
/// the Database (read-only after generation/load), Catalog,
/// model::CalibrationTable and sim::Simulator are all immutable after
/// construction and may be read concurrently. For concurrent queries use
/// one Engine per thread over the shared Database — service::QueryService
/// packages exactly that.
class Engine {
 public:
  Engine(const tpch::Database* db, EngineOptions options);
  ~Engine();  ///< out-of-line: ShardedState is incomplete here

  const EngineOptions& options() const { return options_; }
  const Catalog& catalog() const { return catalog_; }
  const sim::Simulator& simulator() const { return simulator_; }
  const model::CalibrationTable& calibration() const { return *calibration_; }
  /// The tuning cache in use — shared (options.tuning_cache) or engine-owned.
  model::TuningCache& tuning_cache() const { return *tuning_cache_; }

  /// Optimizes and executes a logical query with the engine's default
  /// ExecOptions (options().exec).
  Result<QueryResult> Execute(const LogicalQuery& query);
  /// Same, with one-off per-call execution options (per-query cancellation
  /// tokens, trace sinks, knob pins). This is also the sharded entry point:
  /// exec.shards > 1 (or a multi-entry exec.device_list) routes the query
  /// through a lazily built shard::ShardedExecutor — the database is
  /// partitioned on first use (or shared from EngineOptions::sharded_db)
  /// and the executor is reused while the sharding shape stays the same.
  Result<QueryResult> Execute(const LogicalQuery& query,
                              const ExecOptions& exec);

  /// True when `exec` requests sharded execution (what Execute() routes on).
  static bool IsShardedExec(const ExecOptions& exec) {
    return exec.device_list.size() > 1 || exec.shards > 1;
  }

  /// The sharded executor Execute() would use for `exec` — built (or reused)
  /// without executing anything. EXPLAIN paths call this to render exchange
  /// operators. Fails with kInvalidArgument when `exec` is not sharded.
  Result<shard::ShardedExecutor*> ShardedFor(const ExecOptions& exec);

  /// Executes an already-built physical plan.
  Result<QueryResult> ExecutePlan(const PhysicalOpPtr& plan);
  Result<QueryResult> ExecutePlan(const PhysicalOpPtr& plan,
                                  const ExecOptions& exec);

  /// Executes a plan with GPL and returns the detailed per-segment run
  /// (tuning choices, predictions, simulated stats) — used by the model-
  /// evaluation benches.
  Result<GplRunResult> ExecuteGplDetailed(const PhysicalOpPtr& plan);
  Result<GplRunResult> ExecuteGplDetailed(const PhysicalOpPtr& plan,
                                          const ExecOptions& exec);

  /// Builds the optimized physical plan for a query (EXPLAIN support).
  Result<PhysicalOpPtr> Plan(const LogicalQuery& query) const;

  /// Converts a detailed GPL run into the QueryMetrics that ExecutePlan
  /// would return for it (counters finalized for this engine's device,
  /// predicted_ms, tuning-cache and degradation tallies). Shared by
  /// ExecutePlan and EXPLAIN ANALYZE so the two always agree.
  QueryMetrics FinalizeGplMetrics(const GplRunResult& run) const;

 private:
  const tpch::Database* db_;
  EngineOptions options_;
  Catalog catalog_;
  sim::Simulator simulator_;
  /// Engine-owned calibration, populated unless options.calibration was set.
  std::optional<model::CalibrationTable> owned_calibration_;
  const model::CalibrationTable* calibration_;  ///< owned or shared
  /// Engine-owned tuning cache, allocated unless options.tuning_cache was
  /// set. Declared before gpl_executor_, which captures the pointer.
  std::unique_ptr<model::TuningCache> owned_tuning_cache_;
  model::TuningCache* tuning_cache_;  ///< owned or shared
  GplExecutor gpl_executor_;
  KbeEngine kbe_engine_;
  KbeEngine ocelot_engine_;
  /// Lazily built sharded-execution state (partitioned database + executor),
  /// keyed by the sharding shape of the last sharded Execute() call.
  struct ShardedState;
  std::unique_ptr<ShardedState> sharded_state_;
};

}  // namespace gpl

#endif  // GPL_ENGINE_ENGINE_H_
