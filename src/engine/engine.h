#ifndef GPL_ENGINE_ENGINE_H_
#define GPL_ENGINE_ENGINE_H_

#include <memory>

#include "common/status.h"
#include "core/gpl_executor.h"
#include "engine/kbe_engine.h"
#include "engine/metrics.h"
#include "model/calibration.h"
#include "plan/cardinality.h"
#include "plan/logical_plan.h"
#include "plan/physical_plan.h"
#include "plan/selinger.h"
#include "sim/engine.h"
#include "tpch/dbgen.h"

namespace gpl {

/// Execution strategies evaluated in the paper.
enum class EngineMode {
  kKbe,      ///< kernel-based execution baseline [15, 16]
  kGplNoCe,  ///< GPL with tiling but without concurrent execution/channels
  kGpl,      ///< the full pipelined engine
  kOcelot,   ///< Ocelot-style KBE baseline (Section 5.5)
};

const char* EngineModeName(EngineMode mode);

struct EngineOptions {
  sim::DeviceSpec device = sim::DeviceSpec::AmdA10();
  EngineMode mode = EngineMode::kGpl;

  /// GPL: use the analytical model to pick parameters (Section 4). When
  /// false, the defaults / overrides below apply.
  bool use_cost_model = true;
  model::TuningOverrides overrides;

  /// Use radix-partitioned hash joins (Section 3.2) for builds whose
  /// estimated size exceeds half the device cache. GPL modes only; the KBE
  /// baselines always use the simple hash join.
  bool partitioned_joins = false;
  int num_partitions = 8;
  /// Build-size threshold for partitioning; 0 uses half the device cache.
  int64_t partition_threshold_bytes = 0;

  /// Optional tracing/profiling sink (see trace/trace.h). Every execution
  /// under this engine emits kernel/tile spans, channel occupancy samples
  /// and stall events into it; successive queries lay out end-to-end on the
  /// simulated timeline. nullptr (the default) disables tracing with no
  /// overhead beyond null checks.
  trace::TraceCollector* trace = nullptr;
};

/// The public entry point of the library: executes TPC-H-style analytical
/// queries against a generated database under a chosen execution strategy on
/// a simulated GPU, returning real results plus simulated timing/counters.
///
/// Typical use:
///
///   tpch::Database db = tpch::Generate({.scale_factor = 0.1});
///   Engine engine(&db, {.mode = EngineMode::kGpl});
///   auto result = engine.Execute(queries::Q14(0.164));
///   std::cout << result->table.ToString();
class Engine {
 public:
  Engine(const tpch::Database* db, EngineOptions options);

  const EngineOptions& options() const { return options_; }
  const Catalog& catalog() const { return catalog_; }
  const sim::Simulator& simulator() const { return simulator_; }
  const model::CalibrationTable& calibration() const { return calibration_; }

  /// Optimizes and executes a logical query.
  Result<QueryResult> Execute(const LogicalQuery& query);

  /// Executes an already-built physical plan.
  Result<QueryResult> ExecutePlan(const PhysicalOpPtr& plan);

  /// Executes a plan with GPL and returns the detailed per-segment run
  /// (tuning choices, predictions, simulated stats) — used by the model-
  /// evaluation benches.
  Result<GplRunResult> ExecuteGplDetailed(const PhysicalOpPtr& plan);

  /// Builds the optimized physical plan for a query (EXPLAIN support).
  Result<PhysicalOpPtr> Plan(const LogicalQuery& query) const;

 private:
  const tpch::Database* db_;
  EngineOptions options_;
  Catalog catalog_;
  sim::Simulator simulator_;
  model::CalibrationTable calibration_;
  GplExecutor gpl_executor_;
  KbeEngine kbe_engine_;
  KbeEngine ocelot_engine_;
};

}  // namespace gpl

#endif  // GPL_ENGINE_ENGINE_H_
