#include "ref/reference_executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <unordered_map>

#include "common/logging.h"

namespace gpl {
namespace ref {

namespace {

std::vector<int64_t> PackedKeys(const Table& input,
                                const std::vector<ExprPtr>& key_exprs) {
  GPL_CHECK(!key_exprs.empty() && key_exprs.size() <= 2);
  Column k0 = key_exprs[0]->Evaluate(input);
  const int64_t n = k0.size();
  std::vector<int64_t> keys(static_cast<size_t>(n));
  if (key_exprs.size() == 1) {
    for (int64_t i = 0; i < n; ++i) keys[static_cast<size_t>(i)] = k0.AsInt64(i);
  } else {
    Column k1 = key_exprs[1]->Evaluate(input);
    for (int64_t i = 0; i < n; ++i) {
      keys[static_cast<size_t>(i)] =
          (k0.AsInt64(i) << 32) ^ (k1.AsInt64(i) & 0xffffffffLL);
    }
  }
  return keys;
}

Result<Table> Exec(const tpch::Database& db, const PhysicalOp& op) {
  switch (op.kind) {
    case PhysicalOp::Kind::kScan: {
      const Table* base = db.ByName(op.table);
      if (base == nullptr) return Status::NotFound("unknown table: " + op.table);
      Table view(op.table);
      for (const std::string& col : op.columns) {
        const std::string name = op.alias.empty() ? col : op.alias + "_" + col;
        GPL_RETURN_NOT_OK(view.AddColumn(name, base->GetColumn(col)));
      }
      return view;
    }

    case PhysicalOp::Kind::kFilter: {
      GPL_ASSIGN_OR_RETURN(Table input, Exec(db, *op.child));
      Column flags = op.predicate->Evaluate(input);
      std::vector<int64_t> keep;
      for (int64_t i = 0; i < flags.size(); ++i) {
        if (flags.Int32At(i) != 0) keep.push_back(i);
      }
      return input.Gather(keep);
    }

    case PhysicalOp::Kind::kProject: {
      GPL_ASSIGN_OR_RETURN(Table input, Exec(db, *op.child));
      Table out(input.name());
      for (const ProjectedColumn& p : op.projections) {
        GPL_RETURN_NOT_OK(out.AddColumn(p.name, p.expr->Evaluate(input)));
      }
      return out;
    }

    case PhysicalOp::Kind::kHashJoin: {
      GPL_ASSIGN_OR_RETURN(Table build, Exec(db, *op.build_child));
      GPL_ASSIGN_OR_RETURN(Table probe, Exec(db, *op.child));
      const std::vector<int64_t> build_keys = PackedKeys(build, op.build_keys);
      const std::vector<int64_t> probe_keys = PackedKeys(probe, op.probe_keys);

      std::unordered_multimap<int64_t, int64_t> index;
      index.reserve(build_keys.size());
      for (size_t i = 0; i < build_keys.size(); ++i) {
        index.emplace(build_keys[i], static_cast<int64_t>(i));
      }

      std::vector<int64_t> probe_idx, build_idx;
      for (size_t i = 0; i < probe_keys.size(); ++i) {
        auto [lo, hi] = index.equal_range(probe_keys[i]);
        // Collect matches in build order for determinism.
        std::vector<int64_t> matches;
        for (auto it = lo; it != hi; ++it) matches.push_back(it->second);
        std::sort(matches.begin(), matches.end());
        for (int64_t b : matches) {
          probe_idx.push_back(static_cast<int64_t>(i));
          build_idx.push_back(b);
        }
      }
      Table out = probe.Gather(probe_idx);
      for (const std::string& name : op.build_payload) {
        GPL_RETURN_NOT_OK(
            out.AddColumn(name, build.GetColumn(name).Gather(build_idx)));
      }
      return out;
    }

    case PhysicalOp::Kind::kAggregate: {
      GPL_ASSIGN_OR_RETURN(Table input, Exec(db, *op.child));
      const int64_t n = input.num_rows();

      std::vector<Column> group_cols;
      for (const ProjectedColumn& g : op.group_by) {
        group_cols.push_back(g.expr->Evaluate(input));
      }
      std::vector<Column> agg_cols;
      for (const AggSpec& a : op.aggregates) {
        agg_cols.push_back(a.func == AggSpec::kCount || a.arg == nullptr
                               ? Column(DataType::kInt64)
                               : a.arg->Evaluate(input));
      }

      struct Acc {
        std::vector<double> sums;
        std::vector<double> mins;
        std::vector<double> maxs;
        std::vector<int64_t> counts;
      };
      std::map<std::vector<int64_t>, Acc> groups;
      std::vector<int64_t> key(op.group_by.size());
      for (int64_t i = 0; i < n; ++i) {
        for (size_t g = 0; g < group_cols.size(); ++g) {
          key[g] = group_cols[g].AsInt64(i);
        }
        Acc& acc = groups[key];
        if (acc.sums.empty()) {
          acc.sums.assign(op.aggregates.size(), 0.0);
          acc.mins.assign(op.aggregates.size(),
                          std::numeric_limits<double>::infinity());
          acc.maxs.assign(op.aggregates.size(),
                          -std::numeric_limits<double>::infinity());
          acc.counts.assign(op.aggregates.size(), 0);
        }
        for (size_t a = 0; a < op.aggregates.size(); ++a) {
          if (op.aggregates[a].func != AggSpec::kCount) {
            const double v = agg_cols[a].AsDouble(i);
            acc.sums[a] += v;
            acc.mins[a] = std::min(acc.mins[a], v);
            acc.maxs[a] = std::max(acc.maxs[a], v);
          }
          acc.counts[a] += 1;
        }
      }

      Table out("aggregate");
      for (size_t g = 0; g < op.group_by.size(); ++g) {
        // Infer type and dictionary by evaluating on the (possibly empty)
        // input.
        const DataType type =
            n > 0 ? group_cols[g].type()
                  : op.group_by[g].expr->OutputType(input);
        Column col(type, n > 0 ? group_cols[g].dictionary() : nullptr);
        for (const auto& [k, acc] : groups) {
          switch (type) {
            case DataType::kInt32:
            case DataType::kDate:
            case DataType::kString:
              col.AppendInt32(static_cast<int32_t>(k[g]));
              break;
            case DataType::kInt64:
              col.AppendInt64(k[g]);
              break;
            case DataType::kFloat64:
              col.AppendDouble(static_cast<double>(k[g]));
              break;
          }
        }
        GPL_RETURN_NOT_OK(out.AddColumn(op.group_by[g].name, std::move(col)));
      }
      for (size_t a = 0; a < op.aggregates.size(); ++a) {
        const AggSpec& spec = op.aggregates[a];
        if (spec.func == AggSpec::kCount) {
          Column col(DataType::kInt64);
          for (const auto& [k, acc] : groups) col.AppendInt64(acc.counts[a]);
          GPL_RETURN_NOT_OK(out.AddColumn(spec.output_name, std::move(col)));
        } else {
          Column col(DataType::kFloat64);
          for (const auto& [k, acc] : groups) {
            double v = 0.0;
            switch (spec.func) {
              case AggSpec::kSum:
                v = acc.sums[a];
                break;
              case AggSpec::kAvg:
                v = acc.counts[a] > 0
                        ? acc.sums[a] / static_cast<double>(acc.counts[a])
                        : 0.0;
                break;
              case AggSpec::kMin:
                v = acc.mins[a];
                break;
              case AggSpec::kMax:
                v = acc.maxs[a];
                break;
              case AggSpec::kCount:
                break;
            }
            col.AppendDouble(v);
          }
          GPL_RETURN_NOT_OK(out.AddColumn(spec.output_name, std::move(col)));
        }
      }
      return out;
    }

    case PhysicalOp::Kind::kExchange:
      // Data-motion annotation; a no-op for the single-address-space oracle.
      return Exec(db, *op.child);

    case PhysicalOp::Kind::kSort: {
      GPL_ASSIGN_OR_RETURN(Table input, Exec(db, *op.child));
      const int64_t n = input.num_rows();
      std::vector<int64_t> indices(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) indices[static_cast<size_t>(i)] = i;
      std::stable_sort(
          indices.begin(), indices.end(), [&](int64_t a, int64_t b) {
            for (const SortKey& k : op.sort_keys) {
              const Column& c = input.GetColumn(k.column);
              int cmp = 0;
              if (c.type() == DataType::kString) {
                cmp = c.StringAt(a).compare(c.StringAt(b));
              } else if (c.type() == DataType::kFloat64) {
                const double va = c.DoubleAt(a), vb = c.DoubleAt(b);
                cmp = va < vb ? -1 : (va > vb ? 1 : 0);
              } else {
                const int64_t va = c.AsInt64(a), vb = c.AsInt64(b);
                cmp = va < vb ? -1 : (va > vb ? 1 : 0);
              }
              if (cmp != 0) return k.descending ? cmp > 0 : cmp < 0;
            }
            return a < b;
          });
      return input.Gather(indices);
    }
  }
  return Status::Internal("unknown physical operator kind");
}

}  // namespace

Result<Table> ExecutePlan(const tpch::Database& db, const PhysicalOpPtr& plan) {
  GPL_CHECK(plan != nullptr);
  return Exec(db, *plan);
}

bool TablesEqual(const Table& a, const Table& b, std::string* message) {
  std::ostringstream why;
  auto fail = [&](const std::string& text) {
    if (message != nullptr) *message = text;
    return false;
  };
  if (a.num_columns() != b.num_columns()) {
    return fail("column count differs: " + std::to_string(a.num_columns()) +
                " vs " + std::to_string(b.num_columns()));
  }
  if (a.num_rows() != b.num_rows()) {
    return fail("row count differs: " + std::to_string(a.num_rows()) + " vs " +
                std::to_string(b.num_rows()));
  }
  for (int64_t c = 0; c < a.num_columns(); ++c) {
    if (a.ColumnNameAt(c) != b.ColumnNameAt(c)) {
      return fail("column name differs at " + std::to_string(c) + ": " +
                  a.ColumnNameAt(c) + " vs " + b.ColumnNameAt(c));
    }
    const Column& ca = a.ColumnAt(c);
    const Column& cb = b.ColumnAt(c);
    if (ca.type() != cb.type()) {
      return fail("column type differs for " + a.ColumnNameAt(c));
    }
    for (int64_t r = 0; r < a.num_rows(); ++r) {
      bool equal = true;
      if (ca.type() == DataType::kFloat64) {
        const double va = ca.DoubleAt(r), vb = cb.DoubleAt(r);
        const double scale = std::max({std::abs(va), std::abs(vb), 1.0});
        equal = std::abs(va - vb) <= 1e-6 * scale;
      } else if (ca.type() == DataType::kString) {
        equal = ca.StringAt(r) == cb.StringAt(r);
      } else {
        equal = ca.AsInt64(r) == cb.AsInt64(r);
      }
      if (!equal) {
        why << "value differs at row " << r << ", column " << a.ColumnNameAt(c);
        return fail(why.str());
      }
    }
  }
  return true;
}

}  // namespace ref
}  // namespace gpl
