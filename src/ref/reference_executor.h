#ifndef GPL_REF_REFERENCE_EXECUTOR_H_
#define GPL_REF_REFERENCE_EXECUTOR_H_

#include "common/status.h"
#include "plan/physical_plan.h"
#include "storage/table.h"
#include "tpch/dbgen.h"

namespace gpl {
namespace ref {

/// Straightforward single-threaded CPU execution of a physical plan, written
/// independently of the kernel/primitive implementations (standard-library
/// hash maps, direct sorts). The test suite asserts that every engine mode
/// produces results identical to this executor.
Result<Table> ExecutePlan(const tpch::Database& db, const PhysicalOpPtr& plan);

/// True when two tables have the same schema and identical contents
/// (floating point compared with a relative tolerance). If `message` is
/// non-null it receives a description of the first difference.
bool TablesEqual(const Table& a, const Table& b, std::string* message = nullptr);

}  // namespace ref
}  // namespace gpl

#endif  // GPL_REF_REFERENCE_EXECUTOR_H_
