#ifndef GPL_SIM_CACHE_MODEL_H_
#define GPL_SIM_CACHE_MODEL_H_

#include <cstdint>

namespace gpl {
namespace sim {

/// Analytic model of the device's last-level data cache. Instead of tracing
/// individual addresses (which would be far too slow at TPC-H scale), the
/// model computes expected hit ratios per access *pattern* given the
/// competing working sets — the standard capacity/reuse approximation.
///
/// Three patterns are distinguished:
///  - streaming scans: hits come from spatial locality within a cache line;
///  - random lookups into a side structure (hash table): hits are capacity-
///    limited by the cache space left over for the structure;
///  - channel traffic: fully cache-resident while total in-flight data fits,
///    thrashing (served from global memory) beyond that — the effect behind
///    the tile-size cliff in Figures 2 and 12.
class CacheModel {
 public:
  CacheModel(int64_t capacity_bytes, int line_bytes = 64);

  int64_t capacity() const { return capacity_; }
  int line_bytes() const { return line_bytes_; }

  /// Expected hit ratio of a sequential scan with `access_width` bytes per
  /// access: all but the first access of each line hit.
  double StreamingHitRatio(int access_width_bytes) const;

  /// Expected hit ratio of uniform random accesses into a structure of
  /// `working_set_bytes`, when `competing_bytes` of other hot data contend
  /// for the cache.
  double RandomHitRatio(int64_t working_set_bytes, int64_t competing_bytes) const;

  /// Fraction of channel traffic served from cache when `inflight_bytes` of
  /// channel data coexist with `competing_bytes` of other hot data.
  double ChannelResidency(int64_t inflight_bytes, int64_t competing_bytes) const;

 private:
  int64_t capacity_;
  int line_bytes_;
};

}  // namespace sim
}  // namespace gpl

#endif  // GPL_SIM_CACHE_MODEL_H_
