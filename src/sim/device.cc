#include "sim/device.h"

#include "common/math_util.h"

namespace gpl {
namespace sim {

DeviceSpec DeviceSpec::AmdA10() {
  DeviceSpec d;
  d.name = "AMD A10 APU";
  d.num_cus = 8;
  d.core_mhz = 720;
  d.private_mem_per_cu = KiB(64);  // vector registers (scalar 8KB not modeled)
  d.local_mem_per_cu = KiB(32);
  d.global_mem_bytes = GiB(32);  // host memory (coupled architecture)
  d.cache_bytes = MiB(4);
  d.concurrent_kernels = 2;
  d.has_packet_size_param = true;
  d.wavefront_size = 64;
  d.max_workgroups_per_cu = 16;
  d.cycles_per_instr = 4;
  d.global_mem_latency = 300;
  d.cache_latency = 40;
  // ~25.6 GB/s DDR3 at 720 MHz -> ~35 bytes/cycle aggregate.
  d.global_bw_bytes_per_cycle = 35.0;
  d.cache_bw_bytes_per_cycle = 140.0;
  d.kernel_launch_cycles = 15000;
  d.tile_dispatch_cycles = 1500;
  d.latency_hiding_wavefronts = 8;
  d.channel_port_limit = 16;
  d.channel_sync_cycles = 8.0;
  d.channel_capacity_bytes_per_channel = KiB(16);
  return d;
}

DeviceSpec DeviceSpec::NvidiaK40() {
  DeviceSpec d;
  d.name = "NVIDIA Tesla K40";
  d.num_cus = 15;
  d.core_mhz = 875;
  d.private_mem_per_cu = KiB(64);
  d.local_mem_per_cu = KiB(48);
  d.global_mem_bytes = GiB(12);
  d.cache_bytes = MiB(3) / 2;  // 1.5 MB L2
  d.concurrent_kernels = 16;
  d.has_packet_size_param = false;  // Direct Data Transfer has no packet knob
  d.wavefront_size = 64;            // paper fixes the work-group size to 64
  d.max_workgroups_per_cu = 16;
  d.cycles_per_instr = 4;
  d.global_mem_latency = 400;
  d.cache_latency = 36;
  // 288 GB/s GDDR5 at 875 MHz -> ~330 bytes/cycle aggregate.
  d.global_bw_bytes_per_cycle = 330.0;
  d.cache_bw_bytes_per_cycle = 900.0;
  d.kernel_launch_cycles = 9000;
  d.tile_dispatch_cycles = 1200;
  d.latency_hiding_wavefronts = 12;
  d.channel_port_limit = 16;
  d.channel_sync_cycles = 7.0;
  d.channel_capacity_bytes_per_channel = KiB(16);
  return d;
}

}  // namespace sim
}  // namespace gpl
