#ifndef GPL_SIM_COUNTERS_H_
#define GPL_SIM_COUNTERS_H_

#include <cstdint>

#include "sim/device.h"

namespace gpl {
namespace sim {

/// Simulated hardware performance counters, the equivalents of what the
/// paper collects with CodeXL / NVIDIA Visual Profiler:
///  - VALUBusy: fraction of CU-cycles the vector ALUs were busy;
///  - MemUnitBusy: fraction of CU-cycles the memory units were busy;
///  - kernel occupancy: resident work-groups relative to the device maximum;
///  - cache hit ratio: weighted over all memory accesses.
struct HwCounters {
  double elapsed_cycles = 0.0;

  // Work placed on the two per-CU pipelines (CU-cycles).
  double compute_cycles = 0.0;  ///< vector ALU work
  double mem_cycles = 0.0;      ///< global/cache memory work (Mem_cost)
  double channel_cycles = 0.0;  ///< data channel work (DC_cost)

  /// Cycles during which a kernel had free slots and pending work-groups but
  /// could not dispatch because its channel was empty/full (Delay cost).
  double stall_cycles = 0.0;

  /// Host-side overheads (kernel launches, per-tile scheduling).
  double launch_cycles = 0.0;

  // Cache statistics (weighted by access counts).
  double cache_hits = 0.0;
  double cache_accesses = 0.0;

  /// Integral of resident work-groups over time (for occupancy).
  double resident_wg_time = 0.0;

  /// Intermediate result bytes materialized in global memory vs. passed
  /// through channels (Figures 3, 17, 18).
  int64_t bytes_materialized = 0;
  int64_t bytes_via_channel = 0;

  double ValuBusy(const DeviceSpec& device) const;
  double MemUnitBusy(const DeviceSpec& device) const;
  double Occupancy(const DeviceSpec& device) const;
  double CacheHitRatio() const;

  /// Total time attributable to communication: memory + channel + delay.
  double CommunicationCycles() const {
    return mem_cycles + channel_cycles + stall_cycles;
  }

  void Accumulate(const HwCounters& other);
};

}  // namespace sim
}  // namespace gpl

#endif  // GPL_SIM_COUNTERS_H_
