#ifndef GPL_SIM_FAULT_H_
#define GPL_SIM_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "sim/channel.h"

namespace gpl {
namespace sim {

/// The fault classes the simulator can inject. Production GPU engines see all
/// four: kernels abort transiently (ECC scrub, watchdog preemption), pipe
/// reservation fails when channel memory is exhausted, whole devices reset,
/// and memory pressure throttles clocks without failing anything.
enum class FaultKind {
  kTransientKernelAbort,  ///< the launch fails; retrying the query may succeed
  kChannelAllocFailed,    ///< channel reservation fails; degradable to w/o-CE
  kDeviceReset,           ///< the device is lost mid-query (also transient)
  kMemoryThrottle,        ///< launch succeeds but runs slower (no error)
};

const char* FaultKindName(FaultKind kind);

/// A fault pinned to the Nth visit of its site class (0-based): kernel faults
/// count kernel-launch sites, channel faults count channel-reservation sites.
/// Scheduled faults fire regardless of the probabilistic rates, which makes
/// single-fault unit tests deterministic without sweeping seeds.
struct ScheduledFault {
  FaultKind kind = FaultKind::kTransientKernelAbort;
  int64_t site_index = 0;
};

/// Configuration of a FaultInjector. All rates are per-site probabilities in
/// [0, 1]; the default (all zero, no scheduled faults) never fires, which is
/// the production fast path.
struct FaultConfig {
  uint64_t seed = 0x9e3779b97f4a7c15ULL;

  /// Per kernel-launch site.
  double kernel_abort_rate = 0.0;
  double device_reset_rate = 0.0;
  double throttle_rate = 0.0;
  /// Relative slowdown of a throttled launch's execution (0.5 = +50% cycles).
  double throttle_penalty = 0.5;

  /// Per channel-reservation site.
  double channel_alloc_fail_rate = 0.0;

  std::vector<ScheduledFault> scheduled;

  /// True if any fault can ever fire (callers skip building an injector
  /// otherwise — the nullptr fast path).
  bool enabled() const {
    return kernel_abort_rate > 0.0 || device_reset_rate > 0.0 ||
           throttle_rate > 0.0 || channel_alloc_fail_rate > 0.0 ||
           !scheduled.empty();
  }
};

/// Counters of what an injector actually did (for tests and benches).
struct FaultStats {
  int64_t kernel_launches = 0;    ///< kernel-launch sites visited
  int64_t channel_reservations = 0;  ///< channel-reservation sites visited
  int64_t kernel_aborts = 0;
  int64_t device_resets = 0;
  int64_t throttles = 0;
  int64_t channel_alloc_failures = 0;
  int64_t total_faults() const {
    return kernel_aborts + device_resets + throttles + channel_alloc_failures;
  }
};

/// Deterministic, seeded fault injector. Owned by the caller and passed into
/// executions via ExecOptions (like the TraceCollector): nullptr disables
/// injection with no cost beyond null checks. The simulator consults it at
/// every kernel-launch and channel-reservation site; decisions come from a
/// private xorshift128+ stream, so the same seed over the same (deterministic,
/// simulated) execution fires the same faults at the same sites — regardless
/// of host threads, worker assignment, or wall-clock timing.
///
/// Thread-safety: NOT thread-safe. Use one injector per execution; never
/// share one across concurrently executing queries.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  const FaultConfig& config() const { return config_; }
  const FaultStats& stats() const { return stats_; }

  /// Rewinds to the freshly-seeded initial state (site counters and the
  /// random stream), so the same injector can replay a run exactly.
  void Reset();

  /// Kernel-launch site. OK to proceed (with `*throttle_penalty` set to the
  /// extra execution-cycle fraction, 0 for full speed), or a
  /// kTransientDeviceError describing the injected abort/reset.
  Status OnKernelLaunch(const std::string& kernel, double* throttle_penalty);

  /// Channel-reservation site (one per channel allocated for a pipelined
  /// segment). OK, or kChannelAllocFailed.
  Status OnChannelAlloc(const ChannelConfig& config);

  /// Mixes a base seed with a query's submission sequence number and retry
  /// attempt into a per-attempt injector seed (splitmix64 finalizer). The
  /// QueryService uses this so each (query, attempt) pair sees an
  /// independent, reproducible fault stream no matter which worker runs it.
  static uint64_t AttemptSeed(uint64_t base, uint64_t sequence, int attempt);

 private:
  bool ScheduledAt(FaultKind kind, int64_t site_index) const;

  FaultConfig config_;
  Random rng_;
  FaultStats stats_;
};

}  // namespace sim
}  // namespace gpl

#endif  // GPL_SIM_FAULT_H_
