#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <queue>

#include "common/logging.h"
#include "common/math_util.h"
#include "sim/occupancy.h"
#include "trace/json.h"
#include "trace/trace.h"

namespace gpl {
namespace sim {

namespace {
// Rows a KBE work-group covers: four wavefront iterations, the granularity
// conventional GPU query operators launch with.
constexpr int kKbeWavefrontsPerWg = 4;
// Average column width assumed for streaming spatial locality.
constexpr int kAvgAccessWidth = 8;

std::string TraceInt(int64_t v) { return std::to_string(v); }
}  // namespace

Simulator::Simulator(const DeviceSpec& device, obs::MetricsRegistry* metrics)
    : device_(device), cache_(device.cache_bytes) {
  if (metrics != nullptr) {
    const obs::Labels labels = {{"device", device_.name}};
    kernel_launches_ = metrics->GetCounter(
        "gpl_sim_kernel_launches_total", "Simulated kernel launches", labels);
    tile_dispatches_ = metrics->GetCounter(
        "gpl_sim_tile_dispatches_total",
        "Simulated per-tile kernel dispatches", labels);
    channel_reservations_ = metrics->GetCounter(
        "gpl_sim_channel_reservations_total",
        "Data-channel reservations between pipelined kernels", labels);
    throttle_events_ = metrics->GetCounter(
        "gpl_sim_throttle_events_total",
        "Injected memory-pressure throttles applied to a launch", labels);
    fused_kernels_ = metrics->GetCounter(
        "gpl_sim_fused_kernels_total",
        "Fused (composed) kernels executed", labels);
    fused_launches_saved_ = metrics->GetCounter(
        "gpl_sim_fused_launches_saved_total",
        "Per-stage kernel launches eliminated by fusion", labels);
    fused_bytes_avoided_ = metrics->GetCounter(
        "gpl_sim_fused_bytes_avoided_total",
        "Interior hand-off bytes fusion kept in registers", labels);
  }
}

Simulator::WgWork Simulator::ComputeWgWork(
    const KernelTimingDesc& desc, double rows, double global_in_bytes,
    double global_out_bytes, double chan_in_bytes, double chan_out_bytes,
    const ChannelState* in_chan, const ChannelState* out_chan,
    double chan_residency, double input_resident, int hide_wavefronts,
    int64_t competing_bytes) const {
  WgWork w;
  if (rows <= 0.0) return w;
  const double wf = static_cast<double>(device_.wavefront_size);
  const double iters = std::ceil(rows / wf);

  // Vector ALU work: one instruction issue covers a whole wavefront.
  w.alu = iters * desc.compute_inst_per_row * device_.cycles_per_instr;

  // Memory work: coalesced transactions with pattern-dependent hit ratio.
  const double accesses = iters * desc.mem_inst_per_row;
  double stream_hit = cache_.StreamingHitRatio(kAvgAccessWidth);
  stream_hit = input_resident + (1.0 - input_resident) * stream_hit;
  double hit = stream_hit;
  if (desc.random_access_fraction > 0.0) {
    const double random_hit =
        cache_.RandomHitRatio(desc.random_working_set_bytes, competing_bytes);
    hit = (1.0 - desc.random_access_fraction) * stream_hit +
          desc.random_access_fraction * random_hit;
  }
  const double latency = hit * device_.cache_latency +
                         (1.0 - hit) * device_.global_mem_latency;
  const double hide = static_cast<double>(
      std::clamp(hide_wavefronts, 1, device_.latency_hiding_wavefronts));
  const double latency_cycles = accesses * latency / hide;

  // Bandwidth floor for the global traffic this work-group generates.
  const double global_bw_per_cu =
      device_.global_bw_bytes_per_cycle / device_.num_cus;
  const double cache_bw_per_cu =
      device_.cache_bw_bytes_per_cycle / device_.num_cus;
  const double resident_in = global_in_bytes * input_resident;
  const double dram_bytes = global_in_bytes - resident_in + global_out_bytes;
  const double bw_cycles =
      dram_bytes / global_bw_per_cu + resident_in / cache_bw_per_cu;

  w.mem = std::max(latency_cycles, bw_cycles);
  w.cache_accesses = accesses;
  w.cache_hits = hit * accesses;

  // Channel work (DC cost).
  if (in_chan != nullptr && chan_in_bytes > 0.0) {
    w.chan += in_chan->AcquireCost(chan_in_bytes, chan_residency);
  }
  if (out_chan != nullptr && chan_out_bytes > 0.0) {
    w.chan += out_chan->CommitCost(chan_out_bytes, chan_residency);
  }
  if (chan_in_bytes + chan_out_bytes > 0.0) {
    const double chan_accesses =
        (chan_in_bytes + chan_out_bytes) / cache_.line_bytes();
    w.cache_accesses += chan_accesses;
    w.cache_hits += chan_residency * chan_accesses;
  }
  return w;
}

Result<SimResult> Simulator::RunKernelBatch(const KernelLaunch& launch,
                                            int64_t resident_bytes,
                                            trace::TraceCollector* trace,
                                            FaultInjector* fault) const {
  double throttle_penalty = 0.0;
  if (fault != nullptr) {
    GPL_RETURN_NOT_OK(fault->OnKernelLaunch(launch.desc.name,
                                            &throttle_penalty));
  }
  obs::Inc(kernel_launches_);
  if (throttle_penalty > 0.0) obs::Inc(throttle_events_);
  SimResult result;
  const KernelTimingDesc& desc = launch.desc;
  const int slots = SingleKernelSlots(device_, desc);

  const int64_t rows = std::max<int64_t>(launch.rows_in, 1);
  const int64_t rows_per_wg_target =
      static_cast<int64_t>(device_.wavefront_size) * kKbeWavefrontsPerWg;
  const int64_t wg_total = std::max<int64_t>(1, CeilDiv(rows, rows_per_wg_target));
  const int active = static_cast<int>(std::min<int64_t>(slots, wg_total));
  const int active_cus =
      static_cast<int>(std::min<int64_t>(device_.num_cus, wg_total));
  const int hide = std::max(1, active / std::max(1, active_cus));

  const double rows_per_wg =
      static_cast<double>(rows) / static_cast<double>(wg_total);
  const double in_per_wg =
      static_cast<double>(launch.bytes_in) / static_cast<double>(wg_total);
  const double out_per_wg =
      static_cast<double>(launch.bytes_out) / static_cast<double>(wg_total);

  const WgWork per =
      ComputeWgWork(desc, rows_per_wg, in_per_wg, out_per_wg, 0.0, 0.0, nullptr,
                    nullptr, 0.0, launch.input_resident_fraction, hide,
                    resident_bytes);

  const double total_alu = per.alu * static_cast<double>(wg_total);
  const double total_mem = per.mem * static_cast<double>(wg_total);
  const double exec = std::max(total_alu, total_mem) / active_cus;
  // A memory-pressure throttle slows execution without failing it; the lost
  // cycles are accounted as stall, keeping busy-cycle components untouched.
  const double throttle_cycles = exec * throttle_penalty;
  const double elapsed = exec + throttle_cycles +
                         static_cast<double>(device_.kernel_launch_cycles);

  HwCounters& c = result.counters;
  c.elapsed_cycles = elapsed;
  c.stall_cycles = throttle_cycles;
  c.compute_cycles = total_alu;
  c.mem_cycles = total_mem;
  c.launch_cycles = static_cast<double>(device_.kernel_launch_cycles);
  c.cache_accesses = per.cache_accesses * static_cast<double>(wg_total);
  c.cache_hits = per.cache_hits * static_cast<double>(wg_total);
  c.resident_wg_time = static_cast<double>(active) * exec;
  if (launch.output == Endpoint::kGlobal) {
    c.bytes_materialized = launch.bytes_out;
  }

  KernelStats stats;
  stats.name = desc.name;
  stats.busy_cycles = total_alu + total_mem;
  stats.compute_cycles = total_alu;
  stats.mem_cycles = total_mem;
  stats.stall_cycles = throttle_cycles;
  stats.finish_cycles = elapsed;
  stats.valu_busy = c.ValuBusy(device_);
  stats.mem_unit_busy = c.MemUnitBusy(device_);
  result.kernels.push_back(std::move(stats));

  if (trace != nullptr) {
    trace->set_clock_mhz(static_cast<double>(device_.core_mhz));
    const int track = trace->TrackId(desc.name);
    trace->AddSpan(
        track, desc.name, "kernel", 0.0, elapsed,
        {{"rows_in", TraceInt(launch.rows_in)},
         {"rows_out", TraceInt(launch.rows_out)},
         {"workgroups", TraceInt(wg_total)},
         {"cache_hit_ratio", trace::JsonNumber(c.CacheHitRatio())}});
    trace->AddCounter("cache_hit_ratio:" + desc.name, elapsed,
                      c.CacheHitRatio());
    trace->AddKernelPhase(desc.name, total_alu, total_mem, 0.0, 0.0);
    trace->AddOverhead(c.launch_cycles);
    trace->AdvanceOrigin(elapsed);
  }
  return result;
}

Result<SimResult> Simulator::RunSequentialTiles(const PipelineSpec& spec) const {
  SimResult result;
  GPL_CHECK(!spec.kernels.empty());
  const int64_t input_bytes = std::max<int64_t>(spec.kernels[0].bytes_in, 1);
  const int64_t num_tiles =
      std::max<int64_t>(1, CeilDiv(input_bytes, spec.tile_bytes));

  // Kernels are compiled/loaded once; each tile only pays a (cheaper)
  // dispatch, but there is one dispatch per kernel per tile — the "frequent
  // kernel launches" overhead of Section 5.3.1.
  const double per_kernel_overhead =
      static_cast<double>(device_.kernel_launch_cycles) +
      (static_cast<double>(device_.tile_dispatch_cycles) +
       0.5 * static_cast<double>(device_.kernel_launch_cycles)) *
          static_cast<double>(num_tiles);
  obs::Inc(tile_dispatches_, static_cast<uint64_t>(num_tiles) *
                                 spec.kernels.size());

  trace::TraceCollector* trace = spec.trace;
  if (trace != nullptr) {
    trace->set_clock_mhz(static_cast<double>(device_.core_mhz));
  }

  for (size_t i = 0; i < spec.kernels.size(); ++i) {
    const double kernel_start = result.counters.elapsed_cycles;
    KernelLaunch tile_launch = spec.kernels[i];
    tile_launch.rows_in = std::max<int64_t>(1, tile_launch.rows_in / num_tiles);
    tile_launch.bytes_in = tile_launch.bytes_in / num_tiles;
    tile_launch.rows_out = tile_launch.rows_out / num_tiles;
    tile_launch.bytes_out = tile_launch.bytes_out / num_tiles;
    // Every kernel reads and writes materialized tile intermediates; a tile
    // intermediate that fits in cache is served from it.
    tile_launch.input = Endpoint::kGlobal;
    tile_launch.output = Endpoint::kGlobal;
    if (i > 0) {
      tile_launch.input_resident_fraction = cache_.ChannelResidency(
          tile_launch.bytes_in, spec.extra_resident_bytes + spec.tile_bytes);
    }
    GPL_ASSIGN_OR_RETURN(
        const SimResult tile_result,
        RunKernelBatch(tile_launch, spec.extra_resident_bytes,
                       /*trace=*/nullptr, spec.fault));

    // All tiles are uniform: scale one tile's cost, swapping the per-launch
    // overhead RunKernelBatch charged for the cheaper per-tile dispatch.
    HwCounters scaled = tile_result.counters;
    const double n = static_cast<double>(num_tiles);
    scaled.elapsed_cycles =
        (scaled.elapsed_cycles - scaled.launch_cycles) * n + per_kernel_overhead;
    scaled.compute_cycles *= n;
    scaled.mem_cycles *= n;
    scaled.channel_cycles *= n;
    scaled.stall_cycles *= n;
    scaled.launch_cycles = per_kernel_overhead;
    scaled.cache_accesses *= n;
    scaled.cache_hits *= n;
    scaled.resident_wg_time *= n;
    scaled.bytes_materialized = spec.kernels[i].bytes_out;
    result.counters.Accumulate(scaled);

    KernelStats stats;
    stats.name = spec.kernels[i].desc.name;
    stats.busy_cycles =
        (tile_result.counters.compute_cycles + tile_result.counters.mem_cycles) * n;
    stats.compute_cycles = tile_result.counters.compute_cycles * n;
    stats.mem_cycles = tile_result.counters.mem_cycles * n;
    stats.finish_cycles = result.counters.elapsed_cycles;
    result.kernels.push_back(std::move(stats));

    if (trace != nullptr) {
      const std::string& name = spec.kernels[i].desc.name;
      const int track = trace->TrackId(name);
      trace->AddSpan(track, name, "kernel", kernel_start,
                     result.counters.elapsed_cycles,
                     {{"tiles", TraceInt(num_tiles)},
                      {"rows_in", TraceInt(spec.kernels[i].rows_in)},
                      {"rows_out", TraceInt(spec.kernels[i].rows_out)},
                      {"cache_hit_ratio",
                       trace::JsonNumber(tile_result.counters.CacheHitRatio())}});
      trace->AddCounter("cache_hit_ratio:" + name,
                        result.counters.elapsed_cycles,
                        tile_result.counters.CacheHitRatio());
      trace->AddKernelPhase(name, tile_result.counters.compute_cycles * n,
                            tile_result.counters.mem_cycles * n, 0.0, 0.0);
      trace->AddOverhead(per_kernel_overhead);
    }
  }

  if (trace != nullptr) {
    trace->AddSpan(trace->TrackId("segment"),
                   spec.label.empty() ? "segment (w/o CE)" : spec.label,
                   "segment", 0.0, result.counters.elapsed_cycles,
                   {{"tiles", TraceInt(num_tiles)},
                    {"tile_bytes", TraceInt(spec.tile_bytes)},
                    {"kernels", TraceInt(static_cast<int64_t>(
                                    spec.kernels.size()))}});
    trace->AdvanceOrigin(result.counters.elapsed_cycles);
  }
  return result;
}

Result<SimResult> Simulator::RunFusedSegment(
    const PipelineSpec& spec, const FusedAccounting& accounting) const {
  // Timing-wise a fused segment is the sequential path over the composed
  // kernels: group boundaries materialize, but the fused chains' interior
  // launches and hand-offs no longer exist in the spec at all.
  GPL_ASSIGN_OR_RETURN(SimResult result, RunSequentialTiles(spec));
  if (accounting.fused_kernels > 0) {
    obs::Inc(fused_kernels_, static_cast<uint64_t>(accounting.fused_kernels));
  }
  if (accounting.launches_saved > 0) {
    obs::Inc(fused_launches_saved_,
             static_cast<uint64_t>(accounting.launches_saved));
  }
  if (accounting.bytes_avoided > 0) {
    obs::Inc(fused_bytes_avoided_,
             static_cast<uint64_t>(accounting.bytes_avoided));
  }
  return result;
}

Result<SimResult> Simulator::RunPipeline(const PipelineSpec& spec) const {
  SimResult result;
  const int num_kernels = static_cast<int>(spec.kernels.size());
  GPL_CHECK(num_kernels > 0);
  GPL_CHECK(static_cast<int>(spec.channel_configs.size()) >=
            std::max(0, num_kernels - 1))
      << "need a channel config per kernel gap";

  const int64_t input_bytes = std::max<int64_t>(spec.kernels[0].bytes_in, 1);
  const int64_t num_tiles =
      std::max<int64_t>(1, CeilDiv(input_bytes, spec.tile_bytes));

  // ---- Fault sites: every kernel launch, then every channel reservation.
  // All faults fire before any simulated work, so a failed run has nothing
  // to clean up (simulation state is local to this call).
  std::vector<double> throttle(static_cast<size_t>(num_kernels), 0.0);
  if (spec.fault != nullptr) {
    for (int k = 0; k < num_kernels; ++k) {
      GPL_RETURN_NOT_OK(spec.fault->OnKernelLaunch(
          spec.kernels[static_cast<size_t>(k)].desc.name,
          &throttle[static_cast<size_t>(k)]));
      if (throttle[static_cast<size_t>(k)] > 0.0) obs::Inc(throttle_events_);
    }
  }
  obs::Inc(kernel_launches_, static_cast<uint64_t>(num_kernels));
  obs::Inc(tile_dispatches_, static_cast<uint64_t>(num_tiles));

  // ---- Channels between consecutive kernels ----
  std::vector<std::optional<ChannelState>> channels(
      static_cast<size_t>(std::max(0, num_kernels - 1)));
  for (int g = 0; g + 1 < num_kernels; ++g) {
    if (spec.kernels[g].output == Endpoint::kChannel) {
      if (spec.fault != nullptr) {
        GPL_RETURN_NOT_OK(spec.fault->OnChannelAlloc(spec.channel_configs[g]));
      }
      channels[g].emplace(spec.channel_configs[g], device_);
      obs::Inc(channel_reservations_);
    }
  }

  // ---- Per-kernel uniform work-group geometry ----
  struct KernelSim {
    int64_t wg_total = 0;
    int64_t dispatched = 0;
    int64_t completed = 0;
    double rows_per_wg = 0.0;
    double g_in_per_wg = 0.0, g_out_per_wg = 0.0;
    double c_in_per_wg = 0.0, c_out_per_wg = 0.0;
    WgWork work;
    int slots = 1;
    int per_cu_cap = 1;
    bool stalled = false;
    double stall_cycles = 0.0;
    double finish_time = 0.0;
    double busy_cycles = 0.0;

    // Tracing state (only populated when spec.trace is set).
    int64_t wg_per_tile = 1;
    int track = 0;
    std::string label;
    char stall_reason = 0;  ///< 'i' starved on input, 'o' blocked on output
    bool was_stalled = false;
    int64_t stall_events = 0;
    std::vector<double> tile_start;
  };
  std::vector<KernelSim> ks(static_cast<size_t>(num_kernels));

  trace::TraceCollector* trace = spec.trace;
  if (trace != nullptr) {
    trace->set_clock_mhz(static_cast<double>(device_.core_mhz));
    for (int k = 0; k < num_kernels; ++k) {
      // Disambiguate repeated kernel names within the segment (two probe
      // stages, say) so their tile spans land on separate tracks.
      std::string label = spec.kernels[static_cast<size_t>(k)].desc.name;
      int dup = 0;
      for (int j = 0; j < k; ++j) {
        if (spec.kernels[static_cast<size_t>(j)].desc.name == label) ++dup;
      }
      if (dup > 0) label += "#" + std::to_string(dup + 1);
      ks[static_cast<size_t>(k)].label = label;
      ks[static_cast<size_t>(k)].track = trace->TrackId(label);
      ks[static_cast<size_t>(k)].tile_start.assign(
          static_cast<size_t>(num_tiles), -1.0);
    }
  }

  std::vector<ResourceRequest> requests;
  requests.reserve(static_cast<size_t>(num_kernels));
  for (int k = 0; k < num_kernels; ++k) {
    const KernelLaunch& launch = spec.kernels[k];
    const int wg_per_tile = launch.workgroups_per_tile > 0
                                ? launch.workgroups_per_tile
                                : 2 * device_.num_cus;
    ks[k].wg_total = num_tiles * static_cast<int64_t>(wg_per_tile);
    ks[k].wg_per_tile = wg_per_tile;
    const double wg_total = static_cast<double>(ks[k].wg_total);
    ks[k].rows_per_wg = static_cast<double>(launch.rows_in) / wg_total;
    const bool in_chan = launch.input == Endpoint::kChannel && k > 0 &&
                         channels[static_cast<size_t>(k - 1)].has_value();
    const bool out_chan = launch.output == Endpoint::kChannel &&
                          k + 1 < num_kernels &&
                          channels[static_cast<size_t>(k)].has_value();
    (in_chan ? ks[k].c_in_per_wg : ks[k].g_in_per_wg) =
        static_cast<double>(launch.bytes_in) / wg_total;
    (out_chan ? ks[k].c_out_per_wg : ks[k].g_out_per_wg) =
        static_cast<double>(launch.bytes_out) / wg_total;

    ResourceRequest req;
    req.private_bytes_per_item = launch.desc.private_bytes_per_item;
    req.local_bytes_per_item = launch.desc.local_bytes_per_item;
    req.requested_workgroups = wg_per_tile;
    requests.push_back(req);
  }

  const OccupancyResult occ = ComputeOccupancy(device_, requests);
  for (int k = 0; k < num_kernels; ++k) {
    ks[k].slots = std::max(1, occ.active_slots[static_cast<size_t>(k)]);
    ks[k].per_cu_cap =
        std::max(1, static_cast<int>(CeilDiv(ks[k].slots, device_.num_cus)));
  }

  // Guarantee a few work-groups' payloads always fit in the channel so one
  // oversized work-group cannot deadlock or fully serialize the pipeline.
  for (int g = 0; g + 1 < num_kernels; ++g) {
    if (!channels[static_cast<size_t>(g)].has_value()) continue;
    const double need = 3.0 * std::max(ks[g].c_out_per_wg,
                                       ks[g + 1].c_in_per_wg);
    channels[static_cast<size_t>(g)]->EnsureCapacity(
        static_cast<int64_t>(need) + 1);
  }

  // ---- Cache residency of channel traffic ----
  int64_t inflight_capacity = 0;
  for (const auto& ch : channels) {
    if (ch.has_value()) inflight_capacity += ch->capacity_bytes();
  }
  // Half the tile's streaming window is hot on average (the scan front).
  const int64_t competing = spec.tile_bytes / 2 + spec.extra_resident_bytes;
  const double chan_residency =
      cache_.ChannelResidency(inflight_capacity, competing);
  const int64_t competing_for_random =
      spec.tile_bytes / 2 + inflight_capacity + spec.extra_resident_bytes;

  // Latency hiding draws on every co-resident wavefront of the CU,
  // regardless of which concurrent kernel it belongs to.
  int total_slots = 0;
  for (int k = 0; k < num_kernels; ++k) total_slots += ks[k].slots;
  const int hide = std::max(1, total_slots / device_.num_cus);

  // Streaming inputs read from global memory are cache-resident only if the
  // tile working set leaves room (it generally does not for the leaf input).
  for (int k = 0; k < num_kernels; ++k) {
    const ChannelState* in_chan =
        (k > 0 && channels[static_cast<size_t>(k - 1)].has_value())
            ? &*channels[static_cast<size_t>(k - 1)]
            : nullptr;
    const ChannelState* out_chan =
        (k + 1 < num_kernels && channels[static_cast<size_t>(k)].has_value())
            ? &*channels[static_cast<size_t>(k)]
            : nullptr;
    ks[k].work = ComputeWgWork(
        spec.kernels[k].desc, ks[k].rows_per_wg, ks[k].g_in_per_wg,
        ks[k].g_out_per_wg, ks[k].c_in_per_wg, ks[k].c_out_per_wg, in_chan,
        out_chan, chan_residency,
        spec.kernels[k].input_resident_fraction, hide, competing_for_random);
    // An injected memory-pressure throttle slows the throttled kernel's
    // memory pipeline for the whole run (every work-group pays it).
    if (throttle[static_cast<size_t>(k)] > 0.0) {
      ks[k].work.mem *= 1.0 + throttle[static_cast<size_t>(k)];
    }
  }

  // ---- Discrete-event simulation ----
  struct Event {
    double time;
    int kernel;
    int cu;
    bool operator>(const Event& other) const { return time > other.time; }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap;

  std::vector<double> cu_alu(static_cast<size_t>(device_.num_cus), 0.0);
  std::vector<double> cu_mem(static_cast<size_t>(device_.num_cus), 0.0);
  std::vector<int> cu_resident(static_cast<size_t>(device_.num_cus), 0);
  // resident work-groups of kernel k on CU c
  std::vector<std::vector<int>> cu_kernel_resident(
      static_cast<size_t>(num_kernels),
      std::vector<int>(static_cast<size_t>(device_.num_cus), 0));
  std::vector<int> kernel_resident(static_cast<size_t>(num_kernels), 0);

  const int concurrency = std::max(1, device_.concurrent_kernels);
  int total_resident = 0;
  double now = 0.0;

  auto distinct_kernels_on_cu = [&](int cu) {
    int count = 0;
    for (int k = 0; k < num_kernels; ++k) {
      if (cu_kernel_resident[static_cast<size_t>(k)][static_cast<size_t>(cu)] > 0) {
        ++count;
      }
    }
    return count;
  };

  auto dispatch = [&]() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (int k = 0; k < num_kernels; ++k) {
        KernelSim& sim = ks[static_cast<size_t>(k)];
        sim.stalled = false;
        while (sim.dispatched < sim.wg_total && kernel_resident[k] < sim.slots) {
          ChannelState* in_chan =
              (k > 0 && channels[static_cast<size_t>(k - 1)].has_value())
                  ? &*channels[static_cast<size_t>(k - 1)]
                  : nullptr;
          ChannelState* out_chan =
              (k + 1 < num_kernels &&
               channels[static_cast<size_t>(k)].has_value())
                  ? &*channels[static_cast<size_t>(k)]
                  : nullptr;
          if (in_chan != nullptr && sim.c_in_per_wg > 0.0 &&
              !in_chan->CanAcquire(sim.c_in_per_wg)) {
            sim.stalled = true;  // starved for input data
            sim.stall_reason = 'i';
            break;
          }
          if (out_chan != nullptr && sim.c_out_per_wg > 0.0 &&
              !out_chan->CanReserve(sim.c_out_per_wg)) {
            sim.stalled = true;  // blocked on output space
            sim.stall_reason = 'o';
            break;
          }
          // Pick the least-loaded CU that can host this work-group.
          int best_cu = -1;
          double best_ready = 0.0;
          for (int c = 0; c < device_.num_cus; ++c) {
            if (cu_resident[static_cast<size_t>(c)] >=
                device_.max_workgroups_per_cu) {
              continue;
            }
            if (cu_kernel_resident[static_cast<size_t>(k)]
                                  [static_cast<size_t>(c)] >= sim.per_cu_cap) {
              continue;
            }
            if (cu_kernel_resident[static_cast<size_t>(k)]
                                  [static_cast<size_t>(c)] == 0 &&
                distinct_kernels_on_cu(c) >= concurrency) {
              continue;
            }
            const double ready = std::max(cu_alu[static_cast<size_t>(c)],
                                          cu_mem[static_cast<size_t>(c)]);
            if (best_cu < 0 || ready < best_ready) {
              best_cu = c;
              best_ready = ready;
            }
          }
          if (best_cu < 0) break;  // no CU slot: occupancy limit, not a stall

          if (in_chan != nullptr && sim.c_in_per_wg > 0.0) {
            in_chan->Acquire(sim.c_in_per_wg);
          }
          if (out_chan != nullptr && sim.c_out_per_wg > 0.0) {
            out_chan->Reserve(sim.c_out_per_wg);
          }
          if (trace != nullptr) {
            const int64_t tile = sim.dispatched / sim.wg_per_tile;
            if (sim.tile_start[static_cast<size_t>(tile)] < 0.0) {
              sim.tile_start[static_cast<size_t>(tile)] = now;
            }
          }
          const size_t cu = static_cast<size_t>(best_cu);
          const double alu_done =
              std::max(now, cu_alu[cu]) + sim.work.alu;
          const double mem_done =
              std::max(now, cu_mem[cu]) + sim.work.mem + sim.work.chan;
          cu_alu[cu] = alu_done;
          cu_mem[cu] = mem_done;
          heap.push(Event{std::max(alu_done, mem_done), k, best_cu});
          ++sim.dispatched;
          ++kernel_resident[k];
          ++cu_resident[cu];
          ++cu_kernel_resident[static_cast<size_t>(k)][cu];
          ++total_resident;
          progress = true;
        }
      }
    }
  };

  // Trace bookkeeping: channel counter names and stall-transition instants.
  std::vector<std::string> chan_names;
  if (trace != nullptr) {
    chan_names.resize(static_cast<size_t>(std::max(0, num_kernels - 1)));
    for (int g = 0; g + 1 < num_kernels; ++g) {
      if (channels[static_cast<size_t>(g)].has_value()) {
        chan_names[static_cast<size_t>(g)] =
            "chan:" + ks[static_cast<size_t>(g)].label + ">" +
            ks[static_cast<size_t>(g + 1)].label;
      }
    }
  }
  auto note_stall_transitions = [&]() {
    if (trace == nullptr) return;
    for (auto& sim : ks) {
      if (sim.stalled && !sim.was_stalled) {
        trace->AddInstant(sim.track,
                          sim.stall_reason == 'o' ? "channel-block (output full)"
                                                  : "channel-starve (input empty)",
                          "stall", now);
        ++sim.stall_events;
      }
      sim.was_stalled = sim.stalled;
    }
  };

  dispatch();
  note_stall_transitions();
  double last_time = 0.0;
  while (!heap.empty()) {
    const Event ev = heap.top();
    heap.pop();
    const double dt = ev.time - last_time;
    if (dt > 0.0) {
      for (auto& sim : ks) {
        if (sim.stalled) sim.stall_cycles += dt;
      }
      result.counters.resident_wg_time += total_resident * dt;
      last_time = ev.time;
    }
    now = ev.time;

    KernelSim& sim = ks[static_cast<size_t>(ev.kernel)];
    if (ev.kernel + 1 < num_kernels &&
        channels[static_cast<size_t>(ev.kernel)].has_value() &&
        sim.c_out_per_wg > 0.0) {
      channels[static_cast<size_t>(ev.kernel)]->CommitReserved(sim.c_out_per_wg);
      if (trace != nullptr) {
        trace->AddCounter(
            chan_names[static_cast<size_t>(ev.kernel)], now,
            channels[static_cast<size_t>(ev.kernel)]->available_bytes());
      }
    }
    ++sim.completed;
    sim.finish_time = now;
    --kernel_resident[ev.kernel];
    --cu_resident[static_cast<size_t>(ev.cu)];
    --cu_kernel_resident[static_cast<size_t>(ev.kernel)][static_cast<size_t>(ev.cu)];
    --total_resident;
    if (trace != nullptr && sim.completed % sim.wg_per_tile == 0) {
      const int64_t tile = sim.completed / sim.wg_per_tile - 1;
      const double start = sim.tile_start[static_cast<size_t>(tile)];
      trace->AddSpan(sim.track, sim.label + " tile " + std::to_string(tile),
                     "tile", start >= 0.0 ? start : now, now,
                     {{"tile", TraceInt(tile)},
                      {"workgroups", TraceInt(sim.wg_per_tile)}});
    }
    dispatch();
    if (trace != nullptr) {
      note_stall_transitions();
      trace->AddCounter("resident_workgroups", now,
                        static_cast<double>(total_resident));
    }
  }

  for (int k = 0; k < num_kernels; ++k) {
    GPL_CHECK(ks[static_cast<size_t>(k)].completed ==
              ks[static_cast<size_t>(k)].wg_total)
        << "pipeline simulation did not drain kernel "
        << spec.kernels[static_cast<size_t>(k)].desc.name << " (completed "
        << ks[static_cast<size_t>(k)].completed << " of "
        << ks[static_cast<size_t>(k)].wg_total << ")";
  }

  // ---- Aggregate counters ----
  HwCounters& c = result.counters;
  const double overhead =
      static_cast<double>(device_.kernel_launch_cycles) * num_kernels +
      static_cast<double>(device_.tile_dispatch_cycles) *
          static_cast<double>(num_tiles);
  c.elapsed_cycles = last_time + overhead;
  c.launch_cycles = overhead;
  for (int k = 0; k < num_kernels; ++k) {
    const KernelSim& sim = ks[static_cast<size_t>(k)];
    const double n = static_cast<double>(sim.wg_total);
    c.compute_cycles += sim.work.alu * n;
    c.mem_cycles += sim.work.mem * n;
    c.channel_cycles += sim.work.chan * n;
    c.stall_cycles += sim.stall_cycles;
    c.cache_accesses += sim.work.cache_accesses * n;
    c.cache_hits += sim.work.cache_hits * n;
    if (spec.kernels[static_cast<size_t>(k)].output == Endpoint::kGlobal) {
      c.bytes_materialized += spec.kernels[static_cast<size_t>(k)].bytes_out;
    } else {
      c.bytes_via_channel += spec.kernels[static_cast<size_t>(k)].bytes_out;
    }

    KernelStats stats;
    stats.name = spec.kernels[static_cast<size_t>(k)].desc.name;
    stats.busy_cycles = (sim.work.alu + sim.work.mem + sim.work.chan) * n;
    stats.compute_cycles = sim.work.alu * n;
    stats.mem_cycles = sim.work.mem * n;
    stats.channel_cycles = sim.work.chan * n;
    stats.stall_cycles = sim.stall_cycles;
    stats.finish_cycles = sim.finish_time;
    stats.valu_busy = sim.work.alu * n / (c.elapsed_cycles * device_.num_cus);
    stats.mem_unit_busy =
        (sim.work.mem + sim.work.chan) * n / (c.elapsed_cycles * device_.num_cus);
    result.kernels.push_back(std::move(stats));

    if (trace != nullptr) {
      const double hit_ratio =
          sim.work.cache_accesses > 0.0
              ? sim.work.cache_hits / sim.work.cache_accesses
              : 0.0;
      trace->AddCounter("cache_hit_ratio:" + sim.label, sim.finish_time,
                        hit_ratio);
      trace->AddKernelPhase(sim.label, sim.work.alu * n, sim.work.mem * n,
                            sim.work.chan * n, sim.stall_cycles);
    }
  }

  if (trace != nullptr) {
    trace->AddOverhead(overhead);
    std::vector<trace::Arg> args = {
        {"tiles", TraceInt(num_tiles)},
        {"tile_bytes", TraceInt(spec.tile_bytes)},
        {"kernels", TraceInt(num_kernels)},
        {"elapsed_cycles", trace::JsonNumber(c.elapsed_cycles)}};
    for (int g = 0; g + 1 < num_kernels; ++g) {
      if (!channels[static_cast<size_t>(g)].has_value()) continue;
      const ChannelState& ch = *channels[static_cast<size_t>(g)];
      args.emplace_back(chan_names[static_cast<size_t>(g)] + " peak_fill",
                        trace::JsonNumber(ch.PeakFillRatio()));
      args.emplace_back(chan_names[static_cast<size_t>(g)] + " committed_bytes",
                        trace::JsonNumber(ch.total_committed_bytes()));
    }
    for (const auto& sim : ks) {
      if (sim.stall_events > 0) {
        args.emplace_back(sim.label + " stall_events",
                          TraceInt(sim.stall_events));
      }
    }
    trace->AddSpan(trace->TrackId("segment"),
                   spec.label.empty() ? "pipeline segment" : spec.label,
                   "segment", 0.0, c.elapsed_cycles, std::move(args));
    trace->AdvanceOrigin(c.elapsed_cycles);
  }
  return result;
}

}  // namespace sim
}  // namespace gpl
