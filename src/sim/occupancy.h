#ifndef GPL_SIM_OCCUPANCY_H_
#define GPL_SIM_OCCUPANCY_H_

#include <vector>

#include "sim/device.h"
#include "sim/kernel_desc.h"

namespace gpl {
namespace sim {

/// Resource request of one kernel participating in a (possibly concurrent)
/// execution: its per-work-item memory demands and the number of work-groups
/// the plan wants resident simultaneously.
struct ResourceRequest {
  int64_t private_bytes_per_item = 0;
  int64_t local_bytes_per_item = 0;
  int requested_workgroups = 0;  ///< wg_Ki (device-wide)
};

/// Result of evaluating Eq. 2 for a set of co-resident kernels.
struct OccupancyResult {
  /// Device-wide active work-group slots granted to each kernel
  /// (a_wg_Ki * a_CU_Ki in the paper's notation).
  std::vector<int> active_slots;
  /// True if the requested allocation fit without scaling.
  bool fit_unscaled = true;
  /// Binding constraint: 0 = work-group slots, 1 = private memory,
  /// 2 = local memory.
  int binding_resource = 0;
};

/// Evaluates the resource constraints of Eq. 2 for kernels that share the
/// device. If the combined request exceeds any per-CU resource (private
/// memory, local memory, work-group slots), every kernel's grant is scaled
/// down proportionally (water-filling), with a minimum of one slot each.
OccupancyResult ComputeOccupancy(const DeviceSpec& device,
                                 const std::vector<ResourceRequest>& requests);

/// Convenience: active slots for a single kernel occupying the device alone,
/// with as many work-groups as it can use.
int SingleKernelSlots(const DeviceSpec& device, const KernelTimingDesc& desc);

}  // namespace sim
}  // namespace gpl

#endif  // GPL_SIM_OCCUPANCY_H_
