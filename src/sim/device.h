#ifndef GPL_SIM_DEVICE_H_
#define GPL_SIM_DEVICE_H_

#include <cstdint>
#include <string>

namespace gpl {
namespace sim {

/// Static description of a simulated GPU, mirroring Table 1 of the paper plus
/// the timing parameters the analytical model needs (platform inputs).
///
/// The two factory presets correspond to the paper's evaluation platforms:
/// an AMD A10 APU (coupled CPU-GPU, global memory = host memory) and an
/// NVIDIA Tesla K40.
struct DeviceSpec {
  std::string name;

  // ---- Table 1 ----
  int num_cus = 8;                    ///< #CU
  int core_mhz = 720;                 ///< core frequency
  int64_t private_mem_per_cu = 0;     ///< bytes of private memory (registers) per CU
  int64_t local_mem_per_cu = 0;       ///< bytes of local memory per CU
  int64_t global_mem_bytes = 0;       ///< global memory capacity
  int64_t cache_bytes = 0;            ///< last-level data cache
  int concurrent_kernels = 2;         ///< concurrency degree C
  bool has_packet_size_param = true;  ///< AMD pipes expose packet size; NVIDIA DDT does not

  // ---- Execution geometry ----
  int wavefront_size = 64;       ///< work-items per wavefront; work-group size is
                                 ///< fixed to one wavefront (Section 3.5)
  int max_workgroups_per_cu = 16;  ///< wg_max in Eq. 2

  // ---- Timing (platform inputs of the cost model) ----
  int cycles_per_instr = 4;      ///< w: cycles to issue+execute one instruction
  int global_mem_latency = 300;  ///< mem_l (cycles)
  int cache_latency = 40;        ///< c_l (cycles)
  double global_bw_bytes_per_cycle = 35.0;  ///< aggregate DRAM bandwidth
  double cache_bw_bytes_per_cycle = 140.0;  ///< aggregate cache bandwidth
  int64_t kernel_launch_cycles = 15000;     ///< host-side launch overhead
  int64_t tile_dispatch_cycles = 1500;      ///< per-tile scheduling cost in GPL
  int latency_hiding_wavefronts = 8;  ///< wavefronts that can overlap one memory access

  // ---- Channel subsystem ----
  int channel_port_limit = 16;        ///< concurrent channel transactions
  double channel_sync_cycles = 24.0;  ///< reserve+commit cost per packet
  int64_t channel_capacity_bytes_per_channel = 64 * 1024;

  /// Converts simulated cycles to milliseconds at the device clock.
  double CyclesToMs(double cycles) const {
    return cycles / (static_cast<double>(core_mhz) * 1e3);
  }

  /// The AMD A10 APU used in Sections 2-5.
  static DeviceSpec AmdA10();
  /// The NVIDIA Tesla K40 used in Appendix A.
  static DeviceSpec NvidiaK40();
};

}  // namespace sim
}  // namespace gpl

#endif  // GPL_SIM_DEVICE_H_
