#include "sim/fault.h"

#include <utility>

namespace gpl {
namespace sim {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransientKernelAbort:
      return "transient-kernel-abort";
    case FaultKind::kChannelAllocFailed:
      return "channel-alloc-failed";
    case FaultKind::kDeviceReset:
      return "device-reset";
    case FaultKind::kMemoryThrottle:
      return "memory-throttle";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

void FaultInjector::Reset() {
  rng_ = Random(config_.seed);
  stats_ = FaultStats{};
}

bool FaultInjector::ScheduledAt(FaultKind kind, int64_t site_index) const {
  for (const ScheduledFault& fault : config_.scheduled) {
    if (fault.kind == kind && fault.site_index == site_index) return true;
  }
  return false;
}

Status FaultInjector::OnKernelLaunch(const std::string& kernel,
                                     double* throttle_penalty) {
  *throttle_penalty = 0.0;
  const int64_t site = stats_.kernel_launches++;
  // Draw every dice in a fixed order so the random stream advances
  // identically whether or not an earlier draw fires — a fault at site N
  // never changes what site N+1 would roll.
  const bool roll_reset = rng_.Bernoulli(config_.device_reset_rate);
  const bool roll_abort = rng_.Bernoulli(config_.kernel_abort_rate);
  const bool roll_throttle = rng_.Bernoulli(config_.throttle_rate);

  if (ScheduledAt(FaultKind::kDeviceReset, site) || roll_reset) {
    ++stats_.device_resets;
    return Status::TransientDeviceError(
        "injected device reset at kernel launch #" + std::to_string(site) +
        " (" + kernel + ")");
  }
  if (ScheduledAt(FaultKind::kTransientKernelAbort, site) || roll_abort) {
    ++stats_.kernel_aborts;
    return Status::TransientDeviceError(
        "injected transient kernel abort at launch #" + std::to_string(site) +
        " (" + kernel + ")");
  }
  if (ScheduledAt(FaultKind::kMemoryThrottle, site) || roll_throttle) {
    ++stats_.throttles;
    *throttle_penalty = config_.throttle_penalty;
  }
  return Status::OK();
}

Status FaultInjector::OnChannelAlloc(const ChannelConfig& config) {
  const int64_t site = stats_.channel_reservations++;
  const bool roll = rng_.Bernoulli(config_.channel_alloc_fail_rate);
  if (ScheduledAt(FaultKind::kChannelAllocFailed, site) || roll) {
    ++stats_.channel_alloc_failures;
    return Status::ChannelAllocFailed(
        "injected channel allocation failure at reservation #" +
        std::to_string(site) + " (" + std::to_string(config.num_channels) +
        " channels x " + std::to_string(config.packet_bytes) + "B packets)");
  }
  return Status::OK();
}

uint64_t FaultInjector::AttemptSeed(uint64_t base, uint64_t sequence,
                                    int attempt) {
  // splitmix64 finalizer over the mixed inputs: cheap, well-distributed, and
  // stable across platforms.
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * (sequence + 1) +
               0xbf58476d1ce4e5b9ULL * static_cast<uint64_t>(attempt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace sim
}  // namespace gpl
