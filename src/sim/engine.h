#ifndef GPL_SIM_ENGINE_H_
#define GPL_SIM_ENGINE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/registry.h"
#include "sim/cache_model.h"
#include "sim/channel.h"
#include "sim/counters.h"
#include "sim/device.h"
#include "sim/fault.h"
#include "sim/kernel_desc.h"

namespace gpl {
namespace trace {
class TraceCollector;
}  // namespace trace

namespace sim {

/// Where a kernel reads its input from / writes its output to.
enum class Endpoint {
  kGlobal,   ///< global memory (materialized)
  kChannel,  ///< data channel to the neighbouring kernel
};

/// One kernel instance in a simulated execution. Cardinalities (rows/bytes)
/// come from the functional execution layer; the simulator only accounts
/// time for them.
struct KernelLaunch {
  KernelTimingDesc desc;

  int64_t rows_in = 0;
  int64_t bytes_in = 0;
  int64_t rows_out = 0;
  int64_t bytes_out = 0;

  /// Work-groups launched per tile (wg_Ki). 0 selects a default of one
  /// work-group per CU per tile.
  int workgroups_per_tile = 0;

  Endpoint input = Endpoint::kGlobal;
  Endpoint output = Endpoint::kGlobal;

  /// Fraction of global-memory input that is cache-resident at kernel start
  /// (1.0 for a small intermediate that was just produced).
  double input_resident_fraction = 0.0;
};

/// A pipelined segment: a chain K0 -> K1 -> ... of kernels connected by data
/// channels wherever Ki.output == kChannel.
struct PipelineSpec {
  std::vector<KernelLaunch> kernels;
  /// Channel configuration for the gap between Ki and Ki+1; must have
  /// size kernels.size()-1 (entries for global gaps are ignored).
  std::vector<ChannelConfig> channel_configs;
  /// Tile size Δ in bytes (of K0 input).
  int64_t tile_bytes = 4 << 20;
  /// Bytes of other cache-hot structures (hash tables being probed, etc.).
  int64_t extra_resident_bytes = 0;

  /// Optional trace sink. When non-null the simulator emits per-kernel
  /// per-tile spans, channel occupancy/stall events, and counter samples
  /// into it; nullptr (the default) is the zero-cost disabled path.
  trace::TraceCollector* trace = nullptr;
  /// Optional fault injector, consulted at every kernel-launch and
  /// channel-reservation site; nullptr (the default) never fails. Like the
  /// trace collector it is mutable per-execution state: never share one
  /// across concurrent runs.
  FaultInjector* fault = nullptr;
  /// Display label for the whole-segment span (e.g. the kernel chain).
  std::string label;
};

/// Per-kernel outcome of a simulated execution.
struct KernelStats {
  std::string name;
  double busy_cycles = 0.0;   ///< ALU + MEM + channel work
  double stall_cycles = 0.0;  ///< starved/blocked time (delay)
  double finish_cycles = 0.0;
  double valu_busy = 0.0;
  double mem_unit_busy = 0.0;

  // Busy-cycle components (busy_cycles = compute + mem + channel).
  double compute_cycles = 0.0;
  double mem_cycles = 0.0;
  double channel_cycles = 0.0;
};

/// Result of a simulated execution.
struct SimResult {
  HwCounters counters;
  std::vector<KernelStats> kernels;

  double elapsed_cycles() const { return counters.elapsed_cycles; }
};

/// The GPU timing simulator. All Run* methods are const: the simulator holds
/// only the device description and derived models, so a Simulator is safe to
/// share across threads — provided concurrent runs do not share a
/// TraceCollector (the collector is the only mutable state a run touches).
class Simulator {
 public:
  /// With a non-null `metrics`, the simulator registers per-device counters
  /// (kernel launches, tile dispatches, channel reservations, throttle
  /// events) labeled {device=<name>} and bumps them from the Run* methods.
  /// Handles are fetched once here, so the instrumented paths never lock;
  /// with nullptr every update is a single null-check (see obs::Inc).
  explicit Simulator(const DeviceSpec& device,
                     obs::MetricsRegistry* metrics = nullptr);

  const DeviceSpec& device() const { return device_; }
  const CacheModel& cache() const { return cache_; }

  /// Kernel-based execution of a single kernel: the whole input is consumed
  /// in one launch, with input read from and output written to global
  /// memory. `resident_bytes` are competing cache-hot structures. When
  /// `trace` is non-null, the launch is recorded as a span at the
  /// collector's current origin and the origin advances past it. When
  /// `fault` is non-null it is consulted before the launch; an injected
  /// abort/reset returns kTransientDeviceError with nothing recorded.
  Result<SimResult> RunKernelBatch(const KernelLaunch& launch,
                                   int64_t resident_bytes,
                                   trace::TraceCollector* trace = nullptr,
                                   FaultInjector* fault = nullptr) const;

  /// GPL pipelined execution of a segment: kernels run concurrently,
  /// exchanging tiles through channels (discrete-event simulation at
  /// work-group granularity). With `spec.fault` set, channel allocation can
  /// fail with kChannelAllocFailed (before any simulated work) and kernel
  /// launches with kTransientDeviceError; a failed run leaves no state
  /// behind (all simulation state is local to the call).
  Result<SimResult> RunPipeline(const PipelineSpec& spec) const;

  /// GPL (w/o CE) ablation: same tiling, but kernels execute one at a time
  /// per tile, with per-tile kernel launches and materialized intermediates.
  /// Needs no channels, so it doubles as the degraded-execution path when
  /// RunPipeline's channel allocation fails.
  Result<SimResult> RunSequentialTiles(const PipelineSpec& spec) const;

  /// Accounting of one fused-segment execution, fed to the obs registry.
  struct FusedAccounting {
    int fused_kernels = 0;      ///< composed kernels (chains of >1 stage)
    int launches_saved = 0;     ///< per-stage launches fusion eliminated
    int64_t bytes_avoided = 0;  ///< interior hand-off bytes kept in registers
  };

  /// Fused execution of a segment whose fusible chains were composed into
  /// single kernels (spec.kernels holds one launch per chain). The composed
  /// kernels run one after another over materialized group boundaries —
  /// RunSequentialTiles' timing — but with fewer, denser kernels: the saved
  /// launches and eliminated hand-off traffic are already absent from the
  /// spec. `accounting` only feeds the fused metrics counters.
  Result<SimResult> RunFusedSegment(const PipelineSpec& spec,
                                    const FusedAccounting& accounting) const;

 private:
  struct WgWork {
    double alu = 0.0;
    double mem = 0.0;
    double chan = 0.0;
    double cache_hits = 0.0;
    double cache_accesses = 0.0;
  };

  /// Cost of one work-group of `desc` processing `rows` rows with the given
  /// I/O volumes. `hide_wavefronts` is the latency-hiding depth (resident
  /// wavefronts per CU).
  WgWork ComputeWgWork(const KernelTimingDesc& desc, double rows,
                       double global_in_bytes, double global_out_bytes,
                       double chan_in_bytes, double chan_out_bytes,
                       const ChannelState* in_chan, const ChannelState* out_chan,
                       double chan_residency, double input_resident,
                       int hide_wavefronts, int64_t competing_bytes) const;

  DeviceSpec device_;
  CacheModel cache_;

  // Metrics handles (null when constructed without a registry). The counters
  // are atomic, so bumping them from const Run* methods keeps the Simulator
  // shareable across threads; same (name, device) handles across worker
  // Simulators alias the same registry series and aggregate naturally.
  obs::Counter* kernel_launches_ = nullptr;
  obs::Counter* tile_dispatches_ = nullptr;
  obs::Counter* channel_reservations_ = nullptr;
  obs::Counter* throttle_events_ = nullptr;
  obs::Counter* fused_kernels_ = nullptr;
  obs::Counter* fused_launches_saved_ = nullptr;
  obs::Counter* fused_bytes_avoided_ = nullptr;
};

}  // namespace sim
}  // namespace gpl

#endif  // GPL_SIM_ENGINE_H_
