#include "sim/cache_model.h"

#include <algorithm>

#include "common/logging.h"

namespace gpl {
namespace sim {

CacheModel::CacheModel(int64_t capacity_bytes, int line_bytes)
    : capacity_(capacity_bytes), line_bytes_(line_bytes) {
  GPL_CHECK(capacity_bytes > 0 && line_bytes > 0);
}

double CacheModel::StreamingHitRatio(int access_width_bytes) const {
  const int width = std::clamp(access_width_bytes, 1, line_bytes_);
  // One miss per line, the remaining accesses to the line hit.
  return 1.0 - static_cast<double>(width) / static_cast<double>(line_bytes_);
}

double CacheModel::RandomHitRatio(int64_t working_set_bytes,
                                  int64_t competing_bytes) const {
  if (working_set_bytes <= 0) return 1.0;
  const int64_t available = std::max<int64_t>(capacity_ - competing_bytes, 0);
  const double ratio =
      static_cast<double>(available) / static_cast<double>(working_set_bytes);
  return std::clamp(ratio, 0.0, 1.0);
}

double CacheModel::ChannelResidency(int64_t inflight_bytes,
                                    int64_t competing_bytes) const {
  if (inflight_bytes <= 0) return 1.0;
  const int64_t available = std::max<int64_t>(capacity_ - competing_bytes, 0);
  const double ratio =
      static_cast<double>(available) / static_cast<double>(inflight_bytes);
  return std::clamp(ratio, 0.0, 1.0);
}

}  // namespace sim
}  // namespace gpl
