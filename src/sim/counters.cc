#include "sim/counters.h"

#include <algorithm>

namespace gpl {
namespace sim {

double HwCounters::ValuBusy(const DeviceSpec& device) const {
  if (elapsed_cycles <= 0.0) return 0.0;
  return std::min(1.0, compute_cycles / (elapsed_cycles * device.num_cus));
}

double HwCounters::MemUnitBusy(const DeviceSpec& device) const {
  if (elapsed_cycles <= 0.0) return 0.0;
  return std::min(1.0,
                  (mem_cycles + channel_cycles) / (elapsed_cycles * device.num_cus));
}

double HwCounters::Occupancy(const DeviceSpec& device) const {
  if (elapsed_cycles <= 0.0) return 0.0;
  const double max_resident =
      static_cast<double>(device.max_workgroups_per_cu) * device.num_cus;
  return std::min(1.0, resident_wg_time / (elapsed_cycles * max_resident));
}

double HwCounters::CacheHitRatio() const {
  if (cache_accesses <= 0.0) return 0.0;
  return cache_hits / cache_accesses;
}

void HwCounters::Accumulate(const HwCounters& other) {
  elapsed_cycles += other.elapsed_cycles;
  compute_cycles += other.compute_cycles;
  mem_cycles += other.mem_cycles;
  channel_cycles += other.channel_cycles;
  stall_cycles += other.stall_cycles;
  launch_cycles += other.launch_cycles;
  cache_hits += other.cache_hits;
  cache_accesses += other.cache_accesses;
  resident_wg_time += other.resident_wg_time;
  bytes_materialized += other.bytes_materialized;
  bytes_via_channel += other.bytes_via_channel;
}

}  // namespace sim
}  // namespace gpl
