#ifndef GPL_SIM_LINK_H_
#define GPL_SIM_LINK_H_

#include <cstdint>
#include <string>

namespace gpl {
namespace sim {

/// Parameters of one inter-device interconnect link (PCIe lane, NVLink-style
/// bridge, ...). Like DeviceSpec this is a pure description; Link below adds
/// the cost model and occupancy accounting.
///
/// The default models a PCIe 3.0 x16-class link: ~16 GB/s of payload
/// bandwidth and a few microseconds of per-transfer setup latency.
struct LinkSpec {
  std::string name = "pcie3";
  /// Payload bandwidth in gigabytes (1e9 bytes) per second.
  double gbytes_per_sec = 16.0;
  /// Fixed per-transfer latency (DMA setup, doorbell, completion interrupt).
  double latency_us = 5.0;
};

/// Cost model and occupancy statistics of one inter-device link, the
/// exchange-layer analogue of ChannelState: TransferMs prices a transfer,
/// Transfer additionally records it into the running counters that feed
/// traces and metrics. Transfers are accounted as serialized on the link
/// (one DMA engine), which is how the sharded executor charges broadcast
/// and partial-result shuffle.
class Link {
 public:
  explicit Link(const LinkSpec& spec) : spec_(spec) {}

  const LinkSpec& spec() const { return spec_; }

  /// Milliseconds to move `bytes` across the link: setup latency plus
  /// payload at the link bandwidth. Zero-byte transfers are free (no
  /// transfer is issued for an empty table).
  double TransferMs(int64_t bytes) const {
    if (bytes <= 0) return 0.0;
    return spec_.latency_us / 1e3 +
           static_cast<double>(bytes) / (spec_.gbytes_per_sec * 1e6);
  }

  /// Prices and records one transfer; returns its cost in ms.
  double Transfer(int64_t bytes) {
    const double ms = TransferMs(bytes);
    Record(bytes, ms);
    return ms;
  }

  /// Records an externally priced exchange (e.g. a broadcast whose N-1
  /// copies were costed by the exchange model as one decision).
  void Record(int64_t bytes, double ms) {
    if (bytes <= 0) return;
    total_bytes_ += bytes;
    transfers_ += 1;
    busy_ms_ += ms;
  }

  // ---- Occupancy statistics (for tracing/metrics) ----
  int64_t total_bytes() const { return total_bytes_; }
  int64_t transfer_count() const { return transfers_; }
  double busy_ms() const { return busy_ms_; }

 private:
  LinkSpec spec_;
  int64_t total_bytes_ = 0;
  int64_t transfers_ = 0;
  double busy_ms_ = 0.0;
};

}  // namespace sim
}  // namespace gpl

#endif  // GPL_SIM_LINK_H_
