#include "sim/channel.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace gpl {
namespace sim {

ChannelState::ChannelState(const ChannelConfig& config, const DeviceSpec& device)
    : config_(config), device_(&device) {
  GPL_CHECK(config.num_channels >= 1) << "channel count must be >= 1";
  GPL_CHECK(config.packet_bytes >= 1) << "packet size must be >= 1";
  capacity_bytes_ = static_cast<int64_t>(config.num_channels) *
                    device.channel_capacity_bytes_per_channel;
}

void ChannelState::EnsureCapacity(int64_t bytes) {
  capacity_bytes_ = std::max(capacity_bytes_, bytes);
}

void ChannelState::Reserve(double bytes) {
  GPL_DCHECK(CanReserve(bytes));
  reserved_ += bytes;
  peak_occupancy_ = std::max(peak_occupancy_, reserved_ + available_);
}

void ChannelState::CommitReserved(double bytes) {
  reserved_ = std::max(0.0, reserved_ - bytes);
  available_ += bytes;
  total_committed_ += bytes;
  ++commits_;
  peak_occupancy_ = std::max(peak_occupancy_, reserved_ + available_);
}

void ChannelState::Acquire(double bytes) {
  GPL_DCHECK(CanAcquire(bytes));
  available_ = std::max(0.0, available_ - bytes);
  ++acquires_;
}

double ChannelState::PerPacketSyncCost() const {
  const int n = config_.num_channels;
  const int effective = std::min(n, device_->channel_port_limit);
  // Reservation atomics parallelize across channels up to the port limit;
  // beyond it, managing extra channels adds overhead rather than bandwidth.
  double cost = device_->channel_sync_cycles / static_cast<double>(effective);
  if (n > device_->channel_port_limit) {
    cost *= 1.0 + 0.10 * static_cast<double>(n - device_->channel_port_limit);
  }
  return cost;
}

double ChannelState::CommitCost(double payload_bytes, double residency) const {
  if (payload_bytes <= 0.0) return 0.0;
  const double p = static_cast<double>(config_.packet_bytes);
  const double packets = std::ceil(payload_bytes / p);
  const double padded = packets * p;
  // Thrashed packets are evicted to DRAM and must be read back by the
  // consumer: the traffic doubles and runs at global-memory bandwidth.
  const double bw = device_->cache_bw_bytes_per_cycle * residency +
                    device_->global_bw_bytes_per_cycle / 2.0 * (1.0 - residency);
  return packets * PerPacketSyncCost() + padded / bw;
}

double ChannelState::AcquireCost(double payload_bytes, double residency) const {
  // Reads pay no reservation, only a lighter dequeue sync plus the transfer.
  if (payload_bytes <= 0.0) return 0.0;
  const double p = static_cast<double>(config_.packet_bytes);
  const double packets = std::ceil(payload_bytes / p);
  const double padded = packets * p;
  const double bw = device_->cache_bw_bytes_per_cycle * residency +
                    device_->global_bw_bytes_per_cycle / 2.0 * (1.0 - residency);
  // The consumer reads back whole packets: a thrashed, partially-filled
  // packet costs its padded size on the way in just as CommitCost charged it
  // on the way out (the two sides of the same transfer must agree).
  return 0.5 * packets * PerPacketSyncCost() + padded / bw;
}

}  // namespace sim
}  // namespace gpl
