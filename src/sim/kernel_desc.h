#ifndef GPL_SIM_KERNEL_DESC_H_
#define GPL_SIM_KERNEL_DESC_H_

#include <cstdint>
#include <string>

namespace gpl {
namespace sim {

/// Timing-relevant description of a kernel, corresponding to the "program
/// analysis" inputs of the paper's cost model (Table 2): per-row instruction
/// counts (c_inst, m_inst), per-work-item private/local memory usage, and the
/// memory access pattern.
///
/// In the paper these numbers come from off-line program analysis of the
/// OpenCL source (AMD APP Profiler); here each relational primitive declares
/// them statically (src/exec/primitives.cc).
struct KernelTimingDesc {
  std::string name;

  /// Compute instructions per input row (c_inst normalized per row).
  double compute_inst_per_row = 8.0;
  /// Memory instructions per input row (m_inst normalized per row).
  double mem_inst_per_row = 2.0;

  /// Private memory (registers) per work-item, bytes (pm_Ki).
  int64_t private_bytes_per_item = 64;
  /// Local memory per work-item, bytes (lm_Ki).
  int64_t local_bytes_per_item = 0;

  /// Blocking kernels materialize their full output in global memory and
  /// impose a barrier (segment boundary): prefix sum, hash build, sort.
  bool blocking = false;

  /// Fraction of memory instructions that hit a randomly-accessed side
  /// structure (e.g. a hash table) instead of streaming over the input.
  double random_access_fraction = 0.0;
  /// Size of that side structure in bytes (hash table size for probes).
  int64_t random_working_set_bytes = 0;
};

}  // namespace sim
}  // namespace gpl

#endif  // GPL_SIM_KERNEL_DESC_H_
