#include "sim/occupancy.h"

#include <algorithm>

#include "common/logging.h"

namespace gpl {
namespace sim {

OccupancyResult ComputeOccupancy(const DeviceSpec& device,
                                 const std::vector<ResourceRequest>& requests) {
  OccupancyResult result;
  result.active_slots.resize(requests.size(), 0);
  if (requests.empty()) return result;

  const double wi = static_cast<double>(device.wavefront_size);
  const double total_pm =
      static_cast<double>(device.private_mem_per_cu) * device.num_cus;
  const double total_lm =
      static_cast<double>(device.local_mem_per_cu) * device.num_cus;
  const double total_wg =
      static_cast<double>(device.max_workgroups_per_cu) * device.num_cus;

  // Aggregate demand of the requested allocation (left-hand sides of Eq. 2).
  double pm_demand = 0.0, lm_demand = 0.0, wg_demand = 0.0;
  for (const ResourceRequest& r : requests) {
    const double wg = static_cast<double>(std::max(r.requested_workgroups, 1));
    pm_demand += static_cast<double>(r.private_bytes_per_item) * wi * wg;
    lm_demand += static_cast<double>(r.local_bytes_per_item) * wi * wg;
    wg_demand += wg;
  }

  // Scale factor: 1.0 if everything fits, else the tightest constraint.
  double scale = 1.0;
  result.binding_resource = 0;
  if (wg_demand > total_wg) {
    scale = total_wg / wg_demand;
    result.binding_resource = 0;
  }
  if (pm_demand > 0 && pm_demand > total_pm && total_pm / pm_demand < scale) {
    scale = total_pm / pm_demand;
    result.binding_resource = 1;
  }
  if (lm_demand > 0 && lm_demand > total_lm && total_lm / lm_demand < scale) {
    scale = total_lm / lm_demand;
    result.binding_resource = 2;
  }
  result.fit_unscaled = scale >= 1.0;

  for (size_t i = 0; i < requests.size(); ++i) {
    const int wg = std::max(requests[i].requested_workgroups, 1);
    const int granted =
        std::max(1, static_cast<int>(static_cast<double>(wg) * scale));
    result.active_slots[i] = std::min(granted, wg);
  }
  return result;
}

int SingleKernelSlots(const DeviceSpec& device, const KernelTimingDesc& desc) {
  ResourceRequest req;
  req.private_bytes_per_item = desc.private_bytes_per_item;
  req.local_bytes_per_item = desc.local_bytes_per_item;
  req.requested_workgroups = device.max_workgroups_per_cu * device.num_cus;
  const OccupancyResult occ = ComputeOccupancy(device, {req});
  return occ.active_slots[0];
}

}  // namespace sim
}  // namespace gpl
