#ifndef GPL_SIM_CHANNEL_H_
#define GPL_SIM_CHANNEL_H_

#include <cstdint>

#include "sim/device.h"

namespace gpl {
namespace sim {

/// Configuration of the data channel between two pipelined kernels: the
/// number of physical channels (pipes) and the packet size. These are two of
/// the three calibration knobs of Section 2.1 (the third, data size, is the
/// amount pushed through).
struct ChannelConfig {
  int num_channels = 8;
  int packet_bytes = 64;
};

/// State and cost model of one producer-consumer channel in the simulator,
/// following the OpenCL 2.0 pipe reservation protocol (Figure 9):
///
///   producer work-group: Reserve(bytes) at dispatch -> executes ->
///                        CommitReserved(bytes) at completion;
///   consumer work-group: CanAcquire/Acquire(bytes) at dispatch.
///
/// Reserving at dispatch gives bounded in-flight data and makes pipelined
/// execution deadlock-free: a dispatched producer always runs to completion.
///
/// Cost structure (cycles of memory-pipeline work):
///  - each packet pays a reservation/synchronization cost, amortized across
///    the channels that can commit concurrently (up to the device port
///    limit, with a management penalty beyond it);
///  - payload moves at cache or global-memory bandwidth depending on
///    residency (CacheModel::ChannelResidency);
///  - payloads are padded up to whole packets, so oversized packets waste
///    bandwidth on partially-filled packets.
class ChannelState {
 public:
  ChannelState(const ChannelConfig& config, const DeviceSpec& device);

  const ChannelConfig& config() const { return config_; }
  int64_t capacity_bytes() const { return capacity_bytes_; }
  double available_bytes() const { return available_; }
  double reserved_bytes() const { return reserved_; }
  double free_bytes() const {
    return static_cast<double>(capacity_bytes_) - available_ - reserved_;
  }

  // ---- Occupancy statistics (for tracing/profiling) ----
  double peak_occupancy_bytes() const { return peak_occupancy_; }
  double total_committed_bytes() const { return total_committed_; }
  int64_t commit_count() const { return commits_; }
  int64_t acquire_count() const { return acquires_; }
  /// Peak fill level relative to capacity, in [0, 1].
  double PeakFillRatio() const {
    return capacity_bytes_ > 0
               ? peak_occupancy_ / static_cast<double>(capacity_bytes_)
               : 0.0;
  }

  /// Raises the capacity so at least `bytes` can always be reserved (used to
  /// guarantee one work-group's output fits).
  void EnsureCapacity(int64_t bytes);

  // ---- Space/data accounting (byte counts are doubles to tolerate uneven
  // work-group splits without rounding deadlocks) ----
  bool CanReserve(double bytes) const { return free_bytes() + kEps >= bytes; }
  void Reserve(double bytes);
  void CommitReserved(double bytes);
  bool CanAcquire(double bytes) const { return available_ + kEps >= bytes; }
  void Acquire(double bytes);

  // ---- Timing ----

  /// Cycles of memory-pipeline work for a producer work-group to commit
  /// `payload_bytes`, given the fraction of channel traffic that is
  /// cache-resident.
  double CommitCost(double payload_bytes, double residency) const;

  /// Cycles for a consumer work-group to acquire `payload_bytes`. Transfer
  /// is charged on the packet-padded size, symmetric with CommitCost: the
  /// consumer reads back the same whole packets the producer wrote.
  double AcquireCost(double payload_bytes, double residency) const;

 private:
  static constexpr double kEps = 0.5;

  double PerPacketSyncCost() const;

  ChannelConfig config_;
  const DeviceSpec* device_;
  int64_t capacity_bytes_;
  double available_ = 0.0;
  double reserved_ = 0.0;

  // Occupancy statistics (reserved + available high-water mark, traffic).
  double peak_occupancy_ = 0.0;
  double total_committed_ = 0.0;
  int64_t commits_ = 0;
  int64_t acquires_ = 0;
};

}  // namespace sim
}  // namespace gpl

#endif  // GPL_SIM_CHANNEL_H_
