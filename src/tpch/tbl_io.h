#ifndef GPL_TPCH_TBL_IO_H_
#define GPL_TPCH_TBL_IO_H_

#include <string>

#include "common/status.h"
#include "tpch/dbgen.h"

namespace gpl {
namespace tpch {

/// Export/import of the database in dbgen's `.tbl` format (pipe-delimited,
/// one trailing '|' per line): `<dir>/lineitem.tbl`, `<dir>/orders.tbl`, ...
/// Dates are formatted as YYYY-MM-DD and decimals with two fraction digits,
/// matching the reference dbgen, so the files interoperate with other TPC-H
/// tooling. Columns not modeled by this library (free-text comments,
/// addresses, phones) are simply absent from the files.

/// Writes all eight tables. Creates `dir` if needed.
Status WriteTbl(const Database& db, const std::string& dir);

/// Writes one table as `<dir>/<table.name()>.tbl`.
Status WriteTableTbl(const Table& table, const std::string& dir);

/// Reads all eight tables back. Column names and types come from `schema_of`
/// (a database with the expected schemas, usually a freshly generated one at
/// any scale factor — only the schemas are used).
Result<Database> LoadTbl(const std::string& dir, const Database& schema_of);

/// Reads one `.tbl` file with the given schema template (column names and
/// types are taken from `schema`; its rows are ignored).
Result<Table> LoadTableTbl(const std::string& path, const Table& schema);

}  // namespace tpch
}  // namespace gpl

#endif  // GPL_TPCH_TBL_IO_H_
