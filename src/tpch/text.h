#ifndef GPL_TPCH_TEXT_H_
#define GPL_TPCH_TEXT_H_

#include <array>
#include <string>

#include "common/random.h"

namespace gpl {
namespace tpch {

/// Static text domains from the TPC-H specification (clause 4.2.2.13 and
/// appendix). Only the domains referenced by the evaluated queries are kept;
/// free-text comment fields are omitted (documented in DESIGN.md).

inline constexpr int kNumRegions = 5;
inline constexpr int kNumNations = 25;

/// Region names, indexed by r_regionkey.
const char* RegionName(int regionkey);

/// Nation names, indexed by n_nationkey.
const char* NationName(int nationkey);

/// r_regionkey of the nation, per the TPC-H nation table.
int NationRegion(int nationkey);

/// p_type is "<syllable1> <syllable2> <syllable3>" with 6 x 5 x 5 = 150
/// combinations. `index` in [0, 149].
std::string PartType(int index);
inline constexpr int kNumPartTypes = 150;

/// p_brand is "Brand#MN" with M,N in [1,5]. `index` in [0, 24].
std::string PartBrand(int index);

/// p_mfgr is "Manufacturer#M" with M in [1,5].
std::string PartMfgr(int index);

/// p_container is "<size> <type>" with 5 x 8 = 40 combinations.
std::string PartContainer(int index);
inline constexpr int kNumPartContainers = 40;

/// c_mktsegment domain (5 values).
const char* MarketSegment(int index);
inline constexpr int kNumMarketSegments = 5;

/// l_shipmode domain (7 values).
const char* ShipMode(int index);
inline constexpr int kNumShipModes = 7;

/// l_shipinstruct domain (4 values).
const char* ShipInstruct(int index);
inline constexpr int kNumShipInstructs = 4;

/// o_orderpriority domain (5 values).
const char* OrderPriority(int index);
inline constexpr int kNumOrderPriorities = 5;

}  // namespace tpch
}  // namespace gpl

#endif  // GPL_TPCH_TEXT_H_
