#ifndef GPL_TPCH_DBGEN_H_
#define GPL_TPCH_DBGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace gpl {
namespace tpch {

/// Generation parameters. scale_factor follows dbgen semantics (SF 1 ==
/// ~6M lineitem rows); fractional scale factors are supported for fast tests
/// and benches. Generation is fully deterministic for a given (scale_factor,
/// seed) pair.
struct DbgenConfig {
  double scale_factor = 0.01;
  uint64_t seed = 20160626;  // SIGMOD'16 opening day.
};

/// The eight TPC-H base relations in columnar form.
///
/// Thread-safety: query execution only reads the database (string
/// dictionaries are populated during Generate/LoadTbl, never during
/// execution), so one Database may back any number of concurrent engines —
/// the contract service::QueryService relies on. Do not mutate tables or
/// append dictionary entries while queries are in flight.
struct Database {
  Table region;
  Table nation;
  Table supplier;
  Table customer;
  Table part;
  Table partsupp;
  Table orders;
  Table lineitem;

  /// Lookup by lower-case TPC-H table name; returns nullptr if unknown.
  const Table* ByName(const std::string& name) const;

  /// Total bytes across all base tables.
  int64_t byte_size() const;
};

/// Expected base-table cardinalities for a scale factor (lineitem is
/// approximate: 1..7 lines per order, expectation 4).
struct Cardinalities {
  int64_t supplier = 0;
  int64_t part = 0;
  int64_t partsupp = 0;
  int64_t customer = 0;
  int64_t orders = 0;
  int64_t lineitem_expected = 0;
};
Cardinalities CardinalitiesFor(double scale_factor);

/// Generates the full database. Referentially complete: every foreign key
/// refers to an existing primary key, and (l_partkey, l_suppkey) pairs always
/// exist in partsupp, as required by Q9.
Database Generate(const DbgenConfig& config);

/// p_retailprice for a 1-based part key, per TPC-H clause 4.2.3.
double RetailPrice(int64_t partkey);

}  // namespace tpch
}  // namespace gpl

#endif  // GPL_TPCH_DBGEN_H_
