#include "tpch/dbgen.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "tpch/date.h"
#include "tpch/text.h"

namespace gpl {
namespace tpch {

namespace {

int64_t Scaled(double sf, int64_t base) {
  const int64_t n = static_cast<int64_t>(std::llround(sf * static_cast<double>(base)));
  return std::max<int64_t>(n, 1);
}

/// ps_suppkey formula from TPC-H clause 4.2.3: spreads the 4 suppliers of a
/// part across the supplier domain. At full scale the stride never collides;
/// at the fractional scale factors this library supports it can, so
/// collisions deterministically probe to the next free supplier (as long as
/// at least 4 suppliers exist).
int32_t PartSuppSupplier(int64_t partkey, int64_t i, int64_t num_suppliers) {
  const int64_t s = num_suppliers;
  int32_t chosen[4] = {0, 0, 0, 0};
  for (int64_t k = 0; k <= i; ++k) {
    int64_t candidate = (partkey + k * (s / 4 + (partkey - 1) / s)) % s;
    if (s >= 4) {
      bool collides = true;
      while (collides) {
        collides = false;
        for (int64_t j = 0; j < k; ++j) {
          if (chosen[j] == static_cast<int32_t>(candidate + 1)) {
            candidate = (candidate + 1) % s;
            collides = true;
            break;
          }
        }
      }
    }
    chosen[k] = static_cast<int32_t>(candidate + 1);
  }
  return chosen[i];
}

Column I32() { return Column(DataType::kInt32); }
Column F64() { return Column(DataType::kFloat64); }
Column Date() { return Column(DataType::kDate); }
Column Str(std::shared_ptr<Dictionary> dict = nullptr) {
  return Column(DataType::kString, std::move(dict));
}

}  // namespace

const Table* Database::ByName(const std::string& name) const {
  if (name == "region") return &region;
  if (name == "nation") return &nation;
  if (name == "supplier") return &supplier;
  if (name == "customer") return &customer;
  if (name == "part") return &part;
  if (name == "partsupp") return &partsupp;
  if (name == "orders") return &orders;
  if (name == "lineitem") return &lineitem;
  return nullptr;
}

int64_t Database::byte_size() const {
  return region.byte_size() + nation.byte_size() + supplier.byte_size() +
         customer.byte_size() + part.byte_size() + partsupp.byte_size() +
         orders.byte_size() + lineitem.byte_size();
}

Cardinalities CardinalitiesFor(double scale_factor) {
  Cardinalities c;
  c.supplier = Scaled(scale_factor, 10000);
  c.part = Scaled(scale_factor, 200000);
  c.partsupp = c.part * 4;
  c.customer = Scaled(scale_factor, 150000);
  c.orders = Scaled(scale_factor, 1500000);
  c.lineitem_expected = c.orders * 4;
  return c;
}

double RetailPrice(int64_t partkey) {
  return (90000.0 + static_cast<double>((partkey / 10) % 20001) +
          100.0 * static_cast<double>(partkey % 1000)) /
         100.0;
}

Database Generate(const DbgenConfig& config) {
  GPL_CHECK(config.scale_factor > 0.0) << "scale factor must be positive";
  const Cardinalities card = CardinalitiesFor(config.scale_factor);
  Database db;

  // ---- REGION ----
  {
    Table t("region");
    Column key = I32(), name = Str();
    for (int r = 0; r < kNumRegions; ++r) {
      key.AppendInt32(r);
      name.AppendString(RegionName(r));
    }
    GPL_CHECK_OK(t.AddColumn("r_regionkey", std::move(key)));
    GPL_CHECK_OK(t.AddColumn("r_name", std::move(name)));
    db.region = std::move(t);
  }

  // ---- NATION ----
  {
    Table t("nation");
    Column key = I32(), name = Str(), region = I32();
    for (int n = 0; n < kNumNations; ++n) {
      key.AppendInt32(n);
      name.AppendString(NationName(n));
      region.AppendInt32(NationRegion(n));
    }
    GPL_CHECK_OK(t.AddColumn("n_nationkey", std::move(key)));
    GPL_CHECK_OK(t.AddColumn("n_name", std::move(name)));
    GPL_CHECK_OK(t.AddColumn("n_regionkey", std::move(region)));
    db.nation = std::move(t);
  }

  // ---- SUPPLIER ----
  {
    Random rng(config.seed ^ 0x5005);
    Table t("supplier");
    Column key = I32(), nation = I32(), acctbal = F64();
    key.Reserve(card.supplier);
    for (int64_t s = 1; s <= card.supplier; ++s) {
      key.AppendInt32(static_cast<int32_t>(s));
      nation.AppendInt32(static_cast<int32_t>(rng.Uniform(0, kNumNations - 1)));
      acctbal.AppendDouble(static_cast<double>(rng.Uniform(-99999, 999999)) / 100.0);
    }
    GPL_CHECK_OK(t.AddColumn("s_suppkey", std::move(key)));
    GPL_CHECK_OK(t.AddColumn("s_nationkey", std::move(nation)));
    GPL_CHECK_OK(t.AddColumn("s_acctbal", std::move(acctbal)));
    db.supplier = std::move(t);
  }

  // ---- CUSTOMER ----
  {
    Random rng(config.seed ^ 0xC057);
    Table t("customer");
    Column key = I32(), nation = I32(), segment = Str(), acctbal = F64();
    key.Reserve(card.customer);
    for (int64_t c = 1; c <= card.customer; ++c) {
      key.AppendInt32(static_cast<int32_t>(c));
      nation.AppendInt32(static_cast<int32_t>(rng.Uniform(0, kNumNations - 1)));
      segment.AppendString(
          MarketSegment(static_cast<int>(rng.Uniform(0, kNumMarketSegments - 1))));
      acctbal.AppendDouble(static_cast<double>(rng.Uniform(-99999, 999999)) / 100.0);
    }
    GPL_CHECK_OK(t.AddColumn("c_custkey", std::move(key)));
    GPL_CHECK_OK(t.AddColumn("c_nationkey", std::move(nation)));
    GPL_CHECK_OK(t.AddColumn("c_mktsegment", std::move(segment)));
    GPL_CHECK_OK(t.AddColumn("c_acctbal", std::move(acctbal)));
    db.customer = std::move(t);
  }

  // ---- PART ----
  {
    Random rng(config.seed ^ 0x9A27);
    Table t("part");
    Column key = I32(), mfgr = Str(), brand = Str(), type = Str(), size = I32(),
           container = Str(), retail = F64();
    key.Reserve(card.part);
    for (int64_t p = 1; p <= card.part; ++p) {
      key.AppendInt32(static_cast<int32_t>(p));
      const int m = static_cast<int>(rng.Uniform(0, 4));
      mfgr.AppendString(PartMfgr(m));
      brand.AppendString(PartBrand(m * 5 + static_cast<int>(rng.Uniform(0, 4))));
      type.AppendString(PartType(static_cast<int>(rng.Uniform(0, kNumPartTypes - 1))));
      size.AppendInt32(static_cast<int32_t>(rng.Uniform(1, 50)));
      container.AppendString(
          PartContainer(static_cast<int>(rng.Uniform(0, kNumPartContainers - 1))));
      retail.AppendDouble(RetailPrice(p));
    }
    GPL_CHECK_OK(t.AddColumn("p_partkey", std::move(key)));
    GPL_CHECK_OK(t.AddColumn("p_mfgr", std::move(mfgr)));
    GPL_CHECK_OK(t.AddColumn("p_brand", std::move(brand)));
    GPL_CHECK_OK(t.AddColumn("p_type", std::move(type)));
    GPL_CHECK_OK(t.AddColumn("p_size", std::move(size)));
    GPL_CHECK_OK(t.AddColumn("p_container", std::move(container)));
    GPL_CHECK_OK(t.AddColumn("p_retailprice", std::move(retail)));
    db.part = std::move(t);
  }

  // ---- PARTSUPP ----
  {
    Random rng(config.seed ^ 0x9559);
    Table t("partsupp");
    Column pkey = I32(), skey = I32(), avail = I32(), cost = F64();
    pkey.Reserve(card.partsupp);
    for (int64_t p = 1; p <= card.part; ++p) {
      for (int64_t i = 0; i < 4; ++i) {
        pkey.AppendInt32(static_cast<int32_t>(p));
        skey.AppendInt32(PartSuppSupplier(p, i, card.supplier));
        avail.AppendInt32(static_cast<int32_t>(rng.Uniform(1, 9999)));
        cost.AppendDouble(static_cast<double>(rng.Uniform(100, 100000)) / 100.0);
      }
    }
    GPL_CHECK_OK(t.AddColumn("ps_partkey", std::move(pkey)));
    GPL_CHECK_OK(t.AddColumn("ps_suppkey", std::move(skey)));
    GPL_CHECK_OK(t.AddColumn("ps_availqty", std::move(avail)));
    GPL_CHECK_OK(t.AddColumn("ps_supplycost", std::move(cost)));
    db.partsupp = std::move(t);
  }

  // ---- ORDERS and LINEITEM (generated together) ----
  {
    Random rng(config.seed ^ 0x0D39);
    Table ot("orders");
    Column o_key = I32(), o_cust = I32(), o_total = F64(), o_date = Date(),
           o_prio = Str(), o_ship_prio = I32();
    o_key.Reserve(card.orders);

    Table lt("lineitem");
    Column l_okey = I32(), l_part = I32(), l_supp = I32(), l_line = I32(),
           l_qty = F64(), l_price = F64(), l_disc = F64(), l_tax = F64(),
           l_rflag = Str(), l_status = Str(), l_ship = Date(), l_commit = Date(),
           l_receipt = Date(), l_mode = Str(), l_instruct = Str();
    l_okey.Reserve(card.lineitem_expected);

    const int32_t start_date = date::FromYMD(1992, 1, 1);
    const int32_t end_date = date::FromYMD(1998, 12, 31) - 151;
    const int32_t current_date = date::FromYMD(1995, 6, 17);

    for (int64_t o = 1; o <= card.orders; ++o) {
      // Per the spec only 2/3 of customers have orders: skip custkeys
      // divisible by 3.
      int64_t cust = rng.Uniform(1, card.customer);
      if (card.customer >= 3) {
        while (cust % 3 == 0) cust = rng.Uniform(1, card.customer);
      }
      const int32_t odate =
          static_cast<int32_t>(rng.Uniform(start_date, end_date));

      o_key.AppendInt32(static_cast<int32_t>(o));
      o_cust.AppendInt32(static_cast<int32_t>(cust));
      o_date.AppendInt32(odate);
      o_prio.AppendString(
          OrderPriority(static_cast<int>(rng.Uniform(0, kNumOrderPriorities - 1))));
      o_ship_prio.AppendInt32(0);  // constant per the TPC-H spec

      const int64_t num_lines = rng.Uniform(1, 7);
      double total = 0.0;
      for (int64_t line = 1; line <= num_lines; ++line) {
        const int64_t partkey = rng.Uniform(1, card.part);
        const int64_t supp_i = rng.Uniform(0, 3);
        const double quantity = static_cast<double>(rng.Uniform(1, 50));
        const double extended = quantity * RetailPrice(partkey);
        const double discount = static_cast<double>(rng.Uniform(0, 10)) / 100.0;
        const double tax = static_cast<double>(rng.Uniform(0, 8)) / 100.0;
        const int32_t shipdate = odate + static_cast<int32_t>(rng.Uniform(1, 121));
        const int32_t commitdate = odate + static_cast<int32_t>(rng.Uniform(30, 90));
        const int32_t receiptdate =
            shipdate + static_cast<int32_t>(rng.Uniform(1, 30));

        l_okey.AppendInt32(static_cast<int32_t>(o));
        l_part.AppendInt32(static_cast<int32_t>(partkey));
        l_supp.AppendInt32(PartSuppSupplier(partkey, supp_i, card.supplier));
        l_line.AppendInt32(static_cast<int32_t>(line));
        l_qty.AppendDouble(quantity);
        l_price.AppendDouble(extended);
        l_disc.AppendDouble(discount);
        l_tax.AppendDouble(tax);
        if (receiptdate <= current_date) {
          l_rflag.AppendString(rng.Bernoulli(0.5) ? "R" : "A");
        } else {
          l_rflag.AppendString("N");
        }
        l_status.AppendString(shipdate > current_date ? "O" : "F");
        l_ship.AppendInt32(shipdate);
        l_commit.AppendInt32(commitdate);
        l_receipt.AppendInt32(receiptdate);
        l_mode.AppendString(
            ShipMode(static_cast<int>(rng.Uniform(0, kNumShipModes - 1))));
        l_instruct.AppendString(ShipInstruct(
            static_cast<int>(rng.Uniform(0, kNumShipInstructs - 1))));
        total += extended * (1.0 + tax) * (1.0 - discount);
      }
      o_total.AppendDouble(total);
    }

    GPL_CHECK_OK(ot.AddColumn("o_orderkey", std::move(o_key)));
    GPL_CHECK_OK(ot.AddColumn("o_custkey", std::move(o_cust)));
    GPL_CHECK_OK(ot.AddColumn("o_totalprice", std::move(o_total)));
    GPL_CHECK_OK(ot.AddColumn("o_orderdate", std::move(o_date)));
    GPL_CHECK_OK(ot.AddColumn("o_orderpriority", std::move(o_prio)));
    GPL_CHECK_OK(ot.AddColumn("o_shippriority", std::move(o_ship_prio)));
    db.orders = std::move(ot);

    GPL_CHECK_OK(lt.AddColumn("l_orderkey", std::move(l_okey)));
    GPL_CHECK_OK(lt.AddColumn("l_partkey", std::move(l_part)));
    GPL_CHECK_OK(lt.AddColumn("l_suppkey", std::move(l_supp)));
    GPL_CHECK_OK(lt.AddColumn("l_linenumber", std::move(l_line)));
    GPL_CHECK_OK(lt.AddColumn("l_quantity", std::move(l_qty)));
    GPL_CHECK_OK(lt.AddColumn("l_extendedprice", std::move(l_price)));
    GPL_CHECK_OK(lt.AddColumn("l_discount", std::move(l_disc)));
    GPL_CHECK_OK(lt.AddColumn("l_tax", std::move(l_tax)));
    GPL_CHECK_OK(lt.AddColumn("l_returnflag", std::move(l_rflag)));
    GPL_CHECK_OK(lt.AddColumn("l_linestatus", std::move(l_status)));
    GPL_CHECK_OK(lt.AddColumn("l_shipdate", std::move(l_ship)));
    GPL_CHECK_OK(lt.AddColumn("l_commitdate", std::move(l_commit)));
    GPL_CHECK_OK(lt.AddColumn("l_receiptdate", std::move(l_receipt)));
    GPL_CHECK_OK(lt.AddColumn("l_shipmode", std::move(l_mode)));
    GPL_CHECK_OK(lt.AddColumn("l_shipinstruct", std::move(l_instruct)));
    db.lineitem = std::move(lt);
  }

  return db;
}

}  // namespace tpch
}  // namespace gpl
