#include "tpch/text.h"

#include "common/logging.h"

namespace gpl {
namespace tpch {

namespace {
const char* const kRegions[kNumRegions] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                           "MIDDLE EAST"};

struct NationRow {
  const char* name;
  int region;
};

// n_nationkey -> (name, regionkey), exactly as in the TPC-H nation table.
const NationRow kNations[kNumNations] = {
    {"ALGERIA", 0},        {"ARGENTINA", 1}, {"BRAZIL", 1},  {"CANADA", 1},
    {"EGYPT", 4},          {"ETHIOPIA", 0},  {"FRANCE", 3},  {"GERMANY", 3},
    {"INDIA", 2},          {"INDONESIA", 2}, {"IRAN", 4},    {"IRAQ", 4},
    {"JAPAN", 2},          {"JORDAN", 4},    {"KENYA", 0},   {"MOROCCO", 0},
    {"MOZAMBIQUE", 0},     {"PERU", 1},      {"CHINA", 2},   {"ROMANIA", 3},
    {"SAUDI ARABIA", 4},   {"VIETNAM", 2},   {"RUSSIA", 3},  {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* const kTypeSyl1[6] = {"STANDARD", "SMALL", "MEDIUM",
                                  "LARGE",    "ECONOMY", "PROMO"};
const char* const kTypeSyl2[5] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                                  "BRUSHED"};
const char* const kTypeSyl3[5] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};

const char* const kContainerSize[5] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* const kContainerType[8] = {"CASE", "BOX", "BAG", "JAR",
                                       "PKG",  "PACK", "CAN", "DRUM"};

const char* const kSegments[kNumMarketSegments] = {"AUTOMOBILE", "BUILDING",
                                                   "FURNITURE", "MACHINERY",
                                                   "HOUSEHOLD"};

const char* const kShipModes[kNumShipModes] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                               "TRUCK",   "MAIL", "FOB"};

const char* const kShipInstructs[kNumShipInstructs] = {
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"};

const char* const kPriorities[kNumOrderPriorities] = {
    "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"};
}  // namespace

const char* RegionName(int regionkey) {
  GPL_CHECK(regionkey >= 0 && regionkey < kNumRegions);
  return kRegions[regionkey];
}

const char* NationName(int nationkey) {
  GPL_CHECK(nationkey >= 0 && nationkey < kNumNations);
  return kNations[nationkey].name;
}

int NationRegion(int nationkey) {
  GPL_CHECK(nationkey >= 0 && nationkey < kNumNations);
  return kNations[nationkey].region;
}

std::string PartType(int index) {
  GPL_CHECK(index >= 0 && index < kNumPartTypes);
  const int s1 = index / 25;
  const int s2 = (index / 5) % 5;
  const int s3 = index % 5;
  std::string out = kTypeSyl1[s1];
  out += ' ';
  out += kTypeSyl2[s2];
  out += ' ';
  out += kTypeSyl3[s3];
  return out;
}

std::string PartBrand(int index) {
  GPL_CHECK(index >= 0 && index < 25);
  std::string out = "Brand#";
  out += static_cast<char>('1' + index / 5);
  out += static_cast<char>('1' + index % 5);
  return out;
}

std::string PartMfgr(int index) {
  GPL_CHECK(index >= 0 && index < 5);
  std::string out = "Manufacturer#";
  out += static_cast<char>('1' + index);
  return out;
}

std::string PartContainer(int index) {
  GPL_CHECK(index >= 0 && index < kNumPartContainers);
  std::string out = kContainerSize[index / 8];
  out += ' ';
  out += kContainerType[index % 8];
  return out;
}

const char* MarketSegment(int index) {
  GPL_CHECK(index >= 0 && index < kNumMarketSegments);
  return kSegments[index];
}

const char* ShipMode(int index) {
  GPL_CHECK(index >= 0 && index < kNumShipModes);
  return kShipModes[index];
}

const char* ShipInstruct(int index) {
  GPL_CHECK(index >= 0 && index < kNumShipInstructs);
  return kShipInstructs[index];
}

const char* OrderPriority(int index) {
  GPL_CHECK(index >= 0 && index < kNumOrderPriorities);
  return kPriorities[index];
}

}  // namespace tpch
}  // namespace gpl
