#include "tpch/tbl_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "tpch/date.h"

namespace gpl {
namespace tpch {

namespace {

void AppendField(const Column& col, int64_t row, std::string* out) {
  char buf[32];
  switch (col.type()) {
    case DataType::kInt32:
      std::snprintf(buf, sizeof(buf), "%d", col.Int32At(row));
      *out += buf;
      break;
    case DataType::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(col.Int64At(row)));
      *out += buf;
      break;
    case DataType::kFloat64: {
      // Six fraction digits, trailing zeros trimmed: exact-hundredth dbgen
      // decimals render as "123.45" while computed values (o_totalprice)
      // keep enough precision to round-trip.
      std::snprintf(buf, sizeof(buf), "%.6f", col.DoubleAt(row));
      std::string text = buf;
      while (text.size() > 1 && text.back() == '0') text.pop_back();
      if (!text.empty() && text.back() == '.') text.push_back('0');
      *out += text;
      break;
    }
    case DataType::kDate:
      *out += date::Format(col.Int32At(row));
      break;
    case DataType::kString:
      *out += col.StringAt(row);
      break;
  }
}

Status ParseField(const std::string& field, Column* col) {
  switch (col->type()) {
    case DataType::kInt32:
      col->AppendInt32(static_cast<int32_t>(std::strtol(field.c_str(), nullptr, 10)));
      return Status::OK();
    case DataType::kInt64:
      col->AppendInt64(std::strtoll(field.c_str(), nullptr, 10));
      return Status::OK();
    case DataType::kFloat64:
      col->AppendDouble(std::strtod(field.c_str(), nullptr));
      return Status::OK();
    case DataType::kDate: {
      GPL_ASSIGN_OR_RETURN(int32_t days, date::Parse(field));
      col->AppendInt32(days);
      return Status::OK();
    }
    case DataType::kString:
      col->AppendString(field);
      return Status::OK();
  }
  return Status::Internal("unknown column type");
}

}  // namespace

Status WriteTableTbl(const Table& table, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create directory " + dir + ": " +
                            ec.message());
  }
  const std::string path = dir + "/" + table.name() + ".tbl";
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  std::string line;
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    line.clear();
    for (int64_t c = 0; c < table.num_columns(); ++c) {
      AppendField(table.ColumnAt(c), r, &line);
      line += '|';
    }
    line += '\n';
    out << line;
  }
  if (!out.good()) return Status::Internal("write failed for " + path);
  return Status::OK();
}

Status WriteTbl(const Database& db, const std::string& dir) {
  for (const Table* t : {&db.region, &db.nation, &db.supplier, &db.customer,
                         &db.part, &db.partsupp, &db.orders, &db.lineitem}) {
    GPL_RETURN_NOT_OK(WriteTableTbl(*t, dir));
  }
  return Status::OK();
}

Result<Table> LoadTableTbl(const std::string& path, const Table& schema) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open " + path);
  }
  Table out(schema.name());
  std::vector<Column*> columns;
  for (int64_t c = 0; c < schema.num_columns(); ++c) {
    const Column& proto = schema.ColumnAt(c);
    // String columns get fresh dictionaries (codes are file-order local).
    GPL_RETURN_NOT_OK(out.AddColumn(schema.ColumnNameAt(c),
                                    Column(proto.type())));
  }
  for (int64_t c = 0; c < out.num_columns(); ++c) {
    columns.push_back(&out.MutableColumnAt(c));
  }

  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    size_t start = 0;
    for (size_t c = 0; c < columns.size(); ++c) {
      const size_t bar = line.find('|', start);
      if (bar == std::string::npos) {
        std::ostringstream msg;
        msg << path << ":" << line_number << ": expected "
            << columns.size() << " fields, found " << c;
        return Status::InvalidArgument(msg.str());
      }
      GPL_RETURN_NOT_OK(ParseField(line.substr(start, bar - start), columns[c]));
      start = bar + 1;
    }
  }
  GPL_RETURN_NOT_OK(out.Validate());
  return out;
}

Result<Database> LoadTbl(const std::string& dir, const Database& schema_of) {
  Database db;
  struct Entry {
    const Table* schema;
    Table* target;
  };
  const Entry entries[] = {
      {&schema_of.region, &db.region},     {&schema_of.nation, &db.nation},
      {&schema_of.supplier, &db.supplier}, {&schema_of.customer, &db.customer},
      {&schema_of.part, &db.part},         {&schema_of.partsupp, &db.partsupp},
      {&schema_of.orders, &db.orders},     {&schema_of.lineitem, &db.lineitem},
  };
  for (const Entry& e : entries) {
    GPL_ASSIGN_OR_RETURN(*e.target,
                         LoadTableTbl(dir + "/" + e.schema->name() + ".tbl",
                                      *e.schema));
  }
  return db;
}

}  // namespace tpch
}  // namespace gpl
