#ifndef GPL_TPCH_DATE_H_
#define GPL_TPCH_DATE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace gpl {

/// Date arithmetic for TPC-H. Dates are stored as int32 day numbers (days
/// since 1970-01-01, negative before).
namespace date {

/// Day number for a civil date (proleptic Gregorian calendar).
int32_t FromYMD(int year, int month, int day);

/// Inverse of FromYMD.
void ToYMD(int32_t days, int* year, int* month, int* day);

/// Parses "YYYY-MM-DD".
Result<int32_t> Parse(const std::string& text);

/// Formats as "YYYY-MM-DD".
std::string Format(int32_t days);

/// Extracts the year, as used by EXTRACT(YEAR FROM d) in Q7/Q8/Q9.
int Year(int32_t days);

/// Adds `months` calendar months, clamping the day to the target month's
/// length (the semantics of TPC-H's `date + interval N month`).
int32_t AddMonths(int32_t days, int months);

/// TPC-H date domain: [1992-01-01, 1998-12-31].
int32_t MinDate();
int32_t MaxDate();

}  // namespace date

}  // namespace gpl

#endif  // GPL_TPCH_DATE_H_
