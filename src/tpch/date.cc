#include "tpch/date.h"

#include <cstdio>

namespace gpl {
namespace date {

namespace {
// Howard Hinnant's days_from_civil / civil_from_days algorithms.
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;   // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int64_t* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);          // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);          // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                               // [0, 11]
  *d = doy - (153 * mp + 2) / 5 + 1;                                     // [1, 31]
  *m = mp + (mp < 10 ? 3 : -9);                                          // [1, 12]
  *y = yy + (*m <= 2);
}

int DaysInMonth(int year, int month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2) {
    const bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    return leap ? 29 : 28;
  }
  return kDays[month - 1];
}
}  // namespace

int32_t FromYMD(int year, int month, int day) {
  return static_cast<int32_t>(
      DaysFromCivil(year, static_cast<unsigned>(month), static_cast<unsigned>(day)));
}

void ToYMD(int32_t days, int* year, int* month, int* day) {
  int64_t y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  *year = static_cast<int>(y);
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

Result<int32_t> Parse(const std::string& text) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3) {
    return Status::InvalidArgument("bad date literal: " + text);
  }
  if (m < 1 || m > 12 || d < 1 || d > DaysInMonth(y, m)) {
    return Status::InvalidArgument("date out of range: " + text);
  }
  return FromYMD(y, m, d);
}

std::string Format(int32_t days) {
  int y, m, d;
  ToYMD(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

int Year(int32_t days) {
  int y, m, d;
  ToYMD(days, &y, &m, &d);
  return y;
}

int32_t AddMonths(int32_t days, int months) {
  int y, m, d;
  ToYMD(days, &y, &m, &d);
  const int total = (y * 12 + (m - 1)) + months;
  const int ny = total / 12;
  const int nm = total % 12 + 1;
  const int nd = std::min(d, DaysInMonth(ny, nm));
  return FromYMD(ny, nm, nd);
}

int32_t MinDate() { return FromYMD(1992, 1, 1); }
int32_t MaxDate() { return FromYMD(1998, 12, 31); }

}  // namespace date
}  // namespace gpl
