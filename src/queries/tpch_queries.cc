#include "queries/tpch_queries.h"

#include <cmath>

#include "common/logging.h"
#include "tpch/date.h"

namespace gpl {
namespace queries {

namespace {
ExprPtr Volume() {
  return Mul(Col("l_extendedprice"), Sub(LitInt(1), Col("l_discount")));
}
}  // namespace

LogicalQuery Q5() {
  LogicalQuery q;
  q.name = "Q5";
  q.relations = {
      {"customer", {"c_custkey", "c_nationkey"}, nullptr, ""},
      {"orders",
       {"o_orderkey", "o_custkey"},
       InRange(Col("o_orderdate"), LitDate("1994-01-01"), LitDate("1995-01-01")),
       ""},
      {"lineitem",
       {"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"},
       nullptr,
       ""},
      {"supplier", {"s_suppkey", "s_nationkey"}, nullptr, ""},
      {"nation", {"n_nationkey", "n_name", "n_regionkey"}, nullptr, ""},
      {"region", {"r_regionkey"}, Eq(Col("r_name"), LitString("ASIA")), ""},
  };
  q.joins = {
      {0, 1, {Col("c_custkey")}, {Col("o_custkey")}},
      {1, 2, {Col("o_orderkey")}, {Col("l_orderkey")}},
      {2, 3, {Col("l_suppkey")}, {Col("s_suppkey")}},
      {0, 3, {Col("c_nationkey")}, {Col("s_nationkey")}},
      {3, 4, {Col("s_nationkey")}, {Col("n_nationkey")}},
      {4, 5, {Col("n_regionkey")}, {Col("r_regionkey")}},
  };
  q.group_by = {{"n_name", Col("n_name")}};
  q.aggregates = {{AggSpec::kSum, Volume(), "revenue"}};
  q.order_by = {{"revenue", /*descending=*/true}};
  return q;
}

LogicalQuery Q7() {
  LogicalQuery q;
  q.name = "Q7";
  const ExprPtr nation_pair = Or(Eq(Col("n_name"), LitString("FRANCE")),
                                 Eq(Col("n_name"), LitString("GERMANY")));
  const ExprPtr n1_pair = Or(Eq(Col("n1_n_name"), LitString("FRANCE")),
                             Eq(Col("n1_n_name"), LitString("GERMANY")));
  const ExprPtr n2_pair = Or(Eq(Col("n2_n_name"), LitString("FRANCE")),
                             Eq(Col("n2_n_name"), LitString("GERMANY")));
  (void)nation_pair;
  q.relations = {
      {"supplier", {"s_suppkey", "s_nationkey"}, nullptr, ""},
      {"lineitem",
       {"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount",
        "l_shipdate"},
       And(Ge(Col("l_shipdate"), LitDate("1995-01-01")),
           Le(Col("l_shipdate"), LitDate("1996-12-31"))),
       ""},
      {"orders", {"o_orderkey", "o_custkey"}, nullptr, ""},
      {"customer", {"c_custkey", "c_nationkey"}, nullptr, ""},
      {"nation", {"n_nationkey", "n_name"}, n1_pair, "n1"},
      {"nation", {"n_nationkey", "n_name"}, n2_pair, "n2"},
  };
  q.joins = {
      {0, 1, {Col("s_suppkey")}, {Col("l_suppkey")}},
      {1, 2, {Col("l_orderkey")}, {Col("o_orderkey")}},
      {2, 3, {Col("o_custkey")}, {Col("c_custkey")}},
      {0, 4, {Col("s_nationkey")}, {Col("n1_n_nationkey")}},
      {3, 5, {Col("c_nationkey")}, {Col("n2_n_nationkey")}},
  };
  q.post_join_filter =
      Or(And(Eq(Col("n1_n_name"), LitString("FRANCE")),
             Eq(Col("n2_n_name"), LitString("GERMANY"))),
         And(Eq(Col("n1_n_name"), LitString("GERMANY")),
             Eq(Col("n2_n_name"), LitString("FRANCE"))));
  q.derived = {
      {"supp_nation", Col("n1_n_name")},
      {"cust_nation", Col("n2_n_name")},
      {"l_year", YearOf(Col("l_shipdate"))},
      {"volume", Volume()},
  };
  q.group_by = {{"supp_nation", Col("supp_nation")},
                {"cust_nation", Col("cust_nation")},
                {"l_year", Col("l_year")}};
  q.aggregates = {{AggSpec::kSum, Col("volume"), "revenue"}};
  q.order_by = {{"l_year", /*descending=*/false}};
  return q;
}

LogicalQuery Q8() {
  LogicalQuery q;
  q.name = "Q8";
  q.relations = {
      {"part",
       {"p_partkey"},
       Eq(Col("p_type"), LitString("ECONOMY ANODIZED STEEL")),
       ""},
      {"supplier", {"s_suppkey", "s_nationkey"}, nullptr, ""},
      {"lineitem",
       {"l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice",
        "l_discount"},
       nullptr,
       ""},
      {"orders",
       {"o_orderkey", "o_custkey", "o_orderdate"},
       And(Ge(Col("o_orderdate"), LitDate("1995-01-01")),
           Le(Col("o_orderdate"), LitDate("1996-12-31"))),
       ""},
      {"customer", {"c_custkey", "c_nationkey"}, nullptr, ""},
      {"nation", {"n_nationkey", "n_regionkey"}, nullptr, "n1"},
      {"nation", {"n_nationkey", "n_name"}, nullptr, "n2"},
      {"region", {"r_regionkey"}, Eq(Col("r_name"), LitString("AMERICA")), ""},
  };
  q.joins = {
      {0, 2, {Col("p_partkey")}, {Col("l_partkey")}},
      {1, 2, {Col("s_suppkey")}, {Col("l_suppkey")}},
      {2, 3, {Col("l_orderkey")}, {Col("o_orderkey")}},
      {3, 4, {Col("o_custkey")}, {Col("c_custkey")}},
      {4, 5, {Col("c_nationkey")}, {Col("n1_n_nationkey")}},
      {5, 7, {Col("n1_n_regionkey")}, {Col("r_regionkey")}},
      {1, 6, {Col("s_nationkey")}, {Col("n2_n_nationkey")}},
  };
  q.derived = {
      {"o_year", YearOf(Col("o_orderdate"))},
      {"volume", Volume()},
      {"nation", Col("n2_n_name")},
  };
  q.group_by = {{"o_year", Col("o_year")}};
  q.aggregates = {
      {AggSpec::kSum,
       CaseWhen(Eq(Col("nation"), LitString("BRAZIL")), Col("volume"),
                LitFloat(0.0)),
       "brazil_volume"},
      {AggSpec::kSum, Col("volume"), "total_volume"},
  };
  q.post_aggregate = {
      {"o_year", Col("o_year")},
      {"mkt_share", Div(Col("brazil_volume"), Col("total_volume"))},
  };
  q.order_by = {{"o_year", /*descending=*/false}};
  return q;
}

LogicalQuery Q9() {
  LogicalQuery q;
  q.name = "Q9";
  q.relations = {
      {"part", {"p_partkey"}, Lt(Col("p_partkey"), LitInt(1000)), ""},
      {"supplier", {"s_suppkey", "s_nationkey"}, nullptr, ""},
      {"lineitem",
       {"l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice",
        "l_discount", "l_quantity"},
       nullptr,
       ""},
      {"partsupp", {"ps_partkey", "ps_suppkey", "ps_supplycost"}, nullptr, ""},
      {"orders", {"o_orderkey", "o_orderdate"}, nullptr, ""},
      {"nation", {"n_nationkey", "n_name"}, nullptr, ""},
  };
  q.joins = {
      {1, 2, {Col("s_suppkey")}, {Col("l_suppkey")}},
      {3, 2, {Col("ps_suppkey"), Col("ps_partkey")},
       {Col("l_suppkey"), Col("l_partkey")}},
      {0, 2, {Col("p_partkey")}, {Col("l_partkey")}},
      {4, 2, {Col("o_orderkey")}, {Col("l_orderkey")}},
      {1, 5, {Col("s_nationkey")}, {Col("n_nationkey")}},
  };
  q.derived = {
      {"nation", Col("n_name")},
      {"o_year", YearOf(Col("o_orderdate"))},
      {"amount", Sub(Volume(), Mul(Col("ps_supplycost"), Col("l_quantity")))},
  };
  q.group_by = {{"nation", Col("nation")}, {"o_year", Col("o_year")}};
  q.aggregates = {{AggSpec::kSum, Col("amount"), "sum_profit"}};
  q.order_by = {{"o_year", /*descending=*/true}};
  return q;
}

LogicalQuery Q14(double selectivity) {
  GPL_CHECK(selectivity > 0.0 && selectivity <= 1.0)
      << "Q14 selectivity must be in (0, 1]";
  LogicalQuery q;
  q.name = "Q14";
  // The shipdate domain: order dates span [1992-01-01, 1998-08-02] and
  // shipping adds 1..121 days; dates are near-uniform, so a window covering
  // `selectivity` of the domain selects about that fraction of lineitem.
  const int32_t lo = date::FromYMD(1992, 1, 2);
  const int32_t hi = date::FromYMD(1998, 8, 2) + 121;
  const int32_t window_end =
      lo + static_cast<int32_t>(std::llround(selectivity * (hi - lo)));

  BaseRelation lineitem;
  lineitem.table = "lineitem";
  lineitem.columns = {"l_partkey", "l_extendedprice", "l_discount"};
  lineitem.filter = And(Ge(Col("l_shipdate"), LitDate(date::Format(lo))),
                        Lt(Col("l_shipdate"), LitDate(date::Format(window_end))));
  q.relations = {
      lineitem,
      {"part", {"p_partkey", "p_type"}, nullptr, ""},
  };
  q.joins = {
      {0, 1, {Col("l_partkey")}, {Col("p_partkey")}},
  };
  q.derived = {
      {"volume", Volume()},
      {"promo_volume", CaseWhen(StrStartsWith(Col("p_type"), "PROMO"),
                                Volume(), LitFloat(0.0))},
  };
  q.aggregates = {
      {AggSpec::kSum, Col("promo_volume"), "promo_sum"},
      {AggSpec::kSum, Col("volume"), "total_sum"},
  };
  q.post_aggregate = {
      {"promo_revenue",
       Mul(LitFloat(100.0), Div(Col("promo_sum"), Col("total_sum")))},
  };
  return q;
}

LogicalQuery ExampleQuery() {
  LogicalQuery q;
  q.name = "Listing1";
  // The paper's Listing 1 predicate (the 1988 literal is evidently a typo
  // for 1998; TPC-H dates begin in 1992).
  q.relations = {
      {"lineitem",
       {"l_extendedprice", "l_discount", "l_tax"},
       Le(Col("l_shipdate"), LitDate("1998-11-01")),
       ""},
  };
  q.derived = {
      {"charge", Mul(Mul(Col("l_extendedprice"), Sub(LitInt(1), Col("l_discount"))),
                     Add(LitInt(1), Col("l_tax")))},
  };
  q.aggregates = {{AggSpec::kSum, Col("charge"), "sum_charge"}};
  return q;
}

std::vector<std::pair<std::string, LogicalQuery>> EvaluationSuite() {
  return {
      {"Q5", Q5()}, {"Q7", Q7()}, {"Q8", Q8()}, {"Q9", Q9()}, {"Q14", Q14()},
  };
}

}  // namespace queries
}  // namespace gpl
