#include "queries/tpch_queries.h"

#include "common/logging.h"
#include "tpch/date.h"

namespace gpl {
namespace queries {

namespace {
ExprPtr Volume() {
  return Mul(Col("l_extendedprice"), Sub(LitInt(1), Col("l_discount")));
}

/// column IN ('a', 'b', ...) via a disjunction of dictionary equalities.
ExprPtr StrIn(const std::string& column, std::vector<std::string> values) {
  GPL_CHECK(!values.empty());
  ExprPtr expr = Eq(Col(column), LitString(values[0]));
  for (size_t i = 1; i < values.size(); ++i) {
    expr = Or(std::move(expr), Eq(Col(column), LitString(values[i])));
  }
  return expr;
}
}  // namespace

LogicalQuery Q1() {
  LogicalQuery q;
  q.name = "Q1";
  q.relations = {
      {"lineitem",
       {"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
        "l_discount", "l_tax"},
       // date '1998-12-01' - interval '90' day
       Le(Col("l_shipdate"), LitDate(date::Format(
                                 date::FromYMD(1998, 12, 1) - 90))),
       ""},
  };
  q.derived = {
      {"disc_price", Volume()},
      {"charge", Mul(Volume(), Add(LitInt(1), Col("l_tax")))},
  };
  q.group_by = {{"l_returnflag", Col("l_returnflag")},
                {"l_linestatus", Col("l_linestatus")}};
  q.aggregates = {
      {AggSpec::kSum, Col("l_quantity"), "sum_qty"},
      {AggSpec::kSum, Col("l_extendedprice"), "sum_base_price"},
      {AggSpec::kSum, Col("disc_price"), "sum_disc_price"},
      {AggSpec::kSum, Col("charge"), "sum_charge"},
      {AggSpec::kAvg, Col("l_quantity"), "avg_qty"},
      {AggSpec::kAvg, Col("l_extendedprice"), "avg_price"},
      {AggSpec::kAvg, Col("l_discount"), "avg_disc"},
      {AggSpec::kCount, nullptr, "count_order"},
  };
  q.order_by = {{"l_returnflag", false}, {"l_linestatus", false}};
  return q;
}

LogicalQuery Q3() {
  LogicalQuery q;
  q.name = "Q3";
  q.relations = {
      {"customer",
       {"c_custkey"},
       Eq(Col("c_mktsegment"), LitString("BUILDING")),
       ""},
      {"orders",
       {"o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"},
       Lt(Col("o_orderdate"), LitDate("1995-03-15")),
       ""},
      {"lineitem",
       {"l_orderkey", "l_extendedprice", "l_discount"},
       Gt(Col("l_shipdate"), LitDate("1995-03-15")),
       ""},
  };
  q.joins = {
      {0, 1, {Col("c_custkey")}, {Col("o_custkey")}},
      {1, 2, {Col("o_orderkey")}, {Col("l_orderkey")}},
  };
  q.derived = {{"volume", Volume()}};
  q.group_by = {{"l_orderkey", Col("l_orderkey")},
                {"o_orderdate", Col("o_orderdate")},
                {"o_shippriority", Col("o_shippriority")}};
  q.aggregates = {{AggSpec::kSum, Col("volume"), "revenue"}};
  q.order_by = {{"revenue", true}, {"o_orderdate", false}};
  return q;
}

LogicalQuery Q6() {
  LogicalQuery q;
  q.name = "Q6";
  BaseRelation lineitem;
  lineitem.table = "lineitem";
  lineitem.columns = {"l_extendedprice", "l_discount"};
  // discount between 0.06 - 0.01 and 0.06 + 0.01, with float slack because
  // the generated discounts are exact hundredths.
  lineitem.filter =
      And(And(InRange(Col("l_shipdate"), LitDate("1994-01-01"),
                      LitDate("1995-01-01")),
              And(Ge(Col("l_discount"), LitFloat(0.0499)),
                  Le(Col("l_discount"), LitFloat(0.0701)))),
          Lt(Col("l_quantity"), LitInt(24)));
  q.relations = {lineitem};
  q.derived = {{"rev", Mul(Col("l_extendedprice"), Col("l_discount"))}};
  q.aggregates = {{AggSpec::kSum, Col("rev"), "revenue"}};
  return q;
}

LogicalQuery Q10() {
  LogicalQuery q;
  q.name = "Q10";
  q.relations = {
      {"customer", {"c_custkey", "c_nationkey"}, nullptr, ""},
      {"orders",
       {"o_orderkey", "o_custkey"},
       InRange(Col("o_orderdate"), LitDate("1993-10-01"),
               LitDate("1994-01-01")),
       ""},
      {"lineitem",
       {"l_orderkey", "l_extendedprice", "l_discount"},
       Eq(Col("l_returnflag"), LitString("R")),
       ""},
      {"nation", {"n_nationkey", "n_name"}, nullptr, ""},
  };
  q.joins = {
      {0, 1, {Col("c_custkey")}, {Col("o_custkey")}},
      {1, 2, {Col("o_orderkey")}, {Col("l_orderkey")}},
      {0, 3, {Col("c_nationkey")}, {Col("n_nationkey")}},
  };
  q.derived = {{"volume", Volume()}};
  // The Ocelot-style variant drops the c_acctbal/address/comment output
  // columns (free text) and the TOP 20 limit.
  q.group_by = {{"c_custkey", Col("c_custkey")}, {"n_name", Col("n_name")}};
  q.aggregates = {{AggSpec::kSum, Col("volume"), "revenue"}};
  q.order_by = {{"revenue", true}};
  return q;
}

LogicalQuery Q12() {
  LogicalQuery q;
  q.name = "Q12";
  BaseRelation lineitem;
  lineitem.table = "lineitem";
  lineitem.columns = {"l_orderkey", "l_shipmode"};
  lineitem.filter =
      And(And(StrIn("l_shipmode", {"MAIL", "SHIP"}),
              And(Lt(Col("l_commitdate"), Col("l_receiptdate")),
                  Lt(Col("l_shipdate"), Col("l_commitdate")))),
          InRange(Col("l_receiptdate"), LitDate("1994-01-01"),
                  LitDate("1995-01-01")));
  q.relations = {
      {"orders", {"o_orderkey", "o_orderpriority"}, nullptr, ""},
      lineitem,
  };
  q.joins = {{0, 1, {Col("o_orderkey")}, {Col("l_orderkey")}}};
  const ExprPtr is_high = Or(Eq(Col("o_orderpriority"), LitString("1-URGENT")),
                             Eq(Col("o_orderpriority"), LitString("2-HIGH")));
  q.derived = {
      {"high_line", CaseWhen(is_high, LitInt(1), LitInt(0))},
      {"low_line", CaseWhen(is_high, LitInt(0), LitInt(1))},
  };
  q.group_by = {{"l_shipmode", Col("l_shipmode")}};
  q.aggregates = {
      {AggSpec::kSum, Col("high_line"), "high_line_count"},
      {AggSpec::kSum, Col("low_line"), "low_line_count"},
  };
  q.order_by = {{"l_shipmode", false}};
  return q;
}

LogicalQuery Q19() {
  LogicalQuery q;
  q.name = "Q19";
  BaseRelation lineitem;
  lineitem.table = "lineitem";
  lineitem.columns = {"l_partkey", "l_quantity", "l_extendedprice",
                      "l_discount"};
  // Conditions common to all three branches are pushed below the join.
  lineitem.filter = And(StrIn("l_shipmode", {"AIR", "REG AIR"}),
                        Eq(Col("l_shipinstruct"),
                           LitString("DELIVER IN PERSON")));
  q.relations = {
      lineitem,
      {"part", {"p_partkey", "p_brand", "p_container", "p_size"}, nullptr, ""},
  };
  q.joins = {{0, 1, {Col("l_partkey")}, {Col("p_partkey")}}};

  auto branch = [](const std::string& brand,
                   std::vector<std::string> containers, int qty_lo, int qty_hi,
                   int size_hi) {
    ExprPtr c = Eq(Col("p_brand"), LitString(brand));
    c = And(std::move(c), StrIn("p_container", std::move(containers)));
    c = And(std::move(c), And(Ge(Col("l_quantity"), LitInt(qty_lo)),
                              Le(Col("l_quantity"), LitInt(qty_hi))));
    c = And(std::move(c), And(Ge(Col("p_size"), LitInt(1)),
                              Le(Col("p_size"), LitInt(size_hi))));
    return c;
  };
  q.post_join_filter =
      Or(Or(branch("Brand#12", {"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1,
                   11, 5),
            branch("Brand#23", {"MED BAG", "MED BOX", "MED PKG", "MED PACK"},
                   10, 20, 10)),
         branch("Brand#34", {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20, 30,
                15));
  q.derived = {{"volume", Volume()}};
  q.aggregates = {{AggSpec::kSum, Col("volume"), "revenue"}};
  return q;
}

std::vector<std::pair<std::string, LogicalQuery>> ExtendedSuite() {
  return {
      {"Q1", Q1()},   {"Q3", Q3()},   {"Q6", Q6()},
      {"Q10", Q10()}, {"Q12", Q12()}, {"Q19", Q19()},
  };
}

}  // namespace queries
}  // namespace gpl
