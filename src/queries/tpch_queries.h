#ifndef GPL_QUERIES_TPCH_QUERIES_H_
#define GPL_QUERIES_TPCH_QUERIES_H_

#include <string>
#include <utility>
#include <vector>

#include "plan/logical_plan.h"

namespace gpl {
namespace queries {

/// The TPC-H queries of the paper's evaluation (Section 5.1), in the
/// Ocelot-compatible variants of Appendix B (no non-trivial string
/// operations, no multi-column sort).

/// Q5: revenue per nation in ASIA for 1994 orders (Listing 2).
LogicalQuery Q5();

/// Q7: shipping volume between FRANCE and GERMANY by year (Listing 3).
LogicalQuery Q7();

/// Q8: BRAZIL's market share in AMERICA for a part type (Listing 4).
LogicalQuery Q8();

/// Q9: profit by nation and year for part keys below 1000 (Listing 5).
LogicalQuery Q9();

/// Q14: promotion revenue share over a shipdate window (Listing 6).
/// `selectivity` sets the window length relative to the full shipdate
/// domain, reproducing the 1%-100% sweep of Figures 3/4/18; the paper's
/// default is 16.4%.
LogicalQuery Q14(double selectivity = 0.164);

/// The single-table example of Listing 1 (Figure 7): a selection on
/// l_shipdate feeding a SUM aggregate.
LogicalQuery ExampleQuery();

/// The five evaluation queries, in paper order.
std::vector<std::pair<std::string, LogicalQuery>> EvaluationSuite();

// ---------------------------------------------------------------------------
// Extended workload (beyond the paper's evaluation): six additional TPC-H
// queries in the same Ocelot-compatible style, exercising group-by-heavy
// scans (Q1), date-window joins (Q3/Q10), pure selections (Q6), CASE
// aggregation with column-to-column predicates (Q12), and disjunctive
// multi-attribute filters (Q19).
// ---------------------------------------------------------------------------

/// Q1: pricing summary report over lineitem.
LogicalQuery Q1();
/// Q3: unshipped-orders revenue (BUILDING segment).
LogicalQuery Q3();
/// Q6: forecast revenue change (pure selection + sum).
LogicalQuery Q6();
/// Q10: returned-item reporting by customer and nation.
LogicalQuery Q10();
/// Q12: shipping-mode / order-priority counts.
LogicalQuery Q12();
/// Q19: discounted revenue over three disjunctive brand/container/size
/// branches.
LogicalQuery Q19();

/// The six extended queries.
std::vector<std::pair<std::string, LogicalQuery>> ExtendedSuite();

}  // namespace queries
}  // namespace gpl

#endif  // GPL_QUERIES_TPCH_QUERIES_H_
