#ifndef GPL_SERVICE_QUERY_SERVICE_H_
#define GPL_SERVICE_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "engine/engine.h"
#include "obs/registry.h"
#include "model/calibration.h"
#include "model/tuning_cache.h"
#include "plan/logical_plan.h"
#include "pool/subplan_cache.h"
#include "shard/device_group.h"
#include "shard/partitioner.h"
#include "sim/fault.h"
#include "tpch/dbgen.h"

namespace gpl {
namespace trace {
class TraceCollector;
}  // namespace trace

namespace service {

/// Percentile over an unsorted sample by linear interpolation between the
/// two closest order statistics (p in [0, 100]); 0 for an empty sample.
/// Exposed for direct unit testing of the service's latency reporting.
double Percentile(std::vector<double> values, double p);

/// Retry policy for transient execution errors (kTransientDeviceError).
/// Attempts beyond the first back off exponentially with deterministic,
/// seeded jitter; the query's deadline is honored between attempts, so a
/// retry never outlives the submitter's timeout.
struct RetryPolicy {
  /// Total attempts per query (1 = no retries). Values < 1 behave as 1.
  int max_attempts = 1;
  /// Backoff before retry k (1-based) is
  /// initial_backoff_ms * backoff_multiplier^(k-1), capped at max_backoff_ms.
  double initial_backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 50.0;
  /// Each backoff is scaled by a factor uniform in
  /// [1 - jitter_fraction, 1 + jitter_fraction], drawn from a per-query
  /// deterministic stream (seeded from the fault seed and the query's
  /// admission sequence) so runs reproduce exactly.
  double jitter_fraction = 0.2;
};

/// Configuration of a QueryService.
struct ServiceOptions {
  /// Host worker threads; each owns a private Engine over the shared
  /// database (engines are not thread-safe, the database is).
  int num_workers = 2;

  /// Admission-queue bound: Submit() rejects with kResourceExhausted once
  /// this many queries are waiting (backpressure instead of unbounded
  /// memory growth). Must be >= 1.
  size_t queue_capacity = 32;

  /// Default per-query deadline (host wall-clock, from admission), applied
  /// when Submit() is not given an explicit timeout. <= 0 disables it.
  double default_timeout_ms = 0.0;

  /// Template for the per-worker engines: device, mode, partitioned joins,
  /// default ExecOptions. `exec.trace` is forced to nullptr (a collector
  /// cannot be shared across workers — use ExportTrace() for a service-level
  /// timeline) and `calibration` is replaced by the service's shared table.
  /// `exec.fault` is likewise forced to nullptr: a FaultInjector is mutable
  /// per-execution state, so the service builds a fresh one per attempt from
  /// `fault` below instead of sharing one across workers.
  EngineOptions engine;

  /// Fault-injection configuration (chaos testing / availability benches).
  /// When enabled(), every execution attempt gets its own injector seeded by
  /// sim::FaultInjector::AttemptSeed(fault.seed, admission sequence,
  /// attempt), so a query's fault outcomes are reproducible regardless of
  /// worker assignment or host timing.
  sim::FaultConfig fault;

  /// Retry policy for transient device errors.
  RetryPolicy retry;

  /// Sharded execution (> 1): the service partitions the database once at
  /// construction (shard::PartitionDatabase), shares it with every worker
  /// engine via EngineOptions::sharded_db, and sets the sharding shape on
  /// the workers' default ExecOptions — queries then route through the
  /// unified Engine::Execute surface onto a device group of this size.
  /// Placement is whole-group per query: one query occupies all devices of
  /// its worker's group for its duration, and retries re-run the entire
  /// sharded execution. 1 (the default) keeps the single-device path.
  int num_shards = 1;
  shard::PartitionScheme partition_scheme = shard::PartitionScheme::kHash;
  /// Device group template. Empty = num_shards copies of engine.device;
  /// non-empty (a mixed group) must have exactly num_shards entries.
  std::vector<sim::DeviceSpec> devices;
  /// Interconnect of the group (exchange cost model).
  sim::LinkSpec link;

  /// Shared-work execution: one pool::SubplanCache for all workers. A hash
  /// table built (or a scan view decoded) by any worker is a hit for every
  /// other, and concurrently admitted queries scanning the same table attach
  /// to one in-flight materialization (shared-scan batching). Results are
  /// bit-identical with the cache on or off at any capacity — hits replay
  /// the cold run's timing simulation — so this only trades host memory for
  /// host wall-clock. Disabled for sharded services (per-shard databases
  /// make whole-database entries unsound; the engine nulls it there anyway).
  bool subplan_cache = true;
  /// Capacity of the shared subplan cache in MiB. 0 keeps shared-scan
  /// batching (in-flight attach) but retains nothing.
  int64_t subplan_cache_mb = 64;

  /// Optional metrics registry. When set, the service registers admission /
  /// outcome counters, queue-depth and running gauges, overall and per-class
  /// latency histograms, and callback gauges over the shared ThreadPool and
  /// TuningCache; it is also propagated to the worker engines (simulator
  /// counters) unless `engine.metrics` was set explicitly. Must outlive the
  /// service. nullptr (the default) is the null-registry fast path.
  obs::MetricsRegistry* metrics = nullptr;
};

/// How an admitted query ended.
enum class QueryOutcome {
  kCompleted,  ///< executed successfully
  kTimedOut,   ///< deadline expired (in queue or at a segment boundary)
  kCancelled,  ///< QueryHandle::Cancel() observed
  kFailed,     ///< any other execution error
};

/// Aggregated service counters — one consistent snapshot (see
/// QueryService::Stats). Latencies are host wall-clock from admission to
/// completion, over completed queries only; simulated time is the sum of the
/// per-query simulated elapsed times (the two time bases are reported
/// separately and never mixed).
struct ServiceStats {
  uint64_t submitted = 0;  ///< Submit() calls (admitted + rejected)
  uint64_t admitted = 0;
  uint64_t rejected = 0;   ///< bounced off the full admission queue
  uint64_t completed = 0;
  uint64_t timed_out = 0;
  uint64_t cancelled = 0;
  uint64_t failed = 0;

  size_t queue_depth = 0;       ///< currently waiting
  size_t running = 0;           ///< currently executing
  uint64_t max_queue_depth = 0; ///< high-water mark

  double p50_latency_ms = 0.0;  ///< host wall-clock, completed queries
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double total_simulated_ms = 0.0;  ///< simulated device time, completed

  /// Shared tuning-cache accounting across all workers (GPL modes; zero for
  /// the KBE baselines). Steady-state serving should show hits >> misses —
  /// a segment tuned once by any worker is a lookup for every other.
  uint64_t tuning_cache_hits = 0;
  uint64_t tuning_cache_misses = 0;

  /// Shared subplan-cache (data memoization) accounting across all workers
  /// (zero when ServiceOptions::subplan_cache is off). `subplan_attaches` is
  /// the subset of hits served by waiting on another query's in-flight
  /// compute (shared-scan batching / shared builds); `scan_rows_*` split
  /// base-table rows into actually-scanned vs. served-from-shared.
  uint64_t subplan_cache_hits = 0;
  uint64_t subplan_cache_misses = 0;
  uint64_t subplan_attaches = 0;
  uint64_t subplan_evictions = 0;
  int64_t subplan_bytes = 0;
  int64_t subplan_entries = 0;
  uint64_t scan_rows_scanned = 0;
  uint64_t scan_rows_shared = 0;
  /// Completed queries whose execution had at least one subplan-cache hit
  /// (per-query cache outcome; each query's own counts ride its
  /// QueryMetrics and the serve-mode telemetry JSONL).
  uint64_t queries_with_cache_hits = 0;

  double SubplanHitRate() const {
    const uint64_t total = subplan_cache_hits + subplan_cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(subplan_cache_hits) /
                            static_cast<double>(total);
  }

  /// Fault-recovery accounting (zero without fault injection).
  uint64_t retries = 0;   ///< re-execution attempts beyond each query's first
  uint64_t degraded = 0;  ///< completed queries with >= 1 degraded segment
  uint64_t gave_up = 0;   ///< transient errors that exhausted max_attempts

  /// Sharded-execution accounting (empty/zero for unsharded services).
  /// Per-device-slot load: every worker's group shares slot indexing
  /// (device 0 of any worker accumulates into slot 0).
  uint64_t exchange_bytes = 0;            ///< broadcast + shuffle, completed
  std::vector<double> device_busy_ms;     ///< simulated busy time per slot
  std::vector<uint64_t> device_queries;   ///< completed queries per slot

  /// Human-readable one-stop report for CLIs/benches.
  std::string ToString() const;
};

/// Handle to a submitted query — a future over its Result<QueryResult>.
/// Copyable; all copies refer to the same submission. Safe to use from any
/// thread.
class QueryHandle {
 public:
  QueryHandle() = default;

  bool valid() const { return task_ != nullptr; }

  /// Requests cooperative cancellation. The query unwinds at its next
  /// segment/operator boundary (or before it starts, if still queued).
  void Cancel();

  /// True once the result is available (non-blocking).
  bool Done() const;

  /// Blocks until the query finishes and returns its result. The reference
  /// stays valid for the handle's lifetime. On a default-constructed or
  /// moved-from handle (!valid()) there is nothing to wait for: returns a
  /// kFailedPrecondition error instead of blocking (or crashing).
  const Result<QueryResult>& Await();

 private:
  friend class QueryService;
  struct Task;
  explicit QueryHandle(std::shared_ptr<Task> task) : task_(std::move(task)) {}
  std::shared_ptr<Task> task_;
};

/// A concurrent multi-query execution service: the paper's engine lifted to
/// serving many whole queries at once. Owns a pool of host worker threads,
/// each with a private Engine, all over one shared immutable tpch::Database
/// and one shared channel-calibration table. Queries are admitted into a
/// bounded queue (Submit rejects with kResourceExhausted when it is full),
/// carry per-query deadlines/cancellation tokens that executors poll at
/// segment boundaries, and report into an aggregated ServiceStats snapshot.
///
/// Determinism: execution is fully simulated, so a query's result table and
/// HwCounters are bit-identical no matter which worker runs it or how many
/// queries run concurrently — only host-side wall-clock fields (latencies,
/// *_wall_ms metrics) vary. tests/service_test.cc asserts this.
///
/// Thread-safety: all public methods are safe to call from any thread.
class QueryService {
 public:
  /// Builds the shared catalog-independent state (one channel calibration
  /// run for the configured device) and starts the workers. `db` must
  /// outlive the service and must not be mutated while it is running.
  QueryService(const tpch::Database* db, ServiceOptions options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits a query for asynchronous execution. `timeout_ms` overrides the
  /// service default deadline (<= 0 keeps the default). Returns the handle,
  /// or kResourceExhausted when the admission queue is full, or kUnavailable
  /// after Shutdown().
  Result<QueryHandle> Submit(std::string name, LogicalQuery query,
                             double timeout_ms = 0.0);

  /// One consistent snapshot of the aggregated counters.
  ServiceStats Stats() const;

  /// Stops dispatching queued queries (running ones finish). Admission stays
  /// open, so the queue can be filled deterministically — used by tests and
  /// for drain-style maintenance.
  void Pause();
  void Resume();

  /// Stops admission, drains the queue, and joins the workers. Idempotent;
  /// also called by the destructor. Queued queries still execute (their
  /// deadlines permitting) before Shutdown returns.
  void Shutdown();

  /// Exports the service-level timeline into a trace collector: one track
  /// per worker with a queue-wait + execution span per query (host time:
  /// with the collector's default clock, 1 "cycle" = 1 ns), plus
  /// queue-depth/running counter series and instants for rejected
  /// submissions. Call from one thread, typically after the run.
  void ExportTrace(trace::TraceCollector* collector) const;

  const model::CalibrationTable& calibration() const { return calibration_; }
  const ServiceOptions& options() const { return options_; }
  /// True when queries run through sharded execution (num_shards > 1).
  bool sharded() const { return sharded_.has_value(); }
  /// The per-worker device-group template (empty group when !sharded()).
  const shard::DeviceGroup& device_group() const { return group_; }
  /// The TuneSegment memo shared by every worker engine (thread-safe).
  model::TuningCache& tuning_cache() { return tuning_cache_; }
  /// The subplan-data memo shared by every worker engine (thread-safe).
  pool::SubplanCache& subplan_cache() { return subplan_cache_; }

 private:
  struct FinishedRecord {
    std::string name;
    int worker = -1;
    QueryOutcome outcome = QueryOutcome::kCompleted;
    int64_t submit_ns = 0;  ///< since service start
    int64_t start_ns = 0;
    int64_t end_ns = 0;
    double simulated_ms = 0.0;
    int attempts = 0;       ///< engine executions (0 = deadline beat dispatch)
    bool degraded = false;  ///< completed with >= 1 degraded segment
    int64_t subplan_hits = 0;    ///< this query's subplan-cache hits
    int64_t subplan_misses = 0;  ///< this query's cacheable-segment misses
    int64_t exchange_bytes = 0;            ///< sharded runs only
    std::vector<double> device_elapsed_ms; ///< sharded runs only
    /// (start_ns, end_ns) of each engine execution; gaps between entries are
    /// retry backoff. Rendered by ExportTrace when attempts > 1.
    std::vector<std::pair<int64_t, int64_t>> attempt_spans;
  };

  /// What a worker runs a query through (its private Engine, bound by
  /// reference), erased so RunTask's retry/deadline/bookkeeping logic does
  /// not depend on worker state.
  using ExecuteFn =
      std::function<Result<QueryResult>(const LogicalQuery&, const ExecOptions&)>;

  void WorkerLoop(int worker_index);
  void RunTask(int worker_index, const ExecuteFn& execute,
               const std::shared_ptr<QueryHandle::Task>& task);
  int64_t NowNs() const;  ///< host steady-clock ns since service start

  const tpch::Database* db_;
  ServiceOptions options_;
  /// Shared Γ calibration (Section 2.1) referenced by every worker engine.
  model::CalibrationTable calibration_;
  /// Sharded mode only: the partitioned database (shared, read-only), the
  /// per-worker device-group template, and one calibration per distinct
  /// device name in the group (shared by every worker's executor).
  std::optional<shard::ShardedDatabase> sharded_;
  shard::DeviceGroup group_;
  std::map<std::string, model::CalibrationTable> shard_calibrations_;
  /// Shared TuneSegment memo referenced by every worker engine: a segment
  /// tuned by any worker is a cache hit for the rest, so steady-state
  /// OptimizeWallMs() collapses to a signature lookup. Thread-safe.
  model::TuningCache tuning_cache_;
  /// Shared subplan-data memo (paged pool + cache) referenced by every
  /// worker engine when ServiceOptions::subplan_cache is on: scan views and
  /// build-side hash tables materialized by any worker serve the rest, and
  /// concurrent identical leaves attach to one in-flight scan. Thread-safe.
  pool::SubplanCache subplan_cache_;
  std::chrono::steady_clock::time_point start_tp_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< queue/pause/stop transitions
  std::deque<std::shared_ptr<QueryHandle::Task>> queue_;
  bool paused_ = false;
  bool stop_ = false;
  uint64_t next_sequence_ = 0;  ///< admission order; seeds fault injection

  // Aggregates (guarded by mu_).
  ServiceStats stats_;
  /// Completed-query latency distribution. A bounded log-scale histogram —
  /// NOT a per-query vector — so a long serve run's memory stays constant;
  /// the reported p50/p95/p99 are the histogram's interpolated quantiles
  /// (exact Percentile() stays available as the test oracle).
  obs::Histogram latency_histogram_{obs::HistogramOptions::LatencyMs()};
  std::vector<FinishedRecord> finished_;
  std::vector<std::pair<int64_t, std::string>> rejected_log_;  ///< (ns, name)

  // Metrics handles (null without ServiceOptions::metrics). Outcome counters
  // are indexed by QueryOutcome; per-class latency histograms are fetched
  // lazily per new query class under mu_. Callback-gauge ids are removed in
  // Shutdown(), before anything they capture dies.
  obs::Counter* admitted_counter_ = nullptr;
  obs::Counter* rejected_counter_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* gave_up_counter_ = nullptr;
  obs::Counter* degraded_counter_ = nullptr;
  obs::Counter* outcome_counters_[4] = {nullptr, nullptr, nullptr, nullptr};
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Gauge* running_gauge_ = nullptr;
  obs::Histogram* latency_metric_ = nullptr;
  std::map<std::string, obs::Histogram*> class_latency_metrics_;
  std::vector<uint64_t> callback_ids_;

  std::vector<std::thread> workers_;
};

}  // namespace service
}  // namespace gpl

#endif  // GPL_SERVICE_QUERY_SERVICE_H_
