#include "service/query_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "shard/sharded_executor.h"
#include "trace/trace.h"

namespace gpl {
namespace service {

// Linear interpolation between the two order statistics bracketing
// p/100 * (n-1): p50 of {1, 2} is 1.5, not either sample. (Declared in the
// header; tests pin this behavior.)
double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

namespace {

const char* OutcomeName(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kCompleted:
      return "completed";
    case QueryOutcome::kTimedOut:
      return "timed_out";
    case QueryOutcome::kCancelled:
      return "cancelled";
    case QueryOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

/// Query class for per-class latency series: the submission-name prefix
/// before '#' ("Q5#37" -> "Q5"; a name without '#' is its own class).
std::string QueryClass(const std::string& name) {
  const size_t hash = name.find('#');
  return hash == std::string::npos ? name : name.substr(0, hash);
}

}  // namespace

std::string ServiceStats::ToString() const {
  std::ostringstream out;
  out << "submitted=" << submitted << " admitted=" << admitted
      << " rejected=" << rejected << " completed=" << completed
      << " timed_out=" << timed_out << " cancelled=" << cancelled
      << " failed=" << failed << " queue_depth=" << queue_depth
      << " max_queue_depth=" << max_queue_depth << " p50_latency_ms=";
  out.precision(3);
  out << std::fixed << p50_latency_ms << " p95_latency_ms=" << p95_latency_ms
      << " p99_latency_ms=" << p99_latency_ms
      << " total_simulated_ms=" << total_simulated_ms
      << " tuning_cache_hits=" << tuning_cache_hits
      << " tuning_cache_misses=" << tuning_cache_misses
      << " subplan_cache_hits=" << subplan_cache_hits
      << " subplan_cache_misses=" << subplan_cache_misses
      << " subplan_attaches=" << subplan_attaches
      << " subplan_evictions=" << subplan_evictions
      << " subplan_bytes=" << subplan_bytes
      << " subplan_entries=" << subplan_entries
      << " scan_rows_scanned=" << scan_rows_scanned
      << " scan_rows_shared=" << scan_rows_shared
      << " queries_with_cache_hits=" << queries_with_cache_hits
      << " retries=" << retries << " degraded=" << degraded
      << " gave_up=" << gave_up;
  if (!device_busy_ms.empty()) {
    out << " exchange_bytes=" << exchange_bytes << " device_busy_ms=[";
    for (size_t i = 0; i < device_busy_ms.size(); ++i) {
      if (i > 0) out << ",";
      out << device_busy_ms[i];
    }
    out << "] device_queries=[";
    for (size_t i = 0; i < device_queries.size(); ++i) {
      if (i > 0) out << ",";
      out << device_queries[i];
    }
    out << "]";
  }
  return out.str();
}

/// Shared state of one submission: the slot the worker publishes the result
/// into and the synchronization for Await(). The task owns the query's
/// CancelToken so cancellation works whether the task is queued, running, or
/// already finished.
struct QueryHandle::Task {
  std::string name;
  LogicalQuery query;
  CancelToken token;
  int64_t submit_ns = 0;
  /// Admission order, assigned under the service lock. Seeds the per-attempt
  /// fault injector and backoff jitter, so a query's fault/retry schedule is
  /// a function of (fault seed, admission order) — not of which worker picks
  /// it up or when.
  uint64_t sequence = 0;

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  /// Result<T> has no default constructor, hence optional for "not yet".
  std::optional<Result<QueryResult>> result;
};

void QueryHandle::Cancel() {
  if (task_ != nullptr) task_->token.RequestCancel();
}

bool QueryHandle::Done() const {
  if (task_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(task_->mu);
  return task_->done;
}

const Result<QueryResult>& QueryHandle::Await() {
  if (task_ == nullptr) {
    // A default-constructed or moved-from handle has no submission to wait
    // for; blocking (or dereferencing task_) would be a bug in the caller.
    static const Result<QueryResult> kInvalidHandle{Status::FailedPrecondition(
        "Await() on an invalid QueryHandle (default-constructed or "
        "moved-from; no query was submitted through it)")};
    return kInvalidHandle;
  }
  std::unique_lock<std::mutex> lock(task_->mu);
  task_->cv.wait(lock, [&] { return task_->done; });
  return *task_->result;
}

QueryService::QueryService(const tpch::Database* db, ServiceOptions options)
    : db_(db),
      options_(std::move(options)),
      calibration_(model::CalibrationTable::Run(
          sim::Simulator(options_.engine.device))),
      subplan_cache_([&] {
        pool::SubplanCacheOptions subplan_options;
        subplan_options.capacity_bytes =
            std::max<int64_t>(0, options_.subplan_cache_mb) * 1024 * 1024;
        return subplan_options;
      }()),
      start_tp_(std::chrono::steady_clock::now()) {
  if (options_.num_workers < 1) options_.num_workers = 1;
  if (options_.queue_capacity < 1) options_.queue_capacity = 1;
  // Traces cannot be shared across workers; the service exports its own
  // timeline instead (ExportTrace). Likewise a FaultInjector is mutable
  // per-execution state: RunTask builds one per attempt from options_.fault.
  options_.engine.exec.trace = nullptr;
  options_.engine.exec.fault = nullptr;
  options_.engine.calibration = &calibration_;
  // One tuning cache for all workers (TuningCache is thread-safe): whichever
  // worker tunes a segment first spares the rest the grid search.
  options_.engine.tuning_cache = &tuning_cache_;
  // One subplan cache for all workers (SubplanCache is thread-safe): data
  // materialized by any worker serves the rest, and identical concurrent
  // leaf scans batch onto one in-flight compute. Sharded services keep it
  // off — shard engines run over per-shard partitions, so whole-database
  // entries would be unsound there (the engine also nulls it for leaves).
  options_.engine.subplan_cache =
      options_.subplan_cache && options_.num_shards <= 1 ? &subplan_cache_
                                                         : nullptr;
  if (options_.engine.metrics == nullptr) {
    options_.engine.metrics = options_.metrics;
  }

  if (obs::MetricsRegistry* metrics = options_.metrics; metrics != nullptr) {
    admitted_counter_ = metrics->GetCounter(
        "gpl_service_admission_total", "Admission decisions by result",
        {{"result", "admitted"}});
    rejected_counter_ = metrics->GetCounter(
        "gpl_service_admission_total", "Admission decisions by result",
        {{"result", "rejected"}});
    const char* help = "Finished queries by outcome";
    outcome_counters_[static_cast<int>(QueryOutcome::kCompleted)] =
        metrics->GetCounter("gpl_service_queries_total", help,
                            {{"outcome", "completed"}});
    outcome_counters_[static_cast<int>(QueryOutcome::kTimedOut)] =
        metrics->GetCounter("gpl_service_queries_total", help,
                            {{"outcome", "timed_out"}});
    outcome_counters_[static_cast<int>(QueryOutcome::kCancelled)] =
        metrics->GetCounter("gpl_service_queries_total", help,
                            {{"outcome", "cancelled"}});
    outcome_counters_[static_cast<int>(QueryOutcome::kFailed)] =
        metrics->GetCounter("gpl_service_queries_total", help,
                            {{"outcome", "failed"}});
    retries_counter_ = metrics->GetCounter(
        "gpl_service_retries_total",
        "Re-execution attempts beyond each query's first");
    gave_up_counter_ = metrics->GetCounter(
        "gpl_service_gave_up_total",
        "Transient errors that exhausted the retry budget");
    degraded_counter_ = metrics->GetCounter(
        "gpl_service_degraded_total",
        "Completed queries with at least one degraded segment");
    queue_depth_gauge_ = metrics->GetGauge("gpl_service_queue_depth",
                                           "Queries waiting for a worker");
    running_gauge_ = metrics->GetGauge("gpl_service_running",
                                       "Queries currently executing");
    latency_metric_ = metrics->GetHistogram(
        "gpl_service_latency_ms",
        "Host wall-clock latency of completed queries (ms)",
        obs::HistogramOptions::LatencyMs());
    // Collect-time callback gauges over counters owned elsewhere. They
    // capture `this`/ThreadPool::Global(); Shutdown() deregisters them
    // before the service (and its tuning cache) is destroyed.
    callback_ids_.push_back(metrics->AddCallbackGauge(
        "gpl_tuning_cache_hits", "Shared TuneSegment memo hits", {},
        [this] { return static_cast<double>(tuning_cache_.stats().hits); }));
    callback_ids_.push_back(metrics->AddCallbackGauge(
        "gpl_tuning_cache_misses", "Shared TuneSegment memo misses", {},
        [this] { return static_cast<double>(tuning_cache_.stats().misses); }));
    callback_ids_.push_back(metrics->AddCallbackGauge(
        "gpl_threadpool_tasks_submitted",
        "Tasks submitted to the global host pool", {}, [] {
          return static_cast<double>(ThreadPool::Global().stats().tasks_submitted);
        }));
    callback_ids_.push_back(metrics->AddCallbackGauge(
        "gpl_threadpool_tasks_executed",
        "Tasks executed by the global host pool", {}, [] {
          return static_cast<double>(ThreadPool::Global().stats().tasks_executed);
        }));
    callback_ids_.push_back(metrics->AddCallbackGauge(
        "gpl_threadpool_steals",
        "Tasks stolen from another worker's deque", {}, [] {
          return static_cast<double>(ThreadPool::Global().stats().steals);
        }));
    if (options_.engine.subplan_cache != nullptr) {
      const std::vector<uint64_t> subplan_ids =
          subplan_cache_.RegisterGauges(metrics, "gpl_subplan");
      callback_ids_.insert(callback_ids_.end(), subplan_ids.begin(),
                           subplan_ids.end());
    }
  }

  if (options_.num_shards > 1) {
    // Partition once; every worker's ShardedExecutor reads the same shards.
    if (options_.devices.empty()) {
      group_ = shard::DeviceGroup::Homogeneous(options_.engine.device,
                                               options_.num_shards,
                                               options_.link);
    } else {
      GPL_CHECK(static_cast<int>(options_.devices.size()) ==
                options_.num_shards)
          << "ServiceOptions::devices has " << options_.devices.size()
          << " entries but num_shards=" << options_.num_shards;
      group_.devices = options_.devices;
      group_.link = options_.link;
    }
    shard::PartitionOptions partition;
    partition.num_shards = options_.num_shards;
    partition.scheme = options_.partition_scheme;
    Result<shard::ShardedDatabase> sharded =
        shard::PartitionDatabase(*db_, partition);
    GPL_CHECK(sharded.ok()) << sharded.status().ToString();
    sharded_.emplace(sharded.take());
    // One calibration per distinct device name, shared across workers (the
    // table is immutable after Run).
    for (const sim::DeviceSpec& device : group_.devices) {
      if (shard_calibrations_.count(device.name) == 0) {
        shard_calibrations_.emplace(
            device.name,
            model::CalibrationTable::Run(sim::Simulator(device)));
      }
    }
    stats_.device_busy_ms.assign(static_cast<size_t>(options_.num_shards),
                                 0.0);
    stats_.device_queries.assign(static_cast<size_t>(options_.num_shards), 0);

    // Workers ride the unified Engine::Execute surface: the shared
    // pre-partitioned database and per-device calibrations go in
    // EngineOptions (so no worker re-partitions or re-calibrates), and the
    // sharding shape goes in the default ExecOptions (so every execution
    // routes through the engine's ShardedExecutor).
    options_.engine.sharded_db = &*sharded_;
    options_.engine.device_calibrations = &shard_calibrations_;
    options_.engine.exec.shards = options_.num_shards;
    options_.engine.exec.partition = options_.partition_scheme;
    options_.engine.exec.device_list = group_.devices;
    options_.engine.exec.link_gbps = options_.link.gbytes_per_sec;
  }

  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  GPL_SLOG(Info, "service")
      .Field("workers", options_.num_workers)
      .Field("queue_capacity", options_.queue_capacity)
      << "QueryService started";
}

QueryService::~QueryService() { Shutdown(); }

int64_t QueryService::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start_tp_)
      .count();
}

Result<QueryHandle> QueryService::Submit(std::string name, LogicalQuery query,
                                         double timeout_ms) {
  auto task = std::make_shared<QueryHandle::Task>();
  task->name = std::move(name);
  task->query = std::move(query);
  task->submit_ns = NowNs();
  const double timeout = timeout_ms > 0.0 ? timeout_ms
                                          : options_.default_timeout_ms;
  if (timeout > 0.0) task->token.SetDeadlineAfterMs(timeout);

  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.submitted++;
    if (stop_) {
      stats_.rejected++;
      obs::Inc(rejected_counter_);
      rejected_log_.emplace_back(task->submit_ns, task->name);
      return Status::Unavailable("QueryService is shut down");
    }
    if (queue_.size() >= options_.queue_capacity) {
      stats_.rejected++;
      obs::Inc(rejected_counter_);
      rejected_log_.emplace_back(task->submit_ns, task->name);
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(queue_.size()) + "/" +
          std::to_string(options_.queue_capacity) + "), query '" + task->name +
          "' rejected");
    }
    stats_.admitted++;
    obs::Inc(admitted_counter_);
    task->sequence = next_sequence_++;
    queue_.push_back(task);
    obs::Set(queue_depth_gauge_, static_cast<double>(queue_.size()));
    stats_.max_queue_depth =
        std::max<uint64_t>(stats_.max_queue_depth, queue_.size());
  }
  work_cv_.notify_one();
  return QueryHandle(std::move(task));
}

void QueryService::WorkerLoop(int worker_index) {
  // Each worker owns a private Engine (engines are not thread-safe); all of
  // them share the database, the shards, the calibrations and the tuning
  // cache. Sharded and single-device services run through the same
  // Engine::Execute surface — the sharding shape rides the default
  // ExecOptions set up at construction, and the engine lazily builds its
  // ShardedExecutor over the service's shared partitioned database.
  auto engine = std::make_unique<Engine>(db_, options_.engine);
  ExecuteFn execute = [&engine](const LogicalQuery& query,
                                const ExecOptions& exec) {
    return engine->Execute(query, exec);
  };

  for (;;) {
    std::shared_ptr<QueryHandle::Task> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ ? true : (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) {
        if (stop_) return;
        continue;  // woken by Resume() with nothing to do
      }
      // On shutdown the queue is still drained: queued queries were admitted
      // and owe their submitters a result (possibly kDeadlineExceeded).
      task = std::move(queue_.front());
      queue_.pop_front();
      stats_.running++;
      obs::Set(queue_depth_gauge_, static_cast<double>(queue_.size()));
      obs::Set(running_gauge_, static_cast<double>(stats_.running));
    }
    RunTask(worker_index, execute, task);
    work_cv_.notify_all();
  }
}

void QueryService::RunTask(int worker_index, const ExecuteFn& execute,
                           const std::shared_ptr<QueryHandle::Task>& task) {
  const int64_t start_ns = NowNs();

  const RetryPolicy& retry = options_.retry;
  const int max_attempts = std::max(1, retry.max_attempts);
  // Backoff jitter from its own deterministic stream (salted so it never
  // collides with an attempt's fault stream).
  Random jitter_rng(sim::FaultInjector::AttemptSeed(
      options_.fault.seed ^ 0x6a09e667f3bcc909ULL, task->sequence, 0));

  std::optional<Result<QueryResult>> result;
  std::vector<std::pair<int64_t, int64_t>> attempt_spans;
  int attempts = 0;
  bool gave_up = false;

  for (int attempt = 0;; ++attempt) {
    // Deadline/cancellation check before dispatching to the engine: a query
    // whose deadline expired while queued — or while backing off between
    // retries — short-circuits here instead of starting another execution.
    if (Status admission = task->token.Check(); !admission.ok()) {
      result.emplace(std::move(admission));
      break;
    }

    ExecOptions exec = options_.engine.exec;
    exec.cancel = &task->token;
    std::optional<sim::FaultInjector> injector;
    if (options_.fault.enabled()) {
      sim::FaultConfig config = options_.fault;
      config.seed = sim::FaultInjector::AttemptSeed(options_.fault.seed,
                                                    task->sequence, attempt);
      injector.emplace(std::move(config));
      exec.fault = &*injector;
    }

    const int64_t attempt_start = NowNs();
    ++attempts;
    result.emplace(execute(task->query, exec));
    attempt_spans.emplace_back(attempt_start, NowNs());

    // Only transient device errors are retryable; everything else (including
    // kChannelAllocFailed that survived degradation) is final.
    if (result->ok() ||
        result->status().code() != StatusCode::kTransientDeviceError) {
      break;
    }
    if (attempt + 1 >= max_attempts) {
      gave_up = true;
      GPL_SLOG(Info, "service")
          .Field("query", task->name)
          .Field("attempts", attempts)
          << "giving up: " << result->status().ToString();
      break;
    }
    double backoff_ms =
        retry.initial_backoff_ms * std::pow(retry.backoff_multiplier, attempt);
    if (retry.max_backoff_ms > 0.0) {
      backoff_ms = std::min(backoff_ms, retry.max_backoff_ms);
    }
    if (retry.jitter_fraction > 0.0) {
      backoff_ms *=
          1.0 + retry.jitter_fraction * (2.0 * jitter_rng.NextDouble() - 1.0);
    }
    if (backoff_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
    }
  }

  const int64_t end_ns = NowNs();

  FinishedRecord record;
  record.name = task->name;
  record.worker = worker_index;
  record.submit_ns = task->submit_ns;
  record.start_ns = start_ns;
  record.end_ns = end_ns;
  record.attempts = attempts;
  record.attempt_spans = std::move(attempt_spans);
  if (result->ok()) {
    record.outcome = QueryOutcome::kCompleted;
    record.simulated_ms = (*result)->metrics.elapsed_ms;
    record.degraded = (*result)->metrics.degraded_segments > 0;
    record.subplan_hits = (*result)->metrics.subplan_cache_hits;
    record.subplan_misses = (*result)->metrics.subplan_cache_misses;
    record.exchange_bytes = (*result)->metrics.exchange_bytes;
    record.device_elapsed_ms = (*result)->metrics.device_elapsed_ms;
  } else {
    switch (result->status().code()) {
      case StatusCode::kDeadlineExceeded:
        record.outcome = QueryOutcome::kTimedOut;
        break;
      case StatusCode::kCancelled:
        record.outcome = QueryOutcome::kCancelled;
        break;
      default:
        record.outcome = QueryOutcome::kFailed;
        break;
    }
    GPL_SLOG(Info, "service").Field("query", task->name)
        << "did not complete: " << result->status().ToString();
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.running--;
    obs::Set(running_gauge_, static_cast<double>(stats_.running));
    if (attempts > 1) {
      stats_.retries += static_cast<uint64_t>(attempts - 1);
      obs::Inc(retries_counter_, static_cast<uint64_t>(attempts - 1));
    }
    if (gave_up) {
      stats_.gave_up++;
      obs::Inc(gave_up_counter_);
    }
    obs::Inc(outcome_counters_[static_cast<int>(record.outcome)]);
    switch (record.outcome) {
      case QueryOutcome::kCompleted: {
        stats_.completed++;
        if (record.degraded) {
          stats_.degraded++;
          obs::Inc(degraded_counter_);
        }
        if (record.subplan_hits > 0) stats_.queries_with_cache_hits++;
        const double latency_ms =
            static_cast<double>(end_ns - task->submit_ns) / 1e6;
        latency_histogram_.Observe(latency_ms);
        obs::Observe(latency_metric_, latency_ms);
        if (options_.metrics != nullptr) {
          // Per-class latency series, fetched once per new class (the handle
          // is cached under mu_ so steady state never locks the registry).
          const std::string query_class = QueryClass(task->name);
          obs::Histogram*& h = class_latency_metrics_[query_class];
          if (h == nullptr) {
            h = options_.metrics->GetHistogram(
                "gpl_service_class_latency_ms",
                "Host wall-clock latency by query class (ms)",
                obs::HistogramOptions::LatencyMs(),
                {{"class", query_class}});
          }
          h->Observe(latency_ms);
        }
        stats_.total_simulated_ms += record.simulated_ms;
        // Per-device-slot load (whole-group placement: every device of the
        // worker's group ran a shard of this query).
        stats_.exchange_bytes +=
            static_cast<uint64_t>(record.exchange_bytes);
        for (size_t i = 0; i < record.device_elapsed_ms.size() &&
                           i < stats_.device_busy_ms.size();
             ++i) {
          stats_.device_busy_ms[i] += record.device_elapsed_ms[i];
          stats_.device_queries[i] += 1;
        }
        break;
      }
      case QueryOutcome::kTimedOut:
        stats_.timed_out++;
        break;
      case QueryOutcome::kCancelled:
        stats_.cancelled++;
        break;
      case QueryOutcome::kFailed:
        stats_.failed++;
        break;
    }
    finished_.push_back(std::move(record));
  }

  // Publish the result last: once done flips, Await() returns and the
  // submitter may immediately read Stats() expecting this query counted.
  {
    std::lock_guard<std::mutex> lock(task->mu);
    task->result = std::move(result);
    task->done = true;
  }
  task->cv.notify_all();
}

ServiceStats QueryService::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats snapshot = stats_;
  snapshot.queue_depth = queue_.size();
  // Histogram quantiles (bounded memory), not exact order statistics: within
  // one bucket width (~12%) of Percentile() on the same sample.
  const obs::HistogramSnapshot latency = latency_histogram_.Snapshot();
  snapshot.p50_latency_ms = latency.Quantile(0.50);
  snapshot.p95_latency_ms = latency.Quantile(0.95);
  snapshot.p99_latency_ms = latency.Quantile(0.99);
  const model::TuningCacheStats cache_stats = tuning_cache_.stats();
  snapshot.tuning_cache_hits = cache_stats.hits;
  snapshot.tuning_cache_misses = cache_stats.misses;
  const pool::SubplanCacheStats subplan = subplan_cache_.stats();
  snapshot.subplan_cache_hits = subplan.hits;
  snapshot.subplan_cache_misses = subplan.misses;
  snapshot.subplan_attaches = subplan.attaches;
  snapshot.subplan_evictions = subplan.evictions;
  snapshot.subplan_bytes = subplan.bytes;
  snapshot.subplan_entries = subplan.entries;
  snapshot.scan_rows_scanned = subplan.scan_rows_scanned;
  snapshot.scan_rows_shared = subplan.scan_rows_shared;
  return snapshot;
}

void QueryService::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void QueryService::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  work_cv_.notify_all();
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && workers_.empty()) return;
    stop_ = true;
    paused_ = false;  // a paused service still drains on shutdown
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // The callback gauges capture this service; the registry may outlive it,
  // so deregister before returning (the destructor funnels through here).
  if (options_.metrics != nullptr) {
    for (const uint64_t id : callback_ids_) {
      options_.metrics->RemoveCallback(id);
    }
    callback_ids_.clear();
  }
  GPL_SLOG(Info, "service") << "QueryService stopped: " << Stats().ToString();
}

void QueryService::ExportTrace(trace::TraceCollector* collector) const {
  if (collector == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);

  // Host nanoseconds as "cycles": the collector's default clock of 1000 MHz
  // divides by 1000, rendering the timeline in microseconds.
  std::vector<FinishedRecord> records = finished_;
  std::sort(records.begin(), records.end(),
            [](const FinishedRecord& a, const FinishedRecord& b) {
              return a.start_ns < b.start_ns;
            });

  for (const FinishedRecord& record : records) {
    const int track =
        collector->TrackId("worker " + std::to_string(record.worker));
    if (record.start_ns > record.submit_ns) {
      collector->AddSpan(track, record.name + " (queued)", "service.queue",
                         static_cast<double>(record.submit_ns),
                         static_cast<double>(record.start_ns));
    }
    std::vector<trace::Arg> args = {
        {"outcome", std::string("\"") + OutcomeName(record.outcome) + "\""},
        {"simulated_ms", std::to_string(record.simulated_ms)},
        {"attempts", std::to_string(record.attempts)}};
    if (!record.device_elapsed_ms.empty()) {
      args.emplace_back("shards",
                        std::to_string(record.device_elapsed_ms.size()));
      args.emplace_back("exchange_bytes",
                        std::to_string(record.exchange_bytes));
    }
    collector->AddSpan(track, record.name, "service.exec",
                       static_cast<double>(record.start_ns),
                       static_cast<double>(record.end_ns), std::move(args));
    // A retried query gets one nested span per engine execution; the gaps
    // between them are retry backoff.
    if (record.attempts > 1) {
      for (size_t a = 0; a < record.attempt_spans.size(); ++a) {
        collector->AddSpan(track,
                           record.name + " (attempt " + std::to_string(a + 1) +
                               "/" + std::to_string(record.attempts) + ")",
                           "service.retry",
                           static_cast<double>(record.attempt_spans[a].first),
                           static_cast<double>(record.attempt_spans[a].second));
      }
    }
  }

  // Concurrency level over time, from start/end edges.
  std::vector<std::pair<int64_t, int>> edges;
  edges.reserve(records.size() * 2);
  for (const FinishedRecord& record : records) {
    edges.emplace_back(record.start_ns, +1);
    edges.emplace_back(record.end_ns, -1);
  }
  std::sort(edges.begin(), edges.end());
  int running = 0;
  for (const auto& [t_ns, delta] : edges) {
    running += delta;
    collector->AddCounter("service.running", static_cast<double>(t_ns),
                          static_cast<double>(running));
  }

  if (!rejected_log_.empty()) {
    const int track = collector->TrackId("admission");
    for (const auto& [t_ns, name] : rejected_log_) {
      collector->AddInstant(track, name + " rejected", "service.admission",
                            static_cast<double>(t_ns));
    }
  }
}

}  // namespace service
}  // namespace gpl
