#ifndef GPL_MODEL_COST_MODEL_H_
#define GPL_MODEL_COST_MODEL_H_

#include <vector>

#include "model/calibration.h"
#include "sim/device.h"
#include "sim/kernel_desc.h"

namespace gpl {
namespace model {

/// Model-side description of one pipeline stage: the kernel's program-
/// analysis numbers plus the optimizer's cardinality estimates (λ).
struct StageDesc {
  sim::KernelTimingDesc timing;
  double rows_in = 0.0;
  double bytes_in = 0.0;
  double rows_out = 0.0;
  double bytes_out = 0.0;
};

/// Model-side description of a segment.
struct SegmentDesc {
  std::vector<StageDesc> stages;
  double input_bytes = 0.0;          ///< bytes scanned by the leaf kernel
  int64_t extra_resident_bytes = 0;  ///< hash tables probed by this segment
};

/// The tunable parameters of one segment's pipelined execution.
struct SegmentParams {
  int64_t tile_bytes = 4 << 20;             ///< Δ
  std::vector<int> workgroups;              ///< wg_Ki per stage
  std::vector<sim::ChannelConfig> channels; ///< per kernel gap
};

/// Analytical estimate of a segment's execution (Eqs. 2-9).
struct SegmentEstimate {
  double total_cycles = 0.0;
  double delay_cycles = 0.0;                ///< Eq. 8
  std::vector<double> kernel_cycles;        ///< T_Ki x r_Ki per stage
  double compute_cycles = 0.0;              ///< sum of c_Ki
  double memory_cycles = 0.0;               ///< sum of m_Ki (global)
  double channel_cycles = 0.0;              ///< sum of channel m_Ki (Eq. 6)
};

/// The analytical model of Section 4: estimates segment execution time from
/// platform inputs (DeviceSpec), calibration (Γ), program analysis (timing
/// descriptors) and query-optimizer estimates (λ), for a given parameter
/// setting. Independent from the event simulator: Figures 11/13/14/24
/// measure its relative error against simulated execution.
class CostModel {
 public:
  CostModel(const sim::DeviceSpec& device, const CalibrationTable* calibration);

  SegmentEstimate EstimateSegment(const SegmentDesc& segment,
                                  const SegmentParams& params) const;

  const sim::DeviceSpec& device() const { return device_; }

 private:
  sim::DeviceSpec device_;
  const CalibrationTable* calibration_;
  sim::CacheModel cache_;
};

}  // namespace model
}  // namespace gpl

#endif  // GPL_MODEL_COST_MODEL_H_
