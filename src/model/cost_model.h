#ifndef GPL_MODEL_COST_MODEL_H_
#define GPL_MODEL_COST_MODEL_H_

#include <vector>

#include "model/calibration.h"
#include "sim/device.h"
#include "sim/kernel_desc.h"

namespace gpl {
namespace model {

/// Model-side description of one pipeline stage: the kernel's program-
/// analysis numbers plus the optimizer's cardinality estimates (λ).
struct StageDesc {
  sim::KernelTimingDesc timing;
  double rows_in = 0.0;
  double bytes_in = 0.0;
  double rows_out = 0.0;
  double bytes_out = 0.0;
};

/// Model-side description of a segment.
struct SegmentDesc {
  std::vector<StageDesc> stages;
  double input_bytes = 0.0;          ///< bytes scanned by the leaf kernel
  int64_t extra_resident_bytes = 0;  ///< hash tables probed by this segment
};

/// How a segment's kernels execute — the per-segment three-way choice of
/// the fused engine mode.
enum class SegmentEngine {
  kGplChannel,     ///< concurrent kernels exchanging tiles through channels
  kKernelAtATime,  ///< one kernel at a time, materialized intermediates
  kFused,          ///< fusible chains collapsed into single kernels
};

const char* SegmentEngineName(SegmentEngine engine);

/// Composes `count` consecutive stages starting at `first` into the
/// model-side description of one fused kernel: per-row instruction counts
/// are normalized to the fused input's rows, interior streaming traffic is
/// eliminated (intermediates stay in registers), random side-structure
/// accesses survive, and register/local footprints add up (the occupancy
/// pressure the fusion term charges).
StageDesc ComposeFusedStage(const std::vector<StageDesc>& stages, size_t first,
                            size_t count);

/// Applies ComposeFusedStage per group: `group_sizes` partitions
/// segment.stages into consecutive runs; runs of size 1 pass through.
SegmentDesc ComposeFusedSegment(const SegmentDesc& segment,
                                const std::vector<int>& group_sizes);

/// The tunable parameters of one segment's pipelined execution.
struct SegmentParams {
  int64_t tile_bytes = 4 << 20;             ///< Δ
  std::vector<int> workgroups;              ///< wg_Ki per stage
  std::vector<sim::ChannelConfig> channels; ///< per kernel gap
};

/// Analytical estimate of a segment's execution (Eqs. 2-9).
struct SegmentEstimate {
  double total_cycles = 0.0;
  double delay_cycles = 0.0;                ///< Eq. 8
  std::vector<double> kernel_cycles;        ///< T_Ki x r_Ki per stage
  double compute_cycles = 0.0;              ///< sum of c_Ki
  double memory_cycles = 0.0;               ///< sum of m_Ki (global)
  double channel_cycles = 0.0;              ///< sum of channel m_Ki (Eq. 6)
};

/// The analytical model of Section 4: estimates segment execution time from
/// platform inputs (DeviceSpec), calibration (Γ), program analysis (timing
/// descriptors) and query-optimizer estimates (λ), for a given parameter
/// setting. Independent from the event simulator: Figures 11/13/14/24
/// measure its relative error against simulated execution.
class CostModel {
 public:
  CostModel(const sim::DeviceSpec& device, const CalibrationTable* calibration);

  SegmentEstimate EstimateSegment(const SegmentDesc& segment,
                                  const SegmentParams& params) const;

  /// Estimate for kernel-at-a-time execution of the same segment: one kernel
  /// per tile at a time, intermediates materialized, no channels and no
  /// cross-kernel overlap, but per-tile dispatch overhead for every kernel.
  /// Mirrors sim::Simulator::RunSequentialTiles (the w/o-CE path), and —
  /// applied to a ComposeFusedSegment description — prices the fused
  /// execution, where the launch-overhead and data-path savings appear
  /// because the composed segment simply has fewer, cheaper stages.
  SegmentEstimate EstimateSegmentSequential(const SegmentDesc& segment,
                                            const SegmentParams& params) const;

  const sim::DeviceSpec& device() const { return device_; }

 private:
  sim::DeviceSpec device_;
  const CalibrationTable* calibration_;
  sim::CacheModel cache_;
};

}  // namespace model
}  // namespace gpl

#endif  // GPL_MODEL_COST_MODEL_H_
