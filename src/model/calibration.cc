#include "model/calibration.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/math_util.h"

namespace gpl {
namespace model {

sim::SimResult RunProducerConsumer(const sim::Simulator& simulator,
                                   const sim::ChannelConfig& config,
                                   int64_t data_bytes) {
  const int64_t rows = std::max<int64_t>(1, data_bytes / 4);  // N integers

  // The producer *generates* N integers (Section 2.1), so the chain is
  // channel-dominated rather than DRAM-read-dominated.
  sim::KernelLaunch producer;
  producer.desc.name = "k_producer";
  producer.desc.compute_inst_per_row = 4.0;
  producer.desc.mem_inst_per_row = 0.1;
  producer.desc.private_bytes_per_item = 32;
  producer.rows_in = rows;
  producer.bytes_in = 0;
  producer.rows_out = rows;
  producer.bytes_out = data_bytes;
  producer.input = sim::Endpoint::kGlobal;
  producer.output = sim::Endpoint::kChannel;

  sim::KernelLaunch consumer;
  consumer.desc.name = "k_consumer";
  consumer.desc.compute_inst_per_row = 2.0;
  consumer.desc.mem_inst_per_row = 0.1;  // channel reads are charged separately
  consumer.desc.private_bytes_per_item = 32;
  consumer.rows_in = rows;
  consumer.bytes_in = data_bytes;
  consumer.rows_out = 1;
  consumer.bytes_out = 8;  // a single reduced value
  consumer.input = sim::Endpoint::kChannel;
  consumer.output = sim::Endpoint::kGlobal;

  sim::PipelineSpec spec;
  spec.kernels = {producer, consumer};
  spec.channel_configs = {config};
  spec.tile_bytes = std::max<int64_t>(data_bytes, 1);  // one tile: d is the knob
  // No fault injector here: calibration is infrastructure, not a query, so
  // the run cannot fail.
  Result<sim::SimResult> result = simulator.RunPipeline(spec);
  GPL_CHECK(result.ok()) << result.status().ToString();
  return result.take();
}

CalibrationTable CalibrationTable::Run(const sim::Simulator& simulator) {
  CalibrationTable table;
  table.channel_grid_ = {1, 2, 4, 8, 16, 32};
  if (simulator.device().has_packet_size_param) {
    table.packet_grid_ = {8, 16, 64, 256, 1024};
  } else {
    table.packet_grid_ = {16};  // NVIDIA DDT: no packet-size knob
  }
  // N from 512K to 8M integers (Figures 2 and 23).
  table.data_grid_ = {512 * 1024 * 4, 1024 * 1024 * 4, 2048 * 1024 * 4,
                      4096 * 1024 * 4, 8192 * 1024 * 4};

  for (int n : table.channel_grid_) {
    for (int p : table.packet_grid_) {
      for (int64_t d : table.data_grid_) {
        sim::ChannelConfig config;
        config.num_channels = n;
        config.packet_bytes = p;
        const sim::SimResult result = RunProducerConsumer(simulator, config, d);
        CalibrationPoint point;
        point.num_channels = n;
        point.packet_bytes = p;
        point.data_bytes = d;
        // Channel-subsystem throughput: the measured channel work spreads
        // across the CUs' memory pipelines, so wall time is work / #CU. The
        // producer/consumer compute time is excluded — Eq. 6 charges it
        // separately through c_Ki.
        const double wall_channel_cycles = std::max(
            1.0, result.counters.channel_cycles /
                     static_cast<double>(simulator.device().num_cus));
        point.throughput_bytes_per_cycle =
            static_cast<double>(d) / wall_channel_cycles;
        table.points_.push_back(point);
      }
    }
  }
  return table;
}

double CalibrationTable::Throughput(int num_channels, int packet_bytes,
                                    int64_t data_bytes) const {
  GPL_CHECK(!points_.empty()) << "calibration table is empty";
  // Nearest measured point in log space, dimension-wise.
  double best_dist = std::numeric_limits<double>::infinity();
  double best_tp = points_.front().throughput_bytes_per_cycle;
  const double ln = std::log2(std::max(1, num_channels));
  const double lp = std::log2(std::max(1, packet_bytes));
  const double ld = std::log2(static_cast<double>(std::max<int64_t>(1, data_bytes)));
  for (const CalibrationPoint& pt : points_) {
    const double dn = ln - std::log2(pt.num_channels);
    const double dp = lp - std::log2(pt.packet_bytes);
    const double dd = ld - std::log2(static_cast<double>(pt.data_bytes));
    const double dist = dn * dn + dp * dp + 0.25 * dd * dd;
    if (dist < best_dist) {
      best_dist = dist;
      best_tp = pt.throughput_bytes_per_cycle;
    }
  }
  return best_tp;
}

CalibrationTable::BestConfig CalibrationTable::Best(int64_t data_bytes) const {
  GPL_CHECK(!points_.empty()) << "calibration table is empty";
  BestConfig best;
  const double ld = std::log2(static_cast<double>(std::max<int64_t>(1, data_bytes)));
  // Among points with the nearest data size, pick the highest throughput.
  double nearest = std::numeric_limits<double>::infinity();
  for (const CalibrationPoint& pt : points_) {
    const double dd =
        std::abs(ld - std::log2(static_cast<double>(pt.data_bytes)));
    nearest = std::min(nearest, dd);
  }
  for (const CalibrationPoint& pt : points_) {
    const double dd =
        std::abs(ld - std::log2(static_cast<double>(pt.data_bytes)));
    if (dd > nearest + 1e-9) continue;
    if (pt.throughput_bytes_per_cycle > best.throughput_bytes_per_cycle) {
      best.throughput_bytes_per_cycle = pt.throughput_bytes_per_cycle;
      best.config.num_channels = pt.num_channels;
      best.config.packet_bytes = pt.packet_bytes;
    }
  }
  return best;
}

}  // namespace model
}  // namespace gpl
