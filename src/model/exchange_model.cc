#include "model/exchange_model.h"

#include <algorithm>

#include "model/tuning_cache.h"

namespace gpl {
namespace model {

namespace {

/// Bytes a relation of `bytes` ships when every row relocates with
/// probability (N-1)/N (each device keeps 1/N of the re-keyed relation).
int64_t OutboundFraction(int64_t bytes, int num_shards) {
  const double n = static_cast<double>(num_shards < 1 ? 1 : num_shards);
  return static_cast<int64_t>(static_cast<double>(bytes) * (n - 1.0) / n);
}

/// The spine relocation a repartition of `input` would trigger: the probe
/// side of its attach join when known, the full fact scan otherwise.
int64_t RelocationBytes(const ExchangeInput& input, int64_t fact_bytes) {
  return input.spine_bytes > 0 ? input.spine_bytes : fact_bytes;
}

}  // namespace

const char* ExchangeStrategyName(ExchangeStrategy strategy) {
  switch (strategy) {
    case ExchangeStrategy::kCoPartitioned:
      return "co-partitioned";
    case ExchangeStrategy::kBroadcast:
      return "broadcast";
    case ExchangeStrategy::kRepartition:
      return "repartition";
  }
  return "?";
}

ExchangeDecision PriceExchange(const ExchangeInput& input,
                               ExchangeStrategy strategy,
                               const sim::LinkSpec& link, int num_shards,
                               int64_t fact_bytes) {
  ExchangeDecision decision;
  decision.table = input.table;
  decision.strategy = strategy;
  sim::Link cost(link);
  switch (strategy) {
    case ExchangeStrategy::kCoPartitioned:
      decision.bytes = 0;
      decision.ms = 0.0;
      break;
    case ExchangeStrategy::kBroadcast:
      decision.bytes = input.bytes * static_cast<int64_t>(num_shards - 1);
      // One serialized DMA per receiving device (latency paid per copy).
      decision.ms =
          static_cast<double>(num_shards - 1) * cost.TransferMs(input.bytes);
      break;
    case ExchangeStrategy::kRepartition:
      // Every row of both sides of the attach join relocates with
      // probability (N-1)/N; moving the relation alone is useless — the
      // probe spine must land on the same key too. Each device ships its
      // outbound fraction in one serialized DMA.
      decision.spine_bytes =
          OutboundFraction(RelocationBytes(input, fact_bytes), num_shards);
      decision.bytes =
          OutboundFraction(input.bytes, num_shards) + decision.spine_bytes;
      decision.ms = cost.TransferMs(decision.bytes);
      break;
  }
  return decision;
}

ExchangeDecision TuneExchange(const ExchangeInput& input,
                              const sim::LinkSpec& link, int num_shards,
                              int64_t fact_bytes) {
  if (input.co_partitioned || num_shards <= 1) {
    return PriceExchange(input, ExchangeStrategy::kCoPartitioned, link,
                         num_shards, fact_bytes);
  }
  // Argmin by modeled ms (bytes as tie-break; candidate order breaks the
  // remaining ties, so broadcast wins when both agree). Per-copy link
  // latency is real simulated time: N-1 tiny broadcast DMAs can lose to one
  // repartition DMA even when the repartition moves more bytes.
  const ExchangeStrategy candidates[] = {ExchangeStrategy::kBroadcast,
                                         ExchangeStrategy::kRepartition};
  ExchangeDecision best;
  bool first = true;
  for (ExchangeStrategy strategy : candidates) {
    ExchangeDecision candidate =
        PriceExchange(input, strategy, link, num_shards, fact_bytes);
    if (first || candidate.ms < best.ms ||
        (candidate.ms == best.ms && candidate.bytes < best.bytes)) {
      best = candidate;
      first = false;
    }
  }
  return best;
}

namespace {

/// The exact subset argmin behind PlanExchange. Decisions are coupled: the
/// spine relocation is charged once per plan (the fact side relocates once,
/// not once per dimension), paid by the repartitioning relation with the
/// widest spine — so the optimal strategy for one relation depends on which
/// others repartition. With k eligible relations (k <= 7 for TPC-H shapes)
/// a 2^k sweep is exact and deterministic: minimize total ms, tie-break on
/// total bytes, remaining ties go to the subset enumerated first (the
/// all-broadcast plan).
ExchangePlan PlanExchangeFresh(const std::vector<ExchangeInput>& inputs,
                               const sim::LinkSpec& link, int num_shards,
                               int64_t fact_bytes) {
  ExchangePlan plan;
  plan.decisions.resize(inputs.size());

  sim::Link cost(link);
  struct Candidate {
    size_t index = 0;          ///< into inputs/decisions
    ExchangeDecision bcast;
    int64_t own_bytes = 0;     ///< outbound fraction of the relation itself
    double own_ms = 0.0;       ///< one DMA for the own bytes alone
    int64_t reloc_bytes = 0;   ///< outbound fraction of its spine relocation
  };
  std::vector<Candidate> eligible;
  for (size_t i = 0; i < inputs.size(); ++i) {
    const ExchangeInput& input = inputs[i];
    if (input.co_partitioned || num_shards <= 1) {
      plan.decisions[i] = PriceExchange(
          input, ExchangeStrategy::kCoPartitioned, link, num_shards,
          fact_bytes);
      continue;
    }
    Candidate c;
    c.index = i;
    c.bcast = PriceExchange(input, ExchangeStrategy::kBroadcast, link,
                            num_shards, fact_bytes);
    c.own_bytes = OutboundFraction(input.bytes, num_shards);
    c.own_ms = cost.TransferMs(c.own_bytes);
    c.reloc_bytes =
        OutboundFraction(RelocationBytes(input, fact_bytes), num_shards);
    plan.all_broadcast_bytes += c.bcast.bytes;
    eligible.push_back(std::move(c));
  }

  const size_t k = eligible.size();
  uint64_t best_mask = 0;
  double best_ms = 0.0;
  int64_t best_bytes = 0;
  bool first = true;
  // Beyond 16 eligible relations (never seen in practice) fall back to the
  // all-broadcast baseline plus per-relation standalone tuning via mask 0.
  const uint64_t num_masks = k <= 16 ? (uint64_t{1} << k) : 1;
  for (uint64_t mask = 0; mask < num_masks; ++mask) {
    double ms = 0.0;
    int64_t bytes = 0;
    // The widest spine among the repartitioning relations pays the one
    // shared relocation; ties go to the earliest relation (input order).
    size_t payer = k;
    int64_t payer_reloc = -1;
    for (size_t j = 0; j < k; ++j) {
      if ((mask >> j) & 1) {
        if (eligible[j].reloc_bytes > payer_reloc) {
          payer_reloc = eligible[j].reloc_bytes;
          payer = j;
        }
      }
    }
    for (size_t j = 0; j < k; ++j) {
      const Candidate& c = eligible[j];
      if (!((mask >> j) & 1)) {
        ms += c.bcast.ms;
        bytes += c.bcast.bytes;
      } else if (j == payer) {
        // Own bytes and the spine relocation ship in one DMA, exactly the
        // standalone PriceExchange(kRepartition) price.
        ms += cost.TransferMs(c.own_bytes + payer_reloc);
        bytes += c.own_bytes + payer_reloc;
      } else {
        ms += c.own_ms;
        bytes += c.own_bytes;
      }
    }
    if (first || ms < best_ms || (ms == best_ms && bytes < best_bytes)) {
      best_mask = mask;
      best_ms = ms;
      best_bytes = bytes;
      first = false;
    }
  }

  size_t payer = k;
  int64_t payer_reloc = -1;
  for (size_t j = 0; j < k; ++j) {
    if (((best_mask >> j) & 1) && eligible[j].reloc_bytes > payer_reloc) {
      payer_reloc = eligible[j].reloc_bytes;
      payer = j;
    }
  }
  for (size_t j = 0; j < k; ++j) {
    const Candidate& c = eligible[j];
    ExchangeDecision decision;
    if (!((best_mask >> j) & 1)) {
      decision = c.bcast;
    } else {
      decision.table = inputs[c.index].table;
      decision.strategy = ExchangeStrategy::kRepartition;
      if (j == payer) {
        decision.spine_bytes = payer_reloc;
        decision.bytes = c.own_bytes + payer_reloc;
        decision.ms = cost.TransferMs(decision.bytes);
        plan.has_spine = true;
        plan.spine_table = inputs[c.index].table;
        plan.spine_bytes = payer_reloc;
      } else {
        decision.bytes = c.own_bytes;
        decision.ms = c.own_ms;
      }
    }
    plan.decisions[c.index] = std::move(decision);
  }
  for (const ExchangeDecision& decision : plan.decisions) {
    plan.total_bytes += decision.bytes;
    plan.total_ms += decision.ms;
  }
  return plan;
}

}  // namespace

ExchangePlan PlanExchange(const std::vector<ExchangeInput>& inputs,
                          const sim::LinkSpec& link, int num_shards,
                          int64_t fact_bytes) {
  return PlanExchange(inputs, link, num_shards, fact_bytes, nullptr);
}

ExchangePlan PlanExchange(const std::vector<ExchangeInput>& inputs,
                          const sim::LinkSpec& link, int num_shards,
                          int64_t fact_bytes, TuningCache* cache) {
  if (cache == nullptr) {
    return PlanExchangeFresh(inputs, link, num_shards, fact_bytes);
  }
  // Memoized at plan granularity: the shared spine relocation couples the
  // per-relation decisions, so anything finer could cross-serve a decision
  // computed against a different set of inputs.
  const std::string signature =
      TuningCache::ExchangePlanSignature(link, num_shards, fact_bytes, inputs);
  std::optional<ExchangePlan> hit = cache->LookupExchangePlan(signature);
  if (hit.has_value()) return *std::move(hit);
  ExchangePlan plan = PlanExchangeFresh(inputs, link, num_shards, fact_bytes);
  cache->InsertExchangePlan(signature, plan);
  return plan;
}

}  // namespace model
}  // namespace gpl
