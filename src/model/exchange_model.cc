#include "model/exchange_model.h"

#include "model/tuning_cache.h"

namespace gpl {
namespace model {

const char* ExchangeStrategyName(ExchangeStrategy strategy) {
  switch (strategy) {
    case ExchangeStrategy::kCoPartitioned:
      return "co-partitioned";
    case ExchangeStrategy::kBroadcast:
      return "broadcast";
    case ExchangeStrategy::kRepartition:
      return "repartition";
  }
  return "?";
}

ExchangeDecision PriceExchange(const ExchangeInput& input,
                               ExchangeStrategy strategy,
                               const sim::LinkSpec& link, int num_shards,
                               int64_t fact_bytes) {
  ExchangeDecision decision;
  decision.table = input.table;
  decision.strategy = strategy;
  sim::Link cost(link);
  const double n = static_cast<double>(num_shards < 1 ? 1 : num_shards);
  switch (strategy) {
    case ExchangeStrategy::kCoPartitioned:
      decision.bytes = 0;
      decision.ms = 0.0;
      break;
    case ExchangeStrategy::kBroadcast:
      decision.bytes = input.bytes * static_cast<int64_t>(num_shards - 1);
      // One serialized DMA per receiving device (latency paid per copy).
      decision.ms =
          static_cast<double>(num_shards - 1) * cost.TransferMs(input.bytes);
      break;
    case ExchangeStrategy::kRepartition:
      // Every row of both sides relocates with probability (N-1)/N; moving
      // the build side alone is useless — the fact side must land on the
      // same key too. Each device ships its outbound fraction; serialized.
      decision.bytes = static_cast<int64_t>(
          static_cast<double>(input.bytes + fact_bytes) * (n - 1.0) / n);
      decision.ms = cost.TransferMs(decision.bytes);
      break;
  }
  return decision;
}

ExchangeDecision TuneExchange(const ExchangeInput& input,
                              const sim::LinkSpec& link, int num_shards,
                              int64_t fact_bytes) {
  if (input.co_partitioned || num_shards <= 1) {
    return PriceExchange(input, ExchangeStrategy::kCoPartitioned, link,
                         num_shards, fact_bytes);
  }
  // Argmin by bytes crossing links; candidate order breaks ties, so
  // broadcast wins when the byte counts agree (matches TPC-H-shaped data,
  // where dimensions are much smaller than the fact table).
  const ExchangeStrategy candidates[] = {ExchangeStrategy::kBroadcast,
                                         ExchangeStrategy::kRepartition};
  ExchangeDecision best;
  bool first = true;
  for (ExchangeStrategy strategy : candidates) {
    ExchangeDecision candidate =
        PriceExchange(input, strategy, link, num_shards, fact_bytes);
    if (first || candidate.bytes < best.bytes) {
      best = candidate;
      first = false;
    }
  }
  return best;
}

ExchangePlan PlanExchange(const std::vector<ExchangeInput>& inputs,
                          const sim::LinkSpec& link, int num_shards,
                          int64_t fact_bytes) {
  return PlanExchange(inputs, link, num_shards, fact_bytes, nullptr);
}

ExchangePlan PlanExchange(const std::vector<ExchangeInput>& inputs,
                          const sim::LinkSpec& link, int num_shards,
                          int64_t fact_bytes, TuningCache* cache) {
  ExchangePlan plan;
  plan.decisions.reserve(inputs.size());
  for (const ExchangeInput& input : inputs) {
    ExchangeDecision decision;
    if (cache != nullptr) {
      const std::string signature =
          TuningCache::ExchangeSignature(link, num_shards, fact_bytes, input);
      std::optional<ExchangeDecision> hit = cache->LookupExchange(signature);
      if (hit.has_value()) {
        decision = *std::move(hit);
      } else {
        decision = TuneExchange(input, link, num_shards, fact_bytes);
        cache->InsertExchange(signature, decision);
      }
    } else {
      decision = TuneExchange(input, link, num_shards, fact_bytes);
    }
    plan.total_bytes += decision.bytes;
    plan.total_ms += decision.ms;
    plan.decisions.push_back(std::move(decision));
  }
  return plan;
}

}  // namespace model
}  // namespace gpl
