#include "model/exchange_model.h"

namespace gpl {
namespace model {

const char* ExchangeStrategyName(ExchangeStrategy strategy) {
  switch (strategy) {
    case ExchangeStrategy::kCoPartitioned:
      return "co-partitioned";
    case ExchangeStrategy::kBroadcast:
      return "broadcast";
    case ExchangeStrategy::kRepartition:
      return "repartition";
  }
  return "?";
}

ExchangePlan PlanExchange(const std::vector<ExchangeInput>& inputs,
                          const sim::LinkSpec& link, int num_shards,
                          int64_t fact_bytes) {
  ExchangePlan plan;
  plan.decisions.reserve(inputs.size());
  sim::Link cost(link);
  const double n = static_cast<double>(num_shards < 1 ? 1 : num_shards);

  for (const ExchangeInput& input : inputs) {
    ExchangeDecision decision;
    decision.table = input.table;
    if (input.co_partitioned || num_shards <= 1) {
      decision.strategy = ExchangeStrategy::kCoPartitioned;
      decision.bytes = 0;
      decision.ms = 0.0;
    } else {
      const int64_t broadcast_bytes =
          input.bytes * static_cast<int64_t>(num_shards - 1);
      const int64_t repartition_bytes = static_cast<int64_t>(
          static_cast<double>(input.bytes + fact_bytes) * (n - 1.0) / n);
      if (broadcast_bytes <= repartition_bytes) {
        decision.strategy = ExchangeStrategy::kBroadcast;
        decision.bytes = broadcast_bytes;
        // One serialized DMA per receiving device (latency paid per copy).
        decision.ms = static_cast<double>(num_shards - 1) *
                      cost.TransferMs(input.bytes);
      } else {
        decision.strategy = ExchangeStrategy::kRepartition;
        decision.bytes = repartition_bytes;
        // Each device ships its outbound fraction; serialized on the link.
        decision.ms = cost.TransferMs(decision.bytes);
      }
    }
    plan.total_bytes += decision.bytes;
    plan.total_ms += decision.ms;
    plan.decisions.push_back(std::move(decision));
  }
  return plan;
}

}  // namespace model
}  // namespace gpl
