#include "model/tuning_cache.h"

#include <cstdio>
#include <cstring>
#include <iterator>

namespace gpl {
namespace model {

namespace {

/// Appends a double as its raw 64-bit pattern (hex) — exact, no formatting
/// loss, and distinguishes e.g. -0.0 from 0.0.
void AppendBits(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx,",
                static_cast<unsigned long long>(bits));
  out->append(buf);
}

void AppendInt(std::string* out, long long v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld,", v);
  out->append(buf);
}

}  // namespace

TuningCache::TuningCache(size_t max_entries) : max_entries_(max_entries) {}

template <typename Map>
void TuningCache::EvictOneLocked(Map* map, std::list<std::string>* lru) {
  // Same policy as pool::SubplanCache: scan the eviction window at the LRU
  // tail and drop the least re-used entry (recompute cost is uniform for
  // tuning results, so the cost-aware score is just 1 + hits); on a tie the
  // entry closer to the tail loses, keeping the more recently used.
  auto victim = std::prev(lru->end());
  uint64_t victim_score = map->find(*victim)->second.hits;
  auto it = std::prev(lru->end());
  for (int scanned = 1; scanned < kEvictionWindow && it != lru->begin();
       ++scanned) {
    --it;
    const uint64_t score = map->find(*it)->second.hits;
    if (score < victim_score) {
      victim = it;
      victim_score = score;
    }
  }
  auto entry_it = map->find(*victim);
  bytes_ -= static_cast<int64_t>(victim->size() +
                                 sizeof(typename Map::mapped_type));
  map->erase(entry_it);
  lru->erase(victim);
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

std::string TuningCache::SegmentSignature(const sim::DeviceSpec& device,
                                          const SegmentDesc& segment,
                                          const TuningOverrides& overrides,
                                          const std::string& engine_scope) {
  std::string key;
  key.reserve(80 + segment.stages.size() * 160);
  // Engine mode + fusion decision first: a choice tuned for one mode's
  // search space must never alias a hit in another mode.
  key += engine_scope;
  key += '|';
  // Device: the presets are identified by name; num_cus/cache/clock guard
  // against hand-modified specs sharing a name.
  key += device.name;
  key += '|';
  AppendInt(&key, device.num_cus);
  AppendInt(&key, device.cache_bytes);
  AppendInt(&key, device.core_mhz);
  // Segment-wide inputs of the search.
  AppendBits(&key, segment.input_bytes);
  AppendInt(&key, segment.extra_resident_bytes);
  // Per-stage timing descriptor + optimizer cardinality estimates.
  for (const StageDesc& stage : segment.stages) {
    const sim::KernelTimingDesc& t = stage.timing;
    key += t.name;
    key += ':';
    AppendBits(&key, t.compute_inst_per_row);
    AppendBits(&key, t.mem_inst_per_row);
    AppendInt(&key, t.private_bytes_per_item);
    AppendInt(&key, t.local_bytes_per_item);
    AppendInt(&key, t.blocking ? 1 : 0);
    AppendBits(&key, t.random_access_fraction);
    AppendInt(&key, t.random_working_set_bytes);
    AppendBits(&key, stage.rows_in);
    AppendBits(&key, stage.bytes_in);
    AppendBits(&key, stage.rows_out);
    AppendBits(&key, stage.bytes_out);
    key += ';';
  }
  // Knob pins change the search space, so they are part of the key.
  key += '|';
  AppendInt(&key, overrides.tile_bytes);
  AppendInt(&key, overrides.workgroups_per_kernel);
  AppendInt(&key, overrides.has_channel ? 1 : 0);
  if (overrides.has_channel) {
    AppendInt(&key, overrides.channel.num_channels);
    AppendInt(&key, overrides.channel.packet_bytes);
  }
  return key;
}

std::string TuningCache::ExchangePlanSignature(
    const sim::LinkSpec& link, int num_shards, int64_t fact_bytes,
    const std::vector<ExchangeInput>& inputs) {
  std::string key;
  key.reserve(64 + inputs.size() * 64);
  // Version prefix: "xp2" keys the plan-level format with spine-aware
  // pricing. Entries written under the retired per-relation "x|" scheme (or
  // any future shape bump) can never alias this key space.
  key += "xp2|";
  key += link.name;
  key += '|';
  AppendBits(&key, link.gbytes_per_sec);
  AppendBits(&key, link.latency_us);
  AppendInt(&key, num_shards);
  AppendInt(&key, fact_bytes);
  for (const ExchangeInput& input : inputs) {
    key += input.table;
    key += '|';
    AppendInt(&key, input.bytes);
    AppendInt(&key, input.rows);
    AppendInt(&key, input.co_partitioned ? 1 : 0);
    AppendInt(&key, input.spine_bytes);
    key += ';';
  }
  return key;
}

std::optional<ExchangePlan> TuningCache::LookupExchangePlan(
    const std::string& signature) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = exchange_entries_.find(signature);
    if (it != exchange_entries_.end()) {
      exchange_hits_.fetch_add(1, std::memory_order_relaxed);
      ++it->second.hits;
      exchange_lru_.splice(exchange_lru_.begin(), exchange_lru_,
                           it->second.lru_it);
      return it->second.plan;
    }
  }
  exchange_misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void TuningCache::InsertExchangePlan(const std::string& signature,
                                     const ExchangePlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  if (exchange_entries_.count(signature) > 0) return;  // first insert wins
  while (max_entries_ > 0 && exchange_entries_.size() >= max_entries_ &&
         !exchange_lru_.empty()) {
    EvictOneLocked(&exchange_entries_, &exchange_lru_);
  }
  exchange_lru_.push_front(signature);
  ExchangeEntry entry;
  entry.plan = plan;
  entry.lru_it = exchange_lru_.begin();
  exchange_entries_.emplace(signature, std::move(entry));
  bytes_ += static_cast<int64_t>(signature.size() + sizeof(ExchangeEntry));
}

std::optional<TuningChoice> TuningCache::Lookup(const std::string& signature) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(signature);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      ++it->second.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.choice;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void TuningCache::Insert(const std::string& signature,
                         const TuningChoice& choice) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(signature) > 0) return;  // first wins (values identical)
  while (max_entries_ > 0 && entries_.size() >= max_entries_ &&
         !lru_.empty()) {
    EvictOneLocked(&entries_, &lru_);
  }
  lru_.push_front(signature);
  Entry entry;
  entry.choice = choice;
  entry.lru_it = lru_.begin();
  entries_.emplace(signature, std::move(entry));
  bytes_ += static_cast<int64_t>(signature.size() + sizeof(Entry));
}

TuningCacheStats TuningCache::stats() const {
  TuningCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.exchange_hits = exchange_hits_.load(std::memory_order_relaxed);
  stats.exchange_misses = exchange_misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.bytes = bytes_;
    stats.entries =
        static_cast<int64_t>(entries_.size() + exchange_entries_.size());
  }
  return stats;
}

size_t TuningCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t TuningCache::exchange_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exchange_entries_.size();
}

void TuningCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  exchange_entries_.clear();
  lru_.clear();
  exchange_lru_.clear();
  bytes_ = 0;
  evictions_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  exchange_hits_.store(0, std::memory_order_relaxed);
  exchange_misses_.store(0, std::memory_order_relaxed);
}

}  // namespace model
}  // namespace gpl
