#include "model/plan_tuner.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/thread_pool.h"

namespace gpl {
namespace model {

std::vector<int64_t> TileSizeGrid() {
  return {KiB(256), KiB(512), MiB(1), MiB(2), MiB(4), MiB(8), MiB(16)};
}

std::vector<int> WorkgroupGrid(const sim::DeviceSpec& device) {
  // Multiples of #CU so work-groups spread across all CUs (Section 4.1).
  return {device.num_cus, 2 * device.num_cus, 4 * device.num_cus,
          8 * device.num_cus, 16 * device.num_cus};
}

namespace {

/// Channel configs per gap: the Γ-optimal (n, p) for each gap's per-tile
/// payload.
std::vector<sim::ChannelConfig> ChannelsForPayloads(
    const CalibrationTable& calibration, const SegmentDesc& segment,
    int64_t tile_bytes, const TuningOverrides& overrides) {
  const int num_stages = static_cast<int>(segment.stages.size());
  std::vector<sim::ChannelConfig> channels;
  if (num_stages <= 1) return channels;
  const double tiles =
      std::max(1.0, std::ceil(segment.input_bytes /
                              static_cast<double>(std::max<int64_t>(tile_bytes, 1))));
  for (int g = 0; g + 1 < num_stages; ++g) {
    if (overrides.has_channel) {
      channels.push_back(overrides.channel);
      continue;
    }
    const double payload =
        segment.stages[static_cast<size_t>(g)].bytes_out / tiles;
    channels.push_back(
        calibration.Best(static_cast<int64_t>(std::max(payload, 1.0))).config);
  }
  return channels;
}

}  // namespace

TuningChoice TuneSegment(const CostModel& model, const SegmentDesc& segment,
                         const CalibrationTable& calibration,
                         const TuningOverrides& overrides) {
  const int num_stages = static_cast<int>(segment.stages.size());
  GPL_CHECK(num_stages > 0);

  std::vector<int64_t> tile_grid =
      overrides.tile_bytes > 0 ? std::vector<int64_t>{overrides.tile_bytes}
                               : TileSizeGrid();
  std::vector<int> wg_grid =
      overrides.workgroups_per_kernel > 0
          ? std::vector<int>{overrides.workgroups_per_kernel}
          : WorkgroupGrid(model.device());

  // Relative per-row work of each stage, for proportional wg allocation.
  std::vector<double> work(static_cast<size_t>(num_stages), 1.0);
  double max_work = 1.0;
  for (int i = 0; i < num_stages; ++i) {
    const StageDesc& s = segment.stages[static_cast<size_t>(i)];
    work[static_cast<size_t>(i)] =
        std::max(1.0, s.rows_in * (s.timing.compute_inst_per_row +
                                   s.timing.mem_inst_per_row));
    max_work = std::max(max_work, work[static_cast<size_t>(i)]);
  }

  // Enumerate the full candidate grid first (tile outer, wg inner,
  // allocation shape innermost — the same order the serial nested loops
  // visited), then evaluate the candidates over the thread pool.
  struct Candidate {
    int64_t tile_bytes = 0;
    size_t channels_index = 0;  ///< into per-tile channel configs
    std::vector<int> workgroups;
  };
  std::vector<std::vector<sim::ChannelConfig>> channels_per_tile;
  channels_per_tile.reserve(tile_grid.size());
  std::vector<Candidate> candidates;
  candidates.reserve(tile_grid.size() * wg_grid.size() * 2);
  for (int64_t tile : tile_grid) {
    channels_per_tile.push_back(
        ChannelsForPayloads(calibration, segment, tile, overrides));
    for (int wg : wg_grid) {
      // Two allocation shapes per (Δ, wg): uniform and work-proportional.
      Candidate uniform;
      uniform.tile_bytes = tile;
      uniform.channels_index = channels_per_tile.size() - 1;
      uniform.workgroups.assign(static_cast<size_t>(num_stages), wg);
      std::vector<int> proportional(static_cast<size_t>(num_stages));
      for (int i = 0; i < num_stages; ++i) {
        const double frac = work[static_cast<size_t>(i)] / max_work;
        const int scaled = static_cast<int>(std::ceil(
            frac * wg / model.device().num_cus)) * model.device().num_cus;
        proportional[static_cast<size_t>(i)] =
            std::max(model.device().num_cus, scaled);
      }
      const bool keep_proportional = proportional != uniform.workgroups &&
                                     overrides.workgroups_per_kernel == 0;
      candidates.push_back(std::move(uniform));
      if (keep_proportional) {
        Candidate shaped;
        shaped.tile_bytes = tile;
        shaped.channels_index = channels_per_tile.size() - 1;
        shaped.workgroups = std::move(proportional);
        candidates.push_back(std::move(shaped));
      }
    }
  }
  GPL_CHECK(!candidates.empty());

  // Each candidate is estimated independently; the allocation is read
  // through a const reference into the candidate's own storage, so there is
  // no aliasing (the old single-params loop moved the allocation in and back
  // out on every iteration).
  const auto evaluate = [&](const Candidate& c) {
    SegmentParams params;
    params.tile_bytes = c.tile_bytes;
    params.workgroups = c.workgroups;
    params.channels = channels_per_tile[c.channels_index];
    return model.EstimateSegment(segment, params);
  };
  std::vector<SegmentEstimate> estimates(candidates.size());
  ParallelFor(0, static_cast<int64_t>(candidates.size()), /*grain=*/4,
              [&](int64_t b, int64_t e) {
                for (int64_t i = b; i < e; ++i) {
                  estimates[static_cast<size_t>(i)] =
                      evaluate(candidates[static_cast<size_t>(i)]);
                }
              });

  // Deterministic argmin: strict less-than in candidate order, matching the
  // serial search exactly (ties keep the earliest candidate).
  size_t best_index = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (estimates[i].total_cycles < estimates[best_index].total_cycles) {
      best_index = i;
    }
  }
  TuningChoice best;
  best.params.tile_bytes = candidates[best_index].tile_bytes;
  best.params.workgroups = std::move(candidates[best_index].workgroups);
  best.params.channels =
      std::move(channels_per_tile[candidates[best_index].channels_index]);
  best.estimate = std::move(estimates[best_index]);
  return best;
}

namespace {

/// Grid search of Δ for a sequential (kernel-at-a-time or fused) execution
/// of `segment`. The sequential simulator derives its launch width from the
/// rows per tile (KBE-style), so there is no wg dimension to search; the
/// derived width is recorded in params.workgroups for reporting.
/// Deterministic argmin in grid order.
TuningChoice TuneSequential(const CostModel& model, const SegmentDesc& segment,
                            const TuningOverrides& overrides) {
  const size_t num_stages = segment.stages.size();
  const std::vector<int64_t> tile_grid =
      overrides.tile_bytes > 0 ? std::vector<int64_t>{overrides.tile_bytes}
                               : TileSizeGrid();
  const double rows_per_wg = model.device().wavefront_size * 4.0;
  TuningChoice best;
  bool have_best = false;
  for (int64_t tile : tile_grid) {
    SegmentParams params;
    params.tile_bytes = tile;
    const double tiles = std::max(
        1.0, std::ceil(segment.input_bytes /
                       static_cast<double>(std::max<int64_t>(tile, 1))));
    params.workgroups.resize(num_stages);
    for (size_t i = 0; i < num_stages; ++i) {
      const double rows_tile = std::max(
          1.0, std::floor(std::max(segment.stages[i].rows_in, 0.0) / tiles));
      params.workgroups[i] =
          static_cast<int>(std::max(1.0, std::ceil(rows_tile / rows_per_wg)));
    }
    SegmentEstimate est = model.EstimateSegmentSequential(segment, params);
    if (!have_best || est.total_cycles < best.estimate.total_cycles) {
      best.params = std::move(params);
      best.estimate = std::move(est);
      have_best = true;
    }
  }
  return best;
}

}  // namespace

TuningChoice TuneSegmentEngines(const CostModel& model,
                                const SegmentDesc& segment,
                                const CalibrationTable& calibration,
                                const std::vector<int>& fused_group_sizes,
                                const TuningOverrides& overrides) {
  // Candidate 1: the GPL-channel pipeline (the existing search).
  TuningChoice best = TuneSegment(model, segment, calibration, overrides);
  best.engine = SegmentEngine::kGplChannel;
  const double pipelined_cycles = best.estimate.total_cycles;

  // Candidate 2: kernel-at-a-time over the original stages. Strict less-than
  // keeps the pipeline on ties (the established default).
  TuningChoice sequential = TuneSequential(model, segment, overrides);
  sequential.engine = SegmentEngine::kKernelAtATime;
  const double sequential_cycles = sequential.estimate.total_cycles;
  if (sequential_cycles < best.estimate.total_cycles) {
    best = std::move(sequential);
  }

  // Candidate 3: fused chains — only when the fusion pass found one. The
  // fusion term is implicit in the composed description: fewer stages save
  // launch/dispatch overhead and interior streaming traffic, while the
  // summed register footprint raises occupancy pressure in the estimate.
  bool any_fused = false;
  for (int size : fused_group_sizes) any_fused |= size > 1;
  if (any_fused) {
    const SegmentDesc composed = ComposeFusedSegment(segment, fused_group_sizes);
    TuningChoice fused = TuneSequential(model, composed, overrides);
    fused.engine = SegmentEngine::kFused;
    fused.fused_group_sizes = fused_group_sizes;
    GPL_SLOG(Debug, "model")
        .Field("pipelined", pipelined_cycles)
        .Field("sequential", sequential_cycles)
        .Field("fused", fused.estimate.total_cycles)
        << "engine candidates";
    if (fused.estimate.total_cycles < best.estimate.total_cycles) {
      best = std::move(fused);
    }
  }
  return best;
}

}  // namespace model
}  // namespace gpl
