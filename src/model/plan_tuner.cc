#include "model/plan_tuner.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace gpl {
namespace model {

std::vector<int64_t> TileSizeGrid() {
  return {KiB(256), KiB(512), MiB(1), MiB(2), MiB(4), MiB(8), MiB(16)};
}

std::vector<int> WorkgroupGrid(const sim::DeviceSpec& device) {
  // Multiples of #CU so work-groups spread across all CUs (Section 4.1).
  return {device.num_cus, 2 * device.num_cus, 4 * device.num_cus,
          8 * device.num_cus, 16 * device.num_cus};
}

namespace {

/// Channel configs per gap: the Γ-optimal (n, p) for each gap's per-tile
/// payload.
std::vector<sim::ChannelConfig> ChannelsForPayloads(
    const CalibrationTable& calibration, const SegmentDesc& segment,
    int64_t tile_bytes, const TuningOverrides& overrides) {
  const int num_stages = static_cast<int>(segment.stages.size());
  std::vector<sim::ChannelConfig> channels;
  if (num_stages <= 1) return channels;
  const double tiles =
      std::max(1.0, std::ceil(segment.input_bytes /
                              static_cast<double>(std::max<int64_t>(tile_bytes, 1))));
  for (int g = 0; g + 1 < num_stages; ++g) {
    if (overrides.has_channel) {
      channels.push_back(overrides.channel);
      continue;
    }
    const double payload =
        segment.stages[static_cast<size_t>(g)].bytes_out / tiles;
    channels.push_back(
        calibration.Best(static_cast<int64_t>(std::max(payload, 1.0))).config);
  }
  return channels;
}

}  // namespace

TuningChoice TuneSegment(const CostModel& model, const SegmentDesc& segment,
                         const CalibrationTable& calibration,
                         const TuningOverrides& overrides) {
  const int num_stages = static_cast<int>(segment.stages.size());
  GPL_CHECK(num_stages > 0);

  std::vector<int64_t> tile_grid =
      overrides.tile_bytes > 0 ? std::vector<int64_t>{overrides.tile_bytes}
                               : TileSizeGrid();
  std::vector<int> wg_grid =
      overrides.workgroups_per_kernel > 0
          ? std::vector<int>{overrides.workgroups_per_kernel}
          : WorkgroupGrid(model.device());

  // Relative per-row work of each stage, for proportional wg allocation.
  std::vector<double> work(static_cast<size_t>(num_stages), 1.0);
  double max_work = 1.0;
  for (int i = 0; i < num_stages; ++i) {
    const StageDesc& s = segment.stages[static_cast<size_t>(i)];
    work[static_cast<size_t>(i)] =
        std::max(1.0, s.rows_in * (s.timing.compute_inst_per_row +
                                   s.timing.mem_inst_per_row));
    max_work = std::max(max_work, work[static_cast<size_t>(i)]);
  }

  TuningChoice best;
  bool first = true;
  for (int64_t tile : tile_grid) {
    const std::vector<sim::ChannelConfig> channels =
        ChannelsForPayloads(calibration, segment, tile, overrides);
    for (int wg : wg_grid) {
      // Two allocation shapes per (Δ, wg): uniform and work-proportional.
      std::vector<std::vector<int>> allocations;
      allocations.emplace_back(static_cast<size_t>(num_stages), wg);
      std::vector<int> proportional(static_cast<size_t>(num_stages));
      for (int i = 0; i < num_stages; ++i) {
        const double frac = work[static_cast<size_t>(i)] / max_work;
        const int scaled = static_cast<int>(std::ceil(
            frac * wg / model.device().num_cus)) * model.device().num_cus;
        proportional[static_cast<size_t>(i)] =
            std::max(model.device().num_cus, scaled);
      }
      if (proportional != allocations[0] &&
          overrides.workgroups_per_kernel == 0) {
        allocations.push_back(std::move(proportional));
      }

      for (std::vector<int>& alloc : allocations) {
        SegmentParams params;
        params.tile_bytes = tile;
        params.workgroups = std::move(alloc);
        params.channels = channels;
        const SegmentEstimate estimate = model.EstimateSegment(segment, params);
        if (first || estimate.total_cycles < best.estimate.total_cycles) {
          best.params = params;
          best.estimate = estimate;
          first = false;
        }
        alloc = std::move(params.workgroups);  // restore for reuse safety
      }
    }
  }
  return best;
}

}  // namespace model
}  // namespace gpl
