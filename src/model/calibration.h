#ifndef GPL_MODEL_CALIBRATION_H_
#define GPL_MODEL_CALIBRATION_H_

#include <vector>

#include "sim/channel.h"
#include "sim/engine.h"

namespace gpl {
namespace model {

/// One measured point of the channel-throughput relationship Γ(n, p, d)
/// (Eq. 1 / Eq. 11).
struct CalibrationPoint {
  int num_channels = 1;
  int packet_bytes = 16;
  int64_t data_bytes = 0;
  double throughput_bytes_per_cycle = 0.0;
};

/// The calibrated channel-throughput relationship. Obtained exactly as in
/// Section 2.1: a producer-consumer kernel chain pushes N integers through a
/// channel for every grid point of (number of channels, packet size, data
/// size); the measured throughputs become the model's Γ.
///
/// On devices without a packet-size knob (NVIDIA, Appendix A.1), only
/// (n, d) is swept and Γ(n, d) is recorded (Eq. 11).
///
/// Thread-safety: immutable after Run(); Throughput()/Best() and the grid
/// accessors are lookup-only and safe to call concurrently — one table is
/// shared by every worker engine of a QueryService.
class CalibrationTable {
 public:
  /// Runs the producer-consumer microbenchmark over the calibration grid.
  static CalibrationTable Run(const sim::Simulator& simulator);

  /// Γ lookup: throughput (bytes/cycle) for a configuration, interpolating
  /// to the nearest measured data size (log-scale nearest neighbour).
  double Throughput(int num_channels, int packet_bytes, int64_t data_bytes) const;

  /// Best (n, p) for transferring `data_bytes` (the n_max/p_max of Section
  /// 4.1) and the corresponding throughput.
  struct BestConfig {
    sim::ChannelConfig config;
    double throughput_bytes_per_cycle = 0.0;
  };
  BestConfig Best(int64_t data_bytes) const;

  const std::vector<CalibrationPoint>& points() const { return points_; }
  const std::vector<int>& channel_grid() const { return channel_grid_; }
  const std::vector<int>& packet_grid() const { return packet_grid_; }
  const std::vector<int64_t>& data_grid() const { return data_grid_; }

 private:
  std::vector<CalibrationPoint> points_;
  std::vector<int> channel_grid_;
  std::vector<int> packet_grid_;
  std::vector<int64_t> data_grid_;
};

/// Runs one producer-consumer transfer of `data_bytes` through a channel
/// with the given configuration and returns the simulated result (also used
/// directly by the Figure 2 / Figure 23 benches).
sim::SimResult RunProducerConsumer(const sim::Simulator& simulator,
                                   const sim::ChannelConfig& config,
                                   int64_t data_bytes);

}  // namespace model
}  // namespace gpl

#endif  // GPL_MODEL_CALIBRATION_H_
