#ifndef GPL_MODEL_EXCHANGE_MODEL_H_
#define GPL_MODEL_EXCHANGE_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/link.h"

namespace gpl {
namespace model {

/// How a build relation reaches the shards of a data-parallel execution.
enum class ExchangeStrategy {
  /// Already partitioned on the join key alongside the fact table; the join
  /// is shard-local and nothing crosses a link at query time.
  kCoPartitioned,
  /// Ship one full copy of the relation to every other device.
  kBroadcast,
  /// Hash-repartition both sides of the join on the join key. Only cheaper
  /// than broadcast when the relation is large relative to the fact side.
  kRepartition,
};

const char* ExchangeStrategyName(ExchangeStrategy strategy);

/// One relation participating in a sharded query, as seen by the exchange
/// model. `bytes`/`rows` cover only the columns the query references (what
/// would actually move).
struct ExchangeInput {
  std::string table;
  int64_t bytes = 0;
  int64_t rows = 0;
  /// True when the partitioner co-located this relation with the fact table
  /// on the join key (e.g. orders hash-partitioned by orderkey).
  bool co_partitioned = false;
};

/// The chosen strategy and modeled link cost for one relation.
struct ExchangeDecision {
  std::string table;
  ExchangeStrategy strategy = ExchangeStrategy::kBroadcast;
  /// Bytes crossing inter-device links under the chosen strategy.
  int64_t bytes = 0;
  /// Serialized transfer time over the link (the exchange is charged on the
  /// source device's DMA engine, so transfers do not overlap).
  double ms = 0.0;
};

/// Exchange plan for one query: per-relation decisions plus totals.
struct ExchangePlan {
  std::vector<ExchangeDecision> decisions;
  int64_t total_bytes = 0;
  double total_ms = 0.0;
};

/// Chooses broadcast-vs-repartition per build relation and prices the data
/// movement over `link` for an `num_shards`-way sharded execution.
///
/// Cost model (bytes crossing links):
///   broadcast:    bytes * (N-1)            — every other device gets a copy;
///   repartition:  (bytes + fact_bytes) * (N-1)/N
///                 — every row of both sides relocates with probability
///                 (N-1)/N, and moving the build side alone is useless: the
///                 fact side must be re-partitioned onto the same key too.
/// Co-partitioned relations cost nothing at query time. With TPC-H-shaped
/// data (dimensions much smaller than the fact table) broadcast always wins;
/// repartition exists for the inverted case of two comparable fact-sized
/// relations.
ExchangePlan PlanExchange(const std::vector<ExchangeInput>& inputs,
                          const sim::LinkSpec& link, int num_shards,
                          int64_t fact_bytes);

/// Prices one relation under one specific strategy (no choosing). The
/// building block TuneExchange minimizes over; exposed so tests can verify
/// the tuner against a brute-force argmin.
ExchangeDecision PriceExchange(const ExchangeInput& input,
                               ExchangeStrategy strategy,
                               const sim::LinkSpec& link, int num_shards,
                               int64_t fact_bytes);

/// Chooses the cheapest legal strategy for one relation: co-partitioned
/// relations (and single-shard groups) move nothing; otherwise the argmin
/// of PriceExchange over {broadcast, repartition} by bytes crossing links,
/// broadcast winning ties. Deterministic.
ExchangeDecision TuneExchange(const ExchangeInput& input,
                              const sim::LinkSpec& link, int num_shards,
                              int64_t fact_bytes);

class TuningCache;

/// Memoizing overload: each per-relation decision is keyed by
/// TuningCache::ExchangeSignature and cached, so a service replaying the
/// same sharded queries prices the exchange once. `cache == nullptr` falls
/// back to fresh tuning. Exact-match keying: a hit provably returns what
/// TuneExchange would recompute.
ExchangePlan PlanExchange(const std::vector<ExchangeInput>& inputs,
                          const sim::LinkSpec& link, int num_shards,
                          int64_t fact_bytes, TuningCache* cache);

}  // namespace model
}  // namespace gpl

#endif  // GPL_MODEL_EXCHANGE_MODEL_H_
