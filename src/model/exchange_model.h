#ifndef GPL_MODEL_EXCHANGE_MODEL_H_
#define GPL_MODEL_EXCHANGE_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/link.h"

namespace gpl {
namespace model {

/// How a build relation reaches the shards of a data-parallel execution.
enum class ExchangeStrategy {
  /// Already partitioned on the join key alongside the fact table; the join
  /// is shard-local and nothing crosses a link at query time.
  kCoPartitioned,
  /// Ship one full copy of the relation to every other device.
  kBroadcast,
  /// Hash-repartition both sides of the relation's attach join on its key.
  /// The relation ships its outbound fraction, and the probe-spine rows at
  /// the attach join relocate with it — but that spine relocation happens at
  /// most once per query, however many relations repartition.
  kRepartition,
};

const char* ExchangeStrategyName(ExchangeStrategy strategy);

/// One relation participating in a sharded query, as seen by the exchange
/// model. `bytes`/`rows` cover only the columns the query references (what
/// would actually move).
struct ExchangeInput {
  std::string table;
  int64_t bytes = 0;
  int64_t rows = 0;
  /// True when the partitioner co-located this relation with the fact table
  /// on the join key (e.g. orders hash-partitioned by orderkey).
  bool co_partitioned = false;
  /// Bytes of the fact-side subtree at this relation's attach join — the
  /// probe-spine rows that would co-relocate under repartition. Joins high
  /// on the spine sit above selective filters and earlier joins, so their
  /// spine is far narrower than the raw fact scan. 0 = unknown; the model
  /// then falls back to the full fact-scan bytes (conservative).
  int64_t spine_bytes = 0;
};

/// The chosen strategy and modeled link cost for one relation.
struct ExchangeDecision {
  std::string table;
  ExchangeStrategy strategy = ExchangeStrategy::kBroadcast;
  /// Bytes crossing inter-device links under the chosen strategy. For
  /// kRepartition this includes `spine_bytes` when this decision pays the
  /// shared spine relocation (see ExchangePlan).
  int64_t bytes = 0;
  /// Serialized transfer time over the link (the exchange is charged on the
  /// source device's DMA engine, so transfers do not overlap).
  double ms = 0.0;
  /// kRepartition only: the portion of `bytes` that is the spine relocation
  /// included in this decision. 0 when another decision in the same plan
  /// already pays it (the spine relocates at most once per plan).
  int64_t spine_bytes = 0;
};

/// Exchange plan for one query: per-relation decisions plus totals.
struct ExchangePlan {
  std::vector<ExchangeDecision> decisions;
  int64_t total_bytes = 0;
  double total_ms = 0.0;
  /// Set when at least one relation repartitions: the relation whose attach
  /// join re-keys the probe spine (the widest spine among the repartitioning
  /// relations — relocating it once covers the others), and the link bytes
  /// of that one relocation.
  bool has_spine = false;
  std::string spine_table;
  int64_t spine_bytes = 0;
  /// Counterfactual: total link bytes had every non-co-partitioned relation
  /// broadcast (the pre-repartition baseline). Benchmark gates compare the
  /// chosen plan's bytes against this to prove repartitioning paid off.
  int64_t all_broadcast_bytes = 0;
};

/// Chooses broadcast-vs-repartition per relation and prices the data
/// movement over `link` for an `num_shards`-way sharded execution.
///
/// Cost model (bytes crossing links):
///   broadcast:    bytes * (N-1)            — every other device gets a copy,
///                 one serialized DMA per copy (latency paid N-1 times);
///   repartition:  bytes * (N-1)/N own traffic, plus one shared relocation
///                 of the probe spine at the attach join,
///                 spine_bytes * (N-1)/N — every row of both sides relocates
///                 with probability (N-1)/N. The spine relocation is charged
///                 at most ONCE per PlanExchange call (the fact side moves
///                 once, not once per dimension): the widest spine among the
///                 repartitioning relations pays it.
/// Co-partitioned relations cost nothing at query time. The plan is the
/// exact argmin over repartition subsets by total ms (bytes break ties, the
/// all-broadcast plan wins remaining ties) — deterministic.
ExchangePlan PlanExchange(const std::vector<ExchangeInput>& inputs,
                          const sim::LinkSpec& link, int num_shards,
                          int64_t fact_bytes);

/// Prices one relation under one specific strategy (no choosing), as if it
/// were the only relation exchanged: kRepartition includes the relation's
/// own spine relocation (spine_bytes, falling back to fact_bytes when 0).
/// The building block TuneExchange minimizes over; exposed so tests can
/// verify the tuner against a brute-force argmin.
ExchangeDecision PriceExchange(const ExchangeInput& input,
                               ExchangeStrategy strategy,
                               const sim::LinkSpec& link, int num_shards,
                               int64_t fact_bytes);

/// Chooses the cheapest legal strategy for one relation in isolation:
/// co-partitioned relations (and single-shard groups) move nothing;
/// otherwise the argmin of PriceExchange over {broadcast, repartition} by
/// modeled ms — bytes break ties, broadcast wins remaining ties (a repeated
/// per-copy latency is real simulated time, so a small relation crossing a
/// high-latency link once can legitimately beat N-1 tiny copies).
/// Deterministic.
ExchangeDecision TuneExchange(const ExchangeInput& input,
                              const sim::LinkSpec& link, int num_shards,
                              int64_t fact_bytes);

class TuningCache;

/// Memoizing overload: the whole plan is keyed by
/// TuningCache::ExchangePlanSignature and cached, so a service replaying the
/// same sharded queries prices the exchange once. Plan-level (not
/// per-relation) keying is required: the shared spine relocation couples the
/// decisions, so a relation's choice depends on every other input in the
/// call. `cache == nullptr` falls back to fresh planning. Exact-match
/// keying: a hit provably returns what PlanExchange would recompute.
ExchangePlan PlanExchange(const std::vector<ExchangeInput>& inputs,
                          const sim::LinkSpec& link, int num_shards,
                          int64_t fact_bytes, TuningCache* cache);

}  // namespace model
}  // namespace gpl

#endif  // GPL_MODEL_EXCHANGE_MODEL_H_
