#ifndef GPL_MODEL_PLAN_TUNER_H_
#define GPL_MODEL_PLAN_TUNER_H_

#include <vector>

#include "model/cost_model.h"

namespace gpl {
namespace model {

/// The parameter choice produced by the tuner for one segment, plus the
/// model's prediction for it.
struct TuningChoice {
  SegmentParams params;
  SegmentEstimate estimate;
  /// Which execution engine the estimate (and the choice) is for. TuneSegment
  /// always produces kGplChannel; TuneSegmentEngines picks the cheapest of
  /// the three.
  SegmentEngine engine = SegmentEngine::kGplChannel;
  /// When engine == kFused: the fusion grouping the choice was priced for
  /// (consecutive run lengths over the segment's stages). Empty otherwise.
  std::vector<int> fused_group_sizes;
};

/// Overrides for individual knobs (0 / empty = let the tuner search). Used
/// by the parameter-sweep benches (Figures 12-15) to pin one knob while the
/// rest stay at their defaults.
struct TuningOverrides {
  int64_t tile_bytes = 0;
  int workgroups_per_kernel = 0;  ///< uniform wg_Ki for every stage
  bool has_channel = false;
  sim::ChannelConfig channel;
};

/// Searches the solution space of Section 4.1 — Δ, wg_Ki, and the channel
/// configuration (n, p) — for the setting minimizing the estimated segment
/// time T_Sk. The channel configuration per gap comes from the calibrated
/// Γ's best setting for the gap's payload (n_max/p_max); Δ is swept over
/// {256 KB .. 16 MB}; wg_Ki over multiples of #CU, both uniformly and
/// proportionally to estimated per-kernel work.
TuningChoice TuneSegment(const CostModel& model, const SegmentDesc& segment,
                         const CalibrationTable& calibration,
                         const TuningOverrides& overrides = {});

/// Three-way per-segment engine selection for the fused mode: runs the
/// GPL-channel search (TuneSegment), a kernel-at-a-time search
/// (EstimateSegmentSequential on the original stages), and — when
/// `fused_group_sizes` contains a run longer than 1 — a fused search
/// (EstimateSegmentSequential on the ComposeFusedSegment description), and
/// returns the deterministic argmin. Ties keep the earlier engine in the
/// order pipelined < sequential < fused, so existing behavior wins when the
/// model sees no benefit.
TuningChoice TuneSegmentEngines(const CostModel& model,
                                const SegmentDesc& segment,
                                const CalibrationTable& calibration,
                                const std::vector<int>& fused_group_sizes,
                                const TuningOverrides& overrides = {});

/// The Δ grid used by the tuner (also the x-axis of Figures 12/13/25/26).
std::vector<int64_t> TileSizeGrid();

/// The wg multiplier grid (the S1..S7 settings of Figures 14/15 use
/// consecutive powers of two starting at 2).
std::vector<int> WorkgroupGrid(const sim::DeviceSpec& device);

}  // namespace model
}  // namespace gpl

#endif  // GPL_MODEL_PLAN_TUNER_H_
