#ifndef GPL_MODEL_TUNING_CACHE_H_
#define GPL_MODEL_TUNING_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "model/exchange_model.h"
#include "model/plan_tuner.h"
#include "sim/device.h"
#include "sim/link.h"

namespace gpl {
namespace model {

/// Hit/miss counters of a TuningCache — one consistent-enough snapshot for
/// stats reporting (the counters are monotonic atomics). Segment-tuning and
/// exchange-planning lookups are counted separately so segment hit-rate
/// gates are unaffected by how many exchange decisions a query prices.
struct TuningCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t exchange_hits = 0;
  uint64_t exchange_misses = 0;
  /// Bounding accounting: entries dropped by the LRU/cost-aware policy,
  /// approximate retained bytes (keys + values), and retained entry count
  /// (segment + exchange maps combined).
  uint64_t evictions = 0;
  int64_t bytes = 0;
  int64_t entries = 0;
  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// Memoizes TuneSegment results keyed by an exact segment signature
/// (device + stage timing descriptors + cardinalities + overrides), so a
/// service replaying the same plans pays the grid search once and
/// steady-state OptimizeWallMs() collapses to a hash lookup.
///
/// Exact-match keying is deliberate: TuneSegment is deterministic, so a hit
/// on an identical signature provably returns the same TuningChoice a fresh
/// search would — simulated cycle counts cannot change. Bucketing the
/// cardinalities was rejected because a hit computed for a *different*
/// cardinality could pick different parameters than fresh tuning, silently
/// altering simulated timing. Repeated identical queries (the service's
/// steady state) still hit at 100%.
///
/// Thread-safe; shared across QueryService worker engines. Concurrent
/// first-misses on one key both tune and both insert — insertion is
/// first-wins and the values are identical, so this is benign.
class TuningCache {
 public:
  /// `max_entries` bounds each map (segment choices and exchange plans)
  /// independently. Past the bound the cache evicts with the same policy as
  /// pool::SubplanCache — among the `kEvictionWindow` least-recently-used
  /// entries, drop the least re-used (recompute cost is uniform here, so the
  /// cost-aware score degenerates to 1 + hits); ties keep the more recently
  /// used. 0 means unbounded.
  explicit TuningCache(size_t max_entries = kDefaultMaxEntries);

  static constexpr size_t kDefaultMaxEntries = 65536;
  static constexpr int kEvictionWindow = 4;

  TuningCache(const TuningCache&) = delete;
  TuningCache& operator=(const TuningCache&) = delete;

  /// The exact memoization key for one segment on one device. Floating
  /// cardinalities enter as raw bit patterns, not formatted decimals, so no
  /// two distinct descriptions collide.
  ///
  /// `engine_scope` names the engine mode (and, for the fused mode, the
  /// fusion grouping) the choice was tuned for — e.g. "gpl", "noce",
  /// "fused:2,1". Different modes search different spaces and produce
  /// TuningChoices with different engine fields, so a choice cached under
  /// one mode must never be served to another.
  static std::string SegmentSignature(const sim::DeviceSpec& device,
                                      const SegmentDesc& segment,
                                      const TuningOverrides& overrides,
                                      const std::string& engine_scope);

  /// Returns the memoized choice, counting a hit; nullopt counts a miss.
  std::optional<TuningChoice> Lookup(const std::string& signature);

  /// Memoizes a freshly tuned choice (first insert wins).
  void Insert(const std::string& signature, const TuningChoice& choice);

  /// Exact memoization key for one whole exchange plan: link spec, shard
  /// count, fact bytes, and every relation's model inputs (including its
  /// attach-join spine bytes) in call order. Plan-level keying is required —
  /// the shared spine relocation couples the per-relation decisions, so a
  /// decision cached against one input set must never be served to another.
  /// The key carries a format-version prefix so entries written by an older
  /// proof/pricing shape can never cross-serve a newer one. Same exactness
  /// rationale as SegmentSignature — PlanExchange is deterministic, so a
  /// hit provably equals fresh planning.
  static std::string ExchangePlanSignature(
      const sim::LinkSpec& link, int num_shards, int64_t fact_bytes,
      const std::vector<ExchangeInput>& inputs);

  /// Returns the memoized exchange plan, counting an exchange hit; nullopt
  /// counts an exchange miss.
  std::optional<ExchangePlan> LookupExchangePlan(const std::string& signature);

  /// Memoizes a freshly computed exchange plan (first insert wins).
  void InsertExchangePlan(const std::string& signature,
                          const ExchangePlan& plan);

  TuningCacheStats stats() const;
  size_t size() const;           ///< memoized segment choices
  size_t exchange_size() const;  ///< memoized exchange plans
  void Clear();  ///< drops entries and resets the counters

 private:
  struct Entry {
    TuningChoice choice;
    uint64_t hits = 0;
    std::list<std::string>::iterator lru_it;
  };
  struct ExchangeEntry {
    ExchangePlan plan;
    uint64_t hits = 0;
    std::list<std::string>::iterator lru_it;
  };

  /// Drops the least re-used entry among the window at the LRU tail of
  /// `map`/`lru` (ties keep the more recently used). Requires mu_ held.
  template <typename Map>
  void EvictOneLocked(Map* map, std::list<std::string>* lru);

  const size_t max_entries_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::unordered_map<std::string, ExchangeEntry> exchange_entries_;
  std::list<std::string> lru_;           ///< front = most recently used
  std::list<std::string> exchange_lru_;  ///< front = most recently used
  int64_t bytes_ = 0;  ///< approximate retained bytes; guarded by mu_
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> exchange_hits_{0};
  std::atomic<uint64_t> exchange_misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace model
}  // namespace gpl

#endif  // GPL_MODEL_TUNING_CACHE_H_
