#include "model/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "sim/cache_model.h"
#include "sim/occupancy.h"

namespace gpl {
namespace model {

const char* SegmentEngineName(SegmentEngine engine) {
  switch (engine) {
    case SegmentEngine::kGplChannel:
      return "pipelined";
    case SegmentEngine::kKernelAtATime:
      return "sequential";
    case SegmentEngine::kFused:
      return "fused";
  }
  return "unknown";
}

StageDesc ComposeFusedStage(const std::vector<StageDesc>& stages, size_t first,
                            size_t count) {
  GPL_CHECK(count >= 1 && first + count <= stages.size());
  const StageDesc& head = stages[first];
  if (count == 1) return head;

  StageDesc fused;
  fused.rows_in = head.rows_in;
  fused.bytes_in = head.bytes_in;
  const StageDesc& tail = stages[first + count - 1];
  fused.rows_out = tail.rows_out;
  fused.bytes_out = tail.bytes_out;

  sim::KernelTimingDesc& t = fused.timing;
  t.name = "fused(";
  // Accumulated below — clear the descriptor defaults first.
  t.compute_inst_per_row = 0.0;
  t.random_working_set_bytes = 0;
  const double head_rows = std::max(head.rows_in, 1.0);
  double streaming_inst = 0.0;  // survives only for the fused input read
  double random_inst = 0.0;     // side-structure accesses always hit memory
  int64_t private_sum = 0;
  int64_t private_max = 0;
  int64_t local_sum = 0;
  int64_t local_max = 0;
  for (size_t i = first; i < first + count; ++i) {
    const StageDesc& s = stages[i];
    if (i > first) t.name += '+';
    t.name += s.timing.name;
    // Per-row counts are per *that stage's* input row; normalize to the
    // fused kernel's input rows so the composed per-row numbers are exact.
    const double ratio = std::max(s.rows_in, 0.0) / head_rows;
    t.compute_inst_per_row += s.timing.compute_inst_per_row * ratio;
    const double mem = s.timing.mem_inst_per_row * ratio;
    random_inst += mem * s.timing.random_access_fraction;
    if (i == first) {
      streaming_inst += mem * (1.0 - s.timing.random_access_fraction);
    }
    // Interior stages' streaming accesses vanish: the hand-off stays in
    // registers. Their random accesses (hash probes) remain.
    t.random_working_set_bytes += s.timing.random_working_set_bytes;
    private_sum += s.timing.private_bytes_per_item;
    private_max = std::max(private_max, s.timing.private_bytes_per_item);
    local_sum += s.timing.local_bytes_per_item;
    local_max = std::max(local_max, s.timing.local_bytes_per_item);
  }
  t.name += ')';
  // Register/occupancy pressure of the composed body: the stages execute
  // sequentially per item, so the compiler reuses part of each stage's
  // registers; max + half the rest is the conservative-but-reused footprint
  // (the straight sum would overstate the occupancy hit).
  t.private_bytes_per_item = private_max + (private_sum - private_max) / 2;
  t.local_bytes_per_item = local_max + (local_sum - local_max) / 2;
  t.mem_inst_per_row = streaming_inst + random_inst;
  t.random_access_fraction =
      t.mem_inst_per_row > 0.0 ? random_inst / t.mem_inst_per_row : 0.0;
  t.blocking = false;
  return fused;
}

SegmentDesc ComposeFusedSegment(const SegmentDesc& segment,
                                const std::vector<int>& group_sizes) {
  SegmentDesc fused;
  fused.input_bytes = segment.input_bytes;
  fused.extra_resident_bytes = segment.extra_resident_bytes;
  size_t next = 0;
  for (int size : group_sizes) {
    GPL_CHECK(size >= 1);
    fused.stages.push_back(
        ComposeFusedStage(segment.stages, next, static_cast<size_t>(size)));
    next += static_cast<size_t>(size);
  }
  GPL_CHECK(next == segment.stages.size())
      << "group sizes must cover every stage";
  return fused;
}

CostModel::CostModel(const sim::DeviceSpec& device,
                     const CalibrationTable* calibration)
    : device_(device), calibration_(calibration), cache_(device.cache_bytes) {
  GPL_CHECK(calibration_ != nullptr);
}

SegmentEstimate CostModel::EstimateSegment(const SegmentDesc& segment,
                                           const SegmentParams& params) const {
  SegmentEstimate est;
  const int num_stages = static_cast<int>(segment.stages.size());
  GPL_CHECK(num_stages > 0);
  GPL_CHECK(static_cast<int>(params.workgroups.size()) == num_stages);

  // r_Ki: number of tiles (identical across the segment's kernels).
  const double tiles = std::max(
      1.0, std::ceil(segment.input_bytes /
                     static_cast<double>(std::max<int64_t>(params.tile_bytes, 1))));

  // Eq. 2: occupancy constraints over the concurrently resident kernels.
  std::vector<sim::ResourceRequest> requests;
  requests.reserve(static_cast<size_t>(num_stages));
  for (int i = 0; i < num_stages; ++i) {
    sim::ResourceRequest req;
    req.private_bytes_per_item = segment.stages[static_cast<size_t>(i)]
                                     .timing.private_bytes_per_item;
    req.local_bytes_per_item =
        segment.stages[static_cast<size_t>(i)].timing.local_bytes_per_item;
    req.requested_workgroups = params.workgroups[static_cast<size_t>(i)];
    requests.push_back(req);
  }
  const sim::OccupancyResult occ = sim::ComputeOccupancy(device_, requests);

  // Cache residency of channel traffic: in-flight channel data competes with
  // the tile's hot scan window and the segment's hash tables.
  int64_t inflight = 0;
  for (size_t g = 0; g + 1 < static_cast<size_t>(num_stages); ++g) {
    const sim::ChannelConfig& cfg =
        g < params.channels.size() ? params.channels[g] : sim::ChannelConfig{};
    inflight += static_cast<int64_t>(cfg.num_channels) *
                device_.channel_capacity_bytes_per_channel;
  }
  const int64_t competing =
      params.tile_bytes / 2 + segment.extra_resident_bytes;
  const double chan_residency = cache_.ChannelResidency(inflight, competing);
  const int64_t competing_for_random =
      params.tile_bytes / 2 + inflight + segment.extra_resident_bytes;

  const double w = device_.cycles_per_instr;
  const double wf = static_cast<double>(device_.wavefront_size);
  const double num_cus = static_cast<double>(device_.num_cus);

  est.kernel_cycles.resize(static_cast<size_t>(num_stages), 0.0);
  std::vector<double> waves_per_stage(static_cast<size_t>(num_stages), 1.0);
  double sum_kernel_cycles = 0.0;

  for (int i = 0; i < num_stages; ++i) {
    const StageDesc& stage = segment.stages[static_cast<size_t>(i)];
    const int wg = std::max(1, params.workgroups[static_cast<size_t>(i)]);
    const int slots = std::max(1, occ.active_slots[static_cast<size_t>(i)]);

    const double rows_tile = stage.rows_in / tiles;
    const double rows_wg = rows_tile / wg;
    const double iters_wg = std::ceil(std::max(rows_wg, 0.0) / wf);

    // Eq. 3/4: wall-clock computation time per tile. wg work-groups spread
    // over the CUs' ALU pipelines; occupancy (slots) caps how many are
    // resident, so work beyond the slots serializes (req_Ki).
    const double parallel =
        std::min({static_cast<double>(wg), static_cast<double>(slots), num_cus});
    const double waves = std::ceil(static_cast<double>(wg) / parallel);
    waves_per_stage[static_cast<size_t>(i)] = waves;
    const double c_ki = iters_wg * stage.timing.compute_inst_per_row * w * waves;

    // Eq. 5/6: wall-clock memory time per tile.
    double m_ki = 0.0;
    double dc_ki = 0.0;
    const bool reads_global = (i == 0);  // leaf kernel (set_l); set_b kernels
                                         // start their own segments
    const double accesses_wg = iters_wg * stage.timing.mem_inst_per_row;
    // cr_Ki: "profiled" from the cache model, as the paper profiles the
    // first tile with CodeXL.
    double cr = cache_.StreamingHitRatio(8);
    if (stage.timing.random_access_fraction > 0.0) {
      const double rh = cache_.RandomHitRatio(
          stage.timing.random_working_set_bytes, competing_for_random);
      cr = (1.0 - stage.timing.random_access_fraction) * cr +
           stage.timing.random_access_fraction * rh;
    }
    // Co-resident wavefronts of all concurrent kernels hide latency.
    int total_slots = 0;
    for (int j = 0; j < num_stages; ++j) {
      total_slots += std::max(1, occ.active_slots[static_cast<size_t>(j)]);
    }
    const double hide = static_cast<double>(std::clamp(
        total_slots / device_.num_cus, 1, device_.latency_hiding_wavefronts));
    const double latency =
        (1.0 - cr) * device_.global_mem_latency + cr * device_.cache_latency;
    const double latency_wall = accesses_wg * latency / hide * waves;
    if (reads_global) {
      // Eq. 5: streaming global reads, bandwidth-floored.
      const double bw_wall =
          (stage.bytes_in / tiles) / device_.global_bw_bytes_per_cycle;
      m_ki = std::max(latency_wall, bw_wall);
    } else {
      // Eq. 6: channel transfer at the calibrated throughput Γ, corrected
      // for this segment's cache pressure.
      const sim::ChannelConfig& cfg =
          static_cast<size_t>(i - 1) < params.channels.size()
              ? params.channels[static_cast<size_t>(i - 1)]
              : sim::ChannelConfig{};
      const double payload_tile = stage.bytes_in / tiles;
      double gamma = calibration_->Throughput(
          cfg.num_channels, cfg.packet_bytes,
          static_cast<int64_t>(std::max(payload_tile, 1.0)));
      gamma *= std::max(chan_residency, 0.05);
      dc_ki = payload_tile / std::max(gamma, 1e-6);
      // Random side-structure accesses (hash probes) still hit memory.
      m_ki = latency_wall;
    }
    // The last kernel's output is materialized in global memory.
    if (i == num_stages - 1 && stage.bytes_out > 0.0) {
      m_ki += (stage.bytes_out / tiles) / device_.global_bw_bytes_per_cycle;
    }

    // Eq. 7, aggregated over tiles.
    const double t_ki = (c_ki + m_ki + dc_ki) * tiles;
    est.kernel_cycles[static_cast<size_t>(i)] = t_ki;
    sum_kernel_cycles += t_ki;
    est.compute_cycles += c_ki * tiles;
    est.memory_cycles += m_ki * tiles;
    est.channel_cycles += dc_ki * tiles;
  }

  // Eq. 8: delay between adjacent kernels from imbalanced execution speeds.
  // Only part of the imbalance is exposed (slack overlaps with other
  // kernels' work), hence the damping factor.
  constexpr double kDelayExposure = 0.25;
  for (int i = 0; i + 1 < num_stages; ++i) {
    est.delay_cycles += kDelayExposure *
                        std::abs(est.kernel_cycles[static_cast<size_t>(i)] -
                                 est.kernel_cycles[static_cast<size_t>(i + 1)]);
  }
  // Channel-capacity contention: a producer blocks on reservation when the
  // channel holds only a few work-group payloads, capping the in-flight
  // parallelism of the producer/consumer pair.
  for (int i = 0; i + 1 < num_stages; ++i) {
    const StageDesc& producer = segment.stages[static_cast<size_t>(i)];
    const int wg = std::max(1, params.workgroups[static_cast<size_t>(i)]);
    const double payload_wg = producer.bytes_out / tiles / wg;
    if (payload_wg <= 1.0) continue;
    const sim::ChannelConfig& cfg =
        static_cast<size_t>(i) < params.channels.size()
            ? params.channels[static_cast<size_t>(i)]
            : sim::ChannelConfig{};
    const double capacity =
        std::max(static_cast<double>(cfg.num_channels) *
                     device_.channel_capacity_bytes_per_channel,
                 3.0 * payload_wg);  // the simulator guarantees 3 payloads
    const double inflight_wgs = capacity / payload_wg;
    const int slots_i = std::max(1, occ.active_slots[static_cast<size_t>(i)]);
    const double parallel_i =
        std::min(static_cast<double>(wg), static_cast<double>(slots_i));
    // Outstanding reservations gate the producer directly: with fewer
    // in-flight payloads than parallel work-groups, its effective
    // parallelism drops to `inflight_wgs`.
    const double factor = std::max(0.0, parallel_i / inflight_wgs - 1.0);
    est.delay_cycles += factor * est.kernel_cycles[static_cast<size_t>(i)];
  }

  // Pipeline fill/drain delay: a consumer's first work-group cannot start
  // before the producer's first work-group commits, so one "wave" of every
  // stage trickles through the pipeline before it reaches steady state. The
  // exposed fraction shrinks as more waves (tiles x waves per tile) flow.
  {
    double fill = 0.0;
    double total_waves = 0.0;
    for (int i = 0; i < num_stages; ++i) {
      const double waves = waves_per_stage[static_cast<size_t>(i)];
      fill += est.kernel_cycles[static_cast<size_t>(i)] / (tiles * waves);
      total_waves += tiles * waves;
    }
    const double avg_waves = total_waves / num_stages;
    double exposure = static_cast<double>(num_stages) /
                      (avg_waves + static_cast<double>(num_stages));
    // Thrashed channels lengthen every hand-off, compounding the fill
    // bubbles: expose up to the whole fill time.
    exposure = std::min(1.0, exposure * (1.0 + 2.0 * (1.0 - chan_residency)));
    est.delay_cycles += exposure * fill;
  }

  // Eq. 9: ideal overlap across the C-deep concurrent pipeline, plus the
  // host-side overheads (kernel launches and per-tile scheduling).
  const double c_eff =
      std::min<double>(device_.concurrent_kernels, num_stages);
  est.total_cycles =
      sum_kernel_cycles / c_eff + est.delay_cycles +
      static_cast<double>(device_.kernel_launch_cycles) * num_stages +
      static_cast<double>(device_.tile_dispatch_cycles) * tiles;
  return est;
}

SegmentEstimate CostModel::EstimateSegmentSequential(
    const SegmentDesc& segment, const SegmentParams& params) const {
  SegmentEstimate est;
  const int num_stages = static_cast<int>(segment.stages.size());
  GPL_CHECK(num_stages > 0);

  // This mirrors sim::Simulator::RunSequentialTiles / RunKernelBatch formula
  // for formula — the only residual error is cardinality estimation (λ vs
  // observed rows), exactly like EstimateSegment vs RunPipeline. The
  // sequential path derives its work-group count from the rows per tile
  // (KBE-style launches), so params.workgroups is not consulted.
  const double tiles = std::max(
      1.0, std::ceil(segment.input_bytes /
                     static_cast<double>(std::max<int64_t>(params.tile_bytes, 1))));

  const double wf = static_cast<double>(device_.wavefront_size);
  // Rows one KBE-style work-group covers (sim's kKbeWavefrontsPerWg).
  const double rows_per_wg_target = wf * 4.0;
  // Kernels are loaded once; each tile pays the cheaper dispatch plus half a
  // launch (RunSequentialTiles' "frequent kernel launches" overhead).
  const double per_kernel_overhead =
      static_cast<double>(device_.kernel_launch_cycles) +
      (static_cast<double>(device_.tile_dispatch_cycles) +
       0.5 * static_cast<double>(device_.kernel_launch_cycles)) *
          tiles;

  est.kernel_cycles.resize(static_cast<size_t>(num_stages), 0.0);
  for (int i = 0; i < num_stages; ++i) {
    const StageDesc& stage = segment.stages[static_cast<size_t>(i)];

    const double rows_tile =
        std::max(1.0, std::floor(std::max(stage.rows_in, 0.0) / tiles));
    const double bytes_in_tile = std::max(stage.bytes_in, 0.0) / tiles;
    const double bytes_out_tile = std::max(stage.bytes_out, 0.0) / tiles;

    const int slots = sim::SingleKernelSlots(device_, stage.timing);
    const double wg_total =
        std::max(1.0, std::ceil(rows_tile / rows_per_wg_target));
    const double active = std::min(static_cast<double>(slots), wg_total);
    const double active_cus =
        std::min(static_cast<double>(device_.num_cus), wg_total);
    const int hide_wavefronts =
        std::max(1, static_cast<int>(active / std::max(active_cus, 1.0)));

    const double rows_wg = rows_tile / wg_total;
    const double in_wg = bytes_in_tile / wg_total;
    const double out_wg = bytes_out_tile / wg_total;

    // A tile intermediate that fits in cache next to the segment's working
    // set is served from it (RunSequentialTiles' input residency).
    const double input_resident =
        i > 0 ? cache_.ChannelResidency(
                    static_cast<int64_t>(bytes_in_tile),
                    segment.extra_resident_bytes + params.tile_bytes)
              : 0.0;

    // ComputeWgWork: ALU work, then max(latency, bandwidth) memory work.
    const double iters = std::ceil(rows_wg / wf);
    const double alu =
        iters * stage.timing.compute_inst_per_row * device_.cycles_per_instr;
    const double accesses = iters * stage.timing.mem_inst_per_row;
    double hit = cache_.StreamingHitRatio(8);
    hit = input_resident + (1.0 - input_resident) * hit;
    if (stage.timing.random_access_fraction > 0.0) {
      const double random_hit = cache_.RandomHitRatio(
          stage.timing.random_working_set_bytes, segment.extra_resident_bytes);
      hit = (1.0 - stage.timing.random_access_fraction) * hit +
            stage.timing.random_access_fraction * random_hit;
    }
    const double latency = hit * device_.cache_latency +
                           (1.0 - hit) * device_.global_mem_latency;
    const double hide = static_cast<double>(std::clamp(
        hide_wavefronts, 1, device_.latency_hiding_wavefronts));
    const double latency_cycles = accesses * latency / hide;
    const double global_bw_per_cu =
        device_.global_bw_bytes_per_cycle / device_.num_cus;
    const double cache_bw_per_cu =
        device_.cache_bw_bytes_per_cycle / device_.num_cus;
    const double resident_in = in_wg * input_resident;
    const double dram_bytes = in_wg - resident_in + out_wg;
    const double bw_cycles = dram_bytes / global_bw_per_cu +
                             resident_in / std::max(cache_bw_per_cu, 1.0);
    const double mem = std::max(latency_cycles, bw_cycles);

    const double total_alu = alu * wg_total;
    const double total_mem = mem * wg_total;
    const double exec = std::max(total_alu, total_mem) / active_cus;

    const double t_ki = exec * tiles;
    est.kernel_cycles[static_cast<size_t>(i)] = t_ki;
    est.compute_cycles += total_alu * tiles;
    est.memory_cycles += total_mem * tiles;
    // Kernels never overlap: total is the plain sum plus per-kernel overhead.
    est.total_cycles += t_ki + per_kernel_overhead;
  }
  return est;
}

}  // namespace model
}  // namespace gpl
