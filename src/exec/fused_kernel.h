#ifndef GPL_EXEC_FUSED_KERNEL_H_
#define GPL_EXEC_FUSED_KERNEL_H_

#include <vector>

#include "exec/kernel.h"

namespace gpl {

/// Observed cardinalities of one child kernel inside a fused execution —
/// identical in meaning to core's StageObservation, duplicated here so exec
/// does not depend on core.
struct FusedStageObservation {
  int64_t rows_in = 0;
  int64_t bytes_in = 0;
  int64_t rows_out = 0;
  int64_t bytes_out = 0;
};

/// A fused kernel: a chain of non-blocking child kernels executed as one
/// kernel body. Each input batch flows child-to-child register-to-register —
/// no per-stage materialization, no channel hand-off — and Finish() cascades
/// each child's withheld emission through the remaining children, exactly
/// mirroring the unfused pipeline's FlowBatch/Finish semantics so results
/// stay bit-identical to per-stage execution.
///
/// Per-child observations are recorded so the timing layer can still account
/// the original stages' cardinalities (the fusion win is priced analytically,
/// not by hiding work).
class FusedKernel final : public Kernel {
 public:
  explicit FusedKernel(std::vector<KernelPtr> children);

  Result<Table> Process(const Table& input) override;
  Result<Table> Finish() override;
  void Reset() override;
  void PrepareTiming() override;
  int64_t MaterializedStateBytes() const override;

  const std::vector<KernelPtr>& children() const { return children_; }
  const std::vector<FusedStageObservation>& observations() const {
    return observations_;
  }

 private:
  /// Flows one batch through children [first, end); returns the surviving
  /// batch, or an empty 0-column table when a child withheld it.
  Result<Table> FlowFrom(size_t first, Table batch);

  std::vector<KernelPtr> children_;
  std::vector<FusedStageObservation> observations_;
};

}  // namespace gpl

#endif  // GPL_EXEC_FUSED_KERNEL_H_
