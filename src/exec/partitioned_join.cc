#include "exec/partitioned_join.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_util.h"

namespace gpl {

namespace {

std::vector<int64_t> PackedKeys(const Table& input,
                                const std::vector<ExprPtr>& key_exprs) {
  GPL_CHECK(!key_exprs.empty() && key_exprs.size() <= 2);
  Column k0 = key_exprs[0]->Evaluate(input);
  const int64_t n = k0.size();
  std::vector<int64_t> keys(static_cast<size_t>(n));
  if (key_exprs.size() == 1) {
    for (int64_t i = 0; i < n; ++i) keys[static_cast<size_t>(i)] = k0.AsInt64(i);
  } else {
    Column k1 = key_exprs[1]->Evaluate(input);
    for (int64_t i = 0; i < n; ++i) {
      keys[static_cast<size_t>(i)] = JoinHashTable::PackKeys(
          static_cast<int32_t>(k0.AsInt64(i)), static_cast<int32_t>(k1.AsInt64(i)));
    }
  }
  return keys;
}

class PartitionedBuildKernel : public Kernel {
 public:
  PartitionedBuildKernel(std::vector<ExprPtr> key_exprs,
                         std::shared_ptr<PartitionedJoinState> state)
      : key_exprs_(std::move(key_exprs)), state_(std::move(state)) {
    timing_.name = "k_partition_build";
    timing_.compute_inst_per_row = 40.0;  // hash + route + insert
    timing_.mem_inst_per_row = 5.0;
    timing_.private_bytes_per_item = 64;
    timing_.local_bytes_per_item = 8;  // per-partition staging buffers
    timing_.blocking = true;
    timing_.random_access_fraction = 0.6;
  }

  void PrepareTiming() override {
    // Partitioned inserts touch one cache-sized partition at a time.
    timing_.random_working_set_bytes = state_->max_partition_bytes();
  }

  Result<Table> Process(const Table& input) override {
    const std::vector<int64_t> keys = PackedKeys(input, key_exprs_);
    const int num_partitions = state_->num_partitions();
    std::vector<std::vector<int64_t>> partition_rows(
        static_cast<size_t>(num_partitions));
    for (size_t i = 0; i < keys.size(); ++i) {
      partition_rows[static_cast<size_t>(state_->PartitionOf(keys[i]))]
          .push_back(static_cast<int64_t>(i));
    }
    for (int p = 0; p < num_partitions; ++p) {
      const std::vector<int64_t>& rows = partition_rows[static_cast<size_t>(p)];
      if (rows.empty()) continue;
      std::vector<int64_t> partition_keys(rows.size());
      for (size_t i = 0; i < rows.size(); ++i) {
        partition_keys[i] = keys[static_cast<size_t>(rows[i])];
      }
      Table gathered = input.Gather(rows);
      const int64_t base =
          state_->rows_initialized(p) ? state_->rows(p).num_rows() : 0;
      state_->table(p).Insert(partition_keys, base);
      if (!state_->rows_initialized(p)) {
        state_->rows(p) = std::move(gathered);
        state_->set_rows_initialized(p);
      } else {
        GPL_RETURN_NOT_OK(state_->rows(p).AppendTable(gathered));
      }
    }
    timing_.random_working_set_bytes = state_->max_partition_bytes();
    return Table();
  }

  void Reset() override { state_->Reset(); }

  int64_t MaterializedStateBytes() const override {
    return state_->total_table_bytes();
  }

 private:
  std::vector<ExprPtr> key_exprs_;
  std::shared_ptr<PartitionedJoinState> state_;
};

class PartitionedProbeKernel : public Kernel {
 public:
  PartitionedProbeKernel(std::vector<ExprPtr> key_exprs,
                         std::shared_ptr<PartitionedJoinState> state,
                         std::vector<std::string> build_payload)
      : key_exprs_(std::move(key_exprs)),
        state_(std::move(state)),
        build_payload_(std::move(build_payload)) {
    timing_.name = "k_partitioned_probe";
    timing_.compute_inst_per_row = 42.0;  // hash + partition pick + probe
    timing_.mem_inst_per_row = 5.0;
    timing_.private_bytes_per_item = 64;
    timing_.random_access_fraction = 0.5;
  }

  void PrepareTiming() override {
    timing_.random_working_set_bytes = state_->max_partition_bytes();
  }

  Result<Table> Process(const Table& input) override {
    PrepareTiming();
    const std::vector<int64_t> keys = PackedKeys(input, key_exprs_);
    std::vector<int64_t> probe_idx;
    std::vector<int> partition_of;
    std::vector<int64_t> build_idx;
    std::vector<int64_t> matches;
    for (size_t i = 0; i < keys.size(); ++i) {
      const int p = state_->PartitionOf(keys[i]);
      matches.clear();
      state_->table(p).Probe(keys[i], &matches);
      for (int64_t b : matches) {
        probe_idx.push_back(static_cast<int64_t>(i));
        partition_of.push_back(p);
        build_idx.push_back(b);
      }
    }
    Table out = input.Gather(probe_idx);
    for (const std::string& name : build_payload_) {
      Column col(DataType::kInt32);  // placeholder, replaced below
      bool first = true;
      for (size_t i = 0; i < build_idx.size(); ++i) {
        const Table& rows = state_->rows(partition_of[i]);
        const Column& source = rows.GetColumn(name);
        if (first) {
          col = Column(source.type(), source.dictionary());
          col.Reserve(static_cast<int64_t>(build_idx.size()));
          first = false;
        }
        switch (source.type()) {
          case DataType::kInt32:
          case DataType::kDate:
          case DataType::kString:
            col.AppendInt32(source.Int32At(build_idx[i]));
            break;
          case DataType::kInt64:
            col.AppendInt64(source.Int64At(build_idx[i]));
            break;
          case DataType::kFloat64:
            col.AppendDouble(source.DoubleAt(build_idx[i]));
            break;
        }
      }
      if (first) {
        // No matches at all: derive the schema from any initialized
        // partition (or default to int32 if the build side is empty).
        for (int p = 0; p < state_->num_partitions(); ++p) {
          if (state_->rows_initialized(p) && state_->rows(p).HasColumn(name)) {
            const Column& source = state_->rows(p).GetColumn(name);
            col = Column(source.type(), source.dictionary());
            break;
          }
        }
      }
      GPL_RETURN_NOT_OK(out.AddColumn(name, std::move(col)));
    }
    return out;
  }

 private:
  std::vector<ExprPtr> key_exprs_;
  std::shared_ptr<PartitionedJoinState> state_;
  std::vector<std::string> build_payload_;
};

}  // namespace

PartitionedJoinState::PartitionedJoinState(int num_partitions) {
  GPL_CHECK(num_partitions >= 1 && IsPow2(static_cast<uint64_t>(num_partitions)))
      << "partition count must be a power of two";
  tables_.resize(static_cast<size_t>(num_partitions));
  rows_.resize(static_cast<size_t>(num_partitions));
  rows_initialized_.assign(static_cast<size_t>(num_partitions), false);
}

int PartitionedJoinState::PartitionOf(int64_t key) const {
  // Mix before masking so sequential keys spread across partitions.
  uint64_t h = static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ULL;
  return static_cast<int>((h >> 32) & (tables_.size() - 1));
}

int64_t PartitionedJoinState::total_table_bytes() const {
  int64_t total = 0;
  for (const JoinHashTable& t : tables_) total += t.byte_size();
  return total;
}

int64_t PartitionedJoinState::max_partition_bytes() const {
  int64_t max_bytes = 0;
  for (const JoinHashTable& t : tables_) {
    max_bytes = std::max(max_bytes, t.byte_size());
  }
  return max_bytes;
}

void PartitionedJoinState::Reset() {
  const int n = num_partitions();
  tables_.assign(static_cast<size_t>(n), JoinHashTable());
  rows_.assign(static_cast<size_t>(n), Table());
  rows_initialized_.assign(static_cast<size_t>(n), false);
}

KernelPtr MakePartitionedBuildKernel(std::vector<ExprPtr> key_exprs,
                                     std::shared_ptr<PartitionedJoinState> state) {
  return std::make_shared<PartitionedBuildKernel>(std::move(key_exprs),
                                                  std::move(state));
}

KernelPtr MakePartitionedProbeKernel(std::vector<ExprPtr> key_exprs,
                                     std::shared_ptr<PartitionedJoinState> state,
                                     std::vector<std::string> build_payload) {
  return std::make_shared<PartitionedProbeKernel>(
      std::move(key_exprs), std::move(state), std::move(build_payload));
}

}  // namespace gpl
