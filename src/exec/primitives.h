#ifndef GPL_EXEC_PRIMITIVES_H_
#define GPL_EXEC_PRIMITIVES_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/expr.h"
#include "exec/hash_table.h"
#include "exec/kernel.h"

namespace gpl {

// ---------------------------------------------------------------------------
// Streaming kernels (shared by GPL pipelines and KBE whole-input execution)
// ---------------------------------------------------------------------------

/// One aggregate in an AggregateKernel.
struct AggSpec {
  enum Func { kSum, kCount, kAvg, kMin, kMax };
  Func func = kSum;
  ExprPtr arg;  ///< ignored for kCount
  std::string output_name;
};

/// One output column of a projection: name plus defining expression.
struct ProjectedColumn {
  std::string name;
  ExprPtr expr;
};

/// One sort key for SortKernel: column name and direction.
struct SortKey {
  std::string column;
  bool descending = false;
};

/// GPL-style selection (k_map): evaluates the predicate per tuple and emits
/// only the satisfying rows (the prefix-sum kernel of KBE is removed,
/// Section 3.2).
KernelPtr MakeFilterKernel(ExprPtr predicate);

/// Projection/map: computes the listed output columns.
KernelPtr MakeProjectKernel(std::vector<ProjectedColumn> columns);

/// Hash build: accumulates the build side and inserts keys. Blocking (a
/// barrier follows it; its output — the hash table plus the saved build
/// rows — is materialized in global memory).
///
/// `key_exprs` may contain one or two int-typed expressions (two are packed
/// into a composite key, e.g. Q9's partsupp join).
class HashJoinState;  // shared between build and probe kernels
KernelPtr MakeHashBuildKernel(std::vector<ExprPtr> key_exprs,
                              std::shared_ptr<HashJoinState> state);

/// Hash probe: probes the shared table; output = probe-side columns plus the
/// requested build-side payload columns. Non-blocking.
KernelPtr MakeHashProbeKernel(std::vector<ExprPtr> key_exprs,
                              std::shared_ptr<HashJoinState> state,
                              std::vector<std::string> build_payload);

/// Which table an aggregate kernel emits at Finish().
///
/// kComplete emits the final aggregate table. kPartial emits the
/// shard-partial wire format: the group columns in their final form plus,
/// per aggregate, a count column and either the exact-sum canonical digits
/// (sum/avg — see exec/exact_sum.h) or the running min/max value. Partials
/// from any row partition merge back to the bit-exact complete result via
/// CombinePartialAggregates().
enum class AggregatePhase { kComplete, kPartial };

/// GPL-style non-blocking aggregation (k_reduce*): accumulates partial
/// results per packet and emits the group table at Finish().
KernelPtr MakeAggregateKernel(std::vector<ProjectedColumn> group_by,
                              std::vector<AggSpec> aggregates,
                              AggregatePhase phase = AggregatePhase::kComplete);

/// Column names of the partial-aggregate wire format (group columns first,
/// then the per-aggregate state columns).
std::vector<std::string> PartialAggregateColumns(
    const std::vector<ProjectedColumn>& group_by,
    const std::vector<AggSpec>& aggregates);

/// Merges partial-aggregate tables (the wire format emitted by a kPartial
/// aggregate kernel) into the complete aggregate table. Exact: sums merge
/// via canonical superaccumulator digits, counts add, min/max fold — the
/// result is bit-identical to aggregating all input rows on one device,
/// regardless of how rows were partitioned (NaN-free min/max inputs
/// assumed; sums are exact even for adversarial orderings).
Result<Table> CombinePartialAggregates(
    const std::vector<ProjectedColumn>& group_by,
    const std::vector<AggSpec>& aggregates, const std::vector<Table>& partials);

/// Sort (order-by). Blocking: accumulates all input, emits sorted output at
/// Finish().
KernelPtr MakeSortKernel(std::vector<SortKey> keys);

/// Shared state of one hash join: the table and the accumulated build rows.
///
/// When the subplan cache serves a memoized build, it installs the cached
/// snapshot in `shared` instead of re-running the build; probes read through
/// the probe_* accessors so one code path covers both the locally built and
/// the cache-served table. The build kernel always writes the raw members
/// (it only runs when there is no snapshot).
class HashJoinState {
 public:
  JoinHashTable table;
  Table build_rows;
  bool build_rows_initialized = false;
  /// Cache-served build snapshot; null when this join built locally.
  std::shared_ptr<const HashJoinState> shared;

  const JoinHashTable& probe_table() const {
    return shared != nullptr ? shared->table : table;
  }
  const Table& probe_rows() const {
    return shared != nullptr ? shared->build_rows : build_rows;
  }

  void Reset() {
    table = JoinHashTable();
    build_rows = Table();
    build_rows_initialized = false;
    shared.reset();
  }
};

// ---------------------------------------------------------------------------
// KBE-only primitives (the conventional kernel decomposition of selection:
// map -> prefix sum -> scatter, and scan-based aggregation)
// ---------------------------------------------------------------------------

/// Evaluates `predicate` into a 0/1 flags column (KBE k_map).
Column ComputeFlags(const Table& input, const ExprPtr& predicate);

/// Exclusive prefix sum of a 0/1 flags column; *total receives the sum.
Column PrefixSum(const Column& flags, int64_t* total);

/// Compacts `input` to the rows whose flag is set, using the offsets
/// (KBE k_scatter).
Table ScatterRows(const Table& input, const Column& flags, const Column& offsets);

// ---------------------------------------------------------------------------
// Timing descriptors (the "program analysis" numbers per kernel type)
// ---------------------------------------------------------------------------

sim::KernelTimingDesc FilterTiming(double predicate_cost);
sim::KernelTimingDesc ProjectTiming(double expr_cost, int num_outputs);
sim::KernelTimingDesc PrefixSumTiming();
sim::KernelTimingDesc ScatterTiming(int num_columns);
sim::KernelTimingDesc HashBuildTiming(int64_t hash_table_bytes);
sim::KernelTimingDesc HashProbeTiming(int64_t hash_table_bytes);
sim::KernelTimingDesc AggregateTiming(double expr_cost, int num_aggregates);
sim::KernelTimingDesc ScanAggregateTiming();  ///< KBE scan-based aggregation
sim::KernelTimingDesc SortTiming();

}  // namespace gpl

#endif  // GPL_EXEC_PRIMITIVES_H_
