#ifndef GPL_EXEC_EXPR_H_
#define GPL_EXEC_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"

namespace gpl {

/// Interface through which expressions obtain column statistics for
/// selectivity estimation (implemented by plan::Catalog).
class StatsProvider {
 public:
  virtual ~StatsProvider() = default;
  /// Returns false if the column is unknown.
  virtual bool GetColumnStats(const std::string& column, double* min_value,
                              double* max_value, int64_t* num_distinct) const = 0;
};

/// Scalar expression over table columns, evaluated column-at-a-time (the
/// functional half of map/project kernels). Expressions also report an
/// instruction-cost estimate per row, which feeds the kernels' timing
/// descriptors (the "program analysis" input of the cost model).
class Expr {
 public:
  virtual ~Expr() = default;

  /// Result type when evaluated against `input`.
  virtual DataType OutputType(const Table& input) const = 0;

  /// Evaluates over all rows of `input`. Boolean results are kInt32 0/1.
  virtual Column Evaluate(const Table& input) const = 0;

  /// Estimated compute instructions per row.
  virtual double CostPerRow() const = 0;

  virtual std::string ToString() const = 0;

  /// Estimated fraction of rows for which this (boolean) expression is true.
  /// Non-predicates return 1.
  virtual double EstimateSelectivity(const StatsProvider& stats) const {
    (void)stats;
    return 1.0;
  }

  /// If this is a plain column reference, stores its name and returns true.
  virtual bool IsColumnRef(std::string* name) const {
    (void)name;
    return false;
  }

  /// If this is a numeric/date literal, stores its value (widened to double)
  /// and returns true.
  virtual bool IsLiteral(double* value) const {
    (void)value;
    return false;
  }

  /// Appends the names of all columns this expression reads.
  virtual void CollectColumnRefs(std::vector<std::string>* out) const {
    (void)out;
  }
};

using ExprPtr = std::shared_ptr<const Expr>;

// ---- Factory functions (the public expression-building API) ----

/// Reference to a column by name.
ExprPtr Col(std::string name);

ExprPtr LitInt(int64_t value);
ExprPtr LitFloat(double value);
/// Date literal from "YYYY-MM-DD" (aborts on malformed text).
ExprPtr LitDate(const std::string& ymd);
/// String literal; compares against dictionary-encoded columns.
ExprPtr LitString(std::string value);

ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);

ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);

ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);

/// EXTRACT(YEAR FROM date_expr), used by Q7/Q8/Q9.
ExprPtr YearOf(ExprPtr date_expr);

/// CASE WHEN cond THEN a ELSE b END, used by Q8/Q14.
ExprPtr CaseWhen(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr);

/// a >= lo AND a < hi (half-open range, the common date filter shape).
ExprPtr InRange(ExprPtr a, ExprPtr lo, ExprPtr hi);

/// True when the dictionary-encoded string expression starts with `prefix`
/// (the LIKE 'PROMO%' test of Q14).
ExprPtr StrStartsWith(ExprPtr str_expr, std::string prefix);

}  // namespace gpl

#endif  // GPL_EXEC_EXPR_H_
