#ifndef GPL_EXEC_MORSEL_H_
#define GPL_EXEC_MORSEL_H_

#include <cstdint>
#include <vector>

#include "exec/expr.h"
#include "exec/hash_table.h"
#include "storage/table.h"

namespace gpl {

/// Morsel-driven parallel helpers for the functional bodies of the exec
/// primitives. Each helper is bit-identical to the corresponding serial
/// loop at any CurrentHostParallelism(): work is split at fixed kMorselRows
/// boundaries (common/thread_pool.h), per-morsel intermediates are written
/// to position-derived slots, and results are stitched back together in
/// morsel order. Expression evaluation is pure and per-row (exec/expr.cc
/// never mutates a Dictionary during Evaluate), so slicing it is safe.
///
/// These affect *host* wall-clock only; the simulated kernel timing is
/// derived from the KernelTimingDescs and cardinalities, never from how the
/// host computed the result.

/// expr.Evaluate(input), morsel-parallel. Bit-identical output column.
Column EvaluateMorsels(const Expr& expr, const Table& input);

/// Row indices where `predicate` is nonzero, ascending — the functional body
/// of map/select (filter).
std::vector<int64_t> SelectIndices(const Expr& predicate, const Table& input);

/// Packed int64 join keys for 1- or 2-key equi-joins (the hash build/probe
/// key pipeline; see JoinHashTable::PackKeys).
std::vector<int64_t> EvaluateJoinKeys(const Table& input,
                                      const std::vector<ExprPtr>& key_exprs);

/// Probes `table` with every key in order, appending (probe row, build row)
/// pairs exactly as the serial probe loop does: ascending probe row, chain
/// order within a probe row.
void ProbeAll(const JoinHashTable& table, const std::vector<int64_t>& keys,
              std::vector<int64_t>* probe_idx, std::vector<int64_t>* build_idx);

}  // namespace gpl

#endif  // GPL_EXEC_MORSEL_H_
