#include "exec/fused_kernel.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace gpl {

FusedKernel::FusedKernel(std::vector<KernelPtr> children)
    : children_(std::move(children)) {
  GPL_CHECK(!children_.empty());
  observations_.resize(children_.size());
  timing_.name = "fused(";
  int64_t private_sum = 0;
  int64_t private_max = 0;
  int64_t local_sum = 0;
  int64_t local_max = 0;
  for (size_t i = 0; i < children_.size(); ++i) {
    GPL_CHECK(children_[i] != nullptr);
    GPL_CHECK(!children_[i]->blocking())
        << "blocking kernel " << children_[i]->name()
        << " cannot be part of a fused kernel";
    if (i > 0) timing_.name += '+';
    timing_.name += children_[i]->name();
    private_sum += children_[i]->timing().private_bytes_per_item;
    private_max =
        std::max(private_max, children_[i]->timing().private_bytes_per_item);
    local_sum += children_[i]->timing().local_bytes_per_item;
    local_max =
        std::max(local_max, children_[i]->timing().local_bytes_per_item);
  }
  timing_.name += ')';
  // Register footprint of the composed body: stages execute sequentially per
  // item, so the compiler reuses part of each stage's registers — max plus
  // half the rest (matches model::ComposeFusedStage).
  timing_.private_bytes_per_item = private_max + (private_sum - private_max) / 2;
  timing_.local_bytes_per_item = local_max + (local_sum - local_max) / 2;
  timing_.blocking = false;
}

Result<Table> FusedKernel::FlowFrom(size_t first, Table batch) {
  for (size_t s = first; s < children_.size(); ++s) {
    FusedStageObservation& obs = observations_[s];
    obs.rows_in += batch.num_rows();
    obs.bytes_in += batch.byte_size();
    GPL_ASSIGN_OR_RETURN(Table out, children_[s]->Process(batch));
    obs.rows_out += out.num_rows();
    obs.bytes_out += out.byte_size();
    batch = std::move(out);
    if (batch.num_rows() == 0 && batch.num_columns() == 0) {
      return batch;  // child withheld output (accumulating kernel)
    }
  }
  return batch;
}

Result<Table> FusedKernel::Process(const Table& input) {
  return FlowFrom(0, input);
}

Result<Table> FusedKernel::Finish() {
  Table result;
  bool initialized = false;
  // Mirror the segment-level Finish cascade: each child's withheld emission
  // flows through the remaining children, concatenated in child order.
  for (size_t s = 0; s < children_.size(); ++s) {
    GPL_ASSIGN_OR_RETURN(Table emitted, children_[s]->Finish());
    if (emitted.num_columns() == 0) continue;
    FusedStageObservation& obs = observations_[s];
    obs.rows_out += emitted.num_rows();
    obs.bytes_out += emitted.byte_size();
    GPL_ASSIGN_OR_RETURN(Table flowed, FlowFrom(s + 1, std::move(emitted)));
    if (flowed.num_columns() == 0) continue;  // withheld downstream
    if (!initialized) {
      result = std::move(flowed);
      initialized = true;
    } else {
      GPL_RETURN_NOT_OK(result.AppendTable(flowed));
    }
  }
  return result;
}

void FusedKernel::Reset() {
  for (const KernelPtr& child : children_) child->Reset();
  observations_.assign(children_.size(), FusedStageObservation{});
}

void FusedKernel::PrepareTiming() {
  for (const KernelPtr& child : children_) child->PrepareTiming();
}

int64_t FusedKernel::MaterializedStateBytes() const {
  return children_.back()->MaterializedStateBytes();
}

}  // namespace gpl
