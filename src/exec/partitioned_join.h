#ifndef GPL_EXEC_PARTITIONED_JOIN_H_
#define GPL_EXEC_PARTITIONED_JOIN_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/expr.h"
#include "exec/hash_table.h"
#include "exec/kernel.h"

namespace gpl {

/// Shared state of one radix-partitioned hash join (Section 3.2 of the
/// paper: "Partitioned hash joins can be implemented similarly, where the
/// partition phase also can be implemented in a non-blocking manner").
///
/// The build side is radix-partitioned on the join key's hash; each
/// partition gets its own hash table. Probes hash each key to its partition
/// and search only there, so the random working set per probe is roughly
/// 1/P of the whole table — partitions sized to the cache stay resident.
class PartitionedJoinState {
 public:
  explicit PartitionedJoinState(int num_partitions);

  int num_partitions() const { return static_cast<int>(tables_.size()); }
  int PartitionOf(int64_t key) const;

  JoinHashTable& table(int p) { return tables_[static_cast<size_t>(p)]; }
  const JoinHashTable& table(int p) const { return tables_[static_cast<size_t>(p)]; }
  Table& rows(int p) { return rows_[static_cast<size_t>(p)]; }
  const Table& rows(int p) const { return rows_[static_cast<size_t>(p)]; }
  bool rows_initialized(int p) const {
    return rows_initialized_[static_cast<size_t>(p)];
  }
  void set_rows_initialized(int p) { rows_initialized_[static_cast<size_t>(p)] = true; }

  /// Total bytes across all partition hash tables.
  int64_t total_table_bytes() const;
  /// Bytes of the largest single partition (the probe-time working set).
  int64_t max_partition_bytes() const;

  void Reset();

 private:
  std::vector<JoinHashTable> tables_;
  std::vector<Table> rows_;
  std::vector<bool> rows_initialized_;
};

/// Non-blocking partition+build: every batch is routed to its partitions
/// and inserted (the blocking barrier only separates the build segment from
/// the probe segment, exactly as for the simple hash join).
KernelPtr MakePartitionedBuildKernel(std::vector<ExprPtr> key_exprs,
                                     std::shared_ptr<PartitionedJoinState> state);

/// Probe against the partitioned table; output = probe columns + requested
/// build payload columns.
KernelPtr MakePartitionedProbeKernel(std::vector<ExprPtr> key_exprs,
                                     std::shared_ptr<PartitionedJoinState> state,
                                     std::vector<std::string> build_payload);

}  // namespace gpl

#endif  // GPL_EXEC_PARTITIONED_JOIN_H_
