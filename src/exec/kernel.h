#ifndef GPL_EXEC_KERNEL_H_
#define GPL_EXEC_KERNEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/kernel_desc.h"
#include "storage/table.h"

namespace gpl {

/// A (simulated) GPU kernel: the functional body of one pipeline stage plus
/// its timing descriptor. Kernels are streaming transformers: the engines
/// push batches (tiles) through Process() and call Finish() after the last
/// batch; kernels that accumulate state (hash build, aggregation, sort)
/// withhold output until Finish().
///
/// The same kernel objects serve both execution modes: KBE pushes the whole
/// input as one batch, GPL pushes tile-sized batches connected by simulated
/// channels. Timing is accounted separately by sim::Simulator using the
/// cardinalities observed here.
class Kernel {
 public:
  virtual ~Kernel() = default;

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  const sim::KernelTimingDesc& timing() const { return timing_; }
  sim::KernelTimingDesc* mutable_timing() { return &timing_; }
  const std::string& name() const { return timing_.name; }
  bool blocking() const { return timing_.blocking; }

  /// Processes one input batch; returns the rows emitted for this batch.
  virtual Result<Table> Process(const Table& input) = 0;

  /// Emits any withheld output after the last batch. Default: nothing.
  virtual Result<Table> Finish() { return Table(); }

  /// Clears accumulated state so the kernel can run again.
  virtual void Reset() {}

  /// Refreshes timing-descriptor fields that depend on runtime state (e.g. a
  /// probe kernel's hash-table working set once the build segment has run).
  /// Called before cost-model tuning.
  virtual void PrepareTiming() {}

  /// Bytes this kernel materialized in global memory as side state (hash
  /// tables). Defaults to the timing descriptor's random working set; the
  /// partitioned build overrides it with the total across partitions.
  virtual int64_t MaterializedStateBytes() const {
    return timing_.random_working_set_bytes;
  }

 protected:
  Kernel() = default;

  sim::KernelTimingDesc timing_;
};

using KernelPtr = std::shared_ptr<Kernel>;

}  // namespace gpl

#endif  // GPL_EXEC_KERNEL_H_
