#include "exec/primitives.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "exec/exact_sum.h"
#include "exec/morsel.h"

namespace gpl {

namespace {

// The functional kernel bodies below are morsel-parallel on the host (see
// exec/morsel.h): they honor CurrentHostParallelism() and are bit-identical
// to the serial path at any thread count. Simulated timing is unaffected —
// it derives from the timing descriptors and observed cardinalities only.

class FilterKernel : public Kernel {
 public:
  explicit FilterKernel(ExprPtr predicate) : predicate_(std::move(predicate)) {
    timing_ = FilterTiming(predicate_->CostPerRow());
  }

  Result<Table> Process(const Table& input) override {
    return input.Gather(SelectIndices(*predicate_, input));
  }

 private:
  ExprPtr predicate_;
};

class ProjectKernel : public Kernel {
 public:
  explicit ProjectKernel(std::vector<ProjectedColumn> columns)
      : columns_(std::move(columns)) {
    double cost = 0.0;
    for (const ProjectedColumn& c : columns_) cost += c.expr->CostPerRow();
    timing_ = ProjectTiming(cost, static_cast<int>(columns_.size()));
  }

  Result<Table> Process(const Table& input) override {
    Table out(input.name());
    for (const ProjectedColumn& c : columns_) {
      GPL_RETURN_NOT_OK(out.AddColumn(c.name, EvaluateMorsels(*c.expr, input)));
    }
    return out;
  }

 private:
  std::vector<ProjectedColumn> columns_;
};

class HashBuildKernel : public Kernel {
 public:
  HashBuildKernel(std::vector<ExprPtr> key_exprs,
                  std::shared_ptr<HashJoinState> state)
      : key_exprs_(std::move(key_exprs)), state_(std::move(state)) {
    timing_ = HashBuildTiming(0);
  }

  void PrepareTiming() override {
    timing_.random_working_set_bytes = state_->table.byte_size();
  }

  Result<Table> Process(const Table& input) override {
    const std::vector<int64_t> keys = EvaluateJoinKeys(input, key_exprs_);
    const int64_t base = state_->build_rows_initialized
                             ? state_->build_rows.num_rows()
                             : 0;
    state_->table.Insert(keys, base);
    if (!state_->build_rows_initialized) {
      state_->build_rows = input;
      state_->build_rows_initialized = true;
    } else {
      GPL_RETURN_NOT_OK(state_->build_rows.AppendTable(input));
    }
    // The hash table materializes in global memory; keep the timing
    // descriptor's working set in sync for downstream probes.
    timing_.random_working_set_bytes = state_->table.byte_size();
    return Table();
  }

  void Reset() override { state_->Reset(); }

 private:
  std::vector<ExprPtr> key_exprs_;
  std::shared_ptr<HashJoinState> state_;
};

class HashProbeKernel : public Kernel {
 public:
  HashProbeKernel(std::vector<ExprPtr> key_exprs,
                  std::shared_ptr<HashJoinState> state,
                  std::vector<std::string> build_payload)
      : key_exprs_(std::move(key_exprs)),
        state_(std::move(state)),
        build_payload_(std::move(build_payload)) {
    timing_ = HashProbeTiming(0);
  }

  void PrepareTiming() override {
    timing_.random_working_set_bytes = state_->probe_table().byte_size();
  }

  Result<Table> Process(const Table& input) override {
    timing_.random_working_set_bytes = state_->probe_table().byte_size();
    const std::vector<int64_t> keys = EvaluateJoinKeys(input, key_exprs_);
    std::vector<int64_t> probe_idx;
    std::vector<int64_t> build_idx;
    ProbeAll(state_->probe_table(), keys, &probe_idx, &build_idx);
    Table out = input.Gather(probe_idx);
    for (const std::string& name : build_payload_) {
      GPL_RETURN_NOT_OK(out.AddColumn(
          name, state_->probe_rows().GetColumn(name).Gather(build_idx)));
    }
    return out;
  }

 private:
  std::vector<ExprPtr> key_exprs_;
  std::shared_ptr<HashJoinState> state_;
  std::vector<std::string> build_payload_;
};

// Names of the per-aggregate state columns in the partial wire format.
// Index-based so they can never collide with user group/aggregate names.
std::string PartialCountName(size_t a) { return "__pc" + std::to_string(a); }
std::string PartialMetaName(size_t a) { return "__pm" + std::to_string(a); }
std::string PartialValueName(size_t a) { return "__pv" + std::to_string(a); }
std::string PartialDigitName(size_t a, int j) {
  return "__pd" + std::to_string(a) + "_" + std::to_string(j);
}

// Meta-column encoding of an exact sum's sign and special flags.
int64_t EncodeSumMeta(const ExactFloat64Sum::Canonical& c) {
  int64_t meta = c.sign + 1;  // 0, 1, 2
  if (c.any_pos_inf) meta |= 4;
  if (c.any_neg_inf) meta |= 8;
  if (c.any_nan) meta |= 16;
  return meta;
}

ExactFloat64Sum::Canonical DecodeSumMeta(int64_t meta) {
  ExactFloat64Sum::Canonical c;
  c.sign = static_cast<int>(meta & 3) - 1;
  c.any_pos_inf = (meta & 4) != 0;
  c.any_neg_inf = (meta & 8) != 0;
  c.any_nan = (meta & 16) != 0;
  return c;
}

class AggregateKernel : public Kernel {
 public:
  AggregateKernel(std::vector<ProjectedColumn> group_by,
                  std::vector<AggSpec> aggregates, AggregatePhase phase)
      : group_by_(std::move(group_by)),
        aggregates_(std::move(aggregates)),
        phase_(phase) {
    double cost = 0.0;
    for (const ProjectedColumn& g : group_by_) cost += g.expr->CostPerRow();
    for (const AggSpec& a : aggregates_) {
      if (a.arg != nullptr) cost += a.arg->CostPerRow();
    }
    timing_ = AggregateTiming(cost, static_cast<int>(aggregates_.size()));
  }

  Result<Table> Process(const Table& input) override {
    const int64_t n = input.num_rows();
    if (n == 0) return Table();

    // Evaluate group keys and aggregate arguments once per batch. The
    // evaluation is the expensive part and is morsel-parallel; the
    // accumulation loop below stays serial in row order. Double sums go
    // through an exact superaccumulator (exec/exact_sum.h), so the
    // accumulated state — and the rounded result — is independent of row
    // order and of how rows are partitioned across shards.
    std::vector<Column> group_cols;
    group_cols.reserve(group_by_.size());
    for (const ProjectedColumn& g : group_by_) {
      group_cols.push_back(EvaluateMorsels(*g.expr, input));
    }
    if (group_types_.empty()) {
      for (const Column& c : group_cols) {
        group_types_.push_back(c.type());
        group_dicts_.push_back(c.dictionary());
      }
    }
    std::vector<Column> agg_cols;
    agg_cols.reserve(aggregates_.size());
    for (const AggSpec& a : aggregates_) {
      if (a.func == AggSpec::kCount || a.arg == nullptr) {
        agg_cols.emplace_back(DataType::kInt64);  // placeholder, unused
      } else {
        agg_cols.push_back(EvaluateMorsels(*a.arg, input));
      }
    }

    std::vector<int64_t> key(group_by_.size());
    for (int64_t i = 0; i < n; ++i) {
      for (size_t g = 0; g < group_cols.size(); ++g) {
        key[g] = group_cols[g].AsInt64(i);
      }
      Accumulators& acc = GroupAt(key);
      for (size_t a = 0; a < aggregates_.size(); ++a) {
        switch (aggregates_[a].func) {
          case AggSpec::kSum:
          case AggSpec::kAvg:
            acc.sums[a].Add(agg_cols[a].AsDouble(i));
            break;
          case AggSpec::kCount:
            break;  // counts only
          case AggSpec::kMin:
            acc.values[a] = std::min(acc.values[a], agg_cols[a].AsDouble(i));
            break;
          case AggSpec::kMax:
            acc.values[a] = std::max(acc.values[a], agg_cols[a].AsDouble(i));
            break;
        }
        acc.counts[a] += 1;
      }
    }
    return Table();  // partial aggregation; emitted at Finish()
  }

  /// Merges one partial-aggregate table (the kPartial wire format) into the
  /// accumulated state. Used by CombinePartialAggregates().
  Status IngestPartial(const Table& partial) {
    const int64_t n = partial.num_rows();
    if (n == 0) return Status::OK();  // empty shard: nothing to merge
    std::vector<const Column*> group_cols;
    for (const ProjectedColumn& g : group_by_) {
      group_cols.push_back(&partial.GetColumn(g.name));
    }
    if (group_types_.empty()) {
      for (const Column* c : group_cols) {
        group_types_.push_back(c->type());
        group_dicts_.push_back(c->dictionary());
      }
    }
    std::vector<int64_t> key(group_by_.size());
    for (int64_t i = 0; i < n; ++i) {
      for (size_t g = 0; g < group_cols.size(); ++g) {
        key[g] = group_cols[g]->AsInt64(i);
      }
      Accumulators& acc = GroupAt(key);
      for (size_t a = 0; a < aggregates_.size(); ++a) {
        switch (aggregates_[a].func) {
          case AggSpec::kSum:
          case AggSpec::kAvg:
          case AggSpec::kCount:
            // Only these consume counts downstream (kCount's output, kAvg's
            // divide); min/max partials carry no count column at all.
            acc.counts[a] += partial.GetColumn(PartialCountName(a)).Int64At(i);
            break;
          case AggSpec::kMin:
          case AggSpec::kMax:
            break;
        }
        switch (aggregates_[a].func) {
          case AggSpec::kSum:
          case AggSpec::kAvg: {
            ExactFloat64Sum::Canonical c =
                DecodeSumMeta(partial.GetColumn(PartialMetaName(a)).Int64At(i));
            for (int j = 0; j < ExactFloat64Sum::kDigits; ++j) {
              c.digits[static_cast<size_t>(j)] = static_cast<uint64_t>(
                  partial.GetColumn(PartialDigitName(a, j)).Int64At(i));
            }
            acc.sums[a].AddCanonical(c);
            break;
          }
          case AggSpec::kCount:
            break;
          case AggSpec::kMin:
            acc.values[a] = std::min(
                acc.values[a], partial.GetColumn(PartialValueName(a)).DoubleAt(i));
            break;
          case AggSpec::kMax:
            acc.values[a] = std::max(
                acc.values[a], partial.GetColumn(PartialValueName(a)).DoubleAt(i));
            break;
        }
      }
    }
    return Status::OK();
  }

  Result<Table> Finish() override {
    Table out("aggregate");
    // Group columns (final form in both phases, so partials round-trip
    // through the same AsInt64 key extraction).
    for (size_t g = 0; g < group_by_.size(); ++g) {
      const DataType type =
          group_types_.empty() ? DataType::kInt64 : group_types_[g];
      Column col(type, group_dicts_.empty() ? nullptr : group_dicts_[g]);
      for (const auto& [key, acc] : groups_) {
        switch (type) {
          case DataType::kInt32:
          case DataType::kDate:
          case DataType::kString:
            col.AppendInt32(static_cast<int32_t>(key[g]));
            break;
          case DataType::kInt64:
            col.AppendInt64(key[g]);
            break;
          case DataType::kFloat64:
            col.AppendDouble(static_cast<double>(key[g]));
            break;
        }
      }
      GPL_RETURN_NOT_OK(out.AddColumn(group_by_[g].name, std::move(col)));
    }
    if (phase_ == AggregatePhase::kPartial) return FinishPartial(std::move(out));
    // Aggregate columns.
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      const AggSpec& spec = aggregates_[a];
      if (spec.func == AggSpec::kCount) {
        Column col(DataType::kInt64);
        for (const auto& [key, acc] : groups_) col.AppendInt64(acc.counts[a]);
        GPL_RETURN_NOT_OK(out.AddColumn(spec.output_name, std::move(col)));
      } else {
        Column col(DataType::kFloat64);
        for (const auto& [key, acc] : groups_) {
          double v;
          if (spec.func == AggSpec::kMin || spec.func == AggSpec::kMax) {
            v = acc.values[a];
          } else {
            v = acc.sums[a].Round();
          }
          if (spec.func == AggSpec::kAvg && acc.counts[a] > 0) {
            v /= static_cast<double>(acc.counts[a]);
          }
          col.AppendDouble(v);
        }
        GPL_RETURN_NOT_OK(out.AddColumn(spec.output_name, std::move(col)));
      }
    }
    return out;
  }

  void Reset() override {
    groups_.clear();
    group_types_.clear();
    group_dicts_.clear();
  }

 private:
  struct Accumulators {
    std::vector<ExactFloat64Sum> sums;  ///< kSum/kAvg exact state
    std::vector<double> values;         ///< kMin/kMax running value
    std::vector<int64_t> counts;
  };

  Accumulators& GroupAt(const std::vector<int64_t>& key) {
    Accumulators& acc = groups_[key];
    if (acc.counts.empty()) {
      acc.sums.resize(aggregates_.size());
      acc.values.assign(aggregates_.size(), 0.0);
      acc.counts.assign(aggregates_.size(), 0);
      for (size_t a = 0; a < aggregates_.size(); ++a) {
        if (aggregates_[a].func == AggSpec::kMin) {
          acc.values[a] = std::numeric_limits<double>::infinity();
        } else if (aggregates_[a].func == AggSpec::kMax) {
          acc.values[a] = -std::numeric_limits<double>::infinity();
        }
      }
    }
    return acc;
  }

  // Appends the per-aggregate state columns to the group columns already in
  // `out`, producing the partial wire format.
  Result<Table> FinishPartial(Table out) {
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      const AggSpec& spec = aggregates_[a];
      if (spec.func == AggSpec::kMin || spec.func == AggSpec::kMax) {
        // No count column: min/max combine by value alone, and Finish never
        // consults a count for them — shipping one would be pure gather
        // traffic.
        Column val(DataType::kFloat64);
        for (const auto& [key, acc] : groups_) val.AppendDouble(acc.values[a]);
        GPL_RETURN_NOT_OK(out.AddColumn(PartialValueName(a), std::move(val)));
        continue;
      }
      Column counts(DataType::kInt64);
      for (const auto& [key, acc] : groups_) counts.AppendInt64(acc.counts[a]);
      GPL_RETURN_NOT_OK(out.AddColumn(PartialCountName(a), std::move(counts)));
      if (spec.func != AggSpec::kCount) {
        std::vector<ExactFloat64Sum::Canonical> canon;
        canon.reserve(groups_.size());
        for (const auto& [key, acc] : groups_) {
          canon.push_back(acc.sums[a].ToCanonical());
        }
        Column meta(DataType::kInt64);
        for (const auto& c : canon) meta.AppendInt64(EncodeSumMeta(c));
        GPL_RETURN_NOT_OK(out.AddColumn(PartialMetaName(a), std::move(meta)));
        for (int j = 0; j < ExactFloat64Sum::kDigits; ++j) {
          Column digit(DataType::kInt64);
          for (const auto& c : canon) {
            digit.AppendInt64(
                static_cast<int64_t>(c.digits[static_cast<size_t>(j)]));
          }
          GPL_RETURN_NOT_OK(
              out.AddColumn(PartialDigitName(a, j), std::move(digit)));
        }
      }
    }
    return out;
  }

  std::vector<ProjectedColumn> group_by_;
  std::vector<AggSpec> aggregates_;
  AggregatePhase phase_;
  // std::map gives deterministic (sorted) group order.
  std::map<std::vector<int64_t>, Accumulators> groups_;
  std::vector<DataType> group_types_;
  std::vector<std::shared_ptr<Dictionary>> group_dicts_;
};

class SortKernel : public Kernel {
 public:
  explicit SortKernel(std::vector<SortKey> keys) : keys_(std::move(keys)) {
    timing_ = SortTiming();
  }

  Result<Table> Process(const Table& input) override {
    if (!initialized_) {
      accumulated_ = input;
      initialized_ = true;
    } else {
      GPL_RETURN_NOT_OK(accumulated_.AppendTable(input));
    }
    return Table();
  }

  Result<Table> Finish() override {
    if (!initialized_) return Table();
    const int64_t n = accumulated_.num_rows();
    std::vector<int64_t> indices(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) indices[static_cast<size_t>(i)] = i;

    std::vector<const Column*> cols;
    for (const SortKey& k : keys_) {
      cols.push_back(&accumulated_.GetColumn(k.column));
    }
    std::stable_sort(indices.begin(), indices.end(),
                     [&](int64_t a, int64_t b) {
                       for (size_t k = 0; k < keys_.size(); ++k) {
                         const Column& c = *cols[k];
                         int cmp = 0;
                         if (c.type() == DataType::kString) {
                           cmp = c.StringAt(a).compare(c.StringAt(b));
                         } else if (c.type() == DataType::kFloat64) {
                           const double va = c.DoubleAt(a), vb = c.DoubleAt(b);
                           cmp = va < vb ? -1 : (va > vb ? 1 : 0);
                         } else {
                           const int64_t va = c.AsInt64(a), vb = c.AsInt64(b);
                           cmp = va < vb ? -1 : (va > vb ? 1 : 0);
                         }
                         if (cmp != 0) {
                           return keys_[k].descending ? cmp > 0 : cmp < 0;
                         }
                       }
                       return a < b;
                     });
    return accumulated_.Gather(indices);
  }

  void Reset() override {
    accumulated_ = Table();
    initialized_ = false;
  }

 private:
  std::vector<SortKey> keys_;
  Table accumulated_;
  bool initialized_ = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

KernelPtr MakeFilterKernel(ExprPtr predicate) {
  return std::make_shared<FilterKernel>(std::move(predicate));
}

KernelPtr MakeProjectKernel(std::vector<ProjectedColumn> columns) {
  return std::make_shared<ProjectKernel>(std::move(columns));
}

KernelPtr MakeHashBuildKernel(std::vector<ExprPtr> key_exprs,
                              std::shared_ptr<HashJoinState> state) {
  return std::make_shared<HashBuildKernel>(std::move(key_exprs), std::move(state));
}

KernelPtr MakeHashProbeKernel(std::vector<ExprPtr> key_exprs,
                              std::shared_ptr<HashJoinState> state,
                              std::vector<std::string> build_payload) {
  return std::make_shared<HashProbeKernel>(std::move(key_exprs), std::move(state),
                                           std::move(build_payload));
}

KernelPtr MakeAggregateKernel(std::vector<ProjectedColumn> group_by,
                              std::vector<AggSpec> aggregates,
                              AggregatePhase phase) {
  return std::make_shared<AggregateKernel>(std::move(group_by),
                                           std::move(aggregates), phase);
}

std::vector<std::string> PartialAggregateColumns(
    const std::vector<ProjectedColumn>& group_by,
    const std::vector<AggSpec>& aggregates) {
  std::vector<std::string> out;
  for (const ProjectedColumn& g : group_by) out.push_back(g.name);
  for (size_t a = 0; a < aggregates.size(); ++a) {
    switch (aggregates[a].func) {
      case AggSpec::kSum:
      case AggSpec::kAvg:
        out.push_back(PartialCountName(a));
        out.push_back(PartialMetaName(a));
        for (int j = 0; j < ExactFloat64Sum::kDigits; ++j) {
          out.push_back(PartialDigitName(a, j));
        }
        break;
      case AggSpec::kCount:
        out.push_back(PartialCountName(a));
        break;
      case AggSpec::kMin:
      case AggSpec::kMax:
        // Value only — min/max partials carry no count column.
        out.push_back(PartialValueName(a));
        break;
    }
  }
  return out;
}

Result<Table> CombinePartialAggregates(
    const std::vector<ProjectedColumn>& group_by,
    const std::vector<AggSpec>& aggregates,
    const std::vector<Table>& partials) {
  AggregateKernel combiner(group_by, aggregates, AggregatePhase::kComplete);
  for (const Table& partial : partials) {
    GPL_RETURN_NOT_OK(combiner.IngestPartial(partial));
  }
  return combiner.Finish();
}

KernelPtr MakeSortKernel(std::vector<SortKey> keys) {
  return std::make_shared<SortKernel>(std::move(keys));
}

// ---------------------------------------------------------------------------
// KBE-only primitives
// ---------------------------------------------------------------------------

Column ComputeFlags(const Table& input, const ExprPtr& predicate) {
  return EvaluateMorsels(*predicate, input);
}

Column PrefixSum(const Column& flags, int64_t* total) {
  Column out(DataType::kInt32);
  const int64_t n = flags.size();
  if (CurrentHostParallelism() <= 1 || n < 2 * kMorselRows) {
    out.Reserve(n);
    int32_t running = 0;
    for (int64_t i = 0; i < n; ++i) {
      out.AppendInt32(running);
      running += flags.Int32At(i) != 0 ? 1 : 0;
    }
    *total = running;
    return out;
  }
  // Scan-then-propagate over fixed morsel boundaries: per-morsel flag counts,
  // an exclusive scan of the counts, then a parallel fill seeded with each
  // morsel's base. Integer arithmetic — exactly the serial running sum.
  const int64_t num_morsels = (n + kMorselRows - 1) / kMorselRows;
  std::vector<int32_t> counts(static_cast<size_t>(num_morsels), 0);
  ParallelFor(0, n, kMorselRows, [&](int64_t b, int64_t e) {
    int32_t count = 0;
    for (int64_t i = b; i < e; ++i) count += flags.Int32At(i) != 0 ? 1 : 0;
    counts[static_cast<size_t>(b / kMorselRows)] = count;
  });
  std::vector<int32_t> bases(static_cast<size_t>(num_morsels) + 1, 0);
  for (int64_t m = 0; m < num_morsels; ++m) {
    bases[static_cast<size_t>(m) + 1] =
        bases[static_cast<size_t>(m)] + counts[static_cast<size_t>(m)];
  }
  out.data32().resize(static_cast<size_t>(n));
  ParallelFor(0, n, kMorselRows, [&](int64_t b, int64_t e) {
    int32_t running = bases[static_cast<size_t>(b / kMorselRows)];
    std::vector<int32_t>& data = out.data32();
    for (int64_t i = b; i < e; ++i) {
      data[static_cast<size_t>(i)] = running;
      running += flags.Int32At(i) != 0 ? 1 : 0;
    }
  });
  *total = bases[static_cast<size_t>(num_morsels)];
  return out;
}

Table ScatterRows(const Table& input, const Column& flags, const Column& offsets) {
  const int64_t n = flags.size();
  GPL_CHECK(offsets.size() == n);
  // offsets[i] is the output slot; gathering the selected rows in input
  // order reproduces the scatter result.
  if (CurrentHostParallelism() <= 1 || n < 2 * kMorselRows) {
    std::vector<int64_t> indices;
    for (int64_t i = 0; i < n; ++i) {
      if (flags.Int32At(i) != 0) indices.push_back(i);
    }
    return input.Gather(indices);
  }
  const int64_t num_morsels = (n + kMorselRows - 1) / kMorselRows;
  std::vector<std::vector<int64_t>> parts(static_cast<size_t>(num_morsels));
  ParallelFor(0, n, kMorselRows, [&](int64_t b, int64_t e) {
    std::vector<int64_t>& part = parts[static_cast<size_t>(b / kMorselRows)];
    for (int64_t i = b; i < e; ++i) {
      if (flags.Int32At(i) != 0) part.push_back(i);
    }
  });
  size_t total_indices = 0;
  for (const auto& part : parts) total_indices += part.size();
  std::vector<int64_t> indices;
  indices.reserve(total_indices);
  for (const auto& part : parts) {
    indices.insert(indices.end(), part.begin(), part.end());
  }
  return input.Gather(indices);
}

// ---------------------------------------------------------------------------
// Timing descriptors
// ---------------------------------------------------------------------------

sim::KernelTimingDesc FilterTiming(double predicate_cost) {
  sim::KernelTimingDesc d;
  d.name = "k_map";
  d.compute_inst_per_row = 10.0 + 2.0 * predicate_cost;
  d.mem_inst_per_row = 2.0;
  d.private_bytes_per_item = 48;
  d.local_bytes_per_item = 0;
  return d;
}

sim::KernelTimingDesc ProjectTiming(double expr_cost, int num_outputs) {
  sim::KernelTimingDesc d;
  d.name = "k_project";
  d.compute_inst_per_row = 8.0 + 2.0 * expr_cost;
  d.mem_inst_per_row = 1.0 + 0.5 * num_outputs;
  d.private_bytes_per_item = 64;
  return d;
}

sim::KernelTimingDesc PrefixSumTiming() {
  sim::KernelTimingDesc d;
  d.name = "k_prefix_sum";
  d.compute_inst_per_row = 24.0;
  d.mem_inst_per_row = 3.0;
  d.private_bytes_per_item = 32;
  d.local_bytes_per_item = 8;  // local-memory scan tree
  d.blocking = true;
  return d;
}

sim::KernelTimingDesc ScatterTiming(int num_columns) {
  sim::KernelTimingDesc d;
  d.name = "k_scatter";
  d.compute_inst_per_row = 8.0;
  d.mem_inst_per_row = 1.5 + 0.5 * num_columns;
  d.private_bytes_per_item = 32;
  d.blocking = true;  // writes the compacted result to global memory
  return d;
}

sim::KernelTimingDesc HashBuildTiming(int64_t hash_table_bytes) {
  sim::KernelTimingDesc d;
  d.name = "k_hash_build";
  d.compute_inst_per_row = 36.0;
  d.mem_inst_per_row = 4.0;
  d.private_bytes_per_item = 64;
  d.local_bytes_per_item = 4;
  d.blocking = true;  // barrier after build (Section 3.2)
  d.random_access_fraction = 0.7;
  d.random_working_set_bytes = hash_table_bytes;
  return d;
}

sim::KernelTimingDesc HashProbeTiming(int64_t hash_table_bytes) {
  sim::KernelTimingDesc d;
  d.name = "k_hash_probe";
  d.compute_inst_per_row = 40.0;
  d.mem_inst_per_row = 5.0;
  d.private_bytes_per_item = 64;
  d.random_access_fraction = 0.5;
  d.random_working_set_bytes = hash_table_bytes;
  return d;
}

sim::KernelTimingDesc AggregateTiming(double expr_cost, int num_aggregates) {
  sim::KernelTimingDesc d;
  d.name = "k_reduce";
  d.compute_inst_per_row = 18.0 + 2.0 * expr_cost + 4.0 * num_aggregates;
  d.mem_inst_per_row = 2.0;
  d.private_bytes_per_item = 96;
  d.local_bytes_per_item = 16;  // local partials
  d.random_access_fraction = 0.2;
  d.random_working_set_bytes = 4096;
  return d;
}

sim::KernelTimingDesc ScanAggregateTiming() {
  sim::KernelTimingDesc d;
  d.name = "k_scan_reduce";
  d.compute_inst_per_row = 30.0;
  d.mem_inst_per_row = 4.0;
  d.private_bytes_per_item = 64;
  d.local_bytes_per_item = 32;
  d.blocking = true;  // KBE aggregation materializes the scan array
  return d;
}

sim::KernelTimingDesc SortTiming() {
  sim::KernelTimingDesc d;
  d.name = "k_sort";
  d.compute_inst_per_row = 64.0;
  d.mem_inst_per_row = 8.0;
  d.private_bytes_per_item = 64;
  d.local_bytes_per_item = 32;
  d.blocking = true;
  return d;
}

}  // namespace gpl
