#include "exec/exact_sum.h"

#include <cmath>
#include <cstring>
#include <limits>

namespace gpl {

namespace {

// Floored carry propagation over an arbitrary signed digit array; leaves
// every digit but the last in [0, 2^32) and folds the residue into the last.
void PropagateCarries(std::array<int64_t, ExactFloat64Sum::kDigits>* digits) {
  int64_t carry = 0;
  for (int k = 0; k < ExactFloat64Sum::kDigits - 1; ++k) {
    const int64_t v = (*digits)[k] + carry;
    const int64_t low = v & 0xffffffffLL;
    carry = (v - low) >> 32;  // exact: v - low is a multiple of 2^32
    (*digits)[k] = low;
  }
  (*digits)[ExactFloat64Sum::kDigits - 1] += carry;
}

}  // namespace

void ExactFloat64Sum::Add(double x) {
  uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  const uint64_t frac = bits & 0xfffffffffffffULL;
  const int exp = static_cast<int>((bits >> 52) & 0x7ff);
  const bool neg = (bits >> 63) != 0;
  if (exp == 0x7ff) {
    if (frac != 0) {
      any_nan_ = true;
    } else if (neg) {
      any_neg_inf_ = true;
    } else {
      any_pos_inf_ = true;
    }
    return;
  }
  uint64_t mantissa = frac;
  int lsb_exp;  // binary exponent of the mantissa's bit 0
  if (exp == 0) {
    if (mantissa == 0) return;  // +/-0 contributes nothing
    lsb_exp = 1 - 1075;         // subnormal
  } else {
    mantissa |= uint64_t{1} << 52;
    lsb_exp = exp - 1075;
  }
  const int shift = lsb_exp - kMinExp;  // >= 14 by choice of kMinExp
  const int digit = shift >> 5;
  const int bit = shift & 31;
  // The shifted mantissa spans < 85 bits: three base-2^32 chunks.
  const unsigned __int128 wide = static_cast<unsigned __int128>(mantissa) << bit;
  int64_t c0 = static_cast<int64_t>(static_cast<uint64_t>(wide) & 0xffffffffULL);
  int64_t c1 =
      static_cast<int64_t>(static_cast<uint64_t>(wide >> 32) & 0xffffffffULL);
  int64_t c2 = static_cast<int64_t>(static_cast<uint64_t>(wide >> 64));
  if (neg) {
    c0 = -c0;
    c1 = -c1;
    c2 = -c2;
  }
  digits_[digit] += c0;
  digits_[digit + 1] += c1;
  digits_[digit + 2] += c2;
  if (++adds_ >= kNormalizeEvery) Normalize();
}

void ExactFloat64Sum::AddCanonical(const Canonical& c) {
  any_pos_inf_ |= c.any_pos_inf;
  any_neg_inf_ |= c.any_neg_inf;
  any_nan_ |= c.any_nan;
  if (c.sign == 0) return;
  for (int k = 0; k < kDigits; ++k) {
    if (c.digits[k] == 0) continue;
    const int64_t v = static_cast<int64_t>(c.digits[k]);
    digits_[k] += c.sign < 0 ? -v : v;
  }
  if (++adds_ >= kNormalizeEvery) Normalize();
}

ExactFloat64Sum::Canonical ExactFloat64Sum::ToCanonical() const {
  Canonical c;
  c.any_pos_inf = any_pos_inf_;
  c.any_neg_inf = any_neg_inf_;
  c.any_nan = any_nan_;
  std::array<int64_t, kDigits> d = digits_;
  PropagateCarries(&d);
  int sign = 0;
  if (d[kDigits - 1] < 0) {
    sign = -1;
  } else {
    for (int k = kDigits - 1; k >= 0; --k) {
      if (d[k] != 0) {
        sign = 1;
        break;
      }
    }
  }
  if (sign < 0) {
    for (int64_t& v : d) v = -v;
    PropagateCarries(&d);
  }
  c.sign = sign;
  for (int k = 0; k < kDigits; ++k) {
    c.digits[k] = static_cast<uint64_t>(d[k]);
  }
  return c;
}

double ExactFloat64Sum::RoundCanonical(const Canonical& c) {
  if (c.any_nan || (c.any_pos_inf && c.any_neg_inf)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (c.any_pos_inf) return std::numeric_limits<double>::infinity();
  if (c.any_neg_inf) return -std::numeric_limits<double>::infinity();
  double r = 0.0;
  for (int k = kDigits - 1; k >= 0; --k) {
    if (c.digits[k] != 0) {
      r += std::ldexp(static_cast<double>(c.digits[k]), 32 * k + kMinExp);
    }
  }
  return c.sign < 0 ? -r : r;
}

void ExactFloat64Sum::Normalize() {
  PropagateCarries(&digits_);
  adds_ = 0;
}

void ExactFloat64Sum::Clear() {
  digits_.fill(0);
  adds_ = 0;
  any_pos_inf_ = false;
  any_neg_inf_ = false;
  any_nan_ = false;
}

}  // namespace gpl
