#include "exec/hash_table.h"

#include <cstddef>
#include <algorithm>

#include "common/math_util.h"
#include "common/thread_pool.h"

namespace gpl {

void JoinHashTable::Build(const std::vector<int64_t>& keys, int64_t row_base) {
  buckets_.clear();
  entry_keys_.clear();
  entry_rows_.clear();
  entry_next_.clear();
  Insert(keys, row_base);
}

void JoinHashTable::Insert(const std::vector<int64_t>& keys, int64_t row_base) {
  std::vector<uint64_t> hashes(keys.size());
  ParallelFor(0, static_cast<int64_t>(keys.size()), kMorselRows,
              [&](int64_t b, int64_t e) {
                for (int64_t i = b; i < e; ++i) {
                  hashes[static_cast<size_t>(i)] =
                      HashKey(keys[static_cast<size_t>(i)]);
                }
              });
  Insert(keys, hashes, row_base);
}

void JoinHashTable::Insert(const std::vector<int64_t>& keys,
                           const std::vector<uint64_t>& hashes,
                           int64_t row_base) {
  const int64_t target = num_entries() + static_cast<int64_t>(keys.size());
  if (static_cast<int64_t>(buckets_.size()) < target) {
    Rehash(target * 2);
  }
  const uint64_t mask = buckets_.size() - 1;
  entry_keys_.reserve(static_cast<size_t>(target));
  entry_rows_.reserve(static_cast<size_t>(target));
  entry_next_.reserve(static_cast<size_t>(target));
  for (size_t i = 0; i < keys.size(); ++i) {
    const int64_t entry = static_cast<int64_t>(entry_keys_.size());
    const size_t bucket = static_cast<size_t>(hashes[i] & mask);
    entry_keys_.push_back(keys[i]);
    entry_rows_.push_back(row_base + static_cast<int64_t>(i));
    entry_next_.push_back(buckets_[bucket]);
    buckets_[bucket] = entry;
  }
}

void JoinHashTable::Probe(int64_t key, std::vector<int64_t>* rows) const {
  if (buckets_.empty()) return;
  const uint64_t mask = buckets_.size() - 1;
  int64_t entry = buckets_[static_cast<size_t>(HashKey(key) & mask)];
  while (entry >= 0) {
    if (entry_keys_[static_cast<size_t>(entry)] == key) {
      rows->push_back(entry_rows_[static_cast<size_t>(entry)]);
    }
    entry = entry_next_[static_cast<size_t>(entry)];
  }
}

bool JoinHashTable::Contains(int64_t key) const {
  if (buckets_.empty()) return false;
  const uint64_t mask = buckets_.size() - 1;
  int64_t entry = buckets_[static_cast<size_t>(HashKey(key) & mask)];
  while (entry >= 0) {
    if (entry_keys_[static_cast<size_t>(entry)] == key) return true;
    entry = entry_next_[static_cast<size_t>(entry)];
  }
  return false;
}

int64_t JoinHashTable::byte_size() const {
  return static_cast<int64_t>(buckets_.size() * sizeof(int64_t) +
                              entry_keys_.size() * sizeof(int64_t) * 3);
}

void JoinHashTable::Rehash(int64_t min_buckets) {
  const size_t new_size = static_cast<size_t>(NextPow2(
      static_cast<uint64_t>(std::max<int64_t>(min_buckets, 16))));
  buckets_.assign(new_size, -1);
  const uint64_t mask = new_size - 1;
  for (size_t e = 0; e < entry_keys_.size(); ++e) {
    const size_t bucket = static_cast<size_t>(HashKey(entry_keys_[e]) & mask);
    entry_next_[e] = buckets_[bucket];
    buckets_[bucket] = static_cast<int64_t>(e);
  }
}

}  // namespace gpl
