#include "exec/expr.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "tpch/date.h"

namespace gpl {

namespace {

bool IsFloat(DataType t) { return t == DataType::kFloat64; }

class ColumnRef : public Expr {
 public:
  explicit ColumnRef(std::string name) : name_(std::move(name)) {}

  DataType OutputType(const Table& input) const override {
    return input.GetColumn(name_).type();
  }

  Column Evaluate(const Table& input) const override {
    return input.GetColumn(name_);  // deep copy; callers treat columns as values
  }

  double CostPerRow() const override { return 0.0; }
  std::string ToString() const override { return name_; }

  bool IsColumnRef(std::string* name) const override {
    *name = name_;
    return true;
  }

  void CollectColumnRefs(std::vector<std::string>* out) const override {
    out->push_back(name_);
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

class Literal : public Expr {
 public:
  static ExprPtr Int(int64_t v) {
    auto e = std::make_shared<Literal>();
    e->type_ = DataType::kInt64;
    e->int_ = v;
    return e;
  }
  static ExprPtr Float(double v) {
    auto e = std::make_shared<Literal>();
    e->type_ = DataType::kFloat64;
    e->float_ = v;
    return e;
  }
  static ExprPtr Date(int32_t days) {
    auto e = std::make_shared<Literal>();
    e->type_ = DataType::kDate;
    e->int_ = days;
    return e;
  }
  static ExprPtr String(std::string v) {
    auto e = std::make_shared<Literal>();
    e->type_ = DataType::kString;
    e->str_ = std::move(v);
    return e;
  }

  DataType OutputType(const Table&) const override { return type_; }

  Column Evaluate(const Table& input) const override {
    const int64_t n = input.num_rows();
    switch (type_) {
      case DataType::kInt64: {
        Column c(DataType::kInt64);
        c.Reserve(n);
        for (int64_t i = 0; i < n; ++i) c.AppendInt64(int_);
        return c;
      }
      case DataType::kFloat64: {
        Column c(DataType::kFloat64);
        c.Reserve(n);
        for (int64_t i = 0; i < n; ++i) c.AppendDouble(float_);
        return c;
      }
      case DataType::kDate: {
        Column c(DataType::kDate);
        c.Reserve(n);
        for (int64_t i = 0; i < n; ++i) c.AppendInt32(static_cast<int32_t>(int_));
        return c;
      }
      default:
        GPL_LOG(Fatal) << "string literals are only valid inside comparisons";
    }
    return Column(DataType::kInt32);
  }

  double CostPerRow() const override { return 0.0; }
  std::string ToString() const override {
    switch (type_) {
      case DataType::kInt64:
        return std::to_string(int_);
      case DataType::kFloat64:
        return std::to_string(float_);
      case DataType::kDate:
        return date::Format(static_cast<int32_t>(int_));
      default:
        return "'" + str_ + "'";
    }
  }

  bool IsLiteral(double* value) const override {
    switch (type_) {
      case DataType::kInt64:
      case DataType::kDate:
        *value = static_cast<double>(int_);
        return true;
      case DataType::kFloat64:
        *value = float_;
        return true;
      default:
        return false;  // strings estimated via dictionary cardinality
    }
  }

  DataType type_ = DataType::kInt64;
  int64_t int_ = 0;
  double float_ = 0.0;
  std::string str_;
};

enum class BinOp { kAdd, kSub, kMul, kDiv, kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr };

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
  }
  return "?";
}

bool IsComparison(BinOp op) {
  return op == BinOp::kEq || op == BinOp::kNe || op == BinOp::kLt ||
         op == BinOp::kLe || op == BinOp::kGt || op == BinOp::kGe;
}

class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinOp op, ExprPtr a, ExprPtr b)
      : op_(op), a_(std::move(a)), b_(std::move(b)) {}

  DataType OutputType(const Table& input) const override {
    if (IsComparison(op_) || op_ == BinOp::kAnd || op_ == BinOp::kOr) {
      return DataType::kInt32;
    }
    const DataType ta = a_->OutputType(input);
    const DataType tb = b_->OutputType(input);
    if (IsFloat(ta) || IsFloat(tb)) return DataType::kFloat64;
    return DataType::kInt64;
  }

  Column Evaluate(const Table& input) const override {
    // String equality against a literal: compare dictionary codes.
    if (IsComparison(op_)) {
      const Column* str_col = nullptr;
      const Literal* str_lit = nullptr;
      if (auto lit = dynamic_cast<const Literal*>(b_.get());
          lit != nullptr && lit->type_ == DataType::kString) {
        str_lit = lit;
        // a_ must be a string column reference.
      } else if (auto lit2 = dynamic_cast<const Literal*>(a_.get());
                 lit2 != nullptr && lit2->type_ == DataType::kString) {
        str_lit = lit2;
      }
      if (str_lit != nullptr) {
        GPL_CHECK(op_ == BinOp::kEq || op_ == BinOp::kNe)
            << "only =/<> are supported on strings (Ocelot-style workload)";
        const Expr* col_side = (str_lit == b_.get() ? a_.get() : b_.get());
        Column col = col_side->Evaluate(input);
        GPL_CHECK(col.type() == DataType::kString)
            << "string literal compared to non-string expression";
        str_col = &col;
        const int32_t code = col.dictionary()->Lookup(str_lit->str_);
        const int64_t n = str_col->size();
        Column out(DataType::kInt32);
        out.Reserve(n);
        for (int64_t i = 0; i < n; ++i) {
          const bool eq = str_col->Int32At(i) == code;
          out.AppendInt32((op_ == BinOp::kEq) == eq ? 1 : 0);
        }
        return out;
      }
    }

    Column ca = a_->Evaluate(input);
    Column cb = b_->Evaluate(input);
    const int64_t n = ca.size();
    GPL_CHECK(cb.size() == n) << "operand length mismatch in " << ToString();

    if (op_ == BinOp::kAnd || op_ == BinOp::kOr) {
      Column out(DataType::kInt32);
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        const bool va = ca.AsInt64(i) != 0;
        const bool vb = cb.AsInt64(i) != 0;
        out.AppendInt32((op_ == BinOp::kAnd ? (va && vb) : (va || vb)) ? 1 : 0);
      }
      return out;
    }

    if (IsComparison(op_)) {
      Column out(DataType::kInt32);
      out.Reserve(n);
      const bool flt = IsFloat(ca.type()) || IsFloat(cb.type());
      for (int64_t i = 0; i < n; ++i) {
        bool r = false;
        if (flt) {
          const double va = ca.AsDouble(i), vb = cb.AsDouble(i);
          switch (op_) {
            case BinOp::kEq: r = va == vb; break;
            case BinOp::kNe: r = va != vb; break;
            case BinOp::kLt: r = va < vb; break;
            case BinOp::kLe: r = va <= vb; break;
            case BinOp::kGt: r = va > vb; break;
            case BinOp::kGe: r = va >= vb; break;
            default: break;
          }
        } else {
          const int64_t va = ca.AsInt64(i), vb = cb.AsInt64(i);
          switch (op_) {
            case BinOp::kEq: r = va == vb; break;
            case BinOp::kNe: r = va != vb; break;
            case BinOp::kLt: r = va < vb; break;
            case BinOp::kLe: r = va <= vb; break;
            case BinOp::kGt: r = va > vb; break;
            case BinOp::kGe: r = va >= vb; break;
            default: break;
          }
        }
        out.AppendInt32(r ? 1 : 0);
      }
      return out;
    }

    // Arithmetic.
    const bool flt = IsFloat(ca.type()) || IsFloat(cb.type());
    if (flt) {
      Column out(DataType::kFloat64);
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        const double va = ca.AsDouble(i), vb = cb.AsDouble(i);
        double r = 0.0;
        switch (op_) {
          case BinOp::kAdd: r = va + vb; break;
          case BinOp::kSub: r = va - vb; break;
          case BinOp::kMul: r = va * vb; break;
          case BinOp::kDiv: r = vb == 0.0 ? 0.0 : va / vb; break;
          default: break;
        }
        out.AppendDouble(r);
      }
      return out;
    }
    Column out(DataType::kInt64);
    out.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      const int64_t va = ca.AsInt64(i), vb = cb.AsInt64(i);
      int64_t r = 0;
      switch (op_) {
        case BinOp::kAdd: r = va + vb; break;
        case BinOp::kSub: r = va - vb; break;
        case BinOp::kMul: r = va * vb; break;
        case BinOp::kDiv: r = vb == 0 ? 0 : va / vb; break;
        default: break;
      }
      out.AppendInt64(r);
    }
    return out;
  }

  double CostPerRow() const override {
    return 1.0 + a_->CostPerRow() + b_->CostPerRow();
  }

  std::string ToString() const override {
    return "(" + a_->ToString() + " " + BinOpName(op_) + " " + b_->ToString() + ")";
  }

  double EstimateSelectivity(const StatsProvider& stats) const override {
    if (op_ == BinOp::kAnd) {
      const double sa = a_->EstimateSelectivity(stats);
      const double sb = b_->EstimateSelectivity(stats);
      // Two conditions on the same single column (e.g. a date range) are
      // perfectly anti-correlated intervals, not independent events.
      std::vector<std::string> refs_a, refs_b;
      a_->CollectColumnRefs(&refs_a);
      b_->CollectColumnRefs(&refs_b);
      if (refs_a.size() == 1 && refs_a == refs_b) {
        return std::max(0.0001, sa + sb - 1.0);
      }
      return sa * sb;
    }
    if (op_ == BinOp::kOr) {
      const double sa = a_->EstimateSelectivity(stats);
      const double sb = b_->EstimateSelectivity(stats);
      return sa + sb - sa * sb;
    }
    if (!IsComparison(op_)) return 1.0;

    // Column-vs-literal comparisons use column statistics.
    std::string column;
    double literal = 0.0;
    bool col_left = true;
    if (a_->IsColumnRef(&column) && b_->IsLiteral(&literal)) {
      col_left = true;
    } else if (b_->IsColumnRef(&column) && a_->IsLiteral(&literal)) {
      col_left = false;
    } else if (op_ == BinOp::kEq &&
               (a_->IsColumnRef(&column) || b_->IsColumnRef(&column))) {
      // Equality against a string literal (IsLiteral returns false for
      // strings): 1 / ndv.
      double mn = 0, mx = 0;
      int64_t ndv = 0;
      if (stats.GetColumnStats(column, &mn, &mx, &ndv) && ndv > 0) {
        return 1.0 / static_cast<double>(ndv);
      }
      return 0.1;
    } else {
      return 0.33;  // column-vs-column or complex comparison: default guess
    }

    double mn = 0, mx = 0;
    int64_t ndv = 0;
    if (!stats.GetColumnStats(column, &mn, &mx, &ndv)) return 0.33;
    switch (op_) {
      case BinOp::kEq:
        return ndv > 0 ? 1.0 / static_cast<double>(ndv) : 0.1;
      case BinOp::kNe:
        return ndv > 0 ? 1.0 - 1.0 / static_cast<double>(ndv) : 0.9;
      default: {
        if (mx <= mn) return 0.5;
        double frac_below = (literal - mn) / (mx - mn);  // P(col < literal)
        frac_below = std::clamp(frac_below, 0.0, 1.0);
        const bool less =
            col_left ? (op_ == BinOp::kLt || op_ == BinOp::kLe)
                     : (op_ == BinOp::kGt || op_ == BinOp::kGe);
        return less ? frac_below : 1.0 - frac_below;
      }
    }
  }

  void CollectColumnRefs(std::vector<std::string>* out) const override {
    a_->CollectColumnRefs(out);
    b_->CollectColumnRefs(out);
  }

 private:
  BinOp op_;
  ExprPtr a_;
  ExprPtr b_;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr a) : a_(std::move(a)) {}

  DataType OutputType(const Table&) const override { return DataType::kInt32; }

  Column Evaluate(const Table& input) const override {
    Column ca = a_->Evaluate(input);
    Column out(DataType::kInt32);
    const int64_t n = ca.size();
    out.Reserve(n);
    for (int64_t i = 0; i < n; ++i) out.AppendInt32(ca.AsInt64(i) == 0 ? 1 : 0);
    return out;
  }

  double CostPerRow() const override { return 1.0 + a_->CostPerRow(); }
  std::string ToString() const override { return "NOT " + a_->ToString(); }

  double EstimateSelectivity(const StatsProvider& stats) const override {
    return 1.0 - a_->EstimateSelectivity(stats);
  }

  void CollectColumnRefs(std::vector<std::string>* out) const override {
    a_->CollectColumnRefs(out);
  }

 private:
  ExprPtr a_;
};

class YearExpr : public Expr {
 public:
  explicit YearExpr(ExprPtr a) : a_(std::move(a)) {}

  DataType OutputType(const Table&) const override { return DataType::kInt32; }

  Column Evaluate(const Table& input) const override {
    Column ca = a_->Evaluate(input);
    GPL_CHECK(ca.type() == DataType::kDate) << "YearOf needs a date expression";
    Column out(DataType::kInt32);
    const int64_t n = ca.size();
    out.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      out.AppendInt32(date::Year(ca.Int32At(i)));
    }
    return out;
  }

  double CostPerRow() const override { return 4.0 + a_->CostPerRow(); }
  std::string ToString() const override {
    return "YEAR(" + a_->ToString() + ")";
  }

  void CollectColumnRefs(std::vector<std::string>* out) const override {
    a_->CollectColumnRefs(out);
  }

 private:
  ExprPtr a_;
};

class CaseExpr : public Expr {
 public:
  CaseExpr(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr)
      : cond_(std::move(cond)),
        then_(std::move(then_expr)),
        else_(std::move(else_expr)) {}

  DataType OutputType(const Table& input) const override {
    const DataType tt = then_->OutputType(input);
    const DataType te = else_->OutputType(input);
    if (IsFloat(tt) || IsFloat(te)) return DataType::kFloat64;
    return DataType::kInt64;
  }

  Column Evaluate(const Table& input) const override {
    Column cc = cond_->Evaluate(input);
    Column ct = then_->Evaluate(input);
    Column ce = else_->Evaluate(input);
    const int64_t n = cc.size();
    if (OutputType(input) == DataType::kFloat64) {
      Column out(DataType::kFloat64);
      out.Reserve(n);
      for (int64_t i = 0; i < n; ++i) {
        out.AppendDouble(cc.AsInt64(i) != 0 ? ct.AsDouble(i) : ce.AsDouble(i));
      }
      return out;
    }
    Column out(DataType::kInt64);
    out.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      out.AppendInt64(cc.AsInt64(i) != 0 ? ct.AsInt64(i) : ce.AsInt64(i));
    }
    return out;
  }

  double CostPerRow() const override {
    return 1.0 + cond_->CostPerRow() + then_->CostPerRow() + else_->CostPerRow();
  }

  std::string ToString() const override {
    return "CASE WHEN " + cond_->ToString() + " THEN " + then_->ToString() +
           " ELSE " + else_->ToString() + " END";
  }

  void CollectColumnRefs(std::vector<std::string>* out) const override {
    cond_->CollectColumnRefs(out);
    then_->CollectColumnRefs(out);
    else_->CollectColumnRefs(out);
  }

 private:
  ExprPtr cond_;
  ExprPtr then_;
  ExprPtr else_;
};

class StartsWithExpr : public Expr {
 public:
  StartsWithExpr(ExprPtr str_expr, std::string prefix)
      : str_(std::move(str_expr)), prefix_(std::move(prefix)) {}

  DataType OutputType(const Table&) const override { return DataType::kInt32; }

  Column Evaluate(const Table& input) const override {
    Column col = str_->Evaluate(input);
    GPL_CHECK(col.type() == DataType::kString)
        << "StrStartsWith needs a string expression";
    // Precompute the matching dictionary codes once per batch.
    const Dictionary& dict = *col.dictionary();
    std::vector<uint8_t> matches(static_cast<size_t>(dict.size()));
    for (int32_t code = 0; code < dict.size(); ++code) {
      matches[static_cast<size_t>(code)] =
          dict.GetString(code).rfind(prefix_, 0) == 0 ? 1 : 0;
    }
    Column out(DataType::kInt32);
    const int64_t n = col.size();
    out.Reserve(n);
    for (int64_t i = 0; i < n; ++i) {
      out.AppendInt32(matches[static_cast<size_t>(col.Int32At(i))]);
    }
    return out;
  }

  double CostPerRow() const override { return 2.0 + str_->CostPerRow(); }
  std::string ToString() const override {
    return str_->ToString() + " LIKE '" + prefix_ + "%'";
  }

  double EstimateSelectivity(const StatsProvider& stats) const override {
    (void)stats;
    return 0.17;  // PROMO is 1 of 6 first syllables of p_type
  }

  void CollectColumnRefs(std::vector<std::string>* out) const override {
    str_->CollectColumnRefs(out);
  }

 private:
  ExprPtr str_;
  std::string prefix_;
};

}  // namespace

ExprPtr Col(std::string name) { return std::make_shared<ColumnRef>(std::move(name)); }
ExprPtr LitInt(int64_t value) { return Literal::Int(value); }
ExprPtr LitFloat(double value) { return Literal::Float(value); }
ExprPtr LitDate(const std::string& ymd) {
  Result<int32_t> days = date::Parse(ymd);
  GPL_CHECK(days.ok()) << days.status().ToString();
  return Literal::Date(days.value());
}
ExprPtr LitString(std::string value) { return Literal::String(std::move(value)); }

ExprPtr Add(ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(BinOp::kAdd, std::move(a), std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(BinOp::kSub, std::move(a), std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(BinOp::kMul, std::move(a), std::move(b));
}
ExprPtr Div(ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(BinOp::kDiv, std::move(a), std::move(b));
}
ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(BinOp::kEq, std::move(a), std::move(b));
}
ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(BinOp::kNe, std::move(a), std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(BinOp::kLt, std::move(a), std::move(b));
}
ExprPtr Le(ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(BinOp::kLe, std::move(a), std::move(b));
}
ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(BinOp::kGt, std::move(a), std::move(b));
}
ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(BinOp::kGe, std::move(a), std::move(b));
}
ExprPtr And(ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(BinOp::kAnd, std::move(a), std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return std::make_shared<BinaryExpr>(BinOp::kOr, std::move(a), std::move(b));
}
ExprPtr Not(ExprPtr a) { return std::make_shared<NotExpr>(std::move(a)); }
ExprPtr YearOf(ExprPtr date_expr) {
  return std::make_shared<YearExpr>(std::move(date_expr));
}
ExprPtr CaseWhen(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr) {
  return std::make_shared<CaseExpr>(std::move(cond), std::move(then_expr),
                                    std::move(else_expr));
}
ExprPtr InRange(ExprPtr a, ExprPtr lo, ExprPtr hi) {
  return And(Ge(a, std::move(lo)), Lt(a, std::move(hi)));
}

ExprPtr StrStartsWith(ExprPtr str_expr, std::string prefix) {
  return std::make_shared<StartsWithExpr>(std::move(str_expr), std::move(prefix));
}

}  // namespace gpl
