#ifndef GPL_EXEC_HASH_TABLE_H_
#define GPL_EXEC_HASH_TABLE_H_

#include <cstdint>
#include <vector>

namespace gpl {

/// Hash table for equi-joins: maps int64 keys to build-side row indices.
/// Layout follows the GPU-style unzipped chained design of [He et al. 2013]:
/// a power-of-two bucket array of chain heads plus parallel entry arrays
/// (key, row, next), which is what the simulated hash build/probe kernels
/// "materialize" in global memory. Duplicated keys are supported.
class JoinHashTable {
 public:
  JoinHashTable() = default;

  /// Builds from a key array; entry i maps keys[i] -> row_base + i.
  void Build(const std::vector<int64_t>& keys, int64_t row_base = 0);

  /// Appends more entries (used by tile-wise non-blocking hash build).
  /// The hashes are computed morsel-parallel when the current scope allows
  /// (common/thread_pool.h); the chain linking itself stays serial so the
  /// entry order, chain order and byte_size() are identical to a serial
  /// build at any host_threads — probes report matches in chain order, so
  /// the layout is observable. (A partitioned parallel insert was rejected:
  /// it cannot reproduce the serial chain layout, and linking is three
  /// stores per entry — the parallel win is in hashing, which this keeps.)
  void Insert(const std::vector<int64_t>& keys, int64_t row_base);

  /// Insert with caller-precomputed hashes; hashes[i] must be
  /// HashKey(keys[i]).
  void Insert(const std::vector<int64_t>& keys,
              const std::vector<uint64_t>& hashes, int64_t row_base);

  /// Appends all build-side matches of `key` to `rows`.
  void Probe(int64_t key, std::vector<int64_t>* rows) const;

  /// True if `key` has at least one match.
  bool Contains(int64_t key) const;

  int64_t num_entries() const { return static_cast<int64_t>(entry_keys_.size()); }

  /// Bytes of the materialized table in (simulated) global memory: buckets +
  /// the three entry arrays. This is the random working set of probe kernels.
  int64_t byte_size() const;

  /// Packs a pair of int32 keys into one int64 join key (composite joins,
  /// e.g. Q9's partsupp join).
  static int64_t PackKeys(int32_t a, int32_t b) {
    return (static_cast<int64_t>(a) << 32) ^
           (static_cast<int64_t>(b) & 0xffffffffLL);
  }

  /// The key hash (murmur-style finalizer). Public so builds can precompute
  /// hashes in parallel.
  static uint64_t HashKey(int64_t key) {
    uint64_t h = static_cast<uint64_t>(key);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
  }

 private:
  void Rehash(int64_t min_buckets);

  std::vector<int64_t> buckets_;     // head entry index per bucket, -1 empty
  std::vector<int64_t> entry_keys_;
  std::vector<int64_t> entry_rows_;
  std::vector<int64_t> entry_next_;  // chain link, -1 end
};

}  // namespace gpl

#endif  // GPL_EXEC_HASH_TABLE_H_
