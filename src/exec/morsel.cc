#include "exec/morsel.h"

#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace gpl {

namespace {

/// Parallel decomposition pays off only when there are at least two morsels
/// and the scope allows more than one thread.
bool RunSerial(int64_t rows) {
  return CurrentHostParallelism() <= 1 || rows < 2 * kMorselRows;
}

int64_t NumMorsels(int64_t rows) {
  return (rows + kMorselRows - 1) / kMorselRows;
}

}  // namespace

Column EvaluateMorsels(const Expr& expr, const Table& input) {
  const int64_t n = input.num_rows();
  // Bare column references are a memcpy, not a computation — slicing and
  // re-concatenating them would only add copies.
  std::string column_name;
  if (RunSerial(n) || expr.IsColumnRef(&column_name)) {
    return expr.Evaluate(input);
  }
  const int64_t num_morsels = NumMorsels(n);
  std::vector<std::optional<Column>> parts(static_cast<size_t>(num_morsels));
  ParallelFor(0, n, kMorselRows, [&](int64_t b, int64_t e) {
    parts[static_cast<size_t>(b / kMorselRows)] =
        expr.Evaluate(input.Slice(b, e - b));
  });
  Column out = std::move(*parts[0]);
  out.Reserve(n);
  for (int64_t m = 1; m < num_morsels; ++m) {
    GPL_CHECK_OK(out.AppendColumn(*parts[static_cast<size_t>(m)]));
  }
  return out;
}

std::vector<int64_t> SelectIndices(const Expr& predicate, const Table& input) {
  const int64_t n = input.num_rows();
  if (RunSerial(n)) {
    const Column flags = predicate.Evaluate(input);
    std::vector<int64_t> indices;
    for (int64_t i = 0; i < n; ++i) {
      if (flags.Int32At(i) != 0) indices.push_back(i);
    }
    return indices;
  }
  const int64_t num_morsels = NumMorsels(n);
  std::vector<std::vector<int64_t>> parts(static_cast<size_t>(num_morsels));
  ParallelFor(0, n, kMorselRows, [&](int64_t b, int64_t e) {
    const Column flags = predicate.Evaluate(input.Slice(b, e - b));
    std::vector<int64_t>& out = parts[static_cast<size_t>(b / kMorselRows)];
    const int64_t len = e - b;
    for (int64_t i = 0; i < len; ++i) {
      if (flags.Int32At(i) != 0) out.push_back(b + i);
    }
  });
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  std::vector<int64_t> indices;
  indices.reserve(total);
  for (const auto& part : parts) {
    indices.insert(indices.end(), part.begin(), part.end());
  }
  return indices;
}

std::vector<int64_t> EvaluateJoinKeys(const Table& input,
                                      const std::vector<ExprPtr>& key_exprs) {
  GPL_CHECK(!key_exprs.empty() && key_exprs.size() <= 2)
      << "joins support one or two key expressions";
  const int64_t n = input.num_rows();
  std::vector<int64_t> keys(static_cast<size_t>(n));
  const auto fill = [&](const Table& slice, int64_t base) {
    Column k0 = key_exprs[0]->Evaluate(slice);
    const int64_t len = k0.size();
    if (key_exprs.size() == 1) {
      for (int64_t i = 0; i < len; ++i) {
        keys[static_cast<size_t>(base + i)] = k0.AsInt64(i);
      }
    } else {
      Column k1 = key_exprs[1]->Evaluate(slice);
      for (int64_t i = 0; i < len; ++i) {
        keys[static_cast<size_t>(base + i)] = JoinHashTable::PackKeys(
            static_cast<int32_t>(k0.AsInt64(i)),
            static_cast<int32_t>(k1.AsInt64(i)));
      }
    }
  };
  if (RunSerial(n)) {
    fill(input, 0);
    return keys;
  }
  ParallelFor(0, n, kMorselRows, [&](int64_t b, int64_t e) {
    fill(input.Slice(b, e - b), b);
  });
  return keys;
}

void ProbeAll(const JoinHashTable& table, const std::vector<int64_t>& keys,
              std::vector<int64_t>* probe_idx,
              std::vector<int64_t>* build_idx) {
  const int64_t n = static_cast<int64_t>(keys.size());
  if (RunSerial(n)) {
    std::vector<int64_t> matches;
    for (int64_t i = 0; i < n; ++i) {
      matches.clear();
      table.Probe(keys[static_cast<size_t>(i)], &matches);
      for (int64_t b : matches) {
        probe_idx->push_back(i);
        build_idx->push_back(b);
      }
    }
    return;
  }
  const int64_t num_morsels = NumMorsels(n);
  struct MatchPart {
    std::vector<int64_t> probe;
    std::vector<int64_t> build;
  };
  std::vector<MatchPart> parts(static_cast<size_t>(num_morsels));
  ParallelFor(0, n, kMorselRows, [&](int64_t b, int64_t e) {
    MatchPart& part = parts[static_cast<size_t>(b / kMorselRows)];
    std::vector<int64_t> matches;
    for (int64_t i = b; i < e; ++i) {
      matches.clear();
      table.Probe(keys[static_cast<size_t>(i)], &matches);
      for (int64_t m : matches) {
        part.probe.push_back(i);
        part.build.push_back(m);
      }
    }
  });
  size_t total = 0;
  for (const MatchPart& part : parts) total += part.probe.size();
  probe_idx->reserve(probe_idx->size() + total);
  build_idx->reserve(build_idx->size() + total);
  for (const MatchPart& part : parts) {
    probe_idx->insert(probe_idx->end(), part.probe.begin(), part.probe.end());
    build_idx->insert(build_idx->end(), part.build.begin(), part.build.end());
  }
}

}  // namespace gpl
