#ifndef GPL_EXEC_EXACT_SUM_H_
#define GPL_EXEC_EXACT_SUM_H_

#include <array>
#include <cstdint>

namespace gpl {

/// Exact (error-free) accumulator for IEEE-754 double sums.
///
/// A fixed-point superaccumulator: the running sum is held as 68 base-2^32
/// digits spanning binary exponents [-1088, 1088), wide enough to hold any
/// sum of < 2^30 finite doubles without overflow or rounding. Because every
/// Add() is exact, the accumulated value — and therefore Round() — is
/// independent of insertion order, and two accumulators can be merged
/// digit-wise without losing a bit. This is what makes partial-aggregate
/// pushdown bit-identical to the single-device serial fold: each shard sums
/// its rows exactly, the coordinator merges the canonical digit strings
/// exactly, and the one rounding to double happens once, at the end.
///
/// Infinities and NaN are tracked as flags (a sum that saw +inf and -inf, or
/// any NaN, rounds to NaN; +inf alone rounds to +inf, mirroring what a
/// double fold would produce once saturated).
class ExactFloat64Sum {
 public:
  static constexpr int kDigits = 68;
  /// Binary exponent of digit 0's least-significant bit. Chosen so the
  /// smallest subnormal (2^-1074) lands at bit 14 of digit 0.
  static constexpr int kMinExp = -1088;

  /// Order-independent serialized form: sign (-1/0/+1) and the magnitude as
  /// base-2^32 digits (each < 2^32), least-significant first, plus the
  /// special-value flags. Equal mathematical values always produce equal
  /// canonical forms.
  struct Canonical {
    int sign = 0;
    std::array<uint64_t, kDigits> digits{};
    bool any_pos_inf = false;
    bool any_neg_inf = false;
    bool any_nan = false;
  };

  /// Adds one double, exactly (no rounding for finite values).
  void Add(double x);

  /// Adds another accumulator's value, exactly.
  void Merge(const ExactFloat64Sum& other) { AddCanonical(other.ToCanonical()); }

  /// Adds a serialized value (e.g. a shard partial), exactly.
  void AddCanonical(const Canonical& c);

  /// The current value in canonical sign-magnitude form.
  Canonical ToCanonical() const;

  /// Rounds the exact value to double. Deterministic: a fixed most- to
  /// least-significant digit fold, so equal canonical forms round equally.
  double Round() const { return RoundCanonical(ToCanonical()); }

  static double RoundCanonical(const Canonical& c);

  void Clear();

 private:
  // Carry-propagate so every digit except the top fits in [0, 2^32); the top
  // digit stays an unmasked signed residue (it carries the sign of the whole
  // value between normalizations).
  void Normalize();

  // Signed redundant digits: value = sum over k of digits_[k] * 2^(32k+kMinExp).
  // Each Add() touches at most 3 digits with < 2^32 of magnitude each, so
  // int64 digits absorb kNormalizeEvery adds between carry propagations.
  static constexpr int64_t kNormalizeEvery = int64_t{1} << 30;
  std::array<int64_t, kDigits> digits_{};
  int64_t adds_ = 0;
  bool any_pos_inf_ = false;
  bool any_neg_inf_ = false;
  bool any_nan_ = false;
};

}  // namespace gpl

#endif  // GPL_EXEC_EXACT_SUM_H_
