#!/usr/bin/env python3
"""Compares two metrics/bench JSON files and fails on regressions.

Each input is either a JSON array of objects or JSONL (one object per line).
Objects are matched by a key field (default: "query") and every shared
numeric field listed in --field is compared; a higher-is-worse value that
grew by more than --threshold-pct percent AND more than --abs-slack (in the
field's own unit) is a regression.

Typical uses:
  # simulated-time regression between two --metrics-json runs
  scripts/bench_diff.py base.json new.json --field elapsed_ms

  # serve-mode wall-clock overhead gate (metrics on vs. off)
  scripts/bench_diff.py off.json on.json --field wall_s \
      --threshold-pct 3 --abs-slack 0.05

Exits 1 if any regression is found, listing each offending (key, field).
"""
import argparse
import json
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        text = f.read().strip()
    if not text:
        return []
    if text.startswith("["):
        data = json.loads(text)
    else:
        data = [json.loads(line) for line in text.splitlines() if line.strip()]
    if not isinstance(data, list):
        data = [data]
    return data


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--key", default="query",
                        help="field matching objects across files")
    parser.add_argument("--field", action="append", default=[],
                        help="numeric field(s) to compare "
                             "(default: elapsed_ms)")
    parser.add_argument("--threshold-pct", type=float, default=5.0,
                        help="allowed growth in percent (default 5)")
    parser.add_argument("--abs-slack", type=float, default=0.0,
                        help="absolute growth always tolerated, in the "
                             "field's unit (guards tiny baselines)")
    args = parser.parse_args()
    fields = args.field or ["elapsed_ms"]

    baseline = {obj.get(args.key, i): obj
                for i, obj in enumerate(load(args.baseline))}
    current = {obj.get(args.key, i): obj
               for i, obj in enumerate(load(args.current))}

    shared = [k for k in baseline if k in current]
    if not shared:
        print("bench_diff: no matching entries between "
              f"{args.baseline} and {args.current}", file=sys.stderr)
        sys.exit(1)

    regressions = []
    for key in shared:
        for field in fields:
            old = baseline[key].get(field)
            new = current[key].get(field)
            if not isinstance(old, (int, float)) or \
               not isinstance(new, (int, float)):
                continue
            growth = new - old
            growth_pct = 100.0 * growth / old if old > 0 else float("inf")
            if growth > args.abs_slack and growth_pct > args.threshold_pct:
                regressions.append((key, field, old, new, growth_pct))
            else:
                print(f"bench_diff: ok {key}.{field}: {old:g} -> {new:g} "
                      f"({growth_pct:+.2f}%)")

    if regressions:
        for key, field, old, new, pct in regressions:
            print(f"bench_diff: REGRESSION {key}.{field}: {old:g} -> {new:g} "
                  f"({pct:+.2f}% > {args.threshold_pct:g}%)", file=sys.stderr)
        sys.exit(1)
    print(f"bench_diff: OK ({len(shared)} entries, fields: "
          f"{', '.join(fields)}, threshold {args.threshold_pct:g}%)")


if __name__ == "__main__":
    main()
