#!/usr/bin/env bash
# Repo verification: tier-1 build + tests, a -Werror configuration, a
# ThreadSanitizer build/run of the concurrent QueryService tests, and a
# tracing smoke run of the CLI whose output is validated by the in-tree
# JSON parser (via the trace_smoke binary's file-validation mode).
#
# Usage: scripts/check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "=== tier-1: configure + build + ctest ==="
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo
echo "=== strict: -Wall -Wextra -Werror configuration ==="
# -Wno-maybe-uninitialized: GCC 12 false positive on std::variant (as used by
# Result<T>) at -O2; see GCC PR 80635.
cmake -B "$BUILD-werror" -S . \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror -Wno-maybe-uninitialized"
cmake --build "$BUILD-werror" -j

echo
echo "=== tsan: QueryService tests under ThreadSanitizer ==="
# Only the service test binary is built in this tree (the rest of the suite
# is single-threaded and already covered above); it exercises the worker
# pool, admission queue, cancellation and stats under real concurrency.
cmake -B "$BUILD-tsan" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -O1 -g" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$BUILD-tsan" -j --target service_test
ctest --test-dir "$BUILD-tsan" --output-on-failure -R QueryService

echo
echo "=== trace smoke: gplcli --trace on Q5, JSON validated ==="
TRACE_OUT="$(mktemp /tmp/gpl_check_trace.XXXXXX.json)"
METRICS_OUT="$(mktemp /tmp/gpl_check_metrics.XXXXXX.json)"
trap 'rm -f "$TRACE_OUT" "$METRICS_OUT"' EXIT
"$BUILD/cli/gplcli" --query=Q5 --mode=gpl --sf=0.02 \
  --trace="$TRACE_OUT" --metrics-json="$METRICS_OUT"
"$BUILD/tests/trace_smoke" "$TRACE_OUT"
"$BUILD/tests/trace_smoke" "$METRICS_OUT"

echo
echo "check.sh: all checks passed"
