#!/usr/bin/env bash
# Repo verification: tier-1 build + tests, a -Werror configuration, a
# ThreadSanitizer build/run of the concurrent QueryService tests, an
# ASan+UBSan build/run of the fault-injection and service suites, a
# tracing smoke run of the CLI whose output is validated by the in-tree
# JSON parser (via the trace_smoke binary's file-validation mode), an
# EXPLAIN ANALYZE vs --metrics-json consistency diff (plain and under
# --mode=fused), a serve-mode telemetry smoke (JSONL snapshots + Prometheus
# textfile validated by scripts/validate_prom.py), a metrics-overhead
# wall-clock gate (scripts/bench_diff.py, 3% + 50 ms slack), and the
# host-scaling / shard-scaling / shared-work / fault / fusion-ablation
# bench gates.
#
# Usage: scripts/check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "=== tier-1: configure + build + ctest ==="
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo
echo "=== strict: -Wall -Wextra -Werror configuration ==="
# -Wno-maybe-uninitialized: GCC 12 false positive on std::variant (as used by
# Result<T>) at -O2; see GCC PR 80635.
cmake -B "$BUILD-werror" -S . \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror -Wno-maybe-uninitialized"
cmake --build "$BUILD-werror" -j

echo
echo "=== tsan: concurrency tests under ThreadSanitizer ==="
# The concurrent binaries only (the rest of the suite is single-threaded and
# already covered above): the QueryService worker pool, the work-stealing
# ThreadPool/ParallelFor, the shared TuningCache, the morsel-parallel
# engine paths at host_threads > 1, the sharded service (workers sharing
# one ShardedDatabase and per-device calibration map), the
# MetricsRegistry (service workers updating shared counters/histograms
# while a sampler thread collects snapshots), and the shared-work layer
# (PagePool refcounting, SubplanCache acquire/publish/attach, the bounded
# TuningCache, and the service-wide subplan cache under concurrent workers).
cmake -B "$BUILD-tsan" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -O1 -g" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$BUILD-tsan" -j \
  --target service_test --target thread_pool_test --target host_parallel_test \
  --target fault_test --target shard_test --target obs_test \
  --target fused_engine_test --target pool_test --target subplan_cache_test
ctest --test-dir "$BUILD-tsan" --output-on-failure \
  -R "QueryService|ThreadPool|TuningCache|HostParallel|ServiceChaos|ShardedService|MetricsRegistry|FusedBitIdentity|PagePool|SubplanCache"

echo
echo "=== asan+ubsan: fault-injection and service suites ==="
# Fault paths unwind executions mid-flight (partial work, retry loops,
# degradation re-runs); ASan+UBSan guards those error paths against leaks,
# use-after-free and UB that the happy path never exercises.
cmake -B "$BUILD-asan" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -O1 -g" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "$BUILD-asan" -j \
  --target fault_test --target service_test --target sim_channel_test \
  --target fusion_test --target subplan_cache_test
ctest --test-dir "$BUILD-asan" --output-on-failure \
  -R "Fault|ServiceChaos|QueryService|QueryHandle|Percentile|Channel|PlanFusion|FusedKernel|ComposeFusedStage|SubplanCache"

echo
echo "=== trace smoke: gplcli --trace on Q5, JSON validated ==="
TRACE_OUT="$(mktemp /tmp/gpl_check_trace.XXXXXX.json)"
METRICS_OUT="$(mktemp /tmp/gpl_check_metrics.XXXXXX.json)"
trap 'rm -f "$TRACE_OUT" "$METRICS_OUT"' EXIT
"$BUILD/cli/gplcli" --query=Q5 --mode=gpl --sf=0.02 \
  --trace="$TRACE_OUT" --metrics-json="$METRICS_OUT"
"$BUILD/tests/trace_smoke" "$TRACE_OUT"
"$BUILD/tests/trace_smoke" "$METRICS_OUT"

echo
echo "=== explain smoke: EXPLAIN ANALYZE actuals vs --metrics-json ==="
# One invocation emits both files from the same run; the per-segment actuals
# in the explain report must agree exactly with the QueryMetrics the engine
# reported for that run (segment cycles sum to elapsed_cycles, totals match
# field-for-field).
EXPLAIN_OUT="$(mktemp /tmp/gpl_check_explain.XXXXXX.json)"
EXPLAIN_METRICS_OUT="$(mktemp /tmp/gpl_check_explain_metrics.XXXXXX.json)"
trap 'rm -f "$TRACE_OUT" "$METRICS_OUT" "$EXPLAIN_OUT" "$EXPLAIN_METRICS_OUT"' EXIT
"$BUILD/cli/gplcli" --query=Q8 --mode=gpl --sf=0.02 --explain-analyze \
  --explain-json="$EXPLAIN_OUT" --metrics-json="$EXPLAIN_METRICS_OUT" > /dev/null
"$BUILD/tests/trace_smoke" "$EXPLAIN_OUT"
"$BUILD/tests/trace_smoke" "$EXPLAIN_METRICS_OUT"
python3 - "$EXPLAIN_OUT" "$EXPLAIN_METRICS_OUT" <<'PYEOF'
import json, sys
reports = {r["query"]: r for r in json.load(open(sys.argv[1]))}
entries = {e["query"]: e for e in json.load(open(sys.argv[2]))}
checked = 0
for query, report in reports.items():
    entry = entries[query]
    for field in ("elapsed_cycles", "elapsed_ms", "predicted_ms",
                  "channel_bytes", "materialized_bytes", "degraded_segments",
                  "fused_segments", "fused_launches_saved",
                  "fused_bytes_avoided",
                  "tuning_cache_hits", "tuning_cache_misses",
                  "subplan_cache_hits", "subplan_cache_misses"):
        if report["metrics"][field] != entry[field]:
            sys.exit(f"{query}.{field}: explain {report['metrics'][field]} "
                     f"!= metrics-json {entry[field]}")
        checked += 1
    seg_sum = sum(s["actual_cycles"] for s in report["segments"])
    total = entry["elapsed_cycles"]
    # %.9g serialization rounds each segment independently.
    if abs(seg_sum - total) > 1e-6 * max(total, 1.0):
        sys.exit(f"{query}: segment cycles {seg_sum} != total {total}")
print(f"explain smoke: OK ({len(reports)} queries, {checked} fields match)")
PYEOF

echo
echo "=== fused explain smoke: EXPLAIN ANALYZE under --mode=fused ==="
# The fused engine's report must stay consistent with --metrics-json from the
# same run, name each segment's engine, show fusion firing on Q5, and keep
# the per-segment fusion counters summing to the run totals.
FUSED_EXPLAIN_OUT="$(mktemp /tmp/gpl_check_fused_explain.XXXXXX.json)"
FUSED_METRICS_OUT="$(mktemp /tmp/gpl_check_fused_metrics.XXXXXX.json)"
trap 'rm -f "$TRACE_OUT" "$METRICS_OUT" "$EXPLAIN_OUT" "$EXPLAIN_METRICS_OUT" "$FUSED_EXPLAIN_OUT" "$FUSED_METRICS_OUT"' EXIT
"$BUILD/cli/gplcli" --query=Q5 --mode=fused --sf=0.02 --explain-analyze \
  --explain-json="$FUSED_EXPLAIN_OUT" --metrics-json="$FUSED_METRICS_OUT" \
  > /dev/null
"$BUILD/tests/trace_smoke" "$FUSED_EXPLAIN_OUT"
python3 - "$FUSED_EXPLAIN_OUT" "$FUSED_METRICS_OUT" <<'PYEOF'
import json, sys
reports = {r["query"]: r for r in json.load(open(sys.argv[1]))}
entries = {e["query"]: e for e in json.load(open(sys.argv[2]))}
for query, report in reports.items():
    entry = entries[query]
    for field in ("elapsed_cycles", "elapsed_ms", "fused_segments",
                  "fused_launches_saved", "fused_bytes_avoided"):
        if report["metrics"][field] != entry[field]:
            sys.exit(f"{query}.{field}: explain {report['metrics'][field]} "
                     f"!= metrics-json {entry[field]}")
    if entry["fused_segments"] < 1:
        sys.exit(f"{query}: fusion did not fire under --mode=fused")
    segments = report["segments"]
    if "fused" not in {s["engine"] for s in segments}:
        sys.exit(f"{query}: no segment reports engine=fused")
    saved = sum(s["launches_saved"] for s in segments)
    if saved != entry["fused_launches_saved"]:
        sys.exit(f"{query}: segment launches_saved {saved} != total "
                 f"{entry['fused_launches_saved']}")
    avoided = sum(s["fused_bytes_avoided"] for s in segments)
    if avoided != entry["fused_bytes_avoided"]:
        sys.exit(f"{query}: segment fused_bytes_avoided {avoided} != total "
                 f"{entry['fused_bytes_avoided']}")
print(f"fused explain smoke: OK ({len(reports)} queries, "
      f"{entries['Q5']['fused_launches_saved']} launches saved)")
PYEOF

echo
echo "=== serve telemetry smoke: periodic snapshots + Prometheus export ==="
# A short serve run with the sampler enabled must produce >= 2 JSONL
# snapshots (each line valid JSON per the in-tree parser) and a textfile
# that passes the Prometheus 0.0.4 validator with the core service and
# simulator families present.
STATS_OUT="$(mktemp /tmp/gpl_check_stats.XXXXXX.jsonl)"
PROM_OUT="$(mktemp /tmp/gpl_check_prom.XXXXXX.prom)"
trap 'rm -f "$TRACE_OUT" "$METRICS_OUT" "$EXPLAIN_OUT" "$EXPLAIN_METRICS_OUT" "$FUSED_EXPLAIN_OUT" "$FUSED_METRICS_OUT" "$STATS_OUT" "$PROM_OUT"' EXIT
"$BUILD/cli/gplcli" --query=all --mode=gpl --sf=0.02 \
  --serve-workers=2 --serve-queries=24 --stats-interval-ms=50 \
  --stats-jsonl="$STATS_OUT" --prom-textfile="$PROM_OUT" > /dev/null
"$BUILD/tests/trace_smoke" --jsonl "$STATS_OUT" 2
python3 scripts/validate_prom.py "$PROM_OUT" \
  --require-metric gpl_service_latency_ms \
  --require-metric gpl_service_queries_total \
  --require-metric gpl_sim_kernel_launches_total

echo
echo "=== metrics overhead: serve wall-clock, registry on vs. off ==="
# The null-registry fast path must keep metrics cheap: the instrumented run
# may not exceed the uninstrumented one by more than 3% AND 50 ms (the
# absolute slack absorbs scheduler noise on short CI runs).
OVERHEAD_OFF="$(mktemp /tmp/gpl_check_overhead_off.XXXXXX.json)"
OVERHEAD_ON="$(mktemp /tmp/gpl_check_overhead_on.XXXXXX.json)"
trap 'rm -f "$TRACE_OUT" "$METRICS_OUT" "$EXPLAIN_OUT" "$EXPLAIN_METRICS_OUT" "$FUSED_EXPLAIN_OUT" "$FUSED_METRICS_OUT" "$STATS_OUT" "$PROM_OUT" "$OVERHEAD_OFF" "$OVERHEAD_ON"' EXIT
serve_wall() {
  "$BUILD/cli/gplcli" --query=all --mode=gpl --sf=0.02 \
    --serve-workers=2 --serve-queries=48 "$@" \
    | sed -n 's/^host wall time \([0-9.]*\) s.*/\1/p'
}
printf '{"query":"serve","wall_s":%s}\n' "$(serve_wall)" > "$OVERHEAD_OFF"
printf '{"query":"serve","wall_s":%s}\n' \
  "$(serve_wall --serve-metrics --stats-interval-ms=100)" > "$OVERHEAD_ON"
python3 scripts/bench_diff.py "$OVERHEAD_OFF" "$OVERHEAD_ON" \
  --field wall_s --threshold-pct 3 --abs-slack 0.05

echo
echo "=== perf smoke: host-scaling bench, bit-identity + cache gates ==="
# The main tree builds RelWithDebInfo (-O2), so this is a release-grade run.
# --quick exits non-zero if parallel results are not bit-identical to
# serial, if the warm 8-thread batch exceeds 1.3x the serial warm batch
# (tolerance for single-core runners), or if the warm tuning-cache hit rate
# drops below 90%.
HOST_SCALING_OUT="$(mktemp /tmp/gpl_check_host_scaling.XXXXXX.jsonl)"
trap 'rm -f "$TRACE_OUT" "$METRICS_OUT" "$EXPLAIN_OUT" "$EXPLAIN_METRICS_OUT" "$FUSED_EXPLAIN_OUT" "$FUSED_METRICS_OUT" "$STATS_OUT" "$PROM_OUT" "$OVERHEAD_OFF" "$OVERHEAD_ON" "$HOST_SCALING_OUT"' EXIT
"$BUILD/bench/bench_host_scaling" --quick --out="$HOST_SCALING_OUT"

echo
echo "=== shard smoke: shard-scaling bench, bit-identity + speedup gates ==="
# --quick exits non-zero if any sharded result differs by a single bit from
# the single-device run, if a query's speedup degrades going 1 -> 2 -> 4
# shards, if no query reaches 1.5x at 4 shards, if Q9 fails to beat the
# single device at 4 shards, if Q5 falls off the combine merge (a stitched
# row means the compound-key co-partitioning proof regressed), if Q9 at 4
# shards fails to undercut the all-broadcast exchange baseline, or if the
# 1-shard point deviates from the unsharded engine. The JSONL is then
# diffed per (query, shard count) against the committed baseline: simulated
# elapsed, 1/speedup, and relation-exchange bytes may not regress (all
# higher-is-worse; simulated time is deterministic, so the 5% default
# threshold only absorbs serialization rounding).
SHARD_SCALING_OUT="$(mktemp /tmp/gpl_check_shard_scaling.XXXXXX.jsonl)"
trap 'rm -f "$TRACE_OUT" "$METRICS_OUT" "$EXPLAIN_OUT" "$EXPLAIN_METRICS_OUT" "$FUSED_EXPLAIN_OUT" "$FUSED_METRICS_OUT" "$STATS_OUT" "$PROM_OUT" "$OVERHEAD_OFF" "$OVERHEAD_ON" "$HOST_SCALING_OUT" "$SHARD_SCALING_OUT"' EXIT
"$BUILD/bench/bench_shard_scaling" --quick --out="$SHARD_SCALING_OUT"
python3 scripts/bench_diff.py bench/baselines/shard_scaling_quick.jsonl \
  "$SHARD_SCALING_OUT" --key case \
  --field elapsed_ms --field inv_speedup --field broadcast_bytes

echo
echo "=== shared-work smoke: subplan-cache bench, hit-rate + identity gates ==="
# --quick exits non-zero if the warm subplan hit rate drops below 80%, if the
# best cache-on p95 speedup over cache-off falls below 1.3x, if shared scans
# stop serving more rows than the cold scans materialize, or if any cached
# result deviates by a single bit from an isolated cache-less engine. The
# deterministic workers=1 rows are then diffed against the committed
# baseline: cold-scanned rows and subplan misses may not regress (both
# higher-is-worse and machine-independent).
SHARED_WORK_OUT="$(mktemp /tmp/gpl_check_shared_work.XXXXXX.jsonl)"
trap 'rm -f "$TRACE_OUT" "$METRICS_OUT" "$EXPLAIN_OUT" "$EXPLAIN_METRICS_OUT" "$FUSED_EXPLAIN_OUT" "$FUSED_METRICS_OUT" "$STATS_OUT" "$PROM_OUT" "$OVERHEAD_OFF" "$OVERHEAD_ON" "$HOST_SCALING_OUT" "$SHARD_SCALING_OUT" "$SHARED_WORK_OUT"' EXIT
"$BUILD/bench/bench_shared_work" --quick --out="$SHARED_WORK_OUT"
python3 scripts/bench_diff.py bench/baselines/shared_work_quick.jsonl \
  "$SHARED_WORK_OUT" --key key \
  --field scan_rows_scanned --field subplan_misses

echo
echo "=== fault smoke: availability bench, completion-rate gates ==="
# --quick exits non-zero if the fault-free run completes < 100% or if the
# retry policy fails to push completion above 90% at fault rate 0.01.
FAULT_OUT="$(mktemp /tmp/gpl_check_fault.XXXXXX.jsonl)"
trap 'rm -f "$TRACE_OUT" "$METRICS_OUT" "$EXPLAIN_OUT" "$EXPLAIN_METRICS_OUT" "$FUSED_EXPLAIN_OUT" "$FUSED_METRICS_OUT" "$STATS_OUT" "$PROM_OUT" "$OVERHEAD_OFF" "$OVERHEAD_ON" "$HOST_SCALING_OUT" "$SHARD_SCALING_OUT" "$SHARED_WORK_OUT" "$FAULT_OUT"' EXIT
"$BUILD/bench/bench_fault_availability" --quick --out="$FAULT_OUT"

echo
echo "=== fusion smoke: three-way ablation bench, win-rate + identity gates ==="
# --quick exits non-zero if any fused result deviates from the KBE oracle by
# a single bit, if the tuner's fused pick beats the pure GPL pipeline on
# fewer than 2 of the 5 queries (with fusion firing on the wins), or if no
# kernel launches were saved anywhere. The JSONL is then diffed per query
# against the committed baseline: fused elapsed and the fused/gpl ratio may
# not regress (both higher-is-worse; simulated time is deterministic).
FUSION_OUT="$(mktemp /tmp/gpl_check_fusion.XXXXXX.jsonl)"
trap 'rm -f "$TRACE_OUT" "$METRICS_OUT" "$EXPLAIN_OUT" "$EXPLAIN_METRICS_OUT" "$FUSED_EXPLAIN_OUT" "$FUSED_METRICS_OUT" "$STATS_OUT" "$PROM_OUT" "$OVERHEAD_OFF" "$OVERHEAD_ON" "$HOST_SCALING_OUT" "$SHARD_SCALING_OUT" "$SHARED_WORK_OUT" "$FAULT_OUT" "$FUSION_OUT"' EXIT
"$BUILD/bench/bench_fusion_ablation" --quick --out="$FUSION_OUT"
python3 scripts/bench_diff.py bench/baselines/fusion_ablation_quick.jsonl \
  "$FUSION_OUT" --key case \
  --field fused_ms --field fused_over_gpl

echo
echo "check.sh: all checks passed"
