#!/usr/bin/env bash
# Repo verification: tier-1 build + tests, a -Werror configuration, a
# ThreadSanitizer build/run of the concurrent QueryService tests, an
# ASan+UBSan build/run of the fault-injection and service suites, and a
# tracing smoke run of the CLI whose output is validated by the in-tree
# JSON parser (via the trace_smoke binary's file-validation mode).
#
# Usage: scripts/check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

echo "=== tier-1: configure + build + ctest ==="
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

echo
echo "=== strict: -Wall -Wextra -Werror configuration ==="
# -Wno-maybe-uninitialized: GCC 12 false positive on std::variant (as used by
# Result<T>) at -O2; see GCC PR 80635.
cmake -B "$BUILD-werror" -S . \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror -Wno-maybe-uninitialized"
cmake --build "$BUILD-werror" -j

echo
echo "=== tsan: concurrency tests under ThreadSanitizer ==="
# The concurrent binaries only (the rest of the suite is single-threaded and
# already covered above): the QueryService worker pool, the work-stealing
# ThreadPool/ParallelFor, the shared TuningCache, the morsel-parallel
# engine paths at host_threads > 1, and the sharded service (workers sharing
# one ShardedDatabase and per-device calibration map).
cmake -B "$BUILD-tsan" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -O1 -g" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$BUILD-tsan" -j \
  --target service_test --target thread_pool_test --target host_parallel_test \
  --target fault_test --target shard_test
ctest --test-dir "$BUILD-tsan" --output-on-failure \
  -R "QueryService|ThreadPool|TuningCache|HostParallel|ServiceChaos|ShardedService"

echo
echo "=== asan+ubsan: fault-injection and service suites ==="
# Fault paths unwind executions mid-flight (partial work, retry loops,
# degradation re-runs); ASan+UBSan guards those error paths against leaks,
# use-after-free and UB that the happy path never exercises.
cmake -B "$BUILD-asan" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -O1 -g" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "$BUILD-asan" -j \
  --target fault_test --target service_test --target sim_channel_test
ctest --test-dir "$BUILD-asan" --output-on-failure \
  -R "Fault|ServiceChaos|QueryService|QueryHandle|Percentile|Channel"

echo
echo "=== trace smoke: gplcli --trace on Q5, JSON validated ==="
TRACE_OUT="$(mktemp /tmp/gpl_check_trace.XXXXXX.json)"
METRICS_OUT="$(mktemp /tmp/gpl_check_metrics.XXXXXX.json)"
trap 'rm -f "$TRACE_OUT" "$METRICS_OUT"' EXIT
"$BUILD/cli/gplcli" --query=Q5 --mode=gpl --sf=0.02 \
  --trace="$TRACE_OUT" --metrics-json="$METRICS_OUT"
"$BUILD/tests/trace_smoke" "$TRACE_OUT"
"$BUILD/tests/trace_smoke" "$METRICS_OUT"

echo
echo "=== perf smoke: host-scaling bench, bit-identity + cache gates ==="
# The main tree builds RelWithDebInfo (-O2), so this is a release-grade run.
# --quick exits non-zero if parallel results are not bit-identical to
# serial, if the warm 8-thread batch exceeds 1.3x the serial warm batch
# (tolerance for single-core runners), or if the warm tuning-cache hit rate
# drops below 90%.
HOST_SCALING_OUT="$(mktemp /tmp/gpl_check_host_scaling.XXXXXX.jsonl)"
trap 'rm -f "$TRACE_OUT" "$METRICS_OUT" "$HOST_SCALING_OUT"' EXIT
"$BUILD/bench/bench_host_scaling" --quick --out="$HOST_SCALING_OUT"

echo
echo "=== shard smoke: shard-scaling bench, bit-identity + speedup gates ==="
# --quick exits non-zero if any sharded result differs by a single bit from
# the single-device run, if a query's speedup degrades going 1 -> 2 -> 4
# shards, or if no query reaches 1.5x at 4 shards.
SHARD_SCALING_OUT="$(mktemp /tmp/gpl_check_shard_scaling.XXXXXX.jsonl)"
trap 'rm -f "$TRACE_OUT" "$METRICS_OUT" "$HOST_SCALING_OUT" "$SHARD_SCALING_OUT"' EXIT
"$BUILD/bench/bench_shard_scaling" --quick --out="$SHARD_SCALING_OUT"

echo
echo "=== fault smoke: availability bench, completion-rate gates ==="
# --quick exits non-zero if the fault-free run completes < 100% or if the
# retry policy fails to push completion above 90% at fault rate 0.01.
FAULT_OUT="$(mktemp /tmp/gpl_check_fault.XXXXXX.jsonl)"
trap 'rm -f "$TRACE_OUT" "$METRICS_OUT" "$HOST_SCALING_OUT" "$SHARD_SCALING_OUT" "$FAULT_OUT"' EXIT
"$BUILD/bench/bench_fault_availability" --quick --out="$FAULT_OUT"

echo
echo "check.sh: all checks passed"
