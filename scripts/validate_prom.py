#!/usr/bin/env python3
"""Validates a Prometheus text-exposition (format 0.0.4) file.

Checks, beyond line-level syntax:
  - every sample belongs to a family announced by # HELP/# TYPE;
  - metric and label names match the Prometheus charsets;
  - histogram `le` buckets are cumulative and the +Inf bucket equals _count;
  - counter samples are non-negative.

Usage: scripts/validate_prom.py FILE [--require-metric NAME]...
Exits non-zero (with a message) on the first violation.
"""
import argparse
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{labels} value  — labels optional, value is a float/int/+Inf/NaN.
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))$"
)
LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def fail(path, line_no, message):
    print(f"validate_prom: {path}:{line_no}: {message}", file=sys.stderr)
    sys.exit(1)


def parse_labels(raw, path, line_no):
    """Returns the label dict, validating the full label string is consumed."""
    labels = {}
    rest = raw
    while rest:
        m = LABEL.match(rest)
        if not m:
            fail(path, line_no, f"malformed labels: {{{raw}}}")
        labels[m.group(1)] = m.group(2)
        rest = rest[m.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            fail(path, line_no, f"malformed labels: {{{raw}}}")
    return labels


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("file")
    parser.add_argument(
        "--require-metric",
        action="append",
        default=[],
        help="fail unless this family is present with at least one sample",
    )
    args = parser.parse_args()

    types = {}  # family -> type
    samples = {}  # family -> [(labels, value)]
    with open(args.file, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# HELP "):
                parts = line.split(" ", 3)
                if len(parts) < 3 or not METRIC_NAME.match(parts[2]):
                    fail(args.file, line_no, f"bad HELP line: {line}")
                continue
            if line.startswith("# TYPE "):
                parts = line.split(" ")
                if len(parts) != 4 or not METRIC_NAME.match(parts[2]):
                    fail(args.file, line_no, f"bad TYPE line: {line}")
                if parts[3] not in ("counter", "gauge", "histogram", "summary",
                                    "untyped"):
                    fail(args.file, line_no, f"unknown type: {parts[3]}")
                types[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue  # comment
            m = SAMPLE.match(line)
            if not m:
                fail(args.file, line_no, f"malformed sample: {line}")
            name = m.group("name")
            labels = parse_labels(m.group("labels") or "", args.file, line_no)
            for label in labels:
                if not LABEL_NAME.match(label):
                    fail(args.file, line_no, f"bad label name: {label}")
            # Strip histogram suffixes to find the announcing family.
            family = name
            for suffix in ("_bucket", "_sum", "_count"):
                base = name[: -len(suffix)] if name.endswith(suffix) else None
                if base and types.get(base) == "histogram":
                    family = base
                    break
            if family not in types:
                fail(args.file, line_no,
                     f"sample for unannounced family: {name}")
            value = float(m.group("value").replace("Inf", "inf"))
            if types[family] == "counter" and value < 0:
                fail(args.file, line_no, f"negative counter: {line}")
            samples.setdefault(family, []).append((name, labels, value))

    # Histogram coherence: buckets cumulative, +Inf == _count.
    for family, typ in types.items():
        if typ != "histogram":
            continue
        series = {}  # non-le labels -> {le: value}, plus _count/_sum
        for name, labels, value in samples.get(family, []):
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            entry = series.setdefault(key, {"buckets": [], "count": None})
            if name.endswith("_bucket"):
                entry["buckets"].append((labels.get("le", ""), value))
            elif name.endswith("_count"):
                entry["count"] = value
        for key, entry in series.items():
            buckets = entry["buckets"]
            if not buckets:
                fail(args.file, 0, f"{family}{dict(key)}: no buckets")
            values = [v for _, v in buckets]
            if values != sorted(values):
                fail(args.file, 0,
                     f"{family}{dict(key)}: buckets not cumulative")
            inf = [v for le, v in buckets if le == "+Inf"]
            if not inf:
                fail(args.file, 0, f"{family}{dict(key)}: missing +Inf bucket")
            if entry["count"] is not None and inf[0] != entry["count"]:
                fail(args.file, 0,
                     f"{family}{dict(key)}: +Inf bucket {inf[0]} != "
                     f"count {entry['count']}")

    for required in args.require_metric:
        if not samples.get(required):
            fail(args.file, 0, f"required metric absent: {required}")

    total = sum(len(v) for v in samples.values())
    print(f"validate_prom: OK ({args.file}: {len(types)} families, "
          f"{total} samples)")


if __name__ == "__main__":
    main()
