#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "engine/engine.h"
#include "engine/metrics_json.h"
#include "queries/tpch_queries.h"
#include "service/query_service.h"
#include "sim/engine.h"
#include "test_util.h"
#include "trace/json.h"
#include "trace/trace.h"

namespace gpl {
namespace {

using testing_util::MediumDb;
using testing_util::SmallDb;

using sim::ChannelConfig;
using sim::DeviceSpec;
using sim::Endpoint;
using sim::KernelLaunch;
using sim::PipelineSpec;
using sim::Simulator;
using sim::SimResult;

KernelLaunch MakeLaunch(const std::string& name, int64_t rows,
                        int64_t bytes_in, int64_t bytes_out) {
  KernelLaunch launch;
  launch.desc.name = name;
  launch.desc.compute_inst_per_row = 8.0;
  launch.desc.mem_inst_per_row = 2.0;
  launch.desc.private_bytes_per_item = 64;
  launch.rows_in = rows;
  launch.bytes_in = bytes_in;
  launch.rows_out = rows;
  launch.bytes_out = bytes_out;
  return launch;
}

PipelineSpec TwoStagePipeline(int64_t rows) {
  PipelineSpec spec;
  KernelLaunch producer = MakeLaunch("producer", rows, rows * 8, rows * 8);
  producer.output = Endpoint::kChannel;
  producer.workgroups_per_tile = 64;
  KernelLaunch consumer = MakeLaunch("consumer", rows, rows * 8, 8);
  consumer.input = Endpoint::kChannel;
  consumer.workgroups_per_tile = 64;
  spec.kernels = {producer, consumer};
  spec.channel_configs = {ChannelConfig{}};
  spec.tile_bytes = MiB(1);
  return spec;
}

// ---- JSON validator ----

TEST(JsonValidateTest, AcceptsValidDocuments) {
  for (const char* doc :
       {"{}", "[]", "null", "true", "-12.5e3", "\"s\\u00e9\\n\"",
        R"({"a":[1,2,{"b":null}],"c":"\"quoted\""})"}) {
    std::string error;
    EXPECT_TRUE(trace::ValidateJson(doc, &error)) << doc << ": " << error;
  }
}

TEST(JsonValidateTest, RejectsMalformedDocuments) {
  for (const char* doc :
       {"", "{", "[1,]", "{\"a\":}", "{'a':1}", "[1 2]", "01", "+1", "nul",
        "\"unterminated", "{\"a\":1}trailing", "[\"\\x\"]"}) {
    std::string error;
    EXPECT_FALSE(trace::ValidateJson(doc, &error)) << doc;
    EXPECT_FALSE(error.empty()) << doc;
  }
}

TEST(JsonValidateTest, EscapeRoundTripsThroughValidator) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  const std::string doc = "{\"k\":\"" + trace::JsonEscape(nasty) + "\"}";
  std::string error;
  EXPECT_TRUE(trace::ValidateJson(doc, &error)) << error;
}

TEST(JsonValidateTest, NumbersNeverProduceInfNan) {
  EXPECT_TRUE(trace::ValidateJson(trace::JsonNumber(1.0 / 0.0)));
  EXPECT_TRUE(trace::ValidateJson(trace::JsonNumber(std::nan(""))));
}

// ---- (a) span nesting / ordering on the simulated-time axis ----

TEST(TraceCollectorTest, PipelineSpansMatchSimulatedTime) {
  Simulator sim(DeviceSpec::AmdA10());
  trace::TraceCollector collector;
  PipelineSpec spec = TwoStagePipeline(500000);
  spec.trace = &collector;
  spec.label = "test segment";
  const SimResult r = *sim.RunPipeline(spec);

  const double elapsed = r.elapsed_cycles();
  ASSERT_FALSE(collector.spans().empty());

  const int seg_track = collector.TrackId("segment");
  int segment_spans = 0;
  for (const trace::SpanEvent& span : collector.spans()) {
    // Every span lies within the simulated execution window.
    EXPECT_GE(span.start_cycles, 0.0);
    EXPECT_LE(span.end_cycles, elapsed + 1e-9);
    EXPECT_LE(span.start_cycles, span.end_cycles);
    if (span.track == seg_track) {
      ++segment_spans;
      // The segment span nests every kernel/tile span.
      EXPECT_EQ(span.start_cycles, 0.0);
      EXPECT_GE(span.end_cycles, collector.SpanCoverageCycles() - 1e-9);
    }
  }
  EXPECT_EQ(segment_spans, 1);

  // Tile spans on one kernel's track complete in tile order.
  for (const char* kernel : {"producer", "consumer"}) {
    const int track = collector.TrackId(kernel);
    double last_end = -1.0;
    int tiles = 0;
    for (const trace::SpanEvent& span : collector.spans()) {
      if (span.track != track) continue;
      ++tiles;
      EXPECT_GE(span.end_cycles, last_end);  // emitted in completion order
      last_end = span.end_cycles;
    }
    EXPECT_GT(tiles, 0) << kernel;
  }

  // The origin advanced so the next run lays out after this one.
  EXPECT_DOUBLE_EQ(collector.origin_cycles(), elapsed);
}

TEST(TraceCollectorTest, ConsecutiveRunsLayOutEndToEnd) {
  Simulator sim(DeviceSpec::AmdA10());
  trace::TraceCollector collector;
  const SimResult first =
      *sim.RunKernelBatch(MakeLaunch("k", 100000, 800000, 0), 0, &collector);
  const size_t spans_after_first = collector.spans().size();
  const SimResult second =
      *sim.RunKernelBatch(MakeLaunch("k", 100000, 800000, 0), 0, &collector);
  ASSERT_EQ(collector.spans().size(), spans_after_first + 1);
  const trace::SpanEvent& a = collector.spans()[spans_after_first - 1];
  const trace::SpanEvent& b = collector.spans()[spans_after_first];
  EXPECT_DOUBLE_EQ(b.start_cycles, first.elapsed_cycles());
  EXPECT_DOUBLE_EQ(b.end_cycles - b.start_cycles, second.elapsed_cycles());
  EXPECT_LE(a.end_cycles, b.start_cycles + 1e-9);
}

// ---- (b) Chrome trace JSON is well-formed ----

TEST(TraceCollectorTest, ChromeJsonIsWellFormed) {
  Simulator sim(DeviceSpec::AmdA10());
  trace::TraceCollector collector;
  PipelineSpec spec = TwoStagePipeline(500000);
  spec.trace = &collector;
  spec.label = "chars needing escapes: \"quotes\" \\ and\nnewline";
  ASSERT_TRUE(sim.RunPipeline(spec).ok());

  const std::string json = collector.ToChromeJson();
  std::string error;
  ASSERT_TRUE(trace::ValidateJson(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(TraceCollectorTest, EmptyCollectorStillExportsValidJson) {
  trace::TraceCollector collector;
  std::string error;
  EXPECT_TRUE(trace::ValidateJson(collector.ToChromeJson(), &error)) << error;
}

// ---- (c) disabled tracing emits nothing and perturbs nothing ----

TEST(TraceCollectorTest, DisabledTracingEmitsNothingAndMatchesTracedRun) {
  Simulator sim(DeviceSpec::AmdA10());
  trace::TraceCollector unused;

  PipelineSpec spec = TwoStagePipeline(300000);
  const SimResult plain = *sim.RunPipeline(spec);  // spec.trace == nullptr
  EXPECT_TRUE(unused.empty());

  trace::TraceCollector collector;
  spec.trace = &collector;
  const SimResult traced = *sim.RunPipeline(spec);
  EXPECT_FALSE(collector.empty());

  // Tracing must not perturb the simulation: identical counters either way.
  EXPECT_DOUBLE_EQ(plain.counters.elapsed_cycles,
                   traced.counters.elapsed_cycles);
  EXPECT_DOUBLE_EQ(plain.counters.compute_cycles,
                   traced.counters.compute_cycles);
  EXPECT_DOUBLE_EQ(plain.counters.mem_cycles, traced.counters.mem_cycles);
  EXPECT_DOUBLE_EQ(plain.counters.stall_cycles, traced.counters.stall_cycles);
  EXPECT_DOUBLE_EQ(plain.counters.cache_accesses,
                   traced.counters.cache_accesses);
}

// ---- (d) per-kernel breakdown agrees with QueryMetrics ----

TEST(TraceCollectorTest, KernelPhaseBreakdownSumsToElapsed) {
  trace::TraceCollector collector;
  EngineOptions options;
  options.mode = EngineMode::kGpl;
  options.exec.trace = &collector;
  Engine engine(&MediumDb(), options);
  Result<QueryResult> result = engine.Execute(queries::Q5());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QueryMetrics& m = result->metrics;

  // The accumulated phases + overhead equal the counters' total work, so the
  // scaled per-kernel breakdown sums to elapsed_ms (Figures 20/29).
  double phase_cycles = collector.overhead_cycles();
  for (const trace::KernelPhase& phase : collector.kernel_phases()) {
    phase_cycles += phase.compute_cycles + phase.mem_cycles +
                    phase.channel_cycles + phase.stall_cycles;
  }
  const double counter_cycles =
      m.counters.compute_cycles + m.counters.mem_cycles +
      m.counters.channel_cycles + m.counters.stall_cycles +
      m.counters.launch_cycles;
  EXPECT_NEAR(phase_cycles, counter_cycles, 1e-6 * counter_cycles);

  const double scale =
      phase_cycles > 0.0 ? m.elapsed_ms / phase_cycles : 0.0;
  double breakdown_ms = collector.overhead_cycles() * scale;
  for (const trace::KernelPhase& phase : collector.kernel_phases()) {
    breakdown_ms += (phase.compute_cycles + phase.mem_cycles +
                     phase.channel_cycles + phase.stall_cycles) *
                    scale;
  }
  EXPECT_NEAR(breakdown_ms, m.elapsed_ms, 1e-6 * m.elapsed_ms);

  // And the spans cover (at least) 95% of the elapsed time.
  const double elapsed_cycles = m.counters.elapsed_cycles;
  EXPECT_GE(collector.SpanCoverageCycles(), 0.95 * elapsed_cycles);

  // The report renders and mentions every pipelined kernel once.
  const std::string report = collector.BreakdownReport(m.elapsed_ms);
  EXPECT_NE(report.find("k_hash_probe"), std::string::npos);
  EXPECT_NE(report.find("(launch/scheduling)"), std::string::npos);
}

// ---- metrics JSON export ----

TEST(MetricsJsonTest, ExportIsValidJsonWithExpectedFields) {
  EngineOptions options;
  options.mode = EngineMode::kGpl;
  Engine engine(&SmallDb(), options);
  Result<QueryResult> result = engine.Execute(queries::Q14());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  MetricsJsonEntry entry;
  entry.query = "Q14";
  entry.mode = "GPL";
  entry.device = engine.options().device.name;
  entry.metrics = result->metrics;

  const std::string object = QueryMetricsToJson(entry);
  std::string error;
  ASSERT_TRUE(trace::ValidateJson(object, &error)) << error;
  for (const char* field :
       {"\"query\"", "\"elapsed_ms\"", "\"cache_hit_ratio\"", "\"dc_ms\"",
        "\"delay_ms\"", "\"stall_cycles\"", "\"channel_bytes\""}) {
    EXPECT_NE(object.find(field), std::string::npos) << field;
  }

  const std::string array = MetricsReportToJson({entry, entry});
  ASSERT_TRUE(trace::ValidateJson(array, &error)) << error;
}

// Query names are user-controlled and flow into JSON string literals; every
// export path must escape them, not just the happy-path alphanumerics.
TEST(MetricsJsonTest, HostileQueryNamesExportValidJson) {
  EngineOptions options;
  Engine engine(&SmallDb(), options);
  Result<QueryResult> result = engine.Execute(queries::Q6());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  for (const char* name :
       {"q \"quoted\"", "back\\slash", "tab\there", "new\nline",
        "ctrl\x01\x1f chars", "}{\",\":[]"}) {
    SCOPED_TRACE(name);
    MetricsJsonEntry entry;
    entry.query = name;
    entry.mode = "GPL\"\\\n";  // mode/device are strings on the same path
    entry.device = "amd\x02";
    entry.metrics = result->metrics;
    std::string error;
    EXPECT_TRUE(trace::ValidateJson(QueryMetricsToJson(entry), &error))
        << error;
    EXPECT_TRUE(trace::ValidateJson(MetricsReportToJson({entry, entry}),
                                    &error))
        << error;
  }
}

TEST(ServiceTraceTest, HostileQueryNamesExportValidJson) {
  service::ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 16;
  // A couple of retry attempts so the "(attempt k/n)" span path is also
  // exercised with hostile names.
  options.fault.kernel_abort_rate = 0.2;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff_ms = 0.01;
  service::QueryService service(&SmallDb(), options);

  const std::vector<std::string> names = {
      "q \"quoted\"", "back\\slash", "tab\there", "new\nline",
      "ctrl\x01\x1f chars", "}{\",\":[]"};
  std::vector<service::QueryHandle> handles;
  for (const std::string& name : names) {
    Result<service::QueryHandle> submitted =
        service.Submit(name, queries::Q6());
    ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
    handles.push_back(submitted.take());
  }
  // One rejected submission so the admission-instant path sees a hostile
  // name too.
  service.Pause();
  for (size_t i = 0; i < options.queue_capacity + names.size() + 1; ++i) {
    Result<service::QueryHandle> extra =
        service.Submit("overflow \"\\\n", queries::Q6());
    if (!extra.ok()) break;
    handles.push_back(extra.take());
  }
  service.Resume();
  for (service::QueryHandle& handle : handles) handle.Await();
  service.Shutdown();

  trace::TraceCollector collector;
  service.ExportTrace(&collector);
  ASSERT_FALSE(collector.spans().empty());
  const std::string json = collector.ToChromeJson();
  std::string error;
  EXPECT_TRUE(trace::ValidateJson(json, &error)) << error;
  // The escaped form of a hostile name survives into the document.
  EXPECT_NE(json.find(trace::JsonEscape("q \"quoted\"")), std::string::npos);
  EXPECT_NE(json.find(trace::JsonEscape("new\nline")), std::string::npos);
}

// ---- KBE path also traces ----

TEST(TraceCollectorTest, KbeExecutionEmitsKernelSpans) {
  trace::TraceCollector collector;
  EngineOptions options;
  options.mode = EngineMode::kKbe;
  options.exec.trace = &collector;
  Engine engine(&SmallDb(), options);
  Result<QueryResult> result = engine.Execute(queries::Q14());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(collector.spans().empty());
  // KBE runs kernels back-to-back: spans must not overlap.
  double last_end = 0.0;
  for (const trace::SpanEvent& span : collector.spans()) {
    EXPECT_GE(span.start_cycles, last_end - 1e-9);
    last_end = span.end_cycles;
  }
  EXPECT_NEAR(last_end, result->metrics.counters.elapsed_cycles,
              1e-6 * last_end);
}

}  // namespace
}  // namespace gpl
